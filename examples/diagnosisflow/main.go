// Diagnosisflow demonstrates the dictionaries in their intended role:
// tester-side defect diagnosis. A synthetic scan circuit is built, defects
// are injected (both modeled single stuck-at faults and a non-modeled
// double fault), the observed responses are reduced to signatures, and the
// candidate sets produced by the pass/fail and same/different dictionaries
// are compared.
//
// Run with:
//
//	go run ./examples/diagnosisflow
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sddict/internal/atpg"
	"sddict/internal/core"
	"sddict/internal/diagnose"
	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/netlist"
	"sddict/internal/resp"
)

func main() {
	// Synthetic analog of ISCAS-89 s344 (see DESIGN.md on substitution).
	seq := gen.Profiles["s344"].MustGenerate(2026)
	comb := netlist.Combinationalize(seq)
	col := fault.Collapse(comb)
	fmt.Println("circuit:", comb.Stat())

	cfg := atpg.DefaultConfig(10)
	cfg.Seed = 1
	tests, st := atpg.GenerateDetection(comb, col.Faults, cfg)
	fmt.Printf("test set: %d vectors (10-detection), coverage %.1f%%\n", tests.Len(), 100*st.Coverage())

	m := resp.Build(netlist.NewScanView(comb), col.Faults, tests)
	pf := core.NewPassFail(m)
	opts := core.DefaultOptions
	opts.Seed = 3
	sd, _ := core.BuildSameDiff(m, opts)
	fmt.Printf("dictionaries: pass/fail %d bits, same/different %d bits\n\n",
		pf.SizeBits(), sd.NominalSizeBits())

	dgPF := diagnose.New(pf, col.Faults)
	dgSD := diagnose.New(sd, col.Faults)

	// Scenario 1: modeled defects. Inject single stuck-at faults and
	// compare candidate-set sizes.
	r := rand.New(rand.NewSource(9))
	fmt.Println("scenario 1: modeled single stuck-at defects")
	betterSD, ties := 0, 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		fi := r.Intn(len(col.Faults))
		obs, err := diagnose.ObservedResponses(comb, []fault.Fault{col.Faults[fi]}, tests)
		if err != nil {
			log.Fatal(err)
		}
		candPF := dgPF.ExactMatches(dgPF.Signature(obs))
		candSD := dgSD.ExactMatches(dgSD.Signature(obs))
		switch {
		case len(candSD) < len(candPF):
			betterSD++
		case len(candSD) == len(candPF):
			ties++
		}
		if trial < 5 {
			fmt.Printf("  defect %-16s -> p/f %2d candidates, s/d %2d candidates\n",
				col.Faults[fi].Name(comb), len(candPF), len(candSD))
		}
	}
	fmt.Printf("  over %d trials: same/different narrower %d times, equal %d times\n\n",
		trials, betterSD, ties)

	// Aggregate view straight from the dictionaries' partitions.
	qPF := diagnose.EvaluateResolution(pf)
	qSD := diagnose.EvaluateResolution(sd)
	qFull := diagnose.EvaluateResolution(core.NewFull(m))
	fmt.Println("aggregate diagnosability over all modeled faults:")
	fmt.Printf("  %-15s avg candidates %.2f, perfect %d/%d, worst %d\n",
		"pass/fail", qPF.AvgCandidates, qPF.Perfect, qPF.Faults, qPF.MaxCandidates)
	fmt.Printf("  %-15s avg candidates %.2f, perfect %d/%d, worst %d\n",
		"same/different", qSD.AvgCandidates, qSD.Perfect, qSD.Faults, qSD.MaxCandidates)
	fmt.Printf("  %-15s avg candidates %.2f, perfect %d/%d, worst %d\n\n",
		"full", qFull.AvgCandidates, qFull.Perfect, qFull.Faults, qFull.MaxCandidates)

	// Scenario 2: a non-modeled defect (two simultaneous stuck-at faults).
	// No dictionary row matches exactly; nearest-Hamming ranking still
	// surfaces the constituent faults.
	fmt.Println("scenario 2: non-modeled double fault, nearest-match ranking")
	a, b := 11%len(col.Faults), 73%len(col.Faults)
	obs, err := diagnose.ObservedResponses(comb, []fault.Fault{col.Faults[a], col.Faults[b]}, tests)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  injected: %s + %s\n", col.Faults[a].Name(comb), col.Faults[b].Name(comb))
	for name, dg := range map[string]*diagnose.Diagnoser{"pass/fail": dgPF, "same/different": dgSD} {
		cands := dg.Diagnose(obs, 5)
		fmt.Printf("  %-15s top candidates:", name)
		for _, c := range cands {
			fmt.Printf(" %s(d=%d)", col.Faults[c.Fault].Name(comb), c.Distance)
		}
		fmt.Println()
	}
}
