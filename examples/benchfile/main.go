// Benchfile demonstrates the interchange path for real netlists: a circuit
// is written to ISCAS-89 .bench format, read back, exercised as a
// sequential machine with the cycle-accurate simulator, and then taken
// through the full-scan dictionary pipeline — the exact flow for running
// this library on the genuine ISCAS-89 benchmark files.
//
// Run with:
//
//	go run ./examples/benchfile
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sddict/internal/atpg"
	"sddict/internal/bench"
	"sddict/internal/core"
	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/resp"
	"sddict/internal/sim"
)

func main() {
	// 1. Produce a .bench file (a synthetic s27-profile circuit here;
	//    substitute any real ISCAS-89 file).
	path := filepath.Join(os.TempDir(), "sddict-example-s27.bench")
	circuit := gen.Profiles["s27"].MustGenerate(7)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.Write(f, circuit); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Println("wrote", path)

	// 2. Read it back.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	c, err := bench.Parse(f, "s27")
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed:", c.Stat())

	// 3. Exercise it as a sequential machine: unknown state resolves as
	//    vectors are applied.
	seq := sim.NewSequential(c)
	fmt.Println("\nsequential run from the unknown state:")
	for cycle := 0; cycle < 5; cycle++ {
		vec := make(pattern.Vector, len(c.PIs))
		for i := range vec {
			vec[i] = logic.FromBit(uint64((cycle + i) % 2))
		}
		outs, err := seq.Step(vec)
		if err != nil {
			log.Fatal(err)
		}
		known := 0
		for _, v := range seq.State() {
			if v.Known() {
				known++
			}
		}
		fmt.Printf("  cycle %d: in=%s out=%v, %d/%d flip-flops known\n",
			cycle, vec, outs, known, len(c.DFFs))
	}

	// 4. Full-scan dictionary pipeline on the same netlist.
	comb := netlist.Combinationalize(c)
	col := fault.Collapse(comb)
	cfg := atpg.DefaultConfig(10)
	cfg.Seed = 1
	tests, _ := atpg.GenerateDetection(comb, col.Faults, cfg)
	m := resp.Build(netlist.NewScanView(comb), col.Faults, tests)
	opts := core.DefaultOptions
	opts.Seed = 2
	sd, st := core.BuildSameDiff(m, opts)
	fmt.Printf("\ndictionary pipeline: %d faults, %d tests\n", m.N, m.K)
	fmt.Printf("  pass/fail      %5d bits, %d pairs indistinguished\n",
		core.NewPassFail(m).SizeBits(), core.NewPassFail(m).Indistinguished())
	fmt.Printf("  same/different %5d bits, %d pairs indistinguished (full floor %d)\n",
		sd.SizeBits(), st.IndistFinal, st.IndistFull)

	os.Remove(path)
}
