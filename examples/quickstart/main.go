// Quickstart: build a small circuit, generate tests, construct the three
// fault dictionaries and compare their size and diagnostic resolution.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sddict/internal/atpg"
	"sddict/internal/core"
	"sddict/internal/fault"
	"sddict/internal/netlist"
	"sddict/internal/resp"
)

func main() {
	// 1. Describe a circuit with the netlist builder: a 2-bit comparator
	//    with a registered output.
	b := netlist.NewBuilder("quickstart")
	a0, a1 := b.Input("a0"), b.Input("a1")
	b0, b1 := b.Input("b0"), b.Input("b1")
	eq0 := b.Gate(netlist.Xnor, "eq0", a0, b0)
	eq1 := b.Gate(netlist.Xnor, "eq1", a1, b1)
	eq := b.Gate(netlist.And, "eq", eq0, eq1)
	gt := b.Gate(netlist.And, "gt", a1, b.Gate(netlist.Not, "nb1", b1))
	ff := b.Gate(netlist.DFF, "ff", eq) // registered equality flag
	out := b.Gate(netlist.Or, "out", gt, ff)
	b.Output(eq)
	b.Output(out)
	c, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("circuit:", c.Stat())

	// 2. Full-scan view: the flip-flop becomes a pseudo input/output pair,
	//    so everything downstream works on a combinational circuit.
	comb := netlist.Combinationalize(c)

	// 3. Collapse the single stuck-at fault universe.
	col := fault.Collapse(comb)
	fmt.Printf("faults: %d collapsed (from %d uncollapsed)\n", len(col.Faults), len(col.Universe))

	// 4. Generate a detection test set with the built-in ATPG.
	cfg := atpg.DefaultConfig(1)
	cfg.Seed = 42
	cfg.Compact = true
	tests, st := atpg.GenerateDetection(comb, col.Faults, cfg)
	fmt.Printf("tests: %d vectors, %.1f%% fault coverage\n", tests.Len(), 100*st.Coverage())

	// 5. Fault-simulate the full response matrix (the paper's z_{i,j}).
	m := resp.Build(netlist.NewScanView(comb), col.Faults, tests)

	// 6. Build the dictionaries. BuildSameDiff runs the paper's
	//    Procedure 1 (random-order restarts) and Procedure 2.
	full := core.NewFull(m)
	pf := core.NewPassFail(m)
	opts := core.DefaultOptions
	opts.Seed = 7
	sd, stats := core.BuildSameDiff(m, opts)

	fmt.Println()
	fmt.Printf("%-15s %12s %15s\n", "dictionary", "size (bits)", "indist. pairs")
	for _, row := range []struct {
		name string
		size int64
		ind  int64
	}{
		{"full", full.SizeBits(), full.Indistinguished()},
		{"pass/fail", pf.SizeBits(), pf.Indistinguished()},
		{"same/different", sd.NominalSizeBits(), sd.Indistinguished()},
	} {
		fmt.Printf("%-15s %12d %15d\n", row.name, row.size, row.ind)
	}
	fmt.Println()
	fmt.Printf("same/different construction: %d restarts of Procedure 1, best %d pairs;\n",
		stats.Restarts, stats.IndistProc1)
	fmt.Printf("Procedure 2 -> %d pairs; %d baselines stored after minimization\n",
		stats.IndistProc2, stats.StoredBaselines)

	// 7. Inspect the selected baselines: test j compares responses against
	//    z_bl,j instead of the fault-free output.
	for j := 0; j < m.K && j < 4; j++ {
		fmt.Printf("t%d: baseline %s (fault-free %s)\n",
			j, sd.BaselineVector(j).String(m.M), m.Vecs[j][0].String(m.M))
	}
}
