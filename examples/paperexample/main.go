// Paperexample walks through the worked example of Section 2 of the paper:
// four faults under two tests in a two-output circuit, reproducing
// Tables 1-5 exactly — the full dictionary, the pass/fail dictionary, the
// candidate evaluation for each baseline (dist(z)), and the final
// same/different dictionary that restores full resolution.
//
// Run with:
//
//	go run ./examples/paperexample
package main

import (
	"fmt"

	"sddict/internal/core"
	"sddict/internal/logic"
	"sddict/internal/resp"
)

func bv(s string) logic.BitVec {
	v := logic.NewBitVec(len(s))
	for i, c := range s {
		if c == '1' {
			v.Set(i, 1)
		}
	}
	return v
}

func main() {
	// Table 1 — the full fault dictionary content (output vectors per
	// fault and test), reconstructed from the paper's narrative.
	ff := []logic.BitVec{bv("00"), bv("11")}
	responses := [][]logic.BitVec{
		{bv("00"), bv("10"), bv("01"), bv("01")}, // t0: f0 f1 f2 f3
		{bv("10"), bv("11"), bv("10"), bv("01")}, // t1: f0 f1 f2 f3
	}
	m := resp.FromResponses(2, ff, responses)

	fmt.Println("Table 1: full fault dictionary")
	fmt.Println("      t0   t1")
	fmt.Printf("ff    %s   %s\n", ff[0].String(2), ff[1].String(2))
	for i := 0; i < m.N; i++ {
		fmt.Printf("f%d    %s   %s\n", i,
			m.Vecs[0][m.Class[0][i]].String(2), m.Vecs[1][m.Class[1][i]].String(2))
	}
	full := core.NewFull(m)
	fmt.Printf("-> indistinguished pairs: %d (distinguishes every pair)\n\n", full.Indistinguished())

	// Table 2 — the pass/fail dictionary.
	pf := core.NewPassFail(m)
	fmt.Println("Table 2: pass/fail fault dictionary")
	fmt.Println("      t0  t1")
	fmt.Printf("ff    %s  %s\n", ff[0].String(2), ff[1].String(2))
	for i := 0; i < m.N; i++ {
		fmt.Printf("f%d    %d   %d\n", i, pf.Bit(i, 0), pf.Bit(i, 1))
	}
	fmt.Printf("-> indistinguished pairs: %d (only the pair f2,f3)\n\n", pf.Indistinguished())

	// Tables 4 and 5 — baseline selection via Procedure 1. The library
	// runs it internally; here we narrate the two selection steps.
	fmt.Println("Tables 4+5: Procedure 1 baseline selection")
	opts := core.DefaultOptions
	opts.Seed = 1
	sd, stats := core.BuildSameDiff(m, opts)
	for j := 0; j < m.K; j++ {
		fmt.Printf("  z_bl,%d = %s  (candidates Z_%d:", j, sd.BaselineVector(j).String(2), j)
		for c := 0; c < m.NumClasses(j); c++ {
			fmt.Printf(" %s", m.Vecs[j][c].String(2))
		}
		fmt.Println(")")
	}
	fmt.Println()

	// Table 3 — the resulting same/different dictionary.
	fmt.Println("Table 3: same/different fault dictionary")
	fmt.Println("      t0  t1")
	fmt.Printf("bl    %s  %s\n", sd.BaselineVector(0).String(2), sd.BaselineVector(1).String(2))
	for i := 0; i < m.N; i++ {
		fmt.Printf("f%d    %d   %d\n", i, sd.Bit(i, 0), sd.Bit(i, 1))
	}
	fmt.Printf("-> indistinguished pairs: %d (full-dictionary resolution)\n\n", sd.Indistinguished())

	// Section 2's size accounting: k=2 tests, n=4 faults, m=2 outputs.
	fmt.Println("Sizes (bits):")
	fmt.Printf("  full        k*n*m   = %d\n", full.SizeBits())
	fmt.Printf("  pass/fail   k*n     = %d\n", pf.SizeBits())
	fmt.Printf("  same/diff   k*(n+m) = %d\n", sd.NominalSizeBits())
	fmt.Printf("\nProcedure 1 used %d restart(s); final dictionary leaves %d pairs indistinguished.\n",
		stats.Restarts, stats.IndistFinal)
}
