// Dictsizes studies how the three dictionary sizes scale with circuit size
// and test-set size, illustrating the paper's Section 2 argument: the
// same/different overhead k·m is negligible next to k·n whenever the
// output count m is much smaller than the fault count n, while the full
// dictionary is larger by a factor of m.
//
// Run with:
//
//	go run ./examples/dictsizes
package main

import (
	"fmt"
	"log"
	"os"

	"sddict/internal/atpg"
	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/netlist"
	"sddict/internal/report"
	"sddict/internal/resp"
)

func main() {
	tab := report.NewTable(
		"circuit", "faults n", "outputs m", "tests k",
		"full k*n*m", "p/f k*n", "s/d k*(n+m)", "s/d overhead")

	for _, name := range []string{"s208", "s298", "s344", "s386", "s510", "s641", "s953", "s1196"} {
		seq := gen.Profiles[name].MustGenerate(5)
		comb := netlist.Combinationalize(seq)
		col := fault.Collapse(comb)
		cfg := atpg.DefaultConfig(10)
		cfg.Seed = 5
		tests, _ := atpg.GenerateDetection(comb, col.Faults, cfg)
		if tests.Len() == 0 {
			log.Fatalf("%s: empty test set", name)
		}
		m := resp.Matrix{N: len(col.Faults), K: tests.Len(), M: netlist.NewScanView(comb).NumOutputs()}
		overhead := float64(m.SameDiffSizeBits()-m.PassFailSizeBits()) / float64(m.PassFailSizeBits())
		tab.Addf(name, m.N, m.M, m.K,
			report.Comma(m.FullSizeBits()), report.Comma(m.PassFailSizeBits()),
			report.Comma(m.SameDiffSizeBits()), fmt.Sprintf("%.1f%%", 100*overhead))
	}
	fmt.Println("Dictionary sizes on 10-detection test sets (synthetic ISCAS-89 analogs)")
	fmt.Println()
	tab.Render(os.Stdout)
	fmt.Println()
	fmt.Println(`"s/d overhead" is the extra storage of a same/different dictionary over a
pass/fail dictionary (the stored baseline vectors, k·m bits): it equals m/n
and shrinks as circuits grow, exactly the paper's argument for why the
same/different dictionary is a drop-in replacement for pass/fail.`)
}
