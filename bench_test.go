// Package sddict_test holds the benchmark harness that regenerates every
// table of the paper plus the ablations indexed in DESIGN.md.
//
// Run everything (the full Table 6 sweep takes tens of minutes on one core):
//
//	go test -bench=. -benchmem
//
// Quick pass (small circuits only):
//
//	go test -short -bench=. -benchmem
//
// Benchmarks report their experimental outputs as custom metrics
// (ind_full, ind_pf, ind_sd, tests, ...), so the bench log doubles as the
// reproduction record; cmd/table6 renders the same data as a table.
package sddict_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"sddict/internal/core"
	"sddict/internal/diagnose"
	"sddict/internal/experiment"
	"sddict/internal/fault"
	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/resp"
)

// prepCache shares the expensive front half of the pipeline (circuit
// synthesis, ATPG, fault simulation) across benchmarks. The mutex stays
// held across the fill so concurrent callers missing on the same key
// block behind one PrepareProfile instead of each running their own
// (the earlier sync.Map version let two misses prepare the same profile
// twice, wasting minutes on the big circuits).
var (
	prepMu    sync.Mutex
	prepCache = map[string]*experiment.Prepared{}
)

func prepared(b *testing.B, circuit string, tt experiment.TestSetType) *experiment.Prepared {
	b.Helper()
	key := circuit + "/" + string(tt)
	prepMu.Lock()
	defer prepMu.Unlock()
	if pr, ok := prepCache[key]; ok {
		return pr
	}
	pr, err := experiment.PrepareProfile(circuit, tt, experiment.Config{Seed: 1})
	if err != nil {
		b.Fatalf("prepare %s: %v", key, err)
	}
	prepCache[key] = pr
	return pr
}

// smallCircuits are cheap enough for -short runs; the rest complete the
// paper's Table 6.
var smallCircuits = []string{
	"s208", "s298", "s344", "s382", "s386", "s400", "s420", "s510", "s526",
}

var largeCircuits = []string{
	"s641", "s820", "s953", "s1196", "s1423", "s5378", "s9234",
}

// BenchmarkTable6 regenerates the paper's Table 6, one sub-benchmark per
// (circuit, test-set type) row. Row values surface as custom metrics.
func BenchmarkTable6(b *testing.B) {
	circuits := append([]string{}, smallCircuits...)
	if !testing.Short() {
		circuits = append(circuits, largeCircuits...)
	}
	for _, name := range circuits {
		for _, tt := range []experiment.TestSetType{experiment.Diagnostic, experiment.TenDetect} {
			b.Run(fmt.Sprintf("%s/%s", name, tt), func(b *testing.B) {
				pr := prepared(b, name, tt)
				var row experiment.Row
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					row = experiment.BuildRow(pr, tt, experiment.Config{Seed: 1})
				}
				b.ReportMetric(float64(row.Tests), "tests")
				b.ReportMetric(float64(row.IndFull), "ind_full")
				b.ReportMetric(float64(row.IndPF), "ind_pf")
				b.ReportMetric(float64(row.IndSDRand), "ind_sd_rand")
				b.ReportMetric(float64(row.IndSDRepl), "ind_sd_repl")
				b.ReportMetric(float64(row.SizeSD)/float64(row.SizePF), "size_sd_over_pf")
			})
		}
	}
}

// BenchmarkAblationSeeding (DESIGN.md A1) compares three construction
// strategies on the same matrix: Procedure 1 restarts alone, Procedure 2
// from fault-free baselines alone, and the combined default.
func BenchmarkAblationSeeding(b *testing.B) {
	// A diagnostic matrix is used because 10-detection matrices often hit
	// the full-dictionary floor on the first pass, hiding any difference
	// between strategies.
	pr := prepared(b, "s526", experiment.Diagnostic)
	variants := []struct {
		name string
		opts func() core.Options
	}{
		{"proc1-restarts-only", func() core.Options {
			o := core.DefaultOptions
			o.RunProcedure2 = false
			o.SeedFaultFree = false
			return o
		}},
		{"seeded-proc2-only", func() core.Options {
			o := core.DefaultOptions
			o.Calls1 = 0
			o.MaxRestarts = 1
			o.RunProcedure2 = false
			o.SeedFaultFree = true
			return o
		}},
		{"combined-default", func() core.Options { return core.DefaultOptions }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			opts := v.opts()
			opts.Seed = 1
			var st core.BuildStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st = core.BuildSameDiff(pr.Matrix, opts)
			}
			b.ReportMetric(float64(st.IndistFinal), "ind_sd")
			b.ReportMetric(float64(st.Restarts), "restarts")
			b.ReportMetric(float64(st.CandidateEvals), "cand_evals")
		})
	}
}

// BenchmarkAblationLower (DESIGN.md A2) sweeps the paper's LOWER cutoff:
// smaller values evaluate fewer baseline candidates per test but may miss
// the per-test optimum. lower=0 is the exhaustive scan.
func BenchmarkAblationLower(b *testing.B) {
	pr := prepared(b, "s526", experiment.Diagnostic)
	for _, lower := range []int{1, 5, 10, 0} {
		name := fmt.Sprintf("lower=%d", lower)
		if lower == 0 {
			name = "lower=inf"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.DefaultOptions
			opts.Seed = 1
			opts.Lower = lower
			opts.RunProcedure2 = false
			opts.SeedFaultFree = false
			var st core.BuildStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st = core.BuildSameDiff(pr.Matrix, opts)
			}
			b.ReportMetric(float64(st.IndistProc1), "ind_sd_rand")
			b.ReportMetric(float64(st.CandidateEvals)/float64(st.Restarts), "cand_evals_per_restart")
		})
	}
}

// BenchmarkExtensionMultiBaseline (DESIGN.md A3) measures the two-baseline
// extension against the standard single-baseline dictionary.
func BenchmarkExtensionMultiBaseline(b *testing.B) {
	pr := prepared(b, "s298", experiment.Diagnostic)
	b.Run("one-baseline", func(b *testing.B) {
		opts := core.DefaultOptions
		opts.Seed = 1
		var d *core.Dictionary
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, _ = core.BuildSameDiff(pr.Matrix, opts)
		}
		b.ReportMetric(float64(d.Indistinguished()), "ind_sd")
		b.ReportMetric(float64(d.NominalSizeBits()), "size_bits")
	})
	b.Run("two-baselines", func(b *testing.B) {
		opts := core.DefaultOptions
		opts.Seed = 1
		var d *core.Dictionary
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, _ = core.BuildSameDiffMulti(pr.Matrix, opts)
		}
		b.ReportMetric(float64(d.Indistinguished()), "ind_sd")
		b.ReportMetric(float64(d.NominalSizeBits()), "size_bits")
	})
}

// BenchmarkExtensionStorageMin (DESIGN.md A4) quantifies the paper's
// remark that the fault-free vector can replace many selected baselines:
// stored baselines and resulting size with and without minimization.
func BenchmarkExtensionStorageMin(b *testing.B) {
	pr := prepared(b, "s344", experiment.TenDetect)
	for _, minimize := range []bool{false, true} {
		name := "minimize=off"
		if minimize {
			name = "minimize=on"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.DefaultOptions
			opts.Seed = 1
			opts.MinimizeStorage = minimize
			var d *core.Dictionary
			var st core.BuildStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, st = core.BuildSameDiff(pr.Matrix, opts)
			}
			b.ReportMetric(float64(st.StoredBaselines), "stored_baselines")
			b.ReportMetric(float64(d.SizeBits()), "size_bits")
			b.ReportMetric(float64(st.IndistFinal), "ind_sd")
		})
	}
}

// BenchmarkDiagnosisResolution (DESIGN.md D1) measures end-use diagnosis
// quality: expected candidate-set size per dictionary kind.
func BenchmarkDiagnosisResolution(b *testing.B) {
	pr := prepared(b, "s344", experiment.TenDetect)
	opts := core.DefaultOptions
	opts.Seed = 1
	sd, _ := core.BuildSameDiff(pr.Matrix, opts)
	dicts := []struct {
		name string
		d    *core.Dictionary
	}{
		{"full", core.NewFull(pr.Matrix)},
		{"passfail", core.NewPassFail(pr.Matrix)},
		{"samediff", sd},
	}
	for _, e := range dicts {
		b.Run(e.name, func(b *testing.B) {
			var q diagnose.Quality
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q = diagnose.EvaluateResolution(e.d)
			}
			b.ReportMetric(q.AvgCandidates, "avg_candidates")
			b.ReportMetric(float64(q.Perfect), "perfect")
			b.ReportMetric(float64(q.MaxCandidates), "worst_case")
		})
	}
}

// BenchmarkFaultSim measures raw PPSFP full-response fault-simulation
// throughput: rebuilding the response matrix exercises good simulation,
// event-driven fault propagation and response deduplication together.
func BenchmarkFaultSim(b *testing.B) {
	for _, name := range []string{"s298", "s1196"} {
		b.Run(name, func(b *testing.B) {
			pr := prepared(b, name, experiment.TenDetect)
			view := netlist.NewScanView(pr.Circuit)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp.Build(view, pr.Faults, pr.Tests)
			}
			b.ReportMetric(float64(pr.Matrix.N)*float64(pr.Matrix.K)/float64(1e6), "Mfault_tests")
		})
	}
}

// BenchmarkTwoPhaseDiagnosis (DESIGN.md D1 companion) measures the
// two-stage flow the paper cites as the consumer of compact dictionaries:
// dictionary lookup narrows the candidates, then only those are
// fault-simulated. The simulated-candidates metric shows the work the
// same/different dictionary saves relative to pass/fail.
func BenchmarkTwoPhaseDiagnosis(b *testing.B) {
	pr := prepared(b, "s298", experiment.TenDetect)
	opts := core.DefaultOptions
	opts.Seed = 1
	sd, _ := core.BuildSameDiff(pr.Matrix, opts)
	for _, e := range []struct {
		name string
		d    *core.Dictionary
	}{
		{"passfail", core.NewPassFail(pr.Matrix)},
		{"samediff", sd},
	} {
		b.Run(e.name, func(b *testing.B) {
			tp := diagnose.NewTwoPhase(e.d, pr.Faults, pr.Circuit, pr.Tests)
			// Precompute observed responses for a rotating set of defects.
			var observations [][]logic.BitVec
			for fi := 0; fi < len(pr.Faults); fi += 37 {
				obs, err := diagnose.ObservedResponses(pr.Circuit, []fault.Fault{pr.Faults[fi]}, pr.Tests)
				if err != nil {
					b.Fatal(err)
				}
				observations = append(observations, obs)
			}
			simulated := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := tp.Diagnose(observations[i%len(observations)])
				simulated += res.Simulated
			}
			b.ReportMetric(float64(simulated)/float64(b.N), "simulated_candidates")
		})
	}
}

// BenchmarkExtensionTestCompaction (DESIGN.md A5) measures how many tests
// of each test-set type carry no diagnostic information for the built
// same/different dictionary, and the size saved by dropping them.
func BenchmarkExtensionTestCompaction(b *testing.B) {
	for _, tt := range []experiment.TestSetType{experiment.Diagnostic, experiment.TenDetect} {
		b.Run(string(tt), func(b *testing.B) {
			pr := prepared(b, "s344", tt)
			opts := core.DefaultOptions
			opts.Seed = 1
			sd, _ := core.BuildSameDiff(pr.Matrix, opts)
			var kept int
			var before, after int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				keep := core.CompactTests(pr.Matrix, sd.Baselines)
				rm, rb := core.RestrictTests(pr.Matrix, sd.Baselines, keep)
				rd := &core.Dictionary{Kind: core.SameDiff, M: rm, Baselines: rb}
				kept = rm.K
				before, after = sd.NominalSizeBits(), rd.NominalSizeBits()
				if rd.Indistinguished() != sd.Indistinguished() {
					b.Fatal("compaction changed resolution")
				}
			}
			b.ReportMetric(float64(pr.Matrix.K), "tests_before")
			b.ReportMetric(float64(kept), "tests_after")
			b.ReportMetric(float64(after)/float64(before), "size_ratio")
		})
	}
}

// BenchmarkExtensionOutputCompaction (DESIGN.md A6) sweeps a spatial
// response compactor's width: the paper's remark that compaction shrinks m
// (and so the baseline overhead), traded against aliasing-induced
// resolution loss.
func BenchmarkExtensionOutputCompaction(b *testing.B) {
	pr := prepared(b, "s344", experiment.TenDetect)
	widths := []int{0, 32, 16, 8, 4} // 0 = uncompacted reference
	for _, w := range widths {
		name := fmt.Sprintf("m=%d", w)
		if w == 0 {
			name = "uncompacted"
		}
		b.Run(name, func(b *testing.B) {
			var ind int64
			var size int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := pr.Matrix
				if w > 0 {
					m = m.CompactOutputs(w, 11)
				}
				opts := core.DefaultOptions
				opts.Seed = 1
				opts.Calls1 = 5
				opts.MaxRestarts = 10
				sd, st := core.BuildSameDiff(m, opts)
				ind, size = st.IndistFinal, sd.NominalSizeBits()
			}
			b.ReportMetric(float64(ind), "ind_sd")
			b.ReportMetric(float64(size), "size_bits")
		})
	}
}

// benchWorkerCounts returns the pool sizes the BenchmarkParallel* family
// compares: the sequential path, the CI reference of four workers, and
// the machine's real CPU count when it differs from both. `make bench`
// runs exactly this family and renders the output as BENCH_parallel.json
// (format in EXPERIMENTS.md).
func benchWorkerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkParallelBuild measures the parallel restart search (DESIGN.md
// §9) against its workers=1 sequential path. The determinism regression
// pins the outputs byte-identical across counts, so the ind_* metrics
// must agree between sub-benchmarks and only ns/op may move.
func BenchmarkParallelBuild(b *testing.B) {
	circuits := []string{"s526"}
	if !testing.Short() {
		circuits = append(circuits, "s1196")
	}
	for _, name := range circuits {
		pr := prepared(b, name, experiment.Diagnostic)
		for _, workers := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				opts := core.DefaultOptions
				opts.Seed = 1
				opts.Workers = workers
				var st core.BuildStats
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, st = core.BuildSameDiff(pr.Matrix, opts)
				}
				b.ReportMetric(float64(st.IndistFinal), "ind_sd")
				b.ReportMetric(float64(st.IndistProc1), "ind_sd_rand")
				b.ReportMetric(float64(st.Restarts), "restarts")
				b.ReportMetric(float64(st.CandidateEvals), "cand_evals")
			})
		}
	}
}

// BenchmarkParallelFaultSim measures the sharded full-response capture
// (per-worker simulator forks plus concurrent per-test assembly) against
// the sequential sweep on the same circuits as BenchmarkFaultSim.
func BenchmarkParallelFaultSim(b *testing.B) {
	circuits := []string{"s298"}
	if !testing.Short() {
		circuits = append(circuits, "s1196")
	}
	for _, name := range circuits {
		pr := prepared(b, name, experiment.TenDetect)
		view := netlist.NewScanView(pr.Circuit)
		for _, workers := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := resp.BuildWorkersCtx(context.Background(), workers, view, pr.Faults, pr.Tests); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(pr.Matrix.N)*float64(pr.Matrix.K)/1e6, "Mfault_tests")
			})
		}
	}
}

// BenchmarkParallelSweep measures row-level parallelism in the Table-6
// sweep. Rows are whole independent pipelines (synthesis through
// dictionary), so they are the coarsest-grained and best-scaling unit of
// work the pipeline offers.
func BenchmarkParallelSweep(b *testing.B) {
	var specs []experiment.RowSpec
	for _, name := range []string{"s27", "s208", "s298"} {
		specs = append(specs, experiment.RowSpec{
			Circuit: name,
			TType:   experiment.Diagnostic,
			Config:  experiment.Config{Seed: 1, Workers: 1},
		})
	}
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var ind int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ind = 0
				for _, res := range experiment.RunSweepCtx(context.Background(), workers, specs, nil) {
					if res.Err != nil {
						b.Fatalf("%s/%s: %v", res.Spec.Circuit, res.Spec.TType, res.Err)
					}
					ind += res.Row.IndSDFinal
				}
			}
			b.ReportMetric(float64(len(specs)), "rows")
			b.ReportMetric(float64(ind), "ind_sd_total")
		})
	}
}

// BenchmarkDictionaryLandscape (DESIGN.md A7) places every dictionary
// flavour on the size/resolution plane for one circuit and test set: the
// compressed baselines from the literature (first-failing-test,
// detection-count, failing-outputs, pass/fail+first), pass/fail, the
// paper's same/different, and the full dictionary.
func BenchmarkDictionaryLandscape(b *testing.B) {
	pr := prepared(b, "s526", experiment.Diagnostic)
	m := pr.Matrix
	opts := core.DefaultOptions
	opts.Seed = 1
	sd, _ := core.BuildSameDiff(m, opts)
	entries := []struct {
		name string
		run  func() (int64, int64) // size bits, indistinguished pairs
	}{
		{"first-failing-test", func() (int64, int64) {
			a := core.FirstFailingTest(m)
			return a.SizeBits, a.Indistinguished()
		}},
		{"detection-count", func() (int64, int64) {
			a := core.DetectionCount(m)
			return a.SizeBits, a.Indistinguished()
		}},
		{"failing-outputs", func() (int64, int64) {
			a := core.FailingOutputs(m)
			return a.SizeBits, a.Indistinguished()
		}},
		{"passfail", func() (int64, int64) {
			d := core.NewPassFail(m)
			return d.SizeBits(), d.Indistinguished()
		}},
		{"passfail+first", func() (int64, int64) {
			a := core.PassFailPlusFirst(m)
			return a.SizeBits, a.Indistinguished()
		}},
		{"samediff", func() (int64, int64) {
			return sd.NominalSizeBits(), sd.Indistinguished()
		}},
		{"full", func() (int64, int64) {
			d := core.NewFull(m)
			return d.SizeBits(), d.Indistinguished()
		}},
	}
	for _, e := range entries {
		b.Run(e.name, func(b *testing.B) {
			var size, ind int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				size, ind = e.run()
			}
			b.ReportMetric(float64(size), "size_bits")
			b.ReportMetric(float64(ind), "ind_pairs")
		})
	}
}
