package sddict_test

import (
	"testing"

	"sddict/internal/atpg"
	"sddict/internal/core"
	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/resp"
)

// exhaustiveTests enumerates all input vectors of a small circuit.
func exhaustiveTests(width int) *pattern.Set {
	s := pattern.NewSet(width)
	for v := 0; v < 1<<uint(width); v++ {
		vec := make(pattern.Vector, width)
		for i := range vec {
			vec[i] = logic.FromBit(uint64(v >> uint(i) & 1))
		}
		s.Add(vec)
	}
	return s
}

// TestC17ExhaustivePipeline runs the entire stack on c17 with the
// exhaustive test set, where ground truth is absolute: the full dictionary
// partitions faults into their true functional-equivalence classes, and the
// same/different dictionary must reach that floor exactly (the paper's
// best-possible outcome).
func TestC17ExhaustivePipeline(t *testing.T) {
	c := gen.C17()
	col := fault.Collapse(c)
	tests := exhaustiveTests(5)
	m := resp.Build(netlist.NewScanView(c), col.Faults, tests)

	full := core.NewFull(m)
	pf := core.NewPassFail(m)
	opts := core.DefaultOptions
	opts.Seed = 1
	_, st := core.BuildSameDiff(m, opts)

	// Under the exhaustive set, indistinguished pairs of the full
	// dictionary are exactly the functionally equivalent pairs that
	// structural collapsing missed.
	fullInd := full.Indistinguished()
	t.Logf("c17 exhaustive: %d faults, full %d, p/f %d, s/d %d",
		m.N, fullInd, pf.Indistinguished(), st.IndistFinal)
	if st.IndistFinal != fullInd {
		t.Errorf("same/different (%d) did not reach the full floor (%d) on c17", st.IndistFinal, fullInd)
	}
	if pf.Indistinguished() < fullInd {
		t.Errorf("pass/fail beats full — impossible")
	}
	// Every functionally-equivalent pair must be confirmed by miter ATPG.
	p := full.Partition()
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			same := p.Label(i) != core.Isolated && p.Label(i) == p.Label(j)
			if !same {
				continue
			}
			_, status, err := atpg.Distinguish(c, col.Faults[i], col.Faults[j], 10000)
			if err != nil {
				t.Fatal(err)
			}
			if status != atpg.Untestable {
				t.Errorf("pair (%s, %s) identical under exhaustive tests but miter says %v",
					col.Faults[i].Name(c), col.Faults[j].Name(c), status)
			}
		}
	}
}

// TestPipelineAgreesAcrossRepresentations: building the dictionary on the
// sequential circuit's scan view and on its combinationalized form must
// produce identical matrices (same classes, same sizes) for the same tests.
func TestPipelineAgreesAcrossRepresentations(t *testing.T) {
	seq := gen.Profiles["s27"].MustGenerate(3)
	comb := netlist.Combinationalize(seq)
	seqView := netlist.NewScanView(seq)
	combView := netlist.NewScanView(comb)
	if seqView.NumInputs() != combView.NumInputs() || seqView.NumOutputs() != combView.NumOutputs() {
		t.Fatalf("views disagree: %dx%d vs %dx%d",
			seqView.NumInputs(), seqView.NumOutputs(), combView.NumInputs(), combView.NumOutputs())
	}
	tests := exhaustiveTests(seqView.NumInputs())
	if tests.Len() > 256 {
		tests.Vecs = tests.Vecs[:256]
	}

	// The fault lists differ structurally (comb adds observation buffers),
	// so compare through the fault-free responses and per-test class
	// counts of the shared stem faults on original gates.
	colSeq := fault.Collapse(seq)
	var shared []fault.Fault
	for _, f := range colSeq.Faults {
		if f.IsStem() && seq.Gates[f.Gate].Type != netlist.DFF {
			shared = append(shared, f)
		}
	}
	mSeq := resp.Build(seqView, shared, tests)
	mComb := resp.Build(combView, shared, tests)
	if mSeq.K != mComb.K || mSeq.M != mComb.M {
		t.Fatalf("matrix dims differ")
	}
	for j := 0; j < mSeq.K; j++ {
		if !mSeq.Vecs[j][0].Equal(mComb.Vecs[j][0]) {
			t.Fatalf("test %d: fault-free responses differ between representations", j)
		}
		for i := range shared {
			va := mSeq.Vecs[j][mSeq.Class[j][i]]
			vb := mComb.Vecs[j][mComb.Class[j][i]]
			if !va.Equal(vb) {
				t.Fatalf("test %d fault %s: responses differ between representations",
					j, shared[i].Name(seq))
			}
		}
	}
}

// TestEndToEndDeterminism: the entire pipeline must be reproducible for a
// fixed seed.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() (int, int64, int64) {
		c := gen.Profiles["s298"].MustGenerate(5)
		comb := netlist.Combinationalize(c)
		col := fault.Collapse(comb)
		cfg := atpg.DefaultConfig(3)
		cfg.Seed = 11
		tests, _ := atpg.GenerateDetection(comb, col.Faults, cfg)
		m := resp.Build(netlist.NewScanView(comb), col.Faults, tests)
		opts := core.DefaultOptions
		opts.Seed = 13
		opts.Calls1 = 5
		opts.MaxRestarts = 10
		_, st := core.BuildSameDiff(m, opts)
		return tests.Len(), core.NewPassFail(m).Indistinguished(), st.IndistFinal
	}
	k1, pf1, sd1 := run()
	k2, pf2, sd2 := run()
	if k1 != k2 || pf1 != pf2 || sd1 != sd2 {
		t.Fatalf("pipeline not deterministic: (%d,%d,%d) vs (%d,%d,%d)", k1, pf1, sd1, k2, pf2, sd2)
	}
}
