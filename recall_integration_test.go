package sddict_test

// End-to-end contract for the case-store recall path (DESIGN.md §15),
// exec'd against freshly built binaries because journal durability and
// kill/restart semantics cannot be observed in-process:
//
//   - TestServeRecallEndToEnd: a repeated observation must be served
//     from recall byte-identically to its first (recomputed) answer,
//     the serve_recall_{hits,near,misses} counters must account for
//     every observation exactly once, and a SIGTERM + restart against
//     the same -casestore directory must replay the journal so the
//     repeat is a recall hit with no new miss.
//
//   - TestServeRecallChaosRestart: SIGKILL mid-barrage of repeated
//     -hot sddload traffic, then a deliberately torn half-line appended
//     to the journal. The restarted server must come up healthy, keep
//     every fully written case, and lose at most the torn tail.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"sddict/internal/serve"
)

// rawDiagnose posts a diagnose request and returns the raw body, so
// byte-identity between recomputed and recalled answers is checked on
// the wire format, not a re-marshalled struct.
func rawDiagnose(t *testing.T, addr string, req serve.DiagnoseRequest) ([]byte, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/diagnose", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /diagnose: %v", err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return out, resp.StatusCode
}

// scrapeCounters pulls the OpenMetrics exposition and returns the
// counter totals ("sdd_<name>_total <v>") keyed by bare metric name.
func scrapeCounters(t *testing.T, addr string) map[string]int64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	out := make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		name, rest, ok := strings.Cut(line, " ")
		if !ok || !strings.HasSuffix(name, "_total") {
			continue
		}
		v, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			continue
		}
		out[strings.TrimSuffix(strings.TrimPrefix(name, "sdd_"), "_total")] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func recallTotals(t *testing.T, addr string) (hits, near, misses int64) {
	t.Helper()
	c := scrapeCounters(t, addr)
	return c["serve_recall_hits"], c["serve_recall_near"], c["serve_recall_misses"]
}

func TestServeRecallEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("execs freshly built binaries; skipped in -short mode")
	}
	bins := buildBinaries(t, "sddserve")
	dir := artifactDir(t)
	artPath := filepath.Join(dir, "toy.sdda")
	publishToyArtifact(t, artPath)
	caseDir := filepath.Join(dir, "cases")

	tracePath := filepath.Join(dir, "recall-trace.jsonl")
	srv, addr, stderr := startServer(t, bins["sddserve"],
		"-dict", artPath, "-trace-out", tracePath, "-casestore", caseDir)

	// g1's own response vectors: an exact-match observation.
	obsG1 := serve.DiagnoseRequest{Dictionary: artPath, Responses: []string{"000", "011"}}
	first, status := rawDiagnose(t, addr, obsG1)
	if status != http.StatusOK {
		t.Fatalf("first diagnose: status %d: %s", status, first)
	}
	second, status := rawDiagnose(t, addr, obsG1)
	if status != http.StatusOK {
		t.Fatalf("second diagnose: status %d: %s", status, second)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("recall-served answer differs from recompute:\n%s\n%s", first, second)
	}
	hits, near, misses := recallTotals(t, addr)
	if hits != 1 || near != 0 || misses != 1 {
		t.Errorf("after repeat: hits/near/misses = %d/%d/%d, want 1/0/1", hits, near, misses)
	}

	// A distinct observation is a miss; every observation lands in
	// exactly one bucket.
	if out, status := rawDiagnose(t, addr,
		serve.DiagnoseRequest{Dictionary: artPath, Responses: []string{"001", "111"}}); status != http.StatusOK {
		t.Fatalf("third diagnose: status %d: %s", status, out)
	}
	hits, near, misses = recallTotals(t, addr)
	if total := hits + near + misses; total != 3 {
		t.Errorf("recall counters sum to %d, want one per observation (3): %d/%d/%d",
			total, hits, near, misses)
	}

	// Drain; the journal must survive the restart.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := waitTimeout(t, srv, 30*time.Second); err != nil {
		t.Fatalf("drained server exit: %v (want 0); stderr:\n%s", err, stderr.String())
	}
	assertTraceEndsClean(t, tracePath)

	srv2, addr2, stderr2 := startServer(t, bins["sddserve"],
		"-dict", artPath, "-casestore", caseDir)
	replayed, status := rawDiagnose(t, addr2, obsG1)
	if status != http.StatusOK {
		t.Fatalf("post-restart diagnose: status %d: %s", status, replayed)
	}
	if !bytes.Equal(first, replayed) {
		t.Errorf("post-restart recall differs from original answer:\n%s\n%s", first, replayed)
	}
	hits, near, misses = recallTotals(t, addr2)
	if hits != 1 || misses != 0 {
		t.Errorf("post-restart: hits/misses = %d/%d, want 1/0 (journal replayed, no recompute)",
			hits, misses)
	}
	_ = near

	// The replayed store is visible through /cases.
	resp, err := http.Get("http://" + addr2 + "/cases")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Total int `json:"total"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if listing.Total < 2 {
		t.Errorf("/cases after restart: total %d, want the 2 pre-restart cases", listing.Total)
	}

	if err := srv2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := waitTimeout(t, srv2, 30*time.Second); err != nil {
		t.Errorf("restarted server exit: %v (want 0); stderr:\n%s", err, stderr2.String())
	}
}

func TestServeRecallChaosRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("execs freshly built binaries; skipped in -short mode")
	}
	bins := buildBinaries(t, "sddserve", "sddload")
	dir := artifactDir(t)
	artPath := filepath.Join(dir, "toy.sdda")
	publishToyArtifact(t, artPath)
	caseDir := filepath.Join(dir, "cases")

	srv, addr, stderr := startServer(t, bins["sddserve"],
		"-dict", artPath, "-casestore", caseDir, "-casestore-snapshot-every", "8")

	// Record one known case before the storm so the journal is
	// guaranteed non-empty when the server dies.
	obsG1 := serve.DiagnoseRequest{Dictionary: artPath, Responses: []string{"000", "011"}}
	first, status := rawDiagnose(t, addr, obsG1)
	if status != http.StatusOK {
		t.Fatalf("seed diagnose: status %d: %s", status, first)
	}

	// Repeated-signature traffic: -hot 1 draws every injected fault
	// from the first dictionary row, so recall hits dominate.
	load := exec.Command(bins["sddload"],
		"-addr", addr, "-dict", artPath,
		"-clients", "4", "-requests", "200", "-retries", "4",
		"-hot", "1", "-seed", "9", "-chaos")
	var loadOut bytes.Buffer
	load.Stdout = &loadOut
	load.Stderr = &loadOut
	if err := load.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { load.Process.Kill(); load.Wait() }()

	// SIGKILL mid-barrage: no drain, no flush beyond the per-append
	// fsync the store already did.
	time.Sleep(500 * time.Millisecond)
	if err := srv.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	srv.Wait()
	if err := waitTimeout(t, load, 60*time.Second); err != nil {
		t.Errorf("sddload -chaos exit after server kill: %v (want 0)\n%s", err, loadOut.String())
	}

	// Tear the journal tail deterministically: a half-written line with
	// no newline, exactly what a crash mid-append leaves behind.
	j, err := os.OpenFile(filepath.Join(caseDir, "journal.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.WriteString(`{"id":9999,"circuit":"to`); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The restart must repair the tail and replay every complete case.
	srv2, addr2, stderr2 := startServer(t, bins["sddserve"],
		"-dict", artPath, "-casestore", caseDir)
	replayed, status := rawDiagnose(t, addr2, obsG1)
	if status != http.StatusOK {
		t.Fatalf("post-crash diagnose: status %d: %s\nfirst server stderr:\n%s",
			status, replayed, stderr.String())
	}
	if !bytes.Equal(first, replayed) {
		t.Errorf("post-crash recall differs from pre-crash answer:\n%s\n%s", first, replayed)
	}
	hits, _, misses := recallTotals(t, addr2)
	if hits != 1 || misses != 0 {
		t.Errorf("post-crash: hits/misses = %d/%d, want 1/0 (seed case survived the kill)",
			hits, misses)
	}

	// The store keeps appending after the repair: a fresh observation
	// records cleanly and the correlate report renders.
	if out, status := rawDiagnose(t, addr2,
		serve.DiagnoseRequest{Dictionary: artPath, Responses: []string{"001", "111"}}); status != http.StatusOK {
		t.Fatalf("post-repair record: status %d: %s", status, out)
	}
	resp, err := http.Get("http://" + addr2 + "/cases/correlate?format=text")
	if err != nil {
		t.Fatal(err)
	}
	report, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "case correlation:") {
		t.Errorf("correlate report after crash recovery:\n%s", report)
	}

	if err := srv2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := waitTimeout(t, srv2, 30*time.Second); err != nil {
		t.Errorf("recovered server exit: %v (want 0); stderr:\n%s", err, stderr2.String())
	}
	saveArtifactOnFailure(t, "sddload.txt", func() []byte { return []byte(loadOut.String()) })
}
