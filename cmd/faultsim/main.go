// Command faultsim fault-simulates a test set against a circuit's collapsed
// stuck-at faults and reports coverage and per-test detection statistics.
//
// Usage:
//
//	faultsim -circuit s298 -tests tests.txt
//	faultsim -bench circuit.bench -random 256
//
// Test files hold one 0/1 vector per line over the full-scan inputs (as
// written by the atpg command); -random simulates N random vectors instead.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sddict/internal/bench"
	"sddict/internal/cli"
	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/sim"
)

func main() {
	cli.Main("faultsim", run)
}

func run(ctx context.Context) error {
	var (
		circuit   = flag.String("circuit", "", "named synthetic circuit profile")
		benchPath = flag.String("bench", "", ".bench netlist to load instead of a profile")
		testsPath = flag.String("tests", "", "test vector file (one 0/1 line per test)")
		random    = flag.Int("random", 0, "simulate this many random vectors instead of -tests")
		seed      = flag.Int64("seed", 1, "random seed")
		perTest   = flag.Bool("per-test", false, "print per-test detection counts")
	)
	flag.Parse()

	var (
		c   *netlist.Circuit
		err error
	)
	switch {
	case *benchPath != "":
		f, ferr := os.Open(*benchPath)
		if ferr != nil {
			return ferr
		}
		c, err = bench.Parse(f, *benchPath)
		f.Close()
	case *circuit != "":
		var p gen.Profile
		p, err = gen.Named(*circuit)
		if err == nil {
			c, err = p.Generate(*seed + 1)
		}
	default:
		return cli.Usagef("need -circuit or -bench")
	}
	if err != nil {
		return err
	}

	comb := netlist.Combinationalize(c)
	view := netlist.NewScanView(comb)
	col := fault.Collapse(comb)

	tests := pattern.NewSet(view.NumInputs())
	switch {
	case *testsPath != "":
		f, ferr := os.Open(*testsPath)
		if ferr != nil {
			return ferr
		}
		sc := bufio.NewScanner(f)
		line := 0
		for sc.Scan() {
			line++
			txt := sc.Text()
			if txt == "" {
				continue
			}
			v, verr := pattern.FromString(txt)
			if verr != nil {
				f.Close()
				return fmt.Errorf("%s line %d: %w", *testsPath, line, verr)
			}
			if len(v) != view.NumInputs() {
				f.Close()
				return fmt.Errorf("%s line %d: vector width %d, circuit has %d scan inputs",
					*testsPath, line, len(v), view.NumInputs())
			}
			if !v.FullySpecified() {
				f.Close()
				return fmt.Errorf("%s line %d: vector contains x; fully specified vectors required", *testsPath, line)
			}
			tests.Add(v)
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return err
		}
	case *random > 0:
		r := rand.New(rand.NewSource(*seed + 2))
		for i := 0; i < *random; i++ {
			tests.Add(pattern.Random(r, view.NumInputs()))
		}
	default:
		return cli.Usagef("need -tests or -random")
	}
	if tests.Len() == 0 {
		return fmt.Errorf("empty test set")
	}

	s := sim.New(view)
	counts := make([]int, len(col.Faults))
	perTestDet := make([]int, tests.Len())
	base := 0
	for _, batch := range tests.Pack() {
		b := batch
		s.Apply(&b)
		sweepErr := s.ForEachFault(ctx, col.Faults, func(fi int, eff sim.Effect) {
			for p := 0; p < b.Count; p++ {
				if eff.Detect&(1<<uint(p)) != 0 {
					counts[fi]++
					perTestDet[base+p]++
				}
			}
		})
		if sweepErr != nil {
			return sweepErr
		}
		base += b.Count
	}

	detected := 0
	totalDet := 0
	for _, n := range counts {
		if n > 0 {
			detected++
		}
		totalDet += n
	}
	fmt.Printf("circuit %s: %d collapsed faults, %d tests (%d scan inputs, %d scan outputs)\n",
		c.Name, len(col.Faults), tests.Len(), view.NumInputs(), view.NumOutputs())
	fmt.Printf("fault coverage: %d/%d = %.2f%%\n",
		detected, len(col.Faults), 100*float64(detected)/float64(len(col.Faults)))
	fmt.Printf("total detections: %d (%.1f per detected fault)\n",
		totalDet, float64(totalDet)/float64(maxInt(detected, 1)))
	if *perTest {
		for j, n := range perTestDet {
			fmt.Printf("t%-5d detects %d faults\n", j, n)
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
