// Command faultsim fault-simulates a test set against a circuit's collapsed
// stuck-at faults and reports coverage and per-test detection statistics.
//
// Usage:
//
//	faultsim -circuit s298 -tests tests.txt
//	faultsim -bench circuit.bench -random 256
//
// Test files hold one 0/1 vector per line over the full-scan inputs (as
// written by the atpg command); -random simulates N random vectors instead.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sddict/internal/bench"
	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/sim"
)

func main() {
	var (
		circuit   = flag.String("circuit", "", "named synthetic circuit profile")
		benchPath = flag.String("bench", "", ".bench netlist to load instead of a profile")
		testsPath = flag.String("tests", "", "test vector file (one 0/1 line per test)")
		random    = flag.Int("random", 0, "simulate this many random vectors instead of -tests")
		seed      = flag.Int64("seed", 1, "random seed")
		perTest   = flag.Bool("per-test", false, "print per-test detection counts")
	)
	flag.Parse()

	var (
		c   *netlist.Circuit
		err error
	)
	switch {
	case *benchPath != "":
		f, ferr := os.Open(*benchPath)
		if ferr != nil {
			fatal("%v", ferr)
		}
		c, err = bench.Parse(f, *benchPath)
		f.Close()
	case *circuit != "":
		var p gen.Profile
		p, err = gen.Named(*circuit)
		if err == nil {
			c, err = p.Generate(*seed + 1)
		}
	default:
		fatal("need -circuit or -bench")
	}
	if err != nil {
		fatal("%v", err)
	}

	comb := netlist.Combinationalize(c)
	view := netlist.NewScanView(comb)
	col := fault.Collapse(comb)

	tests := pattern.NewSet(view.NumInputs())
	switch {
	case *testsPath != "":
		f, ferr := os.Open(*testsPath)
		if ferr != nil {
			fatal("%v", ferr)
		}
		sc := bufio.NewScanner(f)
		line := 0
		for sc.Scan() {
			line++
			txt := sc.Text()
			if txt == "" {
				continue
			}
			v, verr := pattern.FromString(txt)
			if verr != nil {
				fatal("line %d: %v", line, verr)
			}
			if len(v) != view.NumInputs() {
				fatal("line %d: vector width %d, circuit has %d scan inputs", line, len(v), view.NumInputs())
			}
			if !v.FullySpecified() {
				fatal("line %d: vector contains x; fully specified vectors required", line)
			}
			tests.Add(v)
		}
		f.Close()
		if err := sc.Err(); err != nil {
			fatal("%v", err)
		}
	case *random > 0:
		r := rand.New(rand.NewSource(*seed + 2))
		for i := 0; i < *random; i++ {
			tests.Add(pattern.Random(r, view.NumInputs()))
		}
	default:
		fatal("need -tests or -random")
	}
	if tests.Len() == 0 {
		fatal("empty test set")
	}

	s := sim.New(view)
	counts := make([]int, len(col.Faults))
	perTestDet := make([]int, tests.Len())
	base := 0
	for _, batch := range tests.Pack() {
		b := batch
		s.Apply(&b)
		for fi, f := range col.Faults {
			eff := s.Propagate(f)
			for p := 0; p < b.Count; p++ {
				if eff.Detect&(1<<uint(p)) != 0 {
					counts[fi]++
					perTestDet[base+p]++
				}
			}
		}
		base += b.Count
	}

	detected := 0
	totalDet := 0
	for _, n := range counts {
		if n > 0 {
			detected++
		}
		totalDet += n
	}
	fmt.Printf("circuit %s: %d collapsed faults, %d tests (%d scan inputs, %d scan outputs)\n",
		c.Name, len(col.Faults), tests.Len(), view.NumInputs(), view.NumOutputs())
	fmt.Printf("fault coverage: %d/%d = %.2f%%\n",
		detected, len(col.Faults), 100*float64(detected)/float64(len(col.Faults)))
	fmt.Printf("total detections: %d (%.1f per detected fault)\n",
		totalDet, float64(totalDet)/float64(maxInt(detected, 1)))
	if *perTest {
		for j, n := range perTestDet {
			fmt.Printf("t%-5d detects %d faults\n", j, n)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "faultsim: "+format+"\n", args...)
	os.Exit(1)
}
