// Command sdd is the end-to-end pipeline driver: it takes a circuit (a
// named synthetic profile or a .bench file), collapses its stuck-at faults,
// generates a test set, builds the full, pass/fail and same/different fault
// dictionaries, and reports their sizes and diagnostic resolution.
//
// Usage:
//
//	sdd -circuit s298 [-tests diag|10det] [-seed N] [-effort 0..1]
//	sdd -bench path/to/circuit.bench [-tests diag|10det]
//	sdd -list
//
// Example:
//
//	$ sdd -circuit s344 -tests 10det
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"sddict/internal/bench"
	"sddict/internal/core"
	"sddict/internal/diagnose"
	"sddict/internal/experiment"
	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/report"
)

func main() {
	var (
		circuit   = flag.String("circuit", "", "named synthetic circuit profile (see -list)")
		benchPath = flag.String("bench", "", "ISCAS-89 .bench netlist to load instead of a profile")
		tests     = flag.String("tests", "diag", `test-set type: "diag" or "10det"`)
		seed      = flag.Int64("seed", 1, "master random seed")
		effort    = flag.Float64("effort", 0, "search effort in (0,1]; 0 = auto-scale")
		list      = flag.Bool("list", false, "list available circuit profiles and exit")
		saveDict  = flag.String("save-dict", "", "write the compiled same/different dictionary to this file")
		inject    = flag.Int("inject", -1, "inject the i-th collapsed fault as a defect (with -dump-responses)")
		dumpResp  = flag.String("dump-responses", "", "write the observed responses of the injected defect (cmd/diagnose input)")
	)
	flag.Parse()

	if *list {
		tab := report.NewTable("name", "PIs", "POs", "DFFs", "gates")
		for _, name := range gen.Names() {
			p := gen.Profiles[name]
			tab.Addf(name, p.PIs, p.POs, p.DFFs, p.Gates)
		}
		tab.Render(os.Stdout)
		return
	}

	tt := experiment.TestSetType(*tests)
	if tt != experiment.Diagnostic && tt != experiment.TenDetect {
		fatal("unknown -tests %q (want diag or 10det)", *tests)
	}

	var (
		pr  *experiment.Prepared
		err error
	)
	cfg := experiment.Config{Seed: *seed, Effort: *effort}
	switch {
	case *benchPath != "":
		f, ferr := os.Open(*benchPath)
		if ferr != nil {
			fatal("%v", ferr)
		}
		c, perr := bench.Parse(f, *benchPath)
		f.Close()
		if perr != nil {
			fatal("%v", perr)
		}
		pr, err = experiment.Prepare(c, tt, cfg)
	case *circuit != "":
		pr, err = experiment.PrepareProfile(*circuit, tt, cfg)
	default:
		fatal("need -circuit or -bench (or -list)")
	}
	if err != nil {
		fatal("%v", err)
	}

	st := pr.Circuit.Stat()
	fmt.Printf("circuit %s: %d inputs, %d outputs, %d gates (full-scan view)\n",
		st.Name, st.PIs, st.POs, st.LogicGates)
	fmt.Printf("faults: %d collapsed single stuck-at\n", len(pr.Faults))
	fmt.Printf("tests: %d (%s)\n", pr.Tests.Len(), pr.GenInfo)
	fmt.Println()

	row := experiment.BuildRow(pr, tt, cfg)
	m := pr.Matrix
	full := core.NewFull(m)
	pf := core.NewPassFail(m)
	sd := row.Dict

	tab := report.NewTable("dictionary", "size (bits)", "indistinguished pairs", "avg candidates", "perfect diagnoses")
	for _, d := range []struct {
		name string
		dict *core.Dictionary
		size int64
		ind  int64
	}{
		{"full", full, row.SizeFull, row.IndFull},
		{"pass/fail", pf, row.SizePF, row.IndPF},
		{"same/different", sd, row.SizeSD, row.IndSDFinal},
	} {
		q := diagnose.EvaluateResolution(d.dict)
		tab.Addf(d.name, report.Comma(d.size), d.ind,
			fmt.Sprintf("%.2f", q.AvgCandidates), q.Perfect)
	}
	tab.Render(os.Stdout)
	fmt.Println()
	fmt.Printf("same/different construction: Procedure 1 best %d (over %d restarts), "+
		"Procedure 2 %d, fault-free-seeded %d; %d/%d baselines stored after minimization (%s bits)\n",
		row.IndSDRand, row.BuildStats.Restarts, row.IndSDRepl,
		row.BuildStats.IndistSeeded, row.StoredBaselines, row.Tests,
		report.Comma(row.SizeSDMinimized))

	if *dumpResp != "" {
		if *inject < 0 || *inject >= len(pr.Faults) {
			fatal("-dump-responses needs -inject in [0,%d)", len(pr.Faults))
		}
		defect := pr.Faults[*inject]
		obs, err := diagnose.ObservedResponses(pr.Circuit, []fault.Fault{defect}, pr.Tests)
		if err != nil {
			fatal("%v", err)
		}
		f, err := os.Create(*dumpResp)
		if err != nil {
			fatal("%v", err)
		}
		w := bufio.NewWriter(f)
		for _, v := range obs {
			fmt.Fprintln(w, v.String(m.M))
		}
		if err := w.Flush(); err != nil {
			fatal("%v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("defect #%d (%s) injected; %d observed responses written to %s\n",
			*inject, defect.Name(pr.Circuit), len(obs), *dumpResp)
	}

	if *saveDict != "" {
		compiled, err := sd.Compile()
		if err != nil {
			fatal("%v", err)
		}
		f, err := os.Create(*saveDict)
		if err != nil {
			fatal("%v", err)
		}
		n, err := compiled.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal("writing %s: %v", *saveDict, err)
		}
		fmt.Printf("compiled same/different dictionary written to %s (%s bytes on disk, %s payload bits)\n",
			*saveDict, report.Comma(n), report.Comma(compiled.SizeBits()))
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "sdd: "+format+"\n", args...)
	os.Exit(1)
}
