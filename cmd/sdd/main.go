// Command sdd is the end-to-end pipeline driver: it takes a circuit (a
// named synthetic profile or a .bench file), collapses its stuck-at faults,
// generates a test set, builds the full, pass/fail and same/different fault
// dictionaries, and reports their sizes and diagnostic resolution.
//
// Usage:
//
//	sdd -circuit s298 [-tests diag|10det] [-seed N] [-effort 0..1]
//	sdd -bench path/to/circuit.bench [-tests diag|10det]
//	sdd -list
//
// Example:
//
//	$ sdd -circuit s344 -tests 10det
//
// Ctrl-C during dictionary construction does not discard the run: the
// best-so-far dictionary is reported (and saved with -save-dict) before
// the command exits with code 130. With -checkpoint the restart state is
// persisted so a later identical invocation resumes the search.
//
// The shared observability flags (-progress, -trace-out, -metrics-out,
// -metrics-addr, -pprof) record the run without changing its outputs;
// cmd/sddstat turns the trace and metrics artifacts into a phase/
// convergence report afterwards, and -metrics-addr serves the live
// counters in OpenMetrics text format at /metrics for scraping.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"sddict/internal/bench"
	"sddict/internal/cli"
	"sddict/internal/core"
	"sddict/internal/diagnose"
	"sddict/internal/dictio"
	"sddict/internal/experiment"
	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/report"
)

func main() {
	cli.Main("sdd", run)
}

func run(ctx context.Context) error {
	var (
		circuit   = flag.String("circuit", "", "named synthetic circuit profile (see -list)")
		benchPath = flag.String("bench", "", "ISCAS-89 .bench netlist to load instead of a profile")
		tests     = flag.String("tests", "diag", `test-set type: "diag" or "10det"`)
		seed      = flag.Int64("seed", 1, "master random seed")
		effort    = flag.Float64("effort", 0, "search effort in (0,1]; 0 = auto-scale")
		list      = flag.Bool("list", false, "list available circuit profiles and exit")
		saveDict  = flag.String("save-dict", "", "write the compiled same/different dictionary to this file")
		publish   = flag.String("publish", "", "write a versioned, checksummed dictionary artifact (cmd/sddserve input) to this file")
		inject    = flag.Int("inject", -1, "inject the i-th collapsed fault as a defect (with -dump-responses)")
		dumpResp  = flag.String("dump-responses", "", "write the observed responses of the injected defect (cmd/diagnose input)")
		ckpt      = flag.String("checkpoint", "", "persist/resume dictionary-search state at this file")
		workers   = flag.Int("workers", 0, "worker count for fault simulation and restart search (0 = one per CPU); results are identical at any setting")
		obsFlags  = cli.RegisterObsFlags(flag.CommandLine)
	)
	flag.Parse()

	if *list {
		tab := report.NewTable("name", "PIs", "POs", "DFFs", "gates")
		for _, name := range gen.Names() {
			p := gen.Profiles[name]
			tab.Addf(name, p.PIs, p.POs, p.DFFs, p.Gates)
		}
		tab.Render(os.Stdout)
		return nil
	}

	tt := experiment.TestSetType(*tests)
	if tt != experiment.Diagnostic && tt != experiment.TenDetect {
		return cli.Usagef("unknown -tests %q (want diag or 10det)", *tests)
	}

	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer sess.Close()
	if sess.MetricsAddr != "" {
		fmt.Fprintf(os.Stderr, "sdd: serving OpenMetrics at http://%s/metrics\n", sess.MetricsAddr)
	}

	var pr *experiment.Prepared
	cfg := experiment.Config{Seed: *seed, Effort: *effort, CheckpointPath: *ckpt, Workers: *workers,
		Obs: sess.Observer}
	switch {
	case *benchPath != "":
		f, ferr := os.Open(*benchPath)
		if ferr != nil {
			return ferr
		}
		c, perr := bench.Parse(f, *benchPath)
		f.Close()
		if perr != nil {
			return perr
		}
		pr, err = experiment.PrepareCtx(ctx, c, tt, cfg)
	case *circuit != "":
		pr, err = experiment.PrepareProfileCtx(ctx, *circuit, tt, cfg)
	default:
		return cli.Usagef("need -circuit or -bench (or -list)")
	}
	if err != nil {
		return err
	}

	st := pr.Circuit.Stat()
	fmt.Printf("circuit %s: %d inputs, %d outputs, %d gates (full-scan view)\n",
		st.Name, st.PIs, st.POs, st.LogicGates)
	fmt.Printf("faults: %d collapsed single stuck-at\n", len(pr.Faults))
	fmt.Printf("tests: %d (%s)\n", pr.Tests.Len(), pr.GenInfo)
	fmt.Println()

	row, err := experiment.BuildRowCtx(ctx, pr, tt, cfg)
	if err != nil && row.Dict == nil {
		return err
	}
	if err != nil {
		// Checkpoint-save failure: the row is still valid, warn and go on.
		fmt.Fprintf(os.Stderr, "sdd: warning: %v\n", err)
	}
	if row.Status == experiment.RowInterrupted {
		fmt.Println("INTERRUPTED: dictionary construction stopped early; figures below are best-so-far")
		fmt.Println()
	}
	m := pr.Matrix
	full := core.NewFull(m)
	pf := core.NewPassFail(m)
	sd := row.Dict

	tab := report.NewTable("dictionary", "size (bits)", "indistinguished pairs", "avg candidates", "perfect diagnoses")
	for _, d := range []struct {
		name string
		dict *core.Dictionary
		size int64
		ind  int64
	}{
		{"full", full, row.SizeFull, row.IndFull},
		{"pass/fail", pf, row.SizePF, row.IndPF},
		{"same/different", sd, row.SizeSD, row.IndSDFinal},
	} {
		q := diagnose.EvaluateResolution(d.dict)
		tab.Addf(d.name, report.Comma(d.size), d.ind,
			fmt.Sprintf("%.2f", q.AvgCandidates), q.Perfect)
	}
	tab.Render(os.Stdout)
	fmt.Println()
	fmt.Printf("same/different construction: Procedure 1 best %d (over %d restarts), "+
		"Procedure 2 %d, fault-free-seeded %d; %d/%d baselines stored after minimization (%s bits)\n",
		row.IndSDRand, row.BuildStats.Restarts, row.IndSDRepl,
		row.BuildStats.IndistSeeded, row.StoredBaselines, row.Tests,
		report.Comma(row.SizeSDMinimized))
	if row.Status == experiment.RowInterrupted && *ckpt != "" {
		fmt.Printf("checkpoint kept at %s; rerun the same command to resume the search\n", *ckpt)
	}

	if *dumpResp != "" {
		if *inject < 0 || *inject >= len(pr.Faults) {
			return cli.Usagef("-dump-responses needs -inject in [0,%d)", len(pr.Faults))
		}
		defect := pr.Faults[*inject]
		obs, err := diagnose.ObservedResponses(pr.Circuit, []fault.Fault{defect}, pr.Tests)
		if err != nil {
			return err
		}
		err = core.AtomicWriteFile(*dumpResp, func(w io.Writer) error {
			for _, v := range obs {
				if _, werr := fmt.Fprintln(w, v.String(m.M)); werr != nil {
					return werr
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("defect #%d (%s) injected; %d observed responses written to %s\n",
			*inject, defect.Name(pr.Circuit), len(obs), *dumpResp)
	}

	if *saveDict != "" {
		compiled, err := sd.Compile()
		if err != nil {
			return err
		}
		var n int64
		err = core.AtomicWriteFile(*saveDict, func(w io.Writer) error {
			var werr error
			n, werr = compiled.WriteTo(w)
			return werr
		})
		if err != nil {
			return fmt.Errorf("writing %s: %w", *saveDict, err)
		}
		fmt.Printf("compiled same/different dictionary written to %s (%s bytes on disk, %s payload bits)\n",
			*saveDict, report.Comma(n), report.Comma(compiled.SizeBits()))
	}
	if *publish != "" {
		compiled, err := sd.Compile()
		if err != nil {
			return err
		}
		names := make([]string, len(pr.Faults))
		for i, f := range pr.Faults {
			names[i] = f.Name(pr.Circuit)
		}
		art, err := dictio.New(compiled, dictio.Header{
			Circuit: st.Name,
			TestSet: string(tt),
			Seed:    *seed,
			Faults:  names,
		})
		if err != nil {
			return err
		}
		if err := art.Save(*publish); err != nil {
			return err
		}
		fmt.Printf("dictionary artifact published to %s (format v%d, checksum %08x)\n",
			*publish, dictio.FormatVersion, art.Checksum)
	}
	if err := sess.Finish(os.Stdout); err != nil {
		return err
	}
	if row.Status == experiment.RowInterrupted {
		return cli.ErrInterrupted
	}
	return nil
}
