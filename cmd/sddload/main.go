// Command sddload is the load and chaos driver for sddserve: it
// synthesizes diagnosis traffic from a published dictionary artifact,
// fires it from concurrent clients, retries shed (503) responses with
// jittered exponential backoff honoring Retry-After, and reports
// latency percentiles (p50/p90/p99) via the trace-analytics percentile
// machinery.
//
// Usage:
//
//	sddload -addr 127.0.0.1:8090 -dict s298.sdda -clients 8 -requests 200
//
// Traffic is synthesized, not replayed: each request picks a modeled
// fault (deterministically from -seed) and fabricates the observed
// responses that fault would produce — for a single-baseline
// dictionary, the serve-side diagnosis must then find it as an exact
// candidate, so sddload doubles as an end-to-end correctness probe
// under load.
//
// In -chaos mode request failures (refused connections, drained
// servers, exhausted retries) are tolerated and tallied instead of
// failing the run: chaos experiments kill the server mid-run on
// purpose, and the driver's job is to report how degradation looked
// from the client side, exiting 0.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"time"

	"sddict/internal/cli"
	"sddict/internal/core"
	"sddict/internal/dictio"
	"sddict/internal/obs"
	"sddict/internal/obs/analyze"
	"sddict/internal/par"
	"sddict/internal/serve"
)

func main() {
	cli.Main("sddload", run)
}

// result is one request's client-side outcome.
type result struct {
	id      string // request ID (the W3C trace-id sent as traceparent)
	ok      bool
	status  int   // final HTTP status (0 on transport failure)
	us      int64 // final attempt's client-observed latency
	totalUs int64 // end-to-end including retries and backoff sleeps
	shed    int   // 503 responses seen (including retried-through ones)
	retries int   // backoff sleeps taken
	exact   bool  // server found the planted fault exactly
	errMsg  string
}

func run(ctx context.Context) error {
	var (
		addr     = flag.String("addr", "", "sddserve address (host:port)")
		dictPath = flag.String("dict", "", "dictionary artifact to synthesize traffic from (must match the server's)")
		clients  = flag.Int("clients", 4, "concurrent client workers")
		requests = flag.Int("requests", 100, "total requests to send")
		topK     = flag.Int("top", 5, "top_k sent with each diagnosis")
		seed     = flag.Int64("seed", 1, "seed for fault selection and retry jitter")
		chaos    = flag.Bool("chaos", false, "tolerate request failures (server being killed is part of the experiment); always exit 0")
		hot      = flag.Int("hot", 0, "draw faults from only the first N rows so signatures repeat (exercises -casestore recall); 0 uses the whole fault list")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request client timeout")
		retries  = flag.Int("retries", 6, "max retry attempts after a 503")
		journal  = flag.String("journal", "", "write one client_request JSONL event per request, keyed by request ID (join against the server's span journal with `sddstat serve`)")
	)
	flag.Parse()
	if *addr == "" || *dictPath == "" {
		return cli.Usagef("need -addr and -dict")
	}
	if *requests < 1 || *clients < 1 {
		return cli.Usagef("-requests and -clients must be positive")
	}

	art, err := dictio.Load(*dictPath)
	if err != nil {
		return fmt.Errorf("loading artifact: %w", err)
	}
	// Exact-candidate verification needs sig == row, which synthesis
	// only guarantees against a single baseline per test.
	verifiable := art.Dict.ExtraBaseline == nil
	fmt.Printf("sddload: %s (%s, %d faults, %d tests) -> http://%s, %d requests from %d clients\n",
		*dictPath, art.Header.Circuit, len(art.Header.Faults), art.Header.Tests, *addr, *requests, *clients)

	// A hot set narrows the fault pool so the same observed signatures
	// recur across requests — recall-aware traffic for a server running
	// with -casestore. Clamped to the fault count; 0 means cold (uniform
	// over all faults).
	pool0 := len(art.Dict.Rows)
	if *hot > 0 && *hot < pool0 {
		pool0 = *hot
		fmt.Printf("sddload: hot set: first %d faults (repeated signatures)\n", pool0)
	}

	m := obs.NewMetrics()
	client := &http.Client{Timeout: *timeout}
	url := "http://" + *addr + "/diagnose"

	// The client journal records one client_request event per request —
	// the client half of the latency join `sddstat serve` computes
	// against the server's span journal, keyed by request ID.
	var jt *obs.Tracer
	if *journal != "" {
		jt, err = obs.NewFileTracer(*journal, time.Now)
		if err != nil {
			return fmt.Errorf("opening client journal: %w", err)
		}
		defer jt.Close()
	}

	pool := par.New(*clients)
	// res is a named return: the deferred journal emit below stamps the
	// end-to-end time onto the result that is actually delivered.
	results, perr := par.Map(ctx, pool, *requests, func(ctx context.Context, i int) (res result, _ error) {
		rng := par.RNG(*seed, i) // per-task stream: replayable at any client count
		fault := rng.Intn(pool0)
		body, err := json.Marshal(serve.DiagnoseRequest{
			Dictionary: *dictPath,
			Responses:  synthesize(art.Dict, fault),
			TopK:       *topK,
		})
		if err != nil {
			return result{}, err
		}
		// The trace-id names this request on both sides of the wire: the
		// server adopts it as the request ID (echoed as X-Request-ID) and
		// keys its span with it. Derived from the replayable per-task seed
		// stream, so the ID set is identical at any client count. Retries
		// reuse it — they are the same logical request.
		res = result{id: requestID(*seed, i)}
		traceparent := obs.FormatTraceparent(res.id, clientSpanID(*seed, i), true)
		taskStart := time.Now()
		defer func() {
			res.totalUs = time.Since(taskStart).Microseconds()
			emitClientRequest(jt, res)
		}()
		for attempt := 0; ; attempt++ {
			start := time.Now()
			status, resp, hint, err := postOnce(ctx, client, url, body, traceparent)
			res.us = time.Since(start).Microseconds()
			res.status = status
			m.Observe(obs.RequestUs, res.us)
			switch {
			case err != nil:
				res.errMsg = err.Error()
				return res, nil
			case status == http.StatusOK:
				if verifiable {
					res.exact = containsFault(resp, fault)
					if !res.exact {
						res.errMsg = fmt.Sprintf("planted fault %d missing from exact candidates", fault)
						return res, nil
					}
				}
				res.ok = true
				return res, nil
			case status == http.StatusServiceUnavailable && attempt < *retries:
				res.shed++
				res.retries++
				m.Inc(obs.LoadRetries)
				if !sleepCtx(ctx, backoff(rng, attempt, hint)) {
					res.errMsg = "interrupted during backoff"
					return res, nil
				}
			case status == http.StatusServiceUnavailable:
				res.shed++
				res.errMsg = "shed: retries exhausted"
				return res, nil
			default:
				res.errMsg = fmt.Sprintf("status %d", status)
				return res, nil
			}
		}
	})
	if perr != nil && !*chaos {
		return perr
	}

	var ok, failed, shed, retried, exact int
	firstErr := ""
	for _, r := range results {
		if r.ok {
			ok++
		} else {
			failed++
			if firstErr == "" && r.errMsg != "" {
				firstErr = r.errMsg
			}
		}
		shed += r.shed
		retried += r.retries
		if r.exact {
			exact++
		}
	}
	// par.Map aborts the remaining tasks on context cancellation; in
	// chaos mode the missing tail counts as failures too.
	if n := *requests - len(results); n > 0 {
		failed += n
		if firstErr == "" {
			firstErr = "aborted before sending"
		}
	}
	lat := analyze.Summarize(m.Snapshot().Histograms["request_us"])
	fmt.Printf("sddload: ok=%d failed=%d shed=%d retries=%d exact=%d\n", ok, failed, shed, retried, exact)
	fmt.Printf("sddload: latency_us count=%d p50=%.0f p90=%.0f p99=%.0f\n", lat.Count, lat.P50, lat.P90, lat.P99)
	// The slowest request IDs are the percentile tail made concrete:
	// each one can be looked up directly in the server's span journal
	// (sddstat serve does the join wholesale).
	for _, r := range slowest(results, 5) {
		fmt.Printf("sddload: slow request_id=%s us=%d status=%d\n", r.id, r.us, r.status)
	}
	if jt != nil {
		if err := jt.Close(); err != nil {
			return fmt.Errorf("client journal: %w", err)
		}
		fmt.Printf("sddload: client journal written to %s\n", *journal)
	}

	if failed > 0 {
		if !*chaos {
			return fmt.Errorf("%d/%d requests failed (first: %s)", failed, *requests, firstErr)
		}
		fmt.Printf("sddload: chaos mode, tolerating %d failures (first: %s)\n", failed, firstErr)
	}
	return nil
}

// synthesize fabricates the observed responses of the given fault: the
// test's baseline vector where the signature row says "same", the
// baseline with output bit 0 flipped where it says "different". Against
// a single-baseline dictionary the resulting signature equals the
// fault's row exactly, so the server must return the fault (or its
// equivalence class) as an exact candidate.
func synthesize(dict *core.Compiled, fault int) []string {
	row := dict.Rows[fault]
	out := make([]string, dict.NumTests)
	for j := 0; j < dict.NumTests; j++ {
		if row.Get(j) == 0 {
			out[j] = dict.Baseline[j].String(dict.Outputs)
			continue
		}
		v := dict.Baseline[j].Clone()
		v.Set(0, 1-v.Get(0))
		out[j] = v.String(dict.Outputs)
	}
	return out
}

// requestID derives the 32-hex W3C trace-id for task i — a pure
// function of the run seed and the task index, so the request-ID stream
// (and therefore the server's sampled-span set) replays identically at
// any client count.
func requestID(seed int64, i int) string {
	return fmt.Sprintf("%016x%016x", uint64(par.Seed(seed, i)), uint64(i)+1)
}

// clientSpanID is the 16-hex parent span id sent in traceparent —
// kept nonzero (the spec forbids all-zero ids) by the +1.
func clientSpanID(seed int64, i int) string {
	return fmt.Sprintf("%016x", uint64(par.Seed(seed, i)^int64(i))|1)
}

// emitClientRequest journals one request's client-observed outcome.
// Nil tracer: journaling off.
func emitClientRequest(jt *obs.Tracer, res result) {
	if jt == nil {
		return
	}
	fields := map[string]any{
		"request_id": res.id,
		"us":         res.us,
		"total_us":   res.totalUs,
		"status":     res.status,
		"ok":         res.ok,
		"attempts":   res.retries + 1,
	}
	if res.errMsg != "" {
		fields["error"] = res.errMsg
	}
	jt.Emit("client_request", fields)
}

// slowest returns the n largest final-attempt latencies, slowest first,
// skipping requests that never got a response.
func slowest(results []result, n int) []result {
	var got []result
	for _, r := range results {
		if r.status != 0 {
			got = append(got, r)
		}
	}
	sort.Slice(got, func(a, b int) bool {
		if got[a].us != got[b].us {
			return got[a].us > got[b].us
		}
		return got[a].id < got[b].id // stable report under latency ties
	})
	if len(got) > n {
		got = got[:n]
	}
	return got
}

// postOnce sends one diagnosis request and returns the status, body,
// and any Retry-After hint (0 when absent).
func postOnce(ctx context.Context, client *http.Client, url string, body []byte, traceparent string) (int, []byte, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", traceparent)
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, 0, err
	}
	defer resp.Body.Close()
	hint := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, nil, hint, err
	}
	return resp.StatusCode, data, hint, nil
}

// parseRetryAfter interprets a Retry-After response header. RFC 9110
// allows two forms: delay-seconds ("2") and an HTTP-date ("Fri, 08 Aug
// 2026 12:00:00 GMT"), the latter relative to now. Absent, garbage, or
// already-elapsed values return 0 — backoff then falls back to its
// jittered exponential default rather than hammering the server
// immediately or stalling on a bogus hint.
func parseRetryAfter(value string, now time.Time) time.Duration {
	if value == "" {
		return 0
	}
	if secs, err := strconv.Atoi(value); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(value); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// containsFault reports whether the single diagnosis result lists fault
// among its exact candidates.
func containsFault(body []byte, fault int) bool {
	var resp serve.DiagnoseResponse
	if err := json.Unmarshal(body, &resp); err != nil || len(resp.Results) != 1 {
		return false
	}
	r := resp.Results[0]
	if !r.Exact {
		return false
	}
	for _, c := range r.Candidates {
		if c.Fault == fault {
			return true
		}
	}
	return false
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// backoff computes the sleep before retry number attempt: exponential
// base (10ms doubling, capped at 500ms), floored by the server's
// Retry-After hint when it is larger, with full jitter so synchronized
// clients desync instead of re-colliding.
func backoff(rng *rand.Rand, attempt int, hint time.Duration) time.Duration {
	base := 10 * time.Millisecond << uint(attempt)
	if base > 500*time.Millisecond {
		base = 500 * time.Millisecond
	}
	if hint > base {
		base = hint
	}
	return time.Duration(rng.Int63n(int64(base))) + time.Millisecond
}
