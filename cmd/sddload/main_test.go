package main

// Unit tests for the client-side backoff plumbing: both RFC 9110
// Retry-After forms, the absent/garbage fallback, and the jittered
// exponential floor.

import (
	"math/rand"
	"testing"
	"time"
)

// gmt matters: RFC 9110 HTTP-dates are always GMT, and http.ParseTime
// rejects the "UTC" zone string time.UTC formats to.
var gmt = time.FixedZone("GMT", 0)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, time.August, 8, 12, 0, 0, 0, gmt)
	cases := []struct {
		name  string
		value string
		want  time.Duration
	}{
		{"absent", "", 0},
		{"delay seconds", "2", 2 * time.Second},
		{"zero seconds", "0", 0},
		{"negative seconds", "-3", 0},
		{"http date", now.Add(90 * time.Second).Format(time.RFC1123), 90 * time.Second},
		{"http date rfc850", now.Add(30 * time.Second).Format(time.RFC850), 30 * time.Second},
		{"http date in the past", now.Add(-time.Minute).Format(time.RFC1123), 0},
		{"garbage", "soon-ish", 0},
		{"float seconds", "1.5", 0}, // not a valid delay-seconds; fall back to default backoff
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.value, now); got != tc.want {
			t.Errorf("%s: parseRetryAfter(%q) = %v, want %v", tc.name, tc.value, got, tc.want)
		}
	}
}

// TestParseRetryAfterDateGranularity: HTTP-dates carry second
// granularity, so a sub-second now must still yield a positive wait,
// not a negative/zero one that would hammer the server.
func TestParseRetryAfterDateGranularity(t *testing.T) {
	now := time.Date(2026, time.August, 8, 12, 0, 0, 500_000_000, gmt)
	hint := parseRetryAfter(now.Add(time.Second).Truncate(time.Second).Format(time.RFC1123), now)
	if hint <= 0 || hint > time.Second {
		t.Errorf("sub-second date hint = %v, want within (0, 1s]", hint)
	}
}

// TestBackoffHonorsHint: the sleep floor is max(exponential base, hint)
// and the jitter never exceeds it; a zero hint (absent or unparsable
// header) falls back to the jittered exponential default rather than a
// zero-length sleep.
func TestBackoffHonorsHint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 8; attempt++ {
		base := 10 * time.Millisecond << uint(attempt)
		if base > 500*time.Millisecond {
			base = 500 * time.Millisecond
		}
		for _, hint := range []time.Duration{0, 2 * time.Second} {
			floor := base
			if hint > floor {
				floor = hint
			}
			for i := 0; i < 50; i++ {
				d := backoff(rng, attempt, hint)
				if d <= 0 || d > floor+time.Millisecond {
					t.Fatalf("attempt %d hint %v: backoff %v outside (0, %v]", attempt, hint, d, floor+time.Millisecond)
				}
			}
		}
	}
}
