// Command benchgen emits the synthetic benchmark circuits as ISCAS-89
// .bench files, so the generated analogs can be inspected, archived, or
// fed to third-party tools.
//
// Usage:
//
//	benchgen -circuit s344 -seed 2 -o s344.bench
//	benchgen -all -dir ./circuits
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sddict/internal/bench"
	"sddict/internal/cli"
	"sddict/internal/core"
	"sddict/internal/gen"
	"sddict/internal/netlist"
)

func main() {
	cli.Main("benchgen", run)
}

func run(ctx context.Context) error {
	var (
		circuit = flag.String("circuit", "", "profile name to synthesize")
		all     = flag.Bool("all", false, "emit every registered profile")
		seed    = flag.Int64("seed", 1, "generation seed")
		out     = flag.String("o", "", "output file (default: stdout)")
		dir     = flag.String("dir", ".", "output directory for -all")
	)
	flag.Parse()

	emit := func(c *netlist.Circuit, path string) error {
		if path == "" {
			return bench.Write(os.Stdout, c)
		}
		err := core.AtomicWriteFile(path, func(w io.Writer) error {
			return bench.Write(w, c)
		})
		if err != nil {
			return err
		}
		fmt.Printf("%s: %s\n", path, c.Stat())
		return nil
	}

	switch {
	case *all:
		for _, name := range gen.Names() {
			if err := ctx.Err(); err != nil {
				return err
			}
			c, err := gen.Profiles[name].Generate(*seed + 1)
			if err != nil {
				return err
			}
			if err := emit(c, filepath.Join(*dir, name+".bench")); err != nil {
				return err
			}
		}
	case *circuit != "":
		p, err := gen.Named(*circuit)
		if err != nil {
			return err
		}
		c, err := p.Generate(*seed + 1)
		if err != nil {
			return err
		}
		return emit(c, *out)
	default:
		return cli.Usagef("need -circuit or -all")
	}
	return nil
}
