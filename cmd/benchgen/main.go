// Command benchgen emits the synthetic benchmark circuits as ISCAS-89
// .bench files, so the generated analogs can be inspected, archived, or
// fed to third-party tools.
//
// Usage:
//
//	benchgen -circuit s344 -seed 2 -o s344.bench
//	benchgen -all -dir ./circuits
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sddict/internal/bench"
	"sddict/internal/gen"
	"sddict/internal/netlist"
)

func main() {
	var (
		circuit = flag.String("circuit", "", "profile name to synthesize")
		all     = flag.Bool("all", false, "emit every registered profile")
		seed    = flag.Int64("seed", 1, "generation seed")
		out     = flag.String("o", "", "output file (default: stdout)")
		dir     = flag.String("dir", ".", "output directory for -all")
	)
	flag.Parse()

	emit := func(c *netlist.Circuit, path string) {
		var w *os.File
		var err error
		if path == "" {
			w = os.Stdout
		} else {
			w, err = os.Create(path)
			if err != nil {
				fatal("%v", err)
			}
		}
		if err := bench.Write(w, c); err != nil {
			fatal("%v", err)
		}
		if path != "" {
			if err := w.Close(); err != nil {
				fatal("%v", err)
			}
			fmt.Printf("%s: %s\n", path, c.Stat())
		}
	}

	switch {
	case *all:
		for _, name := range gen.Names() {
			c := gen.Profiles[name].MustGenerate(*seed + 1)
			emit(c, filepath.Join(*dir, name+".bench"))
		}
	case *circuit != "":
		p, err := gen.Named(*circuit)
		if err != nil {
			fatal("%v", err)
		}
		c, err := p.Generate(*seed + 1)
		if err != nil {
			fatal("%v", err)
		}
		emit(c, *out)
	default:
		fatal("need -circuit or -all")
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchgen: "+format+"\n", args...)
	os.Exit(1)
}
