// Command table6 regenerates the paper's Table 6: for every circuit and
// both test-set types (diagnostic, 10-detection) it reports the test count,
// the sizes of the full, pass/fail and same/different dictionaries, and the
// number of fault pairs each leaves indistinguished.
//
// The circuits are synthetic analogs of the ISCAS-89 benchmarks (see
// DESIGN.md); absolute values therefore differ from the paper, but the
// relations between columns are the reproduction target.
//
// Usage:
//
//	table6 [-circuits s208,s298,...] [-seed N] [-effort 0..1] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sddict/internal/experiment"
	"sddict/internal/gen"
	"sddict/internal/report"
)

func main() {
	var (
		circuits = flag.String("circuits", strings.Join(gen.Table6Circuits, ","),
			"comma-separated circuit profiles to run")
		seed    = flag.Int64("seed", 1, "master random seed")
		effort  = flag.Float64("effort", 0, "search effort in (0,1]; 0 = auto-scale by circuit size")
		verbose = flag.Bool("v", false, "print per-row generation details")
	)
	flag.Parse()

	tab := report.NewTable(
		"circuit", "Ttype", "|T|",
		"size full", "size p/f", "size s/d",
		"ind full", "ind p/f", "ind s/d rand", "ind s/d repl")

	for _, name := range strings.Split(*circuits, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		for _, tt := range []experiment.TestSetType{experiment.Diagnostic, experiment.TenDetect} {
			cfg := experiment.Config{Seed: *seed, Effort: *effort}
			pr, err := experiment.PrepareProfile(name, tt, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "table6: %s/%s: %v\n", name, tt, err)
				os.Exit(1)
			}
			if *verbose {
				fmt.Fprintf(os.Stderr, "%s/%s: %s\n", name, tt, pr.GenInfo)
			}
			row := experiment.BuildRow(pr, tt, cfg)
			repl := "-"
			if row.Proc2Gain {
				repl = fmt.Sprintf("%d", row.IndSDRepl)
			}
			tab.Addf(name, string(tt), row.Tests,
				report.Comma(row.SizeFull), report.Comma(row.SizePF), report.Comma(row.SizeSD),
				row.IndFull, row.IndPF, row.IndSDRand, repl)
			if *verbose {
				fmt.Fprintf(os.Stderr, "%s/%s: final=%d stored baselines=%d/%d minimized size=%s restarts=%d elapsed=%s\n",
					name, tt, row.IndSDFinal, row.StoredBaselines, row.Tests,
					report.Comma(row.SizeSDMinimized), row.BuildStats.Restarts, row.Elapsed)
			}
		}
	}
	fmt.Println("Table 6: experimental results (synthetic ISCAS-89 analogs)")
	fmt.Println()
	tab.Render(os.Stdout)
	fmt.Println()
	fmt.Println(`Columns follow the paper: "ind s/d rand" is the best Procedure 1 result over
random test orders; "ind s/d repl" is the Procedure 2 result, shown only when
it improves on Procedure 1 (the paper omits it otherwise).`)
}
