// Command table6 regenerates the paper's Table 6: for every circuit and
// both test-set types (diagnostic, 10-detection) it reports the test count,
// the sizes of the full, pass/fail and same/different dictionaries, and the
// number of fault pairs each leaves indistinguished.
//
// The circuits are synthetic analogs of the ISCAS-89 benchmarks (see
// DESIGN.md); absolute values therefore differ from the paper, but the
// relations between columns are the reproduction target.
//
// Usage:
//
//	table6 [-circuits s208,s298,...] [-seed N] [-effort 0..1] [-workers N] [-v]
//	table6 -checkpoint-dir ./ckpt     # survive kills: rerun to resume
//
// Rows run concurrently (-workers, default one per CPU) but render in a
// fixed order with identical values at any worker count: each row's
// pipeline is deterministic, and the sweep merges results in spec order.
//
// Ctrl-C renders the rows completed so far before exiting with code 130.
// A circuit whose pipeline fails (including an internal panic, recovered
// per row) is reported to stderr and skipped; the sweep continues.
//
// The shared observability flags (-progress, -trace-out, -metrics-out,
// -metrics-addr, -pprof) watch the sweep as it runs; cmd/sddstat
// analyzes the trace and metrics artifacts afterwards. -metrics-addr
// serves the live counters in OpenMetrics text format at /metrics, so a
// long sweep can sit behind a Prometheus scrape.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"sddict/internal/cli"
	"sddict/internal/experiment"
	"sddict/internal/gen"
	"sddict/internal/report"
)

func main() {
	cli.Main("table6", run)
}

func run(ctx context.Context) error {
	var (
		circuits = flag.String("circuits", strings.Join(gen.Table6Circuits, ","),
			"comma-separated circuit profiles to run")
		seed     = flag.Int64("seed", 1, "master random seed")
		effort   = flag.Float64("effort", 0, "search effort in (0,1]; 0 = auto-scale by circuit size")
		verbose  = flag.Bool("v", false, "print per-row generation details")
		ckptDir  = flag.String("checkpoint-dir", "", "persist/resume per-row dictionary-search state in this directory")
		workers  = flag.Int("workers", 0, "sweep rows to run concurrently (0 = one per CPU); results are identical at any setting")
		obsFlags = cli.RegisterObsFlags(flag.CommandLine)
	)
	flag.Parse()

	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
	}

	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer sess.Close()
	if sess.MetricsAddr != "" {
		fmt.Fprintf(os.Stderr, "table6: serving OpenMetrics at http://%s/metrics\n", sess.MetricsAddr)
	}

	tab := report.NewTable(
		"circuit", "Ttype", "|T|",
		"size full", "size p/f", "size s/d",
		"ind full", "ind p/f", "ind s/d rand", "ind s/d repl")

	interrupted := false
	failures := 0

	render := func() {
		fmt.Println("Table 6: experimental results (synthetic ISCAS-89 analogs)")
		fmt.Println()
		tab.Render(os.Stdout)
		fmt.Println()
		fmt.Println(`Columns follow the paper: "ind s/d rand" is the best Procedure 1 result over
random test orders; "ind s/d repl" is the Procedure 2 result, shown only when
it improves on Procedure 1 (the paper omits it otherwise).`)
	}

	// Independent (circuit, test-set-type) rows run concurrently; results
	// stream back in spec order, so the table and the verbose log are
	// deterministic whatever the worker count. When only one row is in
	// flight at a time, the intra-row stages parallelize instead.
	rowWorkers := *workers
	if rowWorkers <= 0 {
		rowWorkers = runtime.GOMAXPROCS(0)
	}
	innerWorkers := 1
	if rowWorkers == 1 {
		innerWorkers = 0
	}
	var specs []experiment.RowSpec
	for _, name := range strings.Split(*circuits, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		for _, tt := range []experiment.TestSetType{experiment.Diagnostic, experiment.TenDetect} {
			cfg := experiment.Config{Seed: *seed, Effort: *effort, Workers: innerWorkers}
			if *ckptDir != "" {
				cfg.CheckpointPath = filepath.Join(*ckptDir, fmt.Sprintf("%s-%s.ckpt", name, tt))
			}
			specs = append(specs, experiment.RowSpec{Circuit: name, TType: tt, Config: cfg})
		}
	}

	experiment.RunSweepObsCtx(ctx, rowWorkers, specs, sess.Observer, func(_ int, res experiment.RowResult) {
		name, tt := res.Spec.Circuit, res.Spec.TType
		row := res.Row
		if res.Err != nil && row.Dict == nil {
			if ctx.Err() != nil {
				// Cancelled before this row could produce anything.
				interrupted = true
				return
			}
			// One bad circuit (even a recovered panic) must not take down
			// the whole sweep.
			fmt.Fprintf(os.Stderr, "table6: %s/%s: %v (skipped)\n", name, tt, res.Err)
			failures++
			return
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "%s/%s: %s\n", name, tt, res.GenInfo)
		}
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "table6: %s/%s: warning: %v\n", name, tt, res.Err)
		}
		label := name
		if row.Status == experiment.RowInterrupted {
			label = name + "*" // best-so-far, not a completed search
			interrupted = true
		}
		repl := "-"
		if row.Proc2Gain {
			repl = fmt.Sprintf("%d", row.IndSDRepl)
		}
		tab.Addf(label, string(tt), row.Tests,
			report.Comma(row.SizeFull), report.Comma(row.SizePF), report.Comma(row.SizeSD),
			row.IndFull, row.IndPF, row.IndSDRand, repl)
		if *verbose {
			fmt.Fprintf(os.Stderr, "%s/%s: final=%d stored baselines=%d/%d minimized size=%s restarts=%d elapsed=%s\n",
				name, tt, row.IndSDFinal, row.StoredBaselines, row.Tests,
				report.Comma(row.SizeSDMinimized), row.BuildStats.Restarts, row.Elapsed)
		}
	})
	if ctx.Err() != nil {
		// Cancellation between row deliveries produces no per-row signal:
		// the sweep just stops handing out results. Without this check a
		// sweep interrupted at a row boundary would render as complete.
		interrupted = true
	}
	render()
	if err := sess.Finish(os.Stdout); err != nil {
		return err
	}
	if interrupted {
		fmt.Println()
		fmt.Println("interrupted: rows marked * hold the best dictionary found before the signal;")
		if *ckptDir != "" {
			fmt.Println("rerun the same command to resume from the checkpoints in " + *ckptDir)
		} else {
			fmt.Println("rerun with -checkpoint-dir to make interrupted searches resumable")
		}
		return cli.ErrInterrupted
	}
	if failures > 0 {
		return errors.New(plural(failures, "row") + " failed (see stderr)")
	}
	return nil
}

func plural(n int, noun string) string {
	if n == 1 {
		return fmt.Sprintf("%d %s", n, noun)
	}
	return fmt.Sprintf("%d %ss", n, noun)
}
