package main

import (
	"bytes"
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"sddict/internal/core"
)

func report(benches ...Benchmark) *Report { return &Report{Benchmarks: benches} }

func bench(name string, nsPerOp float64, metrics map[string]float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, NsPerOp: nsPerOp, Metrics: metrics}
}

func TestCompareReportsCleanRun(t *testing.T) {
	base := report(bench("ParallelBuild/s526/workers=1", 100e6,
		map[string]float64{"ind_sd": 939, "restarts": 145}))
	cur := report(bench("ParallelBuild/s526/workers=1", 180e6, // slower but under 4x
		map[string]float64{"ind_sd": 939, "restarts": 145}))

	c := compareReports(base, cur, 4.0, 0)
	if c.regressions != 0 {
		t.Errorf("clean run regressed: %+v", c.lines)
	}
	if c.compared != 1 {
		t.Errorf("compared = %d, want 1", c.compared)
	}
}

func TestCompareReportsNsRatio(t *testing.T) {
	base := report(bench("ParallelFaultSim/s298/workers=4", 10e6, nil))
	cur := report(bench("ParallelFaultSim/s298/workers=4", 50e6, nil))

	if c := compareReports(base, cur, 4.0, 0); c.regressions != 1 {
		t.Errorf("5x slowdown must regress at 4x: %+v", c.lines)
	}
	if c := compareReports(base, cur, 6.0, 0); c.regressions != 0 {
		t.Errorf("5x slowdown must pass at 6x: %+v", c.lines)
	}
	// Disabled ns gate never regresses on timing.
	if c := compareReports(base, cur, 0, 0); c.regressions != 0 {
		t.Errorf("disabled ns gate regressed: %+v", c.lines)
	}
}

func TestCompareReportsDeterministicDrift(t *testing.T) {
	base := report(bench("ParallelBuild/s526/workers=1", 100e6,
		map[string]float64{"ind_sd": 939}))
	cur := report(bench("ParallelBuild/s526/workers=1", 100e6,
		map[string]float64{"ind_sd": 941}))

	c := compareReports(base, cur, 4.0, 0)
	if c.regressions != 1 {
		t.Fatalf("deterministic metric drift must regress: %+v", c.lines)
	}
	if !strings.Contains(strings.Join(c.lines, "\n"), "ind_sd") {
		t.Errorf("drift line must name the metric: %+v", c.lines)
	}
	// An explicit tolerance admits the drift; a negative one disables
	// the gate.
	if c := compareReports(base, cur, 4.0, 1.0); c.regressions != 0 {
		t.Errorf("0.2%% drift within 1%% tolerance regressed: %+v", c.lines)
	}
	if c := compareReports(base, cur, 4.0, -1); c.regressions != 0 {
		t.Errorf("disabled metric gate regressed: %+v", c.lines)
	}
}

func TestCompareReportsMissingAndNew(t *testing.T) {
	base := report(
		bench("ParallelBuild/s526/workers=1", 1, map[string]float64{"ind_sd": 1}),
		bench("ParallelBuild/s1196/workers=1", 1, nil), // dropped by -short runs
	)
	cur := report(
		bench("ParallelBuild/s526/workers=1", 1, map[string]float64{"ind_sd": 1}),
		bench("ParallelBuild/s526/workers=16", 1, nil), // machine-dependent worker count
	)

	c := compareReports(base, cur, 4.0, 0)
	if c.regressions != 0 {
		t.Errorf("missing/new benchmarks are informational, got regressions: %+v", c.lines)
	}
	joined := strings.Join(c.lines, "\n")
	if !strings.Contains(joined, "missing from current run") || !strings.Contains(joined, "new (not in baseline)") {
		t.Errorf("lines = %+v", c.lines)
	}

	// A missing *metric* on a shared benchmark IS a regression: the
	// benchmark stopped reporting its deterministic output.
	cur2 := report(bench("ParallelBuild/s526/workers=1", 1, nil),
		bench("ParallelBuild/s1196/workers=1", 1, nil))
	if c := compareReports(base, cur2, 4.0, 0); c.regressions != 1 {
		t.Errorf("dropped metric must regress: %+v", c.lines)
	}
}

func TestCompareReportsEmptyIntersection(t *testing.T) {
	base := report(bench("A", 1, nil))
	cur := report(bench("B", 1, nil))
	if c := compareReports(base, cur, 4.0, 0); c.regressions == 0 {
		t.Error("empty intersection must fail: nothing was compared")
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep *Report) string {
		path := filepath.Join(dir, name)
		err := core.AtomicWriteFile(path, func(w io.Writer) error {
			return json.NewEncoder(w).Encode(rep)
		})
		if err != nil {
			t.Fatal(err)
		}
		return path
	}
	basePath := write("base.json", report(bench("X", 1e6, map[string]float64{"restarts": 10})))
	goodPath := write("good.json", report(bench("X", 1.5e6, map[string]float64{"restarts": 10})))
	badPath := write("bad.json", report(bench("X", 1.5e6, map[string]float64{"restarts": 12})))

	var out bytes.Buffer
	if err := runCompare([]string{basePath, goodPath}, &out); err != nil {
		t.Errorf("clean compare failed: %v\n%s", err, out.String())
	}
	out.Reset()
	err := runCompare([]string{basePath, badPath}, &out)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Errorf("drifted compare must fail, got %v", err)
	}
	if !strings.Contains(out.String(), "restarts") {
		t.Errorf("table must show the drifted metric:\n%s", out.String())
	}
}
