package main

import (
	"strings"
	"testing"
)

const sampleLog = `goos: linux
goarch: amd64
pkg: sddict
cpu: Intel(R) Xeon(R)
BenchmarkParallelBuild/s526/workers=1-4         	      10	 123456789 ns/op	       456 ind_sd	        12 restarts
BenchmarkParallelBuild/s526/workers=4-4         	      30	  41152263 ns/op	       456 ind_sd	        12 restarts
BenchmarkParallelFaultSim/s298/workers=1-4      	     100	   9876543 ns/op	      0.51 Mfault_tests
PASS
ok  	sddict	12.345s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "sddict" || rep.CPU != "Intel(R) Xeon(R)" {
		t.Fatalf("bad header: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "ParallelBuild/s526/workers=1" || b.Procs != 4 || b.Iterations != 10 {
		t.Fatalf("bad first benchmark: %+v", b)
	}
	if b.NsPerOp != 123456789 {
		t.Fatalf("ns/op = %v, want 123456789", b.NsPerOp)
	}
	if b.Metrics["ind_sd"] != 456 || b.Metrics["restarts"] != 12 {
		t.Fatalf("bad metrics: %+v", b.Metrics)
	}
	if _, ok := b.Metrics["ns/op"]; ok {
		t.Fatal("ns/op must not be duplicated into the metrics map")
	}
	if fs := rep.Benchmarks[2]; fs.Metrics["Mfault_tests"] != 0.51 {
		t.Fatalf("float metric lost: %+v", fs.Metrics)
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-4\t10\t12 ns/op\ttrailing", // odd field count
		"BenchmarkX-4\tten\t12 ns/op",          // bad iteration count
		"BenchmarkX-4\t10\ttwelve ns/op",       // bad value
	} {
		if _, err := parse(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("parse(%q): expected error", bad)
		}
	}
}

func TestParseSkipsNonBenchmarkChatter(t *testing.T) {
	rep, err := parse(strings.NewReader("=== RUN   TestFoo\nPASS\nok  \tsddict\t1.0s\nBenchmarkY-1\t5\t7 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "Y" || rep.Benchmarks[0].Procs != 1 {
		t.Fatalf("unexpected report: %+v", rep)
	}
}
