// Command benchjson converts `go test -bench` output into the
// machine-readable JSON record the repo archives as BENCH_parallel.json
// (format documented in EXPERIMENTS.md). It keeps every custom metric a
// benchmark reported (ind_sd, cand_evals, ...) alongside ns/op, so the
// JSON carries the experimental outputs, not just the timings.
//
// Usage:
//
//	go test -run='^$' -bench='^BenchmarkParallel' . | benchjson -o BENCH_parallel.json
//	benchjson -o BENCH_parallel.json bench.out
//	benchjson compare [-ns-ratio r] [-metrics pct] BENCH_parallel.json current.json
//
// With no file argument the benchmark log is read from stdin. The output
// file is written atomically (temp file + rename) like every other
// artifact in the repo.
//
// The compare mode closes the bench loop: it diffs a fresh report
// against the checked-in baseline and exits nonzero when wall-clock
// regresses past the ratio or a deterministic custom metric drifts at
// all (any drift means the algorithm changed, not the machine — see
// EXPERIMENTS.md).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sddict/internal/cli"
	"sddict/internal/core"
)

func main() {
	cli.Main("benchjson", run)
}

// Benchmark is one `Benchmark...` result line. Metrics holds every
// value/unit pair after the iteration count except ns/op, which gets its
// own field; map keys are the units exactly as the benchmark reported
// them (ind_sd, B/op, ...).
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole converted log: the header lines the testing
// package prints (goos/goarch/pkg/cpu) plus the benchmark results in
// input order.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func run(ctx context.Context) error {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "compare" {
		return runCompare(args[1:], os.Stdout)
	}
	return runConvert(args, os.Stdout)
}

// runConvert is the original mode: benchmark log in, JSON report out.
func runConvert(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	out := fs.String("o", "", "output JSON path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return cli.Usagef("%v", err)
	}

	in := io.Reader(os.Stdin)
	switch rest := fs.Args(); len(rest) {
	case 0:
	case 1:
		f, err := os.Open(rest[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return cli.Usagef("at most one input file, got %d", len(rest))
	}

	rep, err := parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines in input")
	}

	if *out == "" {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return core.AtomicWriteFile(*out, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	})
}

// parse consumes a `go test -bench` log. Unrecognized lines (PASS, ok,
// test chatter) are skipped; malformed Benchmark lines are an error so a
// truncated log cannot silently produce a shorter report.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine splits one result line:
//
//	BenchmarkParallelBuild/s526/workers=4-4   10   1234 ns/op   56 ind_sd
//
// into its name (Benchmark prefix and -procs suffix stripped), iteration
// count, and value/unit pairs.
func parseLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 2 || len(f)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	b := Benchmark{Name: strings.TrimPrefix(f[0], "Benchmark")}
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("line %q: bad iteration count: %w", line, err)
	}
	b.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("line %q: bad value %q: %w", line, f[i], err)
		}
		if unit := f[i+1]; unit == "ns/op" {
			b.NsPerOp = v
		} else {
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}
