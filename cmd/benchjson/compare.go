package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"sddict/internal/cli"
)

// runCompare diffs a current benchmark report against the checked-in
// baseline. The two gates are deliberately different:
//
//   - ns/op is machine-dependent — the baseline was likely recorded on
//     different hardware — so it is a smoke gate with a generous default
//     ratio, catching only order-of-magnitude wall-clock regressions.
//   - The custom metrics (cand_evals, ind_sd, restarts, ...) are
//     deterministic outputs of the seeded search: any drift at all means
//     the algorithm changed, independent of the machine, so the default
//     tolerance is exact.
//
// Benchmarks present in only one report are warnings (the bench suite
// grows; a shrunk current set is suspicious but informational), except
// that an empty intersection is an error — then nothing was compared.
func runCompare(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson compare", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	nsRatio := fs.Float64("ns-ratio", 4.0,
		"allowed ns/op growth factor vs baseline before the compare fails (<=0 = never)")
	metricPct := fs.Float64("metrics", 0,
		"allowed drift of deterministic custom metrics in percent, either direction (negative = never)")
	if err := fs.Parse(args); err != nil {
		return cli.Usagef("%v", err)
	}
	if fs.NArg() != 2 {
		return cli.Usagef("usage: benchjson compare [-ns-ratio r] [-metrics pct] baseline.json current.json")
	}

	base, err := loadReport(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := loadReport(fs.Arg(1))
	if err != nil {
		return err
	}

	c := compareReports(base, cur, *nsRatio, *metricPct)
	if err := c.writeText(stdout); err != nil {
		return err
	}
	if c.regressions > 0 {
		return fmt.Errorf("%d benchmark regression(s) against %s", c.regressions, fs.Arg(0))
	}
	return nil
}

type benchComparison struct {
	lines       []string
	regressions int
	compared    int
}

func (c *benchComparison) addf(regression bool, format string, args ...any) {
	mark := "  "
	if regression {
		mark = "! "
		c.regressions++
	}
	c.lines = append(c.lines, mark+fmt.Sprintf(format, args...))
}

func (c *benchComparison) writeText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "bench comparison: %d benchmarks compared, %d regressions\n",
		c.compared, c.regressions); err != nil {
		return err
	}
	for _, line := range c.lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// compareReports produces the comparison; pure so tests drive it
// directly. Benchmark identity is the name (procs vary with the CI
// machine's GOMAXPROCS and are not part of identity).
func compareReports(base, cur *Report, nsRatio, metricPct float64) *benchComparison {
	c := &benchComparison{}
	curByName := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		curByName[b.Name] = b
	}
	baseNames := map[string]bool{}

	for _, bb := range base.Benchmarks {
		baseNames[bb.Name] = true
		cb, ok := curByName[bb.Name]
		if !ok {
			c.addf(false, "%-40s missing from current run", bb.Name)
			continue
		}
		c.compared++

		if nsRatio > 0 && bb.NsPerOp > 0 && cb.NsPerOp > bb.NsPerOp*nsRatio {
			c.addf(true, "%-40s ns/op %.0f -> %.0f (%.1fx > %.1fx allowed)",
				bb.Name, bb.NsPerOp, cb.NsPerOp, cb.NsPerOp/bb.NsPerOp, nsRatio)
		}

		for _, unit := range sortedMetricKeys(bb.Metrics) {
			bv := bb.Metrics[unit]
			cv, ok := cb.Metrics[unit]
			if !ok {
				c.addf(true, "%-40s metric %s missing from current run", bb.Name, unit)
				continue
			}
			if metricPct < 0 || bv == cv {
				continue
			}
			driftPct := math.Inf(1)
			if bv != 0 {
				driftPct = math.Abs(cv-bv) / math.Abs(bv) * 100
			}
			if driftPct > metricPct {
				c.addf(true, "%-40s %s %.6g -> %.6g (deterministic metric drifted %.2f%%)",
					bb.Name, unit, bv, cv, driftPct)
			}
		}
	}

	for _, cb := range cur.Benchmarks {
		if !baseNames[cb.Name] {
			c.addf(false, "%-40s new (not in baseline)", cb.Name)
		}
	}
	if c.compared == 0 {
		c.addf(true, "no benchmark names in common between baseline and current")
	}
	return c
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parsing bench report %s: %w", path, err)
	}
	return &rep, nil
}

func sortedMetricKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
