// Command sddstat is the post-run analyzer for the observability
// artifacts the pipeline commands write: it reads a -trace-out JSONL
// build-event trace (plus, optionally, the matching -metrics-out
// snapshot) and reports the reconstructed timeline — per-phase
// wall-clock breakdown, the restart-convergence curve, the
// speculation-waste ratio of the parallel search, checkpoint cadence,
// and histogram percentiles. Its compare mode diffs the metrics
// snapshots of two runs and exits nonzero when a counter or percentile
// drifted past its threshold in either direction, which is what CI
// gates on.
//
// Its serve mode reads an sddserve span journal instead — per-request
// spans with stage breakdowns — and, given the matching sddload client
// journal, joins the two by request ID: stage-level p50/p90/p99 with
// exemplar request IDs, plus the client-observed overhead each request
// paid on top of its server span.
//
// Usage:
//
//	sddstat [-json] trace.jsonl [metrics.json]
//	sddstat compare [-json] [-counters pct] [-percentiles pct] baseline.json current.json
//	sddstat serve [-json] server-trace.jsonl [client-journal.jsonl]
//
// Example:
//
//	$ sdd -circuit s298 -trace-out t.jsonl -metrics-out m.json
//	$ sddstat t.jsonl m.json
//
//	$ sddserve -dict s298.sdda -trace-out spans.jsonl &
//	$ sddload -addr 127.0.0.1:8090 -dict s298.sdda -journal client.jsonl
//	$ sddstat serve spans.jsonl client.jsonl
//
// A trace torn mid-write (the writer crashed or was SIGKILLed) is
// reported as TRUNCATED and analyzed from its parsed prefix rather
// than rejected: post-mortems on dead runs are this tool's main use.
// Exit status is 0 on success, 1 on a runtime failure or a compare
// regression, 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"sddict/internal/cli"
	"sddict/internal/obs"
	"sddict/internal/obs/analyze"
)

func main() {
	cli.Main("sddstat", run)
}

func run(ctx context.Context) error {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "compare":
			return runCompare(args[1:], os.Stdout)
		case "serve":
			return runServe(args[1:], os.Stdout)
		}
	}
	return runReport(args, os.Stdout)
}

// runServe analyzes a serve span journal (DESIGN.md §16): per-request
// spans, the stage-level latency breakdown with exemplar request IDs,
// and — given an sddload client journal — the client↔server latency
// join by request ID.
func runServe(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sddstat serve", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	asJSON := fs.Bool("json", false, "emit the serve analysis as JSON instead of the text report")
	if err := fs.Parse(args); err != nil {
		return cli.Usagef("%v", err)
	}
	var spanPath, clientPath string
	switch rest := fs.Args(); len(rest) {
	case 1:
		spanPath = rest[0]
	case 2:
		spanPath, clientPath = rest[0], rest[1]
	default:
		return cli.Usagef("usage: sddstat serve [-json] server-trace.jsonl [client-journal.jsonl]")
	}

	f, err := os.Open(spanPath)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := analyze.ReadServeRun(f)
	if err != nil {
		return err
	}
	if clientPath != "" {
		cf, err := os.Open(clientPath)
		if err != nil {
			return err
		}
		defer cf.Close()
		if err := r.JoinClient(cf); err != nil {
			return fmt.Errorf("joining client journal %s: %w", clientPath, err)
		}
	}
	if *asJSON {
		return writeJSON(stdout, r)
	}
	return r.WriteText(stdout)
}

// runReport is the default mode: analyze one run's artifacts.
func runReport(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sddstat", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	asJSON := fs.Bool("json", false, "emit the analysis as JSON instead of the text report")
	if err := fs.Parse(args); err != nil {
		return cli.Usagef("%v", err)
	}

	var tracePath, metricsPath string
	switch rest := fs.Args(); len(rest) {
	case 1:
		tracePath = rest[0]
	case 2:
		tracePath, metricsPath = rest[0], rest[1]
	default:
		return cli.Usagef("usage: sddstat [-json] trace.jsonl [metrics.json]")
	}

	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := analyze.ReadRun(f)
	if err != nil {
		return err
	}
	// A trace written by a newer schema may carry events whose meaning
	// changed; refuse rather than misreport.
	if r.Build.Schema > obs.TraceSchemaVersion {
		return fmt.Errorf("trace %s is schema v%d; this sddstat understands up to v%d",
			tracePath, r.Build.Schema, obs.TraceSchemaVersion)
	}

	if metricsPath != "" {
		snap, err := readSnapshot(metricsPath)
		if err != nil {
			return err
		}
		r.AttachMetrics(snap)
	}

	if *asJSON {
		return writeJSON(stdout, r)
	}
	return r.WriteText(stdout)
}

// runCompare diffs two -metrics-out snapshots and fails on regression.
func runCompare(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sddstat compare", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	asJSON := fs.Bool("json", false, "emit the comparison as JSON instead of the text table")
	counterPct := fs.Float64("counters", analyze.DefaultThresholds.CounterPct,
		"allowed counter drift in percent, either direction, before the compare fails (negative = never)")
	pctlPct := fs.Float64("percentiles", analyze.DefaultThresholds.PercentilePct,
		"allowed histogram-percentile drift in percent, either direction, before the compare fails (negative = never)")
	if err := fs.Parse(args); err != nil {
		return cli.Usagef("%v", err)
	}
	if fs.NArg() != 2 {
		return cli.Usagef("usage: sddstat compare [-json] [-counters pct] [-percentiles pct] baseline.json current.json")
	}

	a, err := readSnapshot(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := readSnapshot(fs.Arg(1))
	if err != nil {
		return err
	}

	c := analyze.Compare(a, b, analyze.Thresholds{CounterPct: *counterPct, PercentilePct: *pctlPct})
	if *asJSON {
		if err := writeJSON(stdout, c); err != nil {
			return err
		}
	} else if err := c.WriteText(stdout); err != nil {
		return err
	}
	if c.Regressed() {
		return fmt.Errorf("%d metric regression(s) against %s", c.Regressions, fs.Arg(0))
	}
	return nil
}

// readSnapshot loads a -metrics-out JSON file.
func readSnapshot(path string) (obs.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return obs.Snapshot{}, err
	}
	var s obs.Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return obs.Snapshot{}, fmt.Errorf("parsing metrics snapshot %s: %w", path, err)
	}
	return s, nil
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
