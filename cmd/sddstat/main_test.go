package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sddict/internal/core"
	"sddict/internal/obs"
	"sddict/internal/obs/analyze"
)

// writeTrace writes a small single-build trace file and returns its path.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	now := time.Unix(0, 0)
	tr, err := obs.NewFileTracer(path, func() time.Time { return now })
	if err != nil {
		t.Fatal(err)
	}
	emit := func(ms int64, typ string, fields map[string]any) {
		now = time.Unix(0, 0).Add(time.Duration(ms) * time.Millisecond)
		tr.Emit(typ, fields)
	}
	emit(0, "build_start", map[string]any{
		"schema": obs.TraceSchemaVersion, "faults": 32, "tests": 8,
		"seed": 1, "workers": 1, "indist_full": 2,
	})
	emit(10, "restart_start", map[string]any{"restart": 0})
	emit(50, "restart_end", map[string]any{"restart": 0, "indist": 6, "best": 6, "improved": true})
	emit(60, "checkpoint_save", map[string]any{"restarts": 1, "best_indist": 6, "persisted": true})
	emit(80, "proc2_sweep", map[string]any{"sweep": 1, "indist": 5})
	emit(90, "build_end", map[string]any{"indist": 5, "restarts": 1, "interrupted": false})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeSnapshot marshals a metrics snapshot to a JSON file exactly the
// way ObsSession.Finish does and returns its path.
func writeSnapshot(t *testing.T, name string, build func(*obs.Metrics)) string {
	t.Helper()
	m := obs.NewMetrics()
	build(m)
	snap := m.Snapshot()
	path := filepath.Join(t.TempDir(), name)
	err := core.AtomicWriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportText(t *testing.T) {
	trace := writeTrace(t)
	metrics := writeSnapshot(t, "m.json", func(m *obs.Metrics) {
		m.Add(obs.CandidateScans, 777)
		m.Observe(obs.RestartIndist, 6)
	})

	var out bytes.Buffer
	if err := runReport([]string{trace, metrics}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"build: 32 faults x 8 tests",
		"final indist 5 after 1 restarts",
		"phase breakdown:",
		"restart search",
		"checkpoints: 1 saves (1 persisted, 0 loads)",
		"candidate_scans = 777",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestReportJSON(t *testing.T) {
	var out bytes.Buffer
	if err := runReport([]string{"-json", writeTrace(t)}, &out); err != nil {
		t.Fatal(err)
	}
	var run analyze.Run
	if err := json.Unmarshal(out.Bytes(), &run); err != nil {
		t.Fatalf("output is not a Run JSON: %v\n%s", err, out.String())
	}
	if run.Events != 6 || !run.Build.Completed || run.Build.FinalIndist != 5 {
		t.Errorf("decoded run = %+v", run)
	}
}

func TestReportTruncatedTraceStillReports(t *testing.T) {
	full, err := os.ReadFile(writeTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(t.TempDir(), "torn.jsonl")
	err = core.AtomicWriteFile(torn, func(w io.Writer) error {
		_, werr := w.Write(full[:len(full)-10])
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := runReport([]string{torn}, &out); err != nil {
		t.Fatalf("truncated trace must still report: %v", err)
	}
	if !strings.Contains(out.String(), "TRUNCATED") {
		t.Errorf("report must flag truncation:\n%s", out.String())
	}
}

func TestReportRefusesNewerSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.jsonl")
	tr, err := obs.NewFileTracer(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit("build_start", map[string]any{"schema": obs.TraceSchemaVersion + 1})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	err = runReport([]string{path}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("future-schema trace must be refused, got %v", err)
	}
}

func TestReportUsageErrors(t *testing.T) {
	if err := runReport(nil, io.Discard); err == nil {
		t.Error("no arguments must be a usage error")
	}
	if err := runCompare([]string{"only-one.json"}, io.Discard); err == nil {
		t.Error("compare with one argument must be a usage error")
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	a := writeSnapshot(t, "a.json", func(m *obs.Metrics) { m.Add(obs.SimBatches, 100) })
	b := writeSnapshot(t, "b.json", func(m *obs.Metrics) { m.Add(obs.SimBatches, 150) })

	var out bytes.Buffer
	err := runCompare([]string{a, b}, &out)
	if err == nil {
		t.Fatal("50% counter growth must fail the default compare")
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Errorf("error = %v", err)
	}
	if !strings.Contains(out.String(), "sim_batches") {
		t.Errorf("table must name the regressed counter:\n%s", out.String())
	}

	// Same files, loosened threshold: passes.
	if err := runCompare([]string{"-counters", "75", a, b}, io.Discard); err != nil {
		t.Errorf("75%% threshold must pass: %v", err)
	}
	// Reversed direction fails too: the gate is on drift, not growth — a
	// counter dropping a third means the run changed, not that it won.
	if err := runCompare([]string{b, a}, io.Discard); err == nil {
		t.Error("a -33% counter drop must also fail the default compare")
	}
}

func TestCompareJSON(t *testing.T) {
	a := writeSnapshot(t, "a.json", func(m *obs.Metrics) { m.Add(obs.RestartsRun, 10) })
	b := writeSnapshot(t, "b.json", func(m *obs.Metrics) { m.Add(obs.RestartsRun, 10) })

	var out bytes.Buffer
	if err := runCompare([]string{"-json", a, b}, &out); err != nil {
		t.Fatal(err)
	}
	var c analyze.Comparison
	if err := json.Unmarshal(out.Bytes(), &c); err != nil {
		t.Fatalf("output is not a Comparison JSON: %v\n%s", err, out.String())
	}
	if c.Regressions != 0 || len(c.Deltas) != 1 {
		t.Errorf("comparison = %+v", c)
	}
}
