// Command sddlint runs this repository's invariant checkers — a
// multichecker in the style of golang.org/x/tools/go/analysis/multichecker,
// built on the stdlib-only facts-based framework in internal/analysis —
// over the module's packages. Analyzers export typed facts about
// functions while their defining package is analyzed (dependencies
// first) and consume them at call sites in importing packages, so
// cross-package reasoning like "this helper closes its argument" works
// without whole-program analysis.
//
// Analyzers (sddlint -list prints this table):
//
//	atomicwrite   artifact writes go through core.AtomicWriteFile
//	boundedalloc  allocations sized by decoded input are bounded first
//	concurrency   goroutines and sync.WaitGroup only in internal/par;
//	              no shared *rand.Rand captured by pool tasks
//	ctxpropagate  contexts threaded through the long-running layers;
//	              root contexts only in main, tests, compat wrappers
//	determinism   seeded RNG only, duration-only time.Now, sorted
//	              map-order results in the search packages
//	errcmp        errors compared with errors.Is, not == / !=
//	errwrap       fmt.Errorf wraps error arguments with %w
//	httpserver    no timeout-less http.Server configurations
//	leakcheck     os/net handles and cancel funcs released on every
//	              return path
//	nilobs        internal/obs methods keep the nil-receiver-is-off
//	              contract; nil-safe calls need no guard
//	noprint       no fmt printing to stdout/stderr, log.*, or print
//	              built-ins in library packages
//	osexit        os.Exit/log.Fatal only in main and internal/cli
//
// Findings are suppressed in source with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the finding's line (trailing) or the line above (standalone).
//
// Usage:
//
//	sddlint [-fix] [-json|-sarif] [packages]   # default ./...
//	sddlint -list
//
// -fix applies every machine-applicable suggested fix (atomically, via
// core.AtomicWriteFile) and reports what remains. -json emits a stable
// JSON array; -sarif emits SARIF 2.1.0 for CI annotation. Exit status
// is 0 when the tree is clean, 1 when any analyzer reports a finding,
// and 2 when the packages fail to load or type-check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"sddict/internal/analysis"
	"sddict/internal/analysis/atomicwrite"
	"sddict/internal/analysis/boundedalloc"
	"sddict/internal/analysis/concurrency"
	"sddict/internal/analysis/ctxpropagate"
	"sddict/internal/analysis/determinism"
	"sddict/internal/analysis/errcmp"
	"sddict/internal/analysis/errwrap"
	"sddict/internal/analysis/httpserver"
	"sddict/internal/analysis/leakcheck"
	"sddict/internal/analysis/nilobs"
	"sddict/internal/analysis/noprint"
	"sddict/internal/analysis/osexit"
	"sddict/internal/core"
)

func analyzers() []*analysis.Analyzer {
	as := []*analysis.Analyzer{
		atomicwrite.Analyzer,
		boundedalloc.Analyzer,
		concurrency.Analyzer,
		ctxpropagate.Analyzer,
		determinism.Analyzer,
		errcmp.Analyzer,
		errwrap.Analyzer,
		httpserver.Analyzer,
		leakcheck.Analyzer,
		nilobs.Analyzer,
		noprint.Analyzer,
		osexit.Analyzer,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// listAnalyzers writes the -list table; a test pins this output so the
// registered set cannot drift silently.
func listAnalyzers(w io.Writer) {
	for _, a := range analyzers() {
		fmt.Fprintf(w, "%-14s %s\n", a.Name, a.Doc)
	}
}

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("sddlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	fix := fs.Bool("fix", false, "apply suggested fixes to the source tree")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		listAnalyzers(stdout)
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "sddlint: -json and -sarif are mutually exclusive")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	as := analyzers()
	loader := analysis.NewLoader()
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "sddlint:", err)
		return 2
	}
	result, err := analysis.RunAll(loader, pkgs, as)
	if err != nil {
		fmt.Fprintln(stderr, "sddlint:", err)
		return 2
	}
	diags := result.Diagnostics

	if *fix {
		fixed, err := analysis.ApplyFixes(loader.Fset, diags, func(path string, data []byte) error {
			return core.AtomicWriteFile(path, func(w io.Writer) error {
				_, werr := w.Write(data)
				return werr
			})
		})
		if err != nil {
			fmt.Fprintln(stderr, "sddlint:", err)
			return 2
		}
		applied := 0
		for _, r := range fixed {
			applied += r.Applied
			fmt.Fprintf(stdout, "fixed %s (%d edit(s))\n", r.Path, r.Applied)
		}
		// What remains after fixing is what the next run would report;
		// keep the unfixable findings visible below.
		var rest []analysis.Diagnostic
		for _, d := range diags {
			if len(d.SuggestedFixes) == 0 {
				rest = append(rest, d)
			}
		}
		diags = rest
	}

	base, err := os.Getwd()
	if err != nil {
		base = ""
	}
	switch {
	case *jsonOut:
		if err := analysis.WriteJSON(stdout, loader.Fset, base, diags); err != nil {
			fmt.Fprintln(stderr, "sddlint:", err)
			return 2
		}
	case *sarifOut:
		if err := analysis.WriteSARIF(stdout, loader.Fset, base, as, diags); err != nil {
			fmt.Fprintln(stderr, "sddlint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: [%s] %s\n", loader.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "sddlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
