// Command sddlint runs this repository's invariant checkers — a
// multichecker in the style of golang.org/x/tools/go/analysis/multichecker,
// built on the stdlib-only framework in internal/analysis — over the
// module's packages.
//
// Analyzers:
//
//	determinism   seeded RNG only, duration-only time.Now, sorted
//	              map-order results in the search packages
//	ctxpropagate  contexts threaded through the long-running layers;
//	              root contexts only in main, tests, compat wrappers
//	atomicwrite   artifact writes go through core.AtomicWriteFile
//	errwrap       fmt.Errorf wraps error arguments with %w
//	concurrency   goroutines and sync.WaitGroup only in internal/par;
//	              no shared *rand.Rand captured by pool tasks
//	noprint       no fmt printing to stdout/stderr, log.*, or print
//	              built-ins in library packages (internal/obs and
//	              internal/cli are the sanctioned output sinks)
//	httpserver    no timeout-less http.Server configurations
//	              (ReadHeaderTimeout/ReadTimeout and IdleTimeout
//	              required; bare http.ListenAndServe forbidden)
//
// Usage:
//
//	sddlint [packages]   # default ./...
//
// Exit status is 0 when the tree is clean, 1 when any analyzer reports a
// finding, and 2 when the packages fail to load or type-check.
package main

import (
	"flag"
	"fmt"
	"os"

	"sddict/internal/analysis"
	"sddict/internal/analysis/atomicwrite"
	"sddict/internal/analysis/concurrency"
	"sddict/internal/analysis/ctxpropagate"
	"sddict/internal/analysis/determinism"
	"sddict/internal/analysis/errwrap"
	"sddict/internal/analysis/httpserver"
	"sddict/internal/analysis/noprint"
)

var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	ctxpropagate.Analyzer,
	atomicwrite.Analyzer,
	errwrap.Analyzer,
	concurrency.Analyzer,
	noprint.Analyzer,
	httpserver.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sddlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(loader, pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sddlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: [%s] %s\n", loader.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sddlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
