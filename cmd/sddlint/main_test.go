package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestListOutput pins the -list table against testdata/list.golden so
// the registered analyzer set (names, one-line docs, sorted order, and
// the table format itself) cannot drift silently. Regenerate the golden
// with `go run ./cmd/sddlint -list > cmd/sddlint/testdata/list.golden`
// after deliberately adding or renaming an analyzer.
func TestListOutput(t *testing.T) {
	want, err := os.ReadFile("testdata/list.golden")
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"-list"}); code != 0 {
		t.Fatalf("run(-list) = %d, want 0 (stderr: %s)", code, errb.String())
	}
	if out.String() != string(want) {
		t.Errorf("-list output drifted from testdata/list.golden:\ngot:\n%swant:\n%s", out.String(), want)
	}
	if n := len(strings.Split(strings.TrimRight(out.String(), "\n"), "\n")); n != 12 {
		t.Errorf("-list printed %d analyzers, want 12", n)
	}
}

// jsonFinding mirrors the fields of analysis.Finding the command tests
// care about.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Message  string `json:"message"`
}

func runDemoJSON(t *testing.T) (raw string, findings []jsonFinding) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(&out, &errb, []string{"-json", "./testdata/demo"})
	if code != 1 {
		t.Fatalf("run(-json ./testdata/demo) = %d, want 1 (findings present); stderr: %s", code, errb.String())
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	return out.String(), findings
}

// TestJSONFindingsAndDeterminism runs the full pipeline (go list, type
// check, facts, analyzers, suppression, JSON encoding) twice over the
// demo fixture and requires byte-identical output — the end-to-end
// counterpart of the framework-level determinism test in
// internal/analysis.
func TestJSONFindingsAndDeterminism(t *testing.T) {
	first, findings := runDemoJSON(t)

	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (suppressed finding must not appear):\n%s", len(findings), first)
	}
	byAnalyzer := map[string]jsonFinding{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = f
		if f.File != "testdata/demo/demo.go" {
			t.Errorf("finding path = %q, want testdata/demo/demo.go (relative to the working directory)", f.File)
		}
		if f.Line == 0 {
			t.Errorf("finding %q has no line number", f.Message)
		}
	}
	if _, ok := byAnalyzer["errcmp"]; !ok {
		t.Errorf("no errcmp finding for CompareEOF:\n%s", first)
	}
	if _, ok := byAnalyzer["leakcheck"]; !ok {
		t.Errorf("no leakcheck finding for LeakFile:\n%s", first)
	}

	second, _ := runDemoJSON(t)
	if first != second {
		t.Errorf("two -json runs differ:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}

// TestSARIFOutput smoke-tests the -sarif path end to end: valid SARIF
// 2.1.0 envelope, all twelve rules registered, and one result per
// unsuppressed demo finding.
func TestSARIFOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"-sarif", "./testdata/demo"}); code != 1 {
		t.Fatalf("run(-sarif) = %d, want 1; stderr: %s", code, errb.String())
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string            `json:"name"`
					Rules []json.RawMessage `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not SARIF JSON: %v", err)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("sarif version = %q, want 2.1.0", doc.Version)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("sarif has %d runs, want 1", len(doc.Runs))
	}
	if got := doc.Runs[0].Tool.Driver.Name; got != "sddlint" {
		t.Errorf("driver name = %q, want sddlint", got)
	}
	if got := len(doc.Runs[0].Tool.Driver.Rules); got != 12 {
		t.Errorf("driver registers %d rules, want 12", got)
	}
	if got := len(doc.Runs[0].Results); got != 2 {
		t.Errorf("sarif carries %d results, want 2", got)
	}
}

// TestFlagErrors pins the exit-code contract for bad invocations.
func TestFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"-json", "-sarif"}); code != 2 {
		t.Errorf("run(-json -sarif) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "mutually exclusive") {
		t.Errorf("conflict error missing from stderr: %q", errb.String())
	}
	errb.Reset()
	if code := run(&out, &errb, []string{"-no-such-flag"}); code != 2 {
		t.Errorf("run(-no-such-flag) = %d, want 2", code)
	}
}
