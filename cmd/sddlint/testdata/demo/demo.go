// Package demo is a fixture for the sddlint command tests: a known set
// of findings so the end-to-end -json/-sarif output is non-trivial. The
// directory is named testdata, so module-wide patterns (./...) never
// match it; the tests load it by explicit path.
package demo

import (
	"io"
	"os"
)

// CompareEOF compares an error with == (an errcmp finding; no fix is
// suggested because the file does not import "errors").
func CompareEOF(err error) bool {
	return err == io.EOF
}

// LeakFile opens a file and never closes it (a leakcheck finding with a
// suggested defer fix).
func LeakFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	return f.Name(), nil
}

// Suppressed exercises the in-source suppression path end to end.
func Suppressed(err error) bool {
	//lint:ignore errcmp fixture exercising the suppression path
	return err == io.EOF
}
