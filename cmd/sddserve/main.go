// Command sddserve runs the diagnosis service: it loads published
// dictionary artifacts (`sdd -publish`) and answers HTTP diagnosis
// requests with the same ranking code the batch `diagnose` command
// uses.
//
// Usage:
//
//	sddserve -addr 127.0.0.1:8090 -dict s298.sdda [-dict s344.sdda ...]
//
// Endpoints: POST /diagnose (single or batch observations),
// GET /dictionaries + POST /dictionaries/{load,evict}, GET /cases +
// GET /cases/correlate (the diagnosis memory, with -casestore),
// GET /healthz, GET /readyz (503 while draining), GET /metrics
// (OpenMetrics), GET /debug/requests (in-flight requests with their
// current stage and age).
//
// Every request is assigned a request ID (an inbound W3C `traceparent`
// header's trace-id is honored) and echoed back as X-Request-ID on
// every response path. With -trace-out, a deterministic -trace-sample
// fraction of request spans — stage-level timing for decode, recall,
// scan and record — lands in the trace journal; requests over -slow-ms
// or failing with a 5xx always do. Analyze the journal, optionally
// joined against an sddload -journal run, with `sddstat serve`
// (DESIGN.md §16).
//
// With -casestore DIR the server remembers every diagnosis in a
// durable case store (append-only journal + periodic snapshot under
// DIR) and answers repeated or near-repeated observed signatures from
// memory — recall before recompute, byte-identical responses whenever
// served (DESIGN.md §15). A SIGKILL mid-append loses at most the torn
// final journal line; the next start replays the rest.
//
// The server degrades rather than collapses: requests beyond
// -max-inflight are shed with 503 + Retry-After, every request runs
// under -timeout, handler panics become 500s, and SIGTERM/SIGINT
// triggers a drain — stop accepting, finish in-flight work (bounded by
// -drain-timeout), exit 0. A second signal forces exit 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"sddict/internal/casestore"
	"sddict/internal/cli"
	"sddict/internal/serve"
)

func main() {
	cli.Main("sddserve", run)
}

// stringList collects a repeatable string flag.
type stringList []string

func (s *stringList) String() string { return fmt.Sprint([]string(*s)) }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func run(ctx context.Context) error {
	var dicts stringList
	var (
		addr        = flag.String("addr", "127.0.0.1:8090", "listen address (use :0 for an ephemeral port)")
		maxInflight = flag.Int("max-inflight", 64, "in-flight request cap; excess requests are shed with 503")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request deadline")
		drain       = flag.Duration("drain-timeout", 10*time.Second, "how long to wait for in-flight requests on shutdown")
		cache       = flag.Int("cache", 8, "dictionary cache capacity (LRU beyond this)")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint attached to shed responses")
		chaosDelay  = flag.Duration("chaos-delay", 0, "artificially stretch every diagnosis by this much (fault-injection testing)")
		caseDir     = flag.String("casestore", "", "directory for the durable diagnosis case store (recall before recompute); empty disables")
		recall      = flag.Int("recall-budget", 2, "maximum Hamming distance for a near-match recall (with -casestore); negative disables near matching")
		snapEvery   = flag.Int("casestore-snapshot-every", 256, "journal appends between case-store snapshot rotations")
		traceSample = flag.Float64("trace-sample", 1, "fraction of request spans flushed to -trace-out, decided by a deterministic hash of the request ID; slow and failed requests always emit")
		slowMs      = flag.Int("slow-ms", 1000, "slow-request threshold in milliseconds: requests at or over it always emit their span and count serve_slow_requests; 0 disables")
	)
	flag.Var(&dicts, "dict", "dictionary artifact to preload (repeatable); a corrupt artifact fails startup")
	obsFlags := cli.RegisterObsFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() > 0 {
		return cli.Usagef("unexpected arguments: %v", flag.Args())
	}

	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer sess.Close()

	var cases *casestore.Store
	if *caseDir != "" {
		backend, err := casestore.OpenDir(*caseDir, casestore.FileOptions{SnapshotEvery: *snapEvery})
		if err != nil {
			return fmt.Errorf("opening case store: %w", err)
		}
		cases, err = casestore.Open(backend, casestore.Options{Budget: *recall})
		if err != nil {
			backend.Close()
			return fmt.Errorf("opening case store: %w", err)
		}
		defer cases.Close()
		fmt.Printf("sddserve: case store %s (%d prior cases, recall budget %d)\n",
			*caseDir, cases.Len(), *recall)
	}

	srv := serve.New(serve.Config{
		MaxInFlight:  *maxInflight,
		Timeout:      *timeout,
		DrainTimeout: *drain,
		CacheSize:    *cache,
		RetryAfter:   *retryAfter,
		ChaosDelay:   *chaosDelay,
		Cases:        cases,
		Obs:          sess.Observer,
		TraceSample:  *traceSample,
		SlowRequest:  time.Duration(*slowMs) * time.Millisecond,
	})

	// Preload before binding the port: a corrupt or missing artifact is
	// a startup failure, not a surprise on the first request.
	for _, path := range dicts {
		info, err := srv.LoadDictionary(path)
		if err != nil {
			return fmt.Errorf("preloading %s: %w", path, err)
		}
		fmt.Printf("sddserve: loaded %s (%s, %s, %d faults, %d tests, checksum %s)\n",
			info.Path, info.Circuit, info.Kind, info.Faults, info.Tests, info.Checksum)
	}

	//lint:ignore leakcheck ownership moves to srv.Serve; http.Server closes the listener on Shutdown
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The bound address line is the startup handshake: harness code
	// (serve_integration_test.go, sddload scripts) passes -addr :0 and
	// scrapes the actual port from here.
	fmt.Printf("sddserve: listening on %s\n", ln.Addr().String())
	os.Stdout.Sync()

	if err := srv.Serve(ctx, ln); err != nil {
		return err
	}
	fmt.Println("sddserve: drained cleanly")
	return sess.Finish(os.Stdout)
}
