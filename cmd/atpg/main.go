// Command atpg generates stuck-at test sets for a circuit and reports
// coverage: plain detection sets, n-detection sets, and diagnostic test
// sets with miter-based pair distinguishing.
//
// Usage:
//
//	atpg -circuit s298 [-n 10] [-diag] [-seed N] [-o tests.txt]
//	atpg -bench circuit.bench -n 1
//
// The output file holds one fully specified test vector per line, ordered
// over the full-scan inputs (primary inputs, then flip-flop pseudo inputs).
// On SIGINT/SIGTERM generation stops early and the tests earned so far are
// still reported (and written with -o); the exit code is 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"sddict/internal/atpg"
	"sddict/internal/bench"
	"sddict/internal/cli"
	"sddict/internal/core"
	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/netlist"
)

func main() {
	cli.Main("atpg", run)
}

func run(ctx context.Context) error {
	var (
		circuit   = flag.String("circuit", "", "named synthetic circuit profile")
		benchPath = flag.String("bench", "", ".bench netlist to load instead of a profile")
		n         = flag.Int("n", 1, "required detections per fault")
		diag      = flag.Bool("diag", false, "extend into a diagnostic test set (pair distinguishing)")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("o", "", "write test vectors to this file")
	)
	flag.Parse()

	var (
		c   *netlist.Circuit
		err error
	)
	switch {
	case *benchPath != "":
		f, ferr := os.Open(*benchPath)
		if ferr != nil {
			return ferr
		}
		c, err = bench.Parse(f, *benchPath)
		f.Close()
	case *circuit != "":
		var p gen.Profile
		p, err = gen.Named(*circuit)
		if err == nil {
			c, err = p.Generate(*seed + 1)
		}
	default:
		return cli.Usagef("need -circuit or -bench")
	}
	if err != nil {
		return err
	}

	comb := netlist.Combinationalize(c)
	col := fault.Collapse(comb)
	fmt.Printf("circuit %s: %d faults (collapsed from %d)\n", c.Name, len(col.Faults), len(col.Universe))

	cfg := atpg.DefaultConfig(*n)
	cfg.Seed = *seed + 2
	cfg.Compact = *n == 1
	tests, st := atpg.GenerateDetectionCtx(ctx, comb, col.Faults, cfg)
	fmt.Printf("detection: %d tests (%d random, %d podem), coverage %.2f%%, %d/%d reach %d detections, %d untestable, %d aborted\n",
		tests.Len(), st.RandomTests, st.PodemTests, 100*st.Coverage(),
		st.NDetected, st.Faults, *n, st.Untestable, st.Aborted)
	interrupted := st.Interrupted

	if *diag && !interrupted {
		dcfg := atpg.DefaultDiagConfig()
		dcfg.Seed = *seed + 3
		var dst atpg.DiagStats
		tests, dst = atpg.GenerateDiagnosticCtx(ctx, comb, col.Faults, tests, dcfg)
		fmt.Printf("diagnostic: +%d random +%d miter tests over %d rounds (%d miter calls); "+
			"%d equivalent pairs, %d aborted, %d response-identical pairs remain\n",
			dst.RandomTests, dst.AddedTests, dst.Rounds, dst.MiterCalls,
			dst.Equivalent, dst.Aborted, dst.IndistPairs)
		interrupted = interrupted || dst.Interrupted
	}
	if interrupted {
		fmt.Println("interrupted: the test set above is partial but every kept test is valid")
	}

	if *out != "" {
		werr := core.AtomicWriteFile(*out, func(w io.Writer) error {
			for _, v := range tests.Vecs {
				if _, err := fmt.Fprintln(w, v.Key()); err != nil {
					return err
				}
			}
			return nil
		})
		if werr != nil {
			return werr
		}
		fmt.Printf("wrote %d vectors (%d inputs each) to %s\n", tests.Len(), tests.Width, *out)
	}
	if interrupted {
		return cli.ErrInterrupted
	}
	return nil
}
