// Command atpg generates stuck-at test sets for a circuit and reports
// coverage: plain detection sets, n-detection sets, and diagnostic test
// sets with miter-based pair distinguishing.
//
// Usage:
//
//	atpg -circuit s298 [-n 10] [-diag] [-seed N] [-o tests.txt]
//	atpg -bench circuit.bench -n 1
//
// The output file holds one fully specified test vector per line, ordered
// over the full-scan inputs (primary inputs, then flip-flop pseudo inputs).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"sddict/internal/atpg"
	"sddict/internal/bench"
	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/netlist"
)

func main() {
	var (
		circuit   = flag.String("circuit", "", "named synthetic circuit profile")
		benchPath = flag.String("bench", "", ".bench netlist to load instead of a profile")
		n         = flag.Int("n", 1, "required detections per fault")
		diag      = flag.Bool("diag", false, "extend into a diagnostic test set (pair distinguishing)")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("o", "", "write test vectors to this file")
	)
	flag.Parse()

	var (
		c   *netlist.Circuit
		err error
	)
	switch {
	case *benchPath != "":
		f, ferr := os.Open(*benchPath)
		if ferr != nil {
			fatal("%v", ferr)
		}
		c, err = bench.Parse(f, *benchPath)
		f.Close()
	case *circuit != "":
		var p gen.Profile
		p, err = gen.Named(*circuit)
		if err == nil {
			c, err = p.Generate(*seed + 1)
		}
	default:
		fatal("need -circuit or -bench")
	}
	if err != nil {
		fatal("%v", err)
	}

	comb := netlist.Combinationalize(c)
	col := fault.Collapse(comb)
	fmt.Printf("circuit %s: %d faults (collapsed from %d)\n", c.Name, len(col.Faults), len(col.Universe))

	cfg := atpg.DefaultConfig(*n)
	cfg.Seed = *seed + 2
	cfg.Compact = *n == 1
	tests, st := atpg.GenerateDetection(comb, col.Faults, cfg)
	fmt.Printf("detection: %d tests (%d random, %d podem), coverage %.2f%%, %d/%d reach %d detections, %d untestable, %d aborted\n",
		tests.Len(), st.RandomTests, st.PodemTests, 100*st.Coverage(),
		st.NDetected, st.Faults, *n, st.Untestable, st.Aborted)

	if *diag {
		dcfg := atpg.DefaultDiagConfig()
		dcfg.Seed = *seed + 3
		var dst atpg.DiagStats
		tests, dst = atpg.GenerateDiagnostic(comb, col.Faults, tests, dcfg)
		fmt.Printf("diagnostic: +%d random +%d miter tests over %d rounds (%d miter calls); "+
			"%d equivalent pairs, %d aborted, %d response-identical pairs remain\n",
			dst.RandomTests, dst.AddedTests, dst.Rounds, dst.MiterCalls,
			dst.Equivalent, dst.Aborted, dst.IndistPairs)
	}

	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			fatal("%v", ferr)
		}
		w := bufio.NewWriter(f)
		for _, v := range tests.Vecs {
			fmt.Fprintln(w, v.Key())
		}
		if err := w.Flush(); err != nil {
			fatal("%v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote %d vectors (%d inputs each) to %s\n", tests.Len(), tests.Width, *out)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "atpg: "+format+"\n", args...)
	os.Exit(1)
}
