// Command diagnose runs tester-side cause-effect diagnosis with a compiled
// dictionary produced by `sdd -save-dict`: it reduces an observed response
// file to a signature and prints the matching fault candidates.
//
// Usage:
//
//	diagnose -dict s208.sdd -responses observed.txt
//
// The responses file holds one output vector (0/1 string, one bit per
// circuit output) per test, in test order — exactly what automatic test
// equipment logs per applied pattern.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"

	"sddict/internal/cli"
	"sddict/internal/core"
	"sddict/internal/logic"
)

func main() {
	cli.Main("diagnose", run)
}

// errNoMatch reports a defect outside the modeled fault universe; mapped to
// a runtime (non-usage) failure exit.
type errNoMatch struct{}

func (errNoMatch) Error() string {
	return "no exact match: the defect does not behave like any modeled fault"
}

func run(ctx context.Context) error {
	var (
		dictPath = flag.String("dict", "", "compiled dictionary file (from sdd -save-dict)")
		respPath = flag.String("responses", "", "observed responses, one 0/1 output vector per test")
	)
	flag.Parse()
	if *dictPath == "" || *respPath == "" {
		return cli.Usagef("need -dict and -responses")
	}

	df, err := os.Open(*dictPath)
	if err != nil {
		return err
	}
	dict, err := core.ReadCompiled(df)
	df.Close()
	if err != nil {
		return err
	}
	fmt.Printf("dictionary: %s, %d faults, %d tests, %d outputs, %d payload bits\n",
		dict.Kind, len(dict.Rows), dict.NumTests, dict.Outputs, dict.SizeBits())

	rf, err := os.Open(*respPath)
	if err != nil {
		return err
	}
	defer rf.Close()
	var observed []logic.BitVec
	sc := bufio.NewScanner(rf)
	line := 0
	for sc.Scan() {
		line++
		txt := sc.Text()
		if txt == "" {
			continue
		}
		if len(txt) != dict.Outputs {
			return fmt.Errorf("%s line %d: vector has %d bits, dictionary has %d outputs",
				*respPath, line, len(txt), dict.Outputs)
		}
		v := logic.NewBitVec(dict.Outputs)
		for i, c := range txt {
			switch c {
			case '0':
			case '1':
				v.Set(i, 1)
			default:
				return fmt.Errorf("%s line %d: invalid character %q", *respPath, line, c)
			}
		}
		observed = append(observed, v)
	}
	if err := sc.Err(); err != nil {
		return err
	}

	sig, err := dict.Signature(observed)
	if err != nil {
		return err
	}
	failing := sig.PopCount()
	fmt.Printf("signature: %d/%d tests flag \"different\"\n", failing, dict.NumTests)

	cands := dict.Candidates(sig)
	if len(cands) == 0 {
		fmt.Println("(nearest-match ranking requires the full library; see internal/diagnose)")
		return errNoMatch{}
	}
	fmt.Printf("candidate faults (%d):", len(cands))
	for _, c := range cands {
		fmt.Printf(" #%d", c)
	}
	fmt.Println()
	return nil
}
