// Command diagnose runs tester-side cause-effect diagnosis with a compiled
// dictionary produced by `sdd -save-dict`, or with a published dictionary
// artifact produced by `sdd -publish` (the format is auto-detected): it
// reduces an observed response file to a signature and prints the matching
// fault candidates.
//
// Usage:
//
//	diagnose -dict s208.sdd -responses observed.txt [-top 5]
//
// The responses file holds one output vector (0/1 string, one bit per
// circuit output) per test, in test order — exactly what automatic test
// equipment logs per applied pattern.
//
// When the signature matches no modeled fault exactly, -top N switches to
// nearest-match ranking (Hamming distance over the signature space, the
// same core.RankRows path internal/diagnose and cmd/sddserve use) instead
// of the default no-match failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"sddict/internal/cli"
	"sddict/internal/core"
	"sddict/internal/dictio"
	"sddict/internal/faultfs"
)

func main() {
	cli.Main("diagnose", run)
}

// errNoMatch reports a defect outside the modeled fault universe; mapped to
// a runtime (non-usage) failure exit.
type errNoMatch struct{}

func (errNoMatch) Error() string {
	return "no exact match: the defect does not behave like any modeled fault (use -top N for nearest matches)"
}

func run(ctx context.Context) error {
	var (
		dictPath = flag.String("dict", "", "compiled dictionary (sdd -save-dict) or published artifact (sdd -publish)")
		respPath = flag.String("responses", "", "observed responses, one 0/1 output vector per test")
		topK     = flag.Int("top", 0, "when no exact match, rank the N nearest fault candidates instead of failing (0 = off)")
	)
	flag.Parse()
	if *dictPath == "" || *respPath == "" {
		return cli.Usagef("need -dict and -responses")
	}

	dict, names, err := loadDictionary(*dictPath)
	if err != nil {
		return err
	}
	fmt.Printf("dictionary: %s, %d faults, %d tests, %d outputs, %d payload bits\n",
		dict.Kind, len(dict.Rows), dict.NumTests, dict.Outputs, dict.SizeBits())

	rf, err := os.Open(*respPath)
	if err != nil {
		return err
	}
	defer rf.Close()
	observed, err := dictio.ParseResponses(rf, dict.Outputs)
	if err != nil {
		return fmt.Errorf("%s: %w", *respPath, err)
	}

	sig, err := dict.Signature(observed)
	if err != nil {
		return err
	}
	failing := sig.PopCount()
	fmt.Printf("signature: %d/%d tests flag \"different\"\n", failing, dict.NumTests)

	cands := dict.Candidates(sig)
	if len(cands) == 0 {
		if *topK <= 0 {
			return errNoMatch{}
		}
		fmt.Printf("no exact match; %d nearest candidates by signature distance:\n", *topK)
		for _, r := range dict.Rank(sig, *topK) {
			fmt.Printf("  #%d distance %d%s\n", r.Fault, r.Distance, nameSuffix(names, r.Fault))
		}
		return nil
	}
	fmt.Printf("candidate faults (%d):", len(cands))
	for _, c := range cands {
		fmt.Printf(" #%d", c)
	}
	fmt.Println()
	for _, c := range cands {
		if s := nameSuffix(names, c); s != "" {
			fmt.Printf("  #%d%s\n", c, s)
		}
	}
	return nil
}

// loadDictionary opens either dictionary container: a published artifact
// (sniffed by magic, CRC-verified, carrying the fault-class table) or a
// bare compiled dictionary (no names).
func loadDictionary(path string) (*core.Compiled, []string, error) {
	isArtifact, err := dictio.SniffFile(faultfs.OS, path)
	if err != nil {
		return nil, nil, err
	}
	if isArtifact {
		art, err := dictio.Load(path)
		if err != nil {
			return nil, nil, err
		}
		fmt.Printf("artifact: %s circuit, %s tests, checksum %08x\n",
			art.Header.Circuit, art.Header.TestSet, art.Checksum)
		return art.Dict, art.Header.Faults, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	dict, err := core.ReadCompiled(f)
	if err != nil {
		return nil, nil, err
	}
	return dict, nil, nil
}

// nameSuffix formats fault i's name from the artifact's fault-class
// table, or "" for bare compiled dictionaries.
func nameSuffix(names []string, i int) string {
	if i < 0 || i >= len(names) {
		return ""
	}
	return " " + names[i]
}
