module sddict

go 1.22
