package sddict_test

// Test-artifact persistence for CI post-mortems. When a determinism or
// interrupt leg fails, the trace and metrics files it produced are the
// post-mortem record — exactly what cmd/sddstat consumes — so the CI
// workflow sets SDD_TEST_ARTIFACT_DIR and uploads the directory on
// failure. Locally the variable is unset and everything stays in
// throwaway temp directories.

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sddict/internal/core"
)

const artifactEnv = "SDD_TEST_ARTIFACT_DIR"

// artifactDir returns the directory a test should write its observability
// artifacts (traces, metrics, checkpoints) into: a per-test subdirectory
// of $SDD_TEST_ARTIFACT_DIR when set, else t.TempDir().
func artifactDir(t *testing.T) string {
	t.Helper()
	base := os.Getenv(artifactEnv)
	if base == "" {
		return t.TempDir()
	}
	dir := filepath.Join(base, sanitizeTestName(t.Name()))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("artifact dir %s: %v", dir, err)
	}
	return dir
}

// saveArtifactOnFailure arranges for data() to be written into the
// artifact directory when — and only when — the test fails, so in-memory
// telemetry (trace buffers) survives for the CI upload without cluttering
// passing runs. A no-op when SDD_TEST_ARTIFACT_DIR is unset.
func saveArtifactOnFailure(t *testing.T, name string, data func() []byte) {
	t.Helper()
	base := os.Getenv(artifactEnv)
	if base == "" {
		return
	}
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		dir := filepath.Join(base, sanitizeTestName(t.Name()))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("artifact dir %s: %v", dir, err)
			return
		}
		err := core.AtomicWriteFile(filepath.Join(dir, name), func(w io.Writer) error {
			_, werr := w.Write(data())
			return werr
		})
		if err != nil {
			t.Logf("saving artifact %s: %v", name, err)
		}
	})
}

// sanitizeTestName flattens a subtest path into one directory component.
func sanitizeTestName(name string) string {
	return strings.NewReplacer("/", "_", " ", "_").Replace(name)
}
