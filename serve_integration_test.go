package sddict_test

// End-to-end contract for the diagnosis service (DESIGN.md §12), exec'd
// against freshly built binaries because signal delivery, exit codes and
// real sockets cannot be observed in-process:
//
//   - TestServeEndToEnd: publish an artifact with `sdd -publish`, diagnose
//     an injected defect with batch `diagnose`, then ask a running
//     `sddserve` the same question over HTTP — the ranked candidate
//     indices must be identical. SIGTERM then drains the server: exit 0,
//     trace ending on a clean serve_shutdown event.
//
//   - TestServeChaosShedDrain: a deliberately tiny in-flight cap plus a
//     chaos delay under concurrent `sddload` traffic must shed with
//     503/Retry-After (visible as client-side retries), and a SIGTERM
//     mid-barrage must still produce a clean drain — degradation, never
//     collapse.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"sddict/internal/core"
	"sddict/internal/dictio"
	"sddict/internal/logic"
	"sddict/internal/obs"
	"sddict/internal/resp"
	"sddict/internal/serve"
)

// buildBinaries compiles the named commands into one temp dir and
// returns their paths keyed by name.
func buildBinaries(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	out := make(map[string]string, len(names))
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build ./cmd/%s: %v\n%s", name, err, b)
		}
		out[name] = bin
	}
	return out
}

// startServer launches sddserve with the given extra flags, waits for
// its "listening on" handshake, and returns the command and bound
// address. The caller owns Wait.
func startServer(t *testing.T, bin string, extra ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "sddserve: listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatalf("sddserve never printed its listen address; stderr:\n%s", stderr.String())
	}
	// Keep draining stdout so the server never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()
	return cmd, addr, &stderr
}

// candidateIndices extracts the exact-match fault indices from batch
// diagnose output ("candidate faults (2): #3 #14").
func candidateIndices(t *testing.T, out string) []int {
	t.Helper()
	re := regexp.MustCompile(`candidate faults \(\d+\):((?: #\d+)+)`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no candidate line in diagnose output:\n%s", out)
	}
	var ids []int
	for _, tok := range strings.Fields(m[1]) {
		n, err := strconv.Atoi(strings.TrimPrefix(tok, "#"))
		if err != nil {
			t.Fatalf("candidate token %q: %v", tok, err)
		}
		ids = append(ids, n)
	}
	return ids
}

func postDiagnose(t *testing.T, addr string, req serve.DiagnoseRequest) (serve.DiagnoseResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/diagnose", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /diagnose: %v", err)
	}
	defer resp.Body.Close()
	var out serve.DiagnoseResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

// assertTraceEndsClean parses the server trace and checks the drain
// choreography: a serve_drain event exists and the very last event is
// serve_shutdown with clean=true.
func assertTraceEndsClean(t *testing.T, tracePath string) {
	t.Helper()
	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	events, err := obs.ReadEvents(tf)
	if err != nil {
		t.Fatalf("server trace does not parse: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("server trace is empty")
	}
	drained := false
	for _, e := range events {
		if e.Type == "serve_drain" {
			drained = true
		}
	}
	if !drained {
		t.Error("trace has no serve_drain event")
	}
	last := events[len(events)-1]
	if last.Type != "serve_shutdown" {
		t.Errorf("trace ends with %q, want serve_shutdown", last.Type)
	}
	if clean, _ := last.Fields["clean"].(bool); !clean {
		t.Errorf("serve_shutdown not clean: %+v", last)
	}
}

func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("execs freshly built binaries; skipped in -short mode")
	}
	bins := buildBinaries(t, "sdd", "diagnose", "sddserve")
	dir := artifactDir(t)
	artPath := filepath.Join(dir, "s27.sdda")
	obsPath := filepath.Join(dir, "observed.txt")

	// Publish the dictionary and dump an injected defect's responses in
	// one pipeline run.
	pub := exec.Command(bins["sdd"], "-circuit", "s27", "-seed", "3",
		"-publish", artPath, "-inject", "5", "-dump-responses", obsPath)
	if out, err := pub.CombinedOutput(); err != nil {
		t.Fatalf("sdd -publish: %v\n%s", err, out)
	}

	// Batch diagnosis: the reference ranking.
	diag := exec.Command(bins["diagnose"], "-dict", artPath, "-responses", obsPath)
	diagOut, err := diag.CombinedOutput()
	if err != nil {
		t.Fatalf("diagnose: %v\n%s", err, diagOut)
	}
	want := candidateIndices(t, string(diagOut))

	tracePath := filepath.Join(dir, "serve-trace.jsonl")
	srv, addr, stderr := startServer(t, bins["sddserve"],
		"-dict", artPath, "-trace-out", tracePath)

	lines := readResponseLines(t, obsPath)
	single, status := postDiagnose(t, addr, serve.DiagnoseRequest{Dictionary: artPath, Responses: lines})
	if status != http.StatusOK || len(single.Results) != 1 {
		t.Fatalf("single diagnose: status %d, results %+v", status, single.Results)
	}
	if !single.Results[0].Exact {
		t.Fatalf("service found no exact match for a modeled fault: %+v", single.Results[0])
	}
	got := make([]int, 0, len(single.Results[0].Candidates))
	for _, c := range single.Results[0].Candidates {
		got = append(got, c.Fault)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("service candidates %v != batch diagnose candidates %v", got, want)
	}

	// Batch parity over the wire: the same observation twice must give
	// two byte-identical results.
	batch, status := postDiagnose(t, addr, serve.DiagnoseRequest{Dictionary: artPath, Batch: [][]string{lines, lines}})
	if status != http.StatusOK || len(batch.Results) != 2 {
		t.Fatalf("batch diagnose: status %d, %d results", status, len(batch.Results))
	}
	r0, _ := json.Marshal(batch.Results[0])
	r1, _ := json.Marshal(batch.Results[1])
	s0, _ := json.Marshal(single.Results[0])
	if !bytes.Equal(r0, r1) || !bytes.Equal(r0, s0) {
		t.Errorf("batch results diverge: %s / %s / single %s", r0, r1, s0)
	}

	// SIGTERM: drain and exit 0 with a clean shutdown trace.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := waitTimeout(t, srv, 30*time.Second); err != nil {
		t.Errorf("drained server exit: %v (want 0); stderr:\n%s", err, stderr.String())
	}
	assertTraceEndsClean(t, tracePath)
}

func readResponseLines(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, l := range strings.Split(string(data), "\n") {
		if l != "" {
			lines = append(lines, l)
		}
	}
	return lines
}

// waitTimeout waits for cmd with a deadline, killing it on expiry.
func waitTimeout(t *testing.T, cmd *exec.Cmd, d time.Duration) error {
	t.Helper()
	timer := time.AfterFunc(d, func() { cmd.Process.Kill() })
	defer timer.Stop()
	return cmd.Wait()
}

// publishToyArtifact writes a small in-process pass/fail artifact (the
// same geometry the serve package tests use) for the chaos run, which
// needs no circuit pipeline — just a valid artifact both sides share.
func publishToyArtifact(t *testing.T, path string) {
	t.Helper()
	parse := func(s string) logic.BitVec {
		v, err := dictio.ParseVector(s, len(s))
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	ff := []logic.BitVec{parse("000"), parse("111")}
	responses := [][]logic.BitVec{
		{parse("001"), parse("000"), parse("010")},
		{parse("111"), parse("011"), parse("111")},
	}
	m := resp.FromResponses(3, ff, responses)
	compiled, err := core.NewPassFail(m).Compile()
	if err != nil {
		t.Fatal(err)
	}
	art, err := dictio.New(compiled, dictio.Header{
		Circuit: "toy", TestSet: "exhaustive", Seed: 7,
		Faults: []string{"g0 s-a-0", "g1 s-a-1", "g2 s-a-0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := art.Save(path); err != nil {
		t.Fatal(err)
	}
}

// TestServeTraceJoin drives the whole tracing loop end to end: a traced
// sddserve under sddload traffic, then `sddstat serve` joining the
// server span journal against the client journal by request ID. This is
// the "chase a tail latency" workflow from the README, exec'd for real.
func TestServeTraceJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("execs freshly built binaries; skipped in -short mode")
	}
	bins := buildBinaries(t, "sddserve", "sddload", "sddstat")
	dir := artifactDir(t)
	artPath := filepath.Join(dir, "toy.sdda")
	publishToyArtifact(t, artPath)

	spansPath := filepath.Join(dir, "spans.jsonl")
	clientPath := filepath.Join(dir, "client.jsonl")
	srv, addr, stderr := startServer(t, bins["sddserve"],
		"-dict", artPath, "-trace-out", spansPath, "-trace-sample", "1")

	load := exec.Command(bins["sddload"],
		"-addr", addr, "-dict", artPath,
		"-clients", "4", "-requests", "40", "-seed", "11",
		"-journal", clientPath)
	loadOut, err := load.CombinedOutput()
	if err != nil {
		t.Fatalf("sddload: %v\n%s", err, loadOut)
	}
	// Satellite check: the load report names its slowest request IDs, the
	// handle the operator greps the span journal for.
	if !strings.Contains(string(loadOut), "slow request_id=") {
		t.Errorf("sddload report has no slow-request exemplars:\n%s", loadOut)
	}

	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := waitTimeout(t, srv, 30*time.Second); err != nil {
		t.Errorf("drained server exit: %v (want 0); stderr:\n%s", err, stderr.String())
	}

	stat := exec.Command(bins["sddstat"], "serve", spansPath, clientPath)
	statOut, err := stat.CombinedOutput()
	if err != nil {
		t.Fatalf("sddstat serve: %v\n%s", err, statOut)
	}
	report := string(statOut)
	saveArtifactOnFailure(t, "sddstat-serve.txt", func() []byte { return statOut })
	for _, want := range []string{
		"serve span journal:",
		"stage breakdown:",
		"decode", "scan",
		"client join: joined=",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("sddstat serve report missing %q:\n%s", want, report)
		}
	}
	m := regexp.MustCompile(`client join: joined=(\d+)`).FindStringSubmatch(report)
	if m == nil {
		t.Fatalf("no join line in report:\n%s", report)
	}
	if joined, _ := strconv.Atoi(m[1]); joined != 40 {
		t.Errorf("joined %s of 40 requests by ID:\n%s", m[1], report)
	}
}

func TestServeChaosShedDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("execs freshly built binaries; skipped in -short mode")
	}
	bins := buildBinaries(t, "sddserve", "sddload")
	dir := artifactDir(t)
	artPath := filepath.Join(dir, "toy.sdda")
	publishToyArtifact(t, artPath)

	tracePath := filepath.Join(dir, "chaos-trace.jsonl")
	srv, addr, stderr := startServer(t, bins["sddserve"],
		"-dict", artPath, "-trace-out", tracePath,
		"-max-inflight", "1", "-chaos-delay", "40ms", "-retry-after", "1s")

	// A barrage far wider than the in-flight cap: shedding is certain.
	load := exec.Command(bins["sddload"],
		"-addr", addr, "-dict", artPath,
		"-clients", "8", "-requests", "400", "-retries", "8",
		"-seed", "5", "-chaos")
	var loadOut bytes.Buffer
	load.Stdout = &loadOut
	load.Stderr = &loadOut
	if err := load.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { load.Process.Kill(); load.Wait() }()

	// SIGTERM mid-barrage: the server must shed, finish what it
	// admitted, and exit 0 while the client storm is still running.
	time.Sleep(700 * time.Millisecond)
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := waitTimeout(t, srv, 30*time.Second); err != nil {
		t.Errorf("server under chaos exit: %v (want 0); stderr:\n%s", err, stderr.String())
	}
	assertTraceEndsClean(t, tracePath)

	// The chaos driver tolerates the dead server and exits 0 with a
	// degradation report.
	if err := waitTimeout(t, load, 60*time.Second); err != nil {
		t.Errorf("sddload -chaos exit: %v (want 0)\n%s", err, loadOut.String())
	}
	out := loadOut.String()
	m := regexp.MustCompile(`shed=(\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("sddload report has no shed count:\n%s", out)
	}
	if shed, _ := strconv.Atoi(m[1]); shed == 0 {
		t.Errorf("no requests were shed despite -max-inflight 1 under 8 clients:\n%s", out)
	}
	saveArtifactOnFailure(t, "sddload.txt", func() []byte { return []byte(out) })
}
