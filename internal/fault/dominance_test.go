package fault_test

import (
	"testing"

	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/sim"
)

// allVectors enumerates every input vector of a small circuit.
func allVectors(width int) []pattern.Vector {
	out := make([]pattern.Vector, 0, 1<<uint(width))
	for v := 0; v < 1<<uint(width); v++ {
		vec := make(pattern.Vector, width)
		for i := range vec {
			vec[i] = logic.FromBit(uint64(v >> uint(i) & 1))
		}
		out = append(out, vec)
	}
	return out
}

// detects reports whether vec detects f on c.
func detects(view *netlist.ScanView, f fault.Fault, vec pattern.Vector) bool {
	good := sim.EvalTernary(view, vec)
	gv := logic.NewBitVec(view.NumOutputs())
	for slot, g := range view.Outputs {
		gv.Set(slot, good[g].Bit())
	}
	return !sim.RefFaultOutputs(view, f, vec).Equal(gv)
}

// TestDominanceSoundOnC17: exhaustively verify the defining property on
// c17 — any test set that detects every dominance-collapsed fault also
// detects every detectable equivalence-collapsed fault.
func TestDominanceSoundOnC17(t *testing.T) {
	c := gen.C17()
	view := netlist.NewScanView(c)
	col := fault.Collapse(c)
	dom := fault.DominanceCollapse(c, col)
	if len(dom) >= len(col.Faults) {
		t.Fatalf("dominance did not shrink: %d of %d", len(dom), len(col.Faults))
	}
	vecs := allVectors(5)

	// testsFor(f) = set of vectors detecting f.
	testsFor := func(f fault.Fault) map[int]bool {
		s := map[int]bool{}
		for vi, vec := range vecs {
			if detects(view, f, vec) {
				s[vi] = true
			}
		}
		return s
	}

	// Build a minimal-ish test set covering the dominance list greedily.
	covered := make([]bool, len(dom))
	var chosen []int
	for {
		bestVec, bestGain := -1, 0
		for vi, vec := range vecs {
			gain := 0
			for di, f := range dom {
				if !covered[di] && detects(view, f, vec) {
					gain++
				}
			}
			if gain > bestGain {
				bestVec, bestGain = vi, gain
			}
		}
		if bestVec < 0 {
			break
		}
		chosen = append(chosen, bestVec)
		for di, f := range dom {
			if !covered[di] && detects(view, f, vecs[bestVec]) {
				covered[di] = true
			}
		}
	}
	for di, cv := range covered {
		if !cv && len(testsFor(dom[di])) > 0 {
			t.Fatalf("greedy cover failed on dominance fault %v", dom[di])
		}
	}

	// The chosen set must detect every detectable fault of the
	// equivalence-collapsed list.
	for _, f := range col.Faults {
		detectable := len(testsFor(f)) > 0
		if !detectable {
			continue
		}
		hit := false
		for _, vi := range chosen {
			if detects(view, f, vecs[vi]) {
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("fault %s detectable but missed by a dominance-complete test set", f.Name(c))
		}
	}
}

// TestDominanceSubset: the dominance list is a subset of the equivalence
// list and strictly smaller on gate-rich circuits.
func TestDominanceSubset(t *testing.T) {
	c := gen.Profiles["s298"].MustGenerate(3)
	comb := netlist.Combinationalize(c)
	col := fault.Collapse(comb)
	dom := fault.DominanceCollapse(comb, col)
	if len(dom) >= len(col.Faults) {
		t.Fatalf("no shrink: %d of %d", len(dom), len(col.Faults))
	}
	inCol := make(map[fault.Fault]bool, len(col.Faults))
	for _, f := range col.Faults {
		inCol[f] = true
	}
	for _, f := range dom {
		if !inCol[f] {
			t.Fatalf("dominance fault %v not in the equivalence list", f)
		}
	}
	t.Logf("equivalence %d -> dominance %d targets", len(col.Faults), len(dom))
}
