package fault

import (
	"sort"

	"sddict/internal/netlist"
)

// DominanceCollapse shrinks a collapsed fault list further using the
// classic structural dominance rules:
//
//	AND:  output s-a-1 dominates every input s-a-1
//	NAND: output s-a-0 dominates every input s-a-1
//	OR:   output s-a-0 dominates every input s-a-0
//	NOR:  output s-a-1 dominates every input s-a-0
//
// (any test for the dominated input fault also detects the dominating
// output fault, so the output fault can be dropped from an ATPG target
// list). Dominance preserves detection only, NOT distinguishability: two
// dominance-merged faults generally have different responses, so
// dictionaries must be built on the equivalence-collapsed set. This
// function exists for the test-generation path, where smaller target lists
// cut PODEM effort.
//
// The input must be the equivalence-collapsed result; the returned list is
// a subset of col.Faults, sorted.
func DominanceCollapse(c *netlist.Circuit, col *CollapseResult) []Fault {
	drop := make(map[int]bool)

	// classOf returns the equivalence-class index of the fault on input
	// pin `pin` of gate g stuck at v (branch fault if the driver fans out,
	// else the driver's stem fault), or -1.
	classOf := func(g int32, pin int, v uint8) int {
		d := c.Gates[g].Fanin[pin]
		var f Fault
		if c.FanoutCount(d) > 1 {
			f = Fault{Gate: g, Pin: int32(pin), Stuck: v}
		} else {
			f = Fault{Gate: d, Pin: StemPin, Stuck: v}
		}
		ci, ok := col.ClassOf[f]
		if !ok {
			return -1
		}
		return ci
	}

	for i := range c.Gates {
		g := int32(i)
		var inVal, outVal uint8
		switch c.Gates[i].Type {
		case netlist.And:
			inVal, outVal = 1, 1
		case netlist.Nand:
			inVal, outVal = 1, 0
		case netlist.Or:
			inVal, outVal = 0, 0
		case netlist.Nor:
			inVal, outVal = 0, 1
		default:
			continue
		}
		outClass, ok := col.ClassOf[Fault{Gate: g, Pin: StemPin, Stuck: outVal}]
		if !ok {
			continue
		}
		// The output fault is dominated by each input fault; it can be
		// dropped as long as at least one dominated input fault remains a
		// target (it always does: input faults are never dropped by these
		// rules' direction).
		hasInput := false
		for pin := range c.Gates[i].Fanin {
			if ci := classOf(g, pin, inVal); ci >= 0 && ci != outClass && !drop[ci] {
				hasInput = true
				break
			}
		}
		if hasInput {
			drop[outClass] = true
		}
	}

	out := make([]Fault, 0, len(col.Faults)-len(drop))
	for ci, f := range col.Faults {
		if !drop[ci] {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Less(out[b]) })
	return out
}
