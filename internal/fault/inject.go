package fault

import (
	"fmt"

	"sddict/internal/netlist"
)

// Inject returns a copy of c with fault f wired in structurally: the faulty
// line is cut and its sinks driven by a constant of the stuck value. A stem
// fault redirects every reader of the gate (and any primary-output
// observation of it); a branch fault redirects only the faulty pin. The
// result behaves exactly like the faulty machine and can be simulated,
// composed into miters, or used to model non-modeled defects by injecting
// several faults in sequence.
func Inject(c *netlist.Circuit, f Fault) (*netlist.Circuit, error) {
	if int(f.Gate) >= len(c.Gates) {
		return nil, fmt.Errorf("fault: gate %d out of range", f.Gate)
	}
	b := netlist.NewBuilder(c.Name + "+" + f.Name(c))
	// Copy gates verbatim; indices are preserved.
	for i := range c.Gates {
		g := &c.Gates[i]
		switch g.Type {
		case netlist.Input:
			b.Input(g.Name)
		case netlist.DFF:
			b.Gate(netlist.DFF, g.Name, g.Fanin...)
		default:
			b.Gate(g.Type, g.Name, append([]int32(nil), g.Fanin...)...)
		}
	}
	konst := b.Const(fmt.Sprintf("sa%d", f.Stuck), int(f.Stuck))

	if f.IsStem() {
		for i := range c.Gates {
			for pin, d := range c.Gates[i].Fanin {
				if d == f.Gate {
					fanin := append([]int32(nil), c.Gates[i].Fanin...)
					fanin[pin] = konst
					b.SetFanin(int32(i), fanin...)
				}
			}
		}
		for _, po := range c.POs {
			if po == f.Gate {
				b.Output(konst)
			} else {
				b.Output(po)
			}
		}
	} else {
		if int(f.Pin) >= len(c.Gates[f.Gate].Fanin) {
			return nil, fmt.Errorf("fault: pin %d out of range for gate %d", f.Pin, f.Gate)
		}
		fanin := append([]int32(nil), c.Gates[f.Gate].Fanin...)
		fanin[f.Pin] = konst
		b.SetFanin(f.Gate, fanin...)
		for _, po := range c.POs {
			b.Output(po)
		}
	}
	return b.Build()
}

// MustInject is Inject for known-valid faults; it panics on error.
func MustInject(c *netlist.Circuit, f Fault) *netlist.Circuit {
	n, err := Inject(c, f)
	if err != nil {
		panic(err)
	}
	return n
}
