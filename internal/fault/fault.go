// Package fault defines the single stuck-at fault model used throughout:
// the fault universe over a netlist (stem faults on every line plus
// fanout-branch faults), structural equivalence collapsing, and the compact
// fault descriptors the simulator and test generator inject.
package fault

import (
	"fmt"
	"sort"

	"sddict/internal/netlist"
)

// StemPin marks a fault on a gate's output line rather than an input pin.
const StemPin = -1

// Fault is a single stuck-at fault. Pin == StemPin places the fault on the
// output (stem) of Gate; Pin >= 0 places it on that input pin of Gate (a
// fanout branch). Stuck is the stuck-at value, 0 or 1.
type Fault struct {
	Gate  int32
	Pin   int32
	Stuck uint8
}

// IsStem reports whether the fault sits on a gate output.
func (f Fault) IsStem() bool { return f.Pin == StemPin }

// Less orders faults by (gate, pin, stuck); used for deterministic lists.
func (f Fault) Less(o Fault) bool {
	if f.Gate != o.Gate {
		return f.Gate < o.Gate
	}
	if f.Pin != o.Pin {
		return f.Pin < o.Pin
	}
	return f.Stuck < o.Stuck
}

// Name renders the fault against a circuit, e.g. "g12 s-a-1" for a stem
// fault or "g12.in2 s-a-0" for a branch fault.
func (f Fault) Name(c *netlist.Circuit) string {
	if f.IsStem() {
		return fmt.Sprintf("%s s-a-%d", c.Gates[f.Gate].Name, f.Stuck)
	}
	return fmt.Sprintf("%s.in%d s-a-%d", c.Gates[f.Gate].Name, f.Pin, f.Stuck)
}

// Universe enumerates the standard uncollapsed single stuck-at fault
// universe of c: both stuck values on every gate output (every circuit
// line), and on every input pin whose driving line fans out to more than
// one pin (fanout branches). Constant gates carry no faults. The result is
// sorted.
func Universe(c *netlist.Circuit) []Fault {
	var fs []Fault
	for i := range c.Gates {
		g := int32(i)
		switch c.Gates[i].Type {
		case netlist.Const0, netlist.Const1:
			continue
		}
		fs = append(fs, Fault{Gate: g, Pin: StemPin, Stuck: 0}, Fault{Gate: g, Pin: StemPin, Stuck: 1})
		for pin, d := range c.Gates[i].Fanin {
			if c.FanoutCount(d) > 1 {
				fs = append(fs, Fault{Gate: g, Pin: int32(pin), Stuck: 0}, Fault{Gate: g, Pin: int32(pin), Stuck: 1})
			}
		}
	}
	sort.Slice(fs, func(a, b int) bool { return fs[a].Less(fs[b]) })
	return fs
}

// CollapseResult holds the outcome of equivalence collapsing.
type CollapseResult struct {
	// Faults is the collapsed fault list (one representative per structural
	// equivalence class), sorted.
	Faults []Fault
	// ClassOf maps every fault of the uncollapsed universe to the index of
	// its representative in Faults.
	ClassOf map[Fault]int
	// Universe is the uncollapsed list the collapsing ran on.
	Universe []Fault
}

// Collapse performs structural equivalence collapsing of the stuck-at
// universe of c using the classic gate rules:
//
//	BUF:  input s-a-v ≡ output s-a-v
//	NOT:  input s-a-v ≡ output s-a-(1-v)
//	AND:  every input s-a-0 ≡ output s-a-0
//	NAND: every input s-a-0 ≡ output s-a-1
//	OR:   every input s-a-1 ≡ output s-a-1
//	NOR:  every input s-a-1 ≡ output s-a-0
//
// An "input fault" is the branch fault when the driving line fans out, or
// the driver's stem fault when it does not (a fanout-free line is a single
// line). No collapsing happens across flip-flops or XOR/XNOR gates.
func Collapse(c *netlist.Circuit) *CollapseResult {
	uni := Universe(c)
	idx := make(map[Fault]int, len(uni))
	for i, f := range uni {
		idx[f] = i
	}
	uf := newUnionFind(len(uni))

	// inputFault returns the universe index of "input pin `pin` of gate g
	// stuck at v": the branch fault if the driver fans out, else the
	// driver's stem fault. Returns -1 for faults on constant drivers.
	inputFault := func(g int32, pin int, v uint8) int {
		d := c.Gates[g].Fanin[pin]
		if c.FanoutCount(d) > 1 {
			return idx[Fault{Gate: g, Pin: int32(pin), Stuck: v}]
		}
		if i, ok := idx[Fault{Gate: d, Pin: StemPin, Stuck: v}]; ok {
			return i
		}
		return -1
	}

	for i := range c.Gates {
		g := int32(i)
		var inVal, outVal uint8
		switch c.Gates[i].Type {
		case netlist.And:
			inVal, outVal = 0, 0
		case netlist.Nand:
			inVal, outVal = 0, 1
		case netlist.Or:
			inVal, outVal = 1, 1
		case netlist.Nor:
			inVal, outVal = 1, 0
		case netlist.Buf:
			// Both polarities collapse through a buffer.
			for v := uint8(0); v <= 1; v++ {
				if fi := inputFault(g, 0, v); fi >= 0 {
					uf.union(fi, idx[Fault{Gate: g, Pin: StemPin, Stuck: v}])
				}
			}
			continue
		case netlist.Not:
			for v := uint8(0); v <= 1; v++ {
				if fi := inputFault(g, 0, v); fi >= 0 {
					uf.union(fi, idx[Fault{Gate: g, Pin: StemPin, Stuck: 1 - v}])
				}
			}
			continue
		default:
			continue
		}
		out := idx[Fault{Gate: g, Pin: StemPin, Stuck: outVal}]
		for pin := range c.Gates[i].Fanin {
			if fi := inputFault(g, pin, inVal); fi >= 0 {
				uf.union(fi, out)
			}
		}
	}

	// Pick the smallest fault of each class as representative.
	repOf := make(map[int]int, len(uni)) // root -> universe index of representative
	for i := range uni {
		r := uf.find(i)
		if cur, ok := repOf[r]; !ok || uni[i].Less(uni[cur]) {
			repOf[r] = i
		}
	}
	reps := make([]int, 0, len(repOf))
	for _, ri := range repOf {
		reps = append(reps, ri)
	}
	sort.Slice(reps, func(a, b int) bool { return uni[reps[a]].Less(uni[reps[b]]) })

	res := &CollapseResult{
		Faults:   make([]Fault, len(reps)),
		ClassOf:  make(map[Fault]int, len(uni)),
		Universe: uni,
	}
	classIdx := make(map[int]int, len(reps)) // universe rep index -> class index
	for ci, ri := range reps {
		res.Faults[ci] = uni[ri]
		classIdx[ri] = ci
	}
	for i, f := range uni {
		res.ClassOf[f] = classIdx[repOf[uf.find(i)]]
	}
	return res
}

// unionFind is a plain weighted quick-union with path halving.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
