package fault_test

import (
	"math/rand"
	"testing"

	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/sim"
)

func TestUniverseC17(t *testing.T) {
	c := gen.C17()
	uni := fault.Universe(c)
	// 11 lines (5 PIs + 6 gates) -> 22 stem faults. Fanout branches: a line
	// with fanout f > 1 adds 2 branch faults per sink pin.
	branchPins := 0
	for i := range c.Gates {
		for _, d := range c.Gates[i].Fanin {
			if c.FanoutCount(d) > 1 {
				branchPins++
			}
		}
	}
	want := 22 + 2*branchPins
	if len(uni) != want {
		t.Fatalf("universe has %d faults, want %d", len(uni), want)
	}
	// Sorted and unique.
	for i := 1; i < len(uni); i++ {
		if !uni[i-1].Less(uni[i]) {
			t.Fatalf("universe not strictly sorted at %d", i)
		}
	}
}

func TestCollapseShrinksUniverse(t *testing.T) {
	c := gen.C17()
	col := fault.Collapse(c)
	if len(col.Faults) >= len(col.Universe) {
		t.Fatalf("collapsing did not shrink: %d of %d", len(col.Faults), len(col.Universe))
	}
	// Every universe fault maps to a representative; representatives map to
	// themselves.
	for i, f := range col.Faults {
		if col.ClassOf[f] != i {
			t.Fatalf("representative %v maps to class %d, want %d", f, col.ClassOf[f], i)
		}
	}
	for _, f := range col.Universe {
		ci, ok := col.ClassOf[f]
		if !ok || ci < 0 || ci >= len(col.Faults) {
			t.Fatalf("universe fault %v has no class", f)
		}
	}
}

// TestCollapseEquivalenceSound property-checks the core soundness of
// structural collapsing: faults placed in the same class must produce
// identical output responses on every input vector. Checked exhaustively
// on c17 (32 input vectors) and on random vectors for a synthetic circuit.
func TestCollapseEquivalenceSound(t *testing.T) {
	check := func(c *netlist.Circuit, vecs []pattern.Vector) {
		t.Helper()
		col := fault.Collapse(c)
		view := netlist.NewScanView(c)
		classRep := make(map[int]logic.BitVec)
		for _, vec := range vecs {
			for k := range classRep {
				delete(classRep, k)
			}
			for _, f := range col.Universe {
				resp := sim.RefFaultOutputs(view, f, vec)
				ci := col.ClassOf[f]
				if prev, ok := classRep[ci]; ok {
					if !prev.Equal(resp) {
						t.Fatalf("%s: fault %s responds %s, classmates respond %s under %s",
							c.Name, f.Name(c), resp.String(view.NumOutputs()),
							prev.String(view.NumOutputs()), vec)
					}
				} else {
					classRep[ci] = resp
				}
			}
		}
	}

	// Exhaustive on c17.
	c := gen.C17()
	var vecs []pattern.Vector
	for v := 0; v < 32; v++ {
		vec := make(pattern.Vector, 5)
		for i := range vec {
			vec[i] = logic.FromBit(uint64(v >> uint(i) & 1))
		}
		vecs = append(vecs, vec)
	}
	check(c, vecs)

	// Random vectors on a synthetic sequential circuit (scan view).
	r := rand.New(rand.NewSource(3))
	sc := gen.Profiles["s27"].MustGenerate(5)
	view := netlist.NewScanView(sc)
	vecs = vecs[:0]
	for i := 0; i < 40; i++ {
		vecs = append(vecs, pattern.Random(r, view.NumInputs()))
	}
	check(sc, vecs)
}

// TestInjectMatchesReference: simulating the good circuit of fault.Inject(c, f)
// must equal the faulty reference simulation of f on c.
func TestInjectMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	c := gen.Profiles["s27"].MustGenerate(9)
	view := netlist.NewScanView(c)
	col := fault.Collapse(c)
	for _, f := range col.Faults {
		bad := fault.MustInject(c, f)
		badView := netlist.NewScanView(bad)
		if badView.NumInputs() != view.NumInputs() || badView.NumOutputs() != view.NumOutputs() {
			t.Fatalf("inject changed interface for %s", f.Name(c))
		}
		for trial := 0; trial < 8; trial++ {
			vec := pattern.Random(r, view.NumInputs())
			want := sim.RefFaultOutputs(view, f, vec)
			vals := sim.EvalTernary(badView, vec)
			got := logic.NewBitVec(badView.NumOutputs())
			for slot, g := range badView.Outputs {
				got.Set(slot, vals[g].Bit())
			}
			if !got.Equal(want) {
				t.Fatalf("fault %s vec %s: injected %s, reference %s",
					f.Name(c), vec, got.String(view.NumOutputs()), want.String(view.NumOutputs()))
			}
		}
	}
}

func TestInjectStemOnPrimaryOutput(t *testing.T) {
	b := netlist.NewBuilder("po")
	a := b.Input("a")
	x := b.Gate(netlist.Not, "x", a)
	b.Output(x)
	c, _ := b.Build()
	bad := fault.MustInject(c, fault.Fault{Gate: x, Pin: fault.StemPin, Stuck: 1})
	view := netlist.NewScanView(bad)
	for _, bit := range []logic.Value{logic.Zero, logic.One} {
		vals := sim.EvalTernary(view, pattern.Vector{bit})
		if vals[view.Outputs[0]] != logic.One {
			t.Fatalf("PO stuck-at-1 not observed for input %v", bit)
		}
	}
}

func TestInjectErrors(t *testing.T) {
	c := gen.C17()
	if _, err := fault.Inject(c, fault.Fault{Gate: 999, Pin: fault.StemPin}); err == nil {
		t.Error("Inject accepted out-of-range gate")
	}
	if _, err := fault.Inject(c, fault.Fault{Gate: 5, Pin: 99}); err == nil {
		t.Error("Inject accepted out-of-range pin")
	}
}

func TestFaultName(t *testing.T) {
	c := gen.C17()
	f := fault.Fault{Gate: c.GateByName("10"), Pin: fault.StemPin, Stuck: 1}
	if got := f.Name(c); got != "10 s-a-1" {
		t.Errorf("Name = %q", got)
	}
	fb := fault.Fault{Gate: c.GateByName("22"), Pin: 0, Stuck: 0}
	if got := fb.Name(c); got != "22.in0 s-a-0" {
		t.Errorf("Name = %q", got)
	}
	if fb.IsStem() || !f.IsStem() {
		t.Error("IsStem misbehaves")
	}
}

// TestCollapseDFFBoundary: no collapsing across a flip-flop — a fault on
// the D line and a fault on the Q output must stay distinct classes.
func TestCollapseDFFBoundary(t *testing.T) {
	b := netlist.NewBuilder("ffb")
	a := b.Input("a")
	inv := b.Gate(netlist.Not, "inv", a)
	ff := b.Gate(netlist.DFF, "ff", inv)
	out := b.Gate(netlist.Buf, "out", ff)
	b.Output(out)
	c, _ := b.Build()
	col := fault.Collapse(c)
	dFault := fault.Fault{Gate: inv, Pin: fault.StemPin, Stuck: 0}
	qFault := fault.Fault{Gate: ff, Pin: fault.StemPin, Stuck: 0}
	if col.ClassOf[dFault] == col.ClassOf[qFault] {
		t.Error("fault collapsed across the flip-flop boundary")
	}
}
