package resp

import (
	"math/bits"
	"math/rand"

	"sddict/internal/logic"
)

// CompactOutputs models a spatial test-response compactor, which the paper
// notes makes the output count m — and with it the same/different
// dictionary's baseline overhead k·m — much smaller: every observed output
// vector is reduced to mPrime parity bits of random output subsets before
// any dictionary sees it. Distinct responses may alias to the same
// signature, so resolution can only degrade; the returned matrix re-derives
// the response classes under the compactor so all dictionary machinery
// applies unchanged.
//
// The compactor is deterministic in (m.M, mPrime, seed); a tester would
// implement it as an XOR network in hardware.
func (m *Matrix) CompactOutputs(mPrime int, seed int64) *Matrix {
	if mPrime <= 0 {
		panic("resp: compactor width must be positive")
	}
	r := rand.New(rand.NewSource(seed))
	// parity[p] selects the outputs feeding parity bit p. Each output
	// feeds at least one parity bit so no observation is lost outright.
	parity := make([]logic.BitVec, mPrime)
	for p := range parity {
		parity[p] = logic.NewBitVec(m.M)
	}
	for o := 0; o < m.M; o++ {
		parity[r.Intn(mPrime)].Set(o, 1)
		// A second tap halves structured aliasing.
		parity[r.Intn(mPrime)].Set(o, 1)
	}

	compress := func(v logic.BitVec) logic.BitVec {
		out := logic.NewBitVec(mPrime)
		for p := 0; p < mPrime; p++ {
			acc := 0
			for w := range v {
				acc += bits.OnesCount64(v[w] & parity[p][w])
			}
			out.Set(p, uint64(acc&1))
		}
		return out
	}

	next := &Matrix{N: m.N, K: m.K, M: mPrime}
	next.Class = make([][]int32, m.K)
	next.Vecs = make([][]logic.BitVec, m.K)
	for j := 0; j < m.K; j++ {
		// Compress each old class vector, then re-deduplicate: aliased
		// classes merge. The fault-free class stays class 0.
		oldToNew := make([]int32, m.NumClasses(j))
		for oc := 0; oc < m.NumClasses(j); oc++ {
			cv := compress(m.Vecs[j][oc])
			cls := int32(-1)
			for nc, seen := range next.Vecs[j] {
				if seen.Equal(cv) {
					cls = int32(nc)
					break
				}
			}
			if cls < 0 {
				cls = int32(len(next.Vecs[j]))
				next.Vecs[j] = append(next.Vecs[j], cv)
			}
			oldToNew[oc] = cls
		}
		next.Class[j] = make([]int32, m.N)
		for i := 0; i < m.N; i++ {
			next.Class[j][i] = oldToNew[m.Class[j][i]]
		}
	}
	return next
}
