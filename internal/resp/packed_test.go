package resp

import (
	"math/rand"
	"testing"

	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
)

// checkPackedRow verifies one test's packed view against its class row:
// bitmap membership, the partition property (every fault in exactly one
// class bitmap), and the detected-fault index invariants (segments in
// ascending class order, ascending fault order within a class, class 0
// empty, every detected fault listed exactly once).
func checkPackedRow(t *testing.T, label string, class []int32, numClasses int, pc PackedClasses) {
	t.Helper()
	n := len(class)
	for i := 0; i < n; i++ {
		for z := int32(0); z < int32(numClasses); z++ {
			bm := pc.Class(z)
			got := bm[i>>6]>>(uint(i)&63)&1 == 1
			if want := class[i] == z; got != want {
				t.Fatalf("%s: fault %d class %d: bitmap bit = %v, class row says %v", label, i, z, got, want)
			}
		}
	}
	// Detected index: class-0 segment empty, other segments exactly the
	// faults of that class in ascending order.
	if len(pc.ClassList(0)) != 0 {
		t.Fatalf("%s: class-0 segment has %d entries, want 0", label, len(pc.ClassList(0)))
	}
	seen := 0
	for z := int32(1); z < int32(numClasses); z++ {
		seg := pc.ClassList(z)
		seen += len(seg)
		prev := int32(-1)
		for _, f := range seg {
			if class[f] != z {
				t.Fatalf("%s: class %d segment lists fault %d of class %d", label, z, f, class[f])
			}
			if f <= prev {
				t.Fatalf("%s: class %d segment not in ascending fault order (%d after %d)", label, z, f, prev)
			}
			prev = f
		}
	}
	detected := 0
	for _, z := range class {
		if z != 0 {
			detected++
		}
	}
	if seen != detected || len(pc.DetectedList()) != detected {
		t.Fatalf("%s: index lists %d faults across segments, DetectedList %d, class row has %d detected",
			label, seen, len(pc.DetectedList()), detected)
	}
}

// TestPackedViewMatchesClassRow checks the derived packed view on random
// class rows, including rows with empty classes beyond the observed ones.
func TestPackedViewMatchesClassRow(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(200) // crosses the 64-fault word boundary
		numClasses := 1 + r.Intn(8)
		class := make([]int32, n)
		for i := range class {
			class[i] = int32(r.Intn(numClasses))
		}
		pc := packClassRow(n, class, numClasses)
		checkPackedRow(t, "packClassRow", class, numClasses, pc)
	}
}

// TestSimAssembledPackedMatchesDerived pins the word-parallel assembly
// path: the packed view the simulation builder fills during
// assemblePattern must be byte-identical to the one packClassRow derives
// from the finished class row.
func TestSimAssembledPackedMatchesDerived(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	c := gen.Profiles["s27"].MustGenerate(33)
	view := netlist.NewScanView(c)
	col := fault.Collapse(c)
	tests := pattern.NewSet(view.NumInputs())
	for i := 0; i < 70; i++ { // crosses a batch boundary
		tests.Add(pattern.Random(r, view.NumInputs()))
	}
	m := Build(view, col.Faults, tests)
	for j := 0; j < m.K; j++ {
		got := m.PackedClasses(j)
		want := packClassRow(m.N, m.Class[j], m.NumClasses(j))
		if got.words != want.words || len(got.bits) != len(want.bits) {
			t.Fatalf("test %d: packed dims differ: %d/%d words, %d/%d bits words",
				j, got.words, want.words, len(got.bits), len(want.bits))
		}
		for w := range want.bits {
			if got.bits[w] != want.bits[w] {
				t.Fatalf("test %d: packed bitmap word %d: %#x, want %#x", j, w, got.bits[w], want.bits[w])
			}
		}
		if len(got.detList) != len(want.detList) || len(got.detOffs) != len(want.detOffs) {
			t.Fatalf("test %d: index dims differ", j)
		}
		for i := range want.detList {
			if got.detList[i] != want.detList[i] {
				t.Fatalf("test %d: detList[%d] = %d, want %d", j, i, got.detList[i], want.detList[i])
			}
		}
		for z := range want.detOffs {
			if got.detOffs[z] != want.detOffs[z] {
				t.Fatalf("test %d: detOffs[%d] = %d, want %d", j, z, got.detOffs[z], want.detOffs[z])
			}
		}
		checkPackedRow(t, "assembled", m.Class[j], m.NumClasses(j), got)
	}
}
