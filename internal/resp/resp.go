// Package resp builds and stores the full-response information all fault
// dictionaries are derived from: for every test, the set of distinct output
// vectors produced by the modeled faults (the paper's Z_j), with each fault
// mapped to its vector's class id. Class 0 of every test is the fault-free
// response, so pass/fail information is directly readable and the
// same/different baseline search never has to touch raw vectors.
package resp

import (
	"context"
	"fmt"

	"sddict/internal/fault"
	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/sim"
)

// Matrix is the deduplicated full-response matrix of a fault set under a
// test set.
type Matrix struct {
	N int // number of faults
	K int // number of tests
	M int // number of outputs

	// Class[j][i] is the response class of fault i under test j. Class 0 is
	// always the fault-free response z_ff,j.
	Class [][]int32
	// Vecs[j][c] is the output vector of class c under test j;
	// Vecs[j][0] is the fault-free output vector.
	Vecs [][]logic.BitVec
}

// NumClasses returns the number of distinct responses observed for test j
// (including the fault-free response).
func (m *Matrix) NumClasses(j int) int { return len(m.Vecs[j]) }

// Detected reports whether fault i is detected by test j (its response
// differs from the fault-free response).
func (m *Matrix) Detected(j, i int) bool { return m.Class[j][i] != 0 }

// DetectedCount returns how many of the N faults test j detects.
func (m *Matrix) DetectedCount(j int) int {
	n := 0
	for _, c := range m.Class[j] {
		if c != 0 {
			n++
		}
	}
	return n
}

// FullSizeBits returns the storage size of a full fault dictionary for this
// matrix: k·n·m bits (paper, Section 2).
func (m *Matrix) FullSizeBits() int64 { return int64(m.K) * int64(m.N) * int64(m.M) }

// PassFailSizeBits returns the storage size of a pass/fail dictionary:
// k·n bits.
func (m *Matrix) PassFailSizeBits() int64 { return int64(m.K) * int64(m.N) }

// SameDiffSizeBits returns the storage size of a same/different dictionary
// with one baseline vector per test: k·(n+m) bits.
func (m *Matrix) SameDiffSizeBits() int64 { return int64(m.K) * (int64(m.N) + int64(m.M)) }

// Build fault-simulates every fault under every test (64 patterns per pass)
// and returns the deduplicated response matrix.
func Build(view *netlist.ScanView, faults []fault.Fault, tests *pattern.Set) *Matrix {
	m, err := BuildCtx(context.Background(), view, faults, tests)
	if err != nil {
		panic("resp: " + err.Error()) // unreachable: background context never cancels
	}
	return m
}

// BuildCtx is Build under a context, checked at fault granularity within
// every 64-pattern batch. A partial response matrix would silently corrupt
// every dictionary built from it, so unlike the dictionary search this
// stage does not degrade: on cancellation it returns ctx.Err() and no
// matrix.
func BuildCtx(ctx context.Context, view *netlist.ScanView, faults []fault.Fault, tests *pattern.Set) (*Matrix, error) {
	if tests.Width != view.NumInputs() {
		panic(fmt.Sprintf("resp: test width %d != %d scan inputs", tests.Width, view.NumInputs()))
	}
	m := &Matrix{N: len(faults), K: tests.Len(), M: view.NumOutputs()}
	m.Class = make([][]int32, m.K)
	m.Vecs = make([][]logic.BitVec, m.K)

	s := sim.New(view)
	goodWords := make([]logic.Word, m.M)
	base := 0
	for _, batch := range tests.Pack() {
		b := batch
		s.Apply(&b)
		s.GoodOutputs(goodWords)

		// Transpose the good outputs into per-pattern vectors and seed each
		// test's class table with the fault-free class 0.
		type classTable struct {
			byHash map[uint64][]int32
		}
		tables := make([]classTable, b.Count)
		for p := 0; p < b.Count; p++ {
			j := base + p
			good := logic.NewBitVec(m.M)
			for o := 0; o < m.M; o++ {
				good.Set(o, (goodWords[o]>>uint(p))&1)
			}
			m.Class[j] = make([]int32, m.N)
			m.Vecs[j] = []logic.BitVec{good}
			tables[p].byHash = map[uint64][]int32{good.Hash(): {0}}
		}

		sweepErr := s.ForEachFault(ctx, faults, func(i int, eff sim.Effect) {
			if eff.Detect == 0 {
				return // class 0 everywhere; Class rows start zeroed
			}
			for p := 0; p < b.Count; p++ {
				if eff.Detect&(1<<uint(p)) == 0 {
					continue
				}
				j := base + p
				vec := m.Vecs[j][0].Clone()
				for _, d := range eff.Diffs {
					if d.Bits&(1<<uint(p)) != 0 {
						vec.Set(int(d.Slot), 1-vec.Get(int(d.Slot)))
					}
				}
				h := vec.Hash()
				cls := int32(-1)
				for _, cand := range tables[p].byHash[h] {
					if m.Vecs[j][cand].Equal(vec) {
						cls = cand
						break
					}
				}
				if cls < 0 {
					cls = int32(len(m.Vecs[j]))
					m.Vecs[j] = append(m.Vecs[j], vec)
					tables[p].byHash[h] = append(tables[p].byHash[h], cls)
				}
				m.Class[j][i] = cls
			}
		})
		if sweepErr != nil {
			return nil, sweepErr
		}
		base += b.Count
	}
	return m, nil
}

// FromResponses builds a matrix from explicit output vectors, e.g. when
// responses come from an external fault simulator or from a worked example:
// ff[j] is the fault-free output vector of test j and responses[j][i] the
// output vector of fault i under test j. All vectors must hold m bits.
func FromResponses(m int, ff []logic.BitVec, responses [][]logic.BitVec) *Matrix {
	mat := &Matrix{N: 0, K: len(ff), M: m}
	if mat.K > 0 {
		mat.N = len(responses[0])
	}
	mat.Class = make([][]int32, mat.K)
	mat.Vecs = make([][]logic.BitVec, mat.K)
	for j := 0; j < mat.K; j++ {
		if len(responses[j]) != mat.N {
			panic(fmt.Sprintf("resp: test %d has %d responses, want %d", j, len(responses[j]), mat.N))
		}
		mat.Class[j] = make([]int32, mat.N)
		mat.Vecs[j] = []logic.BitVec{ff[j].Clone()}
		for i, v := range responses[j] {
			cls := int32(-1)
			for c, seen := range mat.Vecs[j] {
				if seen.Equal(v) {
					cls = int32(c)
					break
				}
			}
			if cls < 0 {
				cls = int32(len(mat.Vecs[j]))
				mat.Vecs[j] = append(mat.Vecs[j], v.Clone())
			}
			mat.Class[j][i] = cls
		}
	}
	return mat
}

// BuildForCircuit is a convenience wrapper: full-scan view plus collapsed
// faults in one call.
func BuildForCircuit(c *netlist.Circuit, tests *pattern.Set) (*Matrix, []fault.Fault) {
	view := netlist.NewScanView(c)
	col := fault.Collapse(c)
	return Build(view, col.Faults, tests), col.Faults
}
