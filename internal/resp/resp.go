// Package resp builds and stores the full-response information all fault
// dictionaries are derived from: for every test, the set of distinct output
// vectors produced by the modeled faults (the paper's Z_j), with each fault
// mapped to its vector's class id. Class 0 of every test is the fault-free
// response, so pass/fail information is directly readable and the
// same/different baseline search never has to touch raw vectors.
package resp

import (
	"context"
	"fmt"
	"math/bits"
	"sync"

	"sddict/internal/fault"
	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/obs"
	"sddict/internal/par"
	"sddict/internal/pattern"
	"sddict/internal/sim"
)

// Matrix is the deduplicated full-response matrix of a fault set under a
// test set.
type Matrix struct {
	N int // number of faults
	K int // number of tests
	M int // number of outputs

	// Class[j][i] is the response class of fault i under test j. Class 0 is
	// always the fault-free response z_ff,j.
	Class [][]int32
	// Vecs[j][c] is the output vector of class c under test j;
	// Vecs[j][0] is the fault-free output vector.
	Vecs [][]logic.BitVec

	// packed[j] is the bit-packed view of Class[j]: one fault bitmap per
	// response class (DESIGN.md §14). The simulation builders fill it
	// eagerly during assembly; matrices built any other way (explicit
	// responses, test literals, row sharing) derive it on first use.
	// Class stays the API of record — packed is a pure re-encoding of it.
	packed   []PackedClasses
	packOnce sync.Once
}

// PackedClasses is the bit-packed view of one test's class row: for every
// response class z, a bitmap over the fault indices with bit i set exactly
// when Class[j][i] == z. The class bitmaps partition the fault set, so the
// whole row costs numClasses·⌈N/64⌉ words, and popcounts over
// group ∧ classBitmap(z) replace per-fault class counting in the
// dictionary search.
type PackedClasses struct {
	words int
	bits  []uint64 // numClasses consecutive slabs of `words` words each

	// Detected-fault index: the faults with a nonzero class, grouped by
	// class in ascending class order and ascending fault order within a
	// class. detOffs[z]..detOffs[z+1] delimits class z's segment (class 0
	// has an empty segment). One walk of this list yields every per-group
	// class count of a test — class 0 by complement — which is what makes
	// the dist scan O(detected) instead of O(live) on sparse tests.
	detList []int32
	detOffs []int32
}

// Words returns the number of 64-bit words per class bitmap, ⌈N/64⌉.
func (pc PackedClasses) Words() int { return pc.words }

// Class returns the fault bitmap of response class z. The slice aliases
// the matrix's storage and must not be modified.
func (pc PackedClasses) Class(z int32) []uint64 {
	return pc.bits[int(z)*pc.words : (int(z)+1)*pc.words]
}

// DetectedList returns the ascending-class detected-fault index: every
// fault with a nonzero class, grouped by class. The slice aliases the
// matrix's storage and must not be modified.
func (pc PackedClasses) DetectedList() []int32 { return pc.detList }

// ClassList returns the ascending fault indices of response class z ≥ 1.
func (pc PackedClasses) ClassList(z int32) []int32 {
	return pc.detList[pc.detOffs[z]:pc.detOffs[z+1]]
}

// indexDetected builds the detected-fault index from a class row by
// counting sort: O(n + numClasses), fault-ascending within each class.
func indexDetected(class []int32, numClasses int) (list, offs []int32) {
	offs = make([]int32, numClasses+1)
	for _, z := range class {
		if z != 0 {
			offs[z]++
		}
	}
	var total int32
	for z := 1; z <= numClasses; z++ {
		c := int32(0)
		if z < numClasses {
			c = offs[z]
		}
		offs[z] = total
		total += c
	}
	list = make([]int32, total)
	fill := append([]int32(nil), offs[:numClasses]...)
	for i, z := range class {
		if z != 0 {
			list[fill[z]] = int32(i)
			fill[z]++
		}
	}
	return list, offs
}

// PackedClasses returns the packed view of test j's class row, deriving it
// from Class on first use if the matrix was not built by the simulation
// path. Safe for concurrent use.
func (m *Matrix) PackedClasses(j int) PackedClasses {
	m.packOnce.Do(m.buildPacked)
	return m.packed[j]
}

// buildPacked derives the packed view for matrices whose constructor did
// not fill it eagerly.
func (m *Matrix) buildPacked() {
	if m.packed != nil {
		return
	}
	packed := make([]PackedClasses, m.K)
	for j := 0; j < m.K; j++ {
		packed[j] = packClassRow(m.N, m.Class[j], m.NumClasses(j))
	}
	m.packed = packed
}

// packClassRow packs one class row into per-class fault bitmaps.
func packClassRow(n int, class []int32, numClasses int) PackedClasses {
	words := (n + 63) / 64
	pc := PackedClasses{words: words, bits: make([]uint64, numClasses*words)}
	for i, z := range class {
		pc.bits[int(z)*words+i>>6] |= 1 << (uint(i) & 63)
	}
	pc.detList, pc.detOffs = indexDetected(class, numClasses)
	return pc
}

// NumClasses returns the number of distinct responses observed for test j
// (including the fault-free response).
func (m *Matrix) NumClasses(j int) int { return len(m.Vecs[j]) }

// Detected reports whether fault i is detected by test j (its response
// differs from the fault-free response).
func (m *Matrix) Detected(j, i int) bool { return m.Class[j][i] != 0 }

// DetectedCount returns how many of the N faults test j detects.
func (m *Matrix) DetectedCount(j int) int {
	n := 0
	for _, c := range m.Class[j] {
		if c != 0 {
			n++
		}
	}
	return n
}

// FullSizeBits returns the storage size of a full fault dictionary for this
// matrix: k·n·m bits (paper, Section 2).
func (m *Matrix) FullSizeBits() int64 { return int64(m.K) * int64(m.N) * int64(m.M) }

// PassFailSizeBits returns the storage size of a pass/fail dictionary:
// k·n bits.
func (m *Matrix) PassFailSizeBits() int64 { return int64(m.K) * int64(m.N) }

// SameDiffSizeBits returns the storage size of a same/different dictionary
// with one baseline vector per test: k·(n+m) bits.
func (m *Matrix) SameDiffSizeBits() int64 { return int64(m.K) * (int64(m.N) + int64(m.M)) }

// Build fault-simulates every fault under every test (64 patterns per pass)
// and returns the deduplicated response matrix.
func Build(view *netlist.ScanView, faults []fault.Fault, tests *pattern.Set) *Matrix {
	m, err := BuildCtx(context.Background(), view, faults, tests)
	if err != nil {
		panic("resp: " + err.Error()) // unreachable: background context never cancels
	}
	return m
}

// BuildCtx is Build under a context, checked at fault granularity within
// every 64-pattern batch. A partial response matrix would silently corrupt
// every dictionary built from it, so unlike the dictionary search this
// stage does not degrade: on cancellation it returns ctx.Err() and no
// matrix. It is BuildWorkersCtx at the default worker count.
func BuildCtx(ctx context.Context, view *netlist.ScanView, faults []fault.Fault, tests *pattern.Set) (*Matrix, error) {
	return BuildWorkersCtx(ctx, 0, view, faults, tests)
}

// patternRow is one test's assembled response data: the class of every
// fault, the deduplicated class vectors, and the packed per-class fault
// bitmaps built alongside classification.
type patternRow struct {
	class  []int32
	vecs   []logic.BitVec
	packed PackedClasses
}

// BuildWorkersCtx is BuildCtx with an explicit degree of parallelism
// (0 = one worker per available CPU, 1 = fully sequential). Batches are
// processed in order; within a batch the fault sweep is sharded across
// per-worker Simulator forks and the per-test class tables are assembled
// concurrently. Fault effects are pure per (batch, fault) and every
// test's class ids are assigned by scanning effects in fault-index order,
// so the matrix is byte-identical at every worker count (DESIGN.md §9).
func BuildWorkersCtx(ctx context.Context, workers int, view *netlist.ScanView, faults []fault.Fault, tests *pattern.Set) (*Matrix, error) {
	return BuildObsCtx(ctx, workers, view, faults, tests, nil)
}

// BuildObsCtx is BuildWorkersCtx with an observer. The batch loop is
// serial, so per-batch observation is already ordered: the sim_batches
// counter and resp_build trace events are identical at every worker
// count, and the matrix itself is byte-identical with ob set or nil.
func BuildObsCtx(ctx context.Context, workers int, view *netlist.ScanView, faults []fault.Fault, tests *pattern.Set, ob *obs.Observer) (*Matrix, error) {
	if tests.Width != view.NumInputs() {
		panic(fmt.Sprintf("resp: test width %d != %d scan inputs", tests.Width, view.NumInputs()))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	m := &Matrix{N: len(faults), K: tests.Len(), M: view.NumOutputs()}
	m.Class = make([][]int32, m.K)
	m.Vecs = make([][]logic.BitVec, m.K)
	m.packed = make([]PackedClasses, m.K)

	if ob.Tracing() {
		ob.Emit("resp_build", map[string]any{
			"faults": m.N, "tests": m.K, "outputs": m.M, "workers": workers,
		})
	}
	pool := par.New(workers)
	s := sim.New(view)
	goodWords := make([]logic.Word, m.M)
	base := 0
	for _, batch := range tests.Pack() {
		b := batch
		s.Apply(&b)
		s.GoodOutputs(goodWords)

		effects, err := sweepEffects(ctx, pool, s, faults)
		if err != nil {
			return nil, err
		}
		// Transpose the per-fault detect words once per batch: each test's
		// assembly then walks only its detected faults, word-parallel,
		// instead of re-deriving detection for every (pattern, fault) pair.
		detect := sim.DetectBitmaps(effects, b.Count)

		// Assemble each test of the batch independently: a test's class
		// table depends only on the good outputs and the effect list, and
		// class ids are assigned in fault order, exactly as the sequential
		// single-pass assembly did.
		rows, err := par.Map(ctx, pool, b.Count, func(ctx context.Context, p int) (patternRow, error) {
			if ctx.Err() != nil {
				return patternRow{}, ctx.Err()
			}
			return assemblePattern(m, goodWords, effects, detect[p], p), nil
		})
		if err != nil {
			return nil, err
		}
		for p, row := range rows {
			j := base + p
			m.Class[j] = row.class
			m.Vecs[j] = row.vecs
			m.packed[j] = row.packed
		}
		base += b.Count
		ob.M().Inc(obs.SimBatches)
		ob.Tick()
	}
	return m, nil
}

// sweepEffects simulates every fault against the simulator's current batch,
// sharding the fault list across per-worker forks, and returns the effects
// indexed by fault. Each shard is a pure function of (applied batch, fault
// range), so the result is independent of the shard count.
func sweepEffects(ctx context.Context, pool *par.Pool, s *sim.Simulator, faults []fault.Fault) ([]sim.Effect, error) {
	w := pool.Workers()
	if w == 1 {
		effects := make([]sim.Effect, len(faults))
		err := s.ForEachFault(ctx, faults, func(i int, eff sim.Effect) {
			effects[i] = eff
		})
		if err != nil {
			return nil, err
		}
		return effects, nil
	}
	if w > len(faults) {
		w = len(faults)
	}
	shards, err := par.Map(ctx, pool, w, func(ctx context.Context, k int) ([]sim.Effect, error) {
		lo, hi := k*len(faults)/w, (k+1)*len(faults)/w
		fork := s.Fork()
		shard := make([]sim.Effect, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			shard = append(shard, fork.Propagate(faults[i]))
		}
		return shard, nil
	})
	if err != nil {
		return nil, err
	}
	effects := make([]sim.Effect, 0, len(faults))
	for _, shard := range shards {
		effects = append(effects, shard...)
	}
	return effects, nil
}

// assemblePattern builds one test's class row, vector table, and packed
// class bitmaps from the batch's effect list. detect is this pattern's
// fault bitmap from sim.DetectBitmaps: undetected faults are class 0 by
// construction (its bitmap is the detect complement), and the detected
// faults are walked in index order via trailing-zero iteration, so class
// ids match the sequential full-scan assembly bit for bit.
func assemblePattern(m *Matrix, goodWords []logic.Word, effects []sim.Effect, detect []uint64, p int) patternRow {
	good := logic.NewBitVec(m.M)
	for o := 0; o < m.M; o++ {
		good.Set(o, (goodWords[o]>>uint(p))&1)
	}
	row := patternRow{
		class: make([]int32, m.N),
		vecs:  []logic.BitVec{good},
	}
	words := len(detect)
	// Class 0's bitmap is the complement of the detect bitmap, trimmed to
	// the valid fault indices; further class slabs grow as classes appear.
	packed := make([]uint64, words, 4*words)
	for w, dw := range detect {
		packed[w] = ^dw
	}
	if tail := uint(m.N) % 64; tail != 0 && words > 0 {
		packed[words-1] &= 1<<tail - 1
	}
	byHash := map[uint64][]int32{good.Hash(): {0}}
	for w, dw := range detect {
		for dw != 0 {
			i := w<<6 + bits.TrailingZeros64(dw)
			dw &= dw - 1
			vec := good.Clone()
			for _, d := range effects[i].Diffs {
				if d.Bits&(1<<uint(p)) != 0 {
					vec.Set(int(d.Slot), 1-vec.Get(int(d.Slot)))
				}
			}
			h := vec.Hash()
			cls := int32(-1)
			for _, cand := range byHash[h] {
				if row.vecs[cand].Equal(vec) {
					cls = cand
					break
				}
			}
			if cls < 0 {
				cls = int32(len(row.vecs))
				row.vecs = append(row.vecs, vec)
				byHash[h] = append(byHash[h], cls)
				packed = append(packed, make([]uint64, words)...)
			}
			row.class[i] = cls
			packed[int(cls)*words+w] |= 1 << (uint(i) & 63)
		}
	}
	row.packed = PackedClasses{words: words, bits: packed}
	row.packed.detList, row.packed.detOffs = indexDetected(row.class, len(row.vecs))
	return row
}

// FromResponses builds a matrix from explicit output vectors, e.g. when
// responses come from an external fault simulator or from a worked example:
// ff[j] is the fault-free output vector of test j and responses[j][i] the
// output vector of fault i under test j. All vectors must hold m bits.
func FromResponses(m int, ff []logic.BitVec, responses [][]logic.BitVec) *Matrix {
	mat := &Matrix{N: 0, K: len(ff), M: m}
	if mat.K > 0 {
		mat.N = len(responses[0])
	}
	mat.Class = make([][]int32, mat.K)
	mat.Vecs = make([][]logic.BitVec, mat.K)
	for j := 0; j < mat.K; j++ {
		if len(responses[j]) != mat.N {
			panic(fmt.Sprintf("resp: test %d has %d responses, want %d", j, len(responses[j]), mat.N))
		}
		mat.Class[j] = make([]int32, mat.N)
		mat.Vecs[j] = []logic.BitVec{ff[j].Clone()}
		for i, v := range responses[j] {
			cls := int32(-1)
			for c, seen := range mat.Vecs[j] {
				if seen.Equal(v) {
					cls = int32(c)
					break
				}
			}
			if cls < 0 {
				cls = int32(len(mat.Vecs[j]))
				mat.Vecs[j] = append(mat.Vecs[j], v.Clone())
			}
			mat.Class[j][i] = cls
		}
	}
	return mat
}

// BuildForCircuit is a convenience wrapper: full-scan view plus collapsed
// faults in one call.
func BuildForCircuit(c *netlist.Circuit, tests *pattern.Set) (*Matrix, []fault.Fault) {
	view := netlist.NewScanView(c)
	col := fault.Collapse(c)
	return Build(view, col.Faults, tests), col.Faults
}
