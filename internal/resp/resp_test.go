package resp

import (
	"math/rand"
	"testing"

	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/sim"
)

// TestBuildMatchesScalarReference: every Class/Vecs entry must agree with
// naive scalar faulty simulation.
func TestBuildMatchesScalarReference(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	c := gen.Profiles["s27"].MustGenerate(15)
	view := netlist.NewScanView(c)
	col := fault.Collapse(c)
	tests := pattern.NewSet(view.NumInputs())
	for i := 0; i < 70; i++ { // crosses a batch boundary
		tests.Add(pattern.Random(r, view.NumInputs()))
	}
	m := Build(view, col.Faults, tests)
	if m.N != len(col.Faults) || m.K != 70 || m.M != view.NumOutputs() {
		t.Fatalf("dims N=%d K=%d M=%d", m.N, m.K, m.M)
	}
	for j := 0; j < m.K; j++ {
		// Class 0 is the fault-free response.
		goodVals := sim.EvalTernary(view, tests.Vecs[j])
		good := logic.NewBitVec(m.M)
		for slot, g := range view.Outputs {
			good.Set(slot, goodVals[g].Bit())
		}
		if !m.Vecs[j][0].Equal(good) {
			t.Fatalf("test %d: class 0 vector is not the fault-free response", j)
		}
		for i, f := range col.Faults {
			want := sim.RefFaultOutputs(view, f, tests.Vecs[j])
			got := m.Vecs[j][m.Class[j][i]]
			if !got.Equal(want) {
				t.Fatalf("test %d fault %s: matrix %s, reference %s",
					j, f.Name(c), got.String(m.M), want.String(m.M))
			}
			if m.Detected(j, i) != !want.Equal(good) {
				t.Fatalf("test %d fault %s: Detected mismatch", j, f.Name(c))
			}
		}
		// Vectors within a test must be pairwise distinct (deduplication).
		for a := 0; a < m.NumClasses(j); a++ {
			for b := a + 1; b < m.NumClasses(j); b++ {
				if m.Vecs[j][a].Equal(m.Vecs[j][b]) {
					t.Fatalf("test %d: classes %d and %d share a vector", j, a, b)
				}
			}
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	m := &Matrix{N: 100, K: 20, M: 7}
	if m.FullSizeBits() != 100*20*7 {
		t.Errorf("full size %d", m.FullSizeBits())
	}
	if m.PassFailSizeBits() != 100*20 {
		t.Errorf("p/f size %d", m.PassFailSizeBits())
	}
	if m.SameDiffSizeBits() != 20*(100+7) {
		t.Errorf("s/d size %d", m.SameDiffSizeBits())
	}
}

func TestFromResponses(t *testing.T) {
	mk := func(s string) logic.BitVec {
		v := logic.NewBitVec(len(s))
		for i, c := range s {
			if c == '1' {
				v.Set(i, 1)
			}
		}
		return v
	}
	ff := []logic.BitVec{mk("00")}
	m := FromResponses(2, ff, [][]logic.BitVec{{mk("00"), mk("01"), mk("01"), mk("11")}})
	if m.N != 4 || m.K != 1 || m.NumClasses(0) != 3 {
		t.Fatalf("dims N=%d K=%d classes=%d", m.N, m.K, m.NumClasses(0))
	}
	if m.Class[0][0] != 0 {
		t.Errorf("fault 0 should share the fault-free class")
	}
	if m.Class[0][1] != m.Class[0][2] {
		t.Errorf("identical responses must share a class")
	}
	if m.Class[0][1] == m.Class[0][3] {
		t.Errorf("different responses must not share a class")
	}
	if m.DetectedCount(0) != 3 {
		t.Errorf("DetectedCount = %d, want 3", m.DetectedCount(0))
	}
}

func TestBuildForCircuit(t *testing.T) {
	c := gen.C17()
	r := rand.New(rand.NewSource(8))
	tests := pattern.NewSet(5)
	for i := 0; i < 16; i++ {
		tests.Add(pattern.Random(r, 5))
	}
	m, faults := BuildForCircuit(c, tests)
	if m.N != len(faults) || m.K != 16 || m.M != 2 {
		t.Fatalf("dims N=%d/%d K=%d M=%d", m.N, len(faults), m.K, m.M)
	}
}

// TestBuildWorkersIdentical pins the determinism contract of the sharded
// capture: the response matrix must be byte-identical at every worker
// count, because sddlint-checked consumers assume matrices are stable
// artifacts of (circuit, test set) alone.
func TestBuildWorkersIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	c := gen.Profiles["s27"].MustGenerate(21)
	view := netlist.NewScanView(c)
	col := fault.Collapse(c)
	tests := pattern.NewSet(view.NumInputs())
	for i := 0; i < 130; i++ { // three batches, last one partial
		tests.Add(pattern.Random(r, view.NumInputs()))
	}
	ref, err := BuildWorkersCtx(nil, 1, view, col.Faults, tests)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	for _, workers := range []int{2, 4, 7} {
		m, err := BuildWorkersCtx(nil, workers, view, col.Faults, tests)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if m.N != ref.N || m.K != ref.K || m.M != ref.M {
			t.Fatalf("workers=%d: dims %d/%d/%d != %d/%d/%d", workers, m.N, m.K, m.M, ref.N, ref.K, ref.M)
		}
		for j := 0; j < ref.K; j++ {
			if m.NumClasses(j) != ref.NumClasses(j) {
				t.Fatalf("workers=%d test %d: %d classes, want %d", workers, j, m.NumClasses(j), ref.NumClasses(j))
			}
			for i := range ref.Class[j] {
				if m.Class[j][i] != ref.Class[j][i] {
					t.Fatalf("workers=%d test %d fault %d: class %d, want %d",
						workers, j, i, m.Class[j][i], ref.Class[j][i])
				}
			}
			for cls := range ref.Vecs[j] {
				if !m.Vecs[j][cls].Equal(ref.Vecs[j][cls]) {
					t.Fatalf("workers=%d test %d class %d: vector differs", workers, j, cls)
				}
			}
		}
	}
}
