package resp

import (
	"math/rand"
	"testing"

	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
)

func buildSmallMatrix(t *testing.T) *Matrix {
	t.Helper()
	r := rand.New(rand.NewSource(3))
	c := gen.Profiles["s298"].MustGenerate(5)
	comb := netlist.Combinationalize(c)
	view := netlist.NewScanView(comb)
	col := fault.Collapse(comb)
	tests := pattern.NewSet(view.NumInputs())
	for i := 0; i < 96; i++ {
		tests.Add(pattern.Random(r, view.NumInputs()))
	}
	return Build(view, col.Faults, tests)
}

// countPairs returns the number of fault pairs with identical responses
// under every test of the matrix (full-dictionary resolution), computed
// directly to avoid importing core.
func countPairs(m *Matrix) int64 {
	// Group faults by their full class tuple via hashing of rows.
	type key struct{ h1, h2 uint64 }
	groups := map[key]int64{}
	for i := 0; i < m.N; i++ {
		var h1, h2 uint64 = 14695981039346656037, 1099511628211
		for j := 0; j < m.K; j++ {
			c := uint64(m.Class[j][i])
			h1 = (h1 ^ c) * 1099511628211
			h2 = h2*31 + c
		}
		groups[key{h1, h2}]++
	}
	var pairs int64
	for _, n := range groups {
		pairs += n * (n - 1) / 2
	}
	return pairs
}

func TestCompactOutputsBasics(t *testing.T) {
	m := buildSmallMatrix(t)
	cm := m.CompactOutputs(8, 1)
	if cm.M != 8 || cm.N != m.N || cm.K != m.K {
		t.Fatalf("dims wrong: %d/%d/%d", cm.N, cm.K, cm.M)
	}
	for j := 0; j < cm.K; j++ {
		if cm.NumClasses(j) > m.NumClasses(j) {
			t.Fatalf("test %d: compaction increased class count", j)
		}
		// Class 0 remains the fault-free response: any fault in old class
		// 0 must be in new class 0.
		for i := 0; i < m.N; i++ {
			if m.Class[j][i] == 0 && cm.Class[j][i] != 0 {
				t.Fatalf("test %d fault %d: fault-free response left class 0", j, i)
			}
		}
	}
	// Sizes shrink.
	if cm.FullSizeBits() >= m.FullSizeBits() || cm.SameDiffSizeBits() >= m.SameDiffSizeBits() {
		t.Fatalf("compaction did not shrink sizes")
	}
}

// TestCompactOutputsOnlyMerges: the compacted classes are a coarsening —
// two faults sharing an old class always share a new class, so resolution
// only degrades.
func TestCompactOutputsOnlyMerges(t *testing.T) {
	m := buildSmallMatrix(t)
	for _, mp := range []int{4, 8, 16} {
		cm := m.CompactOutputs(mp, 7)
		for j := 0; j < m.K; j++ {
			for i := 1; i < m.N; i++ {
				if m.Class[j][i] == m.Class[j][0] && cm.Class[j][i] != cm.Class[j][0] {
					t.Fatalf("m'=%d test %d: compaction split a class", mp, j)
				}
			}
		}
		if countPairs(cm) < countPairs(m) {
			t.Fatalf("m'=%d: compaction improved resolution — impossible", mp)
		}
	}
}

// TestCompactOutputsWideningHelps: more parity bits never hurt resolution
// on average; check the extremes.
func TestCompactOutputsWideningHelps(t *testing.T) {
	m := buildSmallMatrix(t)
	narrow := countPairs(m.CompactOutputs(2, 5))
	wide := countPairs(m.CompactOutputs(32, 5))
	if wide > narrow {
		t.Fatalf("32-bit compactor (%d pairs) worse than 2-bit (%d)", wide, narrow)
	}
}

func TestCompactOutputsDeterministic(t *testing.T) {
	m := buildSmallMatrix(t)
	a := m.CompactOutputs(8, 42)
	b := m.CompactOutputs(8, 42)
	for j := 0; j < m.K; j++ {
		for i := 0; i < m.N; i++ {
			if a.Class[j][i] != b.Class[j][i] {
				t.Fatal("compactor not deterministic for equal seeds")
			}
		}
	}
}
