package gen

import (
	"strings"

	"sddict/internal/bench"
	"sddict/internal/netlist"
)

// C17Bench is the ISCAS-85 c17 benchmark in .bench format — small enough to
// be public knowledge and to verify the toolchain against a real netlist.
const C17Bench = `# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

// C17 parses and returns the c17 benchmark circuit.
func C17() *netlist.Circuit {
	c, err := bench.Parse(strings.NewReader(C17Bench), "c17")
	if err != nil {
		panic("gen: embedded c17 is invalid: " + err.Error())
	}
	return c
}
