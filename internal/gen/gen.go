// Package gen deterministically synthesizes gate-level benchmark circuits.
//
// The paper evaluates on the ISCAS-89 benchmark netlists, which are not
// redistributable here. This package substitutes structurally similar
// synthetic circuits: for each Table-6 circuit a Profile records the
// published input/output/flip-flop/gate counts, and Generate produces a
// random sequential netlist with exactly those counts, no dead logic, and a
// gate-type mix typical of the benchmark family. Generation is fully
// deterministic in (profile, seed).
package gen

import (
	"fmt"
	"math/rand"

	"sddict/internal/netlist"
)

// Profile describes the size parameters of a circuit to synthesize.
type Profile struct {
	Name  string
	PIs   int // primary inputs
	POs   int // primary outputs
	DFFs  int // D flip-flops
	Gates int // combinational logic gates
}

// drawFaninCount samples a fanin count; two-input gates dominate as in the
// ISCAS-89 family.
func drawFaninCount(r *rand.Rand) int {
	// The ISCAS-89 family is inverter/buffer heavy (s9234 is more than
	// half inverters), which keeps the per-gate fault density low; the
	// distribution mirrors that.
	switch n := r.Intn(100); {
	case n < 30:
		return 1
	case n < 82:
		return 2
	case n < 95:
		return 3
	default:
		return 4
	}
}

// typeChoices lists the candidate gate types per fanin count.
var (
	unaryTypes  = []netlist.GateType{netlist.Not, netlist.Not, netlist.Not, netlist.Buf}
	binaryTypes = []netlist.GateType{
		netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor,
	}
	wideTypes = []netlist.GateType{netlist.And, netlist.Nand, netlist.Or, netlist.Nor}
)

// outputProb estimates the signal probability of a gate's output from the
// probabilities of its fanins under an independence assumption. Keeping
// this near 0.5 avoids the near-constant internal signals that make random
// circuits heavily redundant (untestable faults), which the ISCAS family is
// not.
func outputProb(t netlist.GateType, in []float64) float64 {
	switch t {
	case netlist.Buf:
		return in[0]
	case netlist.Not:
		return 1 - in[0]
	case netlist.And, netlist.Nand:
		p := 1.0
		for _, x := range in {
			p *= x
		}
		if t == netlist.Nand {
			p = 1 - p
		}
		return p
	case netlist.Or, netlist.Nor:
		q := 1.0
		for _, x := range in {
			q *= 1 - x
		}
		if t == netlist.Or {
			return 1 - q
		}
		return q
	case netlist.Xor, netlist.Xnor:
		p := 0.0
		for _, x := range in {
			p = p*(1-x) + (1-p)*x
		}
		if t == netlist.Xnor {
			p = 1 - p
		}
		return p
	}
	return 0.5
}

// drawType picks a gate type for the chosen fanins: among three randomly
// sampled candidates compatible with the fanin count, the one whose
// estimated output probability is closest to 0.5 wins. This preserves
// type diversity while steering the circuit away from constant regions.
func drawType(r *rand.Rand, probs []float64) netlist.GateType {
	var pool []netlist.GateType
	switch len(probs) {
	case 1:
		pool = unaryTypes
	case 2:
		pool = binaryTypes
	default:
		pool = wideTypes
	}
	best := pool[r.Intn(len(pool))]
	bestDist := dist05(outputProb(best, probs))
	for i := 0; i < 2; i++ {
		t := pool[r.Intn(len(pool))]
		if d := dist05(outputProb(t, probs)); d < bestDist {
			best, bestDist = t, d
		}
	}
	return best
}

func dist05(p float64) float64 {
	if p < 0.5 {
		return 0.5 - p
	}
	return p - 0.5
}

// Generate synthesizes a circuit for the profile. The construction
// guarantees: exact PI/PO/DFF/gate counts; every logic gate either fans out
// or drives a primary output or a flip-flop D line (no dead logic); and no
// combinational cycles (flip-flops may close sequential loops).
func (p Profile) Generate(seed int64) (*netlist.Circuit, error) {
	if p.PIs < 1 || p.POs < 1 || p.Gates < 1 || p.DFFs < 0 {
		return nil, fmt.Errorf("gen: profile %q: need at least 1 PI, 1 PO, 1 gate", p.Name)
	}
	if p.POs > p.Gates {
		return nil, fmt.Errorf("gen: profile %q: more outputs (%d) than gates (%d)", p.Name, p.POs, p.Gates)
	}
	r := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(p.Name)

	// Sources: primary inputs and flip-flop Q outputs. Flip-flop D fanins
	// are patched in at the end.
	signals := make([]int32, 0, p.PIs+p.DFFs+p.Gates)
	unusedSources := make([]int32, 0, p.PIs+p.DFFs)
	for i := 0; i < p.PIs; i++ {
		g := b.Input(fmt.Sprintf("pi%d", i))
		signals = append(signals, g)
		unusedSources = append(unusedSources, g)
	}
	dffs := make([]int32, p.DFFs)
	for i := 0; i < p.DFFs; i++ {
		// Temporary self-fanin; replaced below once drivers exist.
		dffs[i] = b.Gate(netlist.DFF, fmt.Sprintf("ff%d", i))
		signals = append(signals, dffs[i])
		unusedSources = append(unusedSources, dffs[i])
	}
	r.Shuffle(len(unusedSources), func(i, j int) {
		unusedSources[i], unusedSources[j] = unusedSources[j], unusedSources[i]
	})

	// sinksNeeded bounds the dangling pool: whenever more logic gates than
	// this are dangling, the next gate must consume the oldest dangler, so
	// the pool never exceeds the number of sink positions available.
	sinksNeeded := p.POs + p.DFFs
	dangling := make([]int32, 0, sinksNeeded+1)

	pick := func(exclude map[int32]bool) int32 {
		// Prefer an unused source so every input participates in the logic.
		for len(unusedSources) > 0 {
			s := unusedSources[len(unusedSources)-1]
			unusedSources = unusedSources[:len(unusedSources)-1]
			if !exclude[s] {
				return s
			}
		}
		// Bias toward recent signals for ISCAS-like locality.
		for tries := 0; tries < 32; tries++ {
			var idx int
			if r.Intn(100) < 70 && len(signals) > 16 {
				span := len(signals) / 4
				if span < 16 {
					span = 16
				}
				idx = len(signals) - 1 - r.Intn(span)
			} else {
				idx = r.Intn(len(signals))
			}
			if s := signals[idx]; !exclude[s] {
				return s
			}
		}
		for _, s := range signals {
			if !exclude[s] {
				return s
			}
		}
		return signals[0]
	}

	// prob[g] is the estimated signal probability of each line; sources are
	// 0.5 by definition of uniform random tests.
	prob := make([]float64, p.PIs+p.DFFs, p.PIs+p.DFFs+p.Gates)
	for i := range prob {
		prob[i] = 0.5
	}

	for i := 0; i < p.Gates; i++ {
		nf := drawFaninCount(r)
		if nf > len(signals) {
			nf = len(signals)
		}
		fanin := make([]int32, 0, nf)
		exclude := make(map[int32]bool, nf)
		if len(dangling) >= sinksNeeded {
			// Consume the oldest dangler to keep the pool bounded.
			d := dangling[0]
			dangling = dangling[1:]
			fanin = append(fanin, d)
			exclude[d] = true
		}
		for len(fanin) < nf {
			s := pick(exclude)
			fanin = append(fanin, s)
			exclude[s] = true
		}
		// Record consumption of danglers chosen by pick.
		for _, f := range fanin {
			for di, d := range dangling {
				if d == f {
					dangling = append(dangling[:di], dangling[di+1:]...)
					break
				}
			}
		}
		probs := make([]float64, len(fanin))
		for pi, f := range fanin {
			probs[pi] = prob[f]
		}
		t := drawType(r, probs)
		g := b.Gate(t, fmt.Sprintf("g%d", i), fanin...)
		signals = append(signals, g)
		prob = append(prob, outputProb(t, probs))
		dangling = append(dangling, g)
	}

	// Assign sinks. Danglers become primary outputs first (they are
	// distinct gates); leftover danglers drive flip-flop D lines; remaining
	// sink positions draw random logic signals.
	poSet := make(map[int32]bool, p.POs)
	pos := make([]int32, 0, p.POs)
	for len(pos) < p.POs && len(dangling) > 0 {
		pos = append(pos, dangling[0])
		poSet[dangling[0]] = true
		dangling = dangling[1:]
	}
	firstGate := int32(p.PIs + p.DFFs)
	for len(pos) < p.POs {
		g := firstGate + int32(r.Intn(p.Gates))
		if !poSet[g] {
			pos = append(pos, g)
			poSet[g] = true
		}
	}
	for _, g := range pos {
		b.Output(g)
	}
	for i := 0; i < p.DFFs; i++ {
		var d int32
		if len(dangling) > 0 {
			d = dangling[0]
			dangling = dangling[1:]
		} else {
			d = firstGate + int32(r.Intn(p.Gates))
			if d == dffs[i] { // cannot happen (d is a logic gate) but keep the guard
				d = firstGate
			}
		}
		b.SetFanin(dffs[i], d)
	}

	return b.Build()
}

// MustGenerate is Generate for known-good profiles; it panics on error.
func (p Profile) MustGenerate(seed int64) *netlist.Circuit {
	c, err := p.Generate(seed)
	if err != nil {
		panic(err)
	}
	return c
}
