package gen

import (
	"testing"

	"sddict/internal/netlist"
)

func TestGenerateMatchesProfile(t *testing.T) {
	for _, name := range []string{"s27", "s208", "s298", "s386", "s641", "s1423"} {
		p, err := Named(name)
		if err != nil {
			t.Fatalf("Named(%s): %v", name, err)
		}
		c, err := p.Generate(1)
		if err != nil {
			t.Fatalf("%s: Generate: %v", name, err)
		}
		st := c.Stat()
		if st.PIs != p.PIs || st.POs != p.POs || st.DFFs != p.DFFs || st.LogicGates != p.Gates {
			t.Errorf("%s: got %+v, want PI=%d PO=%d FF=%d gates=%d",
				name, st, p.PIs, p.POs, p.DFFs, p.Gates)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Profiles["s298"]
	a := p.MustGenerate(42)
	b := p.MustGenerate(42)
	if len(a.Gates) != len(b.Gates) {
		t.Fatalf("gate counts differ: %d vs %d", len(a.Gates), len(b.Gates))
	}
	for i := range a.Gates {
		ga, gb := a.Gates[i], b.Gates[i]
		if ga.Type != gb.Type || len(ga.Fanin) != len(gb.Fanin) {
			t.Fatalf("gate %d differs between identical seeds", i)
		}
		for j := range ga.Fanin {
			if ga.Fanin[j] != gb.Fanin[j] {
				t.Fatalf("gate %d fanin %d differs", i, j)
			}
		}
	}
	c := p.MustGenerate(43)
	same := true
	for i := range a.Gates {
		if a.Gates[i].Type != c.Gates[i].Type {
			same = false
			break
		}
	}
	if same {
		t.Log("different seeds produced identical gate types; suspicious but not fatal")
	}
}

// TestNoDeadLogic: every logic gate must either fan out or drive a primary
// output or a flip-flop D line.
func TestNoDeadLogic(t *testing.T) {
	for _, name := range []string{"s208", "s344", "s820", "s953"} {
		c := Profiles[name].MustGenerate(7)
		isPO := make(map[int32]bool)
		for _, po := range c.POs {
			isPO[po] = true
		}
		for i := range c.Gates {
			g := int32(i)
			if c.IsSource(g) {
				continue
			}
			if c.FanoutCount(g) == 0 && !isPO[g] {
				t.Errorf("%s: gate %d (%s) is dead logic", name, g, c.Gates[i].Name)
			}
		}
	}
}

// TestAllSinksDriven: flip-flops have a real D driver, and no gate drives
// itself combinationally.
func TestAllSinksDriven(t *testing.T) {
	c := Profiles["s526"].MustGenerate(3)
	for _, ff := range c.DFFs {
		d := c.Gates[ff].Fanin[0]
		if d == ff {
			t.Errorf("flip-flop %d drives itself directly", ff)
		}
		if c.Gates[d].Type == netlist.Input {
			t.Logf("flip-flop %d driven directly by an input; unusual but legal", ff)
		}
	}
}

func TestProfileErrors(t *testing.T) {
	if _, err := Named("does-not-exist"); err == nil {
		t.Error("Named accepted unknown profile")
	}
	if _, err := (Profile{Name: "bad", PIs: 0, POs: 1, Gates: 5}).Generate(1); err == nil {
		t.Error("Generate accepted zero inputs")
	}
	if _, err := (Profile{Name: "bad", PIs: 2, POs: 9, Gates: 5}).Generate(1); err == nil {
		t.Error("Generate accepted more outputs than gates")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != len(Profiles) {
		t.Fatalf("Names() returned %d entries, want %d", len(names), len(Profiles))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted at %d: %s >= %s", i, names[i-1], names[i])
		}
	}
	for _, n := range Table6Circuits {
		if _, ok := Profiles[n]; !ok {
			t.Errorf("Table-6 circuit %s has no profile", n)
		}
	}
}

func TestC17(t *testing.T) {
	c := C17()
	st := c.Stat()
	if st.PIs != 5 || st.POs != 2 || st.DFFs != 0 || st.LogicGates != 6 {
		t.Fatalf("c17 stats = %+v, want 5/2/0/6", st)
	}
	for i := range c.Gates {
		if c.Gates[i].Type != netlist.Input && c.Gates[i].Type != netlist.Nand {
			t.Errorf("c17 gate %d has type %s, want NAND", i, c.Gates[i].Type)
		}
	}
}
