package gen

import (
	"fmt"
	"sort"
)

// Profiles records the published size statistics (inputs, outputs,
// flip-flops, gates) of the ISCAS-89 circuits used in the paper's Table 6,
// plus a few small extras that are convenient for tests and examples.
// Generate produces synthetic circuits with these exact counts; reports mark
// them as synthetic analogs of the named benchmarks.
var Profiles = map[string]Profile{
	"s27":   {Name: "s27", PIs: 4, POs: 1, DFFs: 3, Gates: 10},
	"s208":  {Name: "s208", PIs: 10, POs: 1, DFFs: 8, Gates: 96},
	"s298":  {Name: "s298", PIs: 3, POs: 6, DFFs: 14, Gates: 119},
	"s344":  {Name: "s344", PIs: 9, POs: 11, DFFs: 15, Gates: 160},
	"s382":  {Name: "s382", PIs: 3, POs: 6, DFFs: 21, Gates: 158},
	"s386":  {Name: "s386", PIs: 7, POs: 7, DFFs: 6, Gates: 159},
	"s400":  {Name: "s400", PIs: 3, POs: 6, DFFs: 21, Gates: 162},
	"s420":  {Name: "s420", PIs: 18, POs: 1, DFFs: 16, Gates: 196},
	"s510":  {Name: "s510", PIs: 19, POs: 7, DFFs: 6, Gates: 211},
	"s526":  {Name: "s526", PIs: 3, POs: 6, DFFs: 21, Gates: 193},
	"s641":  {Name: "s641", PIs: 35, POs: 24, DFFs: 19, Gates: 379},
	"s820":  {Name: "s820", PIs: 18, POs: 19, DFFs: 5, Gates: 289},
	"s953":  {Name: "s953", PIs: 16, POs: 23, DFFs: 29, Gates: 395},
	"s1196": {Name: "s1196", PIs: 14, POs: 14, DFFs: 18, Gates: 529},
	"s1423": {Name: "s1423", PIs: 17, POs: 5, DFFs: 74, Gates: 657},
	"s5378": {Name: "s5378", PIs: 35, POs: 49, DFFs: 179, Gates: 2779},
	"s9234": {Name: "s9234", PIs: 36, POs: 39, DFFs: 211, Gates: 5597},
}

// Table6Circuits lists, in the paper's order, the circuits of Table 6.
var Table6Circuits = []string{
	"s208", "s298", "s344", "s382", "s386", "s400", "s420", "s510",
	"s526", "s641", "s820", "s953", "s1196", "s1423", "s5378", "s9234",
}

// Named returns the profile registered under name.
func Named(name string) (Profile, error) {
	p, ok := Profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("gen: unknown circuit profile %q", name)
	}
	return p, nil
}

// Names returns all registered profile names in sorted order.
func Names() []string {
	names := make([]string, 0, len(Profiles))
	for n := range Profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
