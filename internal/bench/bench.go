// Package bench reads and writes gate-level netlists in the ISCAS-89
// ".bench" format, the standard interchange format for the benchmark
// circuits used in the paper's evaluation (s208 … s9234).
//
// The grammar handled:
//
//	# comment
//	INPUT(name)
//	OUTPUT(name)
//	name = TYPE(arg, arg, ...)
//
// where TYPE is one of AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF/BUFF, DFF.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"sddict/internal/netlist"
)

var typeByName = map[string]netlist.GateType{
	"AND":  netlist.And,
	"NAND": netlist.Nand,
	"OR":   netlist.Or,
	"NOR":  netlist.Nor,
	"XOR":  netlist.Xor,
	"XNOR": netlist.Xnor,
	"NOT":  netlist.Not,
	"BUF":  netlist.Buf,
	"BUFF": netlist.Buf,
	"DFF":  netlist.DFF,
}

var nameByType = map[netlist.GateType]string{
	netlist.And:  "AND",
	netlist.Nand: "NAND",
	netlist.Or:   "OR",
	netlist.Nor:  "NOR",
	netlist.Xor:  "XOR",
	netlist.Xnor: "XNOR",
	netlist.Not:  "NOT",
	netlist.Buf:  "BUFF",
	netlist.DFF:  "DFF",
}

type rawGate struct {
	name  string
	typ   netlist.GateType
	fanin []string
	line  int
}

// Parse reads a .bench netlist. The circuit name is taken from the caller
// since the format carries none.
func Parse(r io.Reader, name string) (*netlist.Circuit, error) {
	var (
		inputs  []string
		outputs []string
		gates   []rawGate
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT("):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench: line %d: %v", lineNo, err)
			}
			inputs = append(inputs, arg)
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT("):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench: line %d: %v", lineNo, err)
			}
			outputs = append(outputs, arg)
		default:
			g, err := parseAssign(line, lineNo)
			if err != nil {
				return nil, err
			}
			gates = append(gates, g)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: %v", err)
	}

	b := netlist.NewBuilder(name)
	ids := make(map[string]int32, len(inputs)+len(gates))
	declare := func(nm string, id int32) error {
		if _, dup := ids[nm]; dup {
			return fmt.Errorf("bench: signal %q defined twice", nm)
		}
		ids[nm] = id
		return nil
	}
	for _, nm := range inputs {
		if err := declare(nm, b.Input(nm)); err != nil {
			return nil, err
		}
	}
	// First pass declares every gate with no fanins resolved yet: .bench
	// files reference signals before definition.
	gateIDs := make([]int32, len(gates))
	for i, g := range gates {
		gateIDs[i] = b.Gate(g.typ, g.name) // fanins patched below
		if err := declare(g.name, gateIDs[i]); err != nil {
			return nil, err
		}
	}
	for i, g := range gates {
		fanin := make([]int32, len(g.fanin))
		for j, fn := range g.fanin {
			id, ok := ids[fn]
			if !ok {
				return nil, fmt.Errorf("bench: line %d: undefined signal %q", g.line, fn)
			}
			fanin[j] = id
		}
		b.SetFanin(gateIDs[i], fanin...)
	}
	for _, nm := range outputs {
		id, ok := ids[nm]
		if !ok {
			return nil, fmt.Errorf("bench: OUTPUT(%s): undefined signal", nm)
		}
		b.Output(id)
	}
	return b.Build()
}

func parenArg(line string) (string, error) {
	open := strings.IndexByte(line, '(')
	close := strings.LastIndexByte(line, ')')
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	arg := strings.TrimSpace(line[open+1 : close])
	if arg == "" {
		return "", fmt.Errorf("empty argument in %q", line)
	}
	return arg, nil
}

func parseAssign(line string, lineNo int) (rawGate, error) {
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return rawGate{}, fmt.Errorf("bench: line %d: expected assignment, got %q", lineNo, line)
	}
	name := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	close := strings.LastIndexByte(rhs, ')')
	if name == "" || open <= 0 || close < open {
		return rawGate{}, fmt.Errorf("bench: line %d: malformed gate %q", lineNo, line)
	}
	tname := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	typ, ok := typeByName[tname]
	if !ok {
		return rawGate{}, fmt.Errorf("bench: line %d: unknown gate type %q", lineNo, tname)
	}
	var fanin []string
	for _, f := range strings.Split(rhs[open+1:close], ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			return rawGate{}, fmt.Errorf("bench: line %d: empty fanin in %q", lineNo, line)
		}
		fanin = append(fanin, f)
	}
	return rawGate{name: name, typ: typ, fanin: fanin, line: lineNo}, nil
}

// Write renders the circuit in .bench format. Gate order follows the
// circuit's gate indices; INPUT and OUTPUT declarations come first.
func Write(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	st := c.Stat()
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d D-type flipflops, %d gates\n",
		st.PIs, st.POs, st.DFFs, st.LogicGates)
	for _, pi := range c.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gates[pi].Name)
	}
	for _, po := range c.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gates[po].Name)
	}
	fmt.Fprintln(bw)
	for i := range c.Gates {
		g := &c.Gates[i]
		switch g.Type {
		case netlist.Input:
			continue
		case netlist.Const0, netlist.Const1:
			return fmt.Errorf("bench: constant gate %q has no .bench representation", g.Name)
		}
		tname := nameByType[g.Type]
		args := make([]string, len(g.Fanin))
		for j, f := range g.Fanin {
			args[j] = c.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, tname, strings.Join(args, ", "))
	}
	return bw.Flush()
}

// SortedSignalNames returns all signal names in sorted order; useful for
// deterministic diagnostics and tests.
func SortedSignalNames(c *netlist.Circuit) []string {
	names := make([]string, len(c.Gates))
	for i := range c.Gates {
		names[i] = c.Gates[i].Name
	}
	sort.Strings(names)
	return names
}
