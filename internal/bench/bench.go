// Package bench reads and writes gate-level netlists in the ISCAS-89
// ".bench" format, the standard interchange format for the benchmark
// circuits used in the paper's evaluation (s208 … s9234).
//
// The grammar handled:
//
//	# comment
//	INPUT(name)
//	OUTPUT(name)
//	name = TYPE(arg, arg, ...)
//
// where TYPE is one of AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF/BUFF, DFF.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"sddict/internal/netlist"
)

var typeByName = map[string]netlist.GateType{
	"AND":  netlist.And,
	"NAND": netlist.Nand,
	"OR":   netlist.Or,
	"NOR":  netlist.Nor,
	"XOR":  netlist.Xor,
	"XNOR": netlist.Xnor,
	"NOT":  netlist.Not,
	"BUF":  netlist.Buf,
	"BUFF": netlist.Buf,
	"DFF":  netlist.DFF,
}

var nameByType = map[netlist.GateType]string{
	netlist.And:  "AND",
	netlist.Nand: "NAND",
	netlist.Or:   "OR",
	netlist.Nor:  "NOR",
	netlist.Xor:  "XOR",
	netlist.Xnor: "XNOR",
	netlist.Not:  "NOT",
	netlist.Buf:  "BUFF",
	netlist.DFF:  "DFF",
}

// Error describes a .bench parse failure with the file and line it was
// found on, so malformed netlists can be fixed without guessing.
type Error struct {
	File string
	Line int // 1-based; 0 when the failure is not tied to one line
	Msg  string
}

func (e *Error) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("bench: %s:%d: %s", e.File, e.Line, e.Msg)
	}
	return fmt.Sprintf("bench: %s: %s", e.File, e.Msg)
}

func errf(file string, line int, format string, args ...interface{}) *Error {
	return &Error{File: file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

type rawGate struct {
	name  string
	typ   netlist.GateType
	fanin []string
	line  int
}

type decl struct {
	name string
	line int
}

// Parse reads a .bench netlist. The circuit name is taken from the caller
// since the format carries none; it is also used as the file name in
// errors, which are always *Error values locating the failure.
func Parse(r io.Reader, name string) (*netlist.Circuit, error) {
	var (
		inputs  []decl
		outputs []decl
		gates   []rawGate
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT("):
			arg, err := parenArg(name, lineNo, line)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, decl{arg, lineNo})
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT("):
			arg, err := parenArg(name, lineNo, line)
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, decl{arg, lineNo})
		default:
			if up := strings.ToUpper(line); !strings.ContainsRune(line, '=') &&
				(strings.HasPrefix(up, "INPUT") || strings.HasPrefix(up, "OUTPUT")) {
				return nil, errf(name, lineNo, "malformed declaration %q (want INPUT(signal) or OUTPUT(signal))", line)
			}
			g, err := parseAssign(name, lineNo, line)
			if err != nil {
				return nil, err
			}
			gates = append(gates, g)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, errf(name, lineNo, "read error: %v", err)
	}

	b := netlist.NewBuilder(name)
	ids := make(map[string]int32, len(inputs)+len(gates))
	defLine := make(map[string]int, len(inputs)+len(gates))
	declare := func(nm string, id int32, line int) error {
		if first, dup := defLine[nm]; dup {
			return errf(name, line, "signal %q defined twice (first defined at line %d)", nm, first)
		}
		ids[nm] = id
		defLine[nm] = line
		return nil
	}
	for _, in := range inputs {
		if err := declare(in.name, b.Input(in.name), in.line); err != nil {
			return nil, err
		}
	}
	// First pass declares every gate with no fanins resolved yet: .bench
	// files reference signals before definition.
	gateIDs := make([]int32, len(gates))
	for i, g := range gates {
		gateIDs[i] = b.Gate(g.typ, g.name) // fanins patched below
		if err := declare(g.name, gateIDs[i], g.line); err != nil {
			return nil, err
		}
	}
	for i, g := range gates {
		fanin := make([]int32, len(g.fanin))
		for j, fn := range g.fanin {
			id, ok := ids[fn]
			if !ok {
				return nil, errf(name, g.line, "gate %q reads undefined signal %q", g.name, fn)
			}
			fanin[j] = id
		}
		b.SetFanin(gateIDs[i], fanin...)
	}
	if err := checkAcyclic(name, gates); err != nil {
		return nil, err
	}
	for _, out := range outputs {
		id, ok := ids[out.name]
		if !ok {
			return nil, errf(name, out.line, "OUTPUT(%s): undefined signal", out.name)
		}
		b.Output(id)
	}
	c, err := b.Build()
	if err != nil {
		return nil, errf(name, 0, "%v", err)
	}
	return c, nil
}

// checkAcyclic rejects combinational cycles among the parsed gates before
// handing them to the netlist builder, so the error can name the signals
// involved instead of just reporting that a cycle exists. Edges through a
// DFF do not count: its Q output does not combinationally depend on D.
func checkAcyclic(file string, gates []rawGate) error {
	index := make(map[string]int, len(gates))
	for i, g := range gates {
		index[g.name] = i
	}
	indeg := make([]int, len(gates))
	adj := make([][]int, len(gates))
	for i, g := range gates {
		if g.typ == netlist.DFF {
			continue
		}
		for _, fn := range g.fanin {
			if j, ok := index[fn]; ok {
				adj[j] = append(adj[j], i)
				indeg[i]++
			}
		}
	}
	queue := make([]int, 0, len(gates))
	for i := range gates {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		done++
		for _, s := range adj[g] {
			if indeg[s]--; indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if done == len(gates) {
		return nil
	}
	// Everything left has indeg > 0: it is on or downstream of a cycle.
	// Report the earliest-defined survivor and its companions.
	var cyclic []string
	first := -1
	for i := range gates {
		if indeg[i] > 0 {
			cyclic = append(cyclic, gates[i].name)
			if first < 0 || gates[i].line < gates[first].line {
				first = i
			}
		}
	}
	const show = 6
	names := cyclic
	suffix := ""
	if len(names) > show {
		names = names[:show]
		suffix = fmt.Sprintf(", ... (%d signals total)", len(cyclic))
	}
	return errf(file, gates[first].line,
		"combinational cycle through %s%s; break the loop with a DFF or remove the feedback",
		strings.Join(names, " -> "), suffix)
}

func parenArg(file string, lineNo int, line string) (string, error) {
	open := strings.IndexByte(line, '(')
	close := strings.LastIndexByte(line, ')')
	if open < 0 || close < open {
		return "", errf(file, lineNo, "malformed declaration %q (want NAME(signal))", line)
	}
	arg := strings.TrimSpace(line[open+1 : close])
	if arg == "" {
		return "", errf(file, lineNo, "empty argument in %q", line)
	}
	return arg, nil
}

func parseAssign(file string, lineNo int, line string) (rawGate, error) {
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return rawGate{}, errf(file, lineNo, "expected assignment, got %q", line)
	}
	name := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	close := strings.LastIndexByte(rhs, ')')
	if name == "" || open <= 0 || close < open {
		return rawGate{}, errf(file, lineNo, "malformed gate %q (want name = TYPE(a, b, ...))", line)
	}
	tname := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	typ, ok := typeByName[tname]
	if !ok {
		return rawGate{}, errf(file, lineNo, "unknown gate type %q", tname)
	}
	var fanin []string
	for _, f := range strings.Split(rhs[open+1:close], ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			return rawGate{}, errf(file, lineNo, "empty fanin in %q", line)
		}
		fanin = append(fanin, f)
	}
	return rawGate{name: name, typ: typ, fanin: fanin, line: lineNo}, nil
}

// Write renders the circuit in .bench format. Gate order follows the
// circuit's gate indices; INPUT and OUTPUT declarations come first.
func Write(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	st := c.Stat()
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d D-type flipflops, %d gates\n",
		st.PIs, st.POs, st.DFFs, st.LogicGates)
	for _, pi := range c.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gates[pi].Name)
	}
	for _, po := range c.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gates[po].Name)
	}
	fmt.Fprintln(bw)
	for i := range c.Gates {
		g := &c.Gates[i]
		switch g.Type {
		case netlist.Input:
			continue
		case netlist.Const0, netlist.Const1:
			return fmt.Errorf("bench: constant gate %q has no .bench representation", g.Name)
		}
		tname := nameByType[g.Type]
		args := make([]string, len(g.Fanin))
		for j, f := range g.Fanin {
			args[j] = c.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, tname, strings.Join(args, ", "))
	}
	return bw.Flush()
}

// SortedSignalNames returns all signal names in sorted order; useful for
// deterministic diagnostics and tests.
func SortedSignalNames(c *netlist.Circuit) []string {
	names := make([]string, len(c.Gates))
	for i := range c.Gates {
		names[i] = c.Gates[i].Name
	}
	sort.Strings(names)
	return names
}
