package bench

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse exercises the .bench parser with arbitrary input: it must
// never panic, and whenever it accepts an input, writing the parsed
// circuit back out and re-parsing must yield an identical structure.
func FuzzParse(f *testing.F) {
	f.Add(tinyBench)
	f.Add(gibberishSeed)
	f.Add("INPUT(a)\nOUTPUT(a)\n")
	f.Add("INPUT(a)\ny = NOT(a)\nOUTPUT(y)\n")
	f.Add("x = AND(x, x)\nOUTPUT(x)\n") // self-cycle
	f.Add("INPUT(a)\nb = DFF(b)\nOUTPUT(b)\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(strings.NewReader(src), "fuzz")
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if werr := Write(&buf, c); werr != nil {
			// Only constant gates are unwritable, and Parse never
			// produces them.
			t.Fatalf("parsed circuit unwritable: %v", werr)
		}
		c2, rerr := Parse(bytes.NewReader(buf.Bytes()), "fuzz")
		if rerr != nil {
			t.Fatalf("round trip failed: %v\noriginal:\n%s\nrendered:\n%s", rerr, src, buf.String())
		}
		if c.Stat() != c2.Stat() {
			t.Fatalf("round trip changed structure: %+v vs %+v", c.Stat(), c2.Stat())
		}
	})
}

const gibberishSeed = "INPUT(\ny == NOT))\n# OUTPUT(y\n"
