package bench

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse exercises the .bench parser with arbitrary input: it must
// never panic, and whenever it accepts an input, writing the parsed
// circuit back out and re-parsing must yield an identical structure.
func FuzzParse(f *testing.F) {
	f.Add(tinyBench)
	f.Add(gibberishSeed)
	f.Add("INPUT(a)\nOUTPUT(a)\n")
	f.Add("INPUT(a)\ny = NOT(a)\nOUTPUT(y)\n")
	f.Add("x = AND(x, x)\nOUTPUT(x)\n") // self-cycle
	f.Add("INPUT(a)\nb = DFF(b)\nOUTPUT(b)\n")
	// Malformed-netlist corpus: each seed aims at a distinct failure path.
	f.Add("INPUT(a)\nINPUT(a)\n")                          // duplicate input
	f.Add("INPUT(a)\na = NOT(a)\nOUTPUT(a)\n")             // input redefined
	f.Add("INPUT(a)\ny = NOT(zzz)\nOUTPUT(y)\n")           // undefined fanin
	f.Add("OUTPUT(q)\n")                                   // undefined output
	f.Add("INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n")            // unknown type
	f.Add("INPUT(a)\ny = AND(a, )\nOUTPUT(y)\n")           // empty fanin
	f.Add("INPUT(a)\ny =\nOUTPUT(y)\n")                    // missing rhs
	f.Add("INPUT()\n")                                     // empty declaration
	f.Add("INPUT a\n")                                     // missing paren
	f.Add(" = AND(a, b)\n")                                // missing lhs
	f.Add("INPUT(a)\np = NOT(q)\nq = AND(p, a)\nOUTPUT(q)\n") // 2-cycle
	f.Add("y = NOT(#)\n")                                  // comment mid-token
	f.Add("INPUT(a)\r\ny = NOT(a)\r\nOUTPUT(y)\r\n")       // CRLF line endings
	f.Add(strings.Repeat("(", 100))                        // paren noise
	f.Add("INPUT(a)\nOUTPUT(y)\ny = BUFF(a, a, a)\n")      // extra fanins
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(strings.NewReader(src), "fuzz")
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if werr := Write(&buf, c); werr != nil {
			// Only constant gates are unwritable, and Parse never
			// produces them.
			t.Fatalf("parsed circuit unwritable: %v", werr)
		}
		c2, rerr := Parse(bytes.NewReader(buf.Bytes()), "fuzz")
		if rerr != nil {
			t.Fatalf("round trip failed: %v\noriginal:\n%s\nrendered:\n%s", rerr, src, buf.String())
		}
		if c.Stat() != c2.Stat() {
			t.Fatalf("round trip changed structure: %+v vs %+v", c.Stat(), c2.Stat())
		}
	})
}

const gibberishSeed = "INPUT(\ny == NOT))\n# OUTPUT(y\n"
