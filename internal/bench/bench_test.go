package bench

import (
	"bytes"
	"strings"
	"testing"

	"sddict/internal/netlist"
)

const tinyBench = `# example
INPUT(a)
INPUT(b)
OUTPUT(y)
ff = DFF(n2)
n1 = AND(a, ff)
n2 = NOR(n1, b)
y = NOT(n2)
`

func TestParse(t *testing.T) {
	c, err := Parse(strings.NewReader(tinyBench), "tiny")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	st := c.Stat()
	if st.PIs != 2 || st.POs != 1 || st.DFFs != 1 || st.LogicGates != 3 {
		t.Fatalf("Stat = %+v", st)
	}
	y := c.GateByName("y")
	if y < 0 || c.Gates[y].Type != netlist.Not {
		t.Fatalf("gate y missing or wrong type")
	}
	if c.POs[0] != y {
		t.Fatalf("primary output is gate %d, want y=%d", c.POs[0], y)
	}
}

func TestParseForwardReferences(t *testing.T) {
	// y is defined before its fanin n.
	src := "INPUT(a)\nOUTPUT(y)\ny = NOT(n)\nn = BUFF(a)\n"
	c, err := Parse(strings.NewReader(src), "fwd")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c.NumLogicGates() != 2 {
		t.Fatalf("NumLogicGates = %d, want 2", c.NumLogicGates())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"undefined signal", "INPUT(a)\nOUTPUT(y)\ny = NOT(zzz)\n"},
		{"undefined output", "INPUT(a)\nOUTPUT(q)\ny = NOT(a)\n"},
		{"double definition", "INPUT(a)\ny = NOT(a)\ny = BUFF(a)\nOUTPUT(y)\n"},
		{"unknown gate type", "INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n"},
		{"malformed line", "INPUT(a)\nwhat is this\nOUTPUT(a)\n"},
		{"empty fanin", "INPUT(a)\ny = AND(a, )\nOUTPUT(y)\n"},
		{"missing paren", "INPUT a\nOUTPUT(a)\n"},
	}
	for _, tc := range cases {
		if _, err := Parse(strings.NewReader(tc.src), "bad"); err == nil {
			t.Errorf("%s: Parse accepted invalid input", tc.name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	c1, err := Parse(strings.NewReader(tinyBench), "tiny")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c1); err != nil {
		t.Fatalf("Write: %v", err)
	}
	c2, err := Parse(bytes.NewReader(buf.Bytes()), "tiny")
	if err != nil {
		t.Fatalf("re-Parse: %v\n%s", err, buf.String())
	}
	if c1.Stat() != c2.Stat() {
		t.Fatalf("round trip changed stats: %+v vs %+v", c1.Stat(), c2.Stat())
	}
	// Structure must survive: same gate types and fanin names per signal.
	for i := range c1.Gates {
		g1 := &c1.Gates[i]
		j := c2.GateByName(g1.Name)
		if j < 0 {
			t.Fatalf("signal %q lost in round trip", g1.Name)
		}
		g2 := &c2.Gates[j]
		if g1.Type != g2.Type || len(g1.Fanin) != len(g2.Fanin) {
			t.Fatalf("signal %q changed: %v/%d vs %v/%d", g1.Name, g1.Type, len(g1.Fanin), g2.Type, len(g2.Fanin))
		}
		for p := range g1.Fanin {
			n1 := c1.Gates[g1.Fanin[p]].Name
			n2 := c2.Gates[g2.Fanin[p]].Name
			if n1 != n2 {
				t.Fatalf("signal %q pin %d: %q vs %q", g1.Name, p, n1, n2)
			}
		}
	}
}

func TestWriteRejectsConstants(t *testing.T) {
	b := netlist.NewBuilder("k")
	a := b.Input("a")
	k := b.Const("k0", 0)
	x := b.Gate(netlist.And, "x", a, k)
	b.Output(x)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := Write(&bytes.Buffer{}, c); err == nil {
		t.Fatalf("Write accepted a constant gate")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "# leading comment\n\nINPUT(a)  # trailing comment\nOUTPUT(y)\n\ny = NOT(a)\n"
	c, err := Parse(strings.NewReader(src), "c")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(c.PIs) != 1 || len(c.POs) != 1 {
		t.Fatalf("unexpected structure: %+v", c.Stat())
	}
}
