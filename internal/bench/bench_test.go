package bench

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"sddict/internal/netlist"
)

const tinyBench = `# example
INPUT(a)
INPUT(b)
OUTPUT(y)
ff = DFF(n2)
n1 = AND(a, ff)
n2 = NOR(n1, b)
y = NOT(n2)
`

func TestParse(t *testing.T) {
	c, err := Parse(strings.NewReader(tinyBench), "tiny")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	st := c.Stat()
	if st.PIs != 2 || st.POs != 1 || st.DFFs != 1 || st.LogicGates != 3 {
		t.Fatalf("Stat = %+v", st)
	}
	y := c.GateByName("y")
	if y < 0 || c.Gates[y].Type != netlist.Not {
		t.Fatalf("gate y missing or wrong type")
	}
	if c.POs[0] != y {
		t.Fatalf("primary output is gate %d, want y=%d", c.POs[0], y)
	}
}

func TestParseForwardReferences(t *testing.T) {
	// y is defined before its fanin n.
	src := "INPUT(a)\nOUTPUT(y)\ny = NOT(n)\nn = BUFF(a)\n"
	c, err := Parse(strings.NewReader(src), "fwd")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c.NumLogicGates() != 2 {
		t.Fatalf("NumLogicGates = %d, want 2", c.NumLogicGates())
	}
}

func TestParseErrors(t *testing.T) {
	// Every failure path must produce a *Error carrying the file name and
	// the 1-based line the problem was found on, plus a message naming the
	// offending signal or construct.
	cases := []struct {
		name     string
		src      string
		wantLine int
		wantSub  string
	}{
		{"undefined signal", "INPUT(a)\nOUTPUT(y)\ny = NOT(zzz)\n", 3, `undefined signal "zzz"`},
		{"undefined output", "INPUT(a)\nOUTPUT(q)\ny = NOT(a)\n", 2, "OUTPUT(q): undefined signal"},
		{"double definition", "INPUT(a)\ny = NOT(a)\ny = BUFF(a)\nOUTPUT(y)\n", 3, `"y" defined twice (first defined at line 2)`},
		{"input redefined as gate", "INPUT(a)\na = NOT(a)\nOUTPUT(a)\n", 2, `"a" defined twice (first defined at line 1)`},
		{"duplicate input", "INPUT(a)\nINPUT(a)\ny = NOT(a)\nOUTPUT(y)\n", 2, `"a" defined twice`},
		{"unknown gate type", "INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n", 2, `unknown gate type "FROB"`},
		{"malformed line", "INPUT(a)\nwhat is this\nOUTPUT(a)\n", 2, "expected assignment"},
		{"empty fanin", "INPUT(a)\ny = AND(a, )\nOUTPUT(y)\n", 2, "empty fanin"},
		{"missing paren", "INPUT a\nOUTPUT(a)\n", 1, "malformed declaration"},
		{"empty declaration", "INPUT()\n", 1, "empty argument"},
		{"assignment without rhs", "INPUT(a)\ny =\nOUTPUT(y)\n", 2, "malformed gate"},
		{"self cycle", "INPUT(a)\nx = AND(x, a)\nOUTPUT(x)\n", 2, "combinational cycle"},
		{"two-gate cycle", "INPUT(a)\nx = AND(y, a)\ny = NOT(x)\nOUTPUT(y)\n", 2, "combinational cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.src), "bad.bench")
			if err == nil {
				t.Fatalf("Parse accepted invalid input")
			}
			var be *Error
			if !errors.As(err, &be) {
				t.Fatalf("error is %T, want *bench.Error: %v", err, err)
			}
			if be.File != "bad.bench" {
				t.Errorf("File = %q, want %q", be.File, "bad.bench")
			}
			if be.Line != tc.wantLine {
				t.Errorf("Line = %d, want %d (error: %v)", be.Line, tc.wantLine, err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseCycleNamesSignals(t *testing.T) {
	src := "INPUT(a)\np = NOT(q)\nq = AND(p, a)\nOUTPUT(q)\n"
	_, err := Parse(strings.NewReader(src), "loop.bench")
	if err == nil {
		t.Fatalf("Parse accepted a cyclic netlist")
	}
	for _, nm := range []string{"p", "q"} {
		if !strings.Contains(err.Error(), nm) {
			t.Errorf("cycle error %q does not name signal %q", err, nm)
		}
	}
}

func TestParseDFFBreaksCycle(t *testing.T) {
	// Feedback through a DFF is sequential, not combinational: legal.
	src := "INPUT(a)\nff = DFF(n)\nn = AND(ff, a)\nOUTPUT(n)\n"
	if _, err := Parse(strings.NewReader(src), "seq.bench"); err != nil {
		t.Fatalf("Parse rejected DFF feedback: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	c1, err := Parse(strings.NewReader(tinyBench), "tiny")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c1); err != nil {
		t.Fatalf("Write: %v", err)
	}
	c2, err := Parse(bytes.NewReader(buf.Bytes()), "tiny")
	if err != nil {
		t.Fatalf("re-Parse: %v\n%s", err, buf.String())
	}
	if c1.Stat() != c2.Stat() {
		t.Fatalf("round trip changed stats: %+v vs %+v", c1.Stat(), c2.Stat())
	}
	// Structure must survive: same gate types and fanin names per signal.
	for i := range c1.Gates {
		g1 := &c1.Gates[i]
		j := c2.GateByName(g1.Name)
		if j < 0 {
			t.Fatalf("signal %q lost in round trip", g1.Name)
		}
		g2 := &c2.Gates[j]
		if g1.Type != g2.Type || len(g1.Fanin) != len(g2.Fanin) {
			t.Fatalf("signal %q changed: %v/%d vs %v/%d", g1.Name, g1.Type, len(g1.Fanin), g2.Type, len(g2.Fanin))
		}
		for p := range g1.Fanin {
			n1 := c1.Gates[g1.Fanin[p]].Name
			n2 := c2.Gates[g2.Fanin[p]].Name
			if n1 != n2 {
				t.Fatalf("signal %q pin %d: %q vs %q", g1.Name, p, n1, n2)
			}
		}
	}
}

func TestWriteRejectsConstants(t *testing.T) {
	b := netlist.NewBuilder("k")
	a := b.Input("a")
	k := b.Const("k0", 0)
	x := b.Gate(netlist.And, "x", a, k)
	b.Output(x)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := Write(&bytes.Buffer{}, c); err == nil {
		t.Fatalf("Write accepted a constant gate")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "# leading comment\n\nINPUT(a)  # trailing comment\nOUTPUT(y)\n\ny = NOT(a)\n"
	c, err := Parse(strings.NewReader(src), "c")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(c.PIs) != 1 || len(c.POs) != 1 {
		t.Fatalf("unexpected structure: %+v", c.Stat())
	}
}
