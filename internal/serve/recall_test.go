package serve

// Tests for the case-store recall tier: exact hits byte-identical to
// the recompute path, guarded near hits explicitly marked, the
// exactly-once counter discipline, the /cases endpoints, determinism at
// every worker count, and the eviction-vs-in-flight pin contract.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"sddict/internal/casestore"
	"sddict/internal/core"
	"sddict/internal/dictio"
	"sddict/internal/logic"
	"sddict/internal/par"
	"sddict/internal/resp"
)

// writeNearArtifact publishes an artifact whose geometry makes guarded
// near hits reachable: 2 faults, 3 tests, 3 outputs, fault signatures
// 100 (f0) and 011 (f1). The signature 110 is at distance 1 from f0 and
// 2 from f1, so its top candidate set is exactly {f0} — a near query
// that agrees with a cached f0 diagnosis.
func writeNearArtifact(t *testing.T, dir string) string {
	t.Helper()
	ff := []logic.BitVec{vec(t, "000"), vec(t, "000"), vec(t, "000")}
	responses := [][]logic.BitVec{
		{vec(t, "001"), vec(t, "000")}, // test 0: f0 differs
		{vec(t, "000"), vec(t, "001")}, // test 1: f1 differs
		{vec(t, "000"), vec(t, "001")}, // test 2: f1 differs
	}
	m := resp.FromResponses(3, ff, responses)
	compiled, err := core.NewPassFail(m).Compile()
	if err != nil {
		t.Fatal(err)
	}
	a, err := dictio.New(compiled, dictio.Header{
		Circuit: "near-toy", TestSet: "exhaustive", Seed: 7,
		Faults: []string{"f0 s-a-0", "f1 s-a-1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/near.sdd"
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// newCaseServer builds a server with a fresh in-memory case store.
func newCaseServer(t *testing.T, opt casestore.Options) *Server {
	t.Helper()
	store, err := casestore.Open(casestore.NewMem(), opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return New(Config{Cases: store})
}

func recallCounters(s *Server) (hits, near, misses int64) {
	c := s.ob.M().Snapshot().Counters
	return c["serve_recall_hits"], c["serve_recall_near"], c["serve_recall_misses"]
}

// TestRecallExactHitByteIdentity: the acceptance-criterion invariant —
// an exact recall serves the byte-identical body the recompute path
// produces, and hits/near/misses account for every observation exactly
// once.
func TestRecallExactHitByteIdentity(t *testing.T) {
	path := writeArtifact(t, t.TempDir(), "toy.sdd")
	cached := newCaseServer(t, casestore.Options{})
	plain := New(Config{})

	observations := [][]string{
		{"000", "011"}, // exact: {g1}
		{"001", "111"}, // exact: {g0, g2}
		{"001", "011"}, // no row matches: ranked fallback
	}
	want := make([][]byte, len(observations))
	for i, obsv := range observations {
		w := post(t, plain, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: obsv})
		decodeDiagnose(t, w) // status check
		want[i] = w.Body.Bytes()
	}
	for round := 0; round < 2; round++ {
		for i, obsv := range observations {
			w := post(t, cached, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: obsv})
			decodeDiagnose(t, w)
			if !bytes.Equal(w.Body.Bytes(), want[i]) {
				t.Errorf("round %d observation %d: cached body %s != recompute %s",
					round, i, w.Body.Bytes(), want[i])
			}
		}
	}
	hits, near, misses := recallCounters(cached)
	if hits != 3 || misses != 3 || near != 0 {
		t.Errorf("counters hits=%d near=%d misses=%d, want 3/0/3", hits, near, misses)
	}
	if total := int64(2 * len(observations)); hits+near+misses != total {
		t.Errorf("counters sum to %d, want every observation counted once (%d)", hits+near+misses, total)
	}
}

// TestRecallNearServedAndGuarded: a near match within the budget whose
// cached candidate set equals the dictionary's top candidate set is
// served with an explicit recall marker; one that disagrees demotes to
// a miss and recomputes.
func TestRecallNearServedAndGuarded(t *testing.T) {
	path := writeNearArtifact(t, t.TempDir())
	cached := newCaseServer(t, casestore.Options{})
	plain := New(Config{})

	sigA := []string{"001", "000", "000"}      // f0's exact signature 100
	sigNear := []string{"001", "001", "000"}   // 110: top set {f0} -> guarded near serve
	sigReject := []string{"000", "001", "000"} // 010: top set {f1}, cached f0 -> demote

	// Seed the store with the f0 diagnosis (a miss that records).
	first := decodeDiagnose(t, post(t, cached, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: sigA}))
	if !first.Results[0].Exact || first.Results[0].Recall != nil {
		t.Fatalf("seed diagnosis: %+v", first.Results[0])
	}

	nearResp := decodeDiagnose(t, post(t, cached, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: sigNear}))
	r := nearResp.Results[0]
	if !r.Exact || len(r.Candidates) != 1 || r.Candidates[0].Fault != 0 {
		t.Fatalf("near serve: %+v, want the cached f0 class", r)
	}
	if r.Failing != 2 {
		t.Errorf("near serve Failing = %d, want 2 (recomputed from the new signature)", r.Failing)
	}
	if r.Recall == nil || r.Recall.Kind != "near" || r.Recall.Distance != 1 || r.Recall.Case != 1 {
		t.Fatalf("near serve marker: %+v, want kind=near distance=1 case=1", r.Recall)
	}
	if want := 1 - float64(1)/float64(3); r.Recall.Confidence != want {
		t.Errorf("near confidence %v, want %v", r.Recall.Confidence, want)
	}

	// The rejected near must be byte-identical to the recompute path.
	pw := post(t, plain, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: sigReject})
	cw := post(t, cached, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: sigReject})
	decodeDiagnose(t, cw)
	if !bytes.Equal(cw.Body.Bytes(), pw.Body.Bytes()) {
		t.Errorf("guard-rejected near: cached %s != recompute %s", cw.Body.Bytes(), pw.Body.Bytes())
	}

	// Exactly-once accounting: sigA miss, sigNear near, sigReject miss,
	// plus a repeat of sigA as an exact hit.
	post(t, cached, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: sigA})
	hits, near, misses := recallCounters(cached)
	if hits != 1 || near != 1 || misses != 2 {
		t.Errorf("counters hits=%d near=%d misses=%d, want 1/1/2", hits, near, misses)
	}
}

// TestRecallDeterminismAcrossWorkers: recall-served responses stay
// byte-identical to the recompute path at every worker count (near
// matching disabled: near serves are marked deduplications, exact hits
// are the identity contract).
func TestRecallDeterminismAcrossWorkers(t *testing.T) {
	path := writeArtifact(t, t.TempDir(), "toy.sdd")
	plain := New(Config{})
	observations := [][]string{
		{"000", "011"},
		{"001", "111"},
		{"001", "011"},
	}
	want := make([][]byte, len(observations))
	for i, obsv := range observations {
		w := post(t, plain, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: obsv})
		decodeDiagnose(t, w)
		want[i] = w.Body.Bytes()
	}

	for _, workers := range []int{1, 4, 8} {
		cached := newCaseServer(t, casestore.Options{Budget: -1})
		const n = 24
		got, err := par.Map(context.Background(), par.New(workers), n, func(_ context.Context, i int) ([]byte, error) {
			w := post(t, cached, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: observations[i%len(observations)]})
			return append([]byte(nil), w.Body.Bytes()...), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, body := range got {
			if !bytes.Equal(body, want[i%len(observations)]) {
				t.Errorf("workers=%d request %d: %s != recompute %s", workers, i, body, want[i%len(observations)])
			}
		}
		hits, near, misses := recallCounters(cached)
		if hits+near+misses != n {
			t.Errorf("workers=%d: counters sum %d, want %d", workers, hits+near+misses, n)
		}
	}
}

// TestCasesEndpoints: /cases and /cases/correlate over a live store,
// and the 404 contract when the store is disabled.
func TestCasesEndpoints(t *testing.T) {
	path := writeArtifact(t, t.TempDir(), "toy.sdd")
	s := newCaseServer(t, casestore.Options{})
	for i := 0; i < 2; i++ { // second round recalls, so only 2 cases record
		post(t, s, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: []string{"000", "011"}})
		post(t, s, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: []string{"001", "111"}})
	}

	w := get(t, s, "/cases")
	if w.Code != http.StatusOK {
		t.Fatalf("/cases: %d %s", w.Code, w.Body.String())
	}
	var listing struct {
		Total int              `json:"total"`
		Cases []casestore.Case `json:"cases"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Total != 2 || len(listing.Cases) != 2 {
		t.Fatalf("/cases listing: %+v", listing)
	}
	if c := listing.Cases[0]; c.Circuit != "toy" || !c.Exact || c.TestChecksum == "" {
		t.Errorf("recorded case: %+v, want circuit/exact/test-checksum populated", c)
	}

	w = get(t, s, "/cases/correlate")
	var report casestore.Report
	if err := json.Unmarshal(w.Body.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if report.TotalCases != 2 {
		t.Errorf("correlate total %d, want 2", report.TotalCases)
	}
	w = get(t, s, "/cases/correlate?format=text")
	if ct := w.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("text correlate content type %q", ct)
	}
	if !bytes.Contains(w.Body.Bytes(), []byte("case correlation: 2 cases")) {
		t.Errorf("text correlate body: %s", w.Body.String())
	}

	bare := New(Config{})
	for _, url := range []string{"/cases", "/cases/correlate"} {
		if w := get(t, bare, url); w.Code != http.StatusNotFound {
			t.Errorf("%s without a store: %d, want 404", url, w.Code)
		}
	}
}

// TestEvictRacesLongBatchDiagnose is the pin-contract regression test:
// explicit evictions and reloads hammering the registry while a long
// batch holds its entry must never tear the in-flight diagnosis — the
// batch completes with a consistent result for every observation.
func TestEvictRacesLongBatchDiagnose(t *testing.T) {
	path := writeArtifact(t, t.TempDir(), "toy.sdd")
	s := New(Config{ChaosDelay: time.Millisecond, Timeout: 30 * time.Second})

	const obsCount = 40
	batch := make([][]string, obsCount)
	for i := range batch {
		batch[i] = []string{"000", "011"}
	}
	// Task 0 runs the long batch; task 1 hammers evict/load against the
	// same entry the whole time. Assertions happen via returned errors —
	// par tasks run off the test goroutine.
	_, err := par.Map(context.Background(), par.New(2), 2, func(_ context.Context, i int) (struct{}, error) {
		if i == 0 {
			w := post(t, s, "/diagnose", DiagnoseRequest{Dictionary: path, Batch: batch})
			if w.Code != http.StatusOK {
				return struct{}{}, fmt.Errorf("batch under eviction churn: %d %s", w.Code, w.Body.String())
			}
			var resp DiagnoseResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				return struct{}{}, err
			}
			if len(resp.Results) != obsCount {
				return struct{}{}, fmt.Errorf("batch under eviction churn: %d results, want %d", len(resp.Results), obsCount)
			}
			for j, r := range resp.Results {
				if !r.Exact || len(r.Candidates) != 1 || r.Candidates[0].Fault != 1 {
					return struct{}{}, fmt.Errorf("observation %d torn under eviction churn: %+v", j, r)
				}
			}
			return struct{}{}, nil
		}
		for k := 0; k < 50; k++ {
			post(t, s, "/dictionaries/evict", pathRequest{Path: path})
			post(t, s, "/dictionaries/load", pathRequest{Path: path})
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
