package serve

// White-box tests for the diagnosis service: handler semantics (exact
// vs ranked diagnoses, batch parity), the robustness middleware (panic
// recovery, load shedding, per-request deadlines), the dictionary
// registry's LRU behaviour, and the drain path of Serve.

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sddict/internal/core"
	"sddict/internal/dictio"
	"sddict/internal/logic"
	"sddict/internal/resp"
)

func vec(t *testing.T, s string) logic.BitVec {
	t.Helper()
	v, err := dictio.ParseVector(s, len(s))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// writeArtifact publishes a small pass/fail artifact (3 faults, 2
// tests, 3 outputs) named name under dir and returns its path.
//
// Geometry worth knowing in assertions below: baselines are 000/111;
// fault signatures are 10 (g0), 01 (g1), 10 (g2) — g0 and g2 are an
// indistinguishable pair, and signature 11 matches no row (every row is
// at Hamming distance 1 from it).
func writeArtifact(t *testing.T, dir, name string) string {
	t.Helper()
	ff := []logic.BitVec{vec(t, "000"), vec(t, "111")}
	responses := [][]logic.BitVec{
		{vec(t, "001"), vec(t, "000"), vec(t, "010")},
		{vec(t, "111"), vec(t, "011"), vec(t, "111")},
	}
	m := resp.FromResponses(3, ff, responses)
	compiled, err := core.NewPassFail(m).Compile()
	if err != nil {
		t.Fatal(err)
	}
	a, err := dictio.New(compiled, dictio.Header{
		Circuit: "toy", TestSet: "exhaustive", Seed: 7,
		Faults: []string{"g0 s-a-0", "g1 s-a-1", "g2 s-a-0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	path := writeArtifact(t, t.TempDir(), "toy.sdd")
	return New(cfg), path
}

// post JSON-encodes body against the server's full handler chain.
func post(t *testing.T, s *Server, url string, body any) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func get(t *testing.T, s *Server, url string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, url, nil))
	return w
}

func decodeDiagnose(t *testing.T, w *httptest.ResponseRecorder) DiagnoseResponse {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	var resp DiagnoseResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestDiagnoseExactMatch(t *testing.T) {
	s, path := newTestServer(t, Config{})
	w := post(t, s, "/diagnose", DiagnoseRequest{
		Dictionary: path, Responses: []string{"000", "011"},
	})
	resp := decodeDiagnose(t, w)
	if len(resp.Results) != 1 {
		t.Fatalf("results: %+v", resp.Results)
	}
	r := resp.Results[0]
	if !r.Exact || r.Failing != 1 {
		t.Errorf("exact=%v failing=%d, want exact with 1 failing test", r.Exact, r.Failing)
	}
	want := []Candidate{{Fault: 1, Name: "g1 s-a-1"}}
	if len(r.Candidates) != 1 || r.Candidates[0] != want[0] {
		t.Errorf("candidates %+v, want %+v", r.Candidates, want)
	}
	if resp.Checksum == "" || resp.Dictionary != path {
		t.Errorf("artifact identity missing: %+v", resp)
	}
}

func TestDiagnoseIndistinguishablePair(t *testing.T) {
	s, path := newTestServer(t, Config{})
	w := post(t, s, "/diagnose", DiagnoseRequest{
		Dictionary: path, Responses: []string{"001", "111"},
	})
	r := decodeDiagnose(t, w).Results[0]
	if !r.Exact || len(r.Candidates) != 2 {
		t.Fatalf("want the g0/g2 equivalence class, got %+v", r)
	}
	if r.Candidates[0].Fault != 0 || r.Candidates[1].Fault != 2 {
		t.Errorf("candidates %+v, want faults 0 and 2", r.Candidates)
	}
}

func TestDiagnoseRankedFallback(t *testing.T) {
	s, path := newTestServer(t, Config{})
	// Signature 11 matches no dictionary row; all three rows sit at
	// distance 1, so the default top-5 returns all of them in fault
	// order and top_k=2 truncates deterministically.
	obsv := []string{"001", "011"}
	w := post(t, s, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: obsv})
	r := decodeDiagnose(t, w).Results[0]
	if r.Exact || r.Failing != 2 || len(r.Candidates) != 3 {
		t.Fatalf("ranked fallback: %+v", r)
	}
	for i, c := range r.Candidates {
		if c.Fault != i || c.Distance != 1 {
			t.Errorf("candidate %d = %+v, want fault %d at distance 1", i, c, i)
		}
	}
	w = post(t, s, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: obsv, TopK: 2})
	if r := decodeDiagnose(t, w).Results[0]; len(r.Candidates) != 2 {
		t.Errorf("top_k=2 returned %d candidates", len(r.Candidates))
	}
}

// TestDiagnoseBatchParity: a batch must yield byte-identical per-result
// JSON to the same observations sent one at a time.
func TestDiagnoseBatchParity(t *testing.T) {
	s, path := newTestServer(t, Config{})
	batch := [][]string{{"000", "011"}, {"001", "111"}, {"001", "011"}}
	bw := post(t, s, "/diagnose", DiagnoseRequest{Dictionary: path, Batch: batch})
	bresp := decodeDiagnose(t, bw)
	if len(bresp.Results) != len(batch) {
		t.Fatalf("batch returned %d results for %d observations", len(bresp.Results), len(batch))
	}
	for i, lines := range batch {
		sw := post(t, s, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: lines})
		single := decodeDiagnose(t, sw).Results[0]
		got, _ := json.Marshal(bresp.Results[i])
		want, _ := json.Marshal(single)
		if !bytes.Equal(got, want) {
			t.Errorf("observation %d: batch %s != single %s", i, got, want)
		}
	}
}

func TestDiagnoseRequestValidation(t *testing.T) {
	s, path := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  DiagnoseRequest
		code int
	}{
		{"missing dictionary", DiagnoseRequest{Responses: []string{"000", "111"}}, http.StatusBadRequest},
		{"no observations", DiagnoseRequest{Dictionary: path}, http.StatusBadRequest},
		{"both forms", DiagnoseRequest{Dictionary: path, Responses: []string{"000", "111"}, Batch: [][]string{{"000", "111"}}}, http.StatusBadRequest},
		{"bad vector", DiagnoseRequest{Dictionary: path, Responses: []string{"00x", "111"}}, http.StatusBadRequest},
		{"wrong test count", DiagnoseRequest{Dictionary: path, Responses: []string{"000"}}, http.StatusBadRequest},
		{"missing artifact", DiagnoseRequest{Dictionary: path + ".nope", Responses: []string{"000", "111"}}, http.StatusNotFound},
	}
	for _, tc := range cases {
		if w := post(t, s, "/diagnose", tc.req); w.Code != tc.code {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, w.Code, tc.code, w.Body.String())
		}
	}
}

func TestDiagnoseCorruptArtifactRejected(t *testing.T) {
	s, path := newTestServer(t, Config{})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	bad := filepath.Join(t.TempDir(), "bad.sdd")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w := post(t, s, "/diagnose", DiagnoseRequest{Dictionary: bad, Responses: []string{"000", "111"}})
	if w.Code != http.StatusUnprocessableEntity {
		t.Errorf("corrupt artifact: status %d, want 422 (body %s)", w.Code, w.Body.String())
	}
}

func TestPanicRecovery(t *testing.T) {
	s := New(Config{})
	h := s.recovered(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if w.Code != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", w.Code)
	}
	if got := s.ob.M().Snapshot().Counters["serve_panics"]; got != 1 {
		t.Errorf("serve_panics = %d, want 1", got)
	}
	if !strings.Contains(w.Body.String(), "panic recovered") {
		t.Errorf("body %q does not acknowledge the recovery", w.Body.String())
	}
}

func TestShedAtCapacity(t *testing.T) {
	s, path := newTestServer(t, Config{MaxInFlight: 1, RetryAfter: 2 * time.Second})
	s.inflight <- struct{}{} // occupy the only slot
	w := post(t, s, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: []string{"000", "111"}})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	if got := s.ob.M().Snapshot().Counters["serve_shed"]; got != 1 {
		t.Errorf("serve_shed = %d, want 1", got)
	}
	<-s.inflight
	// With the slot free the same request succeeds: shedding is load
	// response, not lockout.
	if w := post(t, s, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: []string{"000", "111"}}); w.Code != http.StatusOK {
		t.Errorf("after slot freed: status %d, want 200", w.Code)
	}
}

func TestHealthzAlwaysReadyzDrains(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if w := get(t, s, "/readyz"); w.Code != http.StatusOK {
		t.Errorf("readyz before drain: %d", w.Code)
	}
	s.draining.Store(true)
	if w := get(t, s, "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: %d, want 503", w.Code)
	}
	if w := get(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz during drain: %d, want 200 (process is alive)", w.Code)
	}
}

// TestDeadlineExceeded: a chaos delay longer than the request timeout
// must surface as 504, not a hung handler.
func TestDeadlineExceeded(t *testing.T) {
	s, path := newTestServer(t, Config{Timeout: 20 * time.Millisecond, ChaosDelay: 5 * time.Second})
	start := time.Now()
	w := post(t, s, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: []string{"000", "111"}})
	if w.Code != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504 (body %s)", w.Code, w.Body.String())
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("handler held the request %v past its 20ms deadline", elapsed)
	}
}

func TestDictionaryEndpoints(t *testing.T) {
	s, path := newTestServer(t, Config{})
	if w := post(t, s, "/dictionaries/load", pathRequest{Path: path}); w.Code != http.StatusOK {
		t.Fatalf("load: %d %s", w.Code, w.Body.String())
	}
	w := get(t, s, "/dictionaries")
	var listing struct {
		Dictionaries []DictionaryInfo `json:"dictionaries"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Dictionaries) != 1 || listing.Dictionaries[0].Path != path ||
		listing.Dictionaries[0].Faults != 3 || listing.Dictionaries[0].Circuit != "toy" {
		t.Fatalf("listing: %+v", listing)
	}
	var evicted map[string]bool
	if w := post(t, s, "/dictionaries/evict", pathRequest{Path: path}); true {
		if err := json.Unmarshal(w.Body.Bytes(), &evicted); err != nil || !evicted["evicted"] {
			t.Errorf("evict: %s (err %v)", w.Body.String(), err)
		}
	}
	if w := post(t, s, "/dictionaries/evict", pathRequest{Path: path}); true {
		if err := json.Unmarshal(w.Body.Bytes(), &evicted); err != nil || evicted["evicted"] {
			t.Errorf("second evict should be a no-op: %s", w.Body.String())
		}
	}
	if w := post(t, s, "/dictionaries/load", pathRequest{Path: path + ".nope"}); w.Code != http.StatusNotFound {
		t.Errorf("load of missing artifact: %d, want 404", w.Code)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	dir := t.TempDir()
	a := writeArtifact(t, dir, "a.sdd")
	b := writeArtifact(t, dir, "b.sdd")
	s := New(Config{CacheSize: 1})
	obsv := []string{"000", "011"}
	for _, p := range []string{a, b, a, a} {
		if w := post(t, s, "/diagnose", DiagnoseRequest{Dictionary: p, Responses: obsv}); w.Code != http.StatusOK {
			t.Fatalf("diagnose via %s: %d %s", p, w.Code, w.Body.String())
		}
	}
	c := s.ob.M().Snapshot().Counters
	// a, b, a are loads (each displacing the other); the final a is a hit.
	if c["serve_dict_loads"] != 3 || c["serve_dict_evicts"] != 2 || c["serve_dict_hits"] != 1 {
		t.Errorf("loads=%d evicts=%d hits=%d, want 3/2/1",
			c["serve_dict_loads"], c["serve_dict_evicts"], c["serve_dict_hits"])
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, path := newTestServer(t, Config{})
	post(t, s, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: []string{"000", "111"}})
	w := get(t, s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{"sdd_serve_requests_total 1", "sdd_serve_dict_loads_total 1", "# EOF"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, body)
		}
	}
}

// TestServeDrain exercises the full lifecycle over a real listener:
// serve, answer, cancel the context, and return nil once in-flight work
// is done — the path cli.Main maps to exit code 0 on SIGTERM.
func TestServeDrain(t *testing.T) {
	s, path := newTestServer(t, Config{DrainTimeout: 5 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }() //nolint — test harness goroutine
	base := "http://" + ln.Addr().String()

	body, err := json.Marshal(DiagnoseRequest{Dictionary: path, Responses: []string{"000", "011"}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/diagnose", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("diagnose over the wire: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diagnose over the wire: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}
	if !s.draining.Load() {
		t.Error("draining flag not set after shutdown")
	}
}
