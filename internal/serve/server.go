// Package serve is the diagnosis-as-a-service layer: an HTTP server
// that loads published dictionary artifacts (internal/dictio) and
// answers observed-response queries with ranked fault candidates — the
// paper's tester-side diagnosis flow as a long-running service.
//
// Robustness is the contract (DESIGN.md §12):
//
//   - every request runs under a deadline;
//   - an in-flight cap sheds excess load with 503 + Retry-After instead
//     of queueing unboundedly;
//   - handler panics become 500s plus a handler_panic trace event, never
//     a crashed process;
//   - cancelling the Serve context (cli.Main does it on SIGTERM) drains:
//     the listener stops accepting, in-flight requests finish, and the
//     trace ends on a serve_shutdown event;
//   - corrupt artifacts are refused at load (dictio's CRC verdicts),
//     never half-served.
//
// The ranking path is core.RankRows — the same code cmd/diagnose runs —
// so batch and service diagnoses are byte-comparable.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"sddict/internal/casestore"
	"sddict/internal/core"
	"sddict/internal/dictio"
	"sddict/internal/faultfs"
	"sddict/internal/logic"
	"sddict/internal/obs"
)

// Config parameterizes a Server. The zero value is usable: every field
// falls back to the listed default.
type Config struct {
	// MaxInFlight caps concurrently admitted requests on the
	// shed-guarded routes (/diagnose, /dictionaries mutations); excess
	// requests get 503 + Retry-After. Default 64.
	MaxInFlight int
	// Timeout is the per-request deadline. Default 5s.
	Timeout time.Duration
	// DrainTimeout bounds how long Serve waits for in-flight requests
	// after its context is cancelled. Default 10s.
	DrainTimeout time.Duration
	// CacheSize is the dictionary registry's LRU capacity. Default 8.
	CacheSize int
	// RetryAfter is the hint attached to shed responses. Default 1s.
	RetryAfter time.Duration
	// ChaosDelay artificially stretches every diagnosis by this much —
	// the fault-injection hook the chaos tests use to make shedding and
	// drain windows deterministic. Default 0 (off).
	ChaosDelay time.Duration
	// FS is the filesystem artifacts load through. Default faultfs.OS.
	FS faultfs.FS
	// Cases, when non-nil, is the diagnosis memory: every /diagnose
	// observation first runs a recall step against it and only falls
	// back to the full recompute on a miss (DESIGN.md §15). nil
	// disables the tier (and the /cases endpoints report it disabled).
	Cases *casestore.Store
	// Obs receives metrics and trace events. A nil Observer (or one
	// without metrics) is upgraded to a private registry so /metrics
	// always serves.
	Obs *obs.Observer
	// Clock supplies timestamps for latency metrics. Default time.Now.
	Clock func() time.Time
	// TraceSample is the request-span sampling rate in [0,1] (DESIGN.md
	// §16): the deterministic fraction of request spans flushed to the
	// trace. Default 0 — request IDs are still assigned and echoed, and
	// slow or failed requests still emit their spans, but nothing else
	// reaches the journal. cmd/sddserve's -trace-sample flag defaults
	// to 1 instead: with a trace file attached, sampling everything is
	// the useful default.
	TraceSample float64
	// SlowRequest is the slow-request threshold: requests lasting at
	// least this long always emit their span, sampled or not, and count
	// serve_slow_requests. Default 0 (disabled).
	SlowRequest time.Duration
}

// Server is one diagnosis service instance.
type Server struct {
	cfg      Config
	ob       *obs.Observer
	reg      *registry
	cases    *casestore.Store
	spans    *obs.Spans
	handler  http.Handler
	inflight chan struct{}
	draining atomic.Bool
	clock    func() time.Time
}

// New builds a Server from cfg (zero fields defaulted).
func New(cfg Config) *Server {
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.CacheSize < 1 {
		cfg.CacheSize = 8
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.FS == nil {
		cfg.FS = faultfs.OS
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	ob := cfg.Obs
	switch {
	case ob == nil:
		ob = &obs.Observer{Metrics: obs.NewMetrics()}
	case ob.Metrics == nil:
		ob = &obs.Observer{Metrics: obs.NewMetrics(), Trace: ob.Trace, Progress: ob.Progress, Label: ob.Label}
	}
	s := &Server{
		cfg:      cfg,
		ob:       ob,
		reg:      newRegistry(cfg.CacheSize, cfg.FS, ob),
		cases:    cfg.Cases,
		spans:    obs.NewSpans(ob, cfg.Clock, obs.SpanOptions{Sample: cfg.TraceSample, Slow: cfg.SlowRequest}),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		clock:    cfg.Clock,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	mux.HandleFunc("GET /dictionaries", s.handleDictList)
	mux.HandleFunc("GET /cases", s.handleCases)
	mux.HandleFunc("GET /cases/correlate", s.handleCorrelate)
	mux.Handle("POST /dictionaries/load", s.limited(s.deadlined(http.HandlerFunc(s.handleDictLoad))))
	mux.Handle("POST /dictionaries/evict", s.limited(s.deadlined(http.HandlerFunc(s.handleDictEvict))))
	mux.Handle("POST /diagnose", s.limited(s.deadlined(http.HandlerFunc(s.handleDiagnose))))
	// traced sits inside recovered: a panic unwinds through traced first
	// (closing the request span with error status), then recovered turns
	// it into the 500 — which still carries X-Request-ID because traced
	// stamped the shared header map before the handler ran.
	s.handler = s.recovered(s.traced(mux))
	return s
}

// Handler returns the server's full middleware-wrapped handler — what
// Serve mounts, exposed for in-process tests (httptest).
func (s *Server) Handler() http.Handler { return s.handler }

// LoadDictionary loads (or reloads) the artifact at path into the
// registry — the preload hook cmd/sddserve uses so a corrupt artifact
// fails startup instead of the first request.
func (s *Server) LoadDictionary(path string) (DictionaryInfo, error) {
	e, err := s.reg.load(path)
	if err != nil {
		return DictionaryInfo{}, err
	}
	defer e.unpin()
	return DictionaryInfo{
		Path: e.path, Checksum: fmt.Sprintf("%08x", e.checksum),
		Circuit: e.header.Circuit, Kind: e.header.Kind, TestSet: e.header.TestSet,
		Faults: len(e.header.Faults), Tests: e.header.Tests, Outputs: e.header.Outputs,
	}, nil
}

// Serve accepts connections on ln until ctx is cancelled, then drains:
// stop accepting, let in-flight requests finish (bounded by
// DrainTimeout), and return. A clean drain returns nil — under cli.Main
// that maps a SIGTERM-triggered shutdown to exit code 0. The trace ends
// on a serve_shutdown event whose "clean" field records whether every
// in-flight request completed.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler: s.handler,
		// The per-request work deadline is the middleware's; these bound
		// slow-loris header dribble and idle keep-alives.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	s.ob.Emit("serve_start", map[string]any{"addr": ln.Addr().String()})

	select {
	case err := <-errc:
		// The listener died on its own (closed underneath us, accept
		// failure) — not a drain, a failure.
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	s.draining.Store(true)
	s.ob.Emit("serve_drain", map[string]any{"timeout_ms": s.cfg.DrainTimeout.Milliseconds()})
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(dctx)
	<-errc // reap the Serve goroutine (it returns ErrServerClosed)
	s.ob.Emit("serve_shutdown", map[string]any{"clean": err == nil})
	if err != nil {
		return fmt.Errorf("serve: drain incomplete after %v: %w", s.cfg.DrainTimeout, err)
	}
	return nil
}

// errorBody is the uniform JSON error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already out; an encode failure here has no
	// channel left to the client.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// recovered is the outermost middleware: a handler panic becomes a 500
// and a handler_panic trace event instead of tearing the process down
// mid-fleet. http.ErrAbortHandler keeps its sentinel behaviour.
func (s *Server) recovered(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			s.ob.M().Inc(obs.ServePanics)
			s.ob.Emit("handler_panic", map[string]any{
				"method": r.Method, "path": r.URL.Path, "panic": fmt.Sprint(p),
			})
			// Best effort: if the handler already wrote, the 500 is lost
			// but the connection still closes in a defined state.
			writeError(w, http.StatusInternalServerError, "internal error (panic recovered)")
		}()
		h.ServeHTTP(w, r)
	})
}

// traced opens the request span (DESIGN.md §16): it assigns or
// propagates the request ID (inbound W3C traceparent wins), echoes it
// as X-Request-ID before the handler runs — so every response path,
// including shed 503s, drain 503s and recovered panic 500s, carries it
// — and closes the span on the way out. The response status is captured
// by wrapping the writer; a panic closes the span with error status and
// re-panics for the recovery middleware to convert into the 500.
func (s *Server) traced(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sp := s.spans.Start(r.Method, r.URL.Path, r.Header.Get("traceparent"))
		w.Header().Set("X-Request-ID", sp.RequestID())
		defer func() {
			if p := recover(); p != nil {
				sp.SetStatus(http.StatusInternalServerError)
				sp.SetError(fmt.Sprint(p))
				s.spans.End(sp)
				panic(p)
			}
			s.spans.End(sp)
		}()
		h.ServeHTTP(sp.Writer(w), r.WithContext(obs.ContextWithSpan(r.Context(), sp)))
	})
}

// limited admits a request if an in-flight slot is free and sheds it
// with 503 + Retry-After otherwise — bounded degradation instead of an
// unbounded queue collapsing tail latency.
func (s *Server) limited(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			s.ob.M().Inc(obs.ServeRequests)
			h.ServeHTTP(w, r)
		default:
			s.ob.M().Inc(obs.ServeShed)
			s.ob.Emit("request_shed", map[string]any{"method": r.Method, "path": r.URL.Path})
			secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusServiceUnavailable, "server at capacity (%d in flight); retry after %ds",
				s.cfg.MaxInFlight, secs)
		}
	})
}

// deadlined attaches the per-request deadline to the request context.
func (s *Server) deadlined(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports readiness for new traffic: 503 once draining, so
// a load balancer stops routing here while in-flight work completes.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	snap := s.ob.M().Snapshot().WithRuntime()
	_ = snap.WriteOpenMetrics(w) // client went away; nothing to salvage
}

// handleDebugRequests dumps the in-flight request set — request ID,
// route, current stage and age — the "what is this server doing right
// now" view. The dump request itself appears in its own snapshot.
func (s *Server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	in := s.spans.Inflight()
	if in == nil {
		in = []obs.InflightRequest{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"total": len(in), "requests": in})
}

func (s *Server) handleDictList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"dictionaries": s.reg.list()})
}

// pathRequest is the body of the load/evict dictionary actions.
type pathRequest struct {
	Path string `json:"path"`
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return false
	}
	return true
}

// loadStatus maps a registry load failure onto an HTTP status: missing
// file 404, damaged or foreign artifact 422, anything else 500.
func loadStatus(err error) int {
	switch {
	case errors.Is(err, os.ErrNotExist):
		return http.StatusNotFound
	case errors.Is(err, dictio.ErrCorruptArtifact), errors.Is(err, dictio.ErrArtifactVersion):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleDictLoad(w http.ResponseWriter, r *http.Request) {
	var req pathRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, "missing path")
		return
	}
	info, err := s.LoadDictionary(req.Path)
	if err != nil {
		writeError(w, loadStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDictEvict(w http.ResponseWriter, r *http.Request) {
	var req pathRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, "missing path")
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"evicted": s.reg.evict(req.Path)})
}

// DiagnoseRequest is the /diagnose body. Exactly one of Responses (a
// single observation: one 0/1 output vector per test) or Batch (several
// observations) must be set. TopK bounds the nearest-match fallback
// when no fault matches exactly; 0 means 5.
type DiagnoseRequest struct {
	Dictionary string     `json:"dictionary"`
	Responses  []string   `json:"responses,omitempty"`
	Batch      [][]string `json:"batch,omitempty"`
	TopK       int        `json:"top_k,omitempty"`
}

// Candidate is one ranked fault candidate, named from the artifact's
// fault-class table.
type Candidate struct {
	Fault    int    `json:"fault"`
	Name     string `json:"name"`
	Distance int    `json:"distance"`
}

// RecallInfo marks a result served from the case store's near-match
// path: the observed signature was within the Hamming budget of a prior
// case whose candidate set the dictionary confirms as the top candidate
// set for this signature too. Exact recalls carry no marker — they are
// byte-identical to the recompute path, marker included.
type RecallInfo struct {
	Kind       string  `json:"kind"`
	Case       int64   `json:"case"`
	Distance   int     `json:"distance"`
	Confidence float64 `json:"confidence"`
}

// DiagnoseResult is the diagnosis of one observation.
type DiagnoseResult struct {
	// Failing counts signature bits set ("different" verdicts).
	Failing int `json:"failing"`
	// Exact reports whether the candidates matched the signature
	// exactly (distance 0); false means nearest-match fallback.
	Exact      bool        `json:"exact"`
	Candidates []Candidate `json:"candidates"`
	// Recall is set only on a near-match serve from the case store.
	Recall *RecallInfo `json:"recall,omitempty"`
}

// DiagnoseResponse is the /diagnose reply: one result per observation,
// stamped with the artifact identity that produced it.
type DiagnoseResponse struct {
	Dictionary string           `json:"dictionary"`
	Checksum   string           `json:"checksum"`
	Results    []DiagnoseResult `json:"results"`
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	sp := obs.SpanFrom(r.Context())
	sp.BeginStage("decode")
	var req DiagnoseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Dictionary == "" {
		writeError(w, http.StatusBadRequest, "missing dictionary")
		return
	}
	batch := req.Batch
	if req.Responses != nil {
		if batch != nil {
			writeError(w, http.StatusBadRequest, "set either responses or batch, not both")
			return
		}
		batch = [][]string{req.Responses}
	}
	if len(batch) == 0 {
		writeError(w, http.StatusBadRequest, "no responses to diagnose")
		return
	}
	e, err := s.reg.get(req.Dictionary)
	if err != nil {
		writeError(w, loadStatus(err), "%v", err)
		return
	}
	// The entry stays pinned for the whole batch: an evict (explicit or
	// LRU) racing this request unlinks it from the registry but cannot
	// invalidate it under us (see registry.go's pin contract).
	defer e.unpin()
	topK := req.TopK
	if topK <= 0 {
		topK = 5
	}
	resp := DiagnoseResponse{
		Dictionary: e.path,
		Checksum:   fmt.Sprintf("%08x", e.checksum),
		Results:    make([]DiagnoseResult, 0, len(batch)),
	}
	ctx := r.Context()
	for i, lines := range batch {
		if err := ctx.Err(); err != nil {
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded after %d of %d observations", i, len(batch))
			return
		}
		if s.cfg.ChaosDelay > 0 {
			t := time.NewTimer(s.cfg.ChaosDelay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				writeError(w, http.StatusGatewayTimeout, "deadline exceeded after %d of %d observations", i, len(batch))
				return
			}
		}
		// Per-observation decode stage: a batch request shows one
		// decode/recall/scan/record stage cycle per observation, which
		// sddstat aggregates by stage name.
		sp.BeginStage("decode")
		vectors, err := dictio.ParseVectors(lines, e.header.Outputs)
		if err != nil {
			writeError(w, http.StatusBadRequest, "observation %d: %v", i+1, err)
			return
		}
		res, err := s.diagnoseOne(ctx, e, vectors, topK)
		if err != nil {
			writeError(w, http.StatusBadRequest, "observation %d: %v", i+1, err)
			return
		}
		resp.Results = append(resp.Results, res)
	}
	sp.EndStage()
	writeJSON(w, http.StatusOK, resp)
}

// diagnoseOne runs one observation through the compiled dictionary,
// recall before recompute: with a case store attached, a prior case
// with the identical signature (exact hit) or within the Hamming
// budget *and* passing the false-dedup guard (near hit) supplies the
// cached ranking; otherwise — and always without a store — the path is
// exact candidates if any row matches the signature, else the topK
// nearest rows via core.RankRows, the identical path cmd/diagnose
// takes.
//
// An exact recall is byte-identical to what the recompute path would
// have produced: same signature, same artifact, deterministic ranking,
// and no extra fields. A near recall is a *deduplication* — the cached
// case's ranking served for a new, similar signature — so it is
// explicitly marked with a recall block carrying the distance and the
// distance-discounted confidence, and it is only served when the guard
// confirms the cached candidate set is the dictionary's own top
// candidate set for the new signature.
func (s *Server) diagnoseOne(ctx context.Context, e *entry, vectors []logic.BitVec, topK int) (DiagnoseResult, error) {
	start := s.clock()
	sp := obs.SpanFrom(ctx)
	dict := e.dict.Dict
	sig, err := dict.Signature(vectors)
	if err != nil {
		return DiagnoseResult{}, err
	}
	res := DiagnoseResult{Failing: sig.PopCount()}
	if s.cases != nil {
		sp.BeginStage("recall")
		if rc, ok := s.recall(e, sig, topK); ok {
			cached := rc.Case
			res.Exact = cached.Exact
			for _, c := range cached.Candidates {
				res.Candidates = append(res.Candidates, Candidate{
					Fault: c.Fault, Name: c.Name, Distance: c.Distance,
				})
			}
			if rc.Kind == casestore.Near {
				res.Recall = &RecallInfo{
					Kind: rc.Kind.String(), Case: cached.ID,
					Distance: rc.Distance, Confidence: rc.Confidence,
				}
			}
			s.ob.M().Observe(obs.DiagnoseUs, s.clock().Sub(start).Microseconds())
			sp.EndStage()
			return res, nil
		}
	}
	sp.BeginStage("scan")
	if exact := dict.Candidates(sig); len(exact) > 0 {
		res.Exact = true
		for _, f := range exact {
			res.Candidates = append(res.Candidates, Candidate{Fault: f, Name: e.header.Faults[f]})
		}
	} else {
		for _, rk := range dict.Rank(sig, topK) {
			res.Candidates = append(res.Candidates, Candidate{
				Fault: rk.Fault, Name: e.header.Faults[rk.Fault], Distance: rk.Distance,
			})
		}
	}
	if s.cases != nil {
		s.record(ctx, e, sig, topK, res)
	}
	s.ob.M().Observe(obs.DiagnoseUs, s.clock().Sub(start).Microseconds())
	sp.EndStage()
	return res, nil
}

// recall runs the case-store recall step for one observation and
// reports whether a cached case may be served. Every call increments
// exactly one of the serve_recall_{hits,near,misses} counters, so the
// three sum to the number of observations diagnosed while the store
// was attached.
//
// A near match passes through the false-dedup guard before it is
// served: the dictionary's exact candidate set for *this* signature is
// recomputed (one O(rows) scan — cheap next to the rank fallback) and
// must equal the cached case's candidate set. A near-matched case whose
// candidates disagree is a different defect wearing a similar
// signature; serving it would be a false dedup, so the verdict demotes
// to a miss and the recompute path runs.
func (s *Server) recall(e *entry, sig logic.BitVec, topK int) (casestore.Recall, bool) {
	start := s.clock()
	rc := s.cases.Recall(checksumKey(e.checksum), sig, topK)
	served := false
	switch rc.Kind {
	case casestore.Exact:
		s.ob.M().Inc(obs.ServeRecallHits)
		served = true
	case casestore.Near:
		if s.guardNear(e.dict.Dict, sig, rc.Case) {
			s.ob.M().Inc(obs.ServeRecallNear)
			served = true
		} else {
			rc = casestore.Recall{Kind: casestore.Miss}
			s.ob.M().Inc(obs.ServeRecallMisses)
		}
	default:
		s.ob.M().Inc(obs.ServeRecallMisses)
	}
	s.ob.M().Observe(obs.RecallUs, s.clock().Sub(start).Microseconds())
	if s.ob.Tracing() {
		fields := map[string]any{"kind": rc.Kind.String(), "confidence": rc.Confidence}
		if rc.Case != nil {
			fields["case"] = rc.Case.ID
			fields["distance"] = rc.Distance
		}
		s.ob.Emit("case_recall", fields)
	}
	return rc, served
}

// guardNear is the false-dedup guard: a near-matched case may only be
// served if its candidate set equals the dictionary's *top candidate
// set* for the new signature — the rows at minimum Hamming distance,
// exactly the first tier core.RankRows would return. A near case whose
// candidates are not the nearest explanation of the new signature is a
// different defect wearing a similar signature; serving it would be a
// false dedup, so the verdict demotes to a miss and the recompute path
// runs. One O(rows) XOR+popcount scan, the same cost as the rank
// fallback's scan without its heap.
//
// best == 0 (the signature matches rows exactly) always fails the
// guard: the cached case's rows equal a *different* signature, so set
// equality is impossible, and the recompute path owns exact matches.
func (s *Server) guardNear(dict *core.Compiled, sig logic.BitVec, c *casestore.Case) bool {
	best := -1
	var top []int
	for i, row := range dict.Rows {
		d := row.Hamming(sig)
		if best < 0 || d < best {
			best, top = d, top[:0]
		}
		if d == best {
			top = append(top, i)
		}
	}
	if best <= 0 || len(top) != len(c.Candidates) {
		return false
	}
	for i, f := range top {
		if c.Candidates[i].Fault != f {
			return false
		}
	}
	return true
}

// record persists the outcome of a recompute as a new case. A failed
// append degrades to a trace event: the caching tier must never break
// the diagnosis that just succeeded. The store's RecordCtx opens the
// "record" stage on the request span carried by ctx.
func (s *Server) record(ctx context.Context, e *entry, sig logic.BitVec, topK int, res DiagnoseResult) {
	c := casestore.Case{
		Circuit:      e.header.Circuit,
		TestSet:      e.header.TestSet,
		Checksum:     checksumKey(e.checksum),
		TestChecksum: e.header.TestChecksum,
		SigBits:      e.dict.Dict.SignatureBits(),
		Signature:    append([]uint64(nil), sig...),
		Exact:        res.Exact,
		TopK:         topK,
		Failing:      res.Failing,
	}
	for _, cand := range res.Candidates {
		c.Candidates = append(c.Candidates, casestore.Candidate{
			Fault: cand.Fault, Name: cand.Name, Distance: cand.Distance,
		})
	}
	rec, err := s.cases.RecordCtx(ctx, c)
	if err != nil {
		s.ob.Emit("case_record_error", map[string]any{"error": err.Error()})
		return
	}
	s.ob.Emit("case_record", map[string]any{"case": rec.ID, "exact": rec.Exact})
}

// checksumKey renders an artifact checksum the way every endpoint does.
func checksumKey(sum uint32) string { return fmt.Sprintf("%08x", sum) }

// handleCases lists the recorded diagnosis memory.
func (s *Server) handleCases(w http.ResponseWriter, _ *http.Request) {
	if s.cases == nil {
		writeError(w, http.StatusNotFound, "case store disabled (start sddserve with -casestore)")
		return
	}
	cases := s.cases.Cases()
	writeJSON(w, http.StatusOK, map[string]any{"total": len(cases), "cases": cases})
}

// handleCorrelate reports recurring candidate sets across the recorded
// cases — JSON by default, the sddstat-style text rendering with
// ?format=text.
func (s *Server) handleCorrelate(w http.ResponseWriter, r *http.Request) {
	if s.cases == nil {
		writeError(w, http.StatusNotFound, "case store disabled (start sddserve with -casestore)")
		return
	}
	report := casestore.Correlate(s.cases.Cases())
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = report.WriteText(w) // client went away; nothing to salvage
		return
	}
	writeJSON(w, http.StatusOK, report)
}
