package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sddict/internal/dictio"
	"sddict/internal/faultfs"
	"sddict/internal/obs"
)

// entry is one loaded dictionary artifact in the registry. The cache
// identity is (path, checksum): a re-publish under the same path shows
// up as a new checksum when reloaded, so stale rankings are always
// attributable.
//
// Pin contract (the eviction-vs-in-flight audit, DESIGN.md §12): an
// entry handed out by get/load is *pinned* until the caller's unpin.
// Entries are immutable after load, and eviction — explicit or LRU —
// only unlinks the entry from the registry map; a pinned holder keeps
// a fully valid snapshot for the rest of its request, and the entry's
// memory is reclaimed when the last pin drops. The pin count exists to
// make that invariant observable: dict_evict trace events record how
// many requests were still holding the victim, and the race-leg
// regression test (TestEvictRacesLongBatchDiagnose) hammers evictions
// against a long in-flight batch to prove no request ever sees torn
// state.
type entry struct {
	path     string
	checksum uint32
	header   dictio.Header
	dict     *dictio.Artifact
	lastUsed int64 // registry use sequence, for LRU ordering
	pins     atomic.Int64
}

// unpin releases one get/load reference.
func (e *entry) unpin() { e.pins.Add(-1) }

// registry is the LRU cache of loaded dictionary artifacts. Loads
// happen under the lock: a diagnosis against an unloaded dictionary
// pays the load once, and concurrent requests for the same artifact
// never load it twice. Capacity is small (dictionaries are the working
// set of a tester cell, not a fleet), so the linear LRU scan is noise.
type registry struct {
	fs  faultfs.FS
	cap int
	ob  *obs.Observer

	mu      sync.Mutex
	useSeq  int64
	entries map[string]*entry
}

func newRegistry(capacity int, fsys faultfs.FS, ob *obs.Observer) *registry {
	if capacity < 1 {
		capacity = 1
	}
	if fsys == nil {
		fsys = faultfs.OS
	}
	return &registry{fs: fsys, cap: capacity, ob: ob, entries: make(map[string]*entry)}
}

// get returns the entry for path — pinned — loading (and caching) the
// artifact on a miss. The returned entry is immutable after load, so
// callers may use it outside the lock; they must unpin it when the
// request is done.
func (r *registry) get(path string) (*entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[path]; ok {
		r.useSeq++
		e.lastUsed = r.useSeq
		e.pins.Add(1)
		r.ob.M().Inc(obs.ServeDictHits)
		return e, nil
	}
	return r.loadLocked(path)
}

// load (re)loads the artifact at path unconditionally — the explicit
// /dictionaries/load action, which also picks up a re-published
// artifact under an existing path.
func (r *registry) load(path string) (*entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.entries, path)
	return r.loadLocked(path)
}

func (r *registry) loadLocked(path string) (*entry, error) {
	a, err := dictio.LoadFS(r.fs, path)
	if err != nil {
		return nil, fmt.Errorf("serve: loading dictionary: %w", err)
	}
	r.useSeq++
	e := &entry{path: path, checksum: a.Checksum, header: a.Header, dict: a, lastUsed: r.useSeq}
	e.pins.Add(1)
	r.entries[path] = e
	r.ob.M().Inc(obs.ServeDictLoads)
	r.ob.Emit("dict_load", map[string]any{
		"path": path, "checksum": fmt.Sprintf("%08x", a.Checksum),
		"faults": len(a.Header.Faults), "tests": a.Header.Tests,
	})
	r.evictOverCapLocked()
	return e, nil
}

// evictOverCapLocked drops least-recently-used entries until the
// registry fits its capacity again.
func (r *registry) evictOverCapLocked() {
	for len(r.entries) > r.cap {
		var victim *entry
		for _, e := range r.entries {
			if victim == nil || e.lastUsed < victim.lastUsed {
				victim = e
			}
		}
		delete(r.entries, victim.path)
		r.ob.M().Inc(obs.ServeDictEvicts)
		r.ob.Emit("dict_evict", map[string]any{
			"path": victim.path, "reason": "lru", "pinned": victim.pins.Load(),
		})
	}
}

// evict removes path from the registry, reporting whether it was
// loaded.
func (r *registry) evict(path string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[path]
	if !ok {
		return false
	}
	delete(r.entries, path)
	r.ob.M().Inc(obs.ServeDictEvicts)
	r.ob.Emit("dict_evict", map[string]any{
		"path": path, "reason": "explicit", "pinned": e.pins.Load(),
	})
	return true
}

// DictionaryInfo is one registry entry as listed by /dictionaries.
type DictionaryInfo struct {
	Path     string `json:"path"`
	Checksum string `json:"checksum"`
	Circuit  string `json:"circuit"`
	Kind     string `json:"kind"`
	TestSet  string `json:"test_set"`
	Faults   int    `json:"faults"`
	Tests    int    `json:"tests"`
	Outputs  int    `json:"outputs"`
}

func (r *registry) list() []DictionaryInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DictionaryInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, DictionaryInfo{
			Path:     e.path,
			Checksum: fmt.Sprintf("%08x", e.checksum),
			Circuit:  e.header.Circuit,
			Kind:     e.header.Kind,
			TestSet:  e.header.TestSet,
			Faults:   len(e.header.Faults),
			Tests:    e.header.Tests,
			Outputs:  e.header.Outputs,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Path < out[b].Path })
	return out
}
