package serve

// Request-span tests for the traced middleware (DESIGN.md §16):
// request-ID assignment and propagation on every response path, stage
// nesting, emission rules, panic ordering, sampling determinism under
// concurrency, wire-byte identity across tracing modes, and the
// zero-allocation cost of an attached-but-unsampled tracer.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"sddict/internal/casestore"
	"sddict/internal/obs"
)

// spanEvents re-reads the span events a test run produced, asserting
// the journal itself stays schema-valid (cleanly parseable).
func spanEvents(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	events, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	var out []map[string]any
	for _, ev := range events {
		if ev.Type == "span" {
			out = append(out, ev.Fields)
		}
	}
	return out
}

// tracedServer builds a server journaling into buf at the given sample
// rate, with an in-memory case store so all four stages run.
func tracedServer(t *testing.T, buf *bytes.Buffer, sample float64) (*Server, string) {
	t.Helper()
	store, err := casestore.Open(casestore.NewMem(), casestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return newTestServer(t, Config{
		Obs:         &obs.Observer{Metrics: obs.NewMetrics(), Trace: obs.NewTracer(buf, nil)},
		TraceSample: sample,
		Cases:       store,
	})
}

func TestDiagnoseRequestSpanAndStages(t *testing.T) {
	var buf bytes.Buffer
	s, path := tracedServer(t, &buf, 1)

	traceID := "4bf92f3577b34da6a3ce929d0e0e4736"
	h := obs.FormatTraceparent(traceID, "00f067aa0ba902b7", true)
	data, _ := json.Marshal(DiagnoseRequest{Dictionary: path, Responses: []string{"000", "011"}})
	req := httptest.NewRequest(http.MethodPost, "/diagnose", bytes.NewReader(data))
	req.Header.Set("traceparent", h)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Request-ID"); got != traceID {
		t.Fatalf("X-Request-ID = %q, want inbound trace id %q", got, traceID)
	}

	// Batch request on the same server: still exactly one span per
	// request, with one stage cycle per observation.
	w2 := post(t, s, "/diagnose", DiagnoseRequest{
		Dictionary: path,
		Batch:      [][]string{{"000", "011"}, {"001", "111"}, {"010", "111"}},
	})
	if w2.Code != http.StatusOK {
		t.Fatalf("batch status %d, body %s", w2.Code, w2.Body.String())
	}
	batchID := w2.Header().Get("X-Request-ID")
	if batchID == "" {
		t.Fatal("batch response missing X-Request-ID")
	}

	spans := spanEvents(t, &buf)
	perID := map[string]int{}
	for _, f := range spans {
		perID[f["request_id"].(string)]++
	}
	if perID[traceID] != 1 || perID[batchID] != 1 {
		t.Fatalf("span count per request = %v, want exactly 1 for %q and %q", perID, traceID, batchID)
	}

	for _, f := range spans {
		if f["path"] != "/diagnose" {
			t.Fatalf("span path = %v", f["path"])
		}
		durUs := int64(f["dur_us"].(float64))
		stages, ok := f["stages"].([]any)
		if !ok || len(stages) == 0 {
			t.Fatalf("span %v missing stages", f["request_id"])
		}
		names := map[string]bool{}
		for _, st := range stages {
			m := st.(map[string]any)
			names[m["name"].(string)] = true
			startUs := int64(m["start_us"].(float64))
			stageDur := int64(m["dur_us"].(float64))
			if startUs < 0 || startUs+stageDur > durUs {
				t.Errorf("stage %v [%d,%d] escapes span interval [0,%d]",
					m["name"], startUs, startUs+stageDur, durUs)
			}
		}
		for _, want := range []string{"decode", "recall", "scan", "record"} {
			if !names[want] {
				t.Errorf("span %v missing stage %q (got %v)", f["request_id"], want, names)
			}
		}
	}
	if f := spans[0]; f["parent"] != "00f067aa0ba902b7" {
		t.Errorf("inbound parent id not recorded: %v", f)
	}
}

func TestXRequestIDOnAllResponsePaths(t *testing.T) {
	var buf bytes.Buffer
	s, path := tracedServer(t, &buf, 1)

	// 200.
	if w := get(t, s, "/healthz"); w.Header().Get("X-Request-ID") == "" {
		t.Error("200 response missing X-Request-ID")
	}
	// Shed 503: fill every in-flight slot, then post.
	for i := 0; i < s.cfg.MaxInFlight; i++ {
		s.inflight <- struct{}{}
	}
	w := post(t, s, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: []string{"000", "011"}})
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("expected shed 503 with Retry-After, got %d", w.Code)
	}
	if w.Header().Get("X-Request-ID") == "" {
		t.Error("shed 503 missing X-Request-ID")
	}
	for i := 0; i < s.cfg.MaxInFlight; i++ {
		<-s.inflight
	}
	// Drain 503.
	s.draining.Store(true)
	if w := get(t, s, "/readyz"); w.Code != http.StatusServiceUnavailable || w.Header().Get("X-Request-ID") == "" {
		t.Errorf("drain 503 = %d, X-Request-ID %q", w.Code, w.Header().Get("X-Request-ID"))
	}
	s.draining.Store(false)
}

// TestPanicClosesSpanWithError pins the middleware ordering contract:
// recovered(traced(handler)) means a panic first unwinds through traced
// — which closes the request span with error status — and then reaches
// recovered, which writes the 500 onto a response whose X-Request-ID
// traced already stamped. Failed spans emit even at sample 0, and the
// journal stays cleanly readable.
func TestPanicClosesSpanWithError(t *testing.T) {
	var buf bytes.Buffer
	ob := &obs.Observer{Metrics: obs.NewMetrics(), Trace: obs.NewTracer(&buf, nil)}
	s := New(Config{Obs: ob, TraceSample: 0})

	boom := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	// Same composition New uses for s.handler.
	h := s.recovered(s.traced(boom))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/diagnose", nil))

	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	reqID := w.Header().Get("X-Request-ID")
	if reqID == "" {
		t.Fatal("panic 500 missing X-Request-ID")
	}
	events, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace not schema-valid after panic: %v", err)
	}
	var span map[string]any
	sawPanicEvent := false
	for _, ev := range events {
		switch ev.Type {
		case "span":
			span = ev.Fields
		case "handler_panic":
			sawPanicEvent = true
		}
	}
	if !sawPanicEvent {
		t.Error("handler_panic event missing")
	}
	if span == nil {
		t.Fatal("unsampled failed request did not emit its span")
	}
	if span["request_id"] != reqID || int(span["status"].(float64)) != 500 || span["error"] != "kaboom" {
		t.Fatalf("panic span = %v, want request %q status 500 error kaboom", span, reqID)
	}
	if ob.Metrics.Counter(obs.ServePanics) != 1 {
		t.Error("serve_panics not incremented")
	}
}

// TestWireBytesIdenticalAcrossTracing pins the nil-safe obs contract on
// the serve path: the /diagnose response body is byte-identical with
// tracing off, fully sampled, and partially sampled. (Headers differ —
// X-Request-ID is the point — but the diagnosis wire bytes cannot.)
func TestWireBytesIdenticalAcrossTracing(t *testing.T) {
	dir := t.TempDir()
	path := writeArtifact(t, dir, "toy.sdd")

	var bufOn, bufHalf bytes.Buffer
	servers := map[string]*Server{
		"off": New(Config{}),
		"on": New(Config{
			Obs:         &obs.Observer{Metrics: obs.NewMetrics(), Trace: obs.NewTracer(&bufOn, nil)},
			TraceSample: 1,
		}),
		"half": New(Config{
			Obs:         &obs.Observer{Metrics: obs.NewMetrics(), Trace: obs.NewTracer(&bufHalf, nil)},
			TraceSample: 0.5,
		}),
	}
	requests := []DiagnoseRequest{
		{Dictionary: path, Responses: []string{"000", "011"}},
		{Dictionary: path, Batch: [][]string{{"001", "111"}, {"000", "111"}}, TopK: 2},
		{Dictionary: path}, // 400: missing responses
	}
	for i, req := range requests {
		var wantBody string
		wantSet := false
		for _, name := range []string{"off", "on", "half"} {
			w := post(t, servers[name], "/diagnose", req)
			if !wantSet {
				wantBody, wantSet = w.Body.String(), true
				continue
			}
			if got := w.Body.String(); got != wantBody {
				t.Errorf("request %d: %s body diverges:\n  off: %q\n  %s: %q", i, name, wantBody, name, got)
			}
		}
	}
}

// TestServeSampledSetStableAcrossConcurrency replays the same
// request-ID stream against the full handler chain at several
// concurrency levels: the set of journaled spans must be identical,
// because the sampling verdict is a pure hash of the request ID.
func TestServeSampledSetStableAcrossConcurrency(t *testing.T) {
	dir := t.TempDir()
	path := writeArtifact(t, dir, "toy.sdd")
	const n = 128

	run := func(workers int) []string {
		var buf bytes.Buffer
		s := New(Config{
			Obs:         &obs.Observer{Metrics: obs.NewMetrics(), Trace: obs.NewTracer(&buf, nil)},
			TraceSample: 0.5,
			MaxInFlight: n, // no shedding: every request must produce its one span
		})
		var wg sync.WaitGroup
		ids := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range ids {
					traceID := fmt.Sprintf("%016x%016x", 0xfeed, i+1)
					data, _ := json.Marshal(DiagnoseRequest{Dictionary: path, Responses: []string{"000", "011"}})
					req := httptest.NewRequest(http.MethodPost, "/diagnose", bytes.NewReader(data))
					req.Header.Set("traceparent", obs.FormatTraceparent(traceID, "00f067aa0ba902b7", true))
					rec := httptest.NewRecorder()
					s.Handler().ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						t.Errorf("status %d: %s", rec.Code, rec.Body.String())
					}
				}
			}()
		}
		for i := 0; i < n; i++ {
			ids <- i
		}
		close(ids)
		wg.Wait()

		var sampled []string
		for _, f := range spanEvents(t, &buf) {
			sampled = append(sampled, f["request_id"].(string))
		}
		sort.Strings(sampled)
		return sampled
	}

	want := run(1)
	if len(want) == 0 || len(want) == n {
		t.Fatalf("rate 0.5 sampled %d of %d — no discrimination", len(want), n)
	}
	got := run(8)
	if len(got) != len(want) {
		t.Fatalf("workers=8 sampled %d spans, workers=1 sampled %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sampled set diverges at %d: %q vs %q", i, got[i], want[i])
		}
	}
}

// TestDebugRequestsShowsInflight holds a diagnosis open with ChaosDelay
// and checks /debug/requests reports it with its request ID and age.
func TestDebugRequestsShowsInflight(t *testing.T) {
	var buf bytes.Buffer
	store, err := casestore.Open(casestore.NewMem(), casestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, path := newTestServer(t, Config{
		Obs:        &obs.Observer{Metrics: obs.NewMetrics(), Trace: obs.NewTracer(&buf, nil)},
		Cases:      store,
		ChaosDelay: 300 * time.Millisecond,
		Timeout:    5 * time.Second,
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		post(t, s, "/diagnose", DiagnoseRequest{Dictionary: path, Responses: []string{"000", "011"}})
	}()

	type dump struct {
		Total    int                   `json:"total"`
		Requests []obs.InflightRequest `json:"requests"`
	}
	deadline := time.Now().Add(5 * time.Second)
	seen := false
	for !seen && time.Now().Before(deadline) {
		w := get(t, s, "/debug/requests")
		if w.Code != http.StatusOK {
			t.Fatalf("/debug/requests status %d", w.Code)
		}
		var d dump
		if err := json.Unmarshal(w.Body.Bytes(), &d); err != nil {
			t.Fatal(err)
		}
		for _, r := range d.Requests {
			if r.Path == "/diagnose" {
				seen = true
				if r.RequestID == "" || r.Method != "POST" || r.AgeMs < 0 {
					t.Fatalf("inflight entry malformed: %+v", r)
				}
			}
		}
		if !seen {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !seen {
		t.Fatal("/debug/requests never showed the in-flight diagnosis")
	}
	<-done
}

// TestDiagnoseAllocsTracerSampleZero pins the satellite claim that
// -trace-sample 0 adds zero allocations to the /diagnose hot path: a
// server with a tracer attached at sample 0 allocates exactly as much
// per request as one with no tracer at all.
func TestDiagnoseAllocsTracerSampleZero(t *testing.T) {
	dir := t.TempDir()
	path := writeArtifact(t, dir, "toy.sdd")
	data, err := json.Marshal(DiagnoseRequest{Dictionary: path, Responses: []string{"000", "011"}})
	if err != nil {
		t.Fatal(err)
	}
	h := obs.FormatTraceparent("4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7", true)

	measure := func(s *Server) float64 {
		cycle := func() {
			req := httptest.NewRequest(http.MethodPost, "/diagnose", bytes.NewReader(data))
			req.Header.Set("traceparent", h)
			w := httptest.NewRecorder()
			s.Handler().ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				t.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
		cycle() // warm caches and the span free list
		return testing.AllocsPerRun(100, cycle)
	}

	baseline := measure(New(Config{}))
	traced := measure(New(Config{
		Obs:         &obs.Observer{Metrics: obs.NewMetrics(), Trace: obs.NewTracer(io.Discard, nil)},
		TraceSample: 0,
	}))
	// Identical modulo scheduling noise (pool refills): allow a
	// fraction of an allocation, not a whole one.
	if diff := traced - baseline; diff > 0.5 || diff < -0.5 {
		t.Fatalf("sample-0 tracer changes /diagnose allocations: baseline %.2f, traced %.2f", baseline, traced)
	}
}
