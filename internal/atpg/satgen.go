package atpg

import (
	"fmt"

	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/sat"
)

// SolveOutputOne finds, via SAT, an input vector driving the given gate of
// a combinational circuit to 1, or proves none exists. It Tseitin-encodes
// the gate's fanin cone and returns the vector over the circuit's scan
// inputs (inputs outside the cone stay X). The conflict budget bounds the
// effort; 0 uses the solver default.
//
// This is the complete decision procedure behind the SAT fallback for
// pair distinguishing: structural PODEM aborts become definitive answers.
func SolveOutputOne(c *netlist.Circuit, target int32, conflictBudget int64) (pattern.Vector, Status, error) {
	if len(c.DFFs) != 0 {
		return nil, Aborted, fmt.Errorf("atpg: SAT solving requires a combinational circuit")
	}
	// Collect the fanin cone of the target.
	inCone := make([]bool, len(c.Gates))
	stack := []int32{target}
	inCone[target] = true
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range c.Gates[g].Fanin {
			if !inCone[d] {
				inCone[d] = true
				stack = append(stack, d)
			}
		}
	}

	s := sat.NewSolver(0)
	varOf := make([]int, len(c.Gates))
	for i := range varOf {
		varOf[i] = -1
	}
	for i := range c.Gates {
		if inCone[i] {
			varOf[i] = s.AddVar()
		}
	}

	lit := func(g int32, neg bool) sat.Lit { return sat.MkLit(varOf[g], neg) }

	for i := range c.Gates {
		if !inCone[i] {
			continue
		}
		g := int32(i)
		gate := &c.Gates[i]
		out := lit(g, false)
		nout := lit(g, true)
		switch gate.Type {
		case netlist.Input:
			// free variable
		case netlist.Const0:
			s.AddClause(nout)
		case netlist.Const1:
			s.AddClause(out)
		case netlist.Buf, netlist.Not:
			d := gate.Fanin[0]
			inv := gate.Type == netlist.Not
			// out <-> (inv ? ¬d : d)
			s.AddClause(nout, lit(d, inv))
			s.AddClause(out, lit(d, !inv))
		case netlist.And, netlist.Nand:
			inv := gate.Type == netlist.Nand
			o, no := out, nout
			if inv {
				o, no = nout, out
			}
			// o -> every input; (¬in_i for some i) -> ¬o
			all := []sat.Lit{o}
			for _, d := range gate.Fanin {
				s.AddClause(no, lit(d, false))
				all = append(all, lit(d, true))
			}
			s.AddClause(all...)
		case netlist.Or, netlist.Nor:
			inv := gate.Type == netlist.Nor
			o, no := out, nout
			if inv {
				o, no = nout, out
			}
			all := []sat.Lit{no}
			for _, d := range gate.Fanin {
				s.AddClause(o, lit(d, true))
				all = append(all, lit(d, false))
			}
			s.AddClause(all...)
		case netlist.Xor, netlist.Xnor:
			// Chain pairwise XOR through auxiliary variables; for XNOR the
			// final link is an XNOR, since ¬(x1⊕…⊕xn) = XNOR(x1⊕…⊕xn-1, xn).
			cur := varOf[gate.Fanin[0]]
			for k := 1; k < len(gate.Fanin); k++ {
				last := k == len(gate.Fanin)-1
				next := varOf[g]
				if !last {
					next = s.AddVar()
				}
				if last && gate.Type == netlist.Xnor {
					encodeXnor(s, next, cur, varOf[gate.Fanin[k]])
				} else {
					encodeXor(s, next, cur, varOf[gate.Fanin[k]])
				}
				cur = next
			}
		}
	}

	s.AddClause(lit(target, false))
	switch s.Solve(conflictBudget) {
	case sat.Unsat:
		return nil, Untestable, nil
	case sat.Unknown:
		return nil, Aborted, nil
	}
	view := netlist.NewScanView(c)
	vec := make(pattern.Vector, view.NumInputs())
	for slot, g := range view.Inputs {
		if varOf[g] < 0 {
			vec[slot] = logic.X
			continue
		}
		vec[slot] = logic.FromBit(boolToBit(s.Value(varOf[g])))
	}
	return vec, Success, nil
}

func boolToBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// encodeXor adds clauses for o <-> a XOR b.
func encodeXor(s *sat.Solver, o, a, b int) {
	O, A, B := sat.MkLit(o, false), sat.MkLit(a, false), sat.MkLit(b, false)
	NO, NA, NB := O.Not(), A.Not(), B.Not()
	s.AddClause(NO, A, B)
	s.AddClause(NO, NA, NB)
	s.AddClause(O, NA, B)
	s.AddClause(O, A, NB)
}

// encodeXnor adds clauses for o <-> (a == b).
func encodeXnor(s *sat.Solver, o, a, b int) {
	O, A, B := sat.MkLit(o, false), sat.MkLit(a, false), sat.MkLit(b, false)
	NO, NA, NB := O.Not(), A.Not(), B.Not()
	s.AddClause(NO, A, NB)
	s.AddClause(NO, NA, B)
	s.AddClause(O, A, B)
	s.AddClause(O, NA, NB)
}
