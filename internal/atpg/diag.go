package atpg

import (
	"context"
	"math/rand"
	"sort"

	"sddict/internal/core"
	"sddict/internal/fault"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/resp"
)

// DiagConfig controls diagnostic test-set generation.
type DiagConfig struct {
	// Seed drives random fills and PODEM diversification.
	Seed int64
	// BacktrackLimit is the per-pair miter-PODEM backtrack budget.
	BacktrackLimit int
	// RetryBacktrackLimit is a second, larger budget tried once when the
	// first attempt aborts; 0 disables the retry.
	RetryBacktrackLimit int
	// MaxRounds bounds the refine/distinguish iterations.
	MaxRounds int
	// PairAttemptsPerGroup caps distinguishing attempts per response group
	// per round.
	PairAttemptsPerGroup int
	// MaxMiterCalls caps total miter ATPG invocations (0 = unlimited).
	MaxMiterCalls int
	// MaxRandomBatches caps the 64-pattern random batches of the cheap
	// random distinguishing phase that precedes miter ATPG.
	MaxRandomBatches int
	// UselessBatchLimit stops the random phase after this many consecutive
	// batches that split no group.
	UselessBatchLimit int
	// SATConflictBudget enables a SAT-solver fallback on the miter when
	// PODEM aborts: the complete procedure either finds a distinguishing
	// test or proves the pair equivalent within this many conflicts.
	// 0 disables the fallback.
	SATConflictBudget int64
	// MaxSATCalls caps fallback invocations per run (0 = 200).
	MaxSATCalls int
}

// DefaultDiagConfig returns a reasonable diagnostic-generation setup.
func DefaultDiagConfig() DiagConfig {
	return DiagConfig{
		BacktrackLimit:       150,
		RetryBacktrackLimit:  3000,
		MaxRounds:            80,
		PairAttemptsPerGroup: 3,
		MaxRandomBatches:     400,
		UselessBatchLimit:    12,
		SATConflictBudget:    8000,
		MaxSATCalls:          100,
	}
}

// DiagStats reports the outcome of diagnostic test generation.
type DiagStats struct {
	BaseTests   int   // tests inherited from the detection set
	RandomTests int   // random distinguishing tests kept
	AddedTests  int   // miter-generated distinguishing tests added
	Equivalent  int64 // fault pairs proven functionally equivalent
	Aborted     int64 // fault pairs abandoned at the backtrack limit
	Rounds      int
	MiterCalls  int
	SATCalls    int // SAT fallback invocations
	// IndistPairs is the number of fault pairs left with identical full
	// responses under the final test set (the paper's "full" column).
	IndistPairs int64
	// Interrupted is set when generation stopped early on context
	// cancellation or deadline; the returned test set is valid but some
	// response-identical pairs were never targeted.
	Interrupted bool
}

// GenerateDiagnostic extends a detection test set into a diagnostic test
// set: fault pairs with identical full responses under the current tests
// are targeted one at a time with miter ATPG (a test driving the
// two-faulty-copy miter output to 1 distinguishes the pair), until every
// remaining pair is proven equivalent or exceeds the effort budget.
func GenerateDiagnostic(c *netlist.Circuit, faults []fault.Fault, base *pattern.Set, cfg DiagConfig) (*pattern.Set, DiagStats) {
	return GenerateDiagnosticCtx(context.Background(), c, faults, base, cfg)
}

// GenerateDiagnosticCtx is GenerateDiagnostic under a context, honoured at
// batch, pair and PODEM-decision granularity. On cancellation it degrades
// gracefully: the distinguishing tests added so far are kept and the base
// detection set is never lost; DiagStats.Interrupted is set.
func GenerateDiagnosticCtx(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, base *pattern.Set, cfg DiagConfig) (*pattern.Set, DiagStats) {
	if ctx == nil {
		ctx = context.Background()
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	view := netlist.NewScanView(c)
	tests := base.Clone()
	stats := DiagStats{BaseTests: base.Len()}

	// Partition faults by full response under the current tests, and track
	// which faults the base tests detect at all. If even this initial
	// simulation is cancelled the partition is meaningless, so return the
	// base set unchanged.
	p := core.NewPartition(len(faults))
	detected := make([]bool, len(faults))
	{
		m, err := resp.BuildCtx(ctx, view, faults, tests)
		if err != nil {
			stats.Interrupted = true
			return tests, stats
		}
		for j := 0; j < m.K; j++ {
			p.RefineByClass(m.Class[j])
			for i := 0; i < m.N; i++ {
				if m.Class[j][i] != 0 {
					detected[i] = true
				}
			}
		}
	}

	// refineWith refines the partition by new tests, fault-simulating only
	// the faults still sharing a group: isolated faults can never rejoin a
	// group, so their responses are irrelevant — this keeps late rounds
	// cheap when only a handful of groups survive.
	refineWith := func(newTests *pattern.Set) {
		if newTests.Len() == 0 {
			return
		}
		var live []int32
		for i := 0; i < p.Len(); i++ {
			if p.Label(i) != core.Isolated {
				live = append(live, int32(i))
			}
		}
		if len(live) == 0 {
			return
		}
		sub := make([]fault.Fault, len(live))
		for li, fi := range live {
			sub[li] = faults[fi]
		}
		m := resp.Build(view, sub, newTests)
		row := make([]int32, len(faults))
		for j := 0; j < m.K; j++ {
			for li, fi := range live {
				row[fi] = m.Class[j][li]
			}
			p.RefineByClass(row)
		}
	}

	type pairKey struct{ a, b int32 }
	unresolvable := make(map[pairKey]bool)
	seen := make(map[string]bool, tests.Len())
	for _, v := range tests.Vecs {
		seen[v.Key()] = true
	}
	mkKey := func(a, b int32) pairKey {
		if a > b {
			a, b = b, a
		}
		return pairKey{a, b}
	}

	budget := func() bool {
		return cfg.MaxMiterCalls == 0 || stats.MiterCalls < cfg.MaxMiterCalls
	}

	// quickDistinguish tries to separate a pair without a miter: fresh
	// randomized detection cubes for either fault often already produce
	// different responses. This is far cheaper than miter PODEM (the
	// engine runs on the original circuit, not the doubled one) and
	// resolves most pairs on large circuits.
	quickEng := NewEngine(c)
	quickEng.BacktrackLimit = cfg.BacktrackLimit
	quickEng.Randomize(r)
	quickEng.SetContext(ctx)
	quickDistinguish := func(a, b int32) (pattern.Vector, bool) {
		for attempt := 0; attempt < 6; attempt++ {
			target := faults[a]
			if attempt%2 == 1 {
				target = faults[b]
			}
			cube, status := quickEng.Generate(target)
			if status != Success {
				continue
			}
			v := cube.Clone()
			v.RandomFill(r)
			if Distinguishes(c, faults[a], faults[b], v) {
				return v, true
			}
		}
		return nil, false
	}

	// randomPhase keeps random patterns that split any live response
	// group; it resolves easy pairs far more cheaply than miter ATPG. It
	// runs before the miter rounds and once more after them (the remaining
	// groups are small by then, so late random luck is cheap to harvest).
	randomPhase := func(patience int) {
		useless := 0
		row := make([]int32, len(faults))
		for b := 0; b < cfg.MaxRandomBatches && useless < patience && p.Pairs() > 0; b++ {
			if ctx.Err() != nil {
				stats.Interrupted = true
				return
			}
			// Simulate only faults still sharing a group.
			var live []int32
			for i := 0; i < p.Len(); i++ {
				if p.Label(i) != core.Isolated {
					live = append(live, int32(i))
				}
			}
			if len(live) == 0 {
				return
			}
			sub := make([]fault.Fault, len(live))
			for li, fi := range live {
				sub[li] = faults[fi]
			}
			cand := pattern.NewSet(tests.Width)
			for i := 0; i < 64; i++ {
				cand.Add(pattern.Random(r, tests.Width))
			}
			m := resp.Build(view, sub, cand)
			kept := 0
			for j := 0; j < m.K; j++ {
				for li, fi := range live {
					row[fi] = m.Class[j][li]
				}
				if removed := p.RefineByClass(row); removed > 0 {
					v := cand.Vecs[j]
					if k := v.Key(); !seen[k] {
						seen[k] = true
						tests.Add(v)
						kept++
					}
				}
			}
			if kept == 0 {
				useless++
			} else {
				useless = 0
				stats.RandomTests += kept
			}
		}
	}
	randomPhase(cfg.UselessBatchLimit)

	// Redundancy screening: faults no test has detected are either hard or
	// genuinely untestable. One SAT call on the detection miter settles
	// each: UNSAT proves the fault redundant — and since redundant faults
	// always produce the fault-free response, every pair of them is
	// functionally equivalent, which removes those pairs from the miter
	// workload wholesale. A SAT answer instead contributes a fresh
	// detecting (hence group-splitting) test.
	redundant := make([]bool, len(faults))
	satUseless := 0 // consecutive budget-outs; the circuit's proofs are too hard
	if cfg.SATConflictBudget > 0 {
		fresh := pattern.NewSet(tests.Width)
		for i := range faults {
			if ctx.Err() != nil {
				stats.Interrupted = true
				break
			}
			if detected[i] || p.Label(i) == core.Isolated {
				continue
			}
			if cfg.MaxSATCalls > 0 && stats.SATCalls >= cfg.MaxSATCalls || satUseless >= 5 {
				break
			}
			miter, err := BuildDetectionMiter(c, faults[i])
			if err != nil {
				continue
			}
			stats.SATCalls++
			v, status, err := SolveOutputOne(miter, miter.POs[0], cfg.SATConflictBudget)
			if err != nil {
				continue
			}
			switch status {
			case Untestable:
				redundant[i] = true
				satUseless = 0
			case Success:
				satUseless = 0
				v = v.Clone()
				v.RandomFill(r)
				if k := v.Key(); !seen[k] {
					seen[k] = true
					fresh.Add(v)
					tests.Add(v)
				}
			default:
				satUseless++
			}
		}
		refineWith(fresh)
		stats.AddedTests += fresh.Len()
	}

	for round := 0; round < cfg.MaxRounds && budget() && !stats.Interrupted; round++ {
		if ctx.Err() != nil {
			stats.Interrupted = true
			break
		}
		stats.Rounds = round + 1
		groups := groupMembers(p)
		added := pattern.NewSet(tests.Width)
		attemptedAny := false
		for _, members := range groups {
			attempts := 0
			// Try pairs within the group until one succeeds or the budget
			// for this group is spent.
		pairLoop:
			for ai := 0; ai < len(members) && attempts < cfg.PairAttemptsPerGroup; ai++ {
				for bi := ai + 1; bi < len(members) && attempts < cfg.PairAttemptsPerGroup; bi++ {
					a, b := members[ai], members[bi]
					if unresolvable[mkKey(a, b)] {
						continue
					}
					if redundant[a] && redundant[b] {
						// Two proven-redundant faults both behave exactly
						// like the fault-free circuit: equivalent.
						unresolvable[mkKey(a, b)] = true
						stats.Equivalent++
						continue
					}
					if !budget() {
						break pairLoop
					}
					if ctx.Err() != nil {
						stats.Interrupted = true
						break pairLoop
					}
					attempts++
					attemptedAny = true
					if v, ok := quickDistinguish(a, b); ok {
						if k := v.Key(); !seen[k] {
							seen[k] = true
							added.Add(v)
						}
						break pairLoop
					}
					stats.MiterCalls++
					cube, status, err := DistinguishCtx(ctx, c, faults[a], faults[b], cfg.BacktrackLimit)
					if err == nil && status == Aborted && ctx.Err() == nil && cfg.RetryBacktrackLimit > cfg.BacktrackLimit {
						cube, status, err = DistinguishCtx(ctx, c, faults[a], faults[b], cfg.RetryBacktrackLimit)
					}
					if err == nil && status == Aborted && cfg.SATConflictBudget > 0 && satUseless < 5 &&
						(cfg.MaxSATCalls == 0 || stats.SATCalls < cfg.MaxSATCalls) {
						// Complete fallback: Tseitin-encode the miter.
						if miter, merr := BuildMiter(c, faults[a], faults[b]); merr == nil {
							if v, sstatus, serr := SolveOutputOne(miter, miter.POs[0], cfg.SATConflictBudget); serr == nil {
								stats.SATCalls++
								if sstatus == Aborted {
									satUseless++
								} else {
									satUseless = 0
								}
								cube, status = v, sstatus
							}
						}
					}
					switch {
					case err != nil:
						unresolvable[mkKey(a, b)] = true
						stats.Aborted++
					case status == Success:
						v := cube.Clone()
						v.RandomFill(r)
						if k := v.Key(); !seen[k] {
							seen[k] = true
							added.Add(v)
						}
						break pairLoop
					case status == Untestable:
						unresolvable[mkKey(a, b)] = true
						stats.Equivalent++
					default: // Aborted
						unresolvable[mkKey(a, b)] = true
						stats.Aborted++
					}
				}
			}
		}
		if added.Len() == 0 {
			if !attemptedAny {
				break // every remaining pair is marked unresolvable
			}
			continue
		}
		added.Dedup()
		for _, v := range added.Vecs {
			tests.Add(v)
		}
		refineWith(added)
		stats.AddedTests += added.Len()
	}
	randomPhase(4 * cfg.UselessBatchLimit)
	stats.IndistPairs = p.Pairs()
	return tests, stats
}

// groupMembers lists the members of every live group of p.
func groupMembers(p *core.Partition) [][]int32 {
	byLabel := make(map[int32][]int32)
	for i := 0; i < p.Len(); i++ {
		if l := p.Label(i); l != core.Isolated {
			byLabel[l] = append(byLabel[l], int32(i))
		}
	}
	groups := make([][]int32, 0, len(byLabel))
	for _, m := range byLabel {
		groups = append(groups, m)
	}
	// Deterministic order: by smallest member (map iteration is random).
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}
