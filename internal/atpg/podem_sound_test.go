package atpg

import (
	"math/rand"
	"testing"

	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/sim"
)

// TestPodemVsRandomSim cross-validates PODEM's Untestable verdicts against
// random-simulation ground truth: a fault detected by any random pattern
// must never be declared untestable.
func TestPodemVsRandomSim(t *testing.T) {
	comb := netlist.Combinationalize(gen.Profiles["s208"].MustGenerate(4))
	col := fault.Collapse(comb)
	view := netlist.NewScanView(comb)
	s := sim.New(view)
	r := rand.New(rand.NewSource(123))
	detected := make([]bool, len(col.Faults))
	for b := 0; b < 200; b++ {
		set := pattern.NewSet(view.NumInputs())
		for i := 0; i < 64; i++ {
			set.Add(pattern.Random(r, view.NumInputs()))
		}
		batch := set.Pack()[0]
		s.Apply(&batch)
		for fi, f := range col.Faults {
			if detected[fi] {
				continue
			}
			if s.Propagate(f).Detect != 0 {
				detected[fi] = true
			}
		}
	}
	e := NewEngine(comb)
	e.BacktrackLimit = 60
	nSucc, nUnt, nAb := 0, 0, 0
	bugs := 0
	for fi, f := range col.Faults {
		_, status := e.Generate(f)
		switch status {
		case Success:
			nSucc++
		case Untestable:
			nUnt++
			if detected[fi] {
				bugs++
				if bugs < 10 {
					t.Errorf("fault %s: PODEM says untestable but random sim detects it", f.Name(comb))
				}
			}
		case Aborted:
			nAb++
		}
	}
	nDet := 0
	for _, d := range detected {
		if d {
			nDet++
		}
	}
	t.Logf("faults=%d randomDetected=%d podem: succ=%d unt=%d abort=%d bugs=%d",
		len(col.Faults), nDet, nSucc, nUnt, nAb, bugs)
}
