package atpg

import (
	"math/rand"
	"testing"

	"sddict/internal/core"
	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/resp"
	"sddict/internal/sim"
)

// countDetections independently fault-simulates the whole test set and
// returns the per-fault detection counts — the ground truth the generator's
// bookkeeping is validated against.
func countDetections(view *netlist.ScanView, faults []fault.Fault, tests *pattern.Set) []int {
	s := sim.New(view)
	counts := make([]int, len(faults))
	for _, batch := range tests.Pack() {
		b := batch
		s.Apply(&b)
		for fi, f := range faults {
			eff := s.Propagate(f)
			for p := 0; p < b.Count; p++ {
				if eff.Detect&(1<<uint(p)) != 0 {
					counts[fi]++
				}
			}
		}
	}
	return counts
}

func TestGenerateDetectionOneDetect(t *testing.T) {
	comb := netlist.Combinationalize(gen.Profiles["s298"].MustGenerate(1))
	col := fault.Collapse(comb)
	cfg := DefaultConfig(1)
	cfg.Seed = 9
	cfg.Compact = true
	tests, st := GenerateDetection(comb, col.Faults, cfg)
	if tests.Len() == 0 {
		t.Fatal("empty test set")
	}
	if st.Coverage() < 0.85 {
		t.Fatalf("coverage %.2f too low", st.Coverage())
	}
	// Ground truth: stats.Detected must match independent simulation.
	counts := countDetections(netlist.NewScanView(comb), col.Faults, tests)
	det := 0
	for _, c := range counts {
		if c > 0 {
			det++
		}
	}
	if det != st.Detected {
		t.Fatalf("stats.Detected = %d, simulation says %d", st.Detected, det)
	}
	// No duplicate tests.
	seen := map[string]bool{}
	for _, v := range tests.Vecs {
		k := v.Key()
		if seen[k] {
			t.Fatalf("duplicate test %s", k)
		}
		seen[k] = true
		if !v.FullySpecified() {
			t.Fatalf("test %s not fully specified", k)
		}
	}
}

func TestGenerateDetectionTenDetect(t *testing.T) {
	comb := netlist.Combinationalize(gen.Profiles["s298"].MustGenerate(1))
	col := fault.Collapse(comb)
	cfg := DefaultConfig(10)
	cfg.Seed = 10
	tests, st := GenerateDetection(comb, col.Faults, cfg)
	counts := countDetections(netlist.NewScanView(comb), col.Faults, tests)
	nDet := 0
	for _, c := range counts {
		if c >= 10 {
			nDet++
		}
	}
	if nDet != st.NDetected {
		t.Fatalf("stats.NDetected = %d, simulation says %d", st.NDetected, nDet)
	}
	if float64(nDet) < 0.8*float64(st.Detected) {
		t.Fatalf("only %d/%d detected faults reach 10 detections", nDet, st.Detected)
	}
	// A 10-detect set must be larger than a compacted 1-detect set.
	cfg1 := DefaultConfig(1)
	cfg1.Seed = 10
	cfg1.Compact = true
	tests1, _ := GenerateDetection(comb, col.Faults, cfg1)
	if tests.Len() <= tests1.Len() {
		t.Errorf("10det (%d tests) not larger than 1det (%d tests)", tests.Len(), tests1.Len())
	}
}

// TestCompactPreservesCoverage: compaction must not lose any detected
// fault.
func TestCompactPreservesCoverage(t *testing.T) {
	comb := netlist.Combinationalize(gen.Profiles["s344"].MustGenerate(3))
	col := fault.Collapse(comb)
	view := netlist.NewScanView(comb)
	r := rand.New(rand.NewSource(33))
	tests := pattern.NewSet(view.NumInputs())
	for i := 0; i < 200; i++ {
		tests.Add(pattern.Random(r, view.NumInputs()))
	}
	before := countDetections(view, col.Faults, tests)
	compacted := Compact(view, col.Faults, tests)
	if compacted.Len() >= tests.Len() {
		t.Errorf("compaction did not shrink: %d -> %d", tests.Len(), compacted.Len())
	}
	after := countDetections(view, col.Faults, compacted)
	for fi := range col.Faults {
		if before[fi] > 0 && after[fi] == 0 {
			t.Fatalf("compaction lost fault %s", col.Faults[fi].Name(comb))
		}
	}
}

func TestGenerateDetectionMaxTests(t *testing.T) {
	comb := netlist.Combinationalize(gen.Profiles["s298"].MustGenerate(1))
	col := fault.Collapse(comb)
	cfg := DefaultConfig(10)
	cfg.Seed = 4
	cfg.MaxTests = 40
	tests, _ := GenerateDetection(comb, col.Faults, cfg)
	if tests.Len() > 40 {
		t.Fatalf("MaxTests violated: %d tests", tests.Len())
	}
}

// TestGenerateDiagnosticImprovesResolution: the diagnostic extension must
// strictly reduce (or at worst keep) the number of response-identical fault
// pairs relative to the detection base, and every added test must be new.
func TestGenerateDiagnosticImprovesResolution(t *testing.T) {
	comb := netlist.Combinationalize(gen.Profiles["s298"].MustGenerate(1))
	col := fault.Collapse(comb)
	cfg := DefaultConfig(1)
	cfg.Seed = 5
	cfg.Compact = true
	base, _ := GenerateDetection(comb, col.Faults, cfg)

	pairsOf := func(tests *pattern.Set) int64 {
		m, _ := pairsHelper(comb, col.Faults, tests)
		return m
	}
	basePairs := pairsOf(base)

	dcfg := DefaultDiagConfig()
	dcfg.Seed = 6
	diag, st := GenerateDiagnostic(comb, col.Faults, base, dcfg)
	if diag.Len() < base.Len() {
		t.Fatalf("diagnostic set smaller than base")
	}
	diagPairs := pairsOf(diag)
	if diagPairs > basePairs {
		t.Fatalf("diagnostic generation worsened resolution: %d -> %d", basePairs, diagPairs)
	}
	if st.AddedTests > 0 && diagPairs >= basePairs {
		t.Errorf("added %d tests but resolution unchanged (%d pairs)", st.AddedTests, diagPairs)
	}
	if st.IndistPairs != diagPairs {
		t.Fatalf("stats.IndistPairs = %d, recomputed %d", st.IndistPairs, diagPairs)
	}
	// The aborted+equivalent pairs bound the remaining groups' pair count
	// only loosely, but there must be no unmarked distinguishable pair
	// left when the generator stopped before MaxRounds.
	if st.Rounds < dcfg.MaxRounds && st.IndistPairs > st.Equivalent+st.Aborted {
		t.Logf("note: %d pairs remain with %d equivalent and %d aborted marks",
			st.IndistPairs, st.Equivalent, st.Aborted)
	}
}

// pairsHelper counts fault pairs with identical full responses under the
// test set, plus the number of distinct response groups.
func pairsHelper(c *netlist.Circuit, faults []fault.Fault, tests *pattern.Set) (int64, int) {
	m := resp.Build(netlist.NewScanView(c), faults, tests)
	p := core.NewPartition(len(faults))
	for j := 0; j < m.K; j++ {
		p.RefineByClass(m.Class[j])
	}
	return p.Pairs(), len(p.GroupSizes())
}
