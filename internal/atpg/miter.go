package atpg

import (
	"context"
	"fmt"

	"sddict/internal/fault"
	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/sim"
)

// BuildMiter constructs the distinguishing miter of two faults over a
// combinational circuit: two copies of the circuit sharing the primary
// inputs, with fa injected in copy A and fb in copy B, every output pair
// XORed and the XORs ORed into a single output. Any input vector that sets
// the miter output to 1 produces different responses under the two faults,
// i.e. distinguishes the pair; the miter output is 1-satisfiable exactly
// when the pair is distinguishable.
//
// The miter's primary inputs are in the same order as c's, so test cubes
// found on the miter apply directly to c.
func BuildMiter(c *netlist.Circuit, fa, fb fault.Fault) (*netlist.Circuit, error) {
	return buildMiter(c, &fa, &fb, fmt.Sprintf("miter(%s,%s)", fa.Name(c), fb.Name(c)))
}

// BuildDetectionMiter constructs the miter of the fault-free circuit and a
// copy with f injected: inputs driving its output to 1 are exactly the
// tests detecting f. Together with a SAT solver this is a complete test
// generator and redundancy prover.
func BuildDetectionMiter(c *netlist.Circuit, f fault.Fault) (*netlist.Circuit, error) {
	return buildMiter(c, nil, &f, fmt.Sprintf("detect(%s)", f.Name(c)))
}

// buildMiter builds a two-copy XOR/OR miter; a nil fault leaves that copy
// fault-free.
func buildMiter(c *netlist.Circuit, fa, fb *fault.Fault, name string) (*netlist.Circuit, error) {
	if len(c.DFFs) != 0 {
		return nil, fmt.Errorf("atpg: miter requires a combinational circuit")
	}
	b := netlist.NewBuilder(name)
	pis := make([]int32, len(c.PIs))
	for i, pi := range c.PIs {
		pis[i] = b.Input(c.Gates[pi].Name)
	}

	// copyInto adds one (possibly faulty) copy of the circuit and returns
	// its primary output lines.
	copyInto := func(tag string, f *fault.Fault) []int32 {
		var konst int32
		if f != nil {
			konst = b.Const(fmt.Sprintf("%s_sa%d", tag, f.Stuck), int(f.Stuck))
		}
		lineOf := make([]int32, len(c.Gates)) // value line seen by readers of each gate
		piIdx := 0
		for i := range c.Gates {
			g := &c.Gates[i]
			var ng int32
			if g.Type == netlist.Input {
				ng = pis[piIdx]
				piIdx++
			} else {
				fanin := make([]int32, len(g.Fanin))
				for pin, d := range g.Fanin {
					if f != nil && !f.IsStem() && f.Gate == int32(i) && int32(pin) == f.Pin {
						fanin[pin] = konst
					} else {
						fanin[pin] = lineOf[d]
					}
				}
				ng = b.Gate(g.Type, tag+"_"+g.Name, fanin...)
			}
			if f != nil && f.IsStem() && f.Gate == int32(i) {
				lineOf[i] = konst
			} else {
				lineOf[i] = ng
			}
		}
		outs := make([]int32, len(c.POs))
		for oi, po := range c.POs {
			outs[oi] = lineOf[po]
		}
		return outs
	}

	outsA := copyInto("a", fa)
	outsB := copyInto("b", fb)

	// XOR per output, then an OR tree.
	xors := make([]int32, len(outsA))
	for i := range outsA {
		xors[i] = b.Gate(netlist.Xor, fmt.Sprintf("x%d", i), outsA[i], outsB[i])
	}
	for len(xors) > 1 {
		var next []int32
		for i := 0; i < len(xors); i += 2 {
			if i+1 < len(xors) {
				next = append(next, b.Gate(netlist.Or, "", xors[i], xors[i+1]))
			} else {
				next = append(next, xors[i])
			}
		}
		xors = next
	}
	b.Output(xors[0])
	return b.Build()
}

// Distinguish searches for a test that produces different output responses
// under faults fa and fb on the combinational circuit c. It runs PODEM on
// the miter, targeting stuck-at-0 on the miter output (whose test is any
// vector driving the output to 1). The returned cube is over c's inputs.
func Distinguish(c *netlist.Circuit, fa, fb fault.Fault, backtrackLimit int) (pattern.Vector, Status, error) {
	return DistinguishCtx(context.Background(), c, fa, fb, backtrackLimit)
}

// DistinguishCtx is Distinguish under a context: a cancelled or expired
// context aborts the miter PODEM run (status Aborted, no error).
func DistinguishCtx(ctx context.Context, c *netlist.Circuit, fa, fb fault.Fault, backtrackLimit int) (pattern.Vector, Status, error) {
	m, err := BuildMiter(c, fa, fb)
	if err != nil {
		return nil, Aborted, err
	}
	e := NewEngine(m)
	e.BacktrackLimit = backtrackLimit
	e.SetContext(ctx)
	cube, status := e.Generate(fault.Fault{Gate: m.POs[0], Pin: fault.StemPin, Stuck: 0})
	if status != Success {
		return nil, status, nil
	}
	// Miter PIs are ordered like c's PIs; the cube maps across directly.
	return cube, Success, nil
}

// Distinguishes verifies by simulation that the fully specified vector vec
// yields different responses under fa and fb on combinational circuit c.
func Distinguishes(c *netlist.Circuit, fa, fb fault.Fault, vec pattern.Vector) bool {
	view := netlist.NewScanView(c)
	ra := sim.RefFaultOutputs(view, fa, vec)
	rb := sim.RefFaultOutputs(view, fb, vec)
	return !ra.Equal(rb)
}

// VectorDetects verifies by simulation that vec detects fault f on
// combinational circuit c.
func VectorDetects(c *netlist.Circuit, f fault.Fault, vec pattern.Vector) bool {
	view := netlist.NewScanView(c)
	good := goodOutputs(view, vec)
	return !sim.RefFaultOutputs(view, f, vec).Equal(good)
}

func goodOutputs(view *netlist.ScanView, vec pattern.Vector) logic.BitVec {
	vals := sim.EvalTernary(view, vec)
	out := logic.NewBitVec(view.NumOutputs())
	for slot, g := range view.Outputs {
		out.Set(slot, vals[g].Bit())
	}
	return out
}
