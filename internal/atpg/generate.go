package atpg

import (
	"context"
	"math/rand"

	"sddict/internal/fault"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/sim"
)

// Config controls detection test-set generation.
type Config struct {
	// Seed drives random patterns and PODEM diversification.
	Seed int64
	// NDetect is the number of distinct tests that must detect each fault
	// (1 for a plain detection set, 10 for the paper's 10-detection sets).
	NDetect int
	// BacktrackLimit is the per-fault PODEM backtrack budget.
	BacktrackLimit int
	// MaxRandomBatches caps the 64-pattern random batches tried.
	MaxRandomBatches int
	// UselessBatchLimit stops the random phase after this many consecutive
	// batches that contributed no kept pattern.
	UselessBatchLimit int
	// TopUpRounds bounds the deterministic top-up sweeps.
	TopUpRounds int
	// MaxTests caps the final test count (0 = unlimited).
	MaxTests int
	// Compact runs reverse-order fault-simulation compaction on the result
	// (only meaningful for NDetect == 1).
	Compact bool
	// SATConflictBudget enables a SAT detection-miter fallback for faults
	// PODEM abandons: within the budget every such fault is either given a
	// test or proven redundant. 0 disables the fallback.
	SATConflictBudget int64
}

// DefaultConfig returns a reasonable configuration for n-detection
// generation.
func DefaultConfig(nDetect int) Config {
	return Config{
		NDetect:           nDetect,
		BacktrackLimit:    300,
		MaxRandomBatches:  400,
		UselessBatchLimit: 8,
		TopUpRounds:       6,
		SATConflictBudget: 5000,
	}
}

// GenStats reports how a test set was produced.
type GenStats struct {
	RandomTests int // tests kept from the random phase
	PodemTests  int // tests added by deterministic top-up
	Untestable  int // faults proven redundant
	Aborted     int // faults abandoned at the backtrack limit
	Detected    int // faults detected at least once
	NDetected   int // faults detected at least NDetect times
	Faults      int // faults targeted
	// Interrupted is set when generation stopped early on context
	// cancellation or deadline; the returned test set is valid but may
	// leave faults short of their detection targets.
	Interrupted bool
}

// Coverage returns the single-detection fault coverage over the targeted
// faults.
func (s GenStats) Coverage() float64 {
	if s.Faults == 0 {
		return 0
	}
	return float64(s.Detected) / float64(s.Faults)
}

// GenerateDetection builds an n-detection test set for the given faults on
// a combinational circuit: a random-pattern phase keeps patterns that give
// some fault a still-needed detection, then PODEM tops up the faults left
// short. Untestable faults are excluded from the targets once proven
// redundant.
func GenerateDetection(c *netlist.Circuit, faults []fault.Fault, cfg Config) (*pattern.Set, GenStats) {
	return GenerateDetectionCtx(context.Background(), c, faults, cfg)
}

// GenerateDetectionCtx is GenerateDetection under a context, honoured at
// batch, fault and PODEM-decision granularity. On cancellation it degrades
// gracefully: the tests kept so far are returned (every one of them earned
// its place by detecting some fault) with GenStats.Interrupted set.
func GenerateDetectionCtx(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, cfg Config) (*pattern.Set, GenStats) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.NDetect < 1 {
		cfg.NDetect = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	view := netlist.NewScanView(c)
	s := sim.New(view)
	width := view.NumInputs()
	tests := pattern.NewSet(width)
	stats := GenStats{Faults: len(faults)}

	counts := make([]int, len(faults))
	dead := make([]bool, len(faults)) // untestable or given up
	active := func() []int {
		var a []int
		for i := range faults {
			if !dead[i] && counts[i] < cfg.NDetect {
				a = append(a, i)
			}
		}
		return a
	}
	full := func(tests *pattern.Set) bool {
		return cfg.MaxTests > 0 && tests.Len() >= cfg.MaxTests
	}
	// The random phase leaves head-room under MaxTests so deterministic
	// top-up can still target the faults random patterns missed.
	randomCap := cfg.MaxTests
	if randomCap > 0 {
		reserve := randomCap / 5
		if reserve > 500 {
			reserve = 500
		}
		randomCap -= reserve
	}
	randomFull := func(tests *pattern.Set) bool {
		return randomCap > 0 && tests.Len() >= randomCap
	}

	// simulateCandidates fault-simulates a candidate batch and appends the
	// patterns that supply a needed detection, updating counts.
	detWords := make([]uint64, len(faults))
	simulateCandidates := func(cand []pattern.Vector) int {
		set := pattern.NewSet(width)
		for _, v := range cand {
			set.Add(v)
		}
		batch := set.Pack()[0]
		s.Apply(&batch)
		act := active()
		for _, fi := range act {
			detWords[fi] = s.Propagate(faults[fi]).Detect
		}
		kept := 0
		for p := 0; p < batch.Count; p++ {
			if full(tests) {
				break
			}
			bit := uint64(1) << uint(p)
			useful := false
			for _, fi := range act {
				if detWords[fi]&bit != 0 && counts[fi] < cfg.NDetect {
					useful = true
					break
				}
			}
			if !useful {
				continue
			}
			tests.Add(cand[p])
			kept++
			for _, fi := range act {
				if detWords[fi]&bit != 0 {
					counts[fi]++
				}
			}
		}
		return kept
	}

	// Random phase.
	useless := 0
	for b := 0; b < cfg.MaxRandomBatches && useless < cfg.UselessBatchLimit && !randomFull(tests); b++ {
		if ctx.Err() != nil {
			stats.Interrupted = true
			break
		}
		if len(active()) == 0 {
			break
		}
		cand := make([]pattern.Vector, 64)
		for i := range cand {
			cand[i] = pattern.Random(r, width)
		}
		if kept := simulateCandidates(cand); kept == 0 {
			useless++
		} else {
			useless = 0
			stats.RandomTests += kept
		}
	}

	// Deterministic top-up.
	eng := NewEngine(c)
	eng.BacktrackLimit = cfg.BacktrackLimit
	eng.Randomize(r)
	eng.SetContext(ctx)
	abortTries := make([]int, len(faults))
	seen := make(map[string]bool, tests.Len())
	for _, v := range tests.Vecs {
		seen[v.Key()] = true
	}
	for round := 0; round < cfg.TopUpRounds && !full(tests); round++ {
		pending := active()
		if len(pending) == 0 {
			break
		}
		progress := false
		for _, fi := range pending {
			if ctx.Err() != nil {
				stats.Interrupted = true
				break
			}
			if counts[fi] >= cfg.NDetect || dead[fi] || full(tests) {
				continue
			}
			cube, status := eng.Generate(faults[fi])
			if status == Aborted && abortTries[fi] >= 1 && cfg.SATConflictBudget > 0 {
				// Second structural abort: escalate to the complete SAT
				// procedure on the detection miter.
				if miter, merr := BuildDetectionMiter(c, faults[fi]); merr == nil {
					if v, sstatus, serr := SolveOutputOne(miter, miter.POs[0], cfg.SATConflictBudget); serr == nil {
						cube, status = v, sstatus
					}
				}
			}
			switch status {
			case Untestable:
				dead[fi] = true
				stats.Untestable++
				progress = true
				continue
			case Aborted:
				abortTries[fi]++
				if abortTries[fi] >= 2 {
					dead[fi] = true
					stats.Aborted++
				}
				progress = true // state advanced toward giving up
				continue
			}
			need := cfg.NDetect - counts[fi]
			var fills []pattern.Vector
			for attempt := 0; attempt < 4*need && len(fills) < need; attempt++ {
				v := cube.Clone()
				v.RandomFill(r)
				if k := v.Key(); !seen[k] {
					seen[k] = true
					fills = append(fills, v)
				}
			}
			if len(fills) == 0 {
				// The cube's fills are all already in the set, yet the
				// fault is short on detections: the cube must overlap
				// existing tests that detect other faults. Count it dead to
				// avoid spinning.
				dead[fi] = true
				stats.Aborted++
				continue
			}
			if kept := simulateCandidates(fills); kept > 0 {
				stats.PodemTests += kept
				progress = true
			}
		}
		if !progress || stats.Interrupted {
			break
		}
	}

	// Compaction is an optimization, not a correctness step: skip it when
	// already interrupted rather than start more fault simulation.
	if cfg.Compact && cfg.NDetect == 1 && !stats.Interrupted && ctx.Err() == nil {
		tests = Compact(view, faults, tests)
	}
	for i := range faults {
		if counts[i] > 0 {
			stats.Detected++
		}
		if counts[i] >= cfg.NDetect {
			stats.NDetected++
		}
	}
	return tests, stats
}

// Compact performs reverse-order fault-simulation compaction: tests are
// fault-simulated newest-first with fault dropping, and tests that detect
// no still-undetected fault are removed. The surviving tests keep their
// original relative order.
func Compact(view *netlist.ScanView, faults []fault.Fault, tests *pattern.Set) *pattern.Set {
	s := sim.New(view)
	detected := make([]bool, len(faults))
	keep := make([]bool, tests.Len())

	// Walk 64-test windows from the end; within a window, examine patterns
	// from the highest index down.
	for start := ((tests.Len() - 1) / 64) * 64; start >= 0; start -= 64 {
		end := start + 64
		if end > tests.Len() {
			end = tests.Len()
		}
		window := pattern.NewSet(tests.Width)
		for _, v := range tests.Vecs[start:end] {
			window.Add(v)
		}
		batch := window.Pack()[0]
		s.Apply(&batch)
		det := make([]uint64, 0, len(faults))
		live := make([]int, 0, len(faults))
		for fi := range faults {
			if detected[fi] {
				continue
			}
			live = append(live, fi)
			det = append(det, s.Propagate(faults[fi]).Detect)
		}
		for p := batch.Count - 1; p >= 0; p-- {
			bit := uint64(1) << uint(p)
			useful := false
			for li, fi := range live {
				if detected[fi] || det[li]&bit == 0 {
					continue
				}
				useful = true
				detected[fi] = true
			}
			keep[start+p] = useful
		}
	}

	out := pattern.NewSet(tests.Width)
	for i, v := range tests.Vecs {
		if keep[i] {
			out.Add(v)
		}
	}
	return out
}
