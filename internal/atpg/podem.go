// Package atpg generates test sets: a PODEM engine for single stuck-at
// faults, random-pattern generation with fault-simulation screening,
// n-detection test sets (each fault detected by at least n different
// tests), and diagnostic test sets that distinguish fault pairs through
// structural miters. All generation runs on the combinational full-scan
// form of a circuit (netlist.Combinationalize).
package atpg

import (
	"context"
	"fmt"
	"math/rand"

	"sddict/internal/fault"
	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
)

// Status is the outcome of one PODEM run.
type Status uint8

// PODEM outcomes.
const (
	// Success: a test cube detecting the fault was found.
	Success Status = iota
	// Untestable: the decision space was exhausted; the fault is redundant.
	Untestable
	// Aborted: the backtrack limit was hit before a decision.
	Aborted
)

func (s Status) String() string {
	switch s {
	case Success:
		return "success"
	case Untestable:
		return "untestable"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Engine is a PODEM test generator over one combinational circuit. It is
// reusable across faults but not safe for concurrent use.
type Engine struct {
	// BacktrackLimit bounds the number of backtracks per fault before the
	// run is abandoned as Aborted.
	BacktrackLimit int

	c    *netlist.Circuit
	view *netlist.ScanView
	val  []logic.V5
	// piVal holds the current PI decisions (ternary); val is derived from
	// it by implication.
	piVal []logic.Value
	slot  []int32 // gate -> scan input slot, or -1
	rng   *rand.Rand

	target fault.Fault
	isPO   []bool
	scoap  *netlist.SCOAP
	ctx    context.Context // optional; cancels Generate with Aborted

	// scratch
	in      []logic.V5
	visited []uint32
	visitID uint32
}

// NewEngine returns an engine for the combinational circuit c. The circuit
// must contain no flip-flops (use netlist.Combinationalize first).
func NewEngine(c *netlist.Circuit) *Engine {
	if len(c.DFFs) != 0 {
		panic("atpg: engine requires a combinational circuit; call netlist.Combinationalize")
	}
	maxFanin := 0
	for i := range c.Gates {
		if n := len(c.Gates[i].Fanin); n > maxFanin {
			maxFanin = n
		}
	}
	e := &Engine{
		BacktrackLimit: 100,
		c:              c,
		view:           netlist.NewScanView(c),
		val:            make([]logic.V5, len(c.Gates)),
		piVal:          make([]logic.Value, len(c.Gates)),
		slot:           make([]int32, len(c.Gates)),
		in:             make([]logic.V5, maxFanin),
		visited:        make([]uint32, len(c.Gates)),
	}
	for i := range e.slot {
		e.slot[i] = -1
	}
	for s, g := range e.view.Inputs {
		e.slot[g] = int32(s)
	}
	e.isPO = make([]bool, len(c.Gates))
	for _, o := range c.POs {
		e.isPO[o] = true
	}
	e.scoap = netlist.ComputeSCOAP(c)
	return e
}

// Randomize installs a random source used to diversify backtrace and
// D-frontier choices, so repeated runs on the same fault yield different
// cubes. A nil source restores deterministic behaviour.
func (e *Engine) Randomize(r *rand.Rand) { e.rng = r }

// SetContext installs a context checked once per decision of the PODEM
// search loop; when it is cancelled or past its deadline, Generate gives up
// on the current fault with Aborted. A nil context (the default) makes
// runs uninterruptible.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// Generate attempts to build a test cube for fault f. On Success the
// returned vector has a ternary value per scan input; unassigned inputs are
// X and may be filled freely without losing detection.
func (e *Engine) Generate(f fault.Fault) (pattern.Vector, Status) {
	e.target = f
	for i := range e.piVal {
		e.piVal[i] = logic.X
	}
	e.imply()

	type decision struct {
		gate    int32
		flipped bool
	}
	var stack []decision
	backtracks := 0

	for {
		if e.ctx != nil && e.ctx.Err() != nil {
			return nil, Aborted
		}
		if e.detected() {
			cube := make(pattern.Vector, e.view.NumInputs())
			for s, g := range e.view.Inputs {
				cube[s] = e.piVal[g]
			}
			return cube, Success
		}
		objGate, objVal, feasible := e.objective()
		if feasible {
			pi, v := e.backtrace(objGate, objVal)
			// Backtrace can dead-end on an already-assigned input or a
			// constant; treat that like an infeasible state.
			if e.c.Gates[pi].Type == netlist.Input && !e.piVal[pi].Known() {
				e.piVal[pi] = v
				e.imply()
				stack = append(stack, decision{gate: pi})
				continue
			}
		}
		// Dead end: flip the most recent unflipped decision; fully tried
		// decisions unwind.
		for {
			if len(stack) == 0 {
				return nil, Untestable
			}
			top := &stack[len(stack)-1]
			if !top.flipped {
				backtracks++
				if backtracks > e.BacktrackLimit {
					return nil, Aborted
				}
				top.flipped = true
				e.piVal[top.gate] = e.piVal[top.gate].Not()
				break
			}
			e.piVal[top.gate] = logic.X
			stack = stack[:len(stack)-1]
		}
		e.imply()
	}
}

// imply recomputes the five-valued value of every gate from the current PI
// assignment, injecting the target fault.
func (e *Engine) imply() {
	f := e.target
	stuckFaulty := logic.FromBit(uint64(f.Stuck))
	for _, g := range e.c.Order() {
		gate := &e.c.Gates[g]
		var v logic.V5
		switch gate.Type {
		case netlist.Input:
			v = logic.FromPair(e.piVal[g], e.piVal[g])
		case netlist.Const0:
			v = logic.Z5
		case netlist.Const1:
			v = logic.O5
		default:
			in := e.in[:len(gate.Fanin)]
			for pin, d := range gate.Fanin {
				pv := e.val[d]
				if !f.IsStem() && f.Gate == g && int32(pin) == f.Pin {
					pv = logic.FromPair(pv.Good(), stuckFaulty)
				}
				in[pin] = pv
			}
			v = eval5(gate.Type, in)
		}
		if f.IsStem() && f.Gate == g {
			v = logic.FromPair(v.Good(), stuckFaulty)
		}
		e.val[g] = v
	}
}

// eval5 evaluates one gate in the five-valued calculus.
func eval5(t netlist.GateType, in []logic.V5) logic.V5 {
	switch t {
	case netlist.Buf:
		return in[0]
	case netlist.Not:
		return in[0].Not5()
	case netlist.And, netlist.Nand:
		v := logic.O5
		for _, x := range in {
			v = logic.And5(v, x)
		}
		if t == netlist.Nand {
			v = v.Not5()
		}
		return v
	case netlist.Or, netlist.Nor:
		v := logic.Z5
		for _, x := range in {
			v = logic.Or5(v, x)
		}
		if t == netlist.Nor {
			v = v.Not5()
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := logic.Z5
		for _, x := range in {
			v = logic.Xor5(v, x)
		}
		if t == netlist.Xnor {
			v = v.Not5()
		}
		return v
	}
	panic(fmt.Sprintf("atpg: eval5 of %s", t))
}

// detected reports whether a fault effect has reached an output.
func (e *Engine) detected() bool {
	for _, g := range e.view.Outputs {
		if e.val[g].IsD() {
			return true
		}
	}
	return false
}

// faultSiteGoodValue returns the good-machine value of the faulty line (for
// branch faults, the driver's value).
func (e *Engine) faultSiteGoodValue() logic.Value {
	if e.target.IsStem() {
		return e.val[e.target.Gate].Good()
	}
	d := e.c.Gates[e.target.Gate].Fanin[e.target.Pin]
	return e.val[d].Good()
}

// objective returns the next (gate, value) objective, or feasible=false if
// the current assignment can no longer lead to a test.
func (e *Engine) objective() (g int32, v logic.Value, feasible bool) {
	want := logic.FromBit(uint64(1 - e.target.Stuck))
	siteGood := e.faultSiteGoodValue()
	if siteGood == want.Not() {
		return 0, logic.X, false // fault can never be excited now
	}
	if siteGood == logic.X {
		// Excite the fault: justify ¬stuck at the fault site.
		if e.target.IsStem() {
			return e.target.Gate, want, true
		}
		return e.c.Gates[e.target.Gate].Fanin[e.target.Pin], want, true
	}
	// Fault excited; drive the D-frontier.
	frontier := e.dFrontier()
	if len(frontier) == 0 {
		return 0, logic.X, false
	}
	if !e.xPathExists(frontier) {
		return 0, logic.X, false
	}
	pick := frontier[0]
	if e.rng != nil {
		pick = frontier[e.rng.Intn(len(frontier))]
	}
	gate := &e.c.Gates[pick]
	// Objective: set an X input of the frontier gate to the gate's
	// non-controlling value (any value for XOR-family gates).
	var xins []int32
	for _, d := range gate.Fanin {
		if e.val[d] == logic.X5 {
			xins = append(xins, d)
		}
	}
	if len(xins) == 0 {
		// Cannot happen for a frontier gate, but fail safe.
		return 0, logic.X, false
	}
	choose := xins[0]
	if e.rng != nil {
		choose = xins[e.rng.Intn(len(xins))]
	}
	switch gate.Type {
	case netlist.And, netlist.Nand:
		return choose, logic.One, true
	case netlist.Or, netlist.Nor:
		return choose, logic.Zero, true
	default: // XOR/XNOR: either value lets the effect through
		return choose, logic.Zero, true
	}
}

// dFrontier returns the gates whose output is X while at least one fanin
// carries a fault effect. For a branch fault the effect first exists on the
// faulty pin itself (not on any gate output), so the faulty gate joins the
// frontier when its pin carries a D and its output is still X.
func (e *Engine) dFrontier() []int32 {
	var frontier []int32
	for i := range e.c.Gates {
		g := int32(i)
		if e.val[g] != logic.X5 || e.c.IsSource(g) {
			continue
		}
		if !e.target.IsStem() && e.target.Gate == g {
			d := e.c.Gates[i].Fanin[e.target.Pin]
			pv := logic.FromPair(e.val[d].Good(), logic.FromBit(uint64(e.target.Stuck)))
			if pv.IsD() {
				frontier = append(frontier, g)
				continue
			}
		}
		for _, d := range e.c.Gates[i].Fanin {
			if e.val[d].IsD() {
				frontier = append(frontier, g)
				break
			}
		}
	}
	return frontier
}

// xPathExists reports whether some frontier gate reaches an output through
// X-valued gates (the classic X-path check).
func (e *Engine) xPathExists(frontier []int32) bool {
	e.visitID++
	var stack []int32
	for _, g := range frontier {
		if e.visited[g] != e.visitID {
			e.visited[g] = e.visitID
			stack = append(stack, g)
		}
	}
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if e.isPO[g] {
			return true
		}
		for _, s := range e.c.Fanout(g) {
			if e.visited[s] == e.visitID || e.val[s] != logic.X5 {
				continue
			}
			e.visited[s] = e.visitID
			stack = append(stack, s)
		}
	}
	return false
}

// backtrace walks an objective (gate must take value v) back to an
// unassigned primary input, returning the PI and the value to try.
func (e *Engine) backtrace(g int32, v logic.Value) (int32, logic.Value) {
	for {
		gate := &e.c.Gates[g]
		if gate.Type == netlist.Input {
			return g, v
		}
		switch gate.Type {
		case netlist.Buf:
			g = gate.Fanin[0]
		case netlist.Not:
			g, v = gate.Fanin[0], v.Not()
		case netlist.And, netlist.Nand:
			eff := v
			if gate.Type == netlist.Nand {
				eff = v.Not()
			}
			if eff == logic.One {
				// All inputs must be 1: attack the hardest-to-set-1 first.
				g, v = e.pickX(gate, logic.One, true), logic.One
			} else {
				// One 0 suffices: take the easiest-to-set-0 input.
				g, v = e.pickX(gate, logic.Zero, false), logic.Zero
			}
		case netlist.Or, netlist.Nor:
			eff := v
			if gate.Type == netlist.Nor {
				eff = v.Not()
			}
			if eff == logic.Zero {
				g, v = e.pickX(gate, logic.Zero, true), logic.Zero
			} else {
				g, v = e.pickX(gate, logic.One, false), logic.One
			}
		case netlist.Xor, netlist.Xnor:
			// Choose any X input; required value is the parity of v with
			// the known inputs (unknown co-inputs assumed 0 — they will be
			// justified by later objectives if needed).
			parity := v
			if gate.Type == netlist.Xnor {
				parity = parity.Not()
			}
			var chosen int32 = -1
			for _, d := range gate.Fanin {
				dv := e.val[d].Good()
				switch {
				case dv == logic.One:
					parity = parity.Not()
				case dv == logic.X && chosen < 0:
					chosen = d
				}
			}
			if chosen < 0 {
				// No X input left; fall back to the first fanin.
				chosen = gate.Fanin[0]
			}
			g, v = chosen, parity
		default:
			// Constants cannot be justified; stop at an arbitrary PI to
			// force a backtrack upstream.
			return g, v
		}
	}
}

// pickX chooses an X-valued fanin of the gate using SCOAP
// controllability: when hard is true (every input must take value want)
// the hardest input is attacked first, otherwise the easiest one is
// chosen. Falls back to the first fanin if none is X.
func (e *Engine) pickX(gate *netlist.Gate, want logic.Value, hard bool) int32 {
	if e.rng != nil && len(gate.Fanin) > 1 {
		// Randomized tie-break: pick uniformly among X inputs.
		var xs []int32
		for _, d := range gate.Fanin {
			if e.val[d].Good() == logic.X {
				xs = append(xs, d)
			}
		}
		if len(xs) > 0 {
			return xs[e.rng.Intn(len(xs))]
		}
		return gate.Fanin[0]
	}
	cc := func(d int32) int32 {
		if want == logic.One {
			return e.scoap.CC1[d]
		}
		return e.scoap.CC0[d]
	}
	var best int32 = -1
	var bestCost int32
	for _, d := range gate.Fanin {
		if e.val[d].Good() != logic.X {
			continue
		}
		cost := cc(d)
		if best < 0 || (hard && cost > bestCost) || (!hard && cost < bestCost) {
			best, bestCost = d, cost
		}
	}
	if best < 0 {
		return gate.Fanin[0]
	}
	return best
}
