package atpg

import (
	"math/rand"
	"testing"

	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/sim"
)

// c17Vector expands a 5-bit integer into a c17 input vector.
func c17Vector(v int) pattern.Vector {
	vec := make(pattern.Vector, 5)
	for i := range vec {
		vec[i] = logic.FromBit(uint64(v >> uint(i) & 1))
	}
	return vec
}

// TestSATDistinguishMatchesExhaustive: on c17, the SAT-based distinguisher
// (miter output = 1) must classify every fault pair exactly as exhaustive
// simulation does — distinguishable pairs get a verified test, equivalent
// pairs are proven UNSAT.
func TestSATDistinguishMatchesExhaustive(t *testing.T) {
	c := gen.C17()
	col := fault.Collapse(c)
	r := rand.New(rand.NewSource(3))

	equivalent := func(a, b fault.Fault) bool {
		for v := 0; v < 32; v++ {
			if Distinguishes(c, a, b, c17Vector(v)) {
				return false
			}
		}
		return true
	}

	for i := 0; i < len(col.Faults); i++ {
		for j := i + 1; j < len(col.Faults); j++ {
			fa, fb := col.Faults[i], col.Faults[j]
			m, err := BuildMiter(c, fa, fb)
			if err != nil {
				t.Fatal(err)
			}
			vec, status, err := SolveOutputOne(m, m.POs[0], 0)
			if err != nil {
				t.Fatal(err)
			}
			truthEquiv := equivalent(fa, fb)
			switch status {
			case Success:
				if truthEquiv {
					t.Fatalf("SAT found a test for equivalent pair (%s, %s)", fa.Name(c), fb.Name(c))
				}
				v := vec.Clone()
				v.RandomFill(r)
				if !Distinguishes(c, fa, fb, v) {
					t.Fatalf("SAT test %s does not distinguish (%s, %s)", v, fa.Name(c), fb.Name(c))
				}
			case Untestable:
				if !truthEquiv {
					t.Fatalf("SAT proved equivalent a distinguishable pair (%s, %s)", fa.Name(c), fb.Name(c))
				}
			default:
				t.Fatalf("SAT ran out of budget on c17 pair (%s, %s)", fa.Name(c), fb.Name(c))
			}
		}
	}
}

// TestSATAgreesWithPodemOnDetection: SAT detection miters must agree with
// PODEM wherever PODEM is definitive, must produce verified tests on
// Success, and must answer definitively at least as often as PODEM.
func TestSATAgreesWithPodemOnDetection(t *testing.T) {
	comb := netlist.Combinationalize(gen.Profiles["s298"].MustGenerate(4))
	col := fault.Collapse(comb)
	e := NewEngine(comb)
	e.BacktrackLimit = 200
	r := rand.New(rand.NewSource(5))
	satDefinitive, podemDefinitive := 0, 0
	for _, f := range col.Faults {
		m, err := BuildDetectionMiter(comb, f)
		if err != nil {
			t.Fatal(err)
		}
		vec, status, err := SolveOutputOne(m, m.POs[0], 50000)
		if err != nil {
			t.Fatal(err)
		}
		if status != Aborted {
			satDefinitive++
		}
		cube, pstatus := e.Generate(f)
		if pstatus != Aborted {
			podemDefinitive++
		}
		switch status {
		case Success:
			v := vec.Clone()
			v.RandomFill(r)
			if !VectorDetects(comb, f, v) {
				t.Fatalf("SAT test for %s does not detect it", f.Name(comb))
			}
			if pstatus == Untestable {
				t.Fatalf("PODEM says untestable but SAT found a test for %s", f.Name(comb))
			}
		case Untestable:
			if pstatus == Success {
				v := cube.Clone()
				v.RandomFill(r)
				if VectorDetects(comb, f, v) {
					t.Fatalf("SAT says untestable but PODEM's test detects %s", f.Name(comb))
				}
			}
		}
	}
	if satDefinitive < podemDefinitive {
		t.Errorf("SAT definitive on %d faults, PODEM on %d — SAT should dominate",
			satDefinitive, podemDefinitive)
	}
	t.Logf("definitive answers: SAT %d, PODEM %d (of %d faults)",
		satDefinitive, podemDefinitive, len(col.Faults))
}

// TestSolveOutputOneRejectsSequential covers the guard.
func TestSolveOutputOneRejectsSequential(t *testing.T) {
	seq := gen.Profiles["s27"].MustGenerate(1)
	if _, _, err := SolveOutputOne(seq, seq.POs[0], 0); err == nil {
		t.Fatal("sequential circuit accepted")
	}
}

// TestSATXnorEncoding checks the XNOR chain encoding directly: the model
// returned for "XNOR output = 1" must evaluate to 1, and forcing the
// complement must flip it.
func TestSATXnorEncoding(t *testing.T) {
	b := netlist.NewBuilder("xn")
	a := b.Input("a")
	bb := b.Input("b")
	cc := b.Input("c")
	x := b.Gate(netlist.Xnor, "x", a, bb, cc)
	inv := b.Gate(netlist.Not, "nx", x)
	b.Output(x)
	b.Output(inv)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	view := netlist.NewScanView(c)
	for _, target := range []int32{x, inv} {
		vec, status, err := SolveOutputOne(c, target, 0)
		if err != nil || status != Success {
			t.Fatalf("target %d: status %v err %v", target, status, err)
		}
		full := vec.Clone()
		full.RandomFill(rand.New(rand.NewSource(1)))
		vals := sim.EvalTernary(view, full)
		if vals[target] != logic.One {
			t.Fatalf("SAT model does not drive gate %d to 1", target)
		}
	}
}

// TestSATConstantCone: a target provably constant 0 must come back
// Untestable.
func TestSATConstantCone(t *testing.T) {
	b := netlist.NewBuilder("k")
	a := b.Input("a")
	n := b.Gate(netlist.Not, "n", a)
	y := b.Gate(netlist.And, "y", a, n) // constant 0
	b.Output(y)
	c, _ := b.Build()
	_, status, err := SolveOutputOne(c, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if status != Untestable {
		t.Fatalf("constant-0 target reported %v, want untestable", status)
	}
}
