package atpg

import (
	"math/rand"
	"testing"

	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/logic"
	"sddict/internal/netlist"
)

// TestPodemC17AllFaultsTestable: c17 is irredundant — PODEM must find a
// test for every collapsed fault, and every cube must actually detect its
// fault under simulation after random fill.
func TestPodemC17AllFaultsTestable(t *testing.T) {
	c := gen.C17()
	col := fault.Collapse(c)
	e := NewEngine(c)
	r := rand.New(rand.NewSource(2))
	for _, f := range col.Faults {
		cube, status := e.Generate(f)
		if status != Success {
			t.Fatalf("fault %s: %v, want success", f.Name(c), status)
		}
		for trial := 0; trial < 4; trial++ {
			v := cube.Clone()
			v.RandomFill(r)
			if !VectorDetects(c, f, v) {
				t.Fatalf("fault %s: cube %s filled %s does not detect", f.Name(c), cube, v)
			}
		}
	}
}

// TestPodemSyntheticCubesDetect runs PODEM on every collapsed fault of a
// synthetic scan circuit; every Success cube must detect its fault. (Some
// faults may legitimately be untestable in a random circuit.)
func TestPodemSyntheticCubesDetect(t *testing.T) {
	comb := netlist.Combinationalize(gen.Profiles["s208"].MustGenerate(4))
	col := fault.Collapse(comb)
	e := NewEngine(comb)
	e.BacktrackLimit = 60
	r := rand.New(rand.NewSource(6))
	successes := 0
	for _, f := range col.Faults {
		cube, status := e.Generate(f)
		if status != Success {
			continue
		}
		successes++
		v := cube.Clone()
		v.RandomFill(r)
		if !VectorDetects(comb, f, v) {
			t.Fatalf("fault %s: PODEM cube does not detect", f.Name(comb))
		}
	}
	if successes < len(col.Faults)*8/10 {
		t.Fatalf("only %d/%d faults testable; engine looks broken", successes, len(col.Faults))
	}
}

// TestPodemUntestable: a classic redundancy — y = OR(a, NOT(a)) is
// constantly 1, so y stuck-at-1 is untestable, while y stuck-at-0 is
// detected by any vector.
func TestPodemUntestable(t *testing.T) {
	b := netlist.NewBuilder("red")
	a := b.Input("a")
	n := b.Gate(netlist.Not, "n", a)
	y := b.Gate(netlist.Or, "y", a, n)
	b.Output(y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(c)
	if _, status := e.Generate(fault.Fault{Gate: y, Pin: fault.StemPin, Stuck: 1}); status != Untestable {
		t.Fatalf("y s-a-1 reported %v, want untestable", status)
	}
	cube, status := e.Generate(fault.Fault{Gate: y, Pin: fault.StemPin, Stuck: 0})
	if status != Success {
		t.Fatalf("y s-a-0 reported %v, want success", status)
	}
	v := cube.Clone()
	v.RandomFill(rand.New(rand.NewSource(1)))
	if !VectorDetects(c, fault.Fault{Gate: y, Pin: fault.StemPin, Stuck: 0}, v) {
		t.Fatal("cube for y s-a-0 does not detect")
	}
}

// TestPodemBranchFault targets a fanout-branch fault specifically: the
// stem behaves normally but one branch is stuck.
func TestPodemBranchFault(t *testing.T) {
	// s = NOT(a); y1 = AND(s, b); y2 = OR(s, c). Branch of s into y1 s-a-1.
	b := netlist.NewBuilder("branch")
	a := b.Input("a")
	bi := b.Input("b")
	ci := b.Input("c")
	s := b.Gate(netlist.Not, "s", a)
	y1 := b.Gate(netlist.And, "y1", s, bi)
	y2 := b.Gate(netlist.Or, "y2", s, ci)
	b.Output(y1)
	b.Output(y2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(c)
	f := fault.Fault{Gate: y1, Pin: 0, Stuck: 1}
	cube, status := e.Generate(f)
	if status != Success {
		t.Fatalf("branch fault reported %v, want success", status)
	}
	v := cube.Clone()
	v.RandomFill(rand.New(rand.NewSource(1)))
	if !VectorDetects(c, f, v) {
		t.Fatalf("cube %s does not detect the branch fault", v)
	}
	// The detection must require a=1 (s=0 good, branch forced 1) and b=1.
	if cube[0] != logic.One {
		t.Errorf("cube[a] = %v, want 1 (excite the branch)", cube[0])
	}
	if cube[1] != logic.One {
		t.Errorf("cube[b] = %v, want 1 (propagate through AND)", cube[1])
	}
}

// TestPodemAborted: a tiny backtrack limit must abort rather than spin.
func TestPodemAborted(t *testing.T) {
	comb := netlist.Combinationalize(gen.Profiles["s298"].MustGenerate(8))
	col := fault.Collapse(comb)
	e := NewEngine(comb)
	e.BacktrackLimit = 0
	aborted := 0
	for _, f := range col.Faults[:50] {
		if _, status := e.Generate(f); status == Aborted {
			aborted++
		}
	}
	// With zero backtracks allowed, at least some faults must abort; the
	// engine must never hang (reaching here is the real assertion).
	t.Logf("%d/50 aborted with zero backtrack budget", aborted)
}

// TestMiterDistinguish: for c17 fault pairs with different behaviour, the
// miter engine must find a distinguishing test, verified by simulation.
func TestMiterDistinguish(t *testing.T) {
	c := gen.C17()
	col := fault.Collapse(c)
	r := rand.New(rand.NewSource(14))
	found := 0
	for i := 0; i < len(col.Faults) && found < 25; i++ {
		for j := i + 1; j < len(col.Faults) && found < 25; j++ {
			fa, fb := col.Faults[i], col.Faults[j]
			cube, status, err := Distinguish(c, fa, fb, 100)
			if err != nil {
				t.Fatal(err)
			}
			if status != Success {
				continue
			}
			found++
			v := cube.Clone()
			v.RandomFill(r)
			if !Distinguishes(c, fa, fb, v) {
				t.Fatalf("miter test %s does not distinguish %s / %s", v, fa.Name(c), fb.Name(c))
			}
		}
	}
	if found == 0 {
		t.Fatal("no distinguishable pair found on c17; miter engine broken")
	}
}

// TestMiterEquivalentPair: two collapsed-equivalent faults must be proven
// equivalent (miter untestable).
func TestMiterEquivalentPair(t *testing.T) {
	// y = AND(a, b): a-pin s-a-0 (via stem of a if fanout-free) equiv to
	// y s-a-0. Build with explicit fanout so both faults exist distinctly.
	b := netlist.NewBuilder("eq")
	a := b.Input("a")
	bb := b.Input("b")
	y := b.Gate(netlist.And, "y", a, bb)
	b.Output(y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fa := fault.Fault{Gate: a, Pin: fault.StemPin, Stuck: 0} // a s-a-0
	fy := fault.Fault{Gate: y, Pin: fault.StemPin, Stuck: 0} // y s-a-0
	_, status, err := Distinguish(c, fa, fy, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if status != Untestable {
		t.Fatalf("equivalent pair reported %v, want untestable", status)
	}
}

// TestEngineRejectsSequential ensures the engine demands a combinational
// circuit.
func TestEngineRejectsSequential(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine accepted a sequential circuit")
		}
	}()
	NewEngine(gen.Profiles["s27"].MustGenerate(1))
}

// TestRandomizedGenerationDiversity: with a random source installed,
// repeated runs on the same fault should usually produce more than one
// distinct cube (needed for n-detect top-up).
func TestRandomizedGenerationDiversity(t *testing.T) {
	comb := netlist.Combinationalize(gen.Profiles["s344"].MustGenerate(2))
	col := fault.Collapse(comb)
	e := NewEngine(comb)
	e.Randomize(rand.New(rand.NewSource(77)))
	distinct := map[string]bool{}
	target := col.Faults[len(col.Faults)/2]
	for i := 0; i < 12; i++ {
		cube, status := e.Generate(target)
		if status == Success {
			distinct[cube.Key()] = true
		}
	}
	if len(distinct) < 2 {
		t.Logf("only %d distinct cubes for %s; acceptable but unusual", len(distinct), target.Name(comb))
	}
}
