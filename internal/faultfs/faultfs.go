// Package faultfs is the fault-injection seam for artifact I/O: an
// injectable filesystem the artifact loaders read through, writer
// wrappers that tear a write mid-stream, helpers that corrupt files in
// place (truncation, single bit-flips), and a deterministic step clock.
// Production code passes OS and time.Now; the robustness tests pass the
// injectors to prove that every torn write, truncation and bit-flip is
// detected at load time instead of poisoning a diagnosis.
//
// Injection is deterministic: a Flaky filesystem fails on a fixed
// seeded schedule, so a failing robustness test replays exactly.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"
)

// ErrInjected marks every failure this package injects. Loaders must
// surface it unchanged (wrapped, matchable with errors.Is) so tests can
// tell an injected I/O fault from a corruption verdict.
var ErrInjected = errors.New("faultfs: injected fault")

// File is the read surface the artifact loaders need.
type File interface {
	io.Reader
	io.Closer
}

// FS is the filesystem seam: production code opens through OS, tests
// substitute an injecting implementation.
type FS interface {
	Open(name string) (File, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

// FlakyFS wraps an FS so that reads fail mid-stream with ErrInjected on
// a deterministic seeded schedule: each opened file serves a
// seed-derived number of bytes (0 to maxBytes-1) and then fails every
// subsequent Read. Open itself never fails, modelling media that goes
// bad under you rather than a missing file.
type FlakyFS struct {
	inner    FS
	maxBytes int64

	mu  sync.Mutex
	rng *rand.Rand
}

// Flaky builds a FlakyFS failing each file after a seeded cutoff in
// [0, maxBytes).
func Flaky(inner FS, seed int64, maxBytes int64) *FlakyFS {
	if maxBytes < 1 {
		maxBytes = 1
	}
	return &FlakyFS{inner: inner, maxBytes: maxBytes, rng: rand.New(rand.NewSource(seed))}
}

func (f *FlakyFS) Open(name string) (File, error) {
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	cutoff := f.rng.Int63n(f.maxBytes)
	f.mu.Unlock()
	return &flakyFile{inner: inner, remaining: cutoff}, nil
}

type flakyFile struct {
	inner     File
	remaining int64
}

func (f *flakyFile) Read(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, fmt.Errorf("faultfs: read failed mid-stream: %w", ErrInjected)
	}
	if int64(len(p)) > f.remaining {
		p = p[:f.remaining]
	}
	n, err := f.inner.Read(p)
	f.remaining -= int64(n)
	return n, err
}

func (f *flakyFile) Close() error { return f.inner.Close() }

// Torn returns a writer that passes the first n bytes through to w and
// fails every write after that with ErrInjected — a publish torn
// mid-write (disk full, power loss before the rename). Pairing it with
// core.AtomicWriteFile proves the failed publish leaves no artifact
// behind; writing its output directly to a destination path models a
// non-atomic writer whose torn tail the decoder must detect.
func Torn(w io.Writer, n int64) io.Writer { return &tornWriter{w: w, remaining: n} }

type tornWriter struct {
	w         io.Writer
	remaining int64
}

func (t *tornWriter) Write(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, fmt.Errorf("faultfs: write torn: %w", ErrInjected)
	}
	if int64(len(p)) > t.remaining {
		n, err := t.w.Write(p[:t.remaining])
		t.remaining -= int64(n)
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("faultfs: write torn after %d bytes: %w", n, ErrInjected)
	}
	n, err := t.w.Write(p)
	t.remaining -= int64(n)
	return n, err
}

// TruncateFile cuts the file at path to size bytes, simulating a torn
// tail left by a crashed non-atomic writer or a filesystem that lost
// the final extent.
func TruncateFile(path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("faultfs: truncating %s: %w", path, err)
	}
	return nil
}

// FlipBit inverts the bit at position bit (bit 0 = lowest bit of the
// first byte) in the file at path, simulating storage bit rot.
func FlipBit(path string, bit int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("faultfs: opening %s: %w", path, err)
	}
	defer f.Close()
	off := bit / 8
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return fmt.Errorf("faultfs: reading byte %d of %s: %w", off, path, err)
	}
	b[0] ^= 1 << uint(bit%8)
	if _, err := f.WriteAt(b[:], off); err != nil {
		return fmt.Errorf("faultfs: writing byte %d of %s: %w", off, path, err)
	}
	return f.Close()
}

// StepClock returns a clock that starts at start and advances by step on
// every call — an injectable replacement for time.Now that keeps
// timestamped artifacts (traces, registry bookkeeping) reproducible in
// tests. The returned function is safe for concurrent use.
func StepClock(start time.Time, step time.Duration) func() time.Time {
	var mu sync.Mutex
	next := start
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t := next
		next = next.Add(step)
		return t
	}
}
