package faultfs_test

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sddict/internal/faultfs"
	"sddict/internal/obs"
)

func writeTestFile(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "f.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTornWriterFailsAfterN(t *testing.T) {
	var buf bytes.Buffer
	w := faultfs.Torn(&buf, 5)
	n, err := w.Write([]byte("abcdefgh"))
	if n != 5 {
		t.Errorf("first write passed %d bytes, want 5", n)
	}
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Errorf("first write err = %v, want ErrInjected", err)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, faultfs.ErrInjected) {
		t.Errorf("subsequent write err = %v, want ErrInjected", err)
	}
	if got := buf.String(); got != "abcde" {
		t.Errorf("underlying writer got %q, want %q", got, "abcde")
	}
}

func TestTornWriterPassesWithinBudget(t *testing.T) {
	var buf bytes.Buffer
	w := faultfs.Torn(&buf, 100)
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	if buf.String() != "hello" {
		t.Errorf("got %q", buf.String())
	}
}

func TestFlakyFSFailsMidStreamDeterministically(t *testing.T) {
	data := bytes.Repeat([]byte("0123456789"), 100)
	path := writeTestFile(t, data)

	readAll := func(seed int64) (int, error) {
		fsys := faultfs.Flaky(faultfs.OS, seed, int64(len(data)))
		f, err := fsys.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		n, err := io.Copy(io.Discard, f)
		return int(n), err
	}

	n1, err1 := readAll(42)
	n2, err2 := readAll(42)
	if !errors.Is(err1, faultfs.ErrInjected) {
		t.Fatalf("read err = %v, want ErrInjected", err1)
	}
	if n1 != n2 || (err2 == nil) != (err1 == nil) {
		t.Errorf("same seed gave different schedules: %d bytes vs %d bytes", n1, n2)
	}
	if n1 >= len(data) {
		t.Errorf("read all %d bytes despite injection", n1)
	}
}

func TestTruncateAndFlipBit(t *testing.T) {
	path := writeTestFile(t, []byte{0x00, 0xff, 0x0f})

	if err := faultfs.FlipBit(path, 8); err != nil { // lowest bit of byte 1
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0x00, 0xfe, 0x0f}) {
		t.Errorf("after FlipBit(8): % x", got)
	}

	if err := faultfs.TruncateFile(path, 2); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("after truncate: %d bytes, want 2", len(got))
	}
}

func TestStepClock(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := faultfs.StepClock(start, time.Second)
	if got := clk(); !got.Equal(start) {
		t.Errorf("first tick = %v, want %v", got, start)
	}
	if got := clk(); !got.Equal(start.Add(time.Second)) {
		t.Errorf("second tick = %v", got)
	}
}

// TestReadEventsTornTailOnDisk is the on-disk companion of the obs
// package's in-memory torn-tail test: a trace file truncated mid-event
// (the torn tail a crashed writer leaves) must still yield every
// complete event, with the tail reported via ErrTruncatedTrace.
func TestReadEventsTornTailOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	clk := faultfs.StepClock(time.Unix(0, 0).UTC(), time.Millisecond)
	tr, err := obs.NewFileTracer(path, clk)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit("first", map[string]any{"n": 1})
	tr.Emit("second", map[string]any{"n": 2})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the final event's line: the newline and some payload go.
	if err := faultfs.TruncateFile(path, info.Size()-10); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if !errors.Is(err, obs.ErrTruncatedTrace) {
		t.Fatalf("ReadEvents err = %v, want ErrTruncatedTrace", err)
	}
	if len(events) != 1 || events[0].Type != "first" {
		t.Fatalf("events before the torn tail = %+v, want just the first", events)
	}
}
