// Package obs is the repository's observability layer: atomic metrics
// (counters, gauges, power-of-two histograms), a structured JSONL
// build-event trace, and a polled progress reporter, bundled behind a
// nil-safe Observer handle the library layers thread through their
// options.
//
// Observability is pure measurement (DESIGN.md §10). Nothing in this
// package feeds back into a computation: dictionaries, BuildStats and
// response matrices are byte-identical whether an Observer is attached
// or not, at every worker count — the root determinism_test.go pins
// this. To keep even the *measurements* deterministic, the search layers
// record metrics only at their ordered fold points (where speculative
// parallel work has already been discarded), so counter values are
// identical at every worker count too; only trace `restart_start` /
// `row_start` events, which deliberately expose wall-clock scheduling,
// may differ between runs.
//
// The package never reads the wall clock itself: tracers and progress
// reporters take a caller-supplied clock (the cmd layer passes
// time.Now), keeping library builds replayable and tests hermetic. It
// also never starts goroutines except for the pprof debug listener
// (see pprof.go), which serves read-only runtime profiles and has no
// result to merge — the sddlint concurrency analyzer documents that
// exemption.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
)

// Counter identifies one monotonically increasing metric.
type Counter int

// Counters recorded by the library layers.
const (
	// RestartsRun counts Procedure 1 restarts folded into the search
	// state (speculative restarts discarded by the ordered fold are not
	// counted, so the value is identical at every worker count).
	RestartsRun Counter = iota
	// CandidateScans counts dist(z) candidate evaluations folded into
	// the search (the paper's CALLS_2 cost driver).
	CandidateScans
	// LowerCutoffHits counts Procedure 1 candidate scans stopped early
	// by the LOWER patience cutoff.
	LowerCutoffHits
	// Proc2Accepted counts Procedure 2 baseline replacements taken.
	Proc2Accepted
	// Proc2Rejected counts Procedure 2 replacement evaluations that kept
	// the incumbent baseline.
	Proc2Rejected
	// SimBatches counts 64-pattern fault-simulation batches swept while
	// building response matrices.
	SimBatches
	// CheckpointSaves counts construction snapshots emitted.
	CheckpointSaves
	// SweepRowsDone counts Table-6 sweep rows that completed normally.
	SweepRowsDone
	// SweepRowsFailed counts sweep rows that failed (including rows
	// recovered from a panic).
	SweepRowsFailed
	// SweepRowsInterrupted counts sweep rows cut short by cancellation
	// but still delivering a best-so-far dictionary.
	SweepRowsInterrupted
	// ServeRequests counts requests the diagnosis service admitted past
	// its in-flight cap.
	ServeRequests
	// ServeShed counts requests rejected with 503 + Retry-After because
	// the in-flight cap was reached.
	ServeShed
	// ServePanics counts handler panics converted to 500s by the
	// recovery middleware.
	ServePanics
	// ServeDictLoads counts dictionary artifacts loaded into the serve
	// registry (cache misses and explicit loads).
	ServeDictLoads
	// ServeDictHits counts diagnosis requests served from an
	// already-loaded registry entry.
	ServeDictHits
	// ServeDictEvicts counts registry entries evicted (LRU pressure or
	// explicit evict requests).
	ServeDictEvicts
	// LoadRetries counts sddload request attempts retried after a 503
	// (the chaos driver's backoff loop).
	LoadRetries
	// ServeRecallHits counts diagnosis observations answered from an
	// exact case-store match (byte-identical to recompute by identity).
	ServeRecallHits
	// ServeRecallNear counts observations answered from a near
	// (Hamming-budget) case-store match that passed the false-dedup
	// guard.
	ServeRecallNear
	// ServeRecallMisses counts observations that went through the full
	// recompute (no usable prior case), including near candidates
	// rejected by the guard.
	ServeRecallMisses
	// ServeSpans counts request spans flushed to the trace (sampled,
	// slow, or failed — see span.go emission rules).
	ServeSpans
	// ServeSlowRequests counts requests over the slow-request threshold
	// (-slow-ms); such spans always emit, sampled or not.
	ServeSlowRequests

	numCounters
)

var counterNames = [numCounters]string{
	RestartsRun:          "restarts_run",
	CandidateScans:       "candidate_scans",
	LowerCutoffHits:      "lower_cutoff_hits",
	Proc2Accepted:        "proc2_accepted",
	Proc2Rejected:        "proc2_rejected",
	SimBatches:           "sim_batches",
	CheckpointSaves:      "checkpoint_saves",
	SweepRowsDone:        "sweep_rows_done",
	SweepRowsFailed:      "sweep_rows_failed",
	SweepRowsInterrupted: "sweep_rows_interrupted",
	ServeRequests:        "serve_requests",
	ServeShed:            "serve_shed",
	ServePanics:          "serve_panics",
	ServeDictLoads:       "serve_dict_loads",
	ServeDictHits:        "serve_dict_hits",
	ServeDictEvicts:      "serve_dict_evicts",
	LoadRetries:          "load_retries",
	ServeRecallHits:      "serve_recall_hits",
	ServeRecallNear:      "serve_recall_near",
	ServeRecallMisses:    "serve_recall_misses",
	ServeSpans:           "serve_spans",
	ServeSlowRequests:    "serve_slow_requests",
}

// Gauge identifies one instantaneous metric.
type Gauge int

// Gauges recorded by the library layers.
const (
	// RestartsSinceImprove mirrors the CALLS_1 patience counter.
	RestartsSinceImprove Gauge = iota
	// IndistPairs is the current best indistinguished-pair count — the
	// distinguished-pair trajectory is IndistFull-complement of this.
	IndistPairs

	numGauges
)

var gaugeNames = [numGauges]string{
	RestartsSinceImprove: "restarts_since_improve",
	IndistPairs:          "indist_pairs",
}

// Hist identifies one power-of-two-bucket histogram.
type Hist int

// Histograms recorded by the library layers.
const (
	// RestartIndist is the distribution of per-restart Procedure 1
	// scores (indistinguished pairs per folded restart).
	RestartIndist Hist = iota
	// RowElapsedMs is the distribution of sweep-row wall times in
	// milliseconds.
	RowElapsedMs
	// DiagnoseUs is the distribution of per-item diagnosis times
	// (signature + match/rank) in microseconds, recorded by the service.
	DiagnoseUs
	// RequestUs is the distribution of end-to-end request latencies in
	// microseconds, recorded client-side by sddload (including retries).
	RequestUs
	// RecallUs is the distribution of case-store recall-step times in
	// microseconds (index lookup + near scan + guard), recorded by the
	// service for every observation when a case store is attached.
	RecallUs

	numHists
)

var histNames = [numHists]string{
	RestartIndist: "restart_indist",
	RowElapsedMs:  "row_elapsed_ms",
	DiagnoseUs:    "diagnose_us",
	RequestUs:     "request_us",
	RecallUs:      "recall_us",
}

// histBuckets is one bucket per power of two: bucket b holds values v
// with bits.Len64(v) == b, i.e. bucket 0 holds 0, bucket b>0 holds
// [2^(b-1), 2^b). Negative values clamp to bucket 0.
const histBuckets = 65

type histogram struct {
	buckets [histBuckets]atomic.Int64
	// sum accumulates the observed values (negatives clamp to 0, like
	// their bucket), so exposition formats that want a running total
	// (OpenMetrics `_sum`) need no second bookkeeping pass.
	sum atomic.Int64
}

// Metrics is a fixed registry of atomic instruments. The zero value is
// ready to use; all methods are safe on a nil receiver (and do nothing),
// so library code can record unconditionally.
type Metrics struct {
	counters [numCounters]atomic.Int64
	gauges   [numGauges]atomic.Int64
	hists    [numHists]histogram
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Inc adds 1 to counter c.
func (m *Metrics) Inc(c Counter) { m.Add(c, 1) }

// Add adds d to counter c.
func (m *Metrics) Add(c Counter, d int64) {
	if m == nil {
		return
	}
	m.counters[c].Add(d)
}

// Counter returns the current value of c (0 on nil).
func (m *Metrics) Counter(c Counter) int64 {
	if m == nil {
		return 0
	}
	return m.counters[c].Load()
}

// Set stores v into gauge g.
func (m *Metrics) Set(g Gauge, v int64) {
	if m == nil {
		return
	}
	m.gauges[g].Store(v)
}

// Gauge returns the current value of g (0 on nil).
func (m *Metrics) Gauge(g Gauge) int64 {
	if m == nil {
		return 0
	}
	return m.gauges[g].Load()
}

// Observe records v into histogram h.
func (m *Metrics) Observe(h Hist, v int64) {
	if m == nil {
		return
	}
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
		m.hists[h].sum.Add(v)
	}
	m.hists[h].buckets[b].Add(1)
}

// Merge adds o's counters and histogram buckets into m. Gauges are
// instantaneous and are not merged. Used to roll per-row scoped metrics
// up into a sweep-level registry at the ordered delivery point.
func (m *Metrics) Merge(o *Metrics) {
	if m == nil || o == nil {
		return
	}
	for c := Counter(0); c < numCounters; c++ {
		if v := o.counters[c].Load(); v != 0 {
			m.counters[c].Add(v)
		}
	}
	for h := Hist(0); h < numHists; h++ {
		for b := 0; b < histBuckets; b++ {
			if v := o.hists[h].buckets[b].Load(); v != 0 {
				m.hists[h].buckets[b].Add(v)
			}
		}
		if v := o.hists[h].sum.Load(); v != 0 {
			m.hists[h].sum.Add(v)
		}
	}
}

// HistBucket is one non-empty histogram bucket: N values in [Lo, Hi].
type HistBucket struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	N  int64 `json:"n"`
}

// HistSnapshot is the state of one histogram.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a metrics registry, serializable
// as JSON (-metrics-out) and printable as a report section. Map keys
// are the stable metric names; encoding/json emits them sorted.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies the current instrument values. On a nil receiver it
// returns an empty (but fully initialized) snapshot.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64, numCounters),
		Gauges:     make(map[string]int64, numGauges),
		Histograms: make(map[string]HistSnapshot, numHists),
	}
	if m == nil {
		return s
	}
	for c := Counter(0); c < numCounters; c++ {
		s.Counters[counterNames[c]] = m.counters[c].Load()
	}
	for g := Gauge(0); g < numGauges; g++ {
		s.Gauges[gaugeNames[g]] = m.gauges[g].Load()
	}
	for h := Hist(0); h < numHists; h++ {
		hs := HistSnapshot{Sum: m.hists[h].sum.Load()}
		for b := 0; b < histBuckets; b++ {
			n := m.hists[h].buckets[b].Load()
			if n == 0 {
				continue
			}
			lo, hi := int64(0), int64(0)
			if b > 0 {
				lo = int64(1) << (b - 1)
				hi = lo<<1 - 1
			}
			hs.Count += n
			hs.Buckets = append(hs.Buckets, HistBucket{Lo: lo, Hi: hi, N: n})
		}
		s.Histograms[histNames[h]] = hs
	}
	return s
}

// WriteText renders the snapshot as the human-readable section the
// commands append to their final report: one sorted key=value line for
// counters and gauges, one summary line per non-empty histogram.
func (s Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "observability metrics:"); err != nil {
		return err
	}
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "  %s = %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "  %s = %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for h := Hist(0); h < numHists; h++ {
		hs, ok := s.Histograms[histNames[h]]
		if !ok || hs.Count == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "  %s: %d samples in %d buckets (range [%d,%d])\n",
			histNames[h], hs.Count, len(hs.Buckets),
			hs.Buckets[0].Lo, hs.Buckets[len(hs.Buckets)-1].Hi); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: the key sets are tiny and fixed.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Observer bundles the three observability sinks the library layers
// thread through their options. All methods are safe on a nil receiver
// and on nil fields, so instrumentation sites need no guards. A nil
// Observer is "observability off".
type Observer struct {
	Metrics  *Metrics
	Trace    *Tracer
	Progress *Progress
	// Label, when non-empty, is attached to every trace event as the
	// "row" field; sweep drivers label per-row scopes with it so
	// interleaved events stay attributable.
	Label string
}

// M returns the observer's metrics registry (nil when unobserved);
// Metrics methods tolerate nil, so `o.M().Inc(...)` is always safe.
func (o *Observer) M() *Metrics {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Emit records one trace event. No-op without a tracer.
func (o *Observer) Emit(typ string, fields map[string]any) {
	if o == nil || o.Trace == nil {
		return
	}
	if o.Label != "" {
		if fields == nil {
			fields = map[string]any{}
		}
		fields["row"] = o.Label
	}
	o.Trace.Emit(typ, fields)
}

// Tracing reports whether trace events would be recorded; expensive
// field assembly can be skipped when false.
func (o *Observer) Tracing() bool { return o != nil && o.Trace != nil }

// Tick gives the progress reporter a chance to print. Instrumentation
// sites call it from their ordered fold points; it is cheap when the
// reporting interval has not elapsed.
func (o *Observer) Tick() {
	if o == nil || o.Progress == nil {
		return
	}
	o.Progress.Tick()
}

// Scoped returns a child observer with a fresh metrics registry but the
// parent's trace, progress reporter and the given label — the per-row
// scope a sweep hands each pipeline so row metrics do not interleave.
// Scoped on nil returns nil.
func (o *Observer) Scoped(label string) *Observer {
	if o == nil {
		return nil
	}
	return &Observer{Metrics: NewMetrics(), Trace: o.Trace, Progress: o.Progress, Label: label}
}
