package obs

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestWriteOpenMetrics(t *testing.T) {
	m := NewMetrics()
	m.Add(RestartsRun, 3)
	m.Set(IndistPairs, 17)
	m.Observe(RestartIndist, 1)
	m.Observe(RestartIndist, 5)
	m.Observe(RestartIndist, 6)

	var buf bytes.Buffer
	if err := m.Snapshot().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE sdd_restarts_run counter",
		"sdd_restarts_run_total 3",
		"# TYPE sdd_indist_pairs gauge",
		"sdd_indist_pairs 17",
		"# TYPE sdd_restart_indist histogram",
		`sdd_restart_indist_bucket{le="1"} 1`,
		`sdd_restart_indist_bucket{le="7"} 3`,
		`sdd_restart_indist_bucket{le="+Inf"} 3`,
		"sdd_restart_indist_sum 12",
		"sdd_restart_indist_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("exposition must end with # EOF:\n%s", out)
	}

	// Deterministic rendering: same state, same bytes.
	var again bytes.Buffer
	if err := m.Snapshot().WriteOpenMetrics(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Error("two expositions of the same snapshot differ")
	}
}

func TestHistogramSumTracked(t *testing.T) {
	m := NewMetrics()
	m.Observe(RowElapsedMs, 10)
	m.Observe(RowElapsedMs, 20)
	m.Observe(RowElapsedMs, -5) // clamps: bucket 0, sum unchanged
	hs := m.Snapshot().Histograms["row_elapsed_ms"]
	if hs.Sum != 30 {
		t.Errorf("sum = %d, want 30", hs.Sum)
	}
	if hs.Count != 3 {
		t.Errorf("count = %d, want 3", hs.Count)
	}
	o := NewMetrics()
	o.Observe(RowElapsedMs, 7)
	m.Merge(o)
	if got := m.Snapshot().Histograms["row_elapsed_ms"].Sum; got != 37 {
		t.Errorf("merged sum = %d, want 37", got)
	}
}

func TestStartMetricsServerServes(t *testing.T) {
	m := NewMetrics()
	m.Add(SimBatches, 9)
	addr, stop, err := StartMetricsServerAddr("127.0.0.1:0", m)
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("Content-Type = %q, want openmetrics-text", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "sdd_sim_batches_total 9") {
		t.Errorf("live exposition missing counter:\n%s", body)
	}
	// Process-health gauges ride along with the app metrics.
	for _, want := range []string{
		"# TYPE sdd_runtime_goroutines gauge",
		"sdd_runtime_goroutines ",
		"sdd_runtime_heap_bytes ",
		"sdd_runtime_gc_pause_total_ns ",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("live exposition missing runtime gauge %q:\n%s", want, body)
		}
	}
}

func TestRuntimeGauges(t *testing.T) {
	g := RuntimeGauges()
	if g["runtime_goroutines"] < 1 {
		t.Errorf("runtime_goroutines = %d, want >= 1", g["runtime_goroutines"])
	}
	if g["runtime_heap_bytes"] <= 0 {
		t.Errorf("runtime_heap_bytes = %d, want > 0", g["runtime_heap_bytes"])
	}

	// WithRuntime must not mutate the receiver's gauge map.
	m := NewMetrics()
	m.Set(IndistPairs, 5)
	snap := m.Snapshot()
	enriched := snap.WithRuntime()
	if _, ok := snap.Gauges["runtime_goroutines"]; ok {
		t.Error("WithRuntime mutated the original snapshot")
	}
	if enriched.Gauges["indist_pairs"] != 5 {
		t.Errorf("WithRuntime dropped app gauge: %+v", enriched.Gauges)
	}
	if enriched.Gauges["runtime_goroutines"] < 1 {
		t.Errorf("enriched snapshot missing runtime gauges: %+v", enriched.Gauges)
	}
}
