package obs

// Request-scoped tracing for the serve path (DESIGN.md §16): where the
// build path records a timeline of *one* computation, a server handles
// many concurrent requests, and "the p99 spiked" is useless without
// knowing which request was slow and where inside it the time went.
// This file adds that unit of analysis: a request Span with child stage
// spans (decode, recall, scan, record), flushed to the existing durable
// JSONL tracer as a single `span` event when the request ends.
//
// Three properties shape the design:
//
//   - Determinism of the sampled set: whether a span is emitted is a
//     pure hash of its request ID against the sampling rate, never a
//     roll of a shared RNG or a worker-local counter, so the same
//     request-ID stream yields the same sampled-span set at any
//     concurrency. Slow requests (over SpanOptions.Slow) and failed
//     ones (status >= 500) always emit, sampled or not — they are the
//     requests worth finding.
//
//   - Zero allocations when not emitting: spans are recycled through a
//     free list, stage records live in a fixed inline buffer, and
//     inbound trace IDs are substrings of the traceparent header, so a
//     request that ends unsampled allocates nothing in this layer
//     (span_test.go pins this with testing.AllocsPerRun).
//
//   - Cross-process identity: the request ID is the W3C trace-id. A
//     client that sends `traceparent` (cmd/sddload does) names the
//     request on both sides of the wire; the server echoes it back as
//     X-Request-ID either way, so a client-observed latency can always
//     be joined to the server's span journal (cmd/sddstat serve).
//
// Like the rest of the package, everything is nil-safe: a nil *Spans or
// *Span is "request tracing off", and the clock is caller-supplied.

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// SpanOptions parameterizes a Spans layer.
type SpanOptions struct {
	// Sample is the emission probability for request spans, applied as
	// a deterministic hash of the request ID: 1 (or more) emits every
	// span, 0 emits none. Slow and failed requests emit regardless.
	Sample float64
	// Slow is the slow-request threshold: a request lasting at least
	// this long always emits its span, sampled or not. 0 disables the
	// slow-request log.
	Slow time.Duration
}

// Spans tracks the request spans of one server: it assigns request IDs,
// applies the sampling decision, keeps the in-flight set (the
// /debug/requests dump), and recycles ended spans through a free list
// so the unsampled path allocates nothing.
type Spans struct {
	ob    *Observer
	clock func() time.Time
	opts  SpanOptions
	// threshold is the precomputed sampling cut: emit when the request
	// ID's hash, mapped into [0,1), is below it.
	threshold float64
	// seq numbers spans monotonically (1-based); generated request IDs
	// embed it, and the /debug/requests dump orders by it.
	seq atomic.Int64
	// base salts generated request IDs so two server processes started
	// at different times do not mint colliding IDs.
	base uint64

	mu       sync.Mutex
	inflight *Span // doubly-linked in-flight list (insertion order)
	free     *Span // singly-linked (via next) recycle list
}

// NewSpans builds the span layer. Emission goes through ob's tracer
// (nil tracer: spans are still tracked for /debug/requests, never
// emitted). clock supplies timestamps and may be nil only if no span is
// ever started; servers pass their injectable clock.
func NewSpans(ob *Observer, clock func() time.Time, opts SpanOptions) *Spans {
	if clock == nil {
		clock = time.Now
	}
	sp := &Spans{ob: ob, clock: clock, opts: opts}
	switch {
	case opts.Sample >= 1:
		sp.threshold = 2 // every hash fraction is < 2
	case opts.Sample > 0:
		sp.threshold = opts.Sample
	default:
		sp.threshold = 0 // no hash fraction is < 0
	}
	// UnixNano would be the obvious salt, but the span layer honors the
	// injected clock contract: derive the salt from whatever clock the
	// caller supplied so tests stay hermetic.
	sp.base = uint64(clock().UnixNano())*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	return sp
}

// sampleFraction maps a request ID onto [0,1) by FNV-1a hash — the
// deterministic sampling coin. Exported logic lives in Sampled.
func sampleFraction(id string) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	// FNV alone leaves the high bits dominated by the ID's prefix (the
	// multiply moves entropy low→high one step per byte), and request
	// IDs often share long prefixes — finish with a splitmix64-style
	// avalanche so every input byte reaches every output bit.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	// Top 53 bits → exactly representable float64 in [0,1).
	return float64(h>>11) / (1 << 53)
}

// Sampled reports the deterministic sampling verdict for a request ID
// at the given rate — the pure function the Spans layer applies, so
// tests (and capacity planning) can predict the sampled set without a
// server.
func Sampled(id string, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	return sampleFraction(id) < rate
}

// Stage is one child stage span of a request: a named interval,
// expressed relative to the request span's start so nesting is evident
// from the record alone.
type Stage struct {
	Name    string `json:"name"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
}

// spanStages is the inline stage capacity: a single-observation
// diagnosis uses four (decode, recall, scan, record), so eight covers
// small batches without allocating; larger batches spill to the heap,
// which is fine — big batches are not the zero-alloc path.
const spanStages = 8

// Span is one in-flight (or just-ended) request. All mutating methods
// and the /debug/requests snapshot synchronize on the owning Spans
// mutex; a nil Span is a no-op throughout, so handlers instrument
// unconditionally.
type Span struct {
	owner *Spans
	seq   int64
	id    string // request ID == W3C trace-id (32 lowercase hex chars)
	// parent is the client's span ID from the inbound traceparent (""
	// for a server-minted request) — the join key's provenance.
	parent  string
	method  string
	path    string
	sampled bool
	start   time.Time
	status  int
	errMsg  string

	stageName  string // open stage ("" when none)
	stageStart time.Time
	stagesBuf  [spanStages]Stage
	stages     []Stage

	w spanWriter

	prev, next *Span
}

// Start opens a request span. traceparent is the inbound W3C header
// value ("" or malformed: the server mints a fresh request ID from its
// monotonic counter). The span is tracked as in-flight until End.
func (sp *Spans) Start(method, path, traceparent string) *Span {
	if sp == nil {
		return nil
	}
	seq := sp.seq.Add(1)
	id, parent, ok := ParseTraceparent(traceparent)
	if !ok {
		id, parent = fmt.Sprintf("%016x%016x", sp.base, uint64(seq)), ""
	}
	now := sp.clock()

	sp.mu.Lock()
	s := sp.free
	if s != nil {
		sp.free = s.next
		*s = Span{owner: sp}
	} else {
		s = &Span{owner: sp}
	}
	s.seq, s.id, s.parent = seq, id, parent
	s.method, s.path = method, path
	s.sampled = sampleFraction(id) < sp.threshold
	s.start = now
	s.status = 200
	s.stages = s.stagesBuf[:0]
	// Link at the head: End unlinks in O(1) and /debug/requests sorts
	// by seq anyway.
	s.next = sp.inflight
	if sp.inflight != nil {
		sp.inflight.prev = s
	}
	sp.inflight = s
	sp.mu.Unlock()
	return s
}

// End closes the span: any open stage is closed first (a panic unwinds
// past EndStage), the span leaves the in-flight set, and — when the
// sampling verdict, the slow threshold, or a failure status says so —
// one `span` event is flushed to the tracer before the span is
// recycled.
func (sp *Spans) End(s *Span) {
	if sp == nil || s == nil {
		return
	}
	now := sp.clock()

	sp.mu.Lock()
	s.closeStageLocked(now)
	durUs := now.Sub(s.start).Microseconds()
	slow := sp.opts.Slow > 0 && now.Sub(s.start) >= sp.opts.Slow
	emit := s.sampled || slow || s.status >= 500
	// Unlink from the in-flight list.
	if s.prev != nil {
		s.prev.next = s.next
	} else if sp.inflight == s {
		sp.inflight = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	}
	s.prev, s.next = nil, nil

	var fields map[string]any
	if emit && sp.ob.Tracing() {
		fields = map[string]any{
			"request_id": s.id,
			"method":     s.method,
			"path":       s.path,
			"status":     s.status,
			"dur_us":     durUs,
			"sampled":    s.sampled,
		}
		if s.parent != "" {
			fields["parent"] = s.parent
		}
		if slow {
			fields["slow"] = true
		}
		if s.errMsg != "" {
			fields["error"] = s.errMsg
		}
		if len(s.stages) > 0 {
			fields["stages"] = append([]Stage(nil), s.stages...)
		}
	}
	// Recycle. Strings are cleared so the free list retains no header
	// backing arrays.
	*s = Span{owner: sp, next: sp.free}
	sp.free = s
	sp.mu.Unlock()

	if slow {
		sp.ob.M().Inc(ServeSlowRequests)
	}
	if fields != nil {
		sp.ob.M().Inc(ServeSpans)
		sp.ob.Emit("span", fields)
	}
}

// RequestID returns the span's request ID ("" on nil) — what the
// middleware echoes as X-Request-ID.
func (s *Span) RequestID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Sampled reports the span's sampling verdict (false on nil).
func (s *Span) Sampled() bool {
	if s == nil {
		return false
	}
	return s.sampled
}

// BeginStage opens a named child stage. Stages are sequential — opening
// a new one closes any still-open stage first, so a handler that errors
// out between BeginStage and EndStage cannot corrupt the record.
func (s *Span) BeginStage(name string) {
	if s == nil {
		return
	}
	now := s.owner.clock()
	s.owner.mu.Lock()
	s.closeStageLocked(now)
	s.stageName, s.stageStart = name, now
	s.owner.mu.Unlock()
}

// EndStage closes the open stage (no-op when none is open).
func (s *Span) EndStage() {
	if s == nil {
		return
	}
	now := s.owner.clock()
	s.owner.mu.Lock()
	s.closeStageLocked(now)
	s.owner.mu.Unlock()
}

// closeStageLocked appends the open stage, if any, to the record.
// Caller holds owner.mu.
func (s *Span) closeStageLocked(now time.Time) {
	if s.stageName == "" {
		return
	}
	s.stages = append(s.stages, Stage{
		Name:    s.stageName,
		StartUs: s.stageStart.Sub(s.start).Microseconds(),
		DurUs:   now.Sub(s.stageStart).Microseconds(),
	})
	s.stageName = ""
}

// SetStatus records the HTTP status the request resolved to. The
// response-writer wrapper (Writer) calls it automatically; middleware
// that bypasses the writer (panic paths) calls it directly.
func (s *Span) SetStatus(code int) {
	if s == nil {
		return
	}
	s.owner.mu.Lock()
	s.status = code
	s.owner.mu.Unlock()
}

// SetError attaches an error message to the span (panics, handler
// failures); failed spans always emit.
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	s.owner.mu.Lock()
	s.errMsg = msg
	s.owner.mu.Unlock()
}

// spanWriter captures the response status into the span. It lives
// inside the Span so wrapping allocates nothing.
type spanWriter struct {
	inner http.ResponseWriter
	span  *Span
}

// Writer wraps w so the first WriteHeader lands in the span's status.
// On a nil span it returns w unchanged.
func (s *Span) Writer(w http.ResponseWriter) http.ResponseWriter {
	if s == nil {
		return w
	}
	s.w = spanWriter{inner: w, span: s}
	return &s.w
}

func (sw *spanWriter) Header() http.Header {
	if sw == nil {
		return nil
	}
	return sw.inner.Header()
}

func (sw *spanWriter) Write(b []byte) (int, error) {
	if sw == nil {
		return 0, nil
	}
	return sw.inner.Write(b)
}

func (sw *spanWriter) WriteHeader(code int) {
	if sw == nil {
		return
	}
	sw.span.SetStatus(code)
	sw.inner.WriteHeader(code)
}

// InflightRequest is one live request in the /debug/requests dump.
type InflightRequest struct {
	Seq       int64  `json:"seq"`
	RequestID string `json:"request_id"`
	Method    string `json:"method"`
	Path      string `json:"path"`
	// Stage is the currently open stage ("" between stages).
	Stage string `json:"stage,omitempty"`
	AgeMs int64  `json:"age_ms"`
}

// Inflight snapshots the live request set, oldest (lowest seq) first —
// the answer to "what is this server doing right now". The request
// serving the dump appears in its own snapshot.
func (sp *Spans) Inflight() []InflightRequest {
	if sp == nil {
		return nil
	}
	now := sp.clock()
	sp.mu.Lock()
	var out []InflightRequest
	for s := sp.inflight; s != nil; s = s.next {
		out = append(out, InflightRequest{
			Seq:       s.seq,
			RequestID: s.id,
			Method:    s.method,
			Path:      s.path,
			Stage:     s.stageName,
			AgeMs:     now.Sub(s.start).Milliseconds(),
		})
	}
	sp.mu.Unlock()
	// The list is linked newest-first; present oldest-first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// ParseTraceparent validates a W3C trace-context traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>") and returns
// the trace-id and parent-id as substrings of h (no allocation). ok is
// false for anything malformed: wrong shape, uppercase hex, the
// all-zero trace or parent ID the spec forbids, or the reserved "ff"
// version.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	if !hexLower(h[0:2]) || h[0:2] == "ff" {
		return "", "", false
	}
	traceID, parentID = h[3:35], h[36:52]
	if !hexLower(traceID) || !hexLower(parentID) || !hexLower(h[53:55]) {
		return "", "", false
	}
	if allZero(traceID) || allZero(parentID) {
		return "", "", false
	}
	return traceID, parentID, true
}

// FormatTraceparent renders a version-00 traceparent header from a
// 32-hex trace ID and a 16-hex parent span ID; sampled sets the
// trace-flags sampled bit. The client side (cmd/sddload) uses it to
// name its requests before sending them.
func FormatTraceparent(traceID, parentID string, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + traceID + "-" + parentID + "-" + flags
}

func hexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// spanCtxKey carries a *Span through a request context.
type spanCtxKey struct{}

// ContextWithSpan attaches s to ctx so downstream layers (handlers,
// internal/casestore's record hook) can open stage spans without
// plumbing a new parameter through every signature.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom returns the request span carried by ctx, or nil — and nil is
// a fully functional no-op span, per the package contract.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
