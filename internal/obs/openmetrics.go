package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"time"
)

// MetricNamespace prefixes every metric in the OpenMetrics exposition,
// keeping the repo's series distinguishable when a scraper aggregates
// several jobs.
const MetricNamespace = "sdd"

// WriteOpenMetrics renders the snapshot in the OpenMetrics/Prometheus
// text exposition format: counters as `<ns>_<name>_total`, gauges
// verbatim, histograms as cumulative `le`-labelled buckets with `_sum`
// and `_count` series, terminated by the `# EOF` marker the OpenMetrics
// spec requires. Output order is deterministic (sorted within each
// instrument class), so two snapshots of equal state render
// byte-identically.
//
// The histogram buckets are the registry's power-of-two buckets: each
// non-empty bucket [lo,hi] contributes one `le="<hi>"` sample holding
// the cumulative count through hi, and the implicit `le="+Inf"` sample
// carries the total.
func (s Snapshot) WriteOpenMetrics(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s_%s counter\n%s_%s_total %d\n",
			MetricNamespace, name, MetricNamespace, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s_%s gauge\n%s_%s %d\n",
			MetricNamespace, name, MetricNamespace, name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedHistKeys(s.Histograms) {
		hs := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s_%s histogram\n", MetricNamespace, name); err != nil {
			return err
		}
		var cum int64
		for _, b := range hs.Buckets {
			cum += b.N
			if _, err := fmt.Fprintf(w, "%s_%s_bucket{le=\"%d\"} %d\n",
				MetricNamespace, name, b.Hi, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_%s_bucket{le=\"+Inf\"} %d\n%s_%s_sum %d\n%s_%s_count %d\n",
			MetricNamespace, name, hs.Count,
			MetricNamespace, name, hs.Sum,
			MetricNamespace, name, hs.Count); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "# EOF")
	return err
}

// RuntimeGauges reads the Go runtime's process-health gauges —
// goroutine count, live heap bytes, cumulative GC pause — keyed by the
// gauge names they render under (prefixed with MetricNamespace by
// WriteOpenMetrics). App counters say what the process has done;
// these say what it costs to keep doing it, which is the half a
// scrape of a long-lived server actually alarms on.
func RuntimeGauges() map[string]int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return map[string]int64{
		"runtime_goroutines":        int64(runtime.NumGoroutine()),
		"runtime_heap_bytes":        int64(ms.HeapAlloc),
		"runtime_gc_pause_total_ns": int64(ms.PauseTotalNs),
	}
}

// WithRuntime returns a copy of s with the live RuntimeGauges merged
// into its gauge map. WriteOpenMetrics itself stays a pure function of
// the snapshot (its byte-identical-rendering guarantee holds); callers
// that want process health in the exposition opt in at scrape time.
func (s Snapshot) WithRuntime() Snapshot {
	gauges := make(map[string]int64, len(s.Gauges)+3)
	for k, v := range s.Gauges {
		gauges[k] = v
	}
	for k, v := range RuntimeGauges() {
		gauges[k] = v
	}
	s.Gauges = gauges
	return s
}

func sortedHistKeys(m map[string]HistSnapshot) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: the key sets are tiny and fixed.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// StartMetricsServer serves m's live snapshot at /metrics on addr in the
// OpenMetrics text format, so long sweeps can be scraped by Prometheus
// while they run, and returns a stop function that shuts the listener
// down. Like the pprof listener (pprof.go) it registers on a private
// mux, and like it the serving goroutine is read-only measurement with
// no result to merge — the same sddlint concurrency exemption covers
// both.
func StartMetricsServer(addr string, m *Metrics) (stop func() error, err error) {
	_, stop, err = StartMetricsServerAddr(addr, m)
	return stop, err
}

// StartMetricsServerAddr is StartMetricsServer but also reports the
// address the listener bound, so callers can pass a ":0"-style addr and
// discover the port (tests do).
func StartMetricsServerAddr(addr string, m *Metrics) (bound string, stop func() error, err error) {
	//lint:ignore leakcheck ownership moves to srv.Serve; the returned srv.Close stop func closes the listener
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listen on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		// Snapshot first, then write: a slow client must not hold
		// instrument loads open.
		snap := m.Snapshot().WithRuntime()
		_ = snap.WriteOpenMetrics(w) // client went away; nothing to salvage
	})
	// Header-read and idle timeouts keep a stalled or misbehaving
	// scraper from pinning connections open for the life of the run
	// (enforced tree-wide by the sddlint httpserver analyzer).
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go srv.Serve(ln) //nolint — observability-only goroutine; see doc comment
	return ln.Addr().String(), srv.Close, nil
}
