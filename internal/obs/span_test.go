package obs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// spanClock is a hand-cranked clock for span tests: hermetic, and
// advanced explicitly so stage intervals are exact.
type spanClock struct {
	mu  sync.Mutex
	now time.Time
}

func newSpanClock() *spanClock {
	return &spanClock{now: time.Unix(1700000000, 0)}
}

func (c *spanClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *spanClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestParseTraceparent(t *testing.T) {
	traceID := "4bf92f3577b34da6a3ce929d0e0e4736"
	parentID := "00f067aa0ba902b7"
	valid := "00-" + traceID + "-" + parentID + "-01"

	gotTrace, gotParent, ok := ParseTraceparent(valid)
	if !ok || gotTrace != traceID || gotParent != parentID {
		t.Fatalf("ParseTraceparent(%q) = %q, %q, %v", valid, gotTrace, gotParent, ok)
	}

	bad := []string{
		"",
		valid[:54],                               // too short
		valid + "0",                              // too long
		"ff-" + traceID + "-" + parentID + "-01", // reserved version
		"00-" + strings.ToUpper(traceID) + "-" + parentID + "-01", // uppercase hex
		"00-" + strings.Repeat("0", 32) + "-" + parentID + "-01",  // all-zero trace
		"00-" + traceID + "-" + strings.Repeat("0", 16) + "-01",   // all-zero parent
		"00-" + traceID[:31] + "g-" + parentID + "-01",            // non-hex
		"00_" + traceID + "-" + parentID + "-01",                  // wrong separator
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted a malformed header", h)
		}
	}
}

func TestFormatTraceparentRoundTrip(t *testing.T) {
	traceID := "0123456789abcdef0123456789abcdef"
	parentID := "fedcba9876543210"
	for _, sampled := range []bool{false, true} {
		h := FormatTraceparent(traceID, parentID, sampled)
		gotTrace, gotParent, ok := ParseTraceparent(h)
		if !ok || gotTrace != traceID || gotParent != parentID {
			t.Fatalf("round trip of %q = %q, %q, %v", h, gotTrace, gotParent, ok)
		}
	}
}

func TestSampledDeterministicAndBounded(t *testing.T) {
	if Sampled("anything", 1) != true || Sampled("anything", 0) != false {
		t.Fatal("rate 1 must sample everything, rate 0 nothing")
	}
	const n = 20000
	rate := 0.25
	hits := 0
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%032x", i+1)
		v := Sampled(id, rate)
		if v != Sampled(id, rate) {
			t.Fatalf("Sampled(%q) not stable", id)
		}
		if v {
			hits++
		}
	}
	got := float64(hits) / n
	if got < rate-0.03 || got > rate+0.03 {
		t.Fatalf("sample rate %v drifted to %v over %d ids", rate, got, n)
	}
}

// traceFields re-reads the single span event a test produced.
func traceFields(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	events, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	var out []map[string]any
	for _, ev := range events {
		if ev.Type != "span" {
			t.Fatalf("unexpected event type %q", ev.Type)
		}
		out = append(out, ev.Fields)
	}
	return out
}

func TestSpanLifecycleAndStageNesting(t *testing.T) {
	clock := newSpanClock()
	var buf bytes.Buffer
	ob := &Observer{Metrics: NewMetrics(), Trace: NewTracer(&buf, clock.Now)}
	spans := NewSpans(ob, clock.Now, SpanOptions{Sample: 1})

	traceID := "4bf92f3577b34da6a3ce929d0e0e4736"
	h := FormatTraceparent(traceID, "00f067aa0ba902b7", true)
	s := spans.Start("POST", "/diagnose", h)
	if s.RequestID() != traceID {
		t.Fatalf("RequestID = %q, want inbound trace id", s.RequestID())
	}
	if !s.Sampled() {
		t.Fatal("sample rate 1 must sample")
	}
	clock.Advance(1 * time.Millisecond)
	s.BeginStage("decode")
	clock.Advance(2 * time.Millisecond)
	s.BeginStage("recall") // implicitly closes decode
	clock.Advance(3 * time.Millisecond)
	s.EndStage()
	clock.Advance(1 * time.Millisecond)
	s.BeginStage("scan") // left open: End must close it
	clock.Advance(2 * time.Millisecond)
	s.SetStatus(200)
	spans.End(s)

	fields := traceFields(t, &buf)
	if len(fields) != 1 {
		t.Fatalf("got %d span events, want 1", len(fields))
	}
	f := fields[0]
	if f["request_id"] != traceID || f["parent"] != "00f067aa0ba902b7" {
		t.Fatalf("span identity fields wrong: %v", f)
	}
	durUs := int64(f["dur_us"].(float64))
	if durUs != 9000 {
		t.Fatalf("dur_us = %d, want 9000", durUs)
	}
	stages, ok := f["stages"].([]any)
	if !ok || len(stages) != 3 {
		t.Fatalf("stages = %v, want 3 entries", f["stages"])
	}
	wantStages := []struct {
		name           string
		startUs, durUs int64
	}{
		{"decode", 1000, 2000},
		{"recall", 3000, 3000},
		{"scan", 7000, 2000},
	}
	for i, st := range stages {
		m := st.(map[string]any)
		w := wantStages[i]
		name := m["name"].(string)
		startUs := int64(m["start_us"].(float64))
		stageDur := int64(m["dur_us"].(float64))
		if name != w.name || startUs != w.startUs || stageDur != w.durUs {
			t.Errorf("stage %d = {%s %d %d}, want %+v", i, name, startUs, stageDur, w)
		}
		if startUs < 0 || startUs+stageDur > durUs {
			t.Errorf("stage %d [%d,%d] escapes span interval [0,%d]", i, startUs, startUs+stageDur, durUs)
		}
	}
	if got := ob.Metrics.Counter(ServeSpans); got != 1 {
		t.Fatalf("serve_spans = %d, want 1", got)
	}
}

func TestSpanEmissionRules(t *testing.T) {
	cases := []struct {
		name   string
		opts   SpanOptions
		status int
		dur    time.Duration
		errMsg string
		want   bool
	}{
		{"unsampled fast ok", SpanOptions{Sample: 0}, 200, time.Millisecond, "", false},
		{"sampled", SpanOptions{Sample: 1}, 200, time.Millisecond, "", true},
		{"unsampled slow", SpanOptions{Sample: 0, Slow: 10 * time.Millisecond}, 200, 20 * time.Millisecond, "", true},
		{"unsampled under slow threshold", SpanOptions{Sample: 0, Slow: 10 * time.Millisecond}, 200, 5 * time.Millisecond, "", false},
		{"unsampled failed", SpanOptions{Sample: 0}, 500, time.Millisecond, "panic: boom", true},
		{"unsampled client error", SpanOptions{Sample: 0}, 400, time.Millisecond, "", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newSpanClock()
			var buf bytes.Buffer
			ob := &Observer{Metrics: NewMetrics(), Trace: NewTracer(&buf, clock.Now)}
			spans := NewSpans(ob, clock.Now, tc.opts)

			s := spans.Start("POST", "/diagnose", "")
			clock.Advance(tc.dur)
			s.SetStatus(tc.status)
			if tc.errMsg != "" {
				s.SetError(tc.errMsg)
			}
			spans.End(s)

			fields := traceFields(t, &buf)
			if got := len(fields) == 1; got != tc.want {
				t.Fatalf("emitted = %v, want %v (events: %v)", got, tc.want, fields)
			}
			if tc.want {
				f := fields[0]
				if int(f["status"].(float64)) != tc.status {
					t.Errorf("status = %v, want %d", f["status"], tc.status)
				}
				if tc.errMsg != "" && f["error"] != tc.errMsg {
					t.Errorf("error = %v, want %q", f["error"], tc.errMsg)
				}
				if tc.opts.Slow > 0 && tc.dur >= tc.opts.Slow && f["slow"] != true {
					t.Errorf("slow request span missing slow marker: %v", f)
				}
			}
			wantSlow := int64(0)
			if tc.opts.Slow > 0 && tc.dur >= tc.opts.Slow {
				wantSlow = 1
			}
			if got := ob.Metrics.Counter(ServeSlowRequests); got != wantSlow {
				t.Errorf("serve_slow_requests = %d, want %d", got, wantSlow)
			}
		})
	}
}

func TestSpanGeneratedIDsMonotonicAndValid(t *testing.T) {
	clock := newSpanClock()
	spans := NewSpans(nil, clock.Now, SpanOptions{})
	var ids []string
	for i := 0; i < 5; i++ {
		s := spans.Start("GET", "/healthz", "")
		ids = append(ids, s.RequestID())
		spans.End(s)
	}
	for i, id := range ids {
		if len(id) != 32 || !hexLower(id) {
			t.Fatalf("generated id %q is not 32 lowercase hex chars", id)
		}
		if i > 0 && !(ids[i-1] < id) {
			t.Fatalf("generated ids not monotonic: %q then %q", ids[i-1], id)
		}
	}
}

func TestSpanInflight(t *testing.T) {
	clock := newSpanClock()
	spans := NewSpans(nil, clock.Now, SpanOptions{})

	a := spans.Start("POST", "/diagnose", "")
	clock.Advance(5 * time.Millisecond)
	b := spans.Start("GET", "/cases", "")
	b.BeginStage("recall")
	clock.Advance(5 * time.Millisecond)

	in := spans.Inflight()
	if len(in) != 2 {
		t.Fatalf("inflight = %d requests, want 2", len(in))
	}
	if in[0].Path != "/diagnose" || in[1].Path != "/cases" {
		t.Fatalf("inflight order wrong: %+v", in)
	}
	if in[0].Seq >= in[1].Seq {
		t.Fatalf("inflight not in seq order: %+v", in)
	}
	if in[0].AgeMs != 10 || in[1].AgeMs != 5 {
		t.Fatalf("ages = %d, %d, want 10, 5", in[0].AgeMs, in[1].AgeMs)
	}
	if in[0].Stage != "" || in[1].Stage != "recall" {
		t.Fatalf("stages = %q, %q, want \"\", \"recall\"", in[0].Stage, in[1].Stage)
	}

	spans.End(a)
	spans.End(b)
	if in := spans.Inflight(); len(in) != 0 {
		t.Fatalf("inflight after End = %+v, want empty", in)
	}
}

func TestSpanFreeListRecycles(t *testing.T) {
	clock := newSpanClock()
	spans := NewSpans(nil, clock.Now, SpanOptions{})
	a := spans.Start("POST", "/diagnose", "")
	spans.End(a)
	b := spans.Start("POST", "/diagnose", "")
	if a != b {
		t.Fatal("ended span was not recycled through the free list")
	}
	if b.RequestID() == "" {
		t.Fatal("recycled span missing request id")
	}
	spans.End(b)
}

// TestSampledSetStableAcrossWorkers drives the same request-ID stream
// through the span layer at several concurrency levels and checks the
// emitted (sampled) set is identical each time — the determinism
// property that makes a sampling rate a reproducible filter rather than
// a coin flip per run.
func TestSampledSetStableAcrossWorkers(t *testing.T) {
	const n = 512
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("%016x%016x", 0xabcdef, i+1)
	}

	run := func(workers int) []string {
		var buf bytes.Buffer
		ob := &Observer{Trace: NewTracer(&buf, nil)}
		spans := NewSpans(ob, time.Now, SpanOptions{Sample: 0.5})
		var wg sync.WaitGroup
		wg.Add(workers)
		next := make(chan string)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for id := range next {
					s := spans.Start("POST", "/diagnose", FormatTraceparent(id, "00f067aa0ba902b7", true))
					s.BeginStage("decode")
					s.EndStage()
					spans.End(s)
				}
			}()
		}
		for _, id := range ids {
			next <- id
		}
		close(next)
		wg.Wait()

		events, err := ReadEvents(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadEvents: %v", err)
		}
		var got []string
		for _, ev := range events {
			got = append(got, ev.Fields["request_id"].(string))
		}
		sort.Strings(got)
		return got
	}

	want := run(1)
	if len(want) == 0 || len(want) == n {
		t.Fatalf("rate 0.5 sampled %d of %d — test ids give no discrimination", len(want), n)
	}
	for _, id := range want {
		if !Sampled(id, 0.5) {
			t.Fatalf("emitted id %q disagrees with Sampled()", id)
		}
	}
	for _, workers := range []int{4, 16} {
		got := run(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d sampled %d spans, workers=1 sampled %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d sampled set diverges at %d: %q vs %q", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSpanZeroAllocUnsampled pins the hot-path cost of tracing-off:
// with -trace-sample 0 and an inbound traceparent, a full
// Start/stages/End cycle allocates nothing (free-list recycling, inline
// stage buffer, substring request IDs).
func TestSpanZeroAllocUnsampled(t *testing.T) {
	ob := &Observer{Metrics: NewMetrics(), Trace: NewTracer(io.Discard, nil)}
	spans := NewSpans(ob, time.Now, SpanOptions{Sample: 0})
	h := FormatTraceparent("4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7", true)

	cycle := func() {
		s := spans.Start("POST", "/diagnose", h)
		s.BeginStage("decode")
		s.BeginStage("recall")
		s.BeginStage("scan")
		s.BeginStage("record")
		s.EndStage()
		s.SetStatus(200)
		spans.End(s)
	}
	cycle() // warm the free list: the first span is a real allocation

	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("unsampled span cycle allocates %.2f objects/op, want 0", avg)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var spans *Spans
	s := spans.Start("POST", "/diagnose", "")
	if s != nil {
		t.Fatal("nil Spans must return a nil span")
	}
	// All of these must be no-ops, not panics.
	s.BeginStage("decode")
	s.EndStage()
	s.SetStatus(200)
	s.SetError("x")
	if s.RequestID() != "" || s.Sampled() {
		t.Fatal("nil span must report zero values")
	}
	spans.End(s)
	if got := spans.Inflight(); got != nil {
		t.Fatalf("nil Spans Inflight = %v, want nil", got)
	}
}
