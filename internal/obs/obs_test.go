package obs

import (
	"bytes"
	"errors"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

func TestMetricsInstruments(t *testing.T) {
	m := NewMetrics()
	m.Inc(RestartsRun)
	m.Add(RestartsRun, 2)
	m.Add(CandidateScans, 40)
	m.Set(IndistPairs, 17)
	m.Observe(RestartIndist, 0)
	m.Observe(RestartIndist, 1)
	m.Observe(RestartIndist, 5) // bucket [4,7]
	m.Observe(RestartIndist, 7)

	if got := m.Counter(RestartsRun); got != 3 {
		t.Errorf("RestartsRun = %d, want 3", got)
	}
	if got := m.Gauge(IndistPairs); got != 17 {
		t.Errorf("IndistPairs = %d, want 17", got)
	}
	s := m.Snapshot()
	if s.Counters["candidate_scans"] != 40 {
		t.Errorf("snapshot candidate_scans = %d, want 40", s.Counters["candidate_scans"])
	}
	hs := s.Histograms["restart_indist"]
	if hs.Count != 4 {
		t.Errorf("restart_indist count = %d, want 4", hs.Count)
	}
	var b47 int64
	for _, b := range hs.Buckets {
		if b.Lo == 4 && b.Hi == 7 {
			b47 = b.N
		}
	}
	if b47 != 2 {
		t.Errorf("bucket [4,7] = %d, want 2", b47)
	}
}

func TestMetricsMerge(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Add(SimBatches, 3)
	b.Add(SimBatches, 4)
	b.Set(IndistPairs, 9)
	b.Observe(RowElapsedMs, 100)
	a.Merge(b)
	if got := a.Counter(SimBatches); got != 7 {
		t.Errorf("merged SimBatches = %d, want 7", got)
	}
	if got := a.Gauge(IndistPairs); got != 0 {
		t.Errorf("gauges must not merge; IndistPairs = %d", got)
	}
	if got := a.Snapshot().Histograms["row_elapsed_ms"].Count; got != 1 {
		t.Errorf("merged row_elapsed_ms count = %d, want 1", got)
	}
}

// TestNilSafety: every instrumentation entry point must be callable
// with observability off (nil receivers all the way down).
func TestNilSafety(t *testing.T) {
	var m *Metrics
	m.Inc(RestartsRun)
	m.Add(CandidateScans, 5)
	m.Set(IndistPairs, 1)
	m.Observe(RestartIndist, 2)
	m.Merge(NewMetrics())
	if got := m.Snapshot(); got.Counters == nil {
		t.Error("nil Metrics snapshot must be initialized")
	}

	var tr *Tracer
	tr.Emit("x", nil)
	if tr.Err() != nil || tr.Close() != nil {
		t.Error("nil Tracer must be inert")
	}

	var p *Progress
	p.Tick()

	var o *Observer
	o.Emit("x", map[string]any{"k": 1})
	o.Tick()
	o.M().Inc(RestartsRun)
	if o.Tracing() {
		t.Error("nil Observer must not report tracing")
	}
	if o.Scoped("r") != nil {
		t.Error("Scoped on nil must return nil")
	}
}

func TestTracerJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	now := time.Unix(100, 0)
	clock := func() time.Time { return now }
	tr := NewTracer(&buf, clock)
	tr.Emit("build_start", map[string]any{"n": 10})
	now = now.Add(250 * time.Millisecond)
	tr.Emit("restart_end", map[string]any{"restart": 0, "indist": 42})
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Seq != 1 || events[1].Seq != 2 {
		t.Errorf("seq = %d,%d, want 1,2", events[0].Seq, events[1].Seq)
	}
	if events[1].TMs != 250 {
		t.Errorf("t_ms = %d, want 250", events[1].TMs)
	}
	if events[1].Type != "restart_end" {
		t.Errorf("type = %q, want restart_end", events[1].Type)
	}
	if got := events[1].Fields["indist"].(float64); got != 42 {
		t.Errorf("indist field = %v, want 42", got)
	}
}

func TestFileTracerAppendsDurably(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	tr, err := NewFileTracer(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit("a", nil)
	// Every event must be durable before Close — that is the
	// flushed-on-SIGINT guarantee. Reopen the path without closing.
	tr2, err := NewFileTracer(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr2.Emit("b", nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr2.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := ReadEvents(f)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(events) != 2 || events[0].Type != "a" || events[1].Type != "b" {
		t.Fatalf("append-only trace lost events: %+v", events)
	}
}

// TestReadEventsTruncatedTail: a crash mid-append leaves a final line
// without its newline; ReadEvents must hand back the parsed prefix under
// a sentinel instead of failing the whole trace.
func TestReadEventsTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, nil)
	tr.Emit("build_start", map[string]any{"n": 4})
	tr.Emit("restart_end", map[string]any{"restart": 0})
	full := buf.String()
	torn := full[:len(full)-10] // cut inside the second event's JSON

	events, err := ReadEvents(strings.NewReader(torn))
	if !errors.Is(err, ErrTruncatedTrace) {
		t.Fatalf("err = %v, want ErrTruncatedTrace", err)
	}
	if len(events) != 1 || events[0].Type != "build_start" {
		t.Fatalf("parsed prefix = %+v, want the one complete event", events)
	}

	// A final line that parses but lost only its newline is complete data:
	// no error.
	events, err = ReadEvents(strings.NewReader(strings.TrimSuffix(full, "\n")))
	if err != nil || len(events) != 2 {
		t.Fatalf("newline-less but parseable tail: events=%d err=%v", len(events), err)
	}

	// A malformed line in the middle is corruption, not truncation.
	_, err = ReadEvents(strings.NewReader("{bad json}\n" + full))
	if err == nil || errors.Is(err, ErrTruncatedTrace) {
		t.Fatalf("mid-trace corruption: err = %v, want a hard parse error", err)
	}
}

// TestProgressFinalSummary: Final must print even when no interval ever
// elapsed (the short-build case), exactly once, with the elapsed time.
func TestProgressFinalSummary(t *testing.T) {
	var buf bytes.Buffer
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	m := NewMetrics()
	m.Inc(RestartsRun)
	p := NewProgress(&buf, time.Hour, clock, m)

	p.Tick() // far below the interval: silent
	if buf.Len() != 0 {
		t.Fatalf("tick before interval printed: %q", buf.String())
	}
	now = now.Add(1500 * time.Millisecond)
	p.Final()
	line := buf.String()
	if !strings.Contains(line, "progress: done") || !strings.Contains(line, "restarts_run=1") {
		t.Fatalf("final line %q missing summary fields", line)
	}
	if !strings.Contains(line, "elapsed=1.5s") {
		t.Fatalf("final line %q missing elapsed", line)
	}
	p.Final() // idempotent
	now = now.Add(2 * time.Hour)
	p.Tick() // and Tick after Final stays silent
	if got := buf.String(); got != line {
		t.Fatalf("Final not idempotent / Tick after Final printed: %q", got)
	}
}

func TestProgressTicksAtInterval(t *testing.T) {
	var buf bytes.Buffer
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	m := NewMetrics()
	m.Inc(RestartsRun)
	p := NewProgress(&buf, time.Second, clock, m)

	p.Tick() // 0s elapsed: below interval
	if buf.Len() != 0 {
		t.Fatalf("premature progress line: %q", buf.String())
	}
	now = now.Add(time.Second)
	p.Tick()
	line := buf.String()
	if !strings.Contains(line, "restarts_run=1") {
		t.Fatalf("progress line %q missing restarts_run", line)
	}
	buf.Reset()
	now = now.Add(100 * time.Millisecond)
	p.Tick() // interval not yet elapsed again
	if buf.Len() != 0 {
		t.Fatalf("progress line before interval: %q", buf.String())
	}
}

func TestObserverScopedAndLabel(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, nil)
	root := &Observer{Metrics: NewMetrics(), Trace: tr}
	child := root.Scoped("s27/diag")
	if child.Metrics == root.Metrics {
		t.Error("Scoped must get a fresh metrics registry")
	}
	if child.Trace != root.Trace {
		t.Error("Scoped must share the parent tracer")
	}
	child.M().Inc(RestartsRun)
	if root.M().Counter(RestartsRun) != 0 {
		t.Error("child increments leaked into parent metrics")
	}
	child.Emit("restart_end", map[string]any{"restart": 1})
	events, err := ReadEvents(&buf)
	if err != nil || len(events) != 1 {
		t.Fatalf("events=%v err=%v", events, err)
	}
	if events[0].Fields["row"] != "s27/diag" {
		t.Errorf("labelled event fields = %v, want row=s27/diag", events[0].Fields)
	}
}

func TestStartPprofServes(t *testing.T) {
	stop, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer stop()
	// The listener address is not exposed; starting and stopping
	// cleanly (no panic, no leak past Close) is the contract here.
	_ = http.DefaultServeMux // and DefaultServeMux stays untouched
}
