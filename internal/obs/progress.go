package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress prints a one-line metrics digest at most once per interval.
// It is polled, not timer-driven: the instrumented layers call Tick from
// their ordered fold points (restart folds, sweep-row deliveries, sim
// batches), and a line is printed only when the caller-supplied clock
// says the interval has elapsed. Polling keeps the reporter free of
// goroutines — the par package owns all computation concurrency, and a
// background ticker would be the one goroutine with nothing to merge.
// The cost of polling is that a silent phase longer than the interval
// prints nothing until its next fold point; DESIGN.md §10 accepts that
// trade.
type Progress struct {
	interval time.Duration
	clock    func() time.Time
	w        io.Writer
	m        *Metrics

	mu   sync.Mutex
	last time.Time
}

// NewProgress reports m onto w every interval per clock. Returns nil
// (a no-op reporter) if any argument is unusable.
func NewProgress(w io.Writer, interval time.Duration, clock func() time.Time, m *Metrics) *Progress {
	if w == nil || interval <= 0 || clock == nil {
		return nil
	}
	return &Progress{interval: interval, clock: clock, w: w, m: m, last: clock()}
}

// Tick prints a progress line when the interval has elapsed since the
// last line. Safe on nil and from concurrent callers.
func (p *Progress) Tick() {
	if p == nil {
		return
	}
	now := p.clock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if now.Sub(p.last) < p.interval {
		return
	}
	p.last = now
	p.write()
}

// write prints the nonzero counters and gauges as sorted key=value
// pairs: stable field order, no fields that carry no signal yet.
func (p *Progress) write() {
	s := p.m.Snapshot()
	line := "progress:"
	for _, name := range sortedKeys(s.Counters) {
		if v := s.Counters[name]; v != 0 {
			line += fmt.Sprintf(" %s=%d", name, v)
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if v := s.Gauges[name]; v != 0 {
			line += fmt.Sprintf(" %s=%d", name, v)
		}
	}
	fmt.Fprintln(p.w, line)
}
