package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress prints a one-line metrics digest at most once per interval.
// It is polled, not timer-driven: the instrumented layers call Tick from
// their ordered fold points (restart folds, sweep-row deliveries, sim
// batches), and a line is printed only when the caller-supplied clock
// says the interval has elapsed. Polling keeps the reporter free of
// goroutines — the par package owns all computation concurrency, and a
// background ticker would be the one goroutine with nothing to merge.
// The cost of polling is that a silent phase longer than the interval
// prints nothing until its next fold point; DESIGN.md §10 accepts that
// trade. Final closes the other polling gap: a run shorter than the
// interval still ends with one summary line instead of finishing
// silently.
type Progress struct {
	interval time.Duration
	clock    func() time.Time
	w        io.Writer
	m        *Metrics

	mu    sync.Mutex
	start time.Time
	last  time.Time
	done  bool
}

// NewProgress reports m onto w every interval per clock. Returns nil
// (a no-op reporter) if any argument is unusable.
func NewProgress(w io.Writer, interval time.Duration, clock func() time.Time, m *Metrics) *Progress {
	if w == nil || interval <= 0 || clock == nil {
		return nil
	}
	now := clock()
	return &Progress{interval: interval, clock: clock, w: w, m: m, start: now, last: now}
}

// Tick prints a progress line when the interval has elapsed since the
// last line. Safe on nil and from concurrent callers.
func (p *Progress) Tick() {
	if p == nil {
		return
	}
	now := p.clock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done || now.Sub(p.last) < p.interval {
		return
	}
	p.last = now
	p.write("progress:", "")
}

// Final prints the end-of-run summary line unconditionally — even when
// the run finished before the first interval elapsed, so short builds
// never end silently. Idempotent (later Final and Tick calls are
// no-ops) and safe on nil; the command layer calls it once the pipeline
// has delivered its result.
func (p *Progress) Final() {
	if p == nil {
		return
	}
	now := p.clock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return
	}
	p.done = true
	p.write("progress: done", fmt.Sprintf(" elapsed=%s", now.Sub(p.start)))
}

// write prints prefix, the nonzero counters and gauges as sorted
// key=value pairs (stable field order, no fields that carry no signal
// yet), then the suffix. Callers hold p.mu.
func (p *Progress) write(prefix, suffix string) {
	s := p.m.Snapshot()
	line := prefix
	for _, name := range sortedKeys(s.Counters) {
		if v := s.Counters[name]; v != 0 {
			line += fmt.Sprintf(" %s=%d", name, v)
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if v := s.Gauges[name]; v != 0 {
			line += fmt.Sprintf(" %s=%d", name, v)
		}
	}
	fmt.Fprintln(p.w, line+suffix)
}
