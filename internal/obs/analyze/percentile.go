package analyze

import (
	"errors"
	"math"

	"sddict/internal/obs"
)

func isTruncated(err error) bool { return errors.Is(err, obs.ErrTruncatedTrace) }

// PercentileSummary is the standard three-quantile digest of one
// histogram.
type PercentileSummary struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Summarize computes the p50/p90/p99 digest of a histogram snapshot.
func Summarize(hs obs.HistSnapshot) PercentileSummary {
	return PercentileSummary{
		Count: hs.Count,
		Sum:   hs.Sum,
		P50:   Percentile(hs, 0.50),
		P90:   Percentile(hs, 0.90),
		P99:   Percentile(hs, 0.99),
	}
}

// Percentile estimates the q-quantile (q in [0,1]) of a power-of-two
// bucketed histogram by linear interpolation inside the bucket holding
// the target rank — the standard Prometheus histogram_quantile
// estimate, adapted to the registry's [lo,hi] integer buckets. The
// estimate is exact for bucket boundaries and at most one bucket wide
// off elsewhere; with doubling buckets that bounds the relative error
// at 2x, which is enough to rank regressions.
//
// Returns 0 for an empty histogram and the top bucket's upper edge for
// q >= 1.
func Percentile(hs obs.HistSnapshot, q float64) float64 {
	if hs.Count == 0 || len(hs.Buckets) == 0 {
		return 0
	}
	// NaN fails every ordered comparison, so a plain q<0 / q>1 clamp
	// would let it through to rank=NaN, skip every bucket, and
	// over-report the top edge. !(q >= 0) is the NaN-safe form.
	if !(q >= 0) {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(hs.Count)
	var cum float64
	for _, b := range hs.Buckets {
		n := float64(b.N)
		if cum+n >= rank {
			if b.Hi <= b.Lo { // the zero bucket (and any degenerate one)
				return float64(b.Lo)
			}
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / n
			}
			return float64(b.Lo) + frac*float64(b.Hi-b.Lo)
		}
		cum += n
	}
	top := hs.Buckets[len(hs.Buckets)-1]
	return float64(top.Hi)
}

// roundPct rounds a percentage to one decimal for stable rendering.
func roundPct(v float64) float64 { return math.Round(v*10) / 10 }
