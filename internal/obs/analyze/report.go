package analyze

import (
	"fmt"
	"io"
	"time"
)

// errWriter folds the per-line error checks of a long report into one
// sticky error, so the rendering reads as prose.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

func ms(v int64) time.Duration { return time.Duration(v) * time.Millisecond }

// WriteText renders the run as the human-readable sddstat report. The
// output is deterministic for a given run (fixed section and key order).
func (r *Run) WriteText(w io.Writer) error {
	ew := &errWriter{w: w}

	ew.printf("trace: %d events over %s", r.Events, ms(r.DurationMs))
	if r.Builds > 1 {
		ew.printf(" (%d builds appended; build figures describe the last)", r.Builds)
	}
	ew.printf("\n")
	if r.Truncated {
		ew.printf("TRUNCATED: final event torn mid-write (crash or SIGKILL); figures cover the parsed prefix\n")
	}

	b := r.Build
	if r.Builds > 0 {
		ew.printf("build: %d faults x %d tests, seed %d, workers %d, schema v%d\n",
			b.Faults, b.Tests, b.Seed, b.Workers, b.Schema)
		switch {
		case b.Completed && b.Interrupted:
			ew.printf("  interrupted: best-so-far indist %d after %d restarts (full-dictionary floor %d)\n",
				b.FinalIndist, b.Restarts, b.IndistFull)
		case b.Completed:
			ew.printf("  final indist %d after %d restarts (full-dictionary floor %d)\n",
				b.FinalIndist, b.Restarts, b.IndistFull)
		default:
			ew.printf("  no build_end event: the run was still in flight when the trace ended\n")
		}
	}

	ew.printf("phase breakdown:\n")
	for _, p := range r.Phases {
		pct := 0.0
		if r.DurationMs > 0 {
			pct = float64(p.Ms) / float64(r.DurationMs) * 100
		}
		ew.printf("  %-16s %10s  %5.1f%%  (%d events)\n", p.Phase, ms(p.Ms), pct, p.Events)
	}

	if len(r.Convergence) > 0 {
		ew.printf("restart convergence (improvements only):\n")
		for _, p := range r.Convergence {
			if !p.Improved {
				continue
			}
			if p.Row != "" {
				ew.printf("  %s restart %4d: best %d\n", p.Row, p.Restart, p.Best)
			} else {
				ew.printf("  restart %4d: best %d\n", p.Restart, p.Best)
			}
		}
	}

	sp := r.Speculation
	if sp.RestartsStarted > 0 {
		ew.printf("speculation: %d restarts started, %d folded, %d discarded (%.1f%% waste)\n",
			sp.RestartsStarted, sp.RestartsFolded, sp.RestartsDiscarded, roundPct(sp.WasteRatio*100))
	}

	cs := r.Checkpoints
	if cs.Saves > 0 {
		ew.printf("checkpoints: %d saves (%d persisted, %d loads)", cs.Saves, cs.Persisted, cs.Loads)
		if cs.Saves > 1 {
			ew.printf(", mean interval %s, ~%.1f restarts apart",
				ms(int64(cs.MeanIntervalMs)), cs.MeanRestartsBetween)
		}
		if cs.EndsOnSave {
			ew.printf("; trace ends on checkpoint_save")
		}
		ew.printf("\n")
	}

	if len(r.Rows) > 0 {
		ew.printf("sweep rows (%d delivered", len(r.Rows))
		if sp.RowsStarted > len(r.Rows) {
			ew.printf(" of %d started", sp.RowsStarted)
		}
		ew.printf("):\n")
		for _, rs := range r.Rows {
			status := rs.Status
			if status == "" {
				if rs.OK {
					status = "ok"
				} else {
					status = "failed"
				}
			}
			ew.printf("  [%2d] %-16s %-12s %10s", rs.Index, rs.Row, status, ms(rs.ElapsedMs))
			if rs.Error != "" {
				ew.printf("  %s", rs.Error)
			}
			ew.printf("\n")
		}
	}

	if len(r.Percentiles) > 0 {
		ew.printf("histogram percentiles:\n")
		for _, name := range sortedPercentileKeys(r.Percentiles) {
			p := r.Percentiles[name]
			ew.printf("  %-16s n=%-6d p50=%-8.1f p90=%-8.1f p99=%.1f\n",
				name, p.Count, p.P50, p.P90, p.P99)
		}
	}
	if r.Metrics != nil {
		if ew.err == nil {
			ew.err = r.Metrics.WriteText(w)
		}
	}
	return ew.err
}

func sortedPercentileKeys(m map[string]PercentileSummary) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
