package analyze

import (
	"testing"

	"sddict/internal/obs"
)

func histOf(t *testing.T, vs ...int64) obs.HistSnapshot {
	t.Helper()
	m := obs.NewMetrics()
	for _, v := range vs {
		m.Observe(obs.RestartIndist, v)
	}
	return m.Snapshot().Histograms["restart_indist"]
}

func TestPercentileInterpolation(t *testing.T) {
	// Buckets: [1,1]x1, [2,3]x2, [4,7]x4 — 7 samples total.
	hs := histOf(t, 1, 2, 3, 4, 5, 6, 7)

	// rank(0.5) = 3.5: one past the [2,3] bucket's cumulative 3, an
	// eighth of the way into [4,7] -> 4 + 0.125*3 = 4.375.
	if got := Percentile(hs, 0.50); got != 4.375 {
		t.Errorf("p50 = %v, want 4.375", got)
	}
	// rank(1.0) = 7 lands exactly on the last bucket's cumulative edge.
	if got := Percentile(hs, 1.0); got != 7 {
		t.Errorf("p100 = %v, want 7", got)
	}
	// Out-of-range quantiles clamp.
	if got := Percentile(hs, 1.5); got != 7 {
		t.Errorf("clamped p150 = %v, want 7", got)
	}
	if got, zero := Percentile(hs, -0.5), Percentile(hs, 0); got != zero {
		t.Errorf("negative quantile = %v, want clamp to q=0 value %v", got, zero)
	}
}

func TestPercentileZeroBucket(t *testing.T) {
	hs := histOf(t, 0, 0, 0, 8)
	// Three of four samples are exactly zero; the degenerate [0,0]
	// bucket must report its boundary, not interpolate.
	if got := Percentile(hs, 0.50); got != 0 {
		t.Errorf("p50 of mostly-zero histogram = %v, want 0", got)
	}
	if got := Percentile(hs, 0.99); got < 8 || got > 15 {
		t.Errorf("p99 = %v, want within top bucket [8,15]", got)
	}
}

func TestPercentileEmpty(t *testing.T) {
	if got := Percentile(obs.HistSnapshot{}, 0.5); got != 0 {
		t.Errorf("empty histogram percentile = %v, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(histOf(t, 1, 2, 3, 4))
	if s.Count != 4 || s.Sum != 10 {
		t.Errorf("summary count/sum = %d/%d, want 4/10", s.Count, s.Sum)
	}
	if s.P50 <= 0 || s.P90 < s.P50 || s.P99 < s.P90 {
		t.Errorf("percentiles not monotone: %+v", s)
	}
}
