package analyze

import (
	"math"
	"testing"

	"sddict/internal/obs"
)

func histOf(t *testing.T, vs ...int64) obs.HistSnapshot {
	t.Helper()
	m := obs.NewMetrics()
	for _, v := range vs {
		m.Observe(obs.RestartIndist, v)
	}
	return m.Snapshot().Histograms["restart_indist"]
}

func TestPercentileInterpolation(t *testing.T) {
	// Buckets: [1,1]x1, [2,3]x2, [4,7]x4 — 7 samples total.
	hs := histOf(t, 1, 2, 3, 4, 5, 6, 7)

	// rank(0.5) = 3.5: one past the [2,3] bucket's cumulative 3, an
	// eighth of the way into [4,7] -> 4 + 0.125*3 = 4.375.
	if got := Percentile(hs, 0.50); got != 4.375 {
		t.Errorf("p50 = %v, want 4.375", got)
	}
	// rank(1.0) = 7 lands exactly on the last bucket's cumulative edge.
	if got := Percentile(hs, 1.0); got != 7 {
		t.Errorf("p100 = %v, want 7", got)
	}
	// Out-of-range quantiles clamp.
	if got := Percentile(hs, 1.5); got != 7 {
		t.Errorf("clamped p150 = %v, want 7", got)
	}
	if got, zero := Percentile(hs, -0.5), Percentile(hs, 0); got != zero {
		t.Errorf("negative quantile = %v, want clamp to q=0 value %v", got, zero)
	}
}

func TestPercentileZeroBucket(t *testing.T) {
	hs := histOf(t, 0, 0, 0, 8)
	// Three of four samples are exactly zero; the degenerate [0,0]
	// bucket must report its boundary, not interpolate.
	if got := Percentile(hs, 0.50); got != 0 {
		t.Errorf("p50 of mostly-zero histogram = %v, want 0", got)
	}
	if got := Percentile(hs, 0.99); got < 8 || got > 15 {
		t.Errorf("p99 = %v, want within top bucket [8,15]", got)
	}
}

func TestPercentileEmpty(t *testing.T) {
	if got := Percentile(obs.HistSnapshot{}, 0.5); got != 0 {
		t.Errorf("empty histogram percentile = %v, want 0", got)
	}
}

// TestPercentileDegenerateHistograms pins the estimator on the shapes
// a recall-latency histogram routinely has early in a serve run: empty,
// a single sample, one bucket, everything in the overflow bucket. No
// shape may yield NaN or a value outside the occupied bucket range.
func TestPercentileDegenerateHistograms(t *testing.T) {
	cases := []struct {
		name string
		hs   obs.HistSnapshot
		lo   int64 // every quantile must land in [lo, hi]
		hi   int64
	}{
		{"single sample", histOf(t, 5), 4, 7},
		{"single zero sample", histOf(t, 0), 0, 0},
		{"single bucket many samples", histOf(t, 4, 5, 6, 7, 4, 7), 4, 7},
		{"all in one large bucket", histOf(t, 1 << 40, 1<<40+3, 1<<40+9), 1 << 40, 1<<41 - 1},
		{"handcrafted inverted bucket", obs.HistSnapshot{
			Count: 2, Buckets: []obs.HistBucket{{Lo: 8, Hi: 4, N: 2}},
		}, 8, 8}, // degenerate metadata: report Lo, never interpolate backwards
	}
	for _, tc := range cases {
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			got := Percentile(tc.hs, q)
			if math.IsNaN(got) {
				t.Errorf("%s: q=%v is NaN", tc.name, q)
				continue
			}
			if got < float64(tc.lo) || got > float64(tc.hi) {
				t.Errorf("%s: q=%v = %v, want within [%d, %d]", tc.name, q, got, tc.lo, tc.hi)
			}
		}
	}
}

// TestPercentileNaNQuantile: a NaN q fails every ordered comparison, so
// a naive clamp would let it skip all buckets and over-report the top
// edge; it must clamp to q=0 instead.
func TestPercentileNaNQuantile(t *testing.T) {
	hs := histOf(t, 1, 2, 3, 4, 5, 6, 7)
	got := Percentile(hs, math.NaN())
	if math.IsNaN(got) {
		t.Fatal("NaN quantile produced NaN")
	}
	if want := Percentile(hs, 0); got != want {
		t.Errorf("NaN quantile = %v, want the q=0 value %v (not the top edge %v)",
			got, want, Percentile(hs, 1))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(histOf(t, 1, 2, 3, 4))
	if s.Count != 4 || s.Sum != 10 {
		t.Errorf("summary count/sum = %d/%d, want 4/10", s.Count, s.Sum)
	}
	if s.P50 <= 0 || s.P90 < s.P50 || s.P99 < s.P90 {
		t.Errorf("percentiles not monotone: %+v", s)
	}
}
