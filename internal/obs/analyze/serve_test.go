package analyze

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"sddict/internal/obs"
)

// writeSpanJournal emits n spans through a real tracer so the test
// exercises the same bytes sddstat reads in production.
func writeSpanJournal(t *testing.T, n int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf, nil)
	for i := 0; i < n; i++ {
		durUs := int64((i + 1) * 1000)
		tr.Emit("span", map[string]any{
			"request_id": reqID(i),
			"method":     "POST",
			"path":       "/diagnose",
			"status":     200,
			"dur_us":     durUs,
			"sampled":    true,
			"stages": []obs.Stage{
				{Name: "decode", StartUs: 0, DurUs: durUs / 4},
				{Name: "scan", StartUs: durUs / 4, DurUs: durUs / 2},
			},
		})
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func reqID(i int) string { return fmt.Sprintf("%032x", i+1) }

func TestReadServeRun(t *testing.T) {
	buf := writeSpanJournal(t, 10)
	r, err := ReadServeRun(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Spans != 10 || r.Truncated {
		t.Fatalf("spans=%d truncated=%v, want 10 clean", r.Spans, r.Truncated)
	}
	if r.Statuses[200] != 10 || r.NestingViolations != 0 || r.Errors != 0 {
		t.Fatalf("rollups wrong: %+v", r)
	}
	// Durations are 1000..10000us; exact percentiles interpolate.
	if r.Requests.Count != 10 || r.Requests.P50 != 5500 {
		t.Fatalf("request percentiles = %+v, want count 10 p50 5500", r.Requests)
	}
	if len(r.Stages) != 2 {
		t.Fatalf("stages = %+v, want decode and scan", r.Stages)
	}
	// scan totals half of each span, decode a quarter: scan sorts first.
	if r.Stages[0].Name != "scan" || r.Stages[1].Name != "decode" {
		t.Fatalf("stage order = %s, %s, want scan, decode", r.Stages[0].Name, r.Stages[1].Name)
	}
	if r.Stages[0].Count != 10 || r.Stages[0].TotalUs != 27500 {
		t.Fatalf("scan stats = %+v", r.Stages[0])
	}
	// Exemplars: slowest request is the last one.
	if len(r.Exemplars) != 5 || r.Exemplars[0].RequestID != reqID(9) || r.Exemplars[0].Us != 10000 {
		t.Fatalf("exemplars = %+v", r.Exemplars)
	}
	if r.Stages[0].Exemplars[0].RequestID != reqID(9) {
		t.Fatalf("stage exemplars = %+v", r.Stages[0].Exemplars)
	}
}

func TestReadServeRunTruncatedTail(t *testing.T) {
	buf := writeSpanJournal(t, 3)
	data := buf.Bytes()
	torn := data[:len(data)-7] // rip mid-event, no trailing newline
	r, err := ReadServeRun(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail must analyze the prefix, got %v", err)
	}
	if !r.Truncated || r.Spans != 2 {
		t.Fatalf("truncated=%v spans=%d, want true/2", r.Truncated, r.Spans)
	}
}

func TestServeRunNestingViolation(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf, nil)
	tr.Emit("span", map[string]any{
		"request_id": reqID(0), "method": "POST", "path": "/diagnose",
		"status": 200, "dur_us": int64(1000), "sampled": true,
		"stages": []obs.Stage{{Name: "scan", StartUs: 800, DurUs: 900}},
	})
	r, err := ReadServeRun(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.NestingViolations != 1 {
		t.Fatalf("nesting violations = %d, want 1", r.NestingViolations)
	}
}

func TestJoinClient(t *testing.T) {
	buf := writeSpanJournal(t, 4) // spans for ids 0..3, dur 1000..4000us
	// Server also saw traffic no client claims (a health check).
	tr := obs.NewTracer(buf, nil)
	tr.Emit("span", map[string]any{
		"request_id": reqID(99), "method": "GET", "path": "/healthz",
		"status": 200, "dur_us": int64(50), "sampled": true,
	})

	var cbuf bytes.Buffer
	ct := obs.NewTracer(&cbuf, nil)
	for i := 0; i < 3; i++ { // client journaled ids 0..2 plus one unknown
		ct.Emit("client_request", map[string]any{
			"request_id": reqID(i),
			"us":         int64((i+1)*1000 + 300), // 300us over the server span
			"total_us":   int64((i + 1) * 1500),
			"status":     200, "ok": true, "attempts": 1,
		})
	}
	ct.Emit("client_request", map[string]any{
		"request_id": reqID(42), "us": int64(777), "status": 0, "ok": false, "attempts": 3,
	})

	r, err := ReadServeRun(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.JoinClient(bytes.NewReader(cbuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	j := r.Join
	if j == nil || j.Joined != 3 || j.ClientOnly != 1 || j.ServerOnly != 2 {
		t.Fatalf("join = %+v, want joined 3, client-only 1, server-only 2", j)
	}
	if j.Overhead.Count != 3 || j.Overhead.P50 != 300 {
		t.Fatalf("overhead = %+v, want p50 300", j.Overhead)
	}
	if len(j.Slowest) != 3 || j.Slowest[0].RequestID != reqID(2) ||
		j.Slowest[0].ClientUs != 3300 || j.Slowest[0].ServerUs != 3000 || j.Slowest[0].OverheadUs != 300 {
		t.Fatalf("slowest = %+v", j.Slowest)
	}
}

// TestJoinClientPrefersStatusMatch pins the retry semantics: a request
// shed with 503 and retried to 200 leaves two server spans under one
// request ID; the join must pick the span matching the client's final
// status.
func TestJoinClientPrefersStatusMatch(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf, nil)
	for _, s := range []struct {
		status int
		durUs  int64
	}{{503, 40}, {200, 2000}} {
		tr.Emit("span", map[string]any{
			"request_id": reqID(7), "method": "POST", "path": "/diagnose",
			"status": s.status, "dur_us": s.durUs, "sampled": true,
		})
	}
	var cbuf bytes.Buffer
	ct := obs.NewTracer(&cbuf, nil)
	ct.Emit("client_request", map[string]any{
		"request_id": reqID(7), "us": int64(2500), "status": 200, "ok": true, "attempts": 2,
	})

	r, err := ReadServeRun(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.JoinClient(bytes.NewReader(cbuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if r.Join.Joined != 1 || r.Join.Slowest[0].ServerUs != 2000 {
		t.Fatalf("join picked span %+v, want the status-200 span (2000us)", r.Join.Slowest)
	}
}

func TestServeRunWriteText(t *testing.T) {
	buf := writeSpanJournal(t, 6)
	r, err := ReadServeRun(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var cbuf bytes.Buffer
	ct := obs.NewTracer(&cbuf, nil)
	ct.Emit("client_request", map[string]any{
		"request_id": reqID(0), "us": int64(1100), "status": 200, "ok": true, "attempts": 1,
	})
	if err := r.JoinClient(bytes.NewReader(cbuf.Bytes())); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := r.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"serve span journal: 6 spans, clean",
		"stage breakdown:",
		"scan", "decode",
		"slowest requests:",
		reqID(5),
		"client join: joined=1",
		"overhead_us",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestPercentilesOfExact(t *testing.T) {
	if got := percentilesOf(nil); got.Count != 0 {
		t.Fatalf("empty percentiles = %+v", got)
	}
	s := percentilesOf([]int64{100})
	if s.P50 != 100 || s.P99 != 100 {
		t.Fatalf("single-value percentiles = %+v", s)
	}
	s = percentilesOf([]int64{400, 100, 300, 200}) // unsorted on purpose
	if s.Count != 4 || s.Sum != 1000 || s.P50 != 250 {
		t.Fatalf("percentiles = %+v, want count 4 sum 1000 p50 250", s)
	}
}
