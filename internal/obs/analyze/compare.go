package analyze

import (
	"fmt"
	"io"
	"math"
	"strings"

	"sddict/internal/obs"
)

// Thresholds configures when a metric delta counts as a regression.
// Zero values select the defaults; a negative value disables that class
// of check entirely.
type Thresholds struct {
	// CounterPct is the allowed drift of a counter from run A to run B,
	// in percent, in either direction. Counters measure work done
	// (candidate scans, sim batches, restarts) and are deterministic
	// functions of the input: growth beyond noise means the new run works
	// harder for the same result, and an equally large drop means the run
	// broke early or the baseline is stale — both deserve a look (refresh
	// the baseline to accept an improvement). Default 10.
	CounterPct float64
	// PercentilePct is the allowed drift of a histogram percentile
	// (p50/p90/p99), in percent, in either direction. Percentiles
	// estimated from power-of-two buckets move in coarse steps, so this
	// default is looser: 100 (one bucket doubling).
	PercentilePct float64
}

// DefaultThresholds are the sddstat compare defaults.
var DefaultThresholds = Thresholds{CounterPct: 10, PercentilePct: 100}

func (t Thresholds) counterPct() float64 {
	if t.CounterPct == 0 {
		return DefaultThresholds.CounterPct
	}
	return t.CounterPct
}

func (t Thresholds) percentilePct() float64 {
	if t.PercentilePct == 0 {
		return DefaultThresholds.PercentilePct
	}
	return t.PercentilePct
}

// Delta is one metric compared across two runs. GrowthPct is
// (B-A)/A*100; +Inf when A is zero and B is not.
type Delta struct {
	Name       string  `json:"name"`
	Kind       string  `json:"kind"` // "counter", "gauge", "percentile"
	A          float64 `json:"a"`
	B          float64 `json:"b"`
	GrowthPct  float64 `json:"growth_pct"`
	Regression bool    `json:"regression"`
}

// Comparison is the diff of two metrics snapshots: every metric present
// in either run, sorted by kind then name, with regressions flagged
// against the thresholds.
type Comparison struct {
	Deltas      []Delta `json:"deltas"`
	Regressions int     `json:"regressions"`
}

// Regressed reports whether any delta exceeded its threshold.
func (c *Comparison) Regressed() bool { return c.Regressions > 0 }

// Compare diffs run B against baseline run A. Counters and histogram
// percentiles are gated by the thresholds (drift in either direction);
// gauges are instantaneous state and reported for information only.
func Compare(a, b obs.Snapshot, th Thresholds) *Comparison {
	c := &Comparison{}

	add := func(name, kind string, av, bv float64, limitPct float64) {
		if av == 0 && bv == 0 {
			return
		}
		d := Delta{Name: name, Kind: kind, A: av, B: bv, GrowthPct: growthPct(av, bv)}
		if limitPct >= 0 && math.Abs(d.GrowthPct) > limitPct {
			d.Regression = true
			c.Regressions++
		}
		c.Deltas = append(c.Deltas, d)
	}

	for _, name := range unionKeys(a.Counters, b.Counters) {
		add(name, "counter", float64(a.Counters[name]), float64(b.Counters[name]), th.counterPct())
	}
	for _, name := range unionKeys(a.Gauges, b.Gauges) {
		add(name, "gauge", float64(a.Gauges[name]), float64(b.Gauges[name]), -1)
	}
	hists := map[string]struct{}{}
	for name := range a.Histograms {
		hists[name] = struct{}{}
	}
	for name := range b.Histograms {
		hists[name] = struct{}{}
	}
	for _, name := range sortedSet(hists) {
		pa, pb := Summarize(a.Histograms[name]), Summarize(b.Histograms[name])
		for _, q := range []struct {
			suffix string
			a, b   float64
		}{
			{"p50", pa.P50, pb.P50},
			{"p90", pa.P90, pb.P90},
			{"p99", pa.P99, pb.P99},
		} {
			add(name+"/"+q.suffix, "percentile", q.a, q.b, th.percentilePct())
		}
	}
	return c
}

// WriteText renders the comparison as a fixed-order table: regressions
// first within their section order, so the reason for a nonzero exit is
// at the top of each section.
func (c *Comparison) WriteText(w io.Writer) error {
	ew := &errWriter{w: w}
	ew.printf("metric comparison (B vs baseline A): %d metrics, %d regressions\n",
		len(c.Deltas), c.Regressions)
	for _, d := range c.Deltas {
		mark := " "
		if d.Regression {
			mark = "!"
		}
		growth := "new"
		if !math.IsInf(d.GrowthPct, 1) {
			growth = formatSigned(d.GrowthPct)
		}
		ew.printf("  %s %-10s %-24s %14.1f -> %-14.1f %s\n", mark, d.Kind, d.Name, d.A, d.B, growth)
	}
	return ew.err
}

func growthPct(a, b float64) float64 {
	switch {
	case a == 0 && b == 0:
		return 0
	case a == 0:
		return math.Inf(1)
	default:
		return roundPct((b - a) / a * 100)
	}
}

// formatSigned renders a growth percentage with an explicit sign, one
// decimal, trailing ".0" stripped ("+12%" reads better than "+12.0%").
func formatSigned(pct float64) string {
	s := fmt.Sprintf("%+.1f", pct)
	s = strings.TrimSuffix(s, ".0")
	return s + "%"
}

func unionKeys(a, b map[string]int64) []string {
	set := map[string]struct{}{}
	for k := range a {
		set[k] = struct{}{}
	}
	for k := range b {
		set[k] = struct{}{}
	}
	return sortedSet(set)
}

func sortedSet(set map[string]struct{}) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
