package analyze

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sddict/internal/obs"
)

// buildTrace emits a synthetic but schema-faithful single-build trace:
// response capture, three folded restarts (one of four started on
// workers is discarded speculation), two checkpoints, one Procedure 2
// sweep, clean build_end. The clock is scripted so every phase span is
// exact.
func buildTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	at := func(ms int64) { now = time.Unix(0, 0).Add(time.Duration(ms) * time.Millisecond) }
	tr := obs.NewTracer(&buf, clock)

	at(100)
	tr.Emit("resp_build", map[string]any{"faults": 50, "tests": 10})
	at(120)
	tr.Emit("build_start", map[string]any{
		"schema": obs.TraceSchemaVersion, "faults": 50, "tests": 10,
		"seed": 7, "workers": 2, "indist_full": 3,
	})
	at(130)
	for i := 0; i < 4; i++ { // four speculative starts, three will fold
		tr.Emit("restart_start", map[string]any{"restart": i})
	}
	at(500)
	tr.Emit("restart_end", map[string]any{"restart": 0, "indist": 10, "best": 10, "improved": true})
	at(520)
	tr.Emit("checkpoint_save", map[string]any{"restarts": 1, "best_indist": 10, "persisted": true})
	at(800)
	tr.Emit("restart_end", map[string]any{"restart": 1, "indist": 8, "best": 8, "improved": true})
	at(820)
	tr.Emit("checkpoint_save", map[string]any{"restarts": 2, "best_indist": 8, "persisted": true})
	at(900)
	tr.Emit("restart_end", map[string]any{"restart": 2, "indist": 9, "best": 8, "improved": false})
	at(1000)
	tr.Emit("proc2_sweep", map[string]any{"sweep": 1, "indist": 7})
	at(1100)
	tr.Emit("build_end", map[string]any{"indist": 7, "restarts": 3, "interrupted": false})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAnalyzeTimeline(t *testing.T) {
	run, err := ReadRun(bytes.NewReader(buildTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	if run.Truncated {
		t.Error("clean trace reported truncated")
	}
	if run.Events != 13 {
		t.Errorf("events = %d, want 13", run.Events)
	}
	if run.DurationMs != 1100 {
		t.Errorf("duration = %d, want 1100", run.DurationMs)
	}
	if run.Builds != 1 {
		t.Errorf("builds = %d, want 1", run.Builds)
	}

	b := run.Build
	if b.Schema != obs.TraceSchemaVersion || b.Faults != 50 || b.Tests != 10 ||
		b.Seed != 7 || b.Workers != 2 || b.IndistFull != 3 {
		t.Errorf("build info = %+v", b)
	}
	if !b.Completed || b.Interrupted || b.FinalIndist != 7 || b.Restarts != 3 {
		t.Errorf("build end = %+v", b)
	}

	wantPhases := map[string]int64{
		"response capture": 100, // 0 -> 100
		"setup":            20,  // 100 -> 120
		"restart search":   740, // 380 + 280 + 80 (worker-side starts skipped)
		"checkpointing":    40,  // 20 + 20
		"procedure 2":      100, // 900 -> 1000
		"finish":           100, // 1000 -> 1100
	}
	got := map[string]int64{}
	for _, p := range run.Phases {
		got[p.Phase] = p.Ms
	}
	for name, ms := range wantPhases {
		if got[name] != ms {
			t.Errorf("phase %q = %dms, want %dms (all: %v)", name, got[name], ms, got)
		}
	}

	if len(run.Convergence) != 3 {
		t.Fatalf("convergence points = %d, want 3", len(run.Convergence))
	}
	wantImproved := []bool{true, true, false}
	for i, p := range run.Convergence {
		if p.Restart != i || p.Improved != wantImproved[i] {
			t.Errorf("convergence[%d] = %+v", i, p)
		}
	}

	sp := run.Speculation
	if sp.RestartsStarted != 4 || sp.RestartsFolded != 3 || sp.RestartsDiscarded != 1 {
		t.Errorf("speculation = %+v", sp)
	}
	if sp.WasteRatio != 0.25 {
		t.Errorf("waste ratio = %v, want 0.25", sp.WasteRatio)
	}

	cs := run.Checkpoints
	if cs.Saves != 2 || cs.Persisted != 2 {
		t.Errorf("checkpoints = %+v", cs)
	}
	if cs.MeanIntervalMs != 300 {
		t.Errorf("mean checkpoint interval = %v, want 300", cs.MeanIntervalMs)
	}
	if cs.MeanRestartsBetween != 1 {
		t.Errorf("mean restarts between saves = %v, want 1", cs.MeanRestartsBetween)
	}
	if cs.EndsOnSave {
		t.Error("clean build_end trace must not report ends_on_save")
	}
}

func TestAnalyzeTruncatedTrace(t *testing.T) {
	full := buildTrace(t)
	torn := full[:len(full)-15] // cut inside the final build_end line

	run, err := ReadRun(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("torn trace must analyze from its prefix: %v", err)
	}
	if !run.Truncated {
		t.Error("torn trace not flagged truncated")
	}
	if run.Build.Completed {
		t.Error("build_end was the torn event; build must not read completed")
	}
	if run.Speculation.RestartsFolded != 3 {
		t.Errorf("prefix lost folded restarts: %+v", run.Speculation)
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Error("empty trace must be an error")
	}
}

func TestRunWriteTextReport(t *testing.T) {
	run, err := ReadRun(bytes.NewReader(buildTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	m.Add(obs.CandidateScans, 1234)
	for _, v := range []int64{3, 5, 9, 17} {
		m.Observe(obs.RestartIndist, v)
	}
	run.AttachMetrics(m.Snapshot())

	var buf bytes.Buffer
	if err := run.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"phase breakdown:",
		"restart search",
		"procedure 2",
		"restart convergence (improvements only):",
		"restart    0: best 10",
		"speculation: 4 restarts started, 3 folded, 1 discarded (25.0% waste)",
		"checkpoints: 2 saves (2 persisted, 0 loads)",
		"histogram percentiles:",
		"restart_indist",
		"p50=",
		"candidate_scans = 1234",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeSweepRows(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf, nil)
	tr.Emit("row_start", map[string]any{"row": "s27/diag"})
	tr.Emit("row_start", map[string]any{"row": "s208/diag"})
	tr.Emit("row_start", map[string]any{"row": "s298/diag"})
	tr.Emit("row_end", map[string]any{"row": "s27/diag", "index": 0, "status": "ok", "ok": true, "elapsed_ms": 40})
	tr.Emit("row_end", map[string]any{"row": "s208/diag", "index": 1, "status": "failed", "ok": false, "elapsed_ms": 55, "error": "boom"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	run, err := ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if run.Speculation.RowsStarted != 3 || run.Speculation.RowsDelivered != 2 {
		t.Errorf("row speculation = %+v", run.Speculation)
	}
	if len(run.Rows) != 2 || run.Rows[1].Error != "boom" || run.Rows[0].Row != "s27/diag" {
		t.Errorf("rows = %+v", run.Rows)
	}
	var rep bytes.Buffer
	if err := run.WriteText(&rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "sweep rows (2 delivered of 3 started):") {
		t.Errorf("report missing row section:\n%s", rep.String())
	}
}
