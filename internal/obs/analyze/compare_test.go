package analyze

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sddict/internal/obs"
)

func snapOf(t *testing.T, build func(*obs.Metrics)) obs.Snapshot {
	t.Helper()
	m := obs.NewMetrics()
	build(m)
	return m.Snapshot()
}

func TestCompareCounterThreshold(t *testing.T) {
	a := snapOf(t, func(m *obs.Metrics) { m.Add(obs.CandidateScans, 100); m.Add(obs.SimBatches, 50) })
	b := snapOf(t, func(m *obs.Metrics) { m.Add(obs.CandidateScans, 105); m.Add(obs.SimBatches, 80) })

	c := Compare(a, b, Thresholds{}) // defaults: counters 10%
	if !c.Regressed() {
		t.Fatal("60% sim_batches growth above the 10% default must regress")
	}
	var scans, batches *Delta
	for i := range c.Deltas {
		switch c.Deltas[i].Name {
		case "candidate_scans":
			scans = &c.Deltas[i]
		case "sim_batches":
			batches = &c.Deltas[i]
		}
	}
	if scans == nil || batches == nil {
		t.Fatalf("missing deltas: %+v", c.Deltas)
	}
	if scans.Regression || scans.GrowthPct != 5 {
		t.Errorf("candidate_scans delta = %+v, want +5%% no regression", scans)
	}
	if !batches.Regression || batches.GrowthPct != 60 {
		t.Errorf("sim_batches delta = %+v, want +60%% regression", batches)
	}

	// A looser explicit threshold clears it; a negative one disables the
	// counter gate entirely.
	if Compare(a, b, Thresholds{CounterPct: 75}).Regressed() {
		t.Error("75% threshold must pass a 60% growth")
	}
	if Compare(a, b, Thresholds{CounterPct: -1}).Regressed() {
		t.Error("negative threshold must disable counter regressions")
	}
}

func TestCompareCounterDropRegresses(t *testing.T) {
	// The gate is symmetric: counters are deterministic work measures, so
	// a collapse (run broke early, stale baseline) is as suspect as
	// growth and must not slip through as an "improvement".
	a := snapOf(t, func(m *obs.Metrics) { m.Add(obs.CandidateScans, 200000) })
	b := snapOf(t, func(m *obs.Metrics) { m.Add(obs.CandidateScans, 1) })

	c := Compare(a, b, Thresholds{})
	if !c.Regressed() {
		t.Fatal("a -100% counter drop must regress at the 10% default")
	}
	if d := c.Deltas[0]; !d.Regression || d.GrowthPct >= 0 {
		t.Errorf("delta = %+v, want negative growth flagged", d)
	}
	if Compare(a, b, Thresholds{CounterPct: -1}).Regressed() {
		t.Error("negative threshold must disable the drop gate too")
	}
}

func TestCompareNewCounterIsRegression(t *testing.T) {
	a := snapOf(t, func(m *obs.Metrics) {})
	b := snapOf(t, func(m *obs.Metrics) { m.Add(obs.LowerCutoffHits, 3) })

	c := Compare(a, b, Thresholds{})
	if !c.Regressed() {
		t.Fatal("counter appearing from zero must regress")
	}
	d := c.Deltas[0]
	if !math.IsInf(d.GrowthPct, 1) {
		t.Errorf("growth = %v, want +Inf", d.GrowthPct)
	}
	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "!") || !strings.Contains(out, "new") {
		t.Errorf("report must mark the regression and render +Inf as \"new\":\n%s", out)
	}
}

func TestCompareGaugesInformationalOnly(t *testing.T) {
	a := snapOf(t, func(m *obs.Metrics) { m.Set(obs.IndistPairs, 10) })
	b := snapOf(t, func(m *obs.Metrics) { m.Set(obs.IndistPairs, 500) })

	c := Compare(a, b, Thresholds{})
	if c.Regressed() {
		t.Error("gauge growth must never regress")
	}
	if len(c.Deltas) != 1 || c.Deltas[0].Kind != "gauge" {
		t.Errorf("deltas = %+v", c.Deltas)
	}
}

func TestComparePercentiles(t *testing.T) {
	a := snapOf(t, func(m *obs.Metrics) {
		for _, v := range []int64{4, 5, 6, 7} {
			m.Observe(obs.RowElapsedMs, v)
		}
	})
	// Every sample four buckets higher: percentiles grow ~16x, far past
	// the 100% (one-doubling) default.
	b := snapOf(t, func(m *obs.Metrics) {
		for _, v := range []int64{64, 80, 96, 112} {
			m.Observe(obs.RowElapsedMs, v)
		}
	})

	c := Compare(a, b, Thresholds{})
	if !c.Regressed() {
		t.Fatal("16x percentile growth must regress at the 100% default")
	}
	for _, d := range c.Deltas {
		if d.Kind != "percentile" {
			t.Errorf("unexpected delta kind %q", d.Kind)
		}
		if !strings.HasPrefix(d.Name, "row_elapsed_ms/p") {
			t.Errorf("percentile delta name = %q", d.Name)
		}
	}
	if Compare(a, b, Thresholds{PercentilePct: -1}).Regressed() {
		t.Error("negative percentile threshold must disable the gate")
	}
}

func TestCompareIdenticalRuns(t *testing.T) {
	s := snapOf(t, func(m *obs.Metrics) {
		m.Add(obs.RestartsRun, 12)
		m.Observe(obs.RestartIndist, 9)
	})
	c := Compare(s, s, Thresholds{})
	if c.Regressed() {
		t.Errorf("identical snapshots regressed: %+v", c.Deltas)
	}
	for _, d := range c.Deltas {
		if d.GrowthPct != 0 {
			t.Errorf("delta %s growth = %v, want 0", d.Name, d.GrowthPct)
		}
	}
}
