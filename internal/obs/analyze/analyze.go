// Package analyze is the read side of the observability layer: it
// parses the JSONL build-event traces and metrics snapshots the
// pipeline writes (DESIGN.md §10) and derives the statistics an
// operator tunes the paper's knobs by — per-phase wall-clock breakdown,
// the restart-convergence curve the CALLS1 stopping rule saturates
// along, the speculation-waste ratio of the parallel restart search,
// checkpoint cadence, and histogram percentile summaries.
//
// Everything here is pure computation over already-recorded telemetry:
// the package opens no files, starts no goroutines, and prints nothing
// (rendering goes through caller-supplied io.Writers, per the noprint
// invariant). cmd/sddstat is the CLI over it.
package analyze

import (
	"fmt"
	"io"

	"sddict/internal/obs"
)

// Worker-side event types (DESIGN.md §10): they record speculative
// execution order, so they are excluded from the fold-ordered timeline
// and counted instead as speculation.
func workerSide(typ string) bool { return typ == "restart_start" || typ == "row_start" }

// phaseOf maps a fold-ordered event type to the phase that produced the
// wall-clock time leading up to it. The names are the report vocabulary.
func phaseOf(typ string) string {
	switch typ {
	case "resp_build":
		return "response capture"
	case "build_start", "checkpoint_load":
		return "setup"
	case "restart_end":
		return "restart search"
	case "proc2_sweep":
		return "procedure 2"
	case "checkpoint_save":
		return "checkpointing"
	case "build_end", "row_end":
		return "finish"
	default:
		return "other"
	}
}

// phaseOrder fixes the rendering and JSON order of phases: pipeline
// order, then the catch-all.
var phaseOrder = []string{
	"setup", "response capture", "restart search", "procedure 2",
	"checkpointing", "finish", "other",
}

// PhaseSpan is the wall-clock total attributed to one phase.
type PhaseSpan struct {
	Phase string `json:"phase"`
	Ms    int64  `json:"ms"`
	// Events is the number of fold-ordered events attributed to the phase.
	Events int `json:"events"`
}

// ConvergencePoint is one folded Procedure 1 restart: the score it
// achieved and the best score after folding it — the paper's
// distinguished-pair trajectory, indexed by restart.
type ConvergencePoint struct {
	// Row labels the build the restart belongs to ("" for single-build
	// traces; "s298/diag"-style for sweep traces).
	Row      string `json:"row,omitempty"`
	Restart  int    `json:"restart"`
	Indist   int64  `json:"indist"`
	Best     int64  `json:"best"`
	Improved bool   `json:"improved"`
}

// SpeculationStats quantifies the work the speculative parallel layers
// threw away: restarts (and sweep rows) started on workers versus
// folded into the ordered result. Discarded work is the price §9 pays
// for wall-clock speedup; this is where it becomes visible.
type SpeculationStats struct {
	RestartsStarted   int `json:"restarts_started"`
	RestartsFolded    int `json:"restarts_folded"`
	RestartsDiscarded int `json:"restarts_discarded"`
	// WasteRatio is discarded/started (0 when nothing started).
	WasteRatio float64 `json:"waste_ratio"`

	RowsStarted   int `json:"rows_started,omitempty"`
	RowsDelivered int `json:"rows_delivered,omitempty"`
}

// CheckpointStats summarizes checkpoint cadence.
type CheckpointStats struct {
	Saves     int `json:"saves"`
	Persisted int `json:"persisted"`
	Loads     int `json:"loads"`
	// MeanIntervalMs is the mean time between consecutive saves
	// (0 with fewer than two saves).
	MeanIntervalMs float64 `json:"mean_interval_ms"`
	// MeanRestartsBetween is the mean restart-count delta between
	// consecutive saves.
	MeanRestartsBetween float64 `json:"mean_restarts_between"`
	// EndsOnSave reports whether the trace's final event is a
	// checkpoint_save — the invariant every interrupted build must hold.
	EndsOnSave bool `json:"ends_on_save"`
}

// BuildInfo collects the build_start/build_end bookends of the last
// build in the trace.
type BuildInfo struct {
	Schema      int   `json:"schema,omitempty"`
	Faults      int   `json:"faults,omitempty"`
	Tests       int   `json:"tests,omitempty"`
	Seed        int64 `json:"seed,omitempty"`
	Workers     int   `json:"workers,omitempty"`
	IndistFull  int64 `json:"indist_full,omitempty"`
	FinalIndist int64 `json:"final_indist,omitempty"`
	Restarts    int   `json:"restarts,omitempty"`
	Interrupted bool  `json:"interrupted,omitempty"`
	// Completed reports whether a build_end was seen at all.
	Completed bool `json:"completed"`
}

// RowSummary is one delivered sweep row (table6 traces).
type RowSummary struct {
	Index     int    `json:"index"`
	Row       string `json:"row"`
	Status    string `json:"status,omitempty"`
	OK        bool   `json:"ok"`
	ElapsedMs int64  `json:"elapsed_ms"`
	Error     string `json:"error,omitempty"`
}

// Run is the reconstructed timeline of one trace file plus, when
// AttachMetrics was called, the percentile summaries of its metrics
// snapshot. It is the machine-readable form of the sddstat report.
type Run struct {
	Events     int   `json:"events"`
	DurationMs int64 `json:"duration_ms"`
	// Builds counts build_start events: an append-mode trace extended
	// across reruns holds several builds; the timeline aggregates them
	// and Build describes the last.
	Builds int `json:"builds"`
	// Truncated is set when the trace ended mid-event (crash/SIGKILL
	// tore the final write); the analysis covers the parsed prefix.
	Truncated bool `json:"truncated,omitempty"`

	Build       BuildInfo          `json:"build"`
	Phases      []PhaseSpan        `json:"phases"`
	Convergence []ConvergencePoint `json:"convergence,omitempty"`
	Speculation SpeculationStats   `json:"speculation"`
	Checkpoints CheckpointStats    `json:"checkpoints"`
	Rows        []RowSummary       `json:"rows,omitempty"`

	// Metrics and Percentiles are populated by AttachMetrics.
	Metrics     *obs.Snapshot                `json:"metrics,omitempty"`
	Percentiles map[string]PercentileSummary `json:"percentiles,omitempty"`
}

// Analyze reconstructs the build timeline from a parsed event stream.
// It is a pure function of the events; an empty trace is an error, any
// non-empty one analyzes (unknown event types land in the "other"
// phase, so newer traces degrade instead of failing).
func Analyze(events []obs.Event) (*Run, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("analyze: empty trace")
	}
	r := &Run{Events: len(events)}

	phaseMs := map[string]int64{}
	phaseEvents := map[string]int{}
	var prevMs int64
	var lastSaveMs, firstSaveMs int64
	var lastSaveRestarts, firstSaveRestarts float64
	best := map[string]int64{} // per-row best, for Improved recomputation safety

	for _, ev := range events {
		if ev.TMs > r.DurationMs {
			r.DurationMs = ev.TMs
		}
		row, _ := ev.Fields["row"].(string)
		switch ev.Type {
		case "restart_start":
			r.Speculation.RestartsStarted++
		case "row_start":
			r.Speculation.RowsStarted++
		}
		if workerSide(ev.Type) {
			continue
		}

		// Timeline attribution: the gap since the previous fold-ordered
		// event belongs to the phase that ends at this one. An append-mode
		// trace restarts t_ms at 0 on each rerun; the clamp keeps those
		// seams from producing negative spans.
		if d := ev.TMs - prevMs; d > 0 {
			phaseMs[phaseOf(ev.Type)] += d
		}
		prevMs = ev.TMs
		phaseEvents[phaseOf(ev.Type)]++

		switch ev.Type {
		case "build_start":
			r.Builds++
			r.Build = BuildInfo{
				Schema:     fieldInt(ev.Fields, "schema"),
				Faults:     fieldInt(ev.Fields, "faults"),
				Tests:      fieldInt(ev.Fields, "tests"),
				Seed:       fieldInt64(ev.Fields, "seed"),
				Workers:    fieldInt(ev.Fields, "workers"),
				IndistFull: fieldInt64(ev.Fields, "indist_full"),
			}
		case "build_end":
			r.Build.Completed = true
			r.Build.FinalIndist = fieldInt64(ev.Fields, "indist")
			r.Build.Restarts = fieldInt(ev.Fields, "restarts")
			r.Build.Interrupted, _ = ev.Fields["interrupted"].(bool)
		case "restart_end":
			r.Speculation.RestartsFolded++
			p := ConvergencePoint{
				Row:     row,
				Restart: fieldInt(ev.Fields, "restart"),
				Indist:  fieldInt64(ev.Fields, "indist"),
				Best:    fieldInt64(ev.Fields, "best"),
			}
			if b, seen := best[row]; !seen || p.Best < b {
				p.Improved = true
				best[row] = p.Best
			}
			r.Convergence = append(r.Convergence, p)
		case "checkpoint_save":
			cs := &r.Checkpoints
			cs.Saves++
			if p, _ := ev.Fields["persisted"].(bool); p {
				cs.Persisted++
			}
			restarts := float64(fieldInt64(ev.Fields, "restarts"))
			if cs.Saves == 1 {
				firstSaveMs, firstSaveRestarts = ev.TMs, restarts
			}
			lastSaveMs, lastSaveRestarts = ev.TMs, restarts
		case "checkpoint_load":
			r.Checkpoints.Loads++
		case "row_end":
			rs := RowSummary{
				Index:     fieldInt(ev.Fields, "index"),
				Row:       row,
				ElapsedMs: fieldInt64(ev.Fields, "elapsed_ms"),
			}
			rs.Status, _ = ev.Fields["status"].(string)
			rs.OK, _ = ev.Fields["ok"].(bool)
			rs.Error, _ = ev.Fields["error"].(string)
			r.Rows = append(r.Rows, rs)
			r.Speculation.RowsDelivered++
		}
	}

	sp := &r.Speculation
	// In-flight work at interruption was started but never folded: it is
	// discarded speculation too, which is why started can exceed folded
	// even on a clean single-worker run that stopped early.
	if sp.RestartsStarted > sp.RestartsFolded {
		sp.RestartsDiscarded = sp.RestartsStarted - sp.RestartsFolded
	}
	if sp.RestartsStarted > 0 {
		sp.WasteRatio = float64(sp.RestartsDiscarded) / float64(sp.RestartsStarted)
	}

	if cs := &r.Checkpoints; cs.Saves > 1 {
		n := float64(cs.Saves - 1)
		cs.MeanIntervalMs = float64(lastSaveMs-firstSaveMs) / n
		cs.MeanRestartsBetween = (lastSaveRestarts - firstSaveRestarts) / n
	}
	r.Checkpoints.EndsOnSave = events[len(events)-1].Type == "checkpoint_save"

	for _, name := range phaseOrder {
		if ms, ok := phaseMs[name]; ok || phaseEvents[name] > 0 {
			r.Phases = append(r.Phases, PhaseSpan{Phase: name, Ms: ms, Events: phaseEvents[name]})
		}
	}
	return r, nil
}

// ReadRun reads a JSONL trace and analyzes it. A trace torn mid-write
// (obs.ErrTruncatedTrace) is analyzed from its parsed prefix with
// Run.Truncated set — post-mortems on crashed runs are exactly when
// this tooling earns its keep. Other parse errors fail.
func ReadRun(r io.Reader) (*Run, error) {
	events, err := obs.ReadEvents(r)
	truncated := false
	if err != nil {
		if !isTruncated(err) {
			return nil, fmt.Errorf("analyze: %w", err)
		}
		truncated = true
	}
	run, err := Analyze(events)
	if err != nil {
		return nil, err
	}
	run.Truncated = truncated
	return run, nil
}

// AttachMetrics couples the run with its -metrics-out snapshot and
// derives the percentile summaries of every non-empty histogram.
func (r *Run) AttachMetrics(s obs.Snapshot) {
	r.Metrics = &s
	for name, hs := range s.Histograms {
		if hs.Count == 0 {
			continue
		}
		if r.Percentiles == nil {
			r.Percentiles = map[string]PercentileSummary{}
		}
		r.Percentiles[name] = Summarize(hs)
	}
}

func fieldInt(fields map[string]any, key string) int { return int(fieldInt64(fields, key)) }

// fieldInt64 reads a numeric trace field. encoding/json decodes JSON
// numbers into float64; freshly-emitted (never round-tripped) events may
// still hold Go integer types.
func fieldInt64(fields map[string]any, key string) int64 {
	switch v := fields[key].(type) {
	case float64:
		return int64(v)
	case int64:
		return v
	case int:
		return int64(v)
	default:
		return 0
	}
}
