package analyze

// Serve-journal analytics (DESIGN.md §16): reconstruct per-request
// behaviour from a server's span journal, aggregate stage-level
// latency percentiles with exemplar request IDs, and join the journal
// against an sddload client journal by request ID — the cross-process
// view that turns "the p99 spiked" into "these requests spent their
// time in this stage".

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"sddict/internal/obs"
)

// ServeStage is one child stage interval of a reconstructed span.
type ServeStage struct {
	Name    string `json:"name"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
}

// ServeSpan is one request span read back from the journal.
type ServeSpan struct {
	RequestID string       `json:"request_id"`
	Parent    string       `json:"parent,omitempty"`
	Method    string       `json:"method"`
	Path      string       `json:"path"`
	Status    int          `json:"status"`
	DurUs     int64        `json:"dur_us"`
	Sampled   bool         `json:"sampled"`
	Slow      bool         `json:"slow,omitempty"`
	Error     string       `json:"error,omitempty"`
	Stages    []ServeStage `json:"stages,omitempty"`
}

// Exemplar ties a latency tail to a concrete request: the span journal
// can then be grepped for the request ID directly.
type Exemplar struct {
	RequestID string `json:"request_id"`
	Us        int64  `json:"us"`
}

// StageStats aggregates one stage name across every span. A batch
// request contributes one sample per stage instance (one decode /
// recall / scan / record cycle per observation), so Count can exceed
// the span count.
type StageStats struct {
	Name    string            `json:"name"`
	Count   int64             `json:"count"`
	TotalUs int64             `json:"total_us"`
	Pct     PercentileSummary `json:"percentiles"`
	// Exemplars are the largest single stage instances, slowest first.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// ClientRequest is one sddload client_request journal event.
type ClientRequest struct {
	RequestID string `json:"request_id"`
	Us        int64  `json:"us"`       // final attempt latency
	TotalUs   int64  `json:"total_us"` // including retries and backoff
	Status    int    `json:"status"`
	OK        bool   `json:"ok"`
	Attempts  int    `json:"attempts"`
	Error     string `json:"error,omitempty"`
}

// JoinedRequest couples the client's and the server's view of one
// request ID.
type JoinedRequest struct {
	RequestID string `json:"request_id"`
	ClientUs  int64  `json:"client_us"`
	ServerUs  int64  `json:"server_us"`
	// OverheadUs is the client-observed latency not accounted for by
	// the server span: transport, queueing, scheduling. Clamped at 0 —
	// clocks on the two sides are independent.
	OverheadUs int64 `json:"overhead_us"`
	Status     int   `json:"status"`
	Attempts   int   `json:"attempts"`
}

// Join is the client↔server latency join over request IDs.
type Join struct {
	// Joined counts request IDs present in both journals; ClientOnly
	// counts client requests with no server span (unsampled, or the
	// server died); ServerOnly counts spans no client request claims
	// (other traffic, health checks).
	Joined     int `json:"joined"`
	ClientOnly int `json:"client_only"`
	ServerOnly int `json:"server_only"`
	// Overhead summarizes OverheadUs across joined requests.
	Overhead PercentileSummary `json:"overhead_us"`
	// Slowest is the joined view of the worst client-observed
	// latencies, slowest first.
	Slowest []JoinedRequest `json:"slowest,omitempty"`
}

// ServeRun is the reconstructed serve-side story of one span journal.
type ServeRun struct {
	Spans     int  `json:"spans"`
	Truncated bool `json:"truncated"`
	// Requests summarizes span durations (exact percentiles over the
	// journaled values, not histogram buckets).
	Requests PercentileSummary `json:"request_us"`
	// Exemplars are the slowest request spans, slowest first.
	Exemplars []Exemplar   `json:"exemplars,omitempty"`
	Stages    []StageStats `json:"stages,omitempty"`
	Statuses  map[int]int  `json:"statuses"`
	SlowCount int          `json:"slow_count"`
	Errors    int          `json:"errors"`
	// NestingViolations counts stage intervals escaping their span's
	// interval — always 0 for journals written by obs.Spans; nonzero
	// means a corrupt or foreign journal.
	NestingViolations int   `json:"nesting_violations"`
	Join              *Join `json:"join,omitempty"`

	spans []ServeSpan
}

// maxExemplars bounds every slowest-list in the report.
const maxExemplars = 5

// ReadServeRun reconstructs a ServeRun from a span journal. Like
// ReadRun, a trace torn mid-write analyzes its parsed prefix with
// Truncated set; any other read error is fatal.
func ReadServeRun(r io.Reader) (*ServeRun, error) {
	events, err := obs.ReadEvents(r)
	truncated := false
	if err != nil {
		if !errors.Is(err, obs.ErrTruncatedTrace) {
			return nil, err
		}
		truncated = true
	}
	run := &ServeRun{Truncated: truncated, Statuses: map[int]int{}}
	for _, ev := range events {
		if ev.Type != "span" {
			continue
		}
		run.spans = append(run.spans, spanFromFields(ev.Fields))
	}
	run.aggregate()
	return run, nil
}

func fieldStr(fields map[string]any, key string) string {
	s, _ := fields[key].(string)
	return s
}

func fieldBool(fields map[string]any, key string) bool {
	b, _ := fields[key].(bool)
	return b
}

func spanFromFields(fields map[string]any) ServeSpan {
	sp := ServeSpan{
		RequestID: fieldStr(fields, "request_id"),
		Parent:    fieldStr(fields, "parent"),
		Method:    fieldStr(fields, "method"),
		Path:      fieldStr(fields, "path"),
		Status:    fieldInt(fields, "status"),
		DurUs:     fieldInt64(fields, "dur_us"),
		Sampled:   fieldBool(fields, "sampled"),
		Slow:      fieldBool(fields, "slow"),
		Error:     fieldStr(fields, "error"),
	}
	// Stages survive either as []any of maps (JSON round trip) or as
	// the native []obs.Stage (freshly-emitted events in tests).
	switch v := fields["stages"].(type) {
	case []any:
		for _, st := range v {
			m, ok := st.(map[string]any)
			if !ok {
				continue
			}
			sp.Stages = append(sp.Stages, ServeStage{
				Name:    fieldStr(m, "name"),
				StartUs: fieldInt64(m, "start_us"),
				DurUs:   fieldInt64(m, "dur_us"),
			})
		}
	case []obs.Stage:
		for _, st := range v {
			sp.Stages = append(sp.Stages, ServeStage{Name: st.Name, StartUs: st.StartUs, DurUs: st.DurUs})
		}
	}
	return sp
}

// aggregate computes the per-run rollups from the parsed spans.
func (r *ServeRun) aggregate() {
	r.Spans = len(r.spans)
	var durs []int64
	var durIDs []Exemplar
	type stageAgg struct {
		vals      []int64
		totalUs   int64
		exemplars []Exemplar
	}
	stages := map[string]*stageAgg{}
	for _, sp := range r.spans {
		durs = append(durs, sp.DurUs)
		durIDs = append(durIDs, Exemplar{RequestID: sp.RequestID, Us: sp.DurUs})
		r.Statuses[sp.Status]++
		if sp.Slow {
			r.SlowCount++
		}
		if sp.Error != "" {
			r.Errors++
		}
		for _, st := range sp.Stages {
			if st.StartUs < 0 || st.StartUs+st.DurUs > sp.DurUs {
				r.NestingViolations++
			}
			agg := stages[st.Name]
			if agg == nil {
				agg = &stageAgg{}
				stages[st.Name] = agg
			}
			agg.vals = append(agg.vals, st.DurUs)
			agg.totalUs += st.DurUs
			agg.exemplars = append(agg.exemplars, Exemplar{RequestID: sp.RequestID, Us: st.DurUs})
		}
	}
	r.Requests = percentilesOf(durs)
	r.Exemplars = topExemplars(durIDs, maxExemplars)
	for name, agg := range stages {
		r.Stages = append(r.Stages, StageStats{
			Name:      name,
			Count:     int64(len(agg.vals)),
			TotalUs:   agg.totalUs,
			Pct:       percentilesOf(agg.vals),
			Exemplars: topExemplars(agg.exemplars, maxExemplars),
		})
	}
	// Heaviest stage first; name breaks ties so the report is stable.
	sort.Slice(r.Stages, func(a, b int) bool {
		if r.Stages[a].TotalUs != r.Stages[b].TotalUs {
			return r.Stages[a].TotalUs > r.Stages[b].TotalUs
		}
		return r.Stages[a].Name < r.Stages[b].Name
	})
}

// JoinClient reads an sddload client journal and joins it against the
// run's spans by request ID. When several spans share a request ID
// (retries of a shed request reuse theirs), the one matching the
// client's final status — falling back to the last — represents the
// server side.
func (r *ServeRun) JoinClient(cr io.Reader) error {
	events, err := obs.ReadEvents(cr)
	if err != nil && !errors.Is(err, obs.ErrTruncatedTrace) {
		return err
	}
	var clients []ClientRequest
	for _, ev := range events {
		if ev.Type != "client_request" {
			continue
		}
		clients = append(clients, ClientRequest{
			RequestID: fieldStr(ev.Fields, "request_id"),
			Us:        fieldInt64(ev.Fields, "us"),
			TotalUs:   fieldInt64(ev.Fields, "total_us"),
			Status:    fieldInt(ev.Fields, "status"),
			OK:        fieldBool(ev.Fields, "ok"),
			Attempts:  fieldInt(ev.Fields, "attempts"),
			Error:     fieldStr(ev.Fields, "error"),
		})
	}

	byID := map[string][]ServeSpan{}
	for _, sp := range r.spans {
		byID[sp.RequestID] = append(byID[sp.RequestID], sp)
	}
	join := &Join{}
	claimed := map[string]bool{}
	var overheads []int64
	for _, c := range clients {
		spans, ok := byID[c.RequestID]
		if !ok {
			join.ClientOnly++
			continue
		}
		claimed[c.RequestID] = true
		sp := spans[len(spans)-1]
		for _, cand := range spans {
			if cand.Status == c.Status {
				sp = cand
			}
		}
		overhead := c.Us - sp.DurUs
		if overhead < 0 {
			overhead = 0
		}
		join.Joined++
		overheads = append(overheads, overhead)
		join.Slowest = append(join.Slowest, JoinedRequest{
			RequestID:  c.RequestID,
			ClientUs:   c.Us,
			ServerUs:   sp.DurUs,
			OverheadUs: overhead,
			Status:     c.Status,
			Attempts:   c.Attempts,
		})
	}
	for id := range byID {
		if !claimed[id] {
			join.ServerOnly++
		}
	}
	join.Overhead = percentilesOf(overheads)
	sort.Slice(join.Slowest, func(a, b int) bool {
		if join.Slowest[a].ClientUs != join.Slowest[b].ClientUs {
			return join.Slowest[a].ClientUs > join.Slowest[b].ClientUs
		}
		return join.Slowest[a].RequestID < join.Slowest[b].RequestID
	})
	if len(join.Slowest) > maxExemplars {
		join.Slowest = join.Slowest[:maxExemplars]
	}
	r.Join = join
	return nil
}

// percentilesOf summarizes raw values exactly (sort + linear
// interpolation), unlike Summarize which estimates from power-of-two
// histogram buckets — the journal holds every value, so there is no
// reason to approximate.
func percentilesOf(vals []int64) PercentileSummary {
	s := PercentileSummary{Count: int64(len(vals))}
	if len(vals) == 0 {
		return s
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	for _, v := range sorted {
		s.Sum += v
	}
	at := func(q float64) float64 {
		pos := q * float64(len(sorted)-1)
		lo := int(pos)
		if lo >= len(sorted)-1 {
			return float64(sorted[len(sorted)-1])
		}
		frac := pos - float64(lo)
		return float64(sorted[lo]) + frac*(float64(sorted[lo+1])-float64(sorted[lo]))
	}
	s.P50, s.P90, s.P99 = at(0.50), at(0.90), at(0.99)
	return s
}

// topExemplars returns the n largest entries, largest first, request ID
// breaking ties for a stable report.
func topExemplars(ex []Exemplar, n int) []Exemplar {
	sorted := append([]Exemplar(nil), ex...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Us != sorted[b].Us {
			return sorted[a].Us > sorted[b].Us
		}
		return sorted[a].RequestID < sorted[b].RequestID
	})
	if len(sorted) > n {
		sorted = sorted[:n]
	}
	return sorted
}

// WriteText renders the serve report.
func (r *ServeRun) WriteText(w io.Writer) error {
	status := "clean"
	if r.Truncated {
		status = "TRUNCATED (analyzing prefix)"
	}
	if _, err := fmt.Fprintf(w, "serve span journal: %d spans, %s\n", r.Spans, status); err != nil {
		return err
	}
	if r.Spans == 0 {
		_, err := fmt.Fprintln(w, "  no spans journaled (is -trace-sample 0 with no slow/failed requests?)")
		return err
	}
	if _, err := fmt.Fprintf(w, "  requests: count=%d p50=%.0fus p90=%.0fus p99=%.0fus\n",
		r.Requests.Count, r.Requests.P50, r.Requests.P90, r.Requests.P99); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  statuses:"); err != nil {
		return err
	}
	var codes []int
	for code := range r.Statuses {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		if _, err := fmt.Fprintf(w, " %d=%d", code, r.Statuses[code]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "  slow=%d errors=%d nesting_violations=%d\n",
		r.SlowCount, r.Errors, r.NestingViolations); err != nil {
		return err
	}

	if _, err := fmt.Fprintln(w, "stage breakdown:"); err != nil {
		return err
	}
	for _, st := range r.Stages {
		if _, err := fmt.Fprintf(w, "  %-8s count=%d total=%dus p50=%.0fus p90=%.0fus p99=%.0fus\n",
			st.Name, st.Count, st.TotalUs, st.Pct.P50, st.Pct.P90, st.Pct.P99); err != nil {
			return err
		}
		for _, ex := range st.Exemplars {
			if _, err := fmt.Fprintf(w, "           slowest %s %dus\n", ex.RequestID, ex.Us); err != nil {
				return err
			}
		}
	}
	if len(r.Exemplars) > 0 {
		if _, err := fmt.Fprintln(w, "slowest requests:"); err != nil {
			return err
		}
		for _, ex := range r.Exemplars {
			if _, err := fmt.Fprintf(w, "  %s %dus\n", ex.RequestID, ex.Us); err != nil {
				return err
			}
		}
	}

	if r.Join != nil {
		if _, err := fmt.Fprintf(w, "client join: joined=%d client_only=%d server_only=%d\n",
			r.Join.Joined, r.Join.ClientOnly, r.Join.ServerOnly); err != nil {
			return err
		}
		if r.Join.Joined > 0 {
			if _, err := fmt.Fprintf(w, "  overhead_us (client-observed minus server span): p50=%.0f p90=%.0f p99=%.0f\n",
				r.Join.Overhead.P50, r.Join.Overhead.P90, r.Join.Overhead.P99); err != nil {
				return err
			}
			for _, j := range r.Join.Slowest {
				if _, err := fmt.Fprintf(w, "  slowest %s client=%dus server=%dus overhead=%dus status=%d attempts=%d\n",
					j.RequestID, j.ClientUs, j.ServerUs, j.OverheadUs, j.Status, j.Attempts); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
