package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartPprof serves the net/http/pprof profile endpoints on addr
// (e.g. "localhost:6060") and returns a stop function that shuts the
// listener down. The handlers are registered on a private mux, not
// http.DefaultServeMux, so importing this package never pollutes the
// process-global mux.
//
// This is the one place outside internal/par that starts a goroutine:
// the listener serves read-only runtime profiles and produces no result
// that could merge into a computation, so the pool's ordered-merge
// discipline has nothing to order (the sddlint concurrency analyzer
// exempts this package for exactly that reason).
func StartPprof(addr string) (stop func() error, err error) {
	//lint:ignore leakcheck ownership moves to srv.Serve; the returned srv.Close stop func closes the listener
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: pprof listen on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// Header-read and idle timeouts bound what a stalled profiling
	// client can hold open; profile streaming itself is not bounded
	// (CPU profiles legitimately run for tens of seconds).
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go srv.Serve(ln) //nolint — observability-only goroutine; see doc comment
	return srv.Close, nil
}
