package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// TraceSchemaVersion is the version of the build-event vocabulary
// documented in DESIGN.md §10. build_start events carry it as the
// "schema" field so post-run tooling (cmd/sddstat) can refuse traces it
// does not understand instead of misreading them.
const TraceSchemaVersion = 1

// Event is one line of the build-event trace. Fields is marshalled with
// encoding/json, which emits map keys sorted, so a trace produced from
// deterministic fold points is itself deterministic (modulo TMs).
type Event struct {
	// Seq is the 1-based emission order within this tracer.
	Seq int64 `json:"seq"`
	// TMs is the event's offset from tracer creation in milliseconds,
	// read from the caller-supplied clock (0 without a clock).
	TMs int64 `json:"t_ms"`
	// Type names the event: build_start, restart_start, restart_end,
	// proc2_sweep, checkpoint_load, checkpoint_save, resp_build,
	// row_start, row_end, build_end.
	Type   string         `json:"type"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Tracer appends build events to a writer as JSON lines. Every event is
// marshalled and written in one Write call under a mutex, so concurrent
// emitters (trace events from in-flight restarts or sweep rows) never
// interleave bytes, and — for file tracers, which are unbuffered on
// purpose — every event already written is durable when a SIGINT ends
// the run: interrupted runs keep their telemetry without any flush
// coordination. Write errors are sticky and surfaced by Err/Close, never
// propagated into the computation being observed.
type Tracer struct {
	clock func() time.Time
	start time.Time

	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
	seq    int64
	err    error
}

// NewTracer traces onto w. clock supplies event timestamps and may be
// nil (events then carry t_ms 0).
func NewTracer(w io.Writer, clock func() time.Time) *Tracer {
	t := &Tracer{w: w, clock: clock}
	if clock != nil {
		t.start = clock()
	}
	return t
}

// NewFileTracer traces into path, opened append-only (O_APPEND|O_CREATE)
// so a rerun extends the history of an interrupted run rather than
// truncating it mid-crash. The file is deliberately unbuffered: each
// event is one durable write.
func NewFileTracer(path string, clock func() time.Time) (*Tracer, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: opening trace file: %w", err)
	}
	t := NewTracer(f, clock)
	t.closer = f
	return t, nil
}

// Emit appends one event. Safe on a nil tracer and from concurrent
// goroutines; a marshal or write failure is recorded and all later
// emits become no-ops.
func (t *Tracer) Emit(typ string, fields map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	// The clock is read under the lock: injected clocks need not be
	// thread-safe, and t_ms stays monotonic with seq.
	var tms int64
	if t.clock != nil {
		tms = t.clock().Sub(t.start).Milliseconds()
	}
	t.seq++
	line, err := json.Marshal(Event{Seq: t.seq, TMs: tms, Type: typ, Fields: fields})
	if err != nil {
		t.err = fmt.Errorf("obs: marshalling %s event: %w", typ, err)
		return
	}
	if _, err := t.w.Write(append(line, '\n')); err != nil {
		t.err = fmt.Errorf("obs: writing %s event: %w", typ, err)
	}
}

// Err returns the first emission error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close releases the underlying file (if the tracer owns one) and
// returns the first emission error. Safe on nil.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closer != nil {
		cerr := t.closer.Close()
		t.closer = nil
		if t.err == nil && cerr != nil {
			t.err = fmt.Errorf("obs: closing trace file: %w", cerr)
		}
	}
	return t.err
}

// ErrTruncatedTrace marks a trace whose final line is an incomplete
// event: the writing process died (crash, SIGKILL) mid-append. ReadEvents
// wraps it under the parsed prefix, so callers keep the complete events
// and decide for themselves whether the torn tail matters —
// cmd/sddstat reports it and analyzes the prefix; tests that require a
// clean end treat it as a failure.
var ErrTruncatedTrace = errors.New("trace truncated mid-event")

// ReadEvents parses a JSONL trace back into events — the telemetry side
// of the round trip, used by tests and post-run tooling.
//
// The tracer terminates every event with a newline inside the same
// write, so a final line without one is the signature of a write torn by
// a crash: ReadEvents then returns the events parsed so far together
// with an error wrapping ErrTruncatedTrace. A malformed line that *is*
// newline-terminated (or is followed by more lines) is corruption, not
// truncation, and stays a hard error.
func ReadEvents(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var events []Event
	for {
		line, err := br.ReadString('\n')
		if err != nil && !errors.Is(err, io.EOF) {
			return events, fmt.Errorf("obs: reading trace: %w", err)
		}
		complete := err == nil
		if trimmed := strings.TrimSpace(line); trimmed != "" {
			var ev Event
			if uerr := json.Unmarshal([]byte(trimmed), &ev); uerr != nil {
				if !complete {
					return events, fmt.Errorf("obs: trace event %d: %w", len(events)+1, ErrTruncatedTrace)
				}
				return events, fmt.Errorf("obs: parsing trace event %d: %w", len(events)+1, uerr)
			}
			events = append(events, ev)
		}
		if !complete {
			return events, nil
		}
	}
}
