package core

import (
	"context"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"sddict/internal/resp"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Options)
		wantErr string // substring; "" means valid
	}{
		{"defaults", func(o *Options) {}, ""},
		{"zero value", func(o *Options) { *o = Options{} }, ""},
		{"negative lower", func(o *Options) { o.Lower = -1 }, "Lower"},
		{"negative calls1", func(o *Options) { o.Calls1 = -3 }, "Calls1"},
		{"negative restarts", func(o *Options) { o.MaxRestarts = -1 }, "MaxRestarts"},
		{"negative checkpoint interval", func(o *Options) { o.CheckpointEvery = -2 }, "CheckpointEvery"},
		{"checkpoints without sink", func(o *Options) {
			o.CheckpointEvery = 5
			o.OnCheckpoint = nil
		}, "OnCheckpoint"},
		{"checkpoints with sink", func(o *Options) {
			o.CheckpointEvery = 5
			o.OnCheckpoint = func(Checkpoint) {}
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := DefaultOptions
			tc.mutate(&opt)
			err := opt.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted invalid options")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateMatrix(t *testing.T) {
	good := func() *resp.Matrix {
		return randomMatrix(rand.New(rand.NewSource(5)), 12, 6, 4)
	}
	cases := []struct {
		name   string
		mutate func(*resp.Matrix) *resp.Matrix
	}{
		{"nil matrix", func(m *resp.Matrix) *resp.Matrix { return nil }},
		{"no faults", func(m *resp.Matrix) *resp.Matrix { m.N = 0; return m }},
		{"no tests", func(m *resp.Matrix) *resp.Matrix { m.K = 0; return m }},
		{"class rows missing", func(m *resp.Matrix) *resp.Matrix { m.Class = m.Class[:len(m.Class)-1]; return m }},
		{"short class row", func(m *resp.Matrix) *resp.Matrix { m.Class[2] = m.Class[2][:m.N-1]; return m }},
		{"class out of range", func(m *resp.Matrix) *resp.Matrix {
			m.Class[1][0] = int32(m.NumClasses(1))
			return m
		}},
		{"negative class", func(m *resp.Matrix) *resp.Matrix { m.Class[0][0] = -1; return m }},
	}
	if err := ValidateMatrix(good()); err != nil {
		t.Fatalf("ValidateMatrix rejected a valid matrix: %v", err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ValidateMatrix(tc.mutate(good())); err == nil {
				t.Fatalf("ValidateMatrix accepted a broken matrix")
			}
		})
	}
}

func TestBuildSameDiffCtxInvalidInputs(t *testing.T) {
	m := randomMatrix(rand.New(rand.NewSource(5)), 10, 5, 3)
	bad := DefaultOptions
	bad.Lower = -1
	if _, _, err := BuildSameDiffCtx(context.Background(), m, bad); err == nil {
		t.Fatalf("BuildSameDiffCtx accepted invalid options")
	}
	if _, _, err := BuildSameDiffCtx(context.Background(), nil, DefaultOptions); err == nil {
		t.Fatalf("BuildSameDiffCtx accepted a nil matrix")
	}
}

// TestBuildSameDiffCtxCancelMidRestart cancels the search from within a
// checkpoint callback and verifies the degraded result: a valid dictionary,
// Interrupted set, and (thanks to fault-free seeding) a resolution never
// worse than the pass/fail dictionary.
func TestBuildSameDiffCtxCancelMidRestart(t *testing.T) {
	// Few tests and many classes: the one-baseline dictionary cannot reach
	// the full-dictionary floor, so the restart loop keeps searching long
	// enough for the cancellation to land mid-search.
	r := rand.New(rand.NewSource(11))
	m := randomMatrix(r, 80, 5, 5)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := DefaultOptions
	opt.Seed = 3
	opt.Calls1 = 1000
	opt.MaxRestarts = 1000
	opt.CheckpointEvery = 1
	opt.OnCheckpoint = func(cp Checkpoint) {
		if cp.Restarts >= 3 {
			cancel()
		}
	}

	d, st, err := BuildSameDiffCtx(ctx, m, opt)
	if err != nil {
		t.Fatalf("BuildSameDiffCtx: %v", err)
	}
	if d == nil {
		t.Fatalf("interrupted build returned no dictionary")
	}
	if !st.Interrupted {
		t.Fatalf("Interrupted not set after cancellation (restarts=%d)", st.Restarts)
	}
	if got := d.Indistinguished(); got != st.IndistFinal {
		t.Fatalf("dictionary indist %d != reported IndistFinal %d", got, st.IndistFinal)
	}
	if pf := NewPassFail(m).Indistinguished(); st.IndistFinal > pf {
		t.Fatalf("interrupted dictionary (%d indist) worse than pass/fail (%d)", st.IndistFinal, pf)
	}
	if len(d.Baselines) != m.K {
		t.Fatalf("dictionary has %d baselines, want %d", len(d.Baselines), m.K)
	}
}

// TestBuildSameDiffCtxCancelledBeforeStart: even a context dead on arrival
// must yield a valid (if unoptimized) dictionary, not a nil or an error.
func TestBuildSameDiffCtxCancelledBeforeStart(t *testing.T) {
	m := randomMatrix(rand.New(rand.NewSource(4)), 30, 10, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d, st, err := BuildSameDiffCtx(ctx, m, DefaultOptions)
	if err != nil {
		t.Fatalf("BuildSameDiffCtx: %v", err)
	}
	if d == nil || !st.Interrupted {
		t.Fatalf("want valid dictionary with Interrupted, got d=%v interrupted=%v", d != nil, st.Interrupted)
	}
	if pf := NewPassFail(m).Indistinguished(); st.IndistFinal > pf {
		t.Fatalf("dead-on-arrival build (%d indist) worse than pass/fail (%d)", st.IndistFinal, pf)
	}
}

// TestCheckpointResumeDeterminism kills a build after a few restarts,
// resumes from its checkpoint, and verifies the resumed run converges to
// exactly the result of the never-interrupted run with the same seed.
func TestCheckpointResumeDeterminism(t *testing.T) {
	// This matrix/seed pair takes ~15 restarts uninterrupted (the s/d
	// search cannot reach the full floor), leaving room to cancel at 3.
	r := rand.New(rand.NewSource(21))
	m := randomMatrix(r, 60, 6, 6)

	opt := DefaultOptions
	opt.Seed = 9
	opt.Calls1 = 8
	opt.MaxRestarts = 30

	// Reference: one uninterrupted run.
	dRef, stRef := BuildSameDiff(m, opt)

	// Interrupted run: cancel once three restarts have completed, keeping
	// the last checkpoint emitted.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *Checkpoint
	optA := opt
	optA.CheckpointEvery = 1
	optA.OnCheckpoint = func(cp Checkpoint) {
		c := cp
		last = &c
		if cp.Restarts >= 3 {
			cancel()
		}
	}
	_, stA, err := BuildSameDiffCtx(ctx, m, optA)
	if err != nil {
		t.Fatalf("interrupted build: %v", err)
	}
	if !stA.Interrupted || last == nil {
		t.Fatalf("setup failed: interrupted=%v checkpoint=%v", stA.Interrupted, last != nil)
	}
	if stA.Restarts >= stRef.Restarts {
		t.Fatalf("interrupted run already did %d restarts, reference only %d — cancel earlier",
			stA.Restarts, stRef.Restarts)
	}

	// Resume and run to completion.
	optB := opt
	optB.Resume = last
	dRes, stRes, err := BuildSameDiffCtx(context.Background(), m, optB)
	if err != nil {
		t.Fatalf("resumed build: %v", err)
	}
	if !stRes.Resumed {
		t.Fatalf("Resumed not set")
	}
	if stRes.Interrupted {
		t.Fatalf("resumed build reported Interrupted")
	}
	if stRes.IndistFinal != stRef.IndistFinal {
		t.Fatalf("resumed IndistFinal = %d, uninterrupted = %d", stRes.IndistFinal, stRef.IndistFinal)
	}
	if stRes.Restarts != stRef.Restarts {
		t.Fatalf("resumed total restarts = %d, uninterrupted = %d", stRes.Restarts, stRef.Restarts)
	}
	if stRes.IndistProc1 != stRef.IndistProc1 {
		t.Fatalf("resumed IndistProc1 = %d, uninterrupted = %d", stRes.IndistProc1, stRef.IndistProc1)
	}
	for j := range dRef.Baselines {
		if dRef.Baselines[j] != dRes.Baselines[j] {
			t.Fatalf("baseline %d differs after resume: %d vs %d", j, dRef.Baselines[j], dRes.Baselines[j])
		}
	}
}

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	m := randomMatrix(rand.New(rand.NewSource(2)), 20, 8, 4)
	opt := DefaultOptions
	opt.Seed = 5
	cp := Checkpoint{
		Version:       checkpointVersion,
		Seed:          5,
		MatrixN:       m.N,
		MatrixK:       m.K,
		Fingerprint:   MatrixFingerprint(m),
		Restarts:      4,
		NoImprove:     1,
		OrderSeeds:    OrderSeedSchedule(5, 4),
		BestBaselines: make([]int32, m.K),
		BestIndist:    17,
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := cp.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if err := got.ValidateFor(m, opt); err != nil {
		t.Fatalf("round-tripped checkpoint invalid: %v", err)
	}
	if got.Restarts != cp.Restarts || got.BestIndist != cp.BestIndist || got.Fingerprint != cp.Fingerprint {
		t.Fatalf("round trip changed fields: %+v vs %+v", got, cp)
	}

	// A checkpoint from a different matrix must be rejected.
	other := randomMatrix(rand.New(rand.NewSource(99)), 20, 8, 4)
	if other.N == m.N && other.K == m.K {
		if err := got.ValidateFor(other, opt); err == nil {
			t.Fatalf("checkpoint accepted for a different matrix")
		}
	}
	// Wrong seed: resuming would not reproduce the shuffle sequence.
	optWrong := opt
	optWrong.Seed = 6
	if err := got.ValidateFor(m, optWrong); err == nil {
		t.Fatalf("checkpoint accepted under a different seed")
	}
}

func TestLoadCheckpointErrors(t *testing.T) {
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatalf("LoadCheckpoint accepted a missing file")
	}
	if _, err := DecodeCheckpoint(strings.NewReader("not json")); err == nil {
		t.Fatalf("DecodeCheckpoint accepted garbage")
	}
}
