package core

import "sddict/internal/resp"

// CompactTests returns a keep-mask over the tests of a same/different (or
// pass/fail, with all-zero baselines) dictionary such that the dictionary
// restricted to the kept tests distinguishes exactly the same fault pairs.
// Tests whose baseline bit separates no pair not already separated by the
// other kept tests are dropped; sweeps repeat until a fixed point.
//
// This implements the dictionary-size optimization direction of the
// paper's refs [2] and [13]: rows of a dictionary are only as useful as the
// pairs they split, and n-detection test sets in particular carry many
// informationless columns. Dropping a test removes n bits (plus a stored
// baseline vector) from the dictionary.
func CompactTests(m *resp.Matrix, baselines []int32) []bool {
	keep := make([]bool, m.K)
	for j := range keep {
		keep[j] = true
	}
	var scratch distScratch
	for {
		dropped := false
		// Suffix partitions over the currently-kept tests.
		suffix := make([]*Partition, m.K+1)
		suffix[m.K] = NewPartition(m.N)
		for j := m.K - 1; j >= 0; j-- {
			suffix[j] = suffix[j+1]
			if keep[j] {
				suffix[j] = suffix[j+1].Clone()
				suffix[j].RefineByBaseline(m.Class[j], baselines[j])
			}
		}
		prefix := NewPartition(m.N)
		for j := 0; j < m.K; j++ {
			if !keep[j] {
				suffix[j] = nil
				continue
			}
			rest := Meet(prefix, suffix[j+1])
			dist := scratch.perClass(rest, m.Class[j], m.NumClasses(j))
			if dist[baselines[j]] == 0 {
				keep[j] = false
				dropped = true
			} else {
				prefix.RefineByBaseline(m.Class[j], baselines[j])
			}
			suffix[j] = nil
		}
		if !dropped {
			return keep
		}
	}
}

// RestrictTests returns a new matrix (and remapped baselines) containing
// only the tests selected by the keep mask, preserving test order. Use
// with CompactTests to materialize the smaller dictionary.
func RestrictTests(m *resp.Matrix, baselines []int32, keep []bool) (*resp.Matrix, []int32) {
	out := &resp.Matrix{N: m.N, M: m.M}
	var newBase []int32
	for j := 0; j < m.K; j++ {
		if !keep[j] {
			continue
		}
		out.Class = append(out.Class, m.Class[j])
		out.Vecs = append(out.Vecs, m.Vecs[j])
		newBase = append(newBase, baselines[j])
	}
	out.K = len(out.Class)
	return out, newBase
}
