package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"sddict/internal/logic"
)

// Compiled is the deployable form of a dictionary: exactly the bits a
// tester-side diagnosis flow needs, with the response matrix left behind.
// For pass/fail and same/different dictionaries that is one signature row
// per fault (k bits, 2k with the two-baseline extension) plus the baseline
// output vectors for the tests whose baseline is not the fault-free
// response. Fault-free output vectors are stored too, because a
// same/different diagnosis needs both sides of the comparison.
type Compiled struct {
	Kind     Kind
	NumTests int
	Outputs  int
	// Rows[i] is fault i's packed signature (NumTests or 2*NumTests bits).
	Rows []logic.BitVec
	// FaultFree[j] is the fault-free output vector of test j.
	FaultFree []logic.BitVec
	// Baseline[j] is the baseline output vector of test j (equal to
	// FaultFree[j] where no special baseline was stored).
	Baseline []logic.BitVec
	// ExtraBaseline is non-nil for two-baseline dictionaries.
	ExtraBaseline []logic.BitVec
}

// Compile extracts the deployable form of d. Full dictionaries cannot be
// compiled to signature rows (they need the whole response matrix) and are
// rejected.
func (d *Dictionary) Compile() (*Compiled, error) {
	if d.Kind == Full {
		return nil, errors.New("core: a full dictionary has no compact compiled form")
	}
	m := d.M
	c := &Compiled{
		Kind:      d.Kind,
		NumTests:  m.K,
		Outputs:   m.M,
		Rows:      make([]logic.BitVec, m.N),
		FaultFree: make([]logic.BitVec, m.K),
		Baseline:  make([]logic.BitVec, m.K),
	}
	for i := 0; i < m.N; i++ {
		c.Rows[i] = d.Row(i)
	}
	for j := 0; j < m.K; j++ {
		c.FaultFree[j] = m.Vecs[j][0].Clone()
		c.Baseline[j] = d.BaselineVector(j).Clone()
	}
	if d.ExtraBaselines != nil {
		c.ExtraBaseline = make([]logic.BitVec, m.K)
		for j := 0; j < m.K; j++ {
			c.ExtraBaseline[j] = m.Vecs[j][d.ExtraBaselines[j]].Clone()
		}
	}
	return c, nil
}

// Signature reduces observed responses (one output vector per test) to the
// compiled dictionary's signature space.
func (c *Compiled) Signature(observed []logic.BitVec) (logic.BitVec, error) {
	if len(observed) != c.NumTests {
		return nil, fmt.Errorf("core: %d observed responses, dictionary has %d tests",
			len(observed), c.NumTests)
	}
	total := c.NumTests
	if c.ExtraBaseline != nil {
		total = 2 * c.NumTests
	}
	sig := logic.NewBitVec(total)
	for j := 0; j < c.NumTests; j++ {
		if !observed[j].Equal(c.Baseline[j]) {
			sig.Set(j, 1)
		}
	}
	if c.ExtraBaseline != nil {
		for j := 0; j < c.NumTests; j++ {
			if !observed[j].Equal(c.ExtraBaseline[j]) {
				sig.Set(c.NumTests+j, 1)
			}
		}
	}
	return sig, nil
}

// SignatureBits returns the width of this dictionary's signature space:
// one bit per test, doubled by the two-baseline extension.
func (c *Compiled) SignatureBits() int {
	if c.ExtraBaseline != nil {
		return 2 * c.NumTests
	}
	return c.NumTests
}

// Candidates returns the fault indices whose rows equal sig.
func (c *Compiled) Candidates(sig logic.BitVec) []int {
	var out []int
	for i, row := range c.Rows {
		if row.Equal(sig) {
			out = append(out, i)
		}
	}
	return out
}

// SizeBits returns the stored size following the paper's accounting:
// signature bits plus baseline vectors that differ from the fault-free
// response (the fault-free responses themselves are not charged).
func (c *Compiled) SizeBits() int64 {
	rowBits := int64(c.NumTests)
	if c.ExtraBaseline != nil {
		rowBits *= 2
	}
	size := rowBits * int64(len(c.Rows))
	for j := 0; j < c.NumTests; j++ {
		if !c.Baseline[j].Equal(c.FaultFree[j]) {
			size += int64(c.Outputs)
		}
		if c.ExtraBaseline != nil && !c.ExtraBaseline[j].Equal(c.FaultFree[j]) {
			size += int64(c.Outputs)
		}
	}
	return size
}

// Binary format: a small magic/version header, the dimensions, then the
// packed sections. All integers are little-endian uint32/uint64.
const (
	compiledMagic   = 0x53444443 // "SDDC"
	compiledVersion = 1
)

// WriteTo serializes the compiled dictionary.
func (c *Compiled) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	hdr := []uint32{compiledMagic, compiledVersion, uint32(c.Kind),
		uint32(len(c.Rows)), uint32(c.NumTests), uint32(c.Outputs)}
	extra := uint32(0)
	if c.ExtraBaseline != nil {
		extra = 1
	}
	hdr = append(hdr, extra)
	for _, h := range hdr {
		if err := write(h); err != nil {
			return n, err
		}
	}
	writeVecs := func(vecs []logic.BitVec) error {
		for _, v := range vecs {
			if err := write([]uint64(v)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeVecs(c.Rows); err != nil {
		return n, err
	}
	if err := writeVecs(c.FaultFree); err != nil {
		return n, err
	}
	if err := writeVecs(c.Baseline); err != nil {
		return n, err
	}
	if c.ExtraBaseline != nil {
		if err := writeVecs(c.ExtraBaseline); err != nil {
			return n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadCompiled deserializes a compiled dictionary written by WriteTo.
func ReadCompiled(r io.Reader) (*Compiled, error) {
	br := bufio.NewReader(r)
	var hdr [7]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("core: reading header: %w", err)
		}
	}
	if hdr[0] != compiledMagic {
		return nil, errors.New("core: not a compiled dictionary (bad magic)")
	}
	if hdr[1] != compiledVersion {
		return nil, fmt.Errorf("core: unsupported version %d", hdr[1])
	}
	kind := Kind(hdr[2])
	if kind != PassFail && kind != SameDiff {
		return nil, fmt.Errorf("core: invalid dictionary kind %d", hdr[2])
	}
	nFaults, k, m := int(hdr[3]), int(hdr[4]), int(hdr[5])
	hasExtra := hdr[6] == 1
	const limit = 1 << 28 // sanity bound against corrupt headers
	if nFaults < 0 || k <= 0 || m <= 0 ||
		int64(nFaults)*int64(k) > limit || int64(k)*int64(m) > limit {
		return nil, errors.New("core: implausible dimensions in header")
	}
	c := &Compiled{Kind: kind, NumTests: k, Outputs: m}
	rowBits := k
	if hasExtra {
		rowBits = 2 * k
	}
	readVecs := func(count, bits int) ([]logic.BitVec, error) {
		vecs := make([]logic.BitVec, count)
		words := logic.WordsFor(bits)
		for i := range vecs {
			v := make(logic.BitVec, words)
			if err := binary.Read(br, binary.LittleEndian, []uint64(v)); err != nil {
				return nil, err
			}
			vecs[i] = v
		}
		return vecs, nil
	}
	var err error
	if c.Rows, err = readVecs(nFaults, rowBits); err != nil {
		return nil, fmt.Errorf("core: reading rows: %w", err)
	}
	if c.FaultFree, err = readVecs(k, m); err != nil {
		return nil, fmt.Errorf("core: reading fault-free vectors: %w", err)
	}
	if c.Baseline, err = readVecs(k, m); err != nil {
		return nil, fmt.Errorf("core: reading baselines: %w", err)
	}
	if hasExtra {
		if c.ExtraBaseline, err = readVecs(k, m); err != nil {
			return nil, fmt.Errorf("core: reading extra baselines: %w", err)
		}
	}
	return c, nil
}
