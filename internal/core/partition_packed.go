package core

import (
	"math/bits"

	"sddict/internal/resp"
)

// This file is the popcount side of the partition engine (DESIGN.md §14):
// an optional per-group fault-bitmap arena over which Procedure 1 computes
// dist(z) as Σ_groups c·(s−c) with c = popcount(group ∧ classBitmap(z)),
// instead of counting class ids member by member. Both paths produce
// bit-identical dist values (each computes the exact per-group class
// counts), so procedure 1 is free to pick whichever is cheaper per test
// without perturbing the LOWER cutoff, the selected baselines, or any
// downstream artifact.

// packedGroups is the bitmap arena: group label l owns the word slab
// bits[l·words : (l+1)·words], a bitset over the fault indices. Per label
// it also keeps the ascending list of nonzero word indices, so scanning a
// group costs O(popcount-words), not O(words) — with many small groups the
// total scan cost per class is bounded by nnz ≤ live words, not
// groups × words.
type packedGroups struct {
	words int
	bits  []uint64
	nzw   [][]int32 // per label: ascending indices of nonzero words
	nnz   int       // Σ len(nzw[l]) over live labels
	zero  []uint64  // all-zero slab appended per fresh label

	// Chunk allocator for child word lists: a list is written once at its
	// group's birth and only ever filtered in place afterwards, so carving
	// lists out of shared chunks is safe and avoids a heap allocation per
	// split.
	chunk []int32
}

func (pk *packedGroups) slot(l int32) []uint64 {
	return pk.bits[int(l)*pk.words : (int(l)+1)*pk.words]
}

// addLabel appends a zeroed slab for a freshly allocated label. append
// grows the arena geometrically: the idle-drop rule retires the arena
// long before the partition shatters, so sizing it for the worst-case
// label count up front would zero far more memory than is ever used.
func (pk *packedGroups) addLabel() {
	pk.bits = append(pk.bits, pk.zero...)
	pk.nzw = append(pk.nzw, nil)
}

// alloc carves an n-int list out of the current chunk.
func (pk *packedGroups) alloc(n int) []int32 {
	if cap(pk.chunk)-len(pk.chunk) < n {
		c := 4096
		if n > c {
			c = n
		}
		pk.chunk = make([]int32, 0, c)
	}
	out := pk.chunk[len(pk.chunk) : len(pk.chunk)+n]
	pk.chunk = pk.chunk[:len(pk.chunk)+n]
	return out
}

// dropLabel retires a dead label's word-list accounting. Its slab keeps
// stale bits but is never read again: scans skip labels with size < 2 and
// labels are never reused.
func (pk *packedGroups) dropLabel(l int32) {
	pk.nnz -= len(pk.nzw[l])
	pk.nzw[l] = nil
}

// move transfers the given members from the parent slab to the child slab
// and rebuilds both nonzero-word lists by filtering the parent's old list
// (the child's words are a subset of it).
func (pk *packedGroups) move(parent, child int32, members []int32) {
	pb := pk.slot(parent)
	cb := pk.slot(child)
	for _, f := range members {
		w, bit := int(f)>>6, uint64(1)<<(uint(f)&63)
		pb[w] &^= bit
		cb[w] |= bit
	}
	old := pk.nzw[parent]
	pk.nnz -= len(old)
	cn := pk.alloc(len(old))[:0]
	pn := old[:0]
	for _, wi := range old {
		if pb[wi] != 0 {
			pn = append(pn, wi)
		}
		if cb[wi] != 0 {
			cn = append(cn, wi)
		}
	}
	pk.nzw[parent] = pn
	pk.nzw[child] = cn
	pk.nnz += len(pn) + len(cn)
}

// clear removes one fault from a slab (the fault became isolated).
func (pk *packedGroups) clear(l, f int32) {
	pb := pk.slot(l)
	w := int(f) >> 6
	pb[w] &^= uint64(1) << (uint(f) & 63)
	if pb[w] != 0 {
		return
	}
	old := pk.nzw[l]
	keep := old[:0]
	for _, wi := range old {
		if wi != int32(w) {
			keep = append(keep, wi)
		}
	}
	pk.nzw[l] = keep
	pk.nnz--
}

// enablePacked builds the bitmap arena for the current groups. Only
// procedure 1 calls it; every other consumer stays on the member-scan
// path. All subsequent refinement (either path) keeps the arena in sync.
func (p *Partition) enablePacked() {
	words := (len(p.lab) + 63) / 64
	if words == 0 {
		words = 1
	}
	pk := &packedGroups{
		words: words,
		bits:  make([]uint64, int(p.next)*words),
		nzw:   make([][]int32, p.next),
		zero:  make([]uint64, words),
	}
	for f, l := range p.lab {
		if l >= 0 {
			pk.slot(l)[f>>6] |= 1 << (uint(f) & 63)
		}
	}
	for l := int32(0); l < p.next; l++ {
		if p.size[l] < 2 {
			continue
		}
		sl := pk.slot(l)
		for wi := 0; wi < words; wi++ {
			if sl[wi] != 0 {
				pk.nzw[l] = append(pk.nzw[l], int32(wi))
			}
		}
		pk.nnz += len(pk.nzw[l])
	}
	p.packed = pk
}

// distPacked computes dist for one class bitmap: per live group the match
// count c is a popcount over the group's nonzero words ANDed with the
// class bitmap, contributing c·(s−c). Per-label counts are recorded in cnt
// and the labels with a proper split (0 < c < s) are appended to split in
// ascending label order — the refinement worklist.
func (p *Partition) distPacked(bm []uint64, cnt []int32, split []int32) (int64, []int32) {
	pk := p.packed
	var dist int64
	split = split[:0]
	for _, l := range p.labs {
		s := p.size[l]
		if s < 2 {
			continue
		}
		base := int(l) * pk.words
		var c int32
		for _, wi := range pk.nzw[l] {
			c += int32(bits.OnesCount64(pk.bits[base+int(wi)] & bm[wi]))
		}
		cnt[l] = c
		if c != 0 {
			dist += int64(c) * int64(s-c)
			if c != s {
				split = append(split, l)
			}
		}
	}
	return dist, split
}

// selectPacked runs the LOWER scan lazily over packed class bitmaps: each
// candidate's dist is computed on demand and the scan stops at exactly the
// point selectWithLower would, because the per-candidate dist values are
// bit-identical. Double buffering keeps the winner's per-group counts and
// split worklist alive while later candidates are probed.
func (sc *distScratch) selectPacked(p *Partition, pc resp.PackedClasses, numClasses, lower int, evals, cutoffs *int64) (int32, []int32, []int32) {
	nl := int(p.next)
	if cap(sc.cntLab) < nl {
		// labCap bounds every future label id of this restart, so this
		// allocates at most once per restart (ensureIndexBufs does the same
		// for the index-scan counters).
		n := p.labCap
		if n < nl {
			n = nl
		}
		sc.cntLab = make([]int32, n)
		sc.bestLab = make([]int32, n)
	}
	cnt := sc.cntLab[:nl]
	bestCnt := sc.bestLab[:nl]
	split, bestSplit := sc.splitA, sc.splitB
	best := int64(-1)
	bestIdx := int32(0)
	consec := 0
	for z := 0; z < numClasses; z++ {
		*evals++
		var d int64
		d, split = p.distPacked(pc.Class(int32(z)), cnt, split)
		switch {
		case d > best:
			best, bestIdx = d, int32(z)
			consec = 0
			cnt, bestCnt = bestCnt, cnt
			split, bestSplit = bestSplit, split
		case d < best:
			consec++
			if lower > 0 && consec >= lower {
				*cutoffs++
				sc.cntLab, sc.bestLab = cnt[:cap(cnt)], bestCnt[:cap(bestCnt)]
				sc.splitA, sc.splitB = split, bestSplit
				return bestIdx, bestCnt, bestSplit
			}
		}
	}
	sc.cntLab, sc.bestLab = cnt[:cap(cnt)], bestCnt[:cap(bestCnt)]
	sc.splitA, sc.splitB = split, bestSplit
	return bestIdx, bestCnt, bestSplit
}

// refineByCounts applies a chosen baseline from its class bitmap: only the
// groups on the split worklist are touched (groups the baseline does not
// split cost nothing), membership tests are single bit probes in the class
// bitmap, and the match counts come from the preceding scan — no recount.
func (p *Partition) refineByCounts(bm []uint64, cnt, split []int32) int64 {
	var removed int64
	for _, l := range split {
		removed += p.splitByBitmap(l, cnt[l], bm)
	}
	return removed
}
