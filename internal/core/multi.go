package core

import (
	"context"

	"sddict/internal/obs"
	"sddict/internal/par"
	"sddict/internal/resp"
)

// BuildSameDiffMulti implements the extension the paper mentions but does
// not evaluate ("one can select more than one baseline vector for a test
// vector"): two baselines per test, giving two same/different bits per
// fault/test. Selection is greedy per test — the best candidate is chosen
// and applied, then the best candidate against the refined partition — with
// the same random-order restart scheme as the one-baseline construction.
// The dictionary costs 2·k·n bits plus storage for the non-fault-free
// baselines. It panics on invalid options or matrix (the context-aware
// form returns the error).
func BuildSameDiffMulti(m *resp.Matrix, opt Options) (*Dictionary, BuildStats) {
	d, st, err := BuildSameDiffMultiCtx(context.Background(), m, opt)
	if err != nil {
		panic("core: " + err.Error())
	}
	return d, st
}

// BuildSameDiffMultiCtx is BuildSameDiffMulti under a context: cancellation
// and deadline stop the search at restart/sweep/test granularity and return
// the best two-baseline dictionary found so far with BuildStats.Interrupted
// set. Checkpoint/resume (Options.Resume, Options.OnCheckpoint) applies
// only to the single-baseline construction and is ignored here.
func BuildSameDiffMultiCtx(ctx context.Context, m *resp.Matrix, opt Options) (*Dictionary, BuildStats, error) {
	var st BuildStats
	st.IndistSeeded = -1
	if err := opt.Validate(); err != nil {
		return nil, st, err
	}
	if err := ValidateMatrix(m); err != nil {
		return nil, st, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	st.IndistFull = NewFull(m).Indistinguished()

	maxRestarts := opt.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 1
	}

	// The restart driver mirrors the single-baseline one: restart i is a
	// pure function of (m, opt.Seed, i) — the shuffle schedule is shared
	// with BuildSameDiffCtx, so the two constructions explore the same
	// test orders — and results fold in index order, making the outcome
	// identical at every Options.Workers setting.
	type multiResult struct {
		b1, b2  []int32
		indist  int64
		evals   int64
		cutoffs int64
		done    bool
	}
	ob := opt.Obs
	var best1, best2 []int32
	var bestIndist int64
	noImprove := 0
	pool := par.New(opt.Workers)
	par.Stream(ctx, pool, maxRestarts, func(ctx context.Context, i int) multiResult {
		if ob.Tracing() {
			ob.Emit("restart_start", map[string]any{"restart": i, "order_seed": OrderSeed(opt.Seed, i)})
		}
		var res multiResult
		order := restartOrder(opt.Seed, i, m.K)
		res.b1, res.b2, res.indist, res.done = procedure1Multi(ctx, m, order, opt.Lower, &res.evals, &res.cutoffs)
		return res
	}, func(i int, res multiResult) bool {
		if !res.done {
			st.Interrupted = true
			if i == 0 {
				// Keep the partial first restart: it is still a valid
				// (if weak) two-baseline selection.
				best1, best2, bestIndist = res.b1, res.b2, res.indist
				st.Restarts = 1
			}
			return false
		}
		st.CandidateEvals += res.evals
		st.Restarts++
		improved := i == 0 || res.indist < bestIndist
		if improved {
			if i > 0 {
				noImprove = 0
			}
			best1, best2, bestIndist = res.b1, res.b2, res.indist
		} else {
			noImprove++
		}
		// Observation at the ordered fold point only, as in runRestartsCtx.
		ob.M().Inc(obs.RestartsRun)
		ob.M().Add(obs.CandidateScans, res.evals)
		ob.M().Add(obs.LowerCutoffHits, res.cutoffs)
		ob.M().Set(obs.RestartsSinceImprove, int64(noImprove))
		ob.M().Set(obs.IndistPairs, bestIndist)
		ob.M().Observe(obs.RestartIndist, res.indist)
		if ob.Tracing() {
			ob.Emit("restart_end", map[string]any{
				"restart": i, "indist": res.indist, "best": bestIndist,
				"improved": improved,
			})
		}
		ob.Tick()
		if noImprove >= opt.Calls1 || st.Restarts >= maxRestarts || bestIndist <= st.IndistFull {
			return false
		}
		if ctx.Err() != nil {
			st.Interrupted = true
			return false
		}
		return true
	})
	st.IndistProc1 = bestIndist
	st.IndistProc2 = bestIndist
	if opt.RunProcedure2 && !st.Interrupted && bestIndist > st.IndistFull {
		indist, sweeps, done := procedure2Multi(ctx, m, best1, best2)
		st.Proc2Sweeps = sweeps
		st.IndistProc2 = indist
		st.Proc2Improved = indist < st.IndistProc1
		bestIndist = indist
		st.Interrupted = st.Interrupted || !done
	}
	st.IndistFinal = bestIndist
	st.ReachedFullFloor = bestIndist == st.IndistFull
	for j := range best1 {
		if best1[j] != 0 {
			st.StoredBaselines++
		}
		if best2[j] != 0 {
			st.StoredBaselines++
		}
	}
	return &Dictionary{Kind: SameDiff, M: m, Baselines: best1, ExtraBaselines: best2}, st, nil
}

// procedure1Multi mirrors procedure1 with two baseline slots per test. done
// is false when ctx cut the run short; like procedure1, the partial
// baselines remain a valid selection.
func procedure1Multi(ctx context.Context, m *resp.Matrix, order []int, lower int, evals, cutoffs *int64) ([]int32, []int32, int64, bool) {
	p := NewPartition(m.N)
	p.enablePacked()
	b1 := make([]int32, m.K)
	b2 := make([]int32, m.K)
	var scratch distScratch
	for _, j := range order {
		if p.Done() {
			break
		}
		if ctx.Err() != nil {
			return b1, b2, p.Pairs(), false
		}
		b1[j] = scratch.scanAndRefine(p, m, j, lower, evals, cutoffs)
		if p.Done() {
			break
		}
		b2[j] = scratch.scanAndRefine(p, m, j, lower, evals, cutoffs)
	}
	return b1, b2, p.Pairs(), true
}

// procedure2Multi extends Procedure 2 to the two-baseline dictionary: each
// of a test's two baseline slots is locally optimized in turn while the
// other slot (and all other tests) stay fixed, sweeping until no
// replacement improves the distinguished-pair count. The same
// prefix/suffix partition scheme as procedure2 applies, with each test
// contributing two refinements. done is false when ctx cut the sweeps
// short; the in-place baselines remain valid and no worse than the input.
func procedure2Multi(ctx context.Context, m *resp.Matrix, b1, b2 []int32) (int64, int, bool) {
	var scratch distScratch
	var ms meetScratch
	restBase := &Partition{}
	suf := newSuffixLabels(m.N, m.K)
	sweeps := 0
	var finalIndist int64
	for {
		sweeps++
		improved := false

		suf.buildMulti(m, b1, b2)
		prefix := NewPartition(m.N)
		for j := 0; j < m.K; j++ {
			if ctx.Err() != nil {
				return sdMultiIndist(m, b1, b2), sweeps, false
			}
			// Optimize slot 1 with slot 2 fixed.
			meetInto(restBase, prefix, suf.lab(j+1), suf.next[j+1], &ms)
			rest1 := restBase.Clone()
			rest1.RefineByBaseline(m.Class[j], b2[j])
			dist := scratch.perClass(rest1, m.Class[j], m.NumClasses(j))
			best := b1[j]
			for z := int32(0); z < int32(len(dist)); z++ {
				if dist[z] > dist[best] {
					best = z
				}
			}
			if best != b1[j] {
				b1[j] = best
				improved = true
			}
			// Optimize slot 2 with the (possibly new) slot 1 fixed.
			rest2 := restBase
			rest2.RefineByBaseline(m.Class[j], b1[j])
			dist = scratch.perClass(rest2, m.Class[j], m.NumClasses(j))
			best = b2[j]
			for z := int32(0); z < int32(len(dist)); z++ {
				if dist[z] > dist[best] {
					best = z
				}
			}
			if best != b2[j] {
				b2[j] = best
				improved = true
			}
			prefix.RefineByBaseline(m.Class[j], b1[j])
			prefix.RefineByBaseline(m.Class[j], b2[j])
		}
		finalIndist = prefix.Pairs()
		if !improved {
			return finalIndist, sweeps, true
		}
		if ctx.Err() != nil {
			return finalIndist, sweeps, false
		}
	}
}

// sdMultiIndist returns the indistinguished-pair count of the two-baseline
// dictionary with the given slots, by direct refinement.
func sdMultiIndist(m *resp.Matrix, b1, b2 []int32) int64 {
	p := NewPartition(m.N)
	for j := 0; j < m.K; j++ {
		if p.Done() {
			break
		}
		p.RefineByBaseline(m.Class[j], b1[j])
		p.RefineByBaseline(m.Class[j], b2[j])
	}
	return p.Pairs()
}
