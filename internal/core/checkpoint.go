package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"sddict/internal/resp"
)

// checkpointVersion is bumped whenever the on-disk layout or the meaning of
// a field changes; Load rejects files from other versions. Version 2 added
// OrderSeeds, the per-restart order-seed schedule; version-1 files predate
// the schedule (their cumulative-shuffle restarts cannot be replayed under
// the per-restart scheme) and are rejected.
const checkpointVersion = 2

// Checkpoint is a resumable snapshot of same/different dictionary
// construction, taken at a Procedure 1 restart boundary. It captures the
// best baseline selection found so far together with the restart counters;
// the random state is not stored explicitly — it is reproduced on resume by
// replaying the (deterministic) shuffle sequence from Seed, so a resumed
// run continues exactly where an uninterrupted run with the same seed would
// have been. The file format is versioned JSON (see DESIGN.md §7).
type Checkpoint struct {
	Version int `json:"version"`
	// Seed is the Options.Seed of the interrupted run; resuming under a
	// different seed is rejected.
	Seed int64 `json:"seed"`
	// MatrixN/MatrixK/Fingerprint identify the response matrix the
	// checkpoint was taken over; resuming over a different matrix is
	// rejected.
	MatrixN     int    `json:"matrix_n"`
	MatrixK     int    `json:"matrix_k"`
	Fingerprint uint64 `json:"fingerprint"`
	// Restarts is the number of completed Procedure 1 runs.
	Restarts int `json:"restarts"`
	// NoImprove is the CALLS_1 counter: consecutive completed restarts
	// without improvement.
	NoImprove int `json:"no_improve"`
	// OrderSeeds records the test-order seed of every completed restart
	// (length Restarts): entry i must equal OrderSeed(Seed, i). The
	// schedule is derivable from Seed, but storing it lets ValidateFor
	// verify that the resuming build derives the same schedule — a resume
	// from a binary with a different derivation would otherwise silently
	// replay different restarts.
	OrderSeeds []int64 `json:"order_seeds"`
	// BestBaselines is the best baseline selection over the completed
	// restarts (length MatrixK).
	BestBaselines []int32 `json:"best_baselines"`
	// BestIndist is the indistinguished-pair count of BestBaselines.
	BestIndist int64 `json:"best_indist"`
	// CandidateEvals is the dist(z) evaluation count over the completed
	// restarts.
	CandidateEvals int64 `json:"candidate_evals"`
}

// MatrixFingerprint returns a cheap identity hash of a response matrix's
// class structure, used to detect a checkpoint applied to the wrong matrix.
func MatrixFingerprint(m *resp.Matrix) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	put := func(v int32) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf[:])
	}
	put(int32(m.N))
	put(int32(m.K))
	for _, row := range m.Class {
		for _, c := range row {
			put(c)
		}
	}
	return h.Sum64()
}

// ValidateFor reports whether the checkpoint can resume a build of m under
// opt, returning a descriptive error when it cannot.
func (cp *Checkpoint) ValidateFor(m *resp.Matrix, opt Options) error {
	switch {
	case cp.Version != checkpointVersion:
		return fmt.Errorf("core: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	case cp.Seed != opt.Seed:
		return fmt.Errorf("core: checkpoint seed %d does not match Options.Seed %d", cp.Seed, opt.Seed)
	case cp.MatrixN != m.N || cp.MatrixK != m.K:
		return fmt.Errorf("core: checkpoint matrix %dx%d does not match %dx%d", cp.MatrixN, cp.MatrixK, m.N, m.K)
	case cp.Fingerprint != MatrixFingerprint(m):
		return fmt.Errorf("core: checkpoint fingerprint mismatch (different response matrix)")
	case len(cp.BestBaselines) != m.K:
		return fmt.Errorf("core: checkpoint has %d baselines, matrix has %d tests", len(cp.BestBaselines), m.K)
	case cp.Restarts < 1:
		return fmt.Errorf("core: checkpoint has no completed restarts")
	case len(cp.OrderSeeds) != cp.Restarts:
		return fmt.Errorf("core: checkpoint has %d order seeds for %d restarts", len(cp.OrderSeeds), cp.Restarts)
	}
	for i, s := range cp.OrderSeeds {
		if want := OrderSeed(opt.Seed, i); s != want {
			return fmt.Errorf("core: checkpoint order seed %d of restart %d does not match the schedule (%d)", s, i, want)
		}
	}
	for j, b := range cp.BestBaselines {
		if b < 0 || int(b) >= m.NumClasses(j) {
			return fmt.Errorf("core: checkpoint baseline %d of test %d out of range [0,%d)", b, j, m.NumClasses(j))
		}
	}
	return nil
}

// Encode writes the checkpoint as JSON.
func (cp *Checkpoint) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(cp)
}

// DecodeCheckpoint reads a checkpoint written by Encode.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	return &cp, nil
}

// AtomicWriteFile writes an artifact to path via write, staging the
// bytes in a temp file in the destination directory and renaming it over
// path only after a successful close — so a crash mid-write never leaves
// a truncated artifact observable at path. The temp file is fsynced
// before the rename and the parent directory after it, so the published
// artifact also survives power loss: rename-over-unsynced-data can
// otherwise leave an empty or torn file once the page cache is gone.
// This is the single sanctioned way to produce checkpoint, dictionary,
// and report files; the sddlint atomicwrite analyzer rejects direct
// os.WriteFile/os.Create calls elsewhere in the library and command
// packages.
func AtomicWriteFile(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	if err := write(bw); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	// CreateTemp opens 0600; artifacts are ordinary files, so restore the
	// usual creation mode before publishing.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable — the
// rename itself lives in directory metadata, which its own fsync
// publishes.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("core: opening directory %s for sync: %w", dir, err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("core: syncing directory %s: %w", dir, serr)
	}
	return cerr
}

// Save writes the checkpoint to path atomically (temp file + rename), so a
// crash mid-write never leaves a truncated checkpoint behind.
func (cp *Checkpoint) Save(path string) error {
	if err := AtomicWriteFile(path, func(w io.Writer) error { return cp.Encode(w) }); err != nil {
		return fmt.Errorf("core: saving checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint file written by Save.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeCheckpoint(f)
}
