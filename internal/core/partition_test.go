package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sddict/internal/logic"
	"sddict/internal/resp"
)

// pairSet is the brute-force explicit pair set the paper's procedures
// maintain; used as the reference for the partition representation.
type pairSet map[[2]int]bool

func newPairSet(n int) pairSet {
	p := make(pairSet)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p[[2]int{i, j}] = true
		}
	}
	return p
}

// removeByBaseline drops every pair distinguished by baseline z on the
// class row, per Procedure 1 step 4.
func (p pairSet) removeByBaseline(class []int32, z int32) int {
	removed := 0
	for pair := range p {
		a, b := class[pair[0]] == z, class[pair[1]] == z
		if a != b {
			delete(p, pair)
			removed++
		}
	}
	return removed
}

// removeByClass drops every pair whose classes differ (full dictionary).
func (p pairSet) removeByClass(class []int32) int {
	removed := 0
	for pair := range p {
		if class[pair[0]] != class[pair[1]] {
			delete(p, pair)
			removed++
		}
	}
	return removed
}

// randomMatrix builds a random response matrix with small class counts so
// collisions are common.
func randomMatrix(r *rand.Rand, n, k, maxClasses int) *resp.Matrix {
	m := &resp.Matrix{N: n, K: k, M: 4}
	m.Class = make([][]int32, k)
	m.Vecs = make([][]logic.BitVec, k)
	for j := 0; j < k; j++ {
		nc := 1 + r.Intn(maxClasses)
		m.Class[j] = make([]int32, n)
		used := map[int32]bool{}
		for i := 0; i < n; i++ {
			c := int32(r.Intn(nc))
			m.Class[j][i] = c
			used[c] = true
		}
		// Class ids must be dense: remap to first-occurrence order with the
		// fault-free class 0 kept.
		remap := map[int32]int32{0: 0}
		var next int32 = 1
		for i := 0; i < n; i++ {
			c := m.Class[j][i]
			if _, ok := remap[c]; !ok {
				remap[c] = next
				next++
			}
			m.Class[j][i] = remap[c]
		}
		m.Vecs[j] = make([]logic.BitVec, next)
		for c := int32(0); c < next; c++ {
			v := logic.NewBitVec(m.M)
			for b := 0; b < m.M; b++ {
				v.Set(b, uint64(c>>uint(b))&1)
			}
			m.Vecs[j][c] = v
		}
	}
	return m
}

// TestPartitionMatchesPairSet cross-validates partition refinement against
// the brute-force pair set on random matrices and random baseline choices.
func TestPartitionMatchesPairSet(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(20)
		k := 1 + r.Intn(8)
		m := randomMatrix(r, n, k, 5)
		part := NewPartition(n)
		pairs := newPairSet(n)
		for j := 0; j < k; j++ {
			z := int32(r.Intn(m.NumClasses(j)))
			gotRemoved := part.RefineByBaseline(m.Class[j], z)
			wantRemoved := pairs.removeByBaseline(m.Class[j], z)
			if gotRemoved != int64(wantRemoved) {
				t.Fatalf("trial %d test %d: removed %d pairs, want %d", trial, j, gotRemoved, wantRemoved)
			}
			if got, want := part.Pairs(), int64(len(pairs)); got != want {
				t.Fatalf("trial %d test %d: %d pairs remain, want %d", trial, j, got, want)
			}
		}
		// Group membership must match pair membership.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				same := part.Label(i) != Isolated && part.Label(i) == part.Label(j)
				if same != pairs[[2]int{i, j}] {
					t.Fatalf("trial %d: pair (%d,%d) grouped=%v, pairset=%v", trial, i, j, same, pairs[[2]int{i, j}])
				}
			}
		}
	}
}

// TestRefineByClassMatchesPairSet cross-validates full-dictionary
// refinement.
func TestRefineByClassMatchesPairSet(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(20)
		k := 1 + r.Intn(6)
		m := randomMatrix(r, n, k, 4)
		part := NewPartition(n)
		pairs := newPairSet(n)
		for j := 0; j < k; j++ {
			got := part.RefineByClass(m.Class[j])
			want := pairs.removeByClass(m.Class[j])
			if got != int64(want) {
				t.Fatalf("trial %d test %d: removed %d, want %d", trial, j, got, want)
			}
		}
		if got, want := part.Pairs(), int64(len(pairs)); got != want {
			t.Fatalf("trial %d: %d pairs, want %d", trial, got, want)
		}
	}
}

// TestDistPerClassMatchesBruteForce checks the dist(z) computation against
// direct pair counting (Procedure 1 step 3a).
func TestDistPerClassMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(25)
		m := randomMatrix(r, n, 3, 6)
		part := NewPartition(n)
		pairs := newPairSet(n)
		// Refine by a couple of tests first so the partition is nontrivial.
		for j := 0; j < 2; j++ {
			z := int32(r.Intn(m.NumClasses(j)))
			part.RefineByBaseline(m.Class[j], z)
			pairs.removeByBaseline(m.Class[j], z)
		}
		var sc distScratch
		dist := sc.perClass(part, m.Class[2], m.NumClasses(2))
		for z := int32(0); z < int32(m.NumClasses(2)); z++ {
			want := int64(0)
			for pair := range pairs {
				a, b := m.Class[2][pair[0]] == z, m.Class[2][pair[1]] == z
				if a != b {
					want++
				}
			}
			if dist[z] != want {
				t.Fatalf("trial %d: dist(%d) = %d, want %d", trial, z, dist[z], want)
			}
		}
		// The scalar reference and the packed popcount path must agree
		// with perClass on every value, bit for bit.
		refLab := cloneLabels(part)
		rdist := refPerClass(refLab, part.next, m.Class[2], m.NumClasses(2))
		pp := part.Clone()
		pp.enablePacked()
		pp.compactLabs()
		pcv := m.PackedClasses(2)
		cnt := make([]int32, pp.next)
		var split []int32
		for z := int32(0); z < int32(m.NumClasses(2)); z++ {
			if rdist[z] != dist[z] {
				t.Fatalf("trial %d: refPerClass(%d) = %d, perClass = %d", trial, z, rdist[z], dist[z])
			}
			var pd int64
			pd, split = pp.distPacked(pcv.Class(z), cnt, split)
			if pd != dist[z] {
				t.Fatalf("trial %d: distPacked(%d) = %d, perClass = %d", trial, z, pd, dist[z])
			}
		}
	}
}

// TestMeet checks the partition meet used by Procedure 2 against refining
// from scratch.
func TestMeet(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(25)
		k := 2 + r.Intn(6)
		m := randomMatrix(r, n, k, 4)
		cut := 1 + r.Intn(k-1)
		zs := make([]int32, k)
		for j := range zs {
			zs[j] = int32(r.Intn(m.NumClasses(j)))
		}
		a := NewPartition(n)
		for j := 0; j < cut; j++ {
			a.RefineByBaseline(m.Class[j], zs[j])
		}
		b := NewPartition(n)
		for j := cut; j < k; j++ {
			b.RefineByBaseline(m.Class[j], zs[j])
		}
		whole := NewPartition(n)
		for j := 0; j < k; j++ {
			whole.RefineByBaseline(m.Class[j], zs[j])
		}
		met := Meet(a, b)
		if met.Pairs() != whole.Pairs() {
			t.Fatalf("trial %d: meet has %d pairs, sequential has %d", trial, met.Pairs(), whole.Pairs())
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				sm := met.Label(i) != Isolated && met.Label(i) == met.Label(j)
				sw := whole.Label(i) != Isolated && whole.Label(i) == whole.Label(j)
				if sm != sw {
					t.Fatalf("trial %d: pair (%d,%d) meet=%v sequential=%v", trial, i, j, sm, sw)
				}
			}
		}
	}
}

// TestPartitionPairsQuick property-checks Pairs() = C(n,2) minus removals,
// i.e. the running removed count always reconciles with the remaining count.
func TestPartitionPairsQuick(t *testing.T) {
	f := func(classesRaw []uint8, baselineRaw uint8) bool {
		if len(classesRaw) < 2 {
			return true
		}
		if len(classesRaw) > 64 {
			classesRaw = classesRaw[:64]
		}
		n := len(classesRaw)
		class := make([]int32, n)
		for i, c := range classesRaw {
			class[i] = int32(c % 7)
		}
		z := int32(baselineRaw % 7)
		p := NewPartition(n)
		total := p.Pairs()
		removed := p.RefineByBaseline(class, z)
		return p.Pairs() == total-removed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
