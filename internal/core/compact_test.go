package core

import (
	"math/rand"
	"testing"
)

// TestCompactTestsPreservesResolution: the restricted dictionary must
// distinguish exactly the same pairs, for both pass/fail and
// same/different baselines.
func TestCompactTestsPreservesResolution(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for trial := 0; trial < 40; trial++ {
		m := randomMatrix(r, 2+r.Intn(30), 2+r.Intn(14), 4)
		baselines := make([]int32, m.K)
		if trial%2 == 0 { // same/different-style baselines
			for j := range baselines {
				baselines[j] = int32(r.Intn(m.NumClasses(j)))
			}
		}
		before := (&Dictionary{Kind: SameDiff, M: m, Baselines: baselines}).Indistinguished()
		keep := CompactTests(m, baselines)
		rm, rb := RestrictTests(m, baselines, keep)
		after := (&Dictionary{Kind: SameDiff, M: rm, Baselines: rb}).Indistinguished()
		if after != before {
			t.Fatalf("trial %d: compaction changed resolution %d -> %d", trial, before, after)
		}
		// Every dropped test must indeed be redundant: adding it back one
		// at a time must not split anything new.
		full := (&Dictionary{Kind: SameDiff, M: m, Baselines: baselines}).Partition()
		restricted := (&Dictionary{Kind: SameDiff, M: rm, Baselines: rb}).Partition()
		if full.Pairs() != restricted.Pairs() {
			t.Fatalf("trial %d: partitions disagree", trial)
		}
	}
}

// TestCompactTestsDropsRedundantColumns: a matrix with duplicated tests
// must lose the duplicates.
func TestCompactTestsDropsRedundantColumns(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	m := randomMatrix(r, 20, 4, 4)
	// Duplicate every test (same class rows appended).
	m.Class = append(m.Class, m.Class...)
	m.Vecs = append(m.Vecs, m.Vecs...)
	m.K *= 2
	baselines := make([]int32, m.K)
	for j := range baselines {
		baselines[j] = int32(r.Intn(m.NumClasses(j)))
		baselines[j+4] = baselines[j]
		if j == 3 {
			break
		}
	}
	keep := CompactTests(m, baselines)
	kept := 0
	for _, k := range keep {
		if k {
			kept++
		}
	}
	if kept > 4 {
		t.Fatalf("kept %d of 8 tests; duplicates not dropped", kept)
	}
}

// TestCompactTestsIdempotent: compacting an already-compacted dictionary
// keeps everything.
func TestCompactTestsIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	m := randomMatrix(r, 25, 10, 4)
	baselines := make([]int32, m.K)
	for j := range baselines {
		baselines[j] = int32(r.Intn(m.NumClasses(j)))
	}
	keep := CompactTests(m, baselines)
	rm, rb := RestrictTests(m, baselines, keep)
	keep2 := CompactTests(rm, rb)
	for j, k := range keep2 {
		if !k {
			t.Fatalf("second compaction dropped test %d", j)
		}
	}
}
