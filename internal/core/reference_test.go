package core

import (
	"context"
	"math/rand"
	"testing"

	"sddict/internal/resp"
)

// procedure1Reference is a literal transcription of the paper's
// Procedure 1 using an explicit pair set P, used to cross-validate the
// partition-based production implementation: identical test order, LOWER
// constant and tie-breaking must yield identical baselines.
func procedure1Reference(m *resp.Matrix, order []int, lower int) ([]int32, int64) {
	type pair [2]int
	p := make(map[pair]bool)
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			p[pair{i, j}] = true
		}
	}
	baselines := make([]int32, m.K)
	for _, j := range order {
		if len(p) == 0 {
			break
		}
		// Step 3: for every z in Z_j compute dist(z), with the LOWER
		// cutoff.
		nc := m.NumClasses(j)
		best := int64(-1)
		bestZ := int32(0)
		consec := 0
		for z := int32(0); z < int32(nc); z++ {
			var dist int64
			for pr := range p {
				a := m.Class[j][pr[0]] == z
				b := m.Class[j][pr[1]] == z
				if a != b {
					dist++
				}
			}
			if dist > best {
				best, bestZ = dist, z
				consec = 0
			} else if dist < best {
				consec++
				if lower > 0 && consec >= lower {
					break
				}
			}
		}
		// Step 4: select and remove distinguished pairs.
		baselines[j] = bestZ
		for pr := range p {
			a := m.Class[j][pr[0]] == bestZ
			b := m.Class[j][pr[1]] == bestZ
			if a != b {
				delete(p, pr)
			}
		}
	}
	return baselines, int64(len(p))
}

// TestProcedure1MatchesReference cross-validates the production
// Procedure 1 against the literal pair-set transcription on random
// matrices, orders and LOWER values.
func TestProcedure1MatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		m := randomMatrix(r, 2+r.Intn(25), 1+r.Intn(8), 5)
		order := r.Perm(m.K)
		lower := r.Intn(4) // 0 = exhaustive, small cutoffs stress the rule
		var evals, cutoffs int64
		gotBase, gotPairs, done := procedure1(context.Background(), m, order, lower, &evals, &cutoffs)
		if !done {
			t.Fatalf("trial %d: uninterrupted Procedure 1 reported interruption", trial)
		}
		wantBase, wantPairs := procedure1Reference(m, order, lower)
		if gotPairs != wantPairs {
			t.Fatalf("trial %d: %d pairs left, reference %d", trial, gotPairs, wantPairs)
		}
		for j := range gotBase {
			if gotBase[j] != wantBase[j] {
				t.Fatalf("trial %d: baseline for t%d = %d, reference %d",
					trial, j, gotBase[j], wantBase[j])
			}
		}
	}
}
