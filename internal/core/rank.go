package core

import (
	"sort"

	"sddict/internal/logic"
)

// Ranked is one nearest-match diagnosis candidate over compiled
// signature rows: the fault's row index and its Hamming distance to the
// observed signature (0 = exact match).
type Ranked struct {
	Fault    int
	Distance int
}

// rankedLess is the ranking order: distance ascending, fault index
// ascending within equal distance. Fault indices are distinct, so it is
// a strict total order — the order internal/diagnose, cmd/diagnose and
// the /diagnose endpoint all share, which is what makes their outputs
// byte-comparable.
func rankedLess(a, b Ranked) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.Fault < b.Fault
}

// RankRows returns the topK rows closest to sig by Hamming distance,
// distance ascending, fault index ascending within equal distance.
// topK <= 0 (or >= the row count) ranks everything. A bounded topK runs
// in O(n log topK) via heap selection instead of a full sort —
// diagnosis wants a handful of candidates out of thousands of faults.
func RankRows(rows []logic.BitVec, sig logic.BitVec, topK int) []Ranked {
	if topK <= 0 || topK >= len(rows) {
		out := make([]Ranked, len(rows))
		for i, row := range rows {
			out[i] = Ranked{Fault: i, Distance: row.Hamming(sig)}
		}
		sort.Slice(out, func(a, b int) bool { return rankedLess(out[a], out[b]) })
		return out
	}
	// Max-heap of the best topK seen so far, rooted at the worst kept
	// candidate: a new candidate either beats the root and replaces it,
	// or is discarded.
	h := make([]Ranked, 0, topK)
	for i, row := range rows {
		c := Ranked{Fault: i, Distance: row.Hamming(sig)}
		if len(h) < topK {
			h = append(h, c)
			rankedSiftUp(h, len(h)-1)
		} else if rankedLess(c, h[0]) {
			h[0] = c
			rankedSiftDown(h, 0)
		}
	}
	sort.Slice(h, func(a, b int) bool { return rankedLess(h[a], h[b]) })
	return h
}

// Rank returns the topK faults whose compiled signature rows are
// closest to sig — the nearest-match fallback a deployed diagnosis uses
// when no row matches exactly (a defect outside the modeled universe).
func (c *Compiled) Rank(sig logic.BitVec, topK int) []Ranked {
	return RankRows(c.Rows, sig, topK)
}

// rankedSiftUp restores the max-heap property after appending at i.
func rankedSiftUp(h []Ranked, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !rankedLess(h[p], h[i]) {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

// rankedSiftDown restores the max-heap property after replacing the root.
func rankedSiftDown(h []Ranked, i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && rankedLess(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && rankedLess(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}
