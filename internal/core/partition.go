// Package core implements the paper's contribution: the same/different
// fault dictionary and its baseline-selection procedures, together with the
// pass/fail and full dictionaries it is compared against.
//
// The paper maintains an explicit set P of not-yet-distinguished fault
// pairs. This implementation represents P implicitly as a partition of the
// fault set into groups of currently-indistinguished faults: two faults
// form a pair in P exactly when they share a group. Splitting groups is
// pair removal; Σ |G|·(|G|-1)/2 over groups is |P|. The two views are
// equivalent (validated against a brute-force pair set in the tests), and
// the partition refines in O(live faults) per test.
package core

// Partition tracks groups of faults that are mutually indistinguished so
// far. Faults distinguished from every other fault are "isolated" and
// carry label -1; all other faults carry a group label in [0, NumLabels).
//
// Beyond the label array (the representation of record, whose numbering is
// part of the deterministic contract), a Partition maintains incremental
// group state so the hot-path queries are cheap (DESIGN.md §14):
//
//   - size/labs/groups: per-label group sizes and the ascending list of
//     group labels, so refinement visits only live groups;
//   - live/pairs: running totals making Done() and Pairs() O(1);
//   - members/spanLo/spanHi: the faults of each live group stored
//     contiguously, so per-group scans touch only live faults instead of
//     the whole label array;
//   - packed (optional, procedure 1 only): per-group fault bitmaps for
//     popcount-based dist scans, see partition_packed.go.
//
// All of it is derived state: the label array plus the split rules below
// fully determine every field, so the observable behaviour (labels, pair
// counts, dist values) is bit-identical to the pre-refactor scalar
// implementation kept in partition_ref.go.
type Partition struct {
	lab  []int32
	next int32

	size   []int32 // per label; 0 once a label dies (groups never have size 1)
	labs   []int32 // ascending label list; may contain dead entries
	dead   int     // dead entries currently in labs
	groups int     // live (size ≥ 2) groups
	live   int     // faults not yet isolated
	pairs  int64   // Σ s·(s−1)/2 over live groups

	members []int32 // faults in group-contiguous order
	pos     []int32 // pos[f] = index of fault f in members (live faults only)
	spanLo  []int32 // per label: members[spanLo[l]:spanHi[l]] is group l
	spanHi  []int32

	// labCap bounds every label id this partition can ever allocate: a
	// group of size s yields at most s−1 descendant labels, so
	// next + live − groups at rebuild time covers all future splits.
	// Scan scratch sized to labCap never reallocates mid-restart.
	labCap int

	scratch []int32 // rebuild fill-pointer buffer

	packed     *packedGroups // popcount engine; nil unless enablePacked was called
	packedIdle int           // consecutive scans that did not pick the packed path
}

// Isolated is the label of faults that are already distinguished from all
// other faults.
const Isolated = int32(-1)

// NewPartition returns the initial partition: all n faults in one group
// (every pair is a target, as in Procedure 1 step 1).
func NewPartition(n int) *Partition {
	p := &Partition{lab: make([]int32, n)}
	if n < 2 {
		for i := range p.lab {
			p.lab[i] = Isolated
		}
		p.next = 0
		p.rebuild()
		return p
	}
	p.next = 1
	p.rebuild()
	return p
}

// NewPartitionFromLabels builds a partition from an explicit label array;
// used to combine prefix and suffix partitions. Labels are normalized so
// singleton groups become isolated.
func NewPartitionFromLabels(lab []int32) *Partition {
	p := &Partition{lab: append([]int32(nil), lab...)}
	p.normalize()
	p.rebuild()
	return p
}

// normalize renumbers labels densely (in ascending old-label order) and
// isolates singleton groups. The caller must rebuild() afterwards.
func (p *Partition) normalize() {
	var max int32 = -1
	for _, l := range p.lab {
		if l > max {
			max = l
		}
	}
	size := make([]int32, max+1)
	for _, l := range p.lab {
		if l >= 0 {
			size[l]++
		}
	}
	remap := make([]int32, max+1)
	var next int32
	for l := range size {
		if size[l] >= 2 {
			remap[l] = next
			next++
		} else {
			remap[l] = Isolated
		}
	}
	for i, l := range p.lab {
		if l >= 0 {
			p.lab[i] = remap[l]
		}
	}
	p.next = next
}

// rebuild derives all maintained group state from lab/next. It requires a
// normalized label array: labels dense in [0, next), every group size ≥ 2.
// Any packed arena is dropped (its only user, procedure 1, never triggers a
// rebuild).
func (p *Partition) rebuild() {
	n := int(p.next)
	if cap(p.size) < n {
		p.size = make([]int32, n)
		p.spanLo = make([]int32, n)
		p.spanHi = make([]int32, n)
		p.labs = make([]int32, n)
	}
	p.size = p.size[:n]
	p.spanLo = p.spanLo[:n]
	p.spanHi = p.spanHi[:n]
	p.labs = p.labs[:n]
	for l := 0; l < n; l++ {
		p.size[l] = 0
		p.labs[l] = int32(l)
	}
	p.dead = 0
	p.groups = n
	p.live = 0
	p.pairs = 0
	for _, l := range p.lab {
		if l >= 0 {
			p.size[l]++
			p.live++
		}
	}
	off := int32(0)
	for l := 0; l < n; l++ {
		s := p.size[l]
		p.spanLo[l] = off
		off += s
		p.spanHi[l] = off
		p.pairs += int64(s) * int64(s-1) / 2
	}
	if cap(p.members) < p.live {
		p.members = make([]int32, p.live)
	}
	p.members = p.members[:p.live]
	if cap(p.pos) < len(p.lab) {
		p.pos = make([]int32, len(p.lab))
	}
	p.pos = p.pos[:len(p.lab)]
	if n > 0 {
		fill := append(p.scratch[:0], p.spanLo...)
		for i, l := range p.lab {
			if l >= 0 {
				p.members[fill[l]] = int32(i)
				p.pos[i] = fill[l]
				fill[l]++
			}
		}
		p.scratch = fill[:0]
	}
	p.labCap = int(p.next) + p.live - p.groups
	p.packed = nil
}

// compactLabs drops dead entries from the label list once they outnumber
// the live ones. Callers must not be mid-iteration over labs.
func (p *Partition) compactLabs() {
	if p.dead*2 <= len(p.labs) {
		return
	}
	w := 0
	for _, l := range p.labs {
		if p.size[l] >= 2 {
			p.labs[w] = l
			w++
		}
	}
	p.labs = p.labs[:w]
	p.dead = 0
}

// newLabel allocates a fresh group label of the given size. Span bounds are
// the caller's responsibility.
func (p *Partition) newLabel(sz int32) int32 {
	l := p.next
	p.next++
	p.size = append(p.size, sz)
	p.spanLo = append(p.spanLo, 0)
	p.spanHi = append(p.spanHi, 0)
	p.labs = append(p.labs, l)
	p.groups++
	if p.packed != nil {
		p.packed.addLabel()
	}
	return l
}

// killLabel retires a group label whose members were all isolated or moved.
func (p *Partition) killLabel(l int32) {
	p.size[l] = 0
	p.dead++
	p.groups--
	if p.packed != nil {
		p.packed.dropLabel(l)
	}
}

// splitByClass splits live group l into its c members with
// class[f] == baseline and its s−c others. Membership within a group is a
// set — the partition procedures never depend on member order inside a
// span — so the span is partitioned in place with an unstable two-pointer
// pass (matches move to the back) and only out-of-place members are
// written. finishSplit applies the paper's label rules. c must equal the
// matching-member count; callers skip c == 0 and c == s groups.
func (p *Partition) splitByClass(l, c int32, class []int32, baseline int32) int64 {
	lo, hi := p.spanLo[l], p.spanHi[l]
	i, j := lo, hi-1
	for i < j {
		for i < j && class[p.members[i]] != baseline {
			i++
		}
		for i < j && class[p.members[j]] == baseline {
			j--
		}
		if i < j {
			p.members[i], p.members[j] = p.members[j], p.members[i]
			p.pos[p.members[i]], p.pos[p.members[j]] = i, j
			i++
			j--
		}
	}
	return p.finishSplit(l, c)
}

// splitByBitmap is splitByClass with membership read from a class bitmap.
func (p *Partition) splitByBitmap(l, c int32, bm []uint64) int64 {
	lo, hi := p.spanLo[l], p.spanHi[l]
	i, j := lo, hi-1
	for i < j {
		for i < j && bm[p.members[i]>>6]&(1<<(uint(p.members[i])&63)) == 0 {
			i++
		}
		for i < j && bm[p.members[j]>>6]&(1<<(uint(p.members[j])&63)) != 0 {
			j--
		}
		if i < j {
			p.members[i], p.members[j] = p.members[j], p.members[i]
			p.pos[p.members[i]], p.pos[p.members[j]] = i, j
			i++
			j--
		}
	}
	return p.finishSplit(l, c)
}

// finishSplit applies the paper's label rules to a span already
// partitioned into [lo, hi−c) others and [hi−c, hi) matches: the other
// side keeps label l, the match side gets a fresh label, and either side
// of size 1 becomes isolated. It returns the c·(s−c) pairs removed,
// updating all maintained state (including the packed arena when
// present).
func (p *Partition) finishSplit(l, c int32) int64 {
	s := p.size[l]
	os := s - c
	removed := int64(c) * int64(os)
	p.pairs -= removed
	lo, hi := p.spanLo[l], p.spanHi[l]
	mid := hi - c

	// Match side first: the packed move must read the parent's word list
	// before the parent is possibly retired below.
	if c >= 2 {
		nl := p.newLabel(c)
		p.spanLo[nl] = mid
		p.spanHi[nl] = hi
		for k := mid; k < hi; k++ {
			p.lab[p.members[k]] = nl
		}
		if p.packed != nil {
			p.packed.move(l, nl, p.members[mid:hi])
		}
	} else {
		f := p.members[mid]
		p.lab[f] = Isolated
		p.live--
		if p.packed != nil {
			p.packed.clear(l, f)
		}
	}

	if os >= 2 {
		p.spanHi[l] = mid
		p.size[l] = os
	} else {
		f := p.members[lo]
		p.lab[f] = Isolated
		p.live--
		p.killLabel(l)
	}
	return removed
}

// Len returns the number of faults.
func (p *Partition) Len() int { return len(p.lab) }

// NumLabels returns the number of live (size ≥ 2) groups' label bound.
func (p *Partition) NumLabels() int32 { return p.next }

// Label returns the group label of fault i (Isolated if distinguished from
// every other fault).
func (p *Partition) Label(i int) int32 { return p.lab[i] }

// Done reports whether no indistinguished pairs remain. O(1): the live
// fault count is maintained during refinement.
func (p *Partition) Done() bool { return p.live == 0 }

// Clone returns an independent copy. The packed arena, if any, is not
// cloned: it exists only inside procedure 1, which never clones.
func (p *Partition) Clone() *Partition {
	return &Partition{
		lab:     append([]int32(nil), p.lab...),
		next:    p.next,
		size:    append([]int32(nil), p.size...),
		labs:    append([]int32(nil), p.labs...),
		dead:    p.dead,
		groups:  p.groups,
		live:    p.live,
		pairs:   p.pairs,
		members: append([]int32(nil), p.members...),
		pos:     append([]int32(nil), p.pos...),
		spanLo:  append([]int32(nil), p.spanLo...),
		spanHi:  append([]int32(nil), p.spanHi...),
		labCap:  p.labCap,
	}
}

// Pairs returns the number of indistinguished fault pairs |P|. O(1): the
// total is maintained during refinement.
func (p *Partition) Pairs() int64 { return p.pairs }

// RefineByBaseline splits every group by the predicate
// class[i] == baseline — exactly the pairs a same/different dictionary bit
// with that baseline distinguishes (Procedure 1 step 4). It returns the
// number of pairs removed from P.
func (p *Partition) RefineByBaseline(class []int32, baseline int32) int64 {
	if p.groups == 0 {
		return 0
	}
	p.compactLabs()
	var removed int64
	k0 := len(p.labs) // snapshot: labels born below must not be revisited
	for idx := 0; idx < k0; idx++ {
		l := p.labs[idx]
		if p.size[l] < 2 {
			continue
		}
		var c int32
		for _, f := range p.members[p.spanLo[l]:p.spanHi[l]] {
			if class[f] == baseline {
				c++
			}
		}
		if c == 0 || c == p.size[l] {
			continue
		}
		removed += p.splitByClass(l, c, class, baseline)
	}
	return removed
}

// RefineByClass splits every group by the full class id — the refinement a
// full fault dictionary performs with test j (faults are indistinguished
// only if their entire output vectors match). Returns pairs removed.
//
// New labels are bucketed per group with a counting-sort over class ids
// (reset via a touched list, no map), then renumbered by first occurrence
// in fault order — the exact numbering the previous map-based remap plus
// normalize produced.
func (p *Partition) RefineByClass(class []int32) int64 {
	before := p.pairs
	n := len(p.lab)
	prelim := make([]int32, n)
	for i := range prelim {
		prelim[i] = -1
	}
	var maxc int32 = -1
	for _, l := range p.labs {
		if p.size[l] < 2 {
			continue
		}
		for _, f := range p.members[p.spanLo[l]:p.spanHi[l]] {
			if class[f] > maxc {
				maxc = class[f]
			}
		}
	}
	slot := make([]int32, maxc+1)
	for i := range slot {
		slot[i] = -1
	}
	var touched, tsz []int32
	var ntmp int32
	for _, l := range p.labs {
		if p.size[l] < 2 {
			continue
		}
		touched = touched[:0]
		for _, f := range p.members[p.spanLo[l]:p.spanHi[l]] {
			z := class[f]
			t := slot[z]
			if t < 0 {
				t = ntmp
				ntmp++
				tsz = append(tsz, 0)
				slot[z] = t
				touched = append(touched, z)
			}
			prelim[f] = t
			tsz[t]++
		}
		for _, z := range touched {
			slot[z] = -1
		}
	}
	p.relabel(prelim, tsz)
	return before - p.pairs
}

// relabel rewrites the label array from preliminary group ids: groups of
// size ≥ 2 get dense final labels in fault-order first occurrence,
// everything else becomes isolated. All maintained state is rebuilt.
func (p *Partition) relabel(prelim, tsz []int32) {
	p.relabelWith(prelim, tsz, make([]int32, len(tsz)))
}

// relabelWith is relabel with caller-provided remap scratch (len(tsz)).
func (p *Partition) relabelWith(prelim, tsz, remap []int32) {
	for i := range remap {
		remap[i] = -2 // unassigned
	}
	var next int32
	for f, t := range prelim {
		if t < 0 || tsz[t] < 2 {
			p.lab[f] = Isolated
			continue
		}
		if remap[t] == -2 {
			remap[t] = next
			next++
		}
		p.lab[f] = remap[t]
	}
	p.next = next
	p.rebuild()
}

// Meet intersects two partitions: faults share a group in the result only
// if they share a group in both inputs. Inputs must have equal length.
// Like RefineByClass, the map-based remap is replaced by per-group
// counting over b's labels with touched-list resets; the resulting label
// numbering (fault-order first occurrence among groups of size ≥ 2) is
// unchanged.
func Meet(a, b *Partition) *Partition {
	return meetInto(&Partition{}, a, b.lab, b.next, &meetScratch{})
}

// meetScratch holds the reusable buffers of meetInto, so a caller meeting
// in a loop (Procedure 2's rest partitions) allocates nothing per meet.
type meetScratch struct {
	prelim  []int32
	bslot   []int32
	touched []int32
	tsz     []int32
	remap   []int32
}

func growI32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// meetInto intersects a with the partition given as a label snapshot
// (blab, bnext — b.lab and b.next of a normalized partition), writing the
// result into out and reusing out's storage plus the scratch buffers. The
// label numbering is exactly Meet's.
func meetInto(out, a *Partition, blab []int32, bnext int32, ms *meetScratch) *Partition {
	n := len(a.lab)
	prelim := growI32(&ms.prelim, n)
	for i := range prelim {
		prelim[i] = -1
	}
	bslot := growI32(&ms.bslot, int(bnext))
	for i := range bslot {
		bslot[i] = -1
	}
	touched, tsz := ms.touched[:0], ms.tsz[:0]
	var ntmp int32
	for _, la := range a.labs {
		if a.size[la] < 2 {
			continue
		}
		touched = touched[:0]
		for _, f := range a.members[a.spanLo[la]:a.spanHi[la]] {
			lb := blab[f]
			if lb < 0 {
				continue
			}
			t := bslot[lb]
			if t < 0 {
				t = ntmp
				ntmp++
				tsz = append(tsz, 0)
				bslot[lb] = t
				touched = append(touched, lb)
			}
			prelim[f] = t
			tsz[t]++
		}
		for _, lb := range touched {
			bslot[lb] = -1
		}
	}
	ms.touched, ms.tsz = touched, tsz
	out.lab = growI32(&out.lab, n)
	out.relabelWith(prelim, tsz, growI32(&ms.remap, len(tsz)))
	return out
}

// GroupSizes returns the sizes of all live groups (size ≥ 2) in ascending
// label order, useful for diagnosability statistics.
func (p *Partition) GroupSizes() []int {
	out := make([]int, 0, p.groups)
	for l := int32(0); l < p.next; l++ {
		if p.size[l] >= 2 {
			out = append(out, int(p.size[l]))
		}
	}
	return out
}
