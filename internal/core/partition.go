// Package core implements the paper's contribution: the same/different
// fault dictionary and its baseline-selection procedures, together with the
// pass/fail and full dictionaries it is compared against.
//
// The paper maintains an explicit set P of not-yet-distinguished fault
// pairs. This implementation represents P implicitly as a partition of the
// fault set into groups of currently-indistinguished faults: two faults
// form a pair in P exactly when they share a group. Splitting groups is
// pair removal; Σ |G|·(|G|-1)/2 over groups is |P|. The two views are
// equivalent (validated against a brute-force pair set in the tests), and
// the partition refines in O(n) per test.
package core

// Partition tracks groups of faults that are mutually indistinguished so
// far. Faults distinguished from every other fault are "isolated" and
// carry label -1; all other faults carry a group label in [0, NumLabels).
type Partition struct {
	lab  []int32
	next int32
}

// Isolated is the label of faults that are already distinguished from all
// other faults.
const Isolated = int32(-1)

// NewPartition returns the initial partition: all n faults in one group
// (every pair is a target, as in Procedure 1 step 1).
func NewPartition(n int) *Partition {
	p := &Partition{lab: make([]int32, n), next: 1}
	if n < 2 {
		for i := range p.lab {
			p.lab[i] = Isolated
		}
		p.next = 0
	}
	return p
}

// NewPartitionFromLabels builds a partition from an explicit label array;
// used to combine prefix and suffix partitions. Labels are normalized so
// singleton groups become isolated.
func NewPartitionFromLabels(lab []int32) *Partition {
	p := &Partition{lab: append([]int32(nil), lab...)}
	p.normalize()
	return p
}

// normalize renumbers labels densely and isolates singleton groups.
func (p *Partition) normalize() {
	var max int32 = -1
	for _, l := range p.lab {
		if l > max {
			max = l
		}
	}
	size := make([]int32, max+1)
	for _, l := range p.lab {
		if l >= 0 {
			size[l]++
		}
	}
	remap := make([]int32, max+1)
	var next int32
	for l := range size {
		if size[l] >= 2 {
			remap[l] = next
			next++
		} else {
			remap[l] = Isolated
		}
	}
	for i, l := range p.lab {
		if l >= 0 {
			p.lab[i] = remap[l]
		}
	}
	p.next = next
}

// Len returns the number of faults.
func (p *Partition) Len() int { return len(p.lab) }

// NumLabels returns the number of live (size ≥ 2) groups' label bound.
func (p *Partition) NumLabels() int32 { return p.next }

// Label returns the group label of fault i (Isolated if distinguished from
// every other fault).
func (p *Partition) Label(i int) int32 { return p.lab[i] }

// Done reports whether no indistinguished pairs remain.
func (p *Partition) Done() bool {
	for _, l := range p.lab {
		if l != Isolated {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (p *Partition) Clone() *Partition {
	return &Partition{lab: append([]int32(nil), p.lab...), next: p.next}
}

// Pairs returns the number of indistinguished fault pairs |P|.
func (p *Partition) Pairs() int64 {
	size := make([]int64, p.next)
	for _, l := range p.lab {
		if l >= 0 {
			size[l]++
		}
	}
	var pairs int64
	for _, s := range size {
		pairs += s * (s - 1) / 2
	}
	return pairs
}

// RefineByBaseline splits every group by the predicate
// class[i] == baseline — exactly the pairs a same/different dictionary bit
// with that baseline distinguishes (Procedure 1 step 4). It returns the
// number of pairs removed from P.
func (p *Partition) RefineByBaseline(class []int32, baseline int32) int64 {
	if p.next == 0 {
		return 0
	}
	size := make([]int32, p.next)
	match := make([]int32, p.next)
	for i, l := range p.lab {
		if l < 0 {
			continue
		}
		size[l]++
		if class[i] == baseline {
			match[l]++
		}
	}
	var removed int64
	// For each group decide the new labels of its "match" and "other"
	// sides. A side of size 1 becomes isolated; an empty side means no
	// split. Fresh labels are allocated past the pre-refinement bound, so
	// the tables indexed below never see them.
	oldNext := p.next
	matchLab := make([]int32, oldNext)
	otherLab := make([]int32, oldNext)
	for l := int32(0); l < oldNext; l++ {
		ms, os := match[l], size[l]-match[l]
		removed += int64(ms) * int64(os)
		switch {
		case ms == 0:
			matchLab[l], otherLab[l] = Isolated, l // match side empty
		case os == 0:
			matchLab[l], otherLab[l] = l, Isolated // other side empty
		default:
			if ms == 1 {
				matchLab[l] = Isolated
			} else {
				matchLab[l] = p.next
				p.next++
			}
			if os == 1 {
				otherLab[l] = Isolated
			} else {
				otherLab[l] = l
			}
		}
	}
	for i, l := range p.lab {
		if l < 0 {
			continue
		}
		if class[i] == baseline {
			p.lab[i] = matchLab[l]
		} else {
			p.lab[i] = otherLab[l]
		}
	}
	return removed
}

// RefineByClass splits every group by the full class id — the refinement a
// full fault dictionary performs with test j (faults are indistinguished
// only if their entire output vectors match). Returns pairs removed.
func (p *Partition) RefineByClass(class []int32) int64 {
	if p.next == 0 {
		return 0
	}
	before := p.Pairs()
	// Assign new labels by (old label, class) pairs.
	type key struct {
		lab, class int32
	}
	remap := make(map[key]int32, p.next*2)
	var next int32
	for i, l := range p.lab {
		if l < 0 {
			continue
		}
		k := key{l, class[i]}
		nl, ok := remap[k]
		if !ok {
			nl = next
			next++
			remap[k] = nl
		}
		p.lab[i] = nl
	}
	p.next = next
	p.normalize()
	return before - p.Pairs()
}

// Meet intersects two partitions: faults share a group in the result only
// if they share a group in both inputs. Inputs must have equal length.
func Meet(a, b *Partition) *Partition {
	n := len(a.lab)
	lab := make([]int32, n)
	type key struct{ la, lb int32 }
	remap := make(map[key]int32, n)
	var next int32
	for i := 0; i < n; i++ {
		if a.lab[i] < 0 || b.lab[i] < 0 {
			lab[i] = Isolated
			continue
		}
		k := key{a.lab[i], b.lab[i]}
		nl, ok := remap[k]
		if !ok {
			nl = next
			next++
			remap[k] = nl
		}
		lab[i] = nl
	}
	p := &Partition{lab: lab, next: next}
	p.normalize()
	return p
}

// GroupSizes returns the sizes of all live groups (size ≥ 2), useful for
// diagnosability statistics.
func (p *Partition) GroupSizes() []int {
	size := make([]int, p.next)
	for _, l := range p.lab {
		if l >= 0 {
			size[l]++
		}
	}
	out := size[:0]
	for _, s := range size {
		if s >= 2 {
			out = append(out, s)
		}
	}
	return out
}
