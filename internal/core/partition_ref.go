package core

// Reference implementations of the pre-packing scalar partition
// operations, kept as the executable specification of the engine in
// partition.go / partition_packed.go. They operate on a bare label array
// (the representation of record) with none of the maintained group state,
// exactly as the original code did. The property tests in
// partition_test.go assert that the maintained engine — with and without
// the packed arena — matches these on random partitions and class
// vectors: labels, removed-pair counts, and every dist value bit for bit.
// They are not used outside tests.

// refRefineByBaseline is the original RefineByBaseline: full label-array
// passes for sizes and match counts, then per-old-label new-label tables.
// It mutates lab in place and returns the pairs removed and the new label
// bound.
func refRefineByBaseline(lab []int32, next int32, class []int32, baseline int32) (int64, int32) {
	if next == 0 {
		return 0, next
	}
	size := make([]int32, next)
	match := make([]int32, next)
	for i, l := range lab {
		if l < 0 {
			continue
		}
		size[l]++
		if class[i] == baseline {
			match[l]++
		}
	}
	var removed int64
	// For each group decide the new labels of its "match" and "other"
	// sides. A side of size 1 becomes isolated; an empty side means no
	// split. Fresh labels are allocated past the pre-refinement bound, so
	// the tables indexed below never see them.
	oldNext := next
	matchLab := make([]int32, oldNext)
	otherLab := make([]int32, oldNext)
	for l := int32(0); l < oldNext; l++ {
		ms, os := match[l], size[l]-match[l]
		removed += int64(ms) * int64(os)
		switch {
		case ms == 0:
			matchLab[l], otherLab[l] = Isolated, l // match side empty
		case os == 0:
			matchLab[l], otherLab[l] = l, Isolated // other side empty
		default:
			if ms == 1 {
				matchLab[l] = Isolated
			} else {
				matchLab[l] = next
				next++
			}
			if os == 1 {
				otherLab[l] = Isolated
			} else {
				otherLab[l] = l
			}
		}
	}
	for i, l := range lab {
		if l < 0 {
			continue
		}
		if class[i] == baseline {
			lab[i] = matchLab[l]
		} else {
			lab[i] = otherLab[l]
		}
	}
	return removed, next
}

// refPerClass is the original distScratch.perClass: rebuild the group
// member lists from the label array, then one counting-sort pass per
// group. dist(z) accumulates c·(s−c) per group exactly as the maintained
// and packed paths do, so all three must agree on every value.
func refPerClass(lab []int32, next int32, class []int32, numClasses int) []int64 {
	dist := make([]int64, numClasses)
	n := int(next)
	if n == 0 {
		return dist
	}
	sizes := make([]int64, n)
	for _, l := range lab {
		if l >= 0 {
			sizes[l]++
		}
	}
	offs := make([]int32, n+1)
	for l := 0; l < n; l++ {
		offs[l+1] = offs[l] + int32(sizes[l])
	}
	members := make([]int32, offs[n])
	fill := append([]int32(nil), offs[:n]...)
	for i, l := range lab {
		if l >= 0 {
			members[fill[l]] = int32(i)
			fill[l]++
		}
	}
	cnt := make([]int64, numClasses)
	var touched []int32
	for l := 0; l < n; l++ {
		lo, hi := offs[l], offs[l+1]
		if hi-lo < 2 {
			continue
		}
		touched = touched[:0]
		for _, i := range members[lo:hi] {
			z := class[i]
			if cnt[z] == 0 {
				touched = append(touched, z)
			}
			cnt[z]++
		}
		s := int64(hi - lo)
		for _, z := range touched {
			dist[z] += cnt[z] * (s - cnt[z])
			cnt[z] = 0
		}
	}
	return dist
}

// refPairs is the original Pairs: a full label-array scan.
func refPairs(lab []int32, next int32) int64 {
	size := make([]int64, next)
	for _, l := range lab {
		if l >= 0 {
			size[l]++
		}
	}
	var pairs int64
	for _, s := range size {
		pairs += s * (s - 1) / 2
	}
	return pairs
}
