package core

import (
	"math/rand"
	"testing"

	"sddict/internal/logic"
	"sddict/internal/resp"
)

// Microbenchmarks for the per-test scan/refine hot path (DESIGN.md §14),
// comparing the scalar reference against the maintained engine paths —
// member scan, popcount scan over the bitmap arena, and the
// detected-index scan — on one deterministic fixture. `make bench` runs
// these alongside the BenchmarkParallel* family and archives them in
// BENCH_parallel.json; `make bench-compare` then gates the hot path with
// ns/op by ratio and the deterministic custom metrics (dist0, best,
// pairs) by exact match, so a path that drifts off the bit-identical
// contract fails the bench gate, not just the unit tests.

// benchFaults crosses many 64-bit word boundaries so the popcount path
// does real word work.
const benchFaults = 4096

// benchMatrix builds a deterministic response matrix with sparse
// detection (the dominant regime of a restart: each test detects a few
// percent of the faults), dense class ids, and class-count vectors, the
// same invariants the simulator guarantees.
func benchMatrix(r *rand.Rand, n, k, maxClasses int, density float64) *resp.Matrix {
	m := &resp.Matrix{N: n, K: k, M: 4}
	m.Class = make([][]int32, k)
	m.Vecs = make([][]logic.BitVec, k)
	for j := 0; j < k; j++ {
		nc := 2 + r.Intn(maxClasses-1)
		row := make([]int32, n)
		for i := range row {
			if r.Float64() < density {
				row[i] = 1 + int32(r.Intn(nc-1))
			}
		}
		// Class ids must be dense: remap to first-occurrence order with the
		// fault-free class 0 kept.
		remap := map[int32]int32{0: 0}
		var next int32 = 1
		for i, c := range row {
			if _, ok := remap[c]; !ok {
				remap[c] = next
				next++
			}
			row[i] = remap[c]
		}
		m.Class[j] = row
		m.Vecs[j] = make([]logic.BitVec, next)
		for c := int32(0); c < next; c++ {
			v := logic.NewBitVec(m.M)
			for b := 0; b < m.M; b++ {
				v.Set(b, uint64(c>>uint(b))&1)
			}
			m.Vecs[j][c] = v
		}
	}
	return m
}

// benchFixture builds the shared mid-restart scenario: a partition
// refined by the first few tests exactly the way Procedure 1 would
// (argmax-dist baseline per test), plus the probe test whose scan and
// refinement the benchmarks measure.
func benchFixture() (*resp.Matrix, *Partition, int) {
	r := rand.New(rand.NewSource(97))
	m := benchMatrix(r, benchFaults, 8, 48, 0.1)
	p := NewPartition(benchFaults)
	var sc distScratch
	var evals, cutoffs int64
	probe := m.K - 1
	for j := 0; j < probe; j++ {
		p.compactLabs()
		dist := sc.perClass(p, m.Class[j], m.NumClasses(j))
		p.RefineByBaseline(m.Class[j], selectWithLower(dist, 0, &evals, &cutoffs))
	}
	return m, p, probe
}

// BenchmarkDistPerClass measures the dist(z) computation — the inner
// loop of Procedure 1's candidate scan — per path. The scalar, member,
// and packed arms report dist(0) and the indexed arm the argmax baseline
// (its scan and selection are fused); both are pure functions of the
// fixture, so bench-compare pins them exactly.
func BenchmarkDistPerClass(b *testing.B) {
	m, base, j := benchFixture()
	class, numClasses := m.Class[j], m.NumClasses(j)
	pc := m.PackedClasses(j)

	b.Run("scalar", func(b *testing.B) {
		lab := cloneLabels(base)
		var d0 int64
		for i := 0; i < b.N; i++ {
			d0 = refPerClass(lab, base.next, class, numClasses)[0]
		}
		b.ReportMetric(float64(d0), "dist0")
	})

	b.Run("member", func(b *testing.B) {
		p := base.Clone()
		p.compactLabs()
		var sc distScratch
		var d0 int64
		for i := 0; i < b.N; i++ {
			d0 = sc.perClass(p, class, numClasses)[0]
		}
		b.ReportMetric(float64(d0), "dist0")
	})

	b.Run("packed", func(b *testing.B) {
		p := base.Clone()
		p.enablePacked()
		p.compactLabs()
		cnt := make([]int32, p.labCap)
		var split []int32
		var d0 int64
		for i := 0; i < b.N; i++ {
			for z := int32(0); z < int32(numClasses); z++ {
				var d int64
				d, split = p.distPacked(pc.Class(z), cnt, split)
				if z == 0 {
					d0 = d
				}
			}
		}
		b.ReportMetric(float64(d0), "dist0")
	})

	b.Run("indexed", func(b *testing.B) {
		p := base.Clone()
		p.compactLabs()
		var sc distScratch
		var evals, cutoffs int64
		var best int32
		for i := 0; i < b.N; i++ {
			best = sc.selectIndexed(p, pc, numClasses, 0, &evals, &cutoffs)
			// Restore the all-zero scratch invariant refineIndexed would
			// normally restore.
			for _, l := range sc.dtouch {
				sc.dcnt[l] = 0
			}
			sc.dtouch = sc.dtouch[:0]
		}
		b.ReportMetric(float64(best), "best")
	})
}

// BenchmarkRefine measures one full per-test step — candidate scan,
// baseline selection, refinement — per path, the unit of work
// scanAndRefine's cost model chooses between. Setup (cloning the fixture
// partition, building the packed arm's arena) happens off the clock.
// Every arm reports the surviving pair count, which must be identical
// across arms: the paths are bit-identical by contract.
func BenchmarkRefine(b *testing.B) {
	m, base, j := benchFixture()
	class, numClasses := m.Class[j], m.NumClasses(j)
	pc := m.PackedClasses(j)

	b.Run("scalar", func(b *testing.B) {
		lab0 := cloneLabels(base)
		lab := make([]int32, len(lab0))
		var pairs int64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(lab, lab0)
			b.StartTimer()
			var evals, cutoffs int64
			dist := refPerClass(lab, base.next, class, numClasses)
			best := selectWithLower(dist, 0, &evals, &cutoffs)
			_, next := refRefineByBaseline(lab, base.next, class, best)
			pairs = refPairs(lab, next)
		}
		b.ReportMetric(float64(pairs), "pairs")
	})

	b.Run("member", func(b *testing.B) {
		var pairs int64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := base.Clone()
			p.compactLabs()
			b.StartTimer()
			var sc distScratch
			var evals, cutoffs int64
			dist := sc.perClass(p, class, numClasses)
			p.RefineByBaseline(class, selectWithLower(dist, 0, &evals, &cutoffs))
			pairs = p.Pairs()
		}
		b.ReportMetric(float64(pairs), "pairs")
	})

	b.Run("indexed", func(b *testing.B) {
		var pairs int64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := base.Clone()
			p.compactLabs()
			b.StartTimer()
			var sc distScratch
			var evals, cutoffs int64
			best := sc.selectIndexed(p, pc, numClasses, 0, &evals, &cutoffs)
			sc.refineIndexed(p, pc, best)
			pairs = p.Pairs()
		}
		b.ReportMetric(float64(pairs), "pairs")
	})

	b.Run("packed", func(b *testing.B) {
		var pairs int64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := base.Clone()
			p.enablePacked()
			p.compactLabs()
			b.StartTimer()
			var sc distScratch
			var evals, cutoffs int64
			best, cnt, split := sc.selectPacked(p, pc, numClasses, 0, &evals, &cutoffs)
			p.refineByCounts(pc.Class(best), cnt, split)
			pairs = p.Pairs()
		}
		b.ReportMetric(float64(pairs), "pairs")
	})
}
