package core

import (
	"math/rand"
	"testing"
)

// Property tests pinning the maintained partition engine — member scan,
// detected-index scan, and packed popcount scan — to the scalar reference
// implementations in partition_ref.go. The contract under test is the one
// DESIGN.md §14 relies on: every path produces bit-identical labels,
// removed-pair counts, dist values, and LOWER counter movements, so the
// per-test path choice can never perturb an artifact.

// cloneLabels snapshots a partition as the bare label array the reference
// implementations operate on.
func cloneLabels(p *Partition) []int32 {
	lab := make([]int32, p.Len())
	for i := range lab {
		lab[i] = p.Label(i)
	}
	return lab
}

// TestEngineMatchesReference drives the full scanAndRefine engine (packed
// arena enabled, so the cost model exercises all three paths as the
// partition shatters) against the scalar reference on random matrices:
// the selected baselines, the labels after every refinement, the pair
// counts, and the LOWER eval/cutoff counters must all match exactly.
func TestEngineMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 120; trial++ {
		n := 2 + r.Intn(40)
		k := 3 + r.Intn(8)
		m := randomMatrix(r, n, k, 6)
		lower := r.Intn(3) // 0 disables the cutoff; 1–2 exercise it
		refLab := make([]int32, n)
		refNext := int32(1)
		engine := NewPartition(n)
		engine.enablePacked()
		var sc distScratch
		var evalsRef, cutRef, evalsEng, cutEng int64
		for j := 0; j < k; j++ {
			if engine.Done() {
				break
			}
			numClasses := m.NumClasses(j)
			distRef := refPerClass(refLab, refNext, m.Class[j], numClasses)
			want := selectWithLower(distRef, lower, &evalsRef, &cutRef)
			got := sc.scanAndRefine(engine, m, j, lower, &evalsEng, &cutEng)
			if got != want {
				t.Fatalf("trial %d test %d: engine chose baseline %d, reference %d", trial, j, got, want)
			}
			_, refNext = refRefineByBaseline(refLab, refNext, m.Class[j], want)
			for i := 0; i < n; i++ {
				if engine.Label(i) != refLab[i] {
					t.Fatalf("trial %d test %d fault %d: engine label %d, reference %d",
						trial, j, i, engine.Label(i), refLab[i])
				}
			}
			if got, want := engine.Pairs(), refPairs(refLab, refNext); got != want {
				t.Fatalf("trial %d test %d: engine has %d pairs, reference %d", trial, j, got, want)
			}
		}
		if evalsEng != evalsRef || cutEng != cutRef {
			t.Fatalf("trial %d: engine counters evals=%d cutoffs=%d, reference evals=%d cutoffs=%d",
				trial, evalsEng, cutEng, evalsRef, cutRef)
		}
	}
}

// TestScanPathsAgree forces each scan path in turn on the same starting
// partition — bypassing the cost model — and requires identical baseline
// choices, LOWER counters, labels, and pair counts from all three.
func TestScanPathsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 150; trial++ {
		n := 2 + r.Intn(40)
		k := 2 + r.Intn(6)
		m := randomMatrix(r, n, k, 6)
		lower := r.Intn(3)
		base := NewPartition(n)
		for j := 0; j < k-1; j++ {
			if r.Intn(2) == 1 {
				base.RefineByBaseline(m.Class[j], int32(r.Intn(m.NumClasses(j))))
			}
		}
		j := k - 1
		numClasses := m.NumClasses(j)
		pc := m.PackedClasses(j)

		pm := base.Clone()
		var scm distScratch
		var evalsM, cutM int64
		pm.compactLabs()
		distM := scm.perClass(pm, m.Class[j], numClasses)
		bestM := selectWithLower(distM, lower, &evalsM, &cutM)
		pm.RefineByBaseline(m.Class[j], bestM)

		pi := base.Clone()
		var sci distScratch
		var evalsI, cutI int64
		pi.compactLabs()
		bestI := sci.selectIndexed(pi, pc, numClasses, lower, &evalsI, &cutI)
		sci.refineIndexed(pi, pc, bestI)

		pp := base.Clone()
		pp.enablePacked()
		var scp distScratch
		var evalsP, cutP int64
		pp.compactLabs()
		bestP, cnt, split := scp.selectPacked(pp, pc, numClasses, lower, &evalsP, &cutP)
		pp.refineByCounts(pc.Class(bestP), cnt, split)

		if bestI != bestM || bestP != bestM {
			t.Fatalf("trial %d: member chose %d, indexed %d, packed %d", trial, bestM, bestI, bestP)
		}
		if evalsI != evalsM || evalsP != evalsM || cutI != cutM || cutP != cutM {
			t.Fatalf("trial %d: counter mismatch: member (%d,%d) indexed (%d,%d) packed (%d,%d)",
				trial, evalsM, cutM, evalsI, cutI, evalsP, cutP)
		}
		for i := 0; i < n; i++ {
			if pi.Label(i) != pm.Label(i) || pp.Label(i) != pm.Label(i) {
				t.Fatalf("trial %d fault %d: member label %d, indexed %d, packed %d",
					trial, i, pm.Label(i), pi.Label(i), pp.Label(i))
			}
		}
		if pi.Pairs() != pm.Pairs() || pp.Pairs() != pm.Pairs() {
			t.Fatalf("trial %d: pairs member %d, indexed %d, packed %d",
				trial, pm.Pairs(), pi.Pairs(), pp.Pairs())
		}
	}
}

// TestDistMeetMatchesMeet pins Procedure 2's direct meet-dist computation
// to the materialized route: perClass on Meet(a, b) and distMeet on
// (a, b's label snapshot) must produce identical values.
func TestDistMeetMatchesMeet(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(30)
		k := 2 + r.Intn(6)
		m := randomMatrix(r, n, k, 5)
		cut := 1 + r.Intn(k)
		a := NewPartition(n)
		for j := 0; j < cut; j++ {
			a.RefineByBaseline(m.Class[j], int32(r.Intn(m.NumClasses(j))))
		}
		b := NewPartition(n)
		for j := cut; j < k; j++ {
			b.RefineByBaseline(m.Class[j], int32(r.Intn(m.NumClasses(j))))
		}
		met := Meet(a, b)
		jd := r.Intn(k)
		var sc1, sc2 distScratch
		want := sc1.perClass(met, m.Class[jd], m.NumClasses(jd))
		got := sc2.distMeet(a, b.lab, b.next, m.Class[jd], m.NumClasses(jd))
		for z := range want {
			if got[z] != want[z] {
				t.Fatalf("trial %d: distMeet(%d) = %d, perClass(Meet) = %d", trial, z, got[z], want[z])
			}
		}
	}
}

// TestScratchReuseAcrossTests re-runs scanAndRefine with one shared
// scratch across many tests and partitions, checking that the
// all-zero-between-tests counter invariant holds (a stale counter would
// corrupt a later dist value and diverge from the reference).
func TestScratchReuseAcrossTests(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	var sc distScratch // shared across every trial on purpose
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(50)
		k := 2 + r.Intn(10)
		m := randomMatrix(r, n, k, 8)
		refLab := make([]int32, n)
		refNext := int32(1)
		engine := NewPartition(n)
		engine.enablePacked()
		var evalsRef, cutRef, evalsEng, cutEng int64
		for j := 0; j < k && !engine.Done(); j++ {
			numClasses := m.NumClasses(j)
			distRef := refPerClass(refLab, refNext, m.Class[j], numClasses)
			want := selectWithLower(distRef, 1, &evalsRef, &cutRef)
			got := sc.scanAndRefine(engine, m, j, 1, &evalsEng, &cutEng)
			if got != want {
				t.Fatalf("trial %d test %d: engine chose %d, reference %d", trial, j, got, want)
			}
			_, refNext = refRefineByBaseline(refLab, refNext, m.Class[j], want)
		}
		for i := 0; i < n; i++ {
			if engine.Label(i) != refLab[i] {
				t.Fatalf("trial %d fault %d: engine label %d, reference %d", trial, i, engine.Label(i), refLab[i])
			}
		}
	}
}

// FuzzPartitionRefine fuzzes raw class bytes through the maintained
// engine and the scalar reference in lockstep: removed-pair counts,
// labels, and pair totals must match after every refinement round.
func FuzzPartitionRefine(f *testing.F) {
	f.Add([]byte{1, 0, 2, 1}, uint8(1), uint8(2))
	f.Add([]byte{0, 0, 0, 0, 3, 3}, uint8(0), uint8(3))
	f.Add([]byte{5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5}, uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, classRaw []byte, baselineRaw, rounds uint8) {
		if len(classRaw) < 2 {
			return
		}
		if len(classRaw) > 128 {
			classRaw = classRaw[:128]
		}
		n := len(classRaw)
		p := NewPartition(n)
		refLab := make([]int32, n)
		refNext := int32(1)
		class := make([]int32, n)
		for round := 0; round < int(rounds%4)+1; round++ {
			// Derive a fresh class row per round from the fuzz bytes;
			// RefineByBaseline only compares class values, so the ids need
			// not be dense.
			for i, cb := range classRaw {
				class[i] = int32((int(cb) + round*7 + i*int(baselineRaw)) % 6)
			}
			z := int32((int(baselineRaw) + round) % 6)
			removed := p.RefineByBaseline(class, z)
			removedRef, next := refRefineByBaseline(refLab, refNext, class, z)
			refNext = next
			if removed != removedRef {
				t.Fatalf("round %d: engine removed %d pairs, reference %d", round, removed, removedRef)
			}
			for i := 0; i < n; i++ {
				if p.Label(i) != refLab[i] {
					t.Fatalf("round %d fault %d: engine label %d, reference %d", round, i, p.Label(i), refLab[i])
				}
			}
			if got, want := p.Pairs(), refPairs(refLab, refNext); got != want {
				t.Fatalf("round %d: engine has %d pairs, reference %d", round, got, want)
			}
		}
	})
}
