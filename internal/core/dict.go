package core

import (
	"fmt"

	"sddict/internal/logic"
	"sddict/internal/resp"
)

// Kind identifies a dictionary flavour.
type Kind uint8

// Dictionary kinds.
const (
	Full Kind = iota
	PassFail
	SameDiff
)

func (k Kind) String() string {
	switch k {
	case Full:
		return "full"
	case PassFail:
		return "pass/fail"
	case SameDiff:
		return "same/different"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Dictionary is a constructed fault dictionary over a response matrix. For
// Full dictionaries Baselines is nil; for PassFail it is all zeros (the
// fault-free class); for SameDiff it holds the selected baseline class per
// test.
type Dictionary struct {
	Kind Kind
	M    *resp.Matrix
	// Baselines[j] is the response class used as z_bl,j (0 = fault-free).
	Baselines []int32
	// ExtraBaselines optionally holds a second baseline per test for the
	// multi-baseline extension; nil in the standard one-baseline form.
	ExtraBaselines []int32
}

// Bit returns the dictionary bit b_{i,j} for fault i under test j. For a
// Full dictionary this is the pass/fail bit (the full dictionary stores
// whole vectors; Bit is provided for uniform diagnosis interfaces).
func (d *Dictionary) Bit(i, j int) uint8 {
	switch d.Kind {
	case Full, PassFail:
		if d.M.Class[j][i] != 0 {
			return 1
		}
		return 0
	case SameDiff:
		if d.M.Class[j][i] != d.Baselines[j] {
			return 1
		}
		return 0
	}
	panic("core: unknown dictionary kind")
}

// Row returns fault i's signature as a packed bit vector of K bits (K+ExtraK
// for the multi-baseline extension: the extra bits follow the base bits).
func (d *Dictionary) Row(i int) logic.BitVec {
	k := d.M.K
	total := k
	if d.ExtraBaselines != nil {
		total = 2 * k
	}
	row := logic.NewBitVec(total)
	for j := 0; j < k; j++ {
		row.Set(j, uint64(d.Bit(i, j)))
	}
	if d.ExtraBaselines != nil {
		for j := 0; j < k; j++ {
			if d.M.Class[j][i] != d.ExtraBaselines[j] {
				row.Set(k+j, 1)
			}
		}
	}
	return row
}

// SizeBits returns the dictionary's storage requirement in bits, following
// the paper's accounting (Section 2): the fault-free response is not
// charged to any dictionary; a same/different dictionary is charged k·m
// bits for its baselines, reduced to stored·m when some baselines equal the
// fault-free vector after storage minimization.
func (d *Dictionary) SizeBits() int64 {
	m := d.M
	switch d.Kind {
	case Full:
		return m.FullSizeBits()
	case PassFail:
		return m.PassFailSizeBits()
	case SameDiff:
		stored := int64(0)
		for _, b := range d.Baselines {
			if b != 0 {
				stored++
			}
		}
		size := int64(m.K)*int64(m.N) + stored*int64(m.M)
		if d.ExtraBaselines != nil {
			extra := int64(0)
			for _, b := range d.ExtraBaselines {
				if b != 0 {
					extra++
				}
			}
			size += int64(m.K)*int64(m.N) + extra*int64(m.M)
		}
		return size
	}
	panic("core: unknown dictionary kind")
}

// NominalSizeBits returns the paper's headline size expression, charging a
// stored baseline for every test regardless of minimization: k·n·m for
// full, k·n for pass/fail, k·(n+m) for same/different.
func (d *Dictionary) NominalSizeBits() int64 {
	m := d.M
	switch d.Kind {
	case Full:
		return m.FullSizeBits()
	case PassFail:
		return m.PassFailSizeBits()
	case SameDiff:
		size := m.SameDiffSizeBits()
		if d.ExtraBaselines != nil {
			size += m.SameDiffSizeBits() // second bit plane + second baselines
		}
		return size
	}
	panic("core: unknown dictionary kind")
}

// Partition returns the partition of faults into classes the dictionary
// cannot distinguish.
func (d *Dictionary) Partition() *Partition {
	p := NewPartition(d.M.N)
	for j := 0; j < d.M.K; j++ {
		if p.Done() {
			break
		}
		switch d.Kind {
		case Full:
			p.RefineByClass(d.M.Class[j])
		case PassFail:
			p.RefineByBaseline(d.M.Class[j], 0)
		case SameDiff:
			p.RefineByBaseline(d.M.Class[j], d.Baselines[j])
			if d.ExtraBaselines != nil {
				p.RefineByBaseline(d.M.Class[j], d.ExtraBaselines[j])
			}
		}
	}
	return p
}

// Indistinguished returns the number of fault pairs the dictionary leaves
// indistinguished — the paper's Table 6 quality metric.
func (d *Dictionary) Indistinguished() int64 { return d.Partition().Pairs() }

// NewFull returns the full dictionary over m.
func NewFull(m *resp.Matrix) *Dictionary { return &Dictionary{Kind: Full, M: m} }

// NewPassFail returns the pass/fail dictionary over m.
func NewPassFail(m *resp.Matrix) *Dictionary {
	return &Dictionary{Kind: PassFail, M: m, Baselines: make([]int32, m.K)}
}

// BaselineVector returns the output vector used as baseline for test j.
func (d *Dictionary) BaselineVector(j int) logic.BitVec {
	if d.Baselines == nil {
		return d.M.Vecs[j][0]
	}
	return d.M.Vecs[j][d.Baselines[j]]
}
