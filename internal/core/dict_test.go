package core

import (
	"math/rand"
	"testing"
)

// TestRowBitConsistency: Row must pack exactly the bits Bit reports, for
// all dictionary kinds including the two-baseline extension.
func TestRowBitConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	m := randomMatrix(r, 25, 9, 5)
	baselines := make([]int32, m.K)
	extra := make([]int32, m.K)
	for j := range baselines {
		baselines[j] = int32(r.Intn(m.NumClasses(j)))
		extra[j] = int32(r.Intn(m.NumClasses(j)))
	}
	dicts := []*Dictionary{
		NewFull(m),
		NewPassFail(m),
		{Kind: SameDiff, M: m, Baselines: baselines},
		{Kind: SameDiff, M: m, Baselines: baselines, ExtraBaselines: extra},
	}
	for di, d := range dicts {
		for i := 0; i < m.N; i++ {
			row := d.Row(i)
			for j := 0; j < m.K; j++ {
				if row.Get(j) != uint64(d.Bit(i, j)) {
					t.Fatalf("dict %d fault %d test %d: row bit %d != Bit %d",
						di, i, j, row.Get(j), d.Bit(i, j))
				}
			}
			if d.ExtraBaselines != nil {
				for j := 0; j < m.K; j++ {
					want := uint64(0)
					if m.Class[j][i] != extra[j] {
						want = 1
					}
					if row.Get(m.K+j) != want {
						t.Fatalf("dict %d fault %d extra bit %d mismatch", di, i, j)
					}
				}
			}
		}
	}
}

// TestPartitionAgreesWithRows: two faults share a partition group exactly
// when their signature rows are identical.
func TestPartitionAgreesWithRows(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		m := randomMatrix(r, 2+r.Intn(30), 1+r.Intn(8), 4)
		baselines := make([]int32, m.K)
		for j := range baselines {
			baselines[j] = int32(r.Intn(m.NumClasses(j)))
		}
		d := &Dictionary{Kind: SameDiff, M: m, Baselines: baselines}
		p := d.Partition()
		for i := 0; i < m.N; i++ {
			for j := i + 1; j < m.N; j++ {
				sameRow := d.Row(i).Equal(d.Row(j))
				sameGroup := p.Label(i) != Isolated && p.Label(i) == p.Label(j)
				if sameRow != sameGroup {
					t.Fatalf("trial %d faults %d,%d: sameRow=%v sameGroup=%v",
						trial, i, j, sameRow, sameGroup)
				}
			}
		}
	}
}

// TestFullPartitionAgreesWithResponses: under the full dictionary, faults
// share a group exactly when all their response classes match.
func TestFullPartitionAgreesWithResponses(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	m := randomMatrix(r, 40, 6, 4)
	p := NewFull(m).Partition()
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			same := true
			for k := 0; k < m.K; k++ {
				if m.Class[k][i] != m.Class[k][j] {
					same = false
					break
				}
			}
			grouped := p.Label(i) != Isolated && p.Label(i) == p.Label(j)
			if same != grouped {
				t.Fatalf("faults %d,%d: identical responses=%v grouped=%v", i, j, same, grouped)
			}
		}
	}
}

// TestSizeOrderingAlways: for any matrix with m outputs >= 1 and n > m the
// nominal sizes obey pf < sd < full.
func TestSizeOrderingAlways(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		m := randomMatrix(r, 10+r.Intn(50), 1+r.Intn(10), 4)
		full, pf := NewFull(m), NewPassFail(m)
		sd := &Dictionary{Kind: SameDiff, M: m, Baselines: make([]int32, m.K)}
		if m.M >= 2 && !(pf.SizeBits() < sd.NominalSizeBits() && sd.NominalSizeBits() < full.SizeBits()) {
			t.Fatalf("trial %d: ordering violated: %d %d %d",
				trial, pf.SizeBits(), sd.NominalSizeBits(), full.SizeBits())
		}
	}
}

// TestSameDiffSizeWithAllFaultFreeBaselines: when every baseline is the
// fault-free vector, minimized storage equals the pass/fail size.
func TestSameDiffSizeWithAllFaultFreeBaselines(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	m := randomMatrix(r, 30, 8, 5)
	sd := &Dictionary{Kind: SameDiff, M: m, Baselines: make([]int32, m.K)}
	if sd.SizeBits() != NewPassFail(m).SizeBits() {
		t.Fatalf("minimized s/d size %d != p/f size %d", sd.SizeBits(), NewPassFail(m).SizeBits())
	}
	if sd.NominalSizeBits() != m.SameDiffSizeBits() {
		t.Fatalf("nominal size wrong")
	}
}

func TestKindString(t *testing.T) {
	if Full.String() != "full" || PassFail.String() != "pass/fail" || SameDiff.String() != "same/different" {
		t.Error("Kind.String misbehaves")
	}
}
