package core

import (
	"context"
	"math/rand"
	"testing"
)

// TestSameDiffWithFaultFreeBaselinesIsPassFail checks the structural
// identity the whole construction rests on: a same/different dictionary
// whose baselines are all the fault-free vectors is exactly the pass/fail
// dictionary.
func TestSameDiffWithFaultFreeBaselinesIsPassFail(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		m := randomMatrix(r, 2+r.Intn(30), 1+r.Intn(10), 5)
		sd := &Dictionary{Kind: SameDiff, M: m, Baselines: make([]int32, m.K)}
		pf := NewPassFail(m)
		if sd.Indistinguished() != pf.Indistinguished() {
			t.Fatalf("trial %d: s/d(ff baselines) %d pairs, p/f %d pairs",
				trial, sd.Indistinguished(), pf.Indistinguished())
		}
		for i := 0; i < m.N; i++ {
			for j := 0; j < m.K; j++ {
				if sd.Bit(i, j) != pf.Bit(i, j) {
					t.Fatalf("trial %d: bit (%d,%d) differs", trial, i, j)
				}
			}
		}
	}
}

// TestResolutionOrdering checks, on random matrices, the paper's central
// ordering: the full dictionary is at least as strong as any
// same/different dictionary, which (with fault-free seeding) is at least as
// strong as pass/fail.
func TestResolutionOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		m := randomMatrix(r, 2+r.Intn(40), 1+r.Intn(12), 6)
		full := NewFull(m).Indistinguished()
		pf := NewPassFail(m).Indistinguished()
		opt := DefaultOptions
		opt.Seed = int64(trial)
		opt.Calls1 = 5
		opt.MaxRestarts = 20
		sd, st := BuildSameDiff(m, opt)
		got := sd.Indistinguished()
		if got != st.IndistFinal {
			t.Fatalf("trial %d: dictionary has %d pairs, stats claim %d", trial, got, st.IndistFinal)
		}
		if got < full {
			t.Fatalf("trial %d: s/d (%d) beats the full dictionary (%d) — impossible", trial, got, full)
		}
		if got > pf {
			t.Fatalf("trial %d: s/d (%d) worse than pass/fail (%d) despite SeedFaultFree", trial, got, pf)
		}
	}
}

// TestProcedure2NeverWorsens checks that Procedure 2 is monotone: starting
// from arbitrary baselines it never increases the indistinguished count.
func TestProcedure2NeverWorsens(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		m := randomMatrix(r, 2+r.Intn(30), 1+r.Intn(8), 5)
		baselines := make([]int32, m.K)
		for j := range baselines {
			baselines[j] = int32(r.Intn(m.NumClasses(j)))
		}
		before := (&Dictionary{Kind: SameDiff, M: m, Baselines: append([]int32(nil), baselines...)}).Indistinguished()
		after, sweeps, done := procedure2(context.Background(), m, baselines, nil)
		if !done {
			t.Fatalf("trial %d: uninterrupted Procedure 2 reported interruption", trial)
		}
		if after > before {
			t.Fatalf("trial %d: Procedure 2 worsened %d -> %d", trial, before, after)
		}
		if sweeps < 1 {
			t.Fatalf("trial %d: no sweeps recorded", trial)
		}
		// The returned count must match re-evaluating the dictionary.
		recount := (&Dictionary{Kind: SameDiff, M: m, Baselines: baselines}).Indistinguished()
		if recount != after {
			t.Fatalf("trial %d: procedure2 reported %d, dictionary has %d", trial, after, recount)
		}
	}
}

// TestMinimizeStoragePreservesResolution checks the baseline-storage
// minimization never loses distinguished pairs while never increasing the
// stored-baseline count.
func TestMinimizeStoragePreservesResolution(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 60; trial++ {
		m := randomMatrix(r, 2+r.Intn(30), 1+r.Intn(8), 5)
		baselines := make([]int32, m.K)
		for j := range baselines {
			baselines[j] = int32(r.Intn(m.NumClasses(j)))
		}
		before := (&Dictionary{Kind: SameDiff, M: m, Baselines: append([]int32(nil), baselines...)}).Indistinguished()
		nonFF := 0
		for _, b := range baselines {
			if b != 0 {
				nonFF++
			}
		}
		saved := minimizeStorage(m, baselines)
		after := (&Dictionary{Kind: SameDiff, M: m, Baselines: baselines}).Indistinguished()
		if after != before {
			t.Fatalf("trial %d: minimization changed resolution %d -> %d", trial, before, after)
		}
		left := 0
		for _, b := range baselines {
			if b != 0 {
				left++
			}
		}
		if left+saved != nonFF {
			t.Fatalf("trial %d: saved %d but %d -> %d stored", trial, saved, nonFF, left)
		}
	}
}

// TestMultiBaselineAtLeastAsStrong checks the two-baseline extension never
// resolves fewer pairs than the single-baseline dictionary built with the
// same options, and its partition agrees with its stats.
func TestMultiBaselineAtLeastAsStrong(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		m := randomMatrix(r, 2+r.Intn(30), 1+r.Intn(8), 6)
		opt := DefaultOptions
		opt.Seed = int64(trial)
		opt.Calls1 = 4
		opt.MaxRestarts = 10
		_, st1 := BuildSameDiff(m, opt)
		md, st2 := BuildSameDiffMulti(m, opt)
		if got := md.Indistinguished(); got != st2.IndistFinal {
			t.Fatalf("trial %d: multi dictionary has %d pairs, stats claim %d", trial, got, st2.IndistFinal)
		}
		// The greedy double refinement subsumes the single refinement per
		// test order, so over the same restart schedule it cannot lose to
		// the pure Procedure 1 result (before Procedure 2 and seeding).
		if st2.IndistProc1 > st1.IndistProc1 {
			t.Fatalf("trial %d: multi-baseline Procedure 1 %d worse than single %d",
				trial, st2.IndistProc1, st1.IndistProc1)
		}
	}
}

// TestSelectWithLowerCutoff checks the LOWER early-cutoff semantics: with
// lower=1 the scan stops at the first candidate scoring below the running
// best, possibly missing a later maximum.
func TestSelectWithLowerCutoff(t *testing.T) {
	dist := []int64{3, 2, 5, 9}
	var evals, cutoffs int64
	if got := selectWithLower(dist, 1, &evals, &cutoffs); got != 0 {
		t.Errorf("lower=1 selected %d, want 0 (cut before the peak)", got)
	}
	if evals != 2 {
		t.Errorf("lower=1 evaluated %d candidates, want 2", evals)
	}
	if cutoffs != 1 {
		t.Errorf("lower=1 recorded %d cutoffs, want 1", cutoffs)
	}
	evals = 0
	if got := selectWithLower(dist, 0, &evals, &cutoffs); got != 3 {
		t.Errorf("exhaustive selected %d, want 3", got)
	}
	if evals != 4 {
		t.Errorf("exhaustive evaluated %d, want 4", evals)
	}
	// Equal scores neither reset nor advance the cutoff counter.
	evals = 0
	if got := selectWithLower([]int64{5, 5, 5, 7}, 2, &evals, &cutoffs); got != 3 {
		t.Errorf("equal-score run selected %d, want 3", got)
	}
}

// TestProcedure2MultiNeverWorsens mirrors the single-baseline monotonicity
// check for the two-baseline extension.
func TestProcedure2MultiNeverWorsens(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	for trial := 0; trial < 40; trial++ {
		m := randomMatrix(r, 2+r.Intn(25), 1+r.Intn(8), 5)
		b1 := make([]int32, m.K)
		b2 := make([]int32, m.K)
		for j := range b1 {
			b1[j] = int32(r.Intn(m.NumClasses(j)))
			b2[j] = int32(r.Intn(m.NumClasses(j)))
		}
		before := (&Dictionary{Kind: SameDiff, M: m,
			Baselines:      append([]int32(nil), b1...),
			ExtraBaselines: append([]int32(nil), b2...)}).Indistinguished()
		after, _, _ := procedure2Multi(context.Background(), m, b1, b2)
		if after > before {
			t.Fatalf("trial %d: multi Procedure 2 worsened %d -> %d", trial, before, after)
		}
		recount := (&Dictionary{Kind: SameDiff, M: m, Baselines: b1, ExtraBaselines: b2}).Indistinguished()
		if recount != after {
			t.Fatalf("trial %d: reported %d, dictionary has %d", trial, after, recount)
		}
	}
}
