package core

import (
	"math/rand"
	"testing"
)

// TestFirstFailingTestPartition: faults sharing the first detecting test
// (or both never detected) must share a group; any difference separates.
func TestFirstFailingTestPartition(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		m := randomMatrix(r, 2+r.Intn(25), 1+r.Intn(8), 4)
		fft := FirstFailingTest(m)
		firstOf := func(i int) int {
			for j := 0; j < m.K; j++ {
				if m.Class[j][i] != 0 {
					return j
				}
			}
			return m.K
		}
		p := fft.Partition()
		for i := 0; i < m.N; i++ {
			for j := i + 1; j < m.N; j++ {
				same := p.Label(i) != Isolated && p.Label(i) == p.Label(j)
				want := firstOf(i) == firstOf(j)
				if same != want {
					t.Fatalf("trial %d: pair (%d,%d) grouped=%v, first-failing equal=%v",
						trial, i, j, same, want)
				}
			}
		}
	}
}

// TestDetectionCountPartition mirrors the check for detection counts.
func TestDetectionCountPartition(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	m := randomMatrix(r, 30, 6, 4)
	dc := DetectionCount(m)
	countOf := func(i int) int {
		n := 0
		for j := 0; j < m.K; j++ {
			if m.Class[j][i] != 0 {
				n++
			}
		}
		return n
	}
	p := dc.Partition()
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			same := p.Label(i) != Isolated && p.Label(i) == p.Label(j)
			if same != (countOf(i) == countOf(j)) {
				t.Fatalf("pair (%d,%d) grouping disagrees with counts", i, j)
			}
		}
	}
}

// TestAltDictResolutionHierarchy: compressed dictionaries can never beat
// the full dictionary, and combining pass/fail with the first-failing
// field is at least as strong as either part.
func TestAltDictResolutionHierarchy(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	for trial := 0; trial < 30; trial++ {
		m := randomMatrix(r, 2+r.Intn(40), 1+r.Intn(10), 5)
		full := NewFull(m).Indistinguished()
		pf := NewPassFail(m).Indistinguished()
		fft := FirstFailingTest(m)
		dc := DetectionCount(m)
		fo := FailingOutputs(m)
		combo := PassFailPlusFirst(m)
		for _, a := range []*AltDict{fft, dc, fo, combo} {
			if a.Indistinguished() < full {
				t.Fatalf("trial %d: %s (%d) beats the full dictionary (%d)",
					trial, a.Name, a.Indistinguished(), full)
			}
		}
		if combo.Indistinguished() > pf {
			t.Fatalf("trial %d: pass/fail+first (%d) worse than pass/fail (%d)",
				trial, combo.Indistinguished(), pf)
		}
		if combo.Indistinguished() > fft.Indistinguished() {
			t.Fatalf("trial %d: combination worse than one of its parts", trial)
		}
		// First-failing-test refines "detected at all" information, so it
		// can never be weaker than just detected/undetected split... that
		// is not a theorem against pass/fail, but sizes must be sane:
		if fft.SizeBits <= 0 || dc.SizeBits <= 0 || fo.SizeBits <= 0 {
			t.Fatalf("trial %d: nonpositive size", trial)
		}
	}
}

// TestAltDictSizes: the compressed dictionaries are far smaller than
// pass/fail on realistic shapes (many tests).
func TestAltDictSizes(t *testing.T) {
	r := rand.New(rand.NewSource(109))
	m := randomMatrix(r, 50, 12, 4)
	pf := m.PassFailSizeBits()
	if FirstFailingTest(m).SizeBits >= pf {
		t.Errorf("first-failing-test not smaller than pass/fail")
	}
	if DetectionCount(m).SizeBits >= pf {
		t.Errorf("detection-count not smaller than pass/fail")
	}
	if got := PassFailPlusFirst(m).SizeBits; got <= pf {
		t.Errorf("pass/fail+first size %d should exceed pass/fail %d", got, pf)
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int64{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 255: 8, 256: 9}
	for n, want := range cases {
		if got := bitsFor(n); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}
