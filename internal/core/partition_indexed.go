package core

import (
	"slices"

	"sddict/internal/resp"
)

// This file is the detected-fault-index side of the scan engine
// (DESIGN.md §14). The packed class bitmaps give every test a second
// derived view: the list of its detected faults grouped by response
// class. One walk of that list yields each group's detected-member count,
// from which class 0 — the bulk of each test's faults — scores by
// complement (c₀ = s − detected-in-group), while the nonzero classes are
// scored lazily from their own segments as the LOWER scan reaches them.
// That makes the dist scan O(detected + evals) per test, independent of
// how many faults are still live, which is the dominant regime of a
// restart: most tests detect a few percent of the faults while most
// faults still sit in live groups. All three scan paths (member scan,
// popcount scan, index scan) compute the exact per-group class counts, so
// dist is bit-identical and the path choice never perturbs the LOWER
// cutoff or any artifact.

// packedIdleDrop is the number of consecutive tests the popcount path
// must lose the cost race before the bitmap arena is dropped. Once the
// partition shatters into many small groups the popcount scan never wins
// again, and dropping the arena stops splits from paying its upkeep. The
// counter is a pure function of deterministic partition state, so the
// drop point is identical on every run and worker count.
const packedIdleDrop = 4

// scanAndRefine runs one step of Procedure 1 on test j: pick the baseline
// under the LOWER cutoff and refine the partition by it. Per test it
// takes whichever scan path the cost model says is cheapest for the
// current group structure — all paths produce bit-identical dist values,
// so cand_evals, the cutoff points, and the selected baselines match the
// reference member scan exactly.
func (sc *distScratch) scanAndRefine(p *Partition, m *resp.Matrix, j, lower int, evals, cutoffs *int64) int32 {
	numClasses := m.NumClasses(j)
	p.compactLabs()
	pc := m.PackedClasses(j)
	det := pc.DetectedList()

	// The member scan pays live work twice (perClass count plus the
	// refinement re-count) and zeroes a full dist array, so the index path
	// wins well past the point where the detected list outgrows the live
	// count. The choice is a pure function of deterministic state, and
	// both paths give bit-identical dist.
	indexed := len(det) < 8*p.live
	cost := p.live + numClasses
	if indexed {
		cost = len(det)/8 + numClasses
	}
	usePacked := false
	if p.packed != nil {
		// The popcount scan costs roughly (expected evals under the
		// cutoff) × (groups + nonzero words); it wins while the partition
		// is a few large groups.
		est := numClasses
		if lower > 0 && lower+1 < est {
			est = lower + 1
		}
		usePacked = est*(p.groups+p.packed.nnz) < cost
		if usePacked {
			p.packedIdle = 0
		} else {
			p.packedIdle++
			if p.packedIdle >= packedIdleDrop {
				p.packed = nil
			}
		}
	}
	switch {
	case usePacked:
		best, cnt, split := sc.selectPacked(p, pc, numClasses, lower, evals, cutoffs)
		p.refineByCounts(pc.Class(best), cnt, split)
		return best
	case indexed:
		best := sc.selectIndexed(p, pc, numClasses, lower, evals, cutoffs)
		sc.refineIndexed(p, pc, best)
		return best
	default:
		dist := sc.perClass(p, m.Class[j], numClasses)
		best := selectWithLower(dist, lower, evals, cutoffs)
		p.RefineByBaseline(m.Class[j], best)
		return best
	}
}

// ensureIndexBufs sizes the per-label counters to the partition's label
// bound. The bound is fixed per restart, so this allocates at most once
// per restart; both counters rely on the all-zero-between-tests invariant
// (fresh allocations are zeroed, every use resets what it touched).
func (sc *distScratch) ensureIndexBufs(p *Partition) {
	if cap(sc.zcnt) < p.labCap {
		sc.zcnt = make([]int32, p.labCap)
		sc.dcnt = make([]int32, p.labCap)
	}
	sc.zcnt = sc.zcnt[:cap(sc.zcnt)]
	sc.dcnt = sc.dcnt[:cap(sc.dcnt)]
}

// selectIndexed runs the LOWER scan from the detected-fault index. Phase
// 1 walks the index once, counting each group's detected members. Phase 2
// replays selectWithLower's exact state machine: class 0 scores from the
// complement counts, and each nonzero class scores from its own index
// segment only when the scan reaches it — classes past the cutoff are
// never grouped at all.
func (sc *distScratch) selectIndexed(p *Partition, pc resp.PackedClasses, numClasses, lower int, evals, cutoffs *int64) int32 {
	sc.ensureIndexBufs(p)
	lab, size := p.lab, p.size
	dcnt, dtouch := sc.dcnt, sc.dtouch[:0]
	// d0 is dist(0), accumulated incrementally: raising a group's detected
	// count from c to c+1 changes its term (s−c)·c to (s−c−1)·(c+1), a
	// delta of s−2c−1. The telescoped sum is exactly Σ (s−dl)·dl — integer
	// arithmetic, so bit-identical to the two-pass computation.
	var d0 int64
	for _, f := range pc.DetectedList() {
		l := lab[f]
		if l < 0 {
			continue
		}
		c := dcnt[l]
		if c == 0 {
			dtouch = append(dtouch, l)
		}
		dcnt[l] = c + 1
		d0 += int64(size[l]) - 2*int64(c) - 1
	}

	zcnt, ztouch := sc.zcnt, sc.ztouch[:0]
	best := int64(-1)
	bestIdx := int32(0)
	consec := 0
scan:
	for z := 0; z < numClasses; z++ {
		*evals++
		var d int64
		if z == 0 {
			d = d0
		} else {
			for _, f := range pc.ClassList(int32(z)) {
				l := lab[f]
				if l < 0 {
					continue
				}
				if zcnt[l] == 0 {
					ztouch = append(ztouch, l)
				}
				zcnt[l]++
			}
			for _, l := range ztouch {
				c, s := int64(zcnt[l]), int64(size[l])
				zcnt[l] = 0
				d += c * (s - c)
			}
			ztouch = ztouch[:0]
		}
		switch {
		case d > best:
			best, bestIdx = d, int32(z)
			consec = 0
		case d < best:
			consec++
			if lower > 0 && consec >= lower {
				*cutoffs++
				break scan
			}
		}
	}
	sc.ztouch, sc.dtouch = ztouch, dtouch
	return bestIdx
}

// refineIndexed refines by the baseline selectIndexed chose, touching
// only matching members instead of whole spans: each matching member is
// swapped (via the pos index) to its side of the span, then finishSplit
// applies the label rules per split group in ascending label order —
// reproducing the reference numbering. Groups the baseline does not split
// cost nothing beyond their count check. Finishes by resetting the
// phase-1 counters, restoring the scratch invariant.
func (sc *distScratch) refineIndexed(p *Partition, pc resp.PackedClasses, best int32) {
	lab := p.lab
	members, pos := p.members, p.pos
	dcnt, zcnt := sc.dcnt, sc.zcnt
	wl := sc.ztouch[:0]
	if best == 0 {
		// Class-0 members are the match side (fresh label, back of span);
		// the detected members — the only ones listed in the index — move
		// to the front instead. Build the split worklist from the touched
		// groups, stashing each group's match count in zcnt; groups the
		// baseline does not split reset here and are skipped below.
		spanTotal := 0
		for _, l := range sc.dtouch {
			d := dcnt[l]
			if d == p.size[l] {
				dcnt[l] = 0
				continue
			}
			zcnt[l] = p.size[l] - d
			spanTotal += int(p.size[l])
			wl = append(wl, l)
		}
		slices.Sort(wl)
		if spanTotal < len(pc.DetectedList()) {
			// Walking the split spans with bit probes into the class-0
			// bitmap is cheaper than re-walking the full detected list.
			// Both orderings produce the same member sets per side, and
			// member order within a span is free (DESIGN.md §14), so the
			// per-test choice affects cost only.
			bm := pc.Class(0)
			for _, l := range wl {
				c := zcnt[l]
				zcnt[l] = 0
				p.splitByBitmap(l, c, bm)
			}
			wl = wl[:0]
		} else {
			// Move pass: dcnt counts down so slot spanLo+dcnt−1 fills the
			// front of the span and the counter self-resets to zero.
			spanLo := p.spanLo
			for _, f := range pc.DetectedList() {
				l := lab[f]
				if l < 0 || dcnt[l] == 0 {
					continue
				}
				k := spanLo[l] + dcnt[l] - 1
				dcnt[l]--
				q := pos[f]
				of := members[k]
				members[k], members[q] = f, of
				pos[f], pos[of] = k, q
			}
			for _, l := range wl {
				c := zcnt[l]
				zcnt[l] = 0
				p.finishSplit(l, c)
			}
		}
	} else {
		seg := pc.ClassList(best)
		for _, f := range seg {
			l := lab[f]
			if l < 0 {
				continue
			}
			if zcnt[l] == 0 {
				wl = append(wl, l)
			}
			zcnt[l]++
		}
		// As above with the sides swapped: matches move to the back, with
		// their counts stashed in dcnt (overwriting the phase-1 counts,
		// which are no longer needed) and zcnt as the count-down cursor.
		spanTotal := 0
		w := 0
		for _, l := range wl {
			c := zcnt[l]
			if c == p.size[l] {
				zcnt[l] = 0
				continue
			}
			dcnt[l] = c
			spanTotal += int(p.size[l])
			wl[w] = l
			w++
		}
		wl = wl[:w]
		slices.Sort(wl)
		if spanTotal < len(seg) {
			bm := pc.Class(best)
			for _, l := range wl {
				c := dcnt[l]
				zcnt[l] = 0
				p.splitByBitmap(l, c, bm)
			}
			wl = wl[:0]
		} else {
			spanHi := p.spanHi
			for _, f := range seg {
				l := lab[f]
				if l < 0 || zcnt[l] == 0 {
					continue
				}
				k := spanHi[l] - zcnt[l]
				zcnt[l]--
				q := pos[f]
				of := members[k]
				members[k], members[q] = f, of
				pos[f], pos[of] = k, q
			}
			for _, l := range wl {
				p.finishSplit(l, dcnt[l])
			}
		}
	}
	sc.ztouch = wl[:0]
	for _, l := range sc.dtouch {
		dcnt[l] = 0
	}
	sc.dtouch = sc.dtouch[:0]
}
