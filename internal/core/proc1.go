package core

import (
	"context"

	"sddict/internal/resp"
)

// procedure1 is the paper's Procedure 1: greedy baseline selection over the
// given test order with the LOWER early cutoff. It returns the selected
// baselines (indexed by test, not by order position) and the number of
// indistinguished pairs left. done is false when the run was cut short by
// ctx; the partial baselines are still a valid selection (unprocessed tests
// keep the fault-free baseline), but the pair count then reflects only the
// refinements applied so far.
//
// The partition runs with the packed popcount engine enabled: per test the
// scan takes whichever of the bitmap-popcount, detected-index, and
// member-scan paths is cheapest for the current group structure. All
// produce bit-identical dist values, so the LOWER cutoff fires at the same
// points, cand_evals counts match exactly, and the selected baselines are
// unchanged (DESIGN.md §14).
func procedure1(ctx context.Context, m *resp.Matrix, order []int, lower int, evals, cutoffs *int64) ([]int32, int64, bool) {
	p := NewPartition(m.N)
	p.enablePacked()
	baselines := make([]int32, m.K) // unselected tests keep the fault-free baseline
	var scratch distScratch
	for _, j := range order {
		if p.Done() {
			break
		}
		if ctx.Err() != nil {
			return baselines, p.Pairs(), false
		}
		baselines[j] = scratch.scanAndRefine(p, m, j, lower, evals, cutoffs)
	}
	return baselines, p.Pairs(), true
}

// selectWithLower scans candidate classes in Z_j order (class id order) and
// applies the LOWER cutoff from Procedure 1 step 3: scanning stops after
// `lower` consecutive candidates scoring strictly below the best seen.
// lower <= 0 scans everything. Ties keep the earliest candidate. cutoffs
// counts scans the cutoff terminated early — a per-restart tally folded
// into the obs.LowerCutoffHits metric, never into the search itself.
// selectPacked implements the same state machine over lazily computed dist
// values; the two must stay in lockstep.
func selectWithLower(dist []int64, lower int, evals, cutoffs *int64) int32 {
	best := int64(-1)
	bestIdx := int32(0)
	consec := 0
	for z := 0; z < len(dist); z++ {
		*evals++
		switch d := dist[z]; {
		case d > best:
			best, bestIdx = d, int32(z)
			consec = 0
		case d < best:
			consec++
			if lower > 0 && consec >= lower {
				*cutoffs++
				return bestIdx
			}
		}
	}
	return bestIdx
}

// distScratch holds reusable buffers for the dist scans. Each concurrent
// restart owns its own instance — nothing here may be shared between
// pool tasks.
type distScratch struct {
	cnt     []int64
	dist    []int64
	touched []int32

	// Packed-scan double buffers (selectPacked).
	cntLab  []int32
	bestLab []int32
	splitA  []int32
	splitB  []int32

	// Index-scan buffers (selectIndexed/refineIndexed). zcnt and dcnt are
	// per-label counters kept all-zero between tests.
	zcnt   []int32
	dcnt   []int32
	ztouch []int32
	dtouch []int32

	// Meet-dist buffers (distMeet). bslot maps suffix labels to bucket
	// slots and is kept all −1 between calls.
	bslot  []int32
	bmem   []int32
	btouch []int32
	bsize  []int32
	bcur   []int32
}

// perClass computes, for every response class z of one test, the paper's
// dist(z): the number of indistinguished pairs that selecting z as the
// baseline would distinguish. A pair (i1,i2) of a group is distinguished
// when exactly one of the two faults has class z, so each group of size s
// with c members in class z contributes c·(s−c). The partition's
// maintained member spans make this O(live + numClasses) — isolated
// faults are never visited. The returned slice is scratch-backed and only
// valid until the next perClass call on the same scratch.
func (sc *distScratch) perClass(p *Partition, class []int32, numClasses int) []int64 {
	if cap(sc.dist) < numClasses {
		sc.dist = make([]int64, numClasses)
	}
	dist := sc.dist[:numClasses]
	for i := range dist {
		dist[i] = 0
	}
	if p.groups == 0 {
		return dist
	}
	if cap(sc.cnt) < numClasses {
		sc.cnt = make([]int64, numClasses)
	}
	cnt := sc.cnt[:numClasses]
	for _, l := range p.labs {
		s := int64(p.size[l])
		if s < 2 {
			continue
		}
		sc.touched = sc.touched[:0]
		for _, f := range p.members[p.spanLo[l]:p.spanHi[l]] {
			z := class[f]
			if cnt[z] == 0 {
				sc.touched = append(sc.touched, z)
			}
			cnt[z]++
		}
		for _, z := range sc.touched {
			dist[z] += cnt[z] * (s - cnt[z])
			cnt[z] = 0
		}
	}
	return dist
}
