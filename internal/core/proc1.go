package core

import (
	"context"

	"sddict/internal/resp"
)

// procedure1 is the paper's Procedure 1: greedy baseline selection over the
// given test order with the LOWER early cutoff. It returns the selected
// baselines (indexed by test, not by order position) and the number of
// indistinguished pairs left. done is false when the run was cut short by
// ctx; the partial baselines are still a valid selection (unprocessed tests
// keep the fault-free baseline), but the pair count then reflects only the
// refinements applied so far.
func procedure1(ctx context.Context, m *resp.Matrix, order []int, lower int, evals, cutoffs *int64) ([]int32, int64, bool) {
	p := NewPartition(m.N)
	baselines := make([]int32, m.K) // unselected tests keep the fault-free baseline
	var scratch distScratch
	for _, j := range order {
		if p.Done() {
			break
		}
		if ctx.Err() != nil {
			return baselines, p.Pairs(), false
		}
		dist := scratch.perClass(p, m.Class[j], m.NumClasses(j))
		best := selectWithLower(dist, lower, evals, cutoffs)
		baselines[j] = best
		p.RefineByBaseline(m.Class[j], best)
	}
	return baselines, p.Pairs(), true
}

// selectWithLower scans candidate classes in Z_j order (class id order) and
// applies the LOWER cutoff from Procedure 1 step 3: scanning stops after
// `lower` consecutive candidates scoring strictly below the best seen.
// lower <= 0 scans everything. Ties keep the earliest candidate. cutoffs
// counts scans the cutoff terminated early — a per-restart tally folded
// into the obs.LowerCutoffHits metric, never into the search itself.
func selectWithLower(dist []int64, lower int, evals, cutoffs *int64) int32 {
	best := int64(-1)
	bestIdx := int32(0)
	consec := 0
	for z := 0; z < len(dist); z++ {
		*evals++
		switch d := dist[z]; {
		case d > best:
			best, bestIdx = d, int32(z)
			consec = 0
		case d < best:
			consec++
			if lower > 0 && consec >= lower {
				*cutoffs++
				return bestIdx
			}
		}
	}
	return bestIdx
}

// distScratch holds reusable buffers for perClass. Each concurrent
// restart owns its own instance — nothing here may be shared between
// pool tasks.
type distScratch struct {
	cnt     []int64
	touched []int32
	sizes   []int64
	members []int32
	offs    []int32
}

// perClass computes, for every response class z of one test, the paper's
// dist(z): the number of indistinguished pairs that selecting z as the
// baseline would distinguish. A pair (i1,i2) of a group is distinguished
// when exactly one of the two faults has class z, so each group of size s
// with c members in class z contributes c·(s−c).
func (sc *distScratch) perClass(p *Partition, class []int32, numClasses int) []int64 {
	dist := make([]int64, numClasses)
	n := int(p.next)
	if n == 0 {
		return dist
	}
	if cap(sc.sizes) < n {
		sc.sizes = make([]int64, n)
		sc.offs = make([]int32, n+1)
	}
	sizes := sc.sizes[:n]
	for i := range sizes {
		sizes[i] = 0
	}
	for _, l := range p.lab {
		if l >= 0 {
			sizes[l]++
		}
	}
	offs := sc.offs[:n+1]
	offs[0] = 0
	for l := 0; l < n; l++ {
		offs[l+1] = offs[l] + int32(sizes[l])
	}
	total := int(offs[n])
	if cap(sc.members) < total {
		sc.members = make([]int32, total)
	}
	members := sc.members[:total]
	fill := append([]int32(nil), offs[:n]...)
	for i, l := range p.lab {
		if l >= 0 {
			members[fill[l]] = int32(i)
			fill[l]++
		}
	}
	if cap(sc.cnt) < numClasses {
		sc.cnt = make([]int64, numClasses)
	}
	cnt := sc.cnt[:numClasses]
	for l := 0; l < n; l++ {
		lo, hi := offs[l], offs[l+1]
		if hi-lo < 2 {
			continue
		}
		sc.touched = sc.touched[:0]
		for _, i := range members[lo:hi] {
			z := class[i]
			if cnt[z] == 0 {
				sc.touched = append(sc.touched, z)
			}
			cnt[z]++
		}
		s := int64(hi - lo)
		for _, z := range sc.touched {
			dist[z] += cnt[z] * (s - cnt[z])
			cnt[z] = 0
		}
	}
	return dist
}
