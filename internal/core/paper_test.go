package core

import (
	"testing"

	"sddict/internal/logic"
	"sddict/internal/resp"
)

// bv parses a 0/1 string into a bit vector (bit 0 = first output).
func bv(t *testing.T, s string) logic.BitVec {
	t.Helper()
	v := logic.NewBitVec(len(s))
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			v.Set(i, 1)
		default:
			t.Fatalf("bad bit string %q", s)
		}
	}
	return v
}

// paperMatrix reconstructs the worked example of the paper's Section 2:
// four faults f0..f3 under two tests t0, t1 in a two-output circuit
// (Table 1). The output vectors are recovered from the narrative and
// Tables 2-5:
//
//	         t0   t1
//	ff       00   11
//	f0       00   10
//	f1       10   11
//	f2       01   10
//	f3       01   01
func paperMatrix(t *testing.T) *resp.Matrix {
	t.Helper()
	ff := []logic.BitVec{bv(t, "00"), bv(t, "11")}
	responses := [][]logic.BitVec{
		{bv(t, "00"), bv(t, "10"), bv(t, "01"), bv(t, "01")}, // t0: f0..f3
		{bv(t, "10"), bv(t, "11"), bv(t, "10"), bv(t, "01")}, // t1: f0..f3
	}
	return resp.FromResponses(2, ff, responses)
}

// TestPaperTable1 checks the full dictionary of the worked example: it
// distinguishes every fault pair ("The full fault dictionary distinguishes
// between all the pairs of faults based on their output vectors").
func TestPaperTable1(t *testing.T) {
	m := paperMatrix(t)
	full := NewFull(m)
	if got := full.Indistinguished(); got != 0 {
		t.Fatalf("full dictionary leaves %d pairs indistinguished, want 0", got)
	}
	// Spot-check the narrative: f0,f1 distinguished by t0; f2,f3 by t1.
	if m.Class[0][0] == m.Class[0][1] {
		t.Errorf("t0 should distinguish f0 and f1 in the full dictionary")
	}
	if m.Class[1][2] == m.Class[1][3] {
		t.Errorf("t1 should distinguish f2 and f3 in the full dictionary")
	}
}

// TestPaperTable2 checks the pass/fail dictionary: it distinguishes all
// pairs except (f2, f3), and its bits match Table 2.
func TestPaperTable2(t *testing.T) {
	m := paperMatrix(t)
	pf := NewPassFail(m)
	if got := pf.Indistinguished(); got != 1 {
		t.Fatalf("pass/fail leaves %d pairs, want exactly 1 (f2,f3)", got)
	}
	p := pf.Partition()
	if p.Label(2) == Isolated || p.Label(2) != p.Label(3) {
		t.Errorf("the surviving indistinguished pair should be (f2,f3)")
	}
	// Table 2 bits: b_{i,j} = 1 iff z_{i,j} != z_{ff,j}.
	wantBits := [4][2]uint8{
		{0, 1}, // f0: passes t0, fails t1
		{1, 0}, // f1
		{1, 1}, // f2
		{1, 1}, // f3
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 2; j++ {
			if got := pf.Bit(i, j); got != wantBits[i][j] {
				t.Errorf("pass/fail bit f%d,t%d = %d, want %d", i, j, got, wantBits[i][j])
			}
		}
	}
}

// TestPaperTable3 checks the same/different dictionary with the paper's
// baselines z_bl,0 = 01 and z_bl,1 = 10: it reaches full resolution, and
// the bits match Table 3's narrative (f0/f1 and f2/f3 both distinguished
// by t1).
func TestPaperTable3(t *testing.T) {
	m := paperMatrix(t)
	// Find the class ids of the baseline vectors.
	b0 := classOf(t, m, 0, "01")
	b1 := classOf(t, m, 1, "10")
	sd := &Dictionary{Kind: SameDiff, M: m, Baselines: []int32{b0, b1}}
	if got := sd.Indistinguished(); got != 0 {
		t.Fatalf("same/different with paper baselines leaves %d pairs, want 0", got)
	}
	if sd.Bit(0, 1) == sd.Bit(1, 1) {
		t.Errorf("t1 should distinguish f0 and f1 (b_0,1 != b_1,1)")
	}
	if sd.Bit(2, 1) == sd.Bit(3, 1) {
		t.Errorf("t1 should distinguish f2 and f3 (b_2,1 != b_3,1)")
	}
}

func classOf(t *testing.T, m *resp.Matrix, j int, s string) int32 {
	t.Helper()
	want := bv(t, s)
	for c, v := range m.Vecs[j] {
		if v.Equal(want) {
			return int32(c)
		}
	}
	t.Fatalf("vector %q not in Z_%d", s, j)
	return -1
}

// TestPaperTable4 reproduces the selection of z_bl,0: candidates 00, 10, 01
// distinguish 3, 3 and 4 of the six initial fault pairs respectively, so 01
// is selected.
func TestPaperTable4(t *testing.T) {
	m := paperMatrix(t)
	p := NewPartition(m.N)
	var sc distScratch
	dist := sc.perClass(p, m.Class[0], m.NumClasses(0))
	want := map[string]int64{"00": 3, "10": 3, "01": 4}
	for s, w := range want {
		c := classOf(t, m, 0, s)
		if dist[c] != w {
			t.Errorf("dist(%s) = %d, want %d", s, dist[c], w)
		}
	}
	var evals, cutoffs int64
	best := selectWithLower(dist, 10, &evals, &cutoffs)
	if best != classOf(t, m, 0, "01") {
		t.Errorf("selected baseline %d, want class of 01", best)
	}
}

// TestPaperTable5 reproduces the selection of z_bl,1 after z_bl,0 = 01:
// candidates 11, 10, 01 distinguish 1, 2 and 1 of the remaining two pairs,
// so 10 is selected and all pairs are distinguished.
func TestPaperTable5(t *testing.T) {
	m := paperMatrix(t)
	p := NewPartition(m.N)
	p.RefineByBaseline(m.Class[0], classOf(t, m, 0, "01"))
	if got := p.Pairs(); got != 2 {
		t.Fatalf("after z_bl,0=01, %d pairs remain, want 2", got)
	}
	var sc distScratch
	dist := sc.perClass(p, m.Class[1], m.NumClasses(1))
	want := map[string]int64{"11": 1, "10": 2, "01": 1}
	for s, w := range want {
		c := classOf(t, m, 1, s)
		if dist[c] != w {
			t.Errorf("dist(%s) = %d, want %d", s, dist[c], w)
		}
	}
	var evals, cutoffs int64
	best := selectWithLower(dist, 10, &evals, &cutoffs)
	if best != classOf(t, m, 1, "10") {
		t.Errorf("selected baseline %d, want class of 10", best)
	}
	p.RefineByBaseline(m.Class[1], best)
	if got := p.Pairs(); got != 0 {
		t.Errorf("after z_bl,1=10, %d pairs remain, want 0", got)
	}
}

// TestPaperProcedure1EndToEnd runs the full Procedure 1 driver on the
// worked example: it must find baselines reaching full resolution, beating
// the pass/fail dictionary, with sizes ordered per Section 2.
func TestPaperProcedure1EndToEnd(t *testing.T) {
	m := paperMatrix(t)
	opt := DefaultOptions
	opt.Seed = 1
	sd, st := BuildSameDiff(m, opt)
	if st.IndistFinal != 0 {
		t.Fatalf("Procedure 1+2 left %d pairs, want 0", st.IndistFinal)
	}
	if got := sd.Indistinguished(); got != 0 {
		t.Fatalf("returned dictionary disagrees with stats: %d pairs", got)
	}
	full, pf := NewFull(m), NewPassFail(m)
	if !(pf.SizeBits() < sd.NominalSizeBits() && sd.NominalSizeBits() < full.SizeBits()) {
		t.Errorf("size ordering violated: pf=%d sd=%d full=%d",
			pf.SizeBits(), sd.NominalSizeBits(), full.SizeBits())
	}
	// Section 2 size accounting: k=2, n=4, m=2.
	if full.SizeBits() != 16 || pf.SizeBits() != 8 || sd.NominalSizeBits() != 12 {
		t.Errorf("sizes = full %d, pf %d, sd %d; want 16, 8, 12",
			full.SizeBits(), pf.SizeBits(), sd.NominalSizeBits())
	}
}
