package core

import (
	"context"
	"math/rand"

	"sddict/internal/obs"
	"sddict/internal/par"
	"sddict/internal/resp"
)

// The restart schedule.
//
// Every Procedure 1 restart is a pure function of (matrix, order seed):
// restart 0 uses the natural test order, restart i > 0 shuffles with a
// generator seeded by OrderSeed(Options.Seed, i), a SplitMix64 substream
// of the root seed. Because no RNG state is shared between restarts, any
// subset of restarts can run concurrently (or be replayed after a
// resume) and still produce exactly the bits the one-worker loop would.
// The restart *driver* then folds results in restart-index order, so the
// winner — best (indistinguished count, restart index) — is independent
// of worker count and goroutine scheduling (DESIGN.md §9).

// OrderSeed returns the seed of restart i's test-order shuffle, a pure
// function of the root seed and the restart index. Restart 0 runs the
// natural order; its schedule entry exists only so checkpoints can
// record a uniform per-restart seed list.
func OrderSeed(seed int64, i int) int64 { return par.Seed(seed, i) }

// OrderSeedSchedule returns the order seeds of restarts [0, n), the
// schedule a checkpoint records so a resume can verify it is replaying
// the same restart sequence (see Checkpoint.OrderSeeds).
func OrderSeedSchedule(seed int64, n int) []int64 {
	if n <= 0 {
		return nil
	}
	s := make([]int64, n)
	for i := range s {
		s[i] = OrderSeed(seed, i)
	}
	return s
}

// restartOrder materializes the test order of restart i over k tests.
func restartOrder(seed int64, i, k int) []int {
	order := make([]int, k)
	for j := range order {
		order[j] = j
	}
	if i > 0 {
		r := rand.New(rand.NewSource(OrderSeed(seed, i)))
		r.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
	}
	return order
}

// restartResult is the outcome of one Procedure 1 restart.
type restartResult struct {
	base    []int32
	indist  int64
	evals   int64
	cutoffs int64 // LOWER early-terminations, tallied for obs only
	// done is false when ctx cut the run short; base then holds the
	// partial (still valid) selection and indist the pairs refined so far.
	done bool
}

// runRestart executes restart i of the schedule: a pure function of
// (m, seed, i, lower) with its own distScratch (inside procedure1), so
// concurrent restarts share no state. The restart_start trace event is
// the one observation emitted from a worker rather than a fold point: it
// records real (speculative) execution order, so its position in the
// trace may vary across worker counts even though every metric and every
// other event is fold-ordered.
func runRestart(ctx context.Context, m *resp.Matrix, seed int64, i, lower int, ob *obs.Observer) restartResult {
	if ob.Tracing() {
		ob.Emit("restart_start", map[string]any{"restart": i, "order_seed": OrderSeed(seed, i)})
	}
	var res restartResult
	order := restartOrder(seed, i, m.K)
	res.base, res.indist, res.done = procedure1(ctx, m, order, lower, &res.evals, &res.cutoffs)
	return res
}

// restartState is the sequential fold over restart results — exactly the
// accounting the pre-parallel one-worker loop performed, factored out so
// the speculative driver applies it in restart-index order.
type restartState struct {
	bestBase   []int32
	bestIndist int64
	restarts   int // completed restarts folded so far
	noImprove  int // consecutive non-improving restarts (CALLS_1 counter)
	evals      int64
}

// fold merges the completed restart i into the state.
func (s *restartState) fold(i int, res restartResult) {
	s.evals += res.evals
	if i == 0 {
		s.bestBase, s.bestIndist = res.base, res.indist
		s.restarts = 1
		return
	}
	s.restarts++
	if res.indist < s.bestIndist {
		s.bestBase, s.bestIndist = res.base, res.indist
		s.noImprove = 0
	} else {
		s.noImprove++
	}
}

// wantMore reports whether the sequential loop would run another restart
// from this state: the CALLS_1 patience is not exhausted, the restart cap
// not reached, and the full-dictionary floor not yet attained.
func (s *restartState) wantMore(opt Options, maxRestarts int, indistFull int64) bool {
	return s.noImprove < opt.Calls1 && s.restarts < maxRestarts && s.bestIndist > indistFull
}

// runRestartsCtx drives the Procedure 1 restart phase: restarts are
// fanned out across the pool speculatively, folded in index order, and
// stopped exactly where the one-worker loop would stop, so bestBase,
// bestIndist and all counters are byte-identical at every worker count.
// On cancellation the fold keeps the completed in-order prefix (the only
// state checkpoints ever record) plus the first incomplete restart's
// partial baselines for salvage.
func runRestartsCtx(ctx context.Context, m *resp.Matrix, opt Options, st *restartState, maxRestarts int, indistFull int64, emit func()) (partialBase []int32, interrupted bool) {
	start := st.restarts // next restart index to run
	if start > 0 && !st.wantMore(opt, maxRestarts, indistFull) {
		return nil, false // resumed past the stopping point — nothing to do
	}
	ob := opt.Obs
	pool := par.New(opt.Workers)
	par.Stream(ctx, pool, maxRestarts-start, func(ctx context.Context, si int) restartResult {
		return runRestart(ctx, m, opt.Seed, start+si, opt.Lower, ob)
	}, func(si int, res restartResult) bool {
		if !res.done {
			interrupted = true
			partialBase = res.base
			return false
		}
		improvedFrom := st.bestIndist
		st.fold(start+si, res)
		// Observation happens only here, at the ordered fold point, so
		// every metric value is itself a pure function of (m, opt) —
		// identical at any worker count (DESIGN.md §10).
		ob.M().Inc(obs.RestartsRun)
		ob.M().Add(obs.CandidateScans, res.evals)
		ob.M().Add(obs.LowerCutoffHits, res.cutoffs)
		ob.M().Set(obs.RestartsSinceImprove, int64(st.noImprove))
		ob.M().Set(obs.IndistPairs, st.bestIndist)
		ob.M().Observe(obs.RestartIndist, res.indist)
		if ob.Tracing() {
			ob.Emit("restart_end", map[string]any{
				"restart":  start + si,
				"indist":   res.indist,
				"best":     st.bestIndist,
				"improved": start+si == 0 || res.indist < improvedFrom,
			})
		}
		ob.Tick()
		if opt.CheckpointEvery > 0 && st.restarts%opt.CheckpointEvery == 0 {
			emit()
		}
		if !st.wantMore(opt, maxRestarts, indistFull) {
			return false
		}
		if ctx.Err() != nil {
			interrupted = true
			return false
		}
		return true
	})
	return partialBase, interrupted
}
