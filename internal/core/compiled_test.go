package core

import (
	"bytes"
	"math/rand"
	"testing"

	"sddict/internal/logic"
)

func buildCompiled(t *testing.T, r *rand.Rand, extra bool) (*Dictionary, *Compiled) {
	t.Helper()
	m := randomMatrix(r, 20+r.Intn(30), 3+r.Intn(10), 5)
	opts := DefaultOptions
	opts.Seed = r.Int63()
	opts.Calls1 = 3
	opts.MaxRestarts = 6
	var d *Dictionary
	if extra {
		d, _ = BuildSameDiffMulti(m, opts)
	} else {
		d, _ = BuildSameDiff(m, opts)
	}
	c, err := d.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return d, c
}

// TestCompileMatchesDictionary: the compiled form must reproduce the
// dictionary's rows, baseline vectors and (minimized) size.
func TestCompileMatchesDictionary(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for trial := 0; trial < 20; trial++ {
		d, c := buildCompiled(t, r, trial%3 == 0)
		m := d.M
		if len(c.Rows) != m.N || c.NumTests != m.K || c.Outputs != m.M {
			t.Fatalf("trial %d: dims mismatch", trial)
		}
		for i := 0; i < m.N; i++ {
			if !c.Rows[i].Equal(d.Row(i)) {
				t.Fatalf("trial %d: row %d differs", trial, i)
			}
		}
		for j := 0; j < m.K; j++ {
			if !c.Baseline[j].Equal(d.BaselineVector(j)) {
				t.Fatalf("trial %d: baseline %d differs", trial, j)
			}
			if !c.FaultFree[j].Equal(m.Vecs[j][0]) {
				t.Fatalf("trial %d: fault-free %d differs", trial, j)
			}
		}
		if c.SizeBits() != d.SizeBits() {
			t.Fatalf("trial %d: compiled size %d, dictionary size %d",
				trial, c.SizeBits(), d.SizeBits())
		}
	}
}

// TestCompiledSignatureAndCandidates: diagnosing with the compiled form
// must reproduce the dictionary's groups — feeding fault i's own stored
// responses yields exactly the faults sharing its row.
func TestCompiledSignatureAndCandidates(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	d, c := buildCompiled(t, r, false)
	m := d.M
	for i := 0; i < m.N; i += 3 {
		// The observed responses of fault i are its stored output vectors.
		observed := make([]logic.BitVec, m.K)
		for j := 0; j < m.K; j++ {
			observed[j] = m.Vecs[j][m.Class[j][i]]
		}
		sig, err := c.Signature(observed)
		if err != nil {
			t.Fatal(err)
		}
		cands := c.Candidates(sig)
		found := false
		for _, ci := range cands {
			if ci == i {
				found = true
			}
			if !c.Rows[ci].Equal(c.Rows[i]) {
				t.Fatalf("candidate %d has a different row than %d", ci, i)
			}
		}
		if !found {
			t.Fatalf("fault %d not among its own candidates", i)
		}
	}
}

// TestCompiledRoundTrip: WriteTo/ReadCompiled must preserve everything.
func TestCompiledRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(87))
	for trial := 0; trial < 10; trial++ {
		_, c := buildCompiled(t, r, trial%2 == 1)
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadCompiled(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != c.Kind || got.NumTests != c.NumTests || got.Outputs != c.Outputs {
			t.Fatalf("trial %d: header fields differ", trial)
		}
		if len(got.Rows) != len(c.Rows) {
			t.Fatalf("trial %d: row count differs", trial)
		}
		for i := range c.Rows {
			if !got.Rows[i].Equal(c.Rows[i]) {
				t.Fatalf("trial %d: row %d differs after round trip", trial, i)
			}
		}
		for j := 0; j < c.NumTests; j++ {
			if !got.Baseline[j].Equal(c.Baseline[j]) || !got.FaultFree[j].Equal(c.FaultFree[j]) {
				t.Fatalf("trial %d: vectors differ after round trip", trial)
			}
		}
		if (got.ExtraBaseline == nil) != (c.ExtraBaseline == nil) {
			t.Fatalf("trial %d: extra-baseline presence differs", trial)
		}
		if got.SizeBits() != c.SizeBits() {
			t.Fatalf("trial %d: size differs after round trip", trial)
		}
	}
}

func TestReadCompiledRejectsGarbage(t *testing.T) {
	if _, err := ReadCompiled(bytes.NewReader([]byte("not a dictionary at all........."))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadCompiled(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestCompileRejectsFull(t *testing.T) {
	r := rand.New(rand.NewSource(89))
	m := randomMatrix(r, 10, 4, 3)
	if _, err := NewFull(m).Compile(); err == nil {
		t.Fatal("full dictionary compiled")
	}
}
