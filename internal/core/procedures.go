package core

import (
	"context"
	"math/rand"

	"sddict/internal/resp"
)

// Options controls same/different dictionary construction. The zero value
// is usable; DefaultOptions matches the paper's experimental setup.
type Options struct {
	// Lower is the paper's LOWER constant: candidate scanning for a test
	// stops after this many consecutive candidates scoring below the best
	// so far. 0 scans every candidate (exhaustive).
	Lower int
	// Calls1 is the paper's CALLS_1 constant: Procedure 1 is restarted with
	// random test orders until this many consecutive restarts bring no
	// improvement.
	Calls1 int
	// MaxRestarts caps the total number of Procedure 1 runs.
	MaxRestarts int
	// Seed drives the random test orders.
	Seed int64
	// RunProcedure2 applies Procedure 2 to the best Procedure 1 result.
	RunProcedure2 bool
	// SeedFaultFree additionally runs Procedure 2 from all-fault-free
	// baselines (the pass/fail dictionary) and keeps the better outcome.
	// This guarantees the result is never worse than pass/fail — including
	// when the build is interrupted.
	SeedFaultFree bool
	// MinimizeStorage replaces selected baselines by the fault-free vector
	// whenever that loses no resolution, shrinking baseline storage.
	MinimizeStorage bool

	// Resume continues an earlier run from a checkpoint taken with the same
	// seed over the same matrix; construction proceeds exactly as the
	// uninterrupted run would have.
	Resume *Checkpoint
	// CheckpointEvery invokes OnCheckpoint after every CheckpointEvery
	// completed Procedure 1 restarts (0 disables periodic checkpoints). A
	// final checkpoint is also emitted when the restart phase is
	// interrupted, so cancellation never loses completed work.
	CheckpointEvery int
	// OnCheckpoint receives construction snapshots; typically it saves them
	// with Checkpoint.Save. It is called synchronously from BuildSameDiff.
	OnCheckpoint func(Checkpoint)
}

// DefaultOptions reproduces the paper's setup (LOWER = 10, CALLS_1 = 100,
// Procedure 2 enabled) plus the non-regression seeding and storage
// minimization described in DESIGN.md.
var DefaultOptions = Options{
	Lower:           10,
	Calls1:          100,
	MaxRestarts:     2000,
	RunProcedure2:   true,
	SeedFaultFree:   true,
	MinimizeStorage: true,
}

// BuildStats reports how a same/different dictionary was obtained.
type BuildStats struct {
	Restarts         int   // Procedure 1 runs performed (cumulative across resumes)
	CandidateEvals   int64 // dist(z) evaluations across all runs
	IndistFull       int64 // full-dictionary floor
	IndistProc1      int64 // best over Procedure 1 restarts
	IndistProc2      int64 // after Procedure 2 on the Procedure 1 result
	IndistSeeded     int64 // Procedure 2 from fault-free baselines (-1 if not run)
	IndistFinal      int64 // of the returned dictionary
	Proc2Improved    bool
	Proc2Sweeps      int
	UsedSeeded       bool // the seeded run won
	StoredBaselines  int  // baselines differing from fault-free after minimization
	MinimizedSaved   int  // baselines reverted to fault-free by minimization
	ReachedFullFloor bool // dictionary distinguishes everything the full one does
	// Interrupted is set when the build stopped early on context
	// cancellation or deadline; the returned dictionary is the best found
	// so far (and, with SeedFaultFree, never worse than pass/fail).
	Interrupted bool
	// Resumed is set when the build continued from Options.Resume.
	Resumed bool
}

// BuildSameDiff selects baseline vectors for a same/different dictionary
// over m using Procedure 1 with random-order restarts followed by
// Procedure 2, per the paper, and returns the dictionary with construction
// statistics. It is BuildSameDiffCtx with a background context; it panics
// on invalid options or matrix (the context-aware form returns the error).
func BuildSameDiff(m *resp.Matrix, opt Options) (*Dictionary, BuildStats) {
	d, st, err := BuildSameDiffCtx(context.Background(), m, opt)
	if err != nil {
		panic("core: " + err.Error())
	}
	return d, st
}

// BuildSameDiffCtx is BuildSameDiff under a context: cancellation and
// deadline are honoured at restart, sweep and per-test granularity. An
// interrupted build is not an error — it returns the best valid dictionary
// found so far with BuildStats.Interrupted set (never worse than pass/fail
// when Options.SeedFaultFree is set). Errors are reserved for invalid
// options, an invalid matrix, or an incompatible resume checkpoint.
func BuildSameDiffCtx(ctx context.Context, m *resp.Matrix, opt Options) (*Dictionary, BuildStats, error) {
	var st BuildStats
	st.IndistSeeded = -1
	if err := opt.Validate(); err != nil {
		return nil, st, err
	}
	if err := ValidateMatrix(m); err != nil {
		return nil, st, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	r := rand.New(rand.NewSource(opt.Seed))
	st.IndistFull = NewFull(m).Indistinguished()

	maxRestarts := opt.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 1
	}

	// Procedure 1 with restarts. The first run uses the natural test order;
	// subsequent runs shuffle. The shuffle sequence is a pure function of
	// the seed, which is what makes checkpoints resumable: a resume replays
	// the shuffles of the completed restarts without re-running them.
	order := make([]int, m.K)
	for j := range order {
		order[j] = j
	}
	var bestBase []int32
	var bestIndist int64
	restarts, noImprove := 0, 0
	// partialBase holds the baselines of a restart cut short by
	// cancellation; they form a valid dictionary (unreached tests keep the
	// fault-free baseline) and may beat the completed best.
	var partialBase []int32

	if cp := opt.Resume; cp != nil {
		if err := cp.ValidateFor(m, opt); err != nil {
			return nil, st, err
		}
		bestBase = append([]int32(nil), cp.BestBaselines...)
		bestIndist = cp.BestIndist
		restarts = cp.Restarts
		noImprove = cp.NoImprove
		st.CandidateEvals = cp.CandidateEvals
		st.Resumed = true
		for i := 1; i < restarts; i++ {
			r.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		}
	}

	emit := func() {
		if opt.OnCheckpoint == nil {
			return
		}
		opt.OnCheckpoint(Checkpoint{
			Version:        checkpointVersion,
			Seed:           opt.Seed,
			MatrixN:        m.N,
			MatrixK:        m.K,
			Fingerprint:    MatrixFingerprint(m),
			Restarts:       restarts,
			NoImprove:      noImprove,
			BestBaselines:  append([]int32(nil), bestBase...),
			BestIndist:     bestIndist,
			CandidateEvals: st.CandidateEvals,
		})
	}

	if restarts == 0 {
		base, indist, done := procedure1(ctx, m, order, opt.Lower, &st.CandidateEvals)
		if !done {
			st.Interrupted = true
			partialBase = base
		} else {
			bestBase, bestIndist = base, indist
			restarts = 1
			if opt.CheckpointEvery > 0 && restarts%opt.CheckpointEvery == 0 {
				emit()
			}
		}
	}
	for !st.Interrupted && noImprove < opt.Calls1 && restarts < maxRestarts && bestIndist > st.IndistFull {
		if ctx.Err() != nil {
			st.Interrupted = true
			break
		}
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		base, indist, done := procedure1(ctx, m, order, opt.Lower, &st.CandidateEvals)
		if !done {
			st.Interrupted = true
			partialBase = base
			break
		}
		restarts++
		if indist < bestIndist {
			bestBase, bestIndist = base, indist
			noImprove = 0
		} else {
			noImprove++
		}
		if opt.CheckpointEvery > 0 && restarts%opt.CheckpointEvery == 0 {
			emit()
		}
	}
	st.Restarts = restarts
	if st.Interrupted && restarts > 0 {
		emit() // final snapshot of the completed work, so nothing is lost
	}
	if st.Interrupted {
		// Salvage: keep the best of the completed restarts, the interrupted
		// partial run, and (with SeedFaultFree) the plain pass/fail
		// baselines — the cheap tail of the SeedFaultFree guarantee.
		if bestBase == nil {
			bestBase, bestIndist = partialBase, sdIndist(m, partialBase)
		} else if partialBase != nil {
			if pi := sdIndist(m, partialBase); pi < bestIndist {
				bestBase, bestIndist = partialBase, pi
			}
		}
		if opt.SeedFaultFree {
			zeros := make([]int32, m.K)
			if zi := sdIndist(m, zeros); zi < bestIndist {
				bestBase, bestIndist = zeros, zi
				st.UsedSeeded = true
			}
		}
		st.IndistProc1 = bestIndist
		st.IndistProc2 = bestIndist
		st.IndistFinal = bestIndist
		st.ReachedFullFloor = bestIndist == st.IndistFull
		d := &Dictionary{Kind: SameDiff, M: m, Baselines: bestBase}
		for _, b := range bestBase {
			if b != 0 {
				st.StoredBaselines++
			}
		}
		return d, st, nil
	}
	st.IndistProc1 = bestIndist
	st.IndistProc2 = bestIndist

	// Procedure 2 on the Procedure 1 winner. Replacements are individually
	// monotone, so an interrupted sweep still leaves valid baselines no
	// worse than its input.
	if opt.RunProcedure2 && bestIndist > st.IndistFull {
		indist, sweeps, done := procedure2(ctx, m, bestBase)
		st.Proc2Sweeps = sweeps
		st.IndistProc2 = indist
		st.Proc2Improved = indist < st.IndistProc1
		bestIndist = indist
		st.Interrupted = st.Interrupted || !done
	}

	// Non-regression seeding: Procedure 2 from the pass/fail baselines.
	// Even when cut short, the seeded baselines are never worse than
	// pass/fail, so the guarantee survives interruption.
	if opt.SeedFaultFree {
		seeded := make([]int32, m.K)
		indist, _, done := procedure2(ctx, m, seeded)
		st.IndistSeeded = indist
		st.Interrupted = st.Interrupted || !done
		if indist < bestIndist {
			bestBase, bestIndist = seeded, indist
			st.UsedSeeded = true
		}
	}
	st.IndistFinal = bestIndist
	st.ReachedFullFloor = bestIndist == st.IndistFull

	d := &Dictionary{Kind: SameDiff, M: m, Baselines: bestBase}
	if opt.MinimizeStorage && ctx.Err() == nil {
		st.MinimizedSaved = minimizeStorage(m, bestBase)
	}
	for _, b := range bestBase {
		if b != 0 {
			st.StoredBaselines++
		}
	}
	return d, st, nil
}

// sdIndist returns the indistinguished-pair count of the same/different
// dictionary with the given baselines, by direct refinement.
func sdIndist(m *resp.Matrix, baselines []int32) int64 {
	p := NewPartition(m.N)
	for j := 0; j < m.K; j++ {
		if p.Done() {
			break
		}
		p.RefineByBaseline(m.Class[j], baselines[j])
	}
	return p.Pairs()
}

// procedure1 is the paper's Procedure 1: greedy baseline selection over the
// given test order with the LOWER early cutoff. It returns the selected
// baselines (indexed by test, not by order position) and the number of
// indistinguished pairs left. done is false when the run was cut short by
// ctx; the partial baselines are still a valid selection (unprocessed tests
// keep the fault-free baseline), but the pair count then reflects only the
// refinements applied so far.
func procedure1(ctx context.Context, m *resp.Matrix, order []int, lower int, evals *int64) ([]int32, int64, bool) {
	p := NewPartition(m.N)
	baselines := make([]int32, m.K) // unselected tests keep the fault-free baseline
	var scratch distScratch
	for _, j := range order {
		if p.Done() {
			break
		}
		if ctx.Err() != nil {
			return baselines, p.Pairs(), false
		}
		dist := scratch.perClass(p, m.Class[j], m.NumClasses(j))
		best := selectWithLower(dist, lower, evals)
		baselines[j] = best
		p.RefineByBaseline(m.Class[j], best)
	}
	return baselines, p.Pairs(), true
}

// selectWithLower scans candidate classes in Z_j order (class id order) and
// applies the LOWER cutoff from Procedure 1 step 3: scanning stops after
// `lower` consecutive candidates scoring strictly below the best seen.
// lower <= 0 scans everything. Ties keep the earliest candidate.
func selectWithLower(dist []int64, lower int, evals *int64) int32 {
	best := int64(-1)
	bestIdx := int32(0)
	consec := 0
	for z := 0; z < len(dist); z++ {
		*evals++
		switch d := dist[z]; {
		case d > best:
			best, bestIdx = d, int32(z)
			consec = 0
		case d < best:
			consec++
			if lower > 0 && consec >= lower {
				return bestIdx
			}
		}
	}
	return bestIdx
}

// distScratch holds reusable buffers for perClass.
type distScratch struct {
	cnt     []int64
	touched []int32
	sizes   []int64
	members []int32
	offs    []int32
}

// perClass computes, for every response class z of one test, the paper's
// dist(z): the number of indistinguished pairs that selecting z as the
// baseline would distinguish. A pair (i1,i2) of a group is distinguished
// when exactly one of the two faults has class z, so each group of size s
// with c members in class z contributes c·(s−c).
func (sc *distScratch) perClass(p *Partition, class []int32, numClasses int) []int64 {
	dist := make([]int64, numClasses)
	n := int(p.next)
	if n == 0 {
		return dist
	}
	if cap(sc.sizes) < n {
		sc.sizes = make([]int64, n)
		sc.offs = make([]int32, n+1)
	}
	sizes := sc.sizes[:n]
	for i := range sizes {
		sizes[i] = 0
	}
	for _, l := range p.lab {
		if l >= 0 {
			sizes[l]++
		}
	}
	offs := sc.offs[:n+1]
	offs[0] = 0
	for l := 0; l < n; l++ {
		offs[l+1] = offs[l] + int32(sizes[l])
	}
	total := int(offs[n])
	if cap(sc.members) < total {
		sc.members = make([]int32, total)
	}
	members := sc.members[:total]
	fill := append([]int32(nil), offs[:n]...)
	for i, l := range p.lab {
		if l >= 0 {
			members[fill[l]] = int32(i)
			fill[l]++
		}
	}
	if cap(sc.cnt) < numClasses {
		sc.cnt = make([]int64, numClasses)
	}
	cnt := sc.cnt[:numClasses]
	for l := 0; l < n; l++ {
		lo, hi := offs[l], offs[l+1]
		if hi-lo < 2 {
			continue
		}
		sc.touched = sc.touched[:0]
		for _, i := range members[lo:hi] {
			z := class[i]
			if cnt[z] == 0 {
				sc.touched = append(sc.touched, z)
			}
			cnt[z]++
		}
		s := int64(hi - lo)
		for _, z := range sc.touched {
			dist[z] += cnt[z] * (s - cnt[z])
			cnt[z] = 0
		}
	}
	return dist
}

// procedure2 is the paper's Procedure 2: sweep the tests in index order,
// replacing each baseline with the best alternative whenever that strictly
// increases the total number of distinguished pairs; repeat until a sweep
// makes no replacement. baselines is updated in place; the final
// indistinguished-pair count and the sweep count are returned. done is
// false when ctx cut the sweeps short — each replacement is individually
// monotone, so the in-place baselines remain valid and no worse than the
// input, and the returned count is recomputed for the partial result.
//
// Evaluating a replacement at test j needs the partition induced by all
// other tests; it is formed as the meet of an incrementally maintained
// prefix partition (tests < j, with any already-accepted replacements) and
// a precomputed suffix partition (tests > j, with the baselines current at
// the start of the sweep — unchanged until the sweep reaches them).
func procedure2(ctx context.Context, m *resp.Matrix, baselines []int32) (int64, int, bool) {
	var scratch distScratch
	sweeps := 0
	var finalIndist int64
	for {
		sweeps++
		improved := false

		suffix := make([]*Partition, m.K+1)
		suffix[m.K] = NewPartition(m.N)
		for j := m.K - 1; j >= 0; j-- {
			suffix[j] = suffix[j+1].Clone()
			suffix[j].RefineByBaseline(m.Class[j], baselines[j])
		}
		prefix := NewPartition(m.N)
		for j := 0; j < m.K; j++ {
			if ctx.Err() != nil {
				return sdIndist(m, baselines), sweeps, false
			}
			rest := Meet(prefix, suffix[j+1])
			dist := scratch.perClass(rest, m.Class[j], m.NumClasses(j))
			cur := baselines[j]
			best := cur
			for z := int32(0); z < int32(len(dist)); z++ {
				if dist[z] > dist[best] {
					best = z
				}
			}
			if best != cur {
				baselines[j] = best
				improved = true
			}
			prefix.RefineByBaseline(m.Class[j], baselines[j])
			suffix[j] = nil // free as we go
		}
		finalIndist = prefix.Pairs()
		if !improved {
			return finalIndist, sweeps, true
		}
		if ctx.Err() != nil {
			return finalIndist, sweeps, false
		}
	}
}

// minimizeStorage reverts baselines to the fault-free vector wherever that
// does not reduce the number of distinguished pairs, implementing the
// paper's remark that "the fault free output vector may be used for some of
// the test vectors" to shrink baseline storage. It returns the number of
// baselines reverted.
func minimizeStorage(m *resp.Matrix, baselines []int32) int {
	var scratch distScratch
	saved := 0
	suffix := make([]*Partition, m.K+1)
	suffix[m.K] = NewPartition(m.N)
	for j := m.K - 1; j >= 0; j-- {
		suffix[j] = suffix[j+1].Clone()
		suffix[j].RefineByBaseline(m.Class[j], baselines[j])
	}
	prefix := NewPartition(m.N)
	for j := 0; j < m.K; j++ {
		if baselines[j] != 0 {
			rest := Meet(prefix, suffix[j+1])
			dist := scratch.perClass(rest, m.Class[j], m.NumClasses(j))
			if dist[0] == dist[baselines[j]] {
				baselines[j] = 0
				saved++
			}
		}
		prefix.RefineByBaseline(m.Class[j], baselines[j])
		suffix[j] = nil
	}
	return saved
}
