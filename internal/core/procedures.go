package core

import (
	"math/rand"

	"sddict/internal/resp"
)

// Options controls same/different dictionary construction. The zero value
// is usable; DefaultOptions matches the paper's experimental setup.
type Options struct {
	// Lower is the paper's LOWER constant: candidate scanning for a test
	// stops after this many consecutive candidates scoring below the best
	// so far. 0 scans every candidate (exhaustive).
	Lower int
	// Calls1 is the paper's CALLS_1 constant: Procedure 1 is restarted with
	// random test orders until this many consecutive restarts bring no
	// improvement.
	Calls1 int
	// MaxRestarts caps the total number of Procedure 1 runs.
	MaxRestarts int
	// Seed drives the random test orders.
	Seed int64
	// RunProcedure2 applies Procedure 2 to the best Procedure 1 result.
	RunProcedure2 bool
	// SeedFaultFree additionally runs Procedure 2 from all-fault-free
	// baselines (the pass/fail dictionary) and keeps the better outcome.
	// This guarantees the result is never worse than pass/fail.
	SeedFaultFree bool
	// MinimizeStorage replaces selected baselines by the fault-free vector
	// whenever that loses no resolution, shrinking baseline storage.
	MinimizeStorage bool
}

// DefaultOptions reproduces the paper's setup (LOWER = 10, CALLS_1 = 100,
// Procedure 2 enabled) plus the non-regression seeding and storage
// minimization described in DESIGN.md.
var DefaultOptions = Options{
	Lower:           10,
	Calls1:          100,
	MaxRestarts:     2000,
	RunProcedure2:   true,
	SeedFaultFree:   true,
	MinimizeStorage: true,
}

// BuildStats reports how a same/different dictionary was obtained.
type BuildStats struct {
	Restarts         int   // Procedure 1 runs performed
	CandidateEvals   int64 // dist(z) evaluations across all runs
	IndistFull       int64 // full-dictionary floor
	IndistProc1      int64 // best over Procedure 1 restarts
	IndistProc2      int64 // after Procedure 2 on the Procedure 1 result
	IndistSeeded     int64 // Procedure 2 from fault-free baselines (-1 if not run)
	IndistFinal      int64 // of the returned dictionary
	Proc2Improved    bool
	Proc2Sweeps      int
	UsedSeeded       bool // the seeded run won
	StoredBaselines  int  // baselines differing from fault-free after minimization
	MinimizedSaved   int  // baselines reverted to fault-free by minimization
	ReachedFullFloor bool // dictionary distinguishes everything the full one does
}

// BuildSameDiff selects baseline vectors for a same/different dictionary
// over m using Procedure 1 with random-order restarts followed by
// Procedure 2, per the paper, and returns the dictionary with construction
// statistics.
func BuildSameDiff(m *resp.Matrix, opt Options) (*Dictionary, BuildStats) {
	var st BuildStats
	st.IndistSeeded = -1
	r := rand.New(rand.NewSource(opt.Seed))
	st.IndistFull = NewFull(m).Indistinguished()

	maxRestarts := opt.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 1
	}

	// Procedure 1 with restarts. The first run uses the natural test order;
	// subsequent runs shuffle.
	order := make([]int, m.K)
	for j := range order {
		order[j] = j
	}
	bestBase, bestIndist := procedure1(m, order, opt.Lower, &st.CandidateEvals)
	st.Restarts = 1
	noImprove := 0
	for noImprove < opt.Calls1 && st.Restarts < maxRestarts && bestIndist > st.IndistFull {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		base, indist := procedure1(m, order, opt.Lower, &st.CandidateEvals)
		st.Restarts++
		if indist < bestIndist {
			bestBase, bestIndist = base, indist
			noImprove = 0
		} else {
			noImprove++
		}
	}
	st.IndistProc1 = bestIndist
	st.IndistProc2 = bestIndist

	// Procedure 2 on the Procedure 1 winner.
	if opt.RunProcedure2 && bestIndist > st.IndistFull {
		indist, sweeps := procedure2(m, bestBase)
		st.Proc2Sweeps = sweeps
		st.IndistProc2 = indist
		st.Proc2Improved = indist < st.IndistProc1
		bestIndist = indist
	}

	// Non-regression seeding: Procedure 2 from the pass/fail baselines.
	if opt.SeedFaultFree {
		seeded := make([]int32, m.K)
		indist, _ := procedure2(m, seeded)
		st.IndistSeeded = indist
		if indist < bestIndist {
			bestBase, bestIndist = seeded, indist
			st.UsedSeeded = true
		}
	}
	st.IndistFinal = bestIndist
	st.ReachedFullFloor = bestIndist == st.IndistFull

	d := &Dictionary{Kind: SameDiff, M: m, Baselines: bestBase}
	if opt.MinimizeStorage {
		st.MinimizedSaved = minimizeStorage(m, bestBase)
	}
	for _, b := range bestBase {
		if b != 0 {
			st.StoredBaselines++
		}
	}
	return d, st
}

// procedure1 is the paper's Procedure 1: greedy baseline selection over the
// given test order with the LOWER early cutoff. It returns the selected
// baselines (indexed by test, not by order position) and the number of
// indistinguished pairs left.
func procedure1(m *resp.Matrix, order []int, lower int, evals *int64) ([]int32, int64) {
	p := NewPartition(m.N)
	baselines := make([]int32, m.K) // unselected tests keep the fault-free baseline
	var scratch distScratch
	for _, j := range order {
		if p.Done() {
			break
		}
		dist := scratch.perClass(p, m.Class[j], m.NumClasses(j))
		best := selectWithLower(dist, lower, evals)
		baselines[j] = best
		p.RefineByBaseline(m.Class[j], best)
	}
	return baselines, p.Pairs()
}

// selectWithLower scans candidate classes in Z_j order (class id order) and
// applies the LOWER cutoff from Procedure 1 step 3: scanning stops after
// `lower` consecutive candidates scoring strictly below the best seen.
// lower <= 0 scans everything. Ties keep the earliest candidate.
func selectWithLower(dist []int64, lower int, evals *int64) int32 {
	best := int64(-1)
	bestIdx := int32(0)
	consec := 0
	for z := 0; z < len(dist); z++ {
		*evals++
		switch d := dist[z]; {
		case d > best:
			best, bestIdx = d, int32(z)
			consec = 0
		case d < best:
			consec++
			if lower > 0 && consec >= lower {
				return bestIdx
			}
		}
	}
	return bestIdx
}

// distScratch holds reusable buffers for perClass.
type distScratch struct {
	cnt     []int64
	touched []int32
	sizes   []int64
	members []int32
	offs    []int32
}

// perClass computes, for every response class z of one test, the paper's
// dist(z): the number of indistinguished pairs that selecting z as the
// baseline would distinguish. A pair (i1,i2) of a group is distinguished
// when exactly one of the two faults has class z, so each group of size s
// with c members in class z contributes c·(s−c).
func (sc *distScratch) perClass(p *Partition, class []int32, numClasses int) []int64 {
	dist := make([]int64, numClasses)
	n := int(p.next)
	if n == 0 {
		return dist
	}
	if cap(sc.sizes) < n {
		sc.sizes = make([]int64, n)
		sc.offs = make([]int32, n+1)
	}
	sizes := sc.sizes[:n]
	for i := range sizes {
		sizes[i] = 0
	}
	for _, l := range p.lab {
		if l >= 0 {
			sizes[l]++
		}
	}
	offs := sc.offs[:n+1]
	offs[0] = 0
	for l := 0; l < n; l++ {
		offs[l+1] = offs[l] + int32(sizes[l])
	}
	total := int(offs[n])
	if cap(sc.members) < total {
		sc.members = make([]int32, total)
	}
	members := sc.members[:total]
	fill := append([]int32(nil), offs[:n]...)
	for i, l := range p.lab {
		if l >= 0 {
			members[fill[l]] = int32(i)
			fill[l]++
		}
	}
	if cap(sc.cnt) < numClasses {
		sc.cnt = make([]int64, numClasses)
	}
	cnt := sc.cnt[:numClasses]
	for l := 0; l < n; l++ {
		lo, hi := offs[l], offs[l+1]
		if hi-lo < 2 {
			continue
		}
		sc.touched = sc.touched[:0]
		for _, i := range members[lo:hi] {
			z := class[i]
			if cnt[z] == 0 {
				sc.touched = append(sc.touched, z)
			}
			cnt[z]++
		}
		s := int64(hi - lo)
		for _, z := range sc.touched {
			dist[z] += cnt[z] * (s - cnt[z])
			cnt[z] = 0
		}
	}
	return dist
}

// procedure2 is the paper's Procedure 2: sweep the tests in index order,
// replacing each baseline with the best alternative whenever that strictly
// increases the total number of distinguished pairs; repeat until a sweep
// makes no replacement. baselines is updated in place; the final
// indistinguished-pair count and the sweep count are returned.
//
// Evaluating a replacement at test j needs the partition induced by all
// other tests; it is formed as the meet of an incrementally maintained
// prefix partition (tests < j, with any already-accepted replacements) and
// a precomputed suffix partition (tests > j, with the baselines current at
// the start of the sweep — unchanged until the sweep reaches them).
func procedure2(m *resp.Matrix, baselines []int32) (int64, int) {
	var scratch distScratch
	sweeps := 0
	var finalIndist int64
	for {
		sweeps++
		improved := false

		suffix := make([]*Partition, m.K+1)
		suffix[m.K] = NewPartition(m.N)
		for j := m.K - 1; j >= 0; j-- {
			suffix[j] = suffix[j+1].Clone()
			suffix[j].RefineByBaseline(m.Class[j], baselines[j])
		}
		prefix := NewPartition(m.N)
		for j := 0; j < m.K; j++ {
			rest := Meet(prefix, suffix[j+1])
			dist := scratch.perClass(rest, m.Class[j], m.NumClasses(j))
			cur := baselines[j]
			best := cur
			for z := int32(0); z < int32(len(dist)); z++ {
				if dist[z] > dist[best] {
					best = z
				}
			}
			if best != cur {
				baselines[j] = best
				improved = true
			}
			prefix.RefineByBaseline(m.Class[j], baselines[j])
			suffix[j] = nil // free as we go
		}
		finalIndist = prefix.Pairs()
		if !improved {
			return finalIndist, sweeps
		}
	}
}

// minimizeStorage reverts baselines to the fault-free vector wherever that
// does not reduce the number of distinguished pairs, implementing the
// paper's remark that "the fault free output vector may be used for some of
// the test vectors" to shrink baseline storage. It returns the number of
// baselines reverted.
func minimizeStorage(m *resp.Matrix, baselines []int32) int {
	var scratch distScratch
	saved := 0
	suffix := make([]*Partition, m.K+1)
	suffix[m.K] = NewPartition(m.N)
	for j := m.K - 1; j >= 0; j-- {
		suffix[j] = suffix[j+1].Clone()
		suffix[j].RefineByBaseline(m.Class[j], baselines[j])
	}
	prefix := NewPartition(m.N)
	for j := 0; j < m.K; j++ {
		if baselines[j] != 0 {
			rest := Meet(prefix, suffix[j+1])
			dist := scratch.perClass(rest, m.Class[j], m.NumClasses(j))
			if dist[0] == dist[baselines[j]] {
				baselines[j] = 0
				saved++
			}
		}
		prefix.RefineByBaseline(m.Class[j], baselines[j])
		suffix[j] = nil
	}
	return saved
}
