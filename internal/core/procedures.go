package core

import (
	"context"

	"sddict/internal/obs"
	"sddict/internal/resp"
)

// Options controls same/different dictionary construction. The zero value
// is usable; DefaultOptions matches the paper's experimental setup.
type Options struct {
	// Lower is the paper's LOWER constant: candidate scanning for a test
	// stops after this many consecutive candidates scoring below the best
	// so far. 0 scans every candidate (exhaustive).
	Lower int
	// Calls1 is the paper's CALLS_1 constant: Procedure 1 is restarted with
	// random test orders until this many consecutive restarts bring no
	// improvement.
	Calls1 int
	// MaxRestarts caps the total number of Procedure 1 runs.
	MaxRestarts int
	// Seed drives the random test orders: restart i shuffles with
	// OrderSeed(Seed, i), so the schedule is a pure function of Seed.
	Seed int64
	// Workers bounds how many Procedure 1 restarts are evaluated
	// concurrently. 0 selects one worker per available CPU, 1 forces the
	// sequential path. The result is byte-identical at every setting —
	// parallelism trades speculative work for wall-clock time only
	// (DESIGN.md §9).
	Workers int
	// RunProcedure2 applies Procedure 2 to the best Procedure 1 result.
	RunProcedure2 bool
	// SeedFaultFree additionally runs Procedure 2 from all-fault-free
	// baselines (the pass/fail dictionary) and keeps the better outcome.
	// This guarantees the result is never worse than pass/fail — including
	// when the build is interrupted.
	SeedFaultFree bool
	// MinimizeStorage replaces selected baselines by the fault-free vector
	// whenever that loses no resolution, shrinking baseline storage.
	MinimizeStorage bool

	// Resume continues an earlier run from a checkpoint taken with the same
	// seed over the same matrix; construction proceeds exactly as the
	// uninterrupted run would have, at any worker count.
	Resume *Checkpoint
	// CheckpointEvery invokes OnCheckpoint after every CheckpointEvery
	// completed Procedure 1 restarts (0 disables periodic checkpoints). A
	// final checkpoint is also emitted when the restart phase is
	// interrupted, so cancellation never loses completed work.
	CheckpointEvery int
	// OnCheckpoint receives construction snapshots; typically it saves them
	// with Checkpoint.Save. It is called synchronously from BuildSameDiff.
	OnCheckpoint func(Checkpoint)

	// Obs receives measurement-only observability signals during
	// construction: metrics at the ordered restart fold points, build
	// events on the trace, progress ticks. nil disables observation.
	// Observation never feeds back into the search — the dictionary and
	// every BuildStats counter are byte-identical with Obs set or nil,
	// at every worker count (DESIGN.md §10; pinned by the root
	// determinism tests).
	Obs *obs.Observer
}

// DefaultOptions reproduces the paper's setup (LOWER = 10, CALLS_1 = 100,
// Procedure 2 enabled) plus the non-regression seeding and storage
// minimization described in DESIGN.md.
var DefaultOptions = Options{
	Lower:           10,
	Calls1:          100,
	MaxRestarts:     2000,
	RunProcedure2:   true,
	SeedFaultFree:   true,
	MinimizeStorage: true,
}

// BuildStats reports how a same/different dictionary was obtained.
type BuildStats struct {
	Restarts         int   // Procedure 1 runs performed (cumulative across resumes)
	CandidateEvals   int64 // dist(z) evaluations across all completed runs
	IndistFull       int64 // full-dictionary floor
	IndistProc1      int64 // best over Procedure 1 restarts
	IndistProc2      int64 // after Procedure 2 on the Procedure 1 result
	IndistSeeded     int64 // Procedure 2 from fault-free baselines (-1 if not run)
	IndistFinal      int64 // of the returned dictionary
	Proc2Improved    bool
	Proc2Sweeps      int
	UsedSeeded       bool // the seeded run won
	StoredBaselines  int  // baselines differing from fault-free after minimization
	MinimizedSaved   int  // baselines reverted to fault-free by minimization
	ReachedFullFloor bool // dictionary distinguishes everything the full one does
	// Interrupted is set when the build stopped early on context
	// cancellation or deadline; the returned dictionary is the best found
	// so far (and, with SeedFaultFree, never worse than pass/fail).
	Interrupted bool
	// Resumed is set when the build continued from Options.Resume.
	Resumed bool
}

// BuildSameDiff selects baseline vectors for a same/different dictionary
// over m using Procedure 1 with random-order restarts followed by
// Procedure 2, per the paper, and returns the dictionary with construction
// statistics. It is BuildSameDiffCtx with a background context; it panics
// on invalid options or matrix (the context-aware form returns the error).
func BuildSameDiff(m *resp.Matrix, opt Options) (*Dictionary, BuildStats) {
	d, st, err := BuildSameDiffCtx(context.Background(), m, opt)
	if err != nil {
		panic("core: " + err.Error())
	}
	return d, st
}

// BuildSameDiffCtx is BuildSameDiff under a context: cancellation and
// deadline are honoured at restart, sweep and per-test granularity. An
// interrupted build is not an error — it returns the best valid dictionary
// found so far with BuildStats.Interrupted set (never worse than pass/fail
// when Options.SeedFaultFree is set). Errors are reserved for invalid
// options, an invalid matrix, or an incompatible resume checkpoint.
//
// The restart phase fans out across Options.Workers goroutines through
// internal/par; because every restart is a pure function of (m, Seed,
// index) and results are folded in index order, the returned dictionary
// and every BuildStats counter are identical at every worker count.
func BuildSameDiffCtx(ctx context.Context, m *resp.Matrix, opt Options) (*Dictionary, BuildStats, error) {
	var st BuildStats
	st.IndistSeeded = -1
	if err := opt.Validate(); err != nil {
		return nil, st, err
	}
	if err := ValidateMatrix(m); err != nil {
		return nil, st, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	st.IndistFull = NewFull(m).Indistinguished()

	maxRestarts := opt.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 1
	}

	ob := opt.Obs
	if ob.Tracing() {
		ob.Emit("build_start", map[string]any{
			"schema": obs.TraceSchemaVersion,
			"faults": m.N, "tests": m.K, "seed": opt.Seed,
			"lower": opt.Lower, "calls1": opt.Calls1,
			"max_restarts": maxRestarts, "workers": opt.Workers,
			"indist_full": st.IndistFull,
		})
	}

	// Procedure 1 with restarts. Restart 0 uses the natural test order;
	// restart i > 0 shuffles with OrderSeed(opt.Seed, i). The schedule is a
	// pure function of the seed, which is what makes checkpoints resumable
	// (and restarts parallelizable): a resume — under any worker count —
	// picks up after the completed restarts without re-running them.
	var rs restartState
	if cp := opt.Resume; cp != nil {
		if err := cp.ValidateFor(m, opt); err != nil {
			return nil, st, err
		}
		rs.bestBase = append([]int32(nil), cp.BestBaselines...)
		rs.bestIndist = cp.BestIndist
		rs.restarts = cp.Restarts
		rs.noImprove = cp.NoImprove
		rs.evals = cp.CandidateEvals
		st.Resumed = true
		if ob.Tracing() {
			ob.Emit("checkpoint_load", map[string]any{
				"restarts": rs.restarts, "best_indist": rs.bestIndist,
			})
		}
	}

	// emit takes a construction snapshot: always observed (counter plus
	// trace event, with "persisted" recording whether a sink exists),
	// handed to OnCheckpoint only when the caller installed one.
	emit := func() {
		ob.M().Inc(obs.CheckpointSaves)
		if ob.Tracing() {
			ob.Emit("checkpoint_save", map[string]any{
				"restarts": rs.restarts, "best_indist": rs.bestIndist,
				"persisted": opt.OnCheckpoint != nil,
			})
		}
		if opt.OnCheckpoint == nil {
			return
		}
		opt.OnCheckpoint(Checkpoint{
			Version:        checkpointVersion,
			Seed:           opt.Seed,
			MatrixN:        m.N,
			MatrixK:        m.K,
			Fingerprint:    MatrixFingerprint(m),
			Restarts:       rs.restarts,
			NoImprove:      rs.noImprove,
			OrderSeeds:     OrderSeedSchedule(opt.Seed, rs.restarts),
			BestBaselines:  append([]int32(nil), rs.bestBase...),
			BestIndist:     rs.bestIndist,
			CandidateEvals: rs.evals,
		})
	}

	// partialBase holds the baselines of a restart cut short by
	// cancellation; they form a valid dictionary (unreached tests keep the
	// fault-free baseline) and may beat the completed best.
	partialBase, interrupted := runRestartsCtx(ctx, m, opt, &rs, maxRestarts, st.IndistFull, emit)
	st.Interrupted = interrupted
	st.Restarts = rs.restarts
	st.CandidateEvals = rs.evals
	bestBase, bestIndist := rs.bestBase, rs.bestIndist
	if st.Interrupted {
		// Salvage: keep the best of the completed restarts, the interrupted
		// partial run, and (with SeedFaultFree) the plain pass/fail
		// baselines — the cheap tail of the SeedFaultFree guarantee.
		if bestBase == nil {
			if partialBase == nil {
				partialBase = make([]int32, m.K)
			}
			bestBase, bestIndist = partialBase, sdIndist(m, partialBase)
		} else if partialBase != nil {
			if pi := sdIndist(m, partialBase); pi < bestIndist {
				bestBase, bestIndist = partialBase, pi
			}
		}
		if opt.SeedFaultFree {
			zeros := make([]int32, m.K)
			if zi := sdIndist(m, zeros); zi < bestIndist {
				bestBase, bestIndist = zeros, zi
				st.UsedSeeded = true
			}
		}
		st.IndistProc1 = bestIndist
		st.IndistProc2 = bestIndist
		st.IndistFinal = bestIndist
		st.ReachedFullFloor = bestIndist == st.IndistFull
		d := &Dictionary{Kind: SameDiff, M: m, Baselines: bestBase}
		for _, b := range bestBase {
			if b != 0 {
				st.StoredBaselines++
			}
		}
		if ob.Tracing() {
			ob.Emit("build_end", map[string]any{
				"indist": bestIndist, "restarts": rs.restarts, "interrupted": true,
			})
		}
		if rs.restarts > 0 {
			// Final snapshot of the completed work, so nothing is lost. Last
			// deliberately: an interrupted trace ends on checkpoint_save, the
			// invariant the root interruption test pins.
			emit()
		}
		return d, st, nil
	}
	st.IndistProc1 = bestIndist
	st.IndistProc2 = bestIndist

	// Procedure 2 on the Procedure 1 winner. Replacements are individually
	// monotone, so an interrupted sweep still leaves valid baselines no
	// worse than its input.
	if opt.RunProcedure2 && bestIndist > st.IndistFull {
		indist, sweeps, done := procedure2(ctx, m, bestBase, ob)
		st.Proc2Sweeps = sweeps
		st.IndistProc2 = indist
		st.Proc2Improved = indist < st.IndistProc1
		bestIndist = indist
		st.Interrupted = st.Interrupted || !done
	}

	// Non-regression seeding: Procedure 2 from the pass/fail baselines.
	// Even when cut short, the seeded baselines are never worse than
	// pass/fail, so the guarantee survives interruption.
	if opt.SeedFaultFree {
		seeded := make([]int32, m.K)
		indist, _, done := procedure2(ctx, m, seeded, ob)
		st.IndistSeeded = indist
		st.Interrupted = st.Interrupted || !done
		if indist < bestIndist {
			bestBase, bestIndist = seeded, indist
			st.UsedSeeded = true
		}
	}
	st.IndistFinal = bestIndist
	st.ReachedFullFloor = bestIndist == st.IndistFull

	d := &Dictionary{Kind: SameDiff, M: m, Baselines: bestBase}
	if opt.MinimizeStorage && ctx.Err() == nil {
		st.MinimizedSaved = minimizeStorage(m, bestBase)
	}
	for _, b := range bestBase {
		if b != 0 {
			st.StoredBaselines++
		}
	}
	ob.M().Set(obs.IndistPairs, bestIndist)
	if ob.Tracing() {
		ob.Emit("build_end", map[string]any{
			"indist": bestIndist, "restarts": rs.restarts,
			"interrupted": st.Interrupted,
		})
	}
	return d, st, nil
}
