package core

import (
	"context"

	"sddict/internal/obs"
	"sddict/internal/resp"
)

// Procedure 2 stays serial by design: each replacement is evaluated
// against the partition induced by all already-accepted replacements of
// the same sweep, so test j+1's decision depends on test j's outcome.
// Parallelizing it would change which replacements are taken and thus
// the result (DESIGN.md §9); only the restart phase fans out.

// procedure2 is the paper's Procedure 2: sweep the tests in index order,
// replacing each baseline with the best alternative whenever that strictly
// increases the total number of distinguished pairs; repeat until a sweep
// makes no replacement. baselines is updated in place; the final
// indistinguished-pair count and the sweep count are returned. done is
// false when ctx cut the sweeps short — each replacement is individually
// monotone, so the in-place baselines remain valid and no worse than the
// input, and the returned count is recomputed for the partial result.
//
// Evaluating a replacement at test j needs the partition induced by all
// other tests; it is formed as the meet of an incrementally maintained
// prefix partition (tests < j, with any already-accepted replacements) and
// a precomputed suffix partition (tests > j, with the baselines current at
// the start of the sweep — unchanged until the sweep reaches them).
func procedure2(ctx context.Context, m *resp.Matrix, baselines []int32, ob *obs.Observer) (int64, int, bool) {
	var scratch distScratch
	sweeps := 0
	var finalIndist int64
	for {
		sweeps++
		improved := false
		accepted, rejected := 0, 0

		suffix := make([]*Partition, m.K+1)
		suffix[m.K] = NewPartition(m.N)
		for j := m.K - 1; j >= 0; j-- {
			suffix[j] = suffix[j+1].Clone()
			suffix[j].RefineByBaseline(m.Class[j], baselines[j])
		}
		prefix := NewPartition(m.N)
		for j := 0; j < m.K; j++ {
			if ctx.Err() != nil {
				return sdIndist(m, baselines), sweeps, false
			}
			rest := Meet(prefix, suffix[j+1])
			dist := scratch.perClass(rest, m.Class[j], m.NumClasses(j))
			cur := baselines[j]
			best := cur
			for z := int32(0); z < int32(len(dist)); z++ {
				if dist[z] > dist[best] {
					best = z
				}
			}
			if best != cur {
				baselines[j] = best
				improved = true
				accepted++
			} else {
				rejected++
			}
			prefix.RefineByBaseline(m.Class[j], baselines[j])
			suffix[j] = nil // free as we go
		}
		finalIndist = prefix.Pairs()
		// Procedure 2 is serial, so the end of a sweep is already an
		// ordered observation point.
		ob.M().Add(obs.Proc2Accepted, int64(accepted))
		ob.M().Add(obs.Proc2Rejected, int64(rejected))
		ob.M().Set(obs.IndistPairs, finalIndist)
		if ob.Tracing() {
			ob.Emit("proc2_sweep", map[string]any{
				"sweep": sweeps, "accepted": accepted, "rejected": rejected,
				"indist": finalIndist,
			})
		}
		ob.Tick()
		if !improved {
			return finalIndist, sweeps, true
		}
		if ctx.Err() != nil {
			return finalIndist, sweeps, false
		}
	}
}

// minimizeStorage reverts baselines to the fault-free vector wherever that
// does not reduce the number of distinguished pairs, implementing the
// paper's remark that "the fault free output vector may be used for some of
// the test vectors" to shrink baseline storage. It returns the number of
// baselines reverted.
func minimizeStorage(m *resp.Matrix, baselines []int32) int {
	var scratch distScratch
	saved := 0
	suffix := make([]*Partition, m.K+1)
	suffix[m.K] = NewPartition(m.N)
	for j := m.K - 1; j >= 0; j-- {
		suffix[j] = suffix[j+1].Clone()
		suffix[j].RefineByBaseline(m.Class[j], baselines[j])
	}
	prefix := NewPartition(m.N)
	for j := 0; j < m.K; j++ {
		if baselines[j] != 0 {
			rest := Meet(prefix, suffix[j+1])
			dist := scratch.perClass(rest, m.Class[j], m.NumClasses(j))
			if dist[0] == dist[baselines[j]] {
				baselines[j] = 0
				saved++
			}
		}
		prefix.RefineByBaseline(m.Class[j], baselines[j])
		suffix[j] = nil
	}
	return saved
}

// sdIndist returns the indistinguished-pair count of the same/different
// dictionary with the given baselines, by direct refinement.
func sdIndist(m *resp.Matrix, baselines []int32) int64 {
	p := NewPartition(m.N)
	for j := 0; j < m.K; j++ {
		if p.Done() {
			break
		}
		p.RefineByBaseline(m.Class[j], baselines[j])
	}
	return p.Pairs()
}
