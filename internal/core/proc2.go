package core

import (
	"context"

	"sddict/internal/obs"
	"sddict/internal/resp"
)

// Procedure 2 stays serial by design: each replacement is evaluated
// against the partition induced by all already-accepted replacements of
// the same sweep, so test j+1's decision depends on test j's outcome.
// Parallelizing it would change which replacements are taken and thus
// the result (DESIGN.md §9); only the restart phase fans out.

// procedure2 is the paper's Procedure 2: sweep the tests in index order,
// replacing each baseline with the best alternative whenever that strictly
// increases the total number of distinguished pairs; repeat until a sweep
// makes no replacement. baselines is updated in place; the final
// indistinguished-pair count and the sweep count are returned. done is
// false when ctx cut the sweeps short — each replacement is individually
// monotone, so the in-place baselines remain valid and no worse than the
// input, and the returned count is recomputed for the partial result.
//
// Evaluating a replacement at test j needs the partition induced by all
// other tests; it is formed as the meet of an incrementally maintained
// prefix partition (tests < j, with any already-accepted replacements) and
// a precomputed suffix partition (tests > j, with the baselines current at
// the start of the sweep — unchanged until the sweep reaches them).
func procedure2(ctx context.Context, m *resp.Matrix, baselines []int32, ob *obs.Observer) (int64, int, bool) {
	var scratch distScratch
	suf := newSuffixLabels(m.N, m.K)
	sweeps := 0
	var finalIndist int64
	for {
		sweeps++
		improved := false
		accepted, rejected := 0, 0

		suf.build(m, baselines)
		prefix := NewPartition(m.N)
		for j := 0; j < m.K; j++ {
			if ctx.Err() != nil {
				return sdIndist(m, baselines), sweeps, false
			}
			dist := scratch.distMeet(prefix, suf.lab(j+1), suf.next[j+1], m.Class[j], m.NumClasses(j))
			cur := baselines[j]
			best := cur
			for z := int32(0); z < int32(len(dist)); z++ {
				if dist[z] > dist[best] {
					best = z
				}
			}
			if best != cur {
				baselines[j] = best
				improved = true
				accepted++
			} else {
				rejected++
			}
			prefix.RefineByBaseline(m.Class[j], baselines[j])
		}
		finalIndist = prefix.Pairs()
		// Procedure 2 is serial, so the end of a sweep is already an
		// ordered observation point.
		ob.M().Add(obs.Proc2Accepted, int64(accepted))
		ob.M().Add(obs.Proc2Rejected, int64(rejected))
		ob.M().Set(obs.IndistPairs, finalIndist)
		if ob.Tracing() {
			ob.Emit("proc2_sweep", map[string]any{
				"sweep": sweeps, "accepted": accepted, "rejected": rejected,
				"indist": finalIndist,
			})
		}
		ob.Tick()
		if !improved {
			return finalIndist, sweeps, true
		}
		if ctx.Err() != nil {
			return finalIndist, sweeps, false
		}
	}
}

// minimizeStorage reverts baselines to the fault-free vector wherever that
// does not reduce the number of distinguished pairs, implementing the
// paper's remark that "the fault free output vector may be used for some of
// the test vectors" to shrink baseline storage. It returns the number of
// baselines reverted.
func minimizeStorage(m *resp.Matrix, baselines []int32) int {
	var scratch distScratch
	saved := 0
	suf := newSuffixLabels(m.N, m.K)
	suf.build(m, baselines)
	prefix := NewPartition(m.N)
	for j := 0; j < m.K; j++ {
		if baselines[j] != 0 {
			dist := scratch.distMeet(prefix, suf.lab(j+1), suf.next[j+1], m.Class[j], m.NumClasses(j))
			if dist[0] == dist[baselines[j]] {
				baselines[j] = 0
				saved++
			}
		}
		prefix.RefineByBaseline(m.Class[j], baselines[j])
	}
	return saved
}

// suffixLabels stores, for every test position j, the label snapshot of
// the partition refined by tests j..K−1 with the current baselines — all
// Procedure 2 needs of its suffix partitions (meetInto consumes lab/next
// only). One flat backing array replaces the K cloned partitions the
// suffix scheme previously kept alive.
type suffixLabels struct {
	n    int
	labs []int32 // (K+1)·n labels, snapshot j at [j·n, (j+1)·n)
	next []int32
}

func newSuffixLabels(n, k int) *suffixLabels {
	return &suffixLabels{
		n:    n,
		labs: make([]int32, (k+1)*n),
		next: make([]int32, k+1),
	}
}

func (s *suffixLabels) lab(j int) []int32 { return s.labs[j*s.n : (j+1)*s.n] }

// build refines one evolving partition from the last test backwards,
// snapshotting labels after each step.
func (s *suffixLabels) build(m *resp.Matrix, baselines []int32) {
	p := NewPartition(s.n)
	copy(s.lab(m.K), p.lab)
	s.next[m.K] = p.next
	for j := m.K - 1; j >= 0; j-- {
		p.RefineByBaseline(m.Class[j], baselines[j])
		copy(s.lab(j), p.lab)
		s.next[j] = p.next
	}
}

// distMeet computes, for one test, the per-class dist values of the meet
// of prefix with the suffix partition given by its label snapshot —
// without materializing the meet partition. Each live prefix group is
// bucketed by suffix label (a fault isolated on either side is isolated
// in the meet); each bucket is a meet group and contributes c·(s−c) per
// class exactly as perClass would on the materialized meet, so the dist
// values are bit-identical (integer sums, order-free) while the per-test
// cost drops from several O(n) passes of Meet + relabel + rebuild to a
// few passes over the live prefix members only.
func (sc *distScratch) distMeet(prefix *Partition, sufLab []int32, sufNext int32, class []int32, numClasses int) []int64 {
	if cap(sc.dist) < numClasses {
		sc.dist = make([]int64, numClasses)
	}
	dist := sc.dist[:numClasses]
	for i := range dist {
		dist[i] = 0
	}
	if prefix.groups == 0 {
		return dist
	}
	if cap(sc.cnt) < numClasses {
		sc.cnt = make([]int64, numClasses)
	}
	cnt := sc.cnt[:numClasses]
	if cap(sc.bslot) < int(sufNext) {
		sc.bslot = make([]int32, sufNext)
		for i := range sc.bslot {
			sc.bslot[i] = -1
		}
	}
	bslot := sc.bslot[:cap(sc.bslot)]
	if cap(sc.bmem) < len(prefix.lab) {
		sc.bmem = make([]int32, len(prefix.lab))
	}
	bmem := sc.bmem[:cap(sc.bmem)]
	prefix.compactLabs()
	for _, l := range prefix.labs {
		s := prefix.size[l]
		if s < 2 {
			continue
		}
		span := prefix.members[prefix.spanLo[l]:prefix.spanHi[l]]
		// Bucket the span by suffix label.
		nb := int32(0)
		btouch, bsize := sc.btouch[:0], sc.bsize[:0]
		for _, f := range span {
			sl := sufLab[f]
			if sl < 0 {
				continue
			}
			b := bslot[sl]
			if b < 0 {
				b = nb
				nb++
				bslot[sl] = b
				btouch = append(btouch, sl)
				bsize = append(bsize, 0)
			}
			bsize[b]++
		}
		if nb == 1 {
			// Common case: the suffix does not split this prefix group, so
			// the span (minus suffix-isolated members) is a single meet
			// group — count its classes directly, no scatter needed.
			bslot[btouch[0]] = -1
			sc.btouch, sc.bsize = btouch, bsize
			bs := bsize[0]
			if bs < 2 {
				continue
			}
			touched := sc.touched[:0]
			for _, f := range span {
				if sufLab[f] < 0 {
					continue
				}
				z := class[f]
				if cnt[z] == 0 {
					touched = append(touched, z)
				}
				cnt[z]++
			}
			s64 := int64(bs)
			for _, z := range touched {
				dist[z] += cnt[z] * (s64 - cnt[z])
				cnt[z] = 0
			}
			sc.touched = touched
			continue
		}
		// Scatter the span into contiguous bucket segments.
		bcur := sc.bcur[:0]
		off := int32(0)
		for b := int32(0); b < nb; b++ {
			bcur = append(bcur, off)
			off += bsize[b]
		}
		for _, f := range span {
			sl := sufLab[f]
			if sl < 0 {
				continue
			}
			b := bslot[sl]
			bmem[bcur[b]] = f
			bcur[b]++
		}
		// Score each bucket of size ≥ 2 as one meet group.
		pos := int32(0)
		for b := int32(0); b < nb; b++ {
			bs := bsize[b]
			seg := bmem[pos : pos+bs]
			pos += bs
			if bs < 2 {
				continue
			}
			touched := sc.touched[:0]
			for _, f := range seg {
				z := class[f]
				if cnt[z] == 0 {
					touched = append(touched, z)
				}
				cnt[z]++
			}
			s64 := int64(bs)
			for _, z := range touched {
				dist[z] += cnt[z] * (s64 - cnt[z])
				cnt[z] = 0
			}
			sc.touched = touched
		}
		for _, sl := range btouch {
			bslot[sl] = -1
		}
		sc.btouch, sc.bsize, sc.bcur = btouch, bsize, bcur
	}
	return dist
}

// buildMulti is build for the two-baseline construction: each test refines
// by both of its baseline slots.
func (s *suffixLabels) buildMulti(m *resp.Matrix, b1, b2 []int32) {
	p := NewPartition(s.n)
	copy(s.lab(m.K), p.lab)
	s.next[m.K] = p.next
	for j := m.K - 1; j >= 0; j-- {
		p.RefineByBaseline(m.Class[j], b1[j])
		p.RefineByBaseline(m.Class[j], b2[j])
		copy(s.lab(j), p.lab)
		s.next[j] = p.next
	}
}

// sdIndist returns the indistinguished-pair count of the same/different
// dictionary with the given baselines, by direct refinement.
func sdIndist(m *resp.Matrix, baselines []int32) int64 {
	p := NewPartition(m.N)
	for j := 0; j < m.K; j++ {
		if p.Done() {
			break
		}
		p.RefineByBaseline(m.Class[j], baselines[j])
	}
	return p.Pairs()
}
