package core

import (
	"math"

	"sddict/internal/resp"
)

// This file implements the classic compact-dictionary baselines from the
// size-optimization literature the paper builds on (refs [2], [9], [12]):
// ways to spend a few more bits than pass/fail — or differently-shaped
// bits — and what resolution they buy. They give the same/different
// dictionary's size/resolution point a fuller context than pass/fail
// alone.

// AltDict is a derived compact dictionary: a partition of the faults into
// indistinguishable groups plus its storage cost.
type AltDict struct {
	Name     string
	SizeBits int64
	part     *Partition
}

// Indistinguished returns the number of fault pairs the dictionary cannot
// separate.
func (a *AltDict) Indistinguished() int64 { return a.part.Pairs() }

// Partition returns the indistinguishability partition.
func (a *AltDict) Partition() *Partition { return a.part }

// bitsFor returns the bits needed to store one value in [0, n].
func bitsFor(n int) int64 {
	if n <= 1 {
		return 1
	}
	return int64(math.Ceil(math.Log2(float64(n + 1))))
}

// FirstFailingTest builds the Tulloss-style compressed dictionary: each
// fault is represented only by the index of the first test that detects it
// (k, i.e. "never detected", uses one extra code point). Size is
// n·ceil(log2(k+1)) bits. Resolution: faults sharing the first failing
// test are indistinguishable.
func FirstFailingTest(m *resp.Matrix) *AltDict {
	first := make([]int32, m.N)
	for i := range first {
		first[i] = int32(m.K) // never detected
	}
	for j := 0; j < m.K; j++ {
		for i := 0; i < m.N; i++ {
			if first[i] == int32(m.K) && m.Class[j][i] != 0 {
				first[i] = int32(j)
			}
		}
	}
	p := NewPartition(m.N)
	p.RefineByClass(first)
	return &AltDict{
		Name:     "first-failing-test",
		SizeBits: int64(m.N) * bitsFor(m.K),
		part:     p,
	}
}

// DetectionCount builds the detection-count dictionary: each fault stores
// only how many tests detect it (0..k). Size n·ceil(log2(k+1)) bits.
func DetectionCount(m *resp.Matrix) *AltDict {
	counts := make([]int32, m.N)
	for j := 0; j < m.K; j++ {
		for i := 0; i < m.N; i++ {
			if m.Class[j][i] != 0 {
				counts[i]++
			}
		}
	}
	p := NewPartition(m.N)
	p.RefineByClass(counts)
	return &AltDict{
		Name:     "detection-count",
		SizeBits: int64(m.N) * bitsFor(m.K),
		part:     p,
	}
}

// FailingOutputs builds the failing-output-set dictionary: each fault
// stores the union over tests of outputs on which it ever fails (m bits
// per fault, independent of k). It is the cheapest dictionary that uses
// output information at all, and the paper's same/different dictionary can
// be seen as buying per-test output information for far fewer bits.
func FailingOutputs(m *resp.Matrix) *AltDict {
	// Hash the per-fault failing-output sets into class ids.
	sets := make([][]uint64, m.N)
	words := (m.M + 63) / 64
	for i := range sets {
		sets[i] = make([]uint64, words)
	}
	for j := 0; j < m.K; j++ {
		ff := m.Vecs[j][0]
		for i := 0; i < m.N; i++ {
			c := m.Class[j][i]
			if c == 0 {
				continue
			}
			v := m.Vecs[j][c]
			for w := 0; w < words; w++ {
				sets[i][w] |= v[w] ^ ff[w]
			}
		}
	}
	// Deduplicate sets into class ids.
	type key string
	ids := map[key]int32{}
	class := make([]int32, m.N)
	var next int32
	buf := make([]byte, words*8)
	for i := 0; i < m.N; i++ {
		for w, word := range sets[i] {
			for b := 0; b < 8; b++ {
				buf[w*8+b] = byte(word >> uint(8*b))
			}
		}
		k := key(buf)
		id, ok := ids[k]
		if !ok {
			id = next
			next++
			ids[k] = id
		}
		class[i] = id
	}
	p := NewPartition(m.N)
	p.RefineByClass(class)
	return &AltDict{
		Name:     "failing-outputs",
		SizeBits: int64(m.N) * int64(m.M),
		part:     p,
	}
}

// PassFailPlusFirst combines the pass/fail dictionary with the
// first-failing-test field — the two-stage flavour of refs [8]/[12]:
// signatures separate what bits can, the first-failing index refines the
// rest. Size k·n + n·ceil(log2(k+1)).
func PassFailPlusFirst(m *resp.Matrix) *AltDict {
	p := NewPassFail(m).Partition()
	first := FirstFailingTest(m)
	combined := Meet(p, first.part)
	return &AltDict{
		Name:     "pass/fail+first",
		SizeBits: m.PassFailSizeBits() + int64(m.N)*bitsFor(m.K),
		part:     combined,
	}
}
