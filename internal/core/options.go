package core

import (
	"fmt"

	"sddict/internal/resp"
)

// Validate checks the option values that BuildSameDiff would otherwise have
// to clamp or misinterpret silently. Zero values remain valid (they carry
// documented meanings: Lower 0 scans exhaustively, Calls1 0 stops after the
// first run, MaxRestarts 0 means one run); negative values are rejected.
func (opt Options) Validate() error {
	switch {
	case opt.Lower < 0:
		return fmt.Errorf("core: Options.Lower must be >= 0, got %d", opt.Lower)
	case opt.Calls1 < 0:
		return fmt.Errorf("core: Options.Calls1 must be >= 0, got %d", opt.Calls1)
	case opt.MaxRestarts < 0:
		return fmt.Errorf("core: Options.MaxRestarts must be >= 0, got %d", opt.MaxRestarts)
	case opt.Workers < 0:
		return fmt.Errorf("core: Options.Workers must be >= 0, got %d", opt.Workers)
	case opt.CheckpointEvery < 0:
		return fmt.Errorf("core: Options.CheckpointEvery must be >= 0, got %d", opt.CheckpointEvery)
	case opt.CheckpointEvery > 0 && opt.OnCheckpoint == nil:
		return fmt.Errorf("core: Options.CheckpointEvery set without Options.OnCheckpoint")
	}
	return nil
}

// ValidateMatrix checks that a response matrix is structurally usable for
// dictionary construction: non-nil, non-empty, with one dense class row per
// test in which class 0 (the fault-free response) is always representable.
func ValidateMatrix(m *resp.Matrix) error {
	switch {
	case m == nil:
		return fmt.Errorf("core: nil response matrix")
	case m.N <= 0:
		return fmt.Errorf("core: response matrix has no faults (N=%d)", m.N)
	case m.K <= 0:
		return fmt.Errorf("core: response matrix has no tests (K=%d)", m.K)
	case len(m.Class) != m.K:
		return fmt.Errorf("core: response matrix has %d class rows, want K=%d", len(m.Class), m.K)
	}
	for j, row := range m.Class {
		if len(row) != m.N {
			return fmt.Errorf("core: test %d has %d class entries, want N=%d", j, len(row), m.N)
		}
		nc := m.NumClasses(j)
		if nc < 1 {
			return fmt.Errorf("core: test %d has no response classes", j)
		}
		for i, c := range row {
			if c < 0 || int(c) >= nc {
				return fmt.Errorf("core: test %d fault %d has class %d outside [0,%d)", j, i, c, nc)
			}
		}
	}
	return nil
}
