package netlist

// SCOAP implements the classic Goldstein testability measures: CC0/CC1
// (combinational 0- and 1-controllability, the minimum number of input
// assignments needed to set a line to 0/1) and CO (combinational
// observability, the effort to propagate a line to an output). The test
// generator uses them to steer backtrace toward easy-to-control inputs,
// and they are useful on their own for testability reports.
//
// Flip-flop outputs are treated as directly controllable and flip-flop D
// lines as directly observable, matching the full-scan assumption used
// everywhere else.
type SCOAP struct {
	CC0 []int32 // per gate: cost of setting the output to 0
	CC1 []int32 // per gate: cost of setting the output to 1
	CO  []int32 // per gate: cost of observing the output
}

// scoapInf is the cost assigned to uncontrollable/unobservable lines
// (constant gates' impossible value); additions saturate at it.
const scoapInf = int32(1 << 28)

func scoapAdd(a, b int32) int32 {
	s := a + b
	if s > scoapInf || s < 0 {
		return scoapInf
	}
	return s
}

// ComputeSCOAP returns the SCOAP measures of c under the full-scan view.
func ComputeSCOAP(c *Circuit) *SCOAP {
	n := len(c.Gates)
	s := &SCOAP{
		CC0: make([]int32, n),
		CC1: make([]int32, n),
		CO:  make([]int32, n),
	}

	// Controllability in topological order.
	for _, g := range c.Order() {
		gate := &c.Gates[g]
		switch gate.Type {
		case Input, DFF:
			s.CC0[g], s.CC1[g] = 1, 1
		case Const0:
			s.CC0[g], s.CC1[g] = 0, scoapInf
		case Const1:
			s.CC0[g], s.CC1[g] = scoapInf, 0
		case Buf:
			d := gate.Fanin[0]
			s.CC0[g] = scoapAdd(s.CC0[d], 1)
			s.CC1[g] = scoapAdd(s.CC1[d], 1)
		case Not:
			d := gate.Fanin[0]
			s.CC0[g] = scoapAdd(s.CC1[d], 1)
			s.CC1[g] = scoapAdd(s.CC0[d], 1)
		case And, Nand:
			// Output 0 (for AND): any one input 0 — the cheapest.
			// Output 1: all inputs 1.
			min0 := scoapInf
			var sum1 int32
			for _, d := range gate.Fanin {
				if s.CC0[d] < min0 {
					min0 = s.CC0[d]
				}
				sum1 = scoapAdd(sum1, s.CC1[d])
			}
			c0 := scoapAdd(min0, 1)
			c1 := scoapAdd(sum1, 1)
			if gate.Type == Nand {
				c0, c1 = c1, c0
			}
			s.CC0[g], s.CC1[g] = c0, c1
		case Or, Nor:
			var sum0 int32
			min1 := scoapInf
			for _, d := range gate.Fanin {
				sum0 = scoapAdd(sum0, s.CC0[d])
				if s.CC1[d] < min1 {
					min1 = s.CC1[d]
				}
			}
			c0 := scoapAdd(sum0, 1)
			c1 := scoapAdd(min1, 1)
			if gate.Type == Nor {
				c0, c1 = c1, c0
			}
			s.CC0[g], s.CC1[g] = c0, c1
		case Xor, Xnor:
			// Two-input form generalized: parity of choices; use the
			// cheapest even/odd combination computed incrementally.
			even, odd := int32(0), scoapInf // cost of parity-0 / parity-1 over processed inputs
			for _, d := range gate.Fanin {
				ne := minCost(scoapAdd(even, s.CC0[d]), scoapAdd(odd, s.CC1[d]))
				no := minCost(scoapAdd(even, s.CC1[d]), scoapAdd(odd, s.CC0[d]))
				even, odd = ne, no
			}
			c0 := scoapAdd(even, 1)
			c1 := scoapAdd(odd, 1)
			if gate.Type == Xnor {
				c0, c1 = c1, c0
			}
			s.CC0[g], s.CC1[g] = c0, c1
		}
	}

	// Observability in reverse topological order. Primary outputs and
	// flip-flop D lines are directly observable.
	for i := range s.CO {
		s.CO[i] = scoapInf
	}
	for _, po := range c.POs {
		s.CO[po] = 0
	}
	for _, ff := range c.DFFs {
		s.CO[c.Gates[ff].Fanin[0]] = 0
	}
	order := c.Order()
	for idx := len(order) - 1; idx >= 0; idx-- {
		g := order[idx]
		gate := &c.Gates[g]
		if gate.Type == DFF {
			continue // observation stops at the scan cell
		}
		for pin, d := range gate.Fanin {
			var cost int32
			switch gate.Type {
			case Buf, Not:
				cost = scoapAdd(s.CO[g], 1)
			case And, Nand:
				// Other inputs must be non-controlling (1).
				sum := s.CO[g]
				for p2, d2 := range gate.Fanin {
					if p2 != pin {
						sum = scoapAdd(sum, s.CC1[d2])
					}
				}
				cost = scoapAdd(sum, 1)
			case Or, Nor:
				sum := s.CO[g]
				for p2, d2 := range gate.Fanin {
					if p2 != pin {
						sum = scoapAdd(sum, s.CC0[d2])
					}
				}
				cost = scoapAdd(sum, 1)
			case Xor, Xnor:
				// Other inputs must merely be known; charge the cheaper
				// controllability of each.
				sum := s.CO[g]
				for p2, d2 := range gate.Fanin {
					if p2 != pin {
						sum = scoapAdd(sum, minCost(s.CC0[d2], s.CC1[d2]))
					}
				}
				cost = scoapAdd(sum, 1)
			default:
				continue
			}
			if cost < s.CO[d] {
				s.CO[d] = cost
			}
		}
	}
	return s
}

func minCost(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// HardestLines returns the k gate indices with the largest
// CC0+CC1+CO sum — a quick testability hot-spot report.
func (s *SCOAP) HardestLines(k int) []int32 {
	type entry struct {
		g    int32
		cost int64
	}
	entries := make([]entry, len(s.CC0))
	for i := range entries {
		entries[i] = entry{int32(i),
			int64(s.CC0[i]) + int64(s.CC1[i]) + int64(s.CO[i])}
	}
	// Partial selection sort: k is small.
	if k > len(entries) {
		k = len(entries)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(entries); j++ {
			if entries[j].cost > entries[best].cost {
				best = j
			}
		}
		entries[i], entries[best] = entries[best], entries[i]
	}
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		out[i] = entries[i].g
	}
	return out
}
