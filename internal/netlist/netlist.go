// Package netlist represents gate-level circuits: combinational logic plus
// D flip-flops, as used by the ISCAS-89 benchmark family. It provides the
// structural services every other layer builds on — construction, validity
// checking, levelization, topological ordering, fanout computation, and the
// full-scan view that turns flip-flops into pseudo inputs and outputs.
package netlist

import (
	"errors"
	"fmt"
)

// GateType enumerates the supported primitives.
type GateType uint8

// Gate primitives. Input is a primary input; Const0/Const1 are constant
// drivers (used for structural fault injection); DFF is a D flip-flop whose
// single fanin is the D line and whose output is Q.
const (
	Input GateType = iota
	Const0
	Const1
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	DFF
	numGateTypes
)

var gateNames = [numGateTypes]string{
	"INPUT", "CONST0", "CONST1", "BUFF", "NOT",
	"AND", "NAND", "OR", "NOR", "XOR", "XNOR", "DFF",
}

func (t GateType) String() string {
	if int(t) < len(gateNames) {
		return gateNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// Inverting reports whether the gate complements the underlying AND/OR/XOR
// (or buffer) function.
func (t GateType) Inverting() bool {
	switch t {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// MinFanin returns the minimum legal fanin count for the type.
func (t GateType) MinFanin() int {
	switch t {
	case Input, Const0, Const1:
		return 0
	case Buf, Not, DFF:
		return 1
	default:
		return 2
	}
}

// MaxFanin returns the maximum legal fanin count (0 means none allowed).
func (t GateType) MaxFanin() int {
	switch t {
	case Input, Const0, Const1:
		return 0
	case Buf, Not, DFF:
		return 1
	default:
		return 1 << 20 // effectively unbounded
	}
}

// Gate is one node of the circuit graph. Its output line is identified with
// the gate index; Fanin lists the driving gate indices in pin order.
type Gate struct {
	Name  string
	Type  GateType
	Fanin []int32
}

// Circuit is an immutable gate-level netlist produced by a Builder or a
// parser. Index 0..len(Gates)-1 identifies both a gate and its output line.
type Circuit struct {
	Name  string
	Gates []Gate
	// POs lists gate indices designated as primary outputs, in declaration
	// order. A gate may appear at most once.
	POs []int32
	// PIs lists the Input gates in declaration order.
	PIs []int32
	// DFFs lists the DFF gates in declaration order.
	DFFs []int32

	fanout [][]int32
	level  []int32
	order  []int32
}

// NumGates returns the total node count, including inputs and flip-flops.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumLogicGates returns the count of combinational logic gates (everything
// except Input, constants and DFF nodes), matching how benchmark "gate
// counts" are usually quoted.
func (c *Circuit) NumLogicGates() int {
	n := 0
	for i := range c.Gates {
		switch c.Gates[i].Type {
		case Input, Const0, Const1, DFF:
		default:
			n++
		}
	}
	return n
}

// Fanout returns the fanout gate list of gate g. The returned slice is
// shared; callers must not modify it.
func (c *Circuit) Fanout(g int32) []int32 { return c.fanout[g] }

// FanoutCount returns len(Fanout(g)) counting each sink pin once; a gate
// feeding two pins of the same sink is counted twice.
func (c *Circuit) FanoutCount(g int32) int { return len(c.fanout[g]) }

// Level returns the combinational level of gate g: inputs, constants and
// DFF outputs are level 0; every other gate is 1 + max(level of fanin).
func (c *Circuit) Level(g int32) int32 { return c.level[g] }

// MaxLevel returns the largest combinational level in the circuit.
func (c *Circuit) MaxLevel() int32 {
	var m int32
	for _, l := range c.level {
		if l > m {
			m = l
		}
	}
	return m
}

// Order returns a topological order of all gates for combinational
// evaluation: sources (inputs, constants, DFF outputs) first, then each gate
// after all its fanins. DFF fanin edges are excluded from the dependency
// relation (a DFF's Q does not combinationally depend on D). The returned
// slice is shared; callers must not modify it.
func (c *Circuit) Order() []int32 { return c.order }

// IsSource reports whether gate g is a combinational source (Input,
// constant, or DFF output).
func (c *Circuit) IsSource(g int32) bool {
	switch c.Gates[g].Type {
	case Input, Const0, Const1, DFF:
		return true
	}
	return false
}

// finalize validates the structure and computes the derived tables.
func (c *Circuit) finalize() error {
	n := len(c.Gates)
	if n == 0 {
		return errors.New("netlist: empty circuit")
	}
	c.PIs = c.PIs[:0]
	c.DFFs = c.DFFs[:0]
	for i := range c.Gates {
		g := &c.Gates[i]
		if int(g.Type) >= int(numGateTypes) {
			return fmt.Errorf("netlist: gate %d (%s): invalid type", i, g.Name)
		}
		if len(g.Fanin) < g.Type.MinFanin() || len(g.Fanin) > g.Type.MaxFanin() {
			return fmt.Errorf("netlist: gate %d (%s): %s with %d fanins",
				i, g.Name, g.Type, len(g.Fanin))
		}
		for _, f := range g.Fanin {
			if f < 0 || int(f) >= n {
				return fmt.Errorf("netlist: gate %d (%s): fanin %d out of range", i, g.Name, f)
			}
		}
		switch g.Type {
		case Input:
			c.PIs = append(c.PIs, int32(i))
		case DFF:
			c.DFFs = append(c.DFFs, int32(i))
		}
	}
	seenPO := make(map[int32]bool, len(c.POs))
	for _, p := range c.POs {
		if p < 0 || int(p) >= n {
			return fmt.Errorf("netlist: primary output %d out of range", p)
		}
		if seenPO[p] {
			return fmt.Errorf("netlist: gate %d (%s) listed as primary output twice", p, c.Gates[p].Name)
		}
		seenPO[p] = true
	}

	// Fanout.
	c.fanout = make([][]int32, n)
	for i := range c.Gates {
		for _, f := range c.Gates[i].Fanin {
			c.fanout[f] = append(c.fanout[f], int32(i))
		}
	}

	// Topological order via Kahn's algorithm over combinational edges.
	indeg := make([]int32, n)
	for i := range c.Gates {
		if c.Gates[i].Type == DFF {
			continue // Q does not combinationally depend on D
		}
		indeg[i] = int32(len(c.Gates[i].Fanin))
	}
	c.order = make([]int32, 0, n)
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		c.order = append(c.order, g)
		for _, s := range c.fanout[g] {
			if c.Gates[s].Type == DFF {
				continue // a DFF's Q does not wait for its D line
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	// DFF gates were enqueued as sources above only if indeg==0, which holds
	// (their indeg was never initialized from fanins). All gates must appear.
	if len(c.order) != n {
		return errors.New("netlist: combinational cycle detected")
	}

	// Levels in topological order.
	c.level = make([]int32, n)
	for _, g := range c.order {
		if c.IsSource(g) {
			c.level[g] = 0
			continue
		}
		var m int32 = -1
		for _, f := range c.Gates[g].Fanin {
			if c.level[f] > m {
				m = c.level[f]
			}
		}
		c.level[g] = m + 1
	}
	// A DFF's D line still needs a level even though Q is a source; the loop
	// above already handled that because the D line is an ordinary gate.
	return nil
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	n := &Circuit{Name: c.Name}
	n.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		n.Gates[i] = Gate{Name: g.Name, Type: g.Type, Fanin: append([]int32(nil), g.Fanin...)}
	}
	n.POs = append([]int32(nil), c.POs...)
	if err := n.finalize(); err != nil {
		// The source circuit was valid, so the copy must be too.
		panic("netlist: Clone: " + err.Error())
	}
	return n
}

// GateByName returns the index of the gate with the given name, or -1.
func (c *Circuit) GateByName(name string) int32 {
	for i := range c.Gates {
		if c.Gates[i].Name == name {
			return int32(i)
		}
	}
	return -1
}

// Stats summarizes a circuit for reports.
type Stats struct {
	Name       string
	PIs        int
	POs        int
	DFFs       int
	LogicGates int
	Levels     int32
}

// Stat returns the circuit's summary statistics.
func (c *Circuit) Stat() Stats {
	return Stats{
		Name:       c.Name,
		PIs:        len(c.PIs),
		POs:        len(c.POs),
		DFFs:       len(c.DFFs),
		LogicGates: c.NumLogicGates(),
		Levels:     c.MaxLevel(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: %d PI, %d PO, %d DFF, %d gates, depth %d",
		s.Name, s.PIs, s.POs, s.DFFs, s.LogicGates, s.Levels)
}
