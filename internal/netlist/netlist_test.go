package netlist

import (
	"testing"
	"testing/quick"
)

// buildSeq returns a small sequential circuit:
//
//	a, b  inputs
//	ff    DFF fed by n2
//	n1 = AND(a, ff)
//	n2 = NOR(n1, b)
//	out = NOT(n2)   (primary output)
func buildSeq(t *testing.T) (*Circuit, map[string]int32) {
	t.Helper()
	b := NewBuilder("tiny")
	a := b.Input("a")
	bb := b.Input("b")
	ff := b.Gate(DFF, "ff") // fanin patched below
	n1 := b.Gate(And, "n1", a, ff)
	n2 := b.Gate(Nor, "n2", n1, bb)
	out := b.Gate(Not, "out", n2)
	b.SetFanin(ff, n2)
	b.Output(out)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c, map[string]int32{"a": a, "b": bb, "ff": ff, "n1": n1, "n2": n2, "out": out}
}

func TestBuilderAndDerivedTables(t *testing.T) {
	c, ids := buildSeq(t)
	if got := c.NumGates(); got != 6 {
		t.Fatalf("NumGates = %d, want 6", got)
	}
	if got := c.NumLogicGates(); got != 3 {
		t.Fatalf("NumLogicGates = %d, want 3 (AND, NOR, NOT)", got)
	}
	if len(c.PIs) != 2 || len(c.DFFs) != 1 || len(c.POs) != 1 {
		t.Fatalf("PI/DFF/PO = %d/%d/%d, want 2/1/1", len(c.PIs), len(c.DFFs), len(c.POs))
	}
	// Levels: sources at 0; n1 at 1; n2 at 2; out at 3.
	wantLevels := map[string]int32{"a": 0, "b": 0, "ff": 0, "n1": 1, "n2": 2, "out": 3}
	for name, want := range wantLevels {
		if got := c.Level(ids[name]); got != want {
			t.Errorf("Level(%s) = %d, want %d", name, got, want)
		}
	}
	// Fanout of n2: the NOT gate and the flip-flop.
	if got := c.FanoutCount(ids["n2"]); got != 2 {
		t.Errorf("FanoutCount(n2) = %d, want 2", got)
	}
	// Topological order: each gate after its combinational fanins.
	pos := make(map[int32]int)
	for i, g := range c.Order() {
		pos[g] = i
	}
	for i := range c.Gates {
		g := int32(i)
		if c.Gates[i].Type == DFF {
			continue
		}
		for _, f := range c.Gates[i].Fanin {
			if pos[f] >= pos[g] {
				t.Errorf("gate %d ordered before its fanin %d", g, f)
			}
		}
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	b := NewBuilder("cycle")
	a := b.Input("a")
	g1 := b.Gate(And, "g1", a, a) // placeholder; patched into a cycle
	g2 := b.Gate(Or, "g2", g1, a)
	b.SetFanin(g1, a, g2)
	b.Output(g2)
	if _, err := b.Build(); err == nil {
		t.Fatalf("Build accepted a combinational cycle")
	}
}

func TestSequentialLoopAllowed(t *testing.T) {
	// A loop through a flip-flop is legal.
	c, _ := buildSeq(t)
	if c == nil {
		t.Fatal("sequential loop rejected")
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() error
	}{
		{"empty circuit", func() error {
			_, err := NewBuilder("e").Build()
			return err
		}},
		{"NOT with two fanins", func() error {
			b := NewBuilder("e")
			a := b.Input("a")
			x := b.Gate(Not, "x", a, a)
			b.Output(x)
			_, err := b.Build()
			return err
		}},
		{"AND with one fanin", func() error {
			b := NewBuilder("e")
			a := b.Input("a")
			x := b.Gate(And, "x", a)
			b.Output(x)
			_, err := b.Build()
			return err
		}},
		{"duplicate primary output", func() error {
			b := NewBuilder("e")
			a := b.Input("a")
			x := b.Gate(Not, "x", a)
			b.Output(x)
			b.Output(x)
			_, err := b.Build()
			return err
		}},
		{"fanin out of range", func() error {
			b := NewBuilder("e")
			a := b.Input("a")
			x := b.Gate(Not, "x", a)
			b.SetFanin(x, 99)
			b.Output(x)
			_, err := b.Build()
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.build(); err == nil {
			t.Errorf("%s: Build accepted invalid circuit", tc.name)
		}
	}
}

func TestScanView(t *testing.T) {
	c, ids := buildSeq(t)
	v := NewScanView(c)
	if v.NumInputs() != 3 {
		t.Fatalf("NumInputs = %d, want 3 (a, b, ff)", v.NumInputs())
	}
	if v.NumOutputs() != 2 {
		t.Fatalf("NumOutputs = %d, want 2 (out, ff.D)", v.NumOutputs())
	}
	if v.Inputs[2] != ids["ff"] {
		t.Errorf("pseudo input should be the flip-flop Q")
	}
	if v.Outputs[1] != ids["n2"] {
		t.Errorf("pseudo output should be the flip-flop D line (n2)")
	}
}

func TestCombinationalize(t *testing.T) {
	c, ids := buildSeq(t)
	comb := Combinationalize(c)
	if len(comb.DFFs) != 0 {
		t.Fatalf("combinationalized circuit still has flip-flops")
	}
	if got, want := len(comb.PIs), 3; got != want {
		t.Fatalf("comb PIs = %d, want %d", got, want)
	}
	if got, want := len(comb.POs), 2; got != want {
		t.Fatalf("comb POs = %d, want %d", got, want)
	}
	// Gate indices preserved; the flip-flop is now an input.
	if comb.Gates[ids["ff"]].Type != Input {
		t.Errorf("flip-flop not converted to input")
	}
	// The appended buffer observes n2.
	buf := comb.POs[1]
	if comb.Gates[buf].Type != Buf || comb.Gates[buf].Fanin[0] != ids["n2"] {
		t.Errorf("pseudo output buffer wrong: %+v", comb.Gates[buf])
	}
	// Input/output order matches ScanView of the original.
	v := NewScanView(c)
	for i, g := range v.Inputs {
		if comb.PIs[i] != g {
			t.Errorf("comb input %d = gate %d, want %d", i, comb.PIs[i], g)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	c, ids := buildSeq(t)
	cl := c.Clone()
	cl.Gates[ids["n1"]].Fanin[0] = ids["b"]
	if c.Gates[ids["n1"]].Fanin[0] == ids["b"] {
		t.Fatalf("Clone shares fanin storage")
	}
}

func TestGateByNameAndStats(t *testing.T) {
	c, ids := buildSeq(t)
	if got := c.GateByName("n2"); got != ids["n2"] {
		t.Errorf("GateByName(n2) = %d, want %d", got, ids["n2"])
	}
	if got := c.GateByName("nope"); got != -1 {
		t.Errorf("GateByName(nope) = %d, want -1", got)
	}
	st := c.Stat()
	if st.PIs != 2 || st.POs != 1 || st.DFFs != 1 || st.LogicGates != 3 || st.Levels != 3 {
		t.Errorf("Stat = %+v", st)
	}
}

// TestLevelsAndOrderOnSyntheticQuick property-checks structural invariants
// on randomly generated circuits: every gate's level exceeds its
// combinational fanins' levels, the topological order respects edges, and
// fanout is the exact transpose of fanin.
func TestLevelsAndOrderOnSyntheticQuick(t *testing.T) {
	f := func(seed int64) bool {
		b := NewBuilder("q")
		// Small random circuit driven directly by the seed.
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int((rng >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		var signals []int32
		for i := 0; i < 3; i++ {
			signals = append(signals, b.Input(""))
		}
		for i := 0; i < 12; i++ {
			t1 := []GateType{And, Or, Nand, Nor, Xor, Not, Buf}[next(7)]
			nf := t1.MinFanin()
			fanin := make([]int32, 0, nf)
			for len(fanin) < nf || (nf >= 2 && len(fanin) < 2) {
				fanin = append(fanin, signals[next(len(signals))])
			}
			signals = append(signals, b.Gate(t1, "", fanin...))
		}
		b.Output(signals[len(signals)-1])
		c, err := b.Build()
		if err != nil {
			return false
		}
		pos := make(map[int32]int)
		for i, g := range c.Order() {
			pos[g] = i
		}
		for i := range c.Gates {
			g := int32(i)
			if c.Gates[i].Type == DFF {
				continue
			}
			for pin, d := range c.Gates[i].Fanin {
				if c.Level(g) <= c.Level(d) {
					return false
				}
				if pos[d] >= pos[g] {
					return false
				}
				// Fanout must list g once per pin driven by d.
				count := 0
				for _, s := range c.Fanout(d) {
					if s == g {
						count++
					}
				}
				want := 0
				for _, dd := range c.Gates[i].Fanin {
					if dd == d {
						want++
					}
				}
				_ = pin
				if count != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
