package netlist

import "testing"

func TestSCOAPBasicGates(t *testing.T) {
	b := NewBuilder("sc")
	a := b.Input("a")
	bb := b.Input("b")
	and := b.Gate(And, "and", a, bb)
	or := b.Gate(Or, "or", a, bb)
	inv := b.Gate(Not, "inv", and)
	b.Output(inv)
	b.Output(or)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeSCOAP(c)
	// Inputs: CC0 = CC1 = 1.
	if s.CC0[a] != 1 || s.CC1[a] != 1 {
		t.Errorf("input controllability = %d/%d, want 1/1", s.CC0[a], s.CC1[a])
	}
	// AND: CC0 = min(1,1)+1 = 2; CC1 = 1+1+1 = 3.
	if s.CC0[and] != 2 || s.CC1[and] != 3 {
		t.Errorf("AND controllability = %d/%d, want 2/3", s.CC0[and], s.CC1[and])
	}
	// OR mirrors AND.
	if s.CC0[or] != 3 || s.CC1[or] != 2 {
		t.Errorf("OR controllability = %d/%d, want 3/2", s.CC0[or], s.CC1[or])
	}
	// NOT swaps: CC0(inv) = CC1(and)+1 = 4.
	if s.CC0[inv] != 4 || s.CC1[inv] != 3 {
		t.Errorf("NOT controllability = %d/%d, want 4/3", s.CC0[inv], s.CC1[inv])
	}
	// Observability: inv is a PO -> CO 0; and observes through inv: 0+1=1.
	if s.CO[inv] != 0 {
		t.Errorf("CO(po) = %d, want 0", s.CO[inv])
	}
	if s.CO[and] != 1 {
		t.Errorf("CO(and) = %d, want 1", s.CO[and])
	}
	// a observes through AND (needs b=1: CC1(b)=1): 1+1+1 = 3, or through
	// OR (PO, needs b=0): 0+1+1 = 2 -> min 2.
	if s.CO[a] != 2 {
		t.Errorf("CO(a) = %d, want 2", s.CO[a])
	}
}

func TestSCOAPXorParity(t *testing.T) {
	b := NewBuilder("x")
	a := b.Input("a")
	bb := b.Input("b")
	x := b.Gate(Xor, "x", a, bb)
	b.Output(x)
	c, _ := b.Build()
	s := ComputeSCOAP(c)
	// XOR CC0: even parity: both 0 (1+1) or both 1 (1+1) -> 2+1 = 3.
	// CC1: odd parity -> 2+1 = 3.
	if s.CC0[x] != 3 || s.CC1[x] != 3 {
		t.Errorf("XOR controllability = %d/%d, want 3/3", s.CC0[x], s.CC1[x])
	}
}

func TestSCOAPConstants(t *testing.T) {
	b := NewBuilder("k")
	a := b.Input("a")
	k := b.Const("k1", 1)
	and := b.Gate(And, "and", a, k)
	b.Output(and)
	c, _ := b.Build()
	s := ComputeSCOAP(c)
	if s.CC1[k] != 0 {
		t.Errorf("CC1(const1) = %d, want 0", s.CC1[k])
	}
	if s.CC0[k] < scoapInf {
		t.Errorf("CC0(const1) = %d, want saturated", s.CC0[k])
	}
	// AND with a constant-1 side input: CC1 = CC1(a)+CC1(k)+1 = 2.
	if s.CC1[and] != 2 {
		t.Errorf("CC1(and) = %d, want 2", s.CC1[and])
	}
}

func TestSCOAPScanBoundaries(t *testing.T) {
	b := NewBuilder("ffsc")
	a := b.Input("a")
	inv := b.Gate(Not, "inv", a)
	ff := b.Gate(DFF, "ff", inv)
	out := b.Gate(Buf, "out", ff)
	b.Output(out)
	c, _ := b.Build()
	s := ComputeSCOAP(c)
	// Flip-flop output is a pseudo input.
	if s.CC0[ff] != 1 || s.CC1[ff] != 1 {
		t.Errorf("flip-flop controllability = %d/%d, want 1/1", s.CC0[ff], s.CC1[ff])
	}
	// The D line (inv) is a pseudo output.
	if s.CO[inv] != 0 {
		t.Errorf("CO(D line) = %d, want 0", s.CO[inv])
	}
}

func TestHardestLines(t *testing.T) {
	b := NewBuilder("h")
	a := b.Input("a")
	prev := a
	for i := 0; i < 6; i++ {
		prev = b.Gate(Not, "", prev)
	}
	deep := prev
	b.Output(b.Gate(And, "po", a, deep))
	c, _ := b.Build()
	s := ComputeSCOAP(c)
	top := s.HardestLines(3)
	if len(top) != 3 {
		t.Fatalf("HardestLines returned %d entries", len(top))
	}
	// The hardest line should be deeper than the input.
	if c.Level(top[0]) == 0 {
		t.Errorf("hardest line is a source; expected deep logic")
	}
}
