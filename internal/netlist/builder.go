package netlist

import "fmt"

// Builder constructs circuits incrementally. Gate indices returned by Add*
// methods are stable and identify the gate in the finished Circuit.
type Builder struct {
	c       Circuit
	names   map[string]int32
	autoSeq int
}

// NewBuilder returns a Builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{c: Circuit{Name: name}, names: make(map[string]int32)}
}

// NumGates returns the number of gates added so far.
func (b *Builder) NumGates() int { return len(b.c.Gates) }

func (b *Builder) add(name string, t GateType, fanin ...int32) int32 {
	if name == "" {
		b.autoSeq++
		name = fmt.Sprintf("n%d", b.autoSeq)
	}
	id := int32(len(b.c.Gates))
	b.c.Gates = append(b.c.Gates, Gate{Name: name, Type: t, Fanin: fanin})
	if _, dup := b.names[name]; !dup {
		b.names[name] = id
	}
	return id
}

// Input adds a primary input. An empty name is auto-generated.
func (b *Builder) Input(name string) int32 { return b.add(name, Input) }

// DFF adds a D flip-flop with the given D-line driver.
func (b *Builder) DFF(name string, d int32) int32 { return b.add(name, DFF, d) }

// Gate adds a logic gate of type t driven by the given fanins.
func (b *Builder) Gate(t GateType, name string, fanin ...int32) int32 {
	return b.add(name, t, fanin...)
}

// Const adds a constant driver for the given bit.
func (b *Builder) Const(name string, bit int) int32 {
	t := Const0
	if bit != 0 {
		t = Const1
	}
	return b.add(name, t)
}

// SetFanin replaces the fanin list of an already-added gate. Parsers use it
// when a format references signals before they are defined.
func (b *Builder) SetFanin(g int32, fanin ...int32) { b.c.Gates[g].Fanin = fanin }

// Output marks an existing gate as a primary output.
func (b *Builder) Output(g int32) { b.c.POs = append(b.c.POs, g) }

// Lookup returns the index of the first gate added with the given name,
// or -1 if none exists.
func (b *Builder) Lookup(name string) int32 {
	if id, ok := b.names[name]; ok {
		return id
	}
	return -1
}

// Build validates the circuit and returns it. The Builder must not be used
// afterwards.
func (b *Builder) Build() (*Circuit, error) {
	c := b.c
	if err := c.finalize(); err != nil {
		return nil, err
	}
	return &c, nil
}

// MustBuild is Build for circuits known to be valid; it panics on error.
func (b *Builder) MustBuild() *Circuit {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}
