package netlist

import "fmt"

// Combinationalize returns the full-scan combinational equivalent of c:
// every D flip-flop is replaced in place by an Input gate (its Q line is a
// pseudo primary input), and for every flip-flop a buffer gate is appended
// that observes its D line as a pseudo primary output. Gate indices of the
// original circuit are preserved; the appended buffers occupy new indices.
//
// Input order of the result is original PIs followed by flip-flop Qs in
// declaration order, and output order is original POs followed by D-line
// buffers in declaration order — exactly matching ScanView on the original
// circuit, so test vectors and responses are interchangeable between the
// two representations.
func Combinationalize(c *Circuit) *Circuit {
	n := &Circuit{Name: c.Name}
	n.Gates = make([]Gate, len(c.Gates), len(c.Gates)+len(c.DFFs))
	for i, g := range c.Gates {
		ng := Gate{Name: g.Name, Type: g.Type, Fanin: append([]int32(nil), g.Fanin...)}
		if g.Type == DFF {
			ng = Gate{Name: g.Name, Type: Input}
		}
		n.Gates[i] = ng
	}
	n.POs = append([]int32(nil), c.POs...)
	for _, ff := range c.DFFs {
		d := c.Gates[ff].Fanin[0]
		buf := int32(len(n.Gates))
		n.Gates = append(n.Gates, Gate{
			Name:  fmt.Sprintf("%s.D", c.Gates[ff].Name),
			Type:  Buf,
			Fanin: []int32{d},
		})
		n.POs = append(n.POs, buf)
	}
	if err := n.finalize(); err != nil {
		// c was valid and scan conversion cannot create cycles.
		panic("netlist: Combinationalize: " + err.Error())
	}
	// finalize lists inputs in gate-index order; restore the documented
	// PIs-then-flip-flops order (they coincide unless a flip-flop was
	// declared before a primary input).
	n.PIs = n.PIs[:0]
	n.PIs = append(n.PIs, c.PIs...)
	n.PIs = append(n.PIs, c.DFFs...)
	return n
}
