package netlist

// ScanView is the full-scan interpretation of a sequential circuit: every
// flip-flop becomes a pseudo primary input (its Q output is directly
// controllable through the scan chain) and a pseudo primary output (its D
// line is directly observable). Test vectors and responses are defined over
// the combined input and output lists. For a purely combinational circuit
// the view degenerates to the plain PI/PO lists.
type ScanView struct {
	C *Circuit
	// Inputs lists the controllable source gates: primary inputs followed by
	// flip-flop outputs (pseudo inputs), in declaration order.
	Inputs []int32
	// Outputs lists the observable lines: primary outputs followed by
	// flip-flop D lines (pseudo outputs), in declaration order.
	Outputs []int32
}

// NewScanView builds the full-scan view of c.
func NewScanView(c *Circuit) *ScanView {
	v := &ScanView{C: c}
	v.Inputs = make([]int32, 0, len(c.PIs)+len(c.DFFs))
	v.Inputs = append(v.Inputs, c.PIs...)
	v.Inputs = append(v.Inputs, c.DFFs...)
	v.Outputs = make([]int32, 0, len(c.POs)+len(c.DFFs))
	v.Outputs = append(v.Outputs, c.POs...)
	for _, ff := range c.DFFs {
		v.Outputs = append(v.Outputs, c.Gates[ff].Fanin[0])
	}
	return v
}

// NumInputs returns the test-vector width (PIs + pseudo PIs).
func (v *ScanView) NumInputs() int { return len(v.Inputs) }

// NumOutputs returns the response width (POs + pseudo POs).
func (v *ScanView) NumOutputs() int { return len(v.Outputs) }
