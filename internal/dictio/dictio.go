// Package dictio defines the versioned on-disk artifact format for
// published dictionaries — the deployable unit cmd/sdd -publish writes
// and cmd/diagnose / internal/serve load. An artifact wraps a compiled
// dictionary (core.Compiled) with the provenance a diagnosis service
// needs (circuit name, test-set type, seed, per-fault class names) and
// enough redundancy to detect damage: every section carries a CRC32C,
// so truncation, torn tails, and single bit-flips are all detected at
// load time instead of silently corrupting diagnoses.
//
// Layout (all integers little-endian):
//
//	preamble   magic u32 ("SDDA") · format version u32 · section count u32
//	section ×n id u32 · payload length u64 · payload · CRC32C(payload) u32
//
// Section 1 is the JSON header, section 2 the compiled-dictionary
// payload (core.Compiled wire format). The decoder rejects unknown
// section ids, short files, trailing garbage, checksum mismatches, and
// implausible lengths with errors wrapping ErrCorruptArtifact; files
// written by a newer format version are rejected with
// ErrArtifactVersion so the operator upgrades instead of misparsing.
// The decoder never panics on hostile bytes.
//
// Artifacts are written only through core.AtomicWriteFile, so a crashed
// publish leaves the previous artifact (or nothing) at the destination,
// never a torn file. The CRCs exist for the failure modes atomic
// rename cannot exclude: storage bit rot, partial copies between
// machines, and non-atomic transports.
package dictio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"

	"sddict/internal/core"
	"sddict/internal/faultfs"
	"sddict/internal/logic"
)

// Sentinel errors, matched with errors.Is.
var (
	// ErrCorruptArtifact marks any structural damage: truncation, bad
	// magic, checksum mismatch, trailing bytes, implausible dimensions.
	ErrCorruptArtifact = errors.New("dictio: corrupt artifact")
	// ErrArtifactVersion marks a structurally plausible artifact written
	// by a different (typically newer) format version.
	ErrArtifactVersion = errors.New("dictio: unsupported artifact format version")
)

const (
	// Magic identifies an artifact file; it differs from the bare
	// compiled-dictionary magic ("SDDC") so loaders can sniff which of
	// the two formats a file holds.
	Magic uint32 = 0x41444453 // "SDDA" as little-endian bytes

	// FormatVersion is the version this build writes and reads.
	FormatVersion uint32 = 1

	// Decoder sanity bounds: a corrupt length field must fail fast, not
	// drive a multi-gigabyte allocation.
	maxSections     = 16
	maxSectionBytes = 1 << 30
)

// Section ids. Unknown ids are a decode error: forward compatibility is
// carried by FormatVersion, not by silently skipped sections.
const (
	secHeader uint32 = 1
	secDict   uint32 = 2
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header is the artifact's provenance record (JSON section 1). Faults
// is the fault-class table: Faults[i] names the fault behind dictionary
// row i (e.g. "g42 s-a-1"), so a diagnosis can report circuit-level
// names without the netlist at hand. TestChecksum is the test-set
// identity: a CRC32C over the baseline output vectors and dimensions,
// so two artifacts built from the same circuit can be told apart when
// their test sets differ (the case store keys recall on it, and
// correlation uses it to spot the same defect class surviving a
// test-set revision). New is the only writer; Decode recomputes it for
// the cross-check and fills it in for artifacts published before the
// field existed.
type Header struct {
	Circuit      string   `json:"circuit"`
	TestSet      string   `json:"test_set"`
	TestChecksum string   `json:"test_checksum,omitempty"`
	Seed         int64    `json:"seed"`
	Kind         string   `json:"kind"`
	Tests        int      `json:"tests"`
	Outputs      int      `json:"outputs"`
	Faults       []string `json:"faults"`
}

// Artifact is one decoded dictionary artifact. Checksum is the CRC32C
// of the complete encoded byte stream — the content identity the serve
// registry keys its cache on (path + checksum).
type Artifact struct {
	Header   Header
	Dict     *core.Compiled
	Checksum uint32
}

// New assembles an artifact from a compiled dictionary and its
// provenance, cross-checking the header dimensions against the payload.
func New(dict *core.Compiled, h Header) (*Artifact, error) {
	h.Kind = dict.Kind.String()
	h.Tests = dict.NumTests
	h.Outputs = dict.Outputs
	h.TestChecksum = TestSetChecksum(dict)
	if len(h.Faults) != len(dict.Rows) {
		return nil, fmt.Errorf("dictio: %d fault names for %d dictionary rows", len(h.Faults), len(dict.Rows))
	}
	return &Artifact{Header: h, Dict: dict}, nil
}

// TestSetChecksum computes the test-set identity of a compiled
// dictionary: a CRC32C over the dimensions and every baseline output
// vector (fault-free, baseline, and the two-baseline extension when
// present), rendered as the same 8-hex-digit string the artifact
// checksum uses. Two dictionaries share a TestSetChecksum exactly when
// they were built against the same tests with the same expected
// outputs — the identity recall and correlation key on.
func TestSetChecksum(dict *core.Compiled) string {
	sum := crc32.New(castagnoli)
	var b [8]byte
	le := binary.LittleEndian
	word := func(w uint64) {
		le.PutUint64(b[:], w)
		sum.Write(b[:])
	}
	word(uint64(dict.NumTests))
	word(uint64(dict.Outputs))
	vecs := func(vs []logic.BitVec) {
		for _, v := range vs {
			for _, w := range v {
				word(w)
			}
		}
	}
	vecs(dict.FaultFree)
	vecs(dict.Baseline)
	if dict.ExtraBaseline != nil {
		word(1) // domain-separate the two-baseline layout
		vecs(dict.ExtraBaseline)
	}
	return fmt.Sprintf("%08x", sum.Sum32())
}

// corruptf wraps ErrCorruptArtifact with context.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("dictio: "+format+": %w", append(args, ErrCorruptArtifact)...)
}

// Encode writes the artifact to w and records the stream's CRC32C in
// a.Checksum — the same identity Decode computes, so a publish can
// report the checksum a later load will verify against.
func (a *Artifact) Encode(w io.Writer) error {
	hdr, err := json.Marshal(a.Header)
	if err != nil {
		return fmt.Errorf("dictio: encoding header: %w", err)
	}
	var dict bytes.Buffer
	if _, err := a.Dict.WriteTo(&dict); err != nil {
		return fmt.Errorf("dictio: encoding dictionary payload: %w", err)
	}

	sum := crc32.New(castagnoli)
	out := io.MultiWriter(w, sum)
	le := binary.LittleEndian
	var preamble [12]byte
	le.PutUint32(preamble[0:4], Magic)
	le.PutUint32(preamble[4:8], FormatVersion)
	le.PutUint32(preamble[8:12], 2) // section count
	if _, err := out.Write(preamble[:]); err != nil {
		return fmt.Errorf("dictio: writing preamble: %w", err)
	}
	for _, sec := range []struct {
		id      uint32
		payload []byte
	}{
		{secHeader, hdr},
		{secDict, dict.Bytes()},
	} {
		var sh [12]byte
		le.PutUint32(sh[0:4], sec.id)
		le.PutUint64(sh[4:12], uint64(len(sec.payload)))
		if _, err := out.Write(sh[:]); err != nil {
			return fmt.Errorf("dictio: writing section %d: %w", sec.id, err)
		}
		if _, err := out.Write(sec.payload); err != nil {
			return fmt.Errorf("dictio: writing section %d: %w", sec.id, err)
		}
		var crcb [4]byte
		le.PutUint32(crcb[:], crc32.Checksum(sec.payload, castagnoli))
		if _, err := out.Write(crcb[:]); err != nil {
			return fmt.Errorf("dictio: writing section %d checksum: %w", sec.id, err)
		}
	}
	a.Checksum = sum.Sum32()
	return nil
}

// Save publishes the artifact at path through core.AtomicWriteFile: a
// crash mid-publish leaves the destination untouched.
func (a *Artifact) Save(path string) error {
	if err := core.AtomicWriteFile(path, a.Encode); err != nil {
		return fmt.Errorf("dictio: publishing %s: %w", path, err)
	}
	return nil
}

// readFull fills buf from r, mapping every flavour of a short read onto
// ErrCorruptArtifact: the format has no optional trailing data, so
// running out of bytes means the file was truncated or torn. Genuine
// I/O failures (not EOF) keep their own identity so a flaky-media error
// is distinguishable from a corruption verdict.
func readFull(r io.Reader, buf []byte, what string) error {
	_, err := io.ReadFull(r, buf)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return corruptf("truncated in %s", what)
	default:
		return fmt.Errorf("dictio: reading %s: %w", what, err)
	}
}

// Decode parses one artifact from r, verifying every section checksum
// before trusting its payload. It returns wrapped sentinels — never
// panics — on damaged or foreign input.
func Decode(r io.Reader) (*Artifact, error) {
	sum := crc32.New(castagnoli)
	cr := io.TeeReader(r, sum)
	le := binary.LittleEndian

	var preamble [12]byte
	if err := readFull(cr, preamble[:], "preamble"); err != nil {
		return nil, err
	}
	if m := le.Uint32(preamble[0:4]); m != Magic {
		return nil, corruptf("bad magic %#08x (want %#08x)", m, Magic)
	}
	if v := le.Uint32(preamble[4:8]); v != FormatVersion {
		return nil, fmt.Errorf("dictio: artifact format version %d, this build reads version %d: %w",
			v, FormatVersion, ErrArtifactVersion)
	}
	nsec := le.Uint32(preamble[8:12])
	if nsec == 0 || nsec > maxSections {
		return nil, corruptf("implausible section count %d", nsec)
	}

	var hdrPayload, dictPayload []byte
	for i := uint32(0); i < nsec; i++ {
		var sh [12]byte
		if err := readFull(cr, sh[:], "section header"); err != nil {
			return nil, err
		}
		id := le.Uint32(sh[0:4])
		length := le.Uint64(sh[4:12])
		if length > maxSectionBytes {
			return nil, corruptf("section %d claims %d bytes", id, length)
		}
		// Copy incrementally instead of allocating `length` upfront: a
		// bit-flipped length field below the cap must fail after the real
		// bytes run out, not drive a gigabyte allocation first.
		var pbuf bytes.Buffer
		switch _, err := io.CopyN(&pbuf, cr, int64(length)); {
		case err == nil:
		case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
			return nil, corruptf("truncated in section %d payload", id)
		default:
			return nil, fmt.Errorf("dictio: reading section %d payload: %w", id, err)
		}
		payload := pbuf.Bytes()
		var crcb [4]byte
		if err := readFull(cr, crcb[:], fmt.Sprintf("section %d checksum", id)); err != nil {
			return nil, err
		}
		if got, want := crc32.Checksum(payload, castagnoli), le.Uint32(crcb[:]); got != want {
			return nil, corruptf("section %d checksum mismatch: computed %#08x, stored %#08x", id, got, want)
		}
		switch id {
		case secHeader:
			hdrPayload = payload
		case secDict:
			dictPayload = payload
		default:
			return nil, corruptf("unknown section id %d", id)
		}
	}
	var tail [1]byte
	if n, _ := cr.Read(tail[:]); n != 0 {
		return nil, corruptf("trailing bytes after final section")
	}
	if hdrPayload == nil {
		return nil, corruptf("missing header section")
	}
	if dictPayload == nil {
		return nil, corruptf("missing dictionary section")
	}

	var h Header
	if err := json.Unmarshal(hdrPayload, &h); err != nil {
		return nil, fmt.Errorf("dictio: parsing header (checksum passed, encoder bug?): %w: %w", err, ErrCorruptArtifact)
	}
	dict, err := core.ReadCompiled(bytes.NewReader(dictPayload))
	if err != nil {
		return nil, fmt.Errorf("dictio: parsing dictionary payload: %w: %w", err, ErrCorruptArtifact)
	}
	// Cross-check the two sections against each other: each CRC only
	// vouches for its own bytes, not for their agreement.
	switch {
	case h.Tests != dict.NumTests:
		return nil, corruptf("header says %d tests, dictionary has %d", h.Tests, dict.NumTests)
	case h.Outputs != dict.Outputs:
		return nil, corruptf("header says %d outputs, dictionary has %d", h.Outputs, dict.Outputs)
	case len(h.Faults) != len(dict.Rows):
		return nil, corruptf("header names %d faults, dictionary has %d rows", len(h.Faults), len(dict.Rows))
	case h.Kind != dict.Kind.String():
		return nil, corruptf("header kind %q, dictionary kind %q", h.Kind, dict.Kind)
	}
	switch tc := TestSetChecksum(dict); {
	case h.TestChecksum == "":
		// Published before the field existed: adopt the computed
		// identity in memory so downstream consumers always see one.
		h.TestChecksum = tc
	case h.TestChecksum != tc:
		return nil, corruptf("header test-set checksum %s, dictionary baselines hash to %s", h.TestChecksum, tc)
	}
	return &Artifact{Header: h, Dict: dict, Checksum: sum.Sum32()}, nil
}

// Load reads and verifies the artifact at path.
func Load(path string) (*Artifact, error) { return LoadFS(faultfs.OS, path) }

// LoadFS is Load through an injectable filesystem — the seam the
// fault-injection tests use to fail reads mid-stream.
func LoadFS(fsys faultfs.FS, path string) (*Artifact, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dictio: opening %s: %w", path, err)
	}
	defer f.Close()
	a, err := Decode(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// SniffFile reports whether the file at path starts with the artifact
// magic — how cmd/diagnose tells a published artifact from a bare
// compiled dictionary (sdd -save-dict). A file too short to carry any
// magic number (zero-length, or truncated inside the first four bytes)
// is neither format and can only be damage, so the verdict is a wrapped
// ErrCorruptArtifact — not a silent "false" that would route the caller
// into the wrong loader and surface as a raw io error, and never a
// panic. Genuine read failures (flaky media) keep their own identity.
func SniffFile(fsys faultfs.FS, path string) (bool, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return false, fmt.Errorf("dictio: opening %s: %w", path, err)
	}
	defer f.Close()
	var b [4]byte
	switch _, err := io.ReadFull(f, b[:]); {
	case err == nil:
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return false, fmt.Errorf("%s: %w", path, corruptf("file too short to carry a magic number"))
	default:
		return false, fmt.Errorf("dictio: sniffing %s: %w", path, err)
	}
	return binary.LittleEndian.Uint32(b[:]) == Magic, nil
}

// ParseVector parses one 0/1 response line into a bit vector of exactly
// `outputs` bits — the ATE log format shared by cmd/diagnose,
// cmd/sddload and the /diagnose endpoint.
func ParseVector(s string, outputs int) (logic.BitVec, error) {
	if len(s) != outputs {
		return nil, fmt.Errorf("dictio: vector has %d bits, dictionary has %d outputs", len(s), outputs)
	}
	v := logic.NewBitVec(outputs)
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			v.Set(i, 1)
		default:
			return nil, fmt.Errorf("dictio: invalid character %q in response vector", c)
		}
	}
	return v, nil
}

// ParseVectors parses a batch of response lines (one per test).
func ParseVectors(lines []string, outputs int) ([]logic.BitVec, error) {
	out := make([]logic.BitVec, len(lines))
	for i, s := range lines {
		v, err := ParseVector(strings.TrimSpace(s), outputs)
		if err != nil {
			return nil, fmt.Errorf("response %d: %w", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

// ParseResponses reads a whole observed-responses file (one 0/1 vector
// per line, blank lines skipped), as written by sdd -dump-responses.
func ParseResponses(r io.Reader, outputs int) ([]logic.BitVec, error) {
	sc := bufio.NewScanner(r)
	var out []logic.BitVec
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" {
			continue
		}
		v, err := ParseVector(txt, outputs)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dictio: reading responses: %w", err)
	}
	return out, nil
}
