package dictio_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sddict/internal/core"
	"sddict/internal/dictio"
	"sddict/internal/faultfs"
	"sddict/internal/logic"
	"sddict/internal/resp"
)

func vec(t *testing.T, s string) logic.BitVec {
	t.Helper()
	v, err := dictio.ParseVector(s, len(s))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// testArtifact builds a small pass/fail artifact: 3 faults, 2 tests,
// 3 outputs — enough structure that every section is non-trivial.
func testArtifact(t *testing.T) *dictio.Artifact {
	t.Helper()
	ff := []logic.BitVec{vec(t, "000"), vec(t, "111")}
	responses := [][]logic.BitVec{
		{vec(t, "001"), vec(t, "000"), vec(t, "010")},
		{vec(t, "111"), vec(t, "011"), vec(t, "111")},
	}
	m := resp.FromResponses(3, ff, responses)
	compiled, err := core.NewPassFail(m).Compile()
	if err != nil {
		t.Fatal(err)
	}
	a, err := dictio.New(compiled, dictio.Header{
		Circuit: "toy", TestSet: "exhaustive", Seed: 7,
		Faults: []string{"g0 s-a-0", "g1 s-a-1", "g2 s-a-0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func encode(t *testing.T, a *dictio.Artifact) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestArtifactRoundTrip(t *testing.T) {
	a := testArtifact(t)
	data := encode(t, a)

	got, err := dictio.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Header.Circuit != "toy" || got.Header.Seed != 7 || got.Header.TestSet != "exhaustive" {
		t.Errorf("header round trip: %+v", got.Header)
	}
	if len(got.Header.Faults) != 3 || got.Header.Faults[1] != "g1 s-a-1" {
		t.Errorf("fault-class table round trip: %v", got.Header.Faults)
	}
	if got.Header.Kind != a.Dict.Kind.String() || got.Header.Tests != 2 || got.Header.Outputs != 3 {
		t.Errorf("derived header fields: %+v", got.Header)
	}
	if got.Checksum != a.Checksum {
		t.Errorf("decode checksum %#08x != encode checksum %#08x", got.Checksum, a.Checksum)
	}
	if len(got.Dict.Rows) != len(a.Dict.Rows) {
		t.Fatalf("row count: %d != %d", len(got.Dict.Rows), len(a.Dict.Rows))
	}
	for i := range got.Dict.Rows {
		if !got.Dict.Rows[i].Equal(a.Dict.Rows[i]) {
			t.Errorf("row %d differs after round trip", i)
		}
	}
	for j := range got.Dict.Baseline {
		if !got.Dict.Baseline[j].Equal(a.Dict.Baseline[j]) {
			t.Errorf("baseline %d differs after round trip", j)
		}
	}
}

func TestArtifactSaveLoad(t *testing.T) {
	a := testArtifact(t)
	path := filepath.Join(t.TempDir(), "toy.sdda")
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := dictio.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum != a.Checksum {
		t.Errorf("loaded checksum %#08x, published %#08x", got.Checksum, a.Checksum)
	}
	ok, err := dictio.SniffFile(faultfs.OS, path)
	if err != nil || !ok {
		t.Errorf("SniffFile = %v, %v; want true", ok, err)
	}
}

// wantDamageSentinel asserts the decode verdict on damaged bytes: an
// error wrapping one of the two sentinels, never a silent success. A
// decoder panic fails the test run outright, which is the "never
// panics" contract.
func wantDamageSentinel(t *testing.T, data []byte, what string) {
	t.Helper()
	_, err := dictio.Decode(bytes.NewReader(data))
	if err == nil {
		t.Fatalf("%s: decode accepted damaged artifact", what)
	}
	if !errors.Is(err, dictio.ErrCorruptArtifact) && !errors.Is(err, dictio.ErrArtifactVersion) {
		t.Fatalf("%s: err = %v, want ErrCorruptArtifact or ErrArtifactVersion", what, err)
	}
}

// TestArtifactTruncationMatrix truncates the artifact at every possible
// length — which covers every section boundary and every interior
// offset — and requires a wrapped sentinel each time.
func TestArtifactTruncationMatrix(t *testing.T) {
	data := encode(t, testArtifact(t))
	for size := 0; size < len(data); size++ {
		_, err := dictio.Decode(bytes.NewReader(data[:size]))
		if err == nil {
			t.Fatalf("decode accepted artifact truncated to %d of %d bytes", size, len(data))
		}
		if !errors.Is(err, dictio.ErrCorruptArtifact) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCorruptArtifact", size, err)
		}
	}
}

// TestArtifactBitFlipMatrix flips every single bit of the encoded
// artifact, one at a time. Every flip must be detected: payload flips by
// the section CRCs, structural flips (magic, counts, lengths, ids, the
// CRC fields themselves) by validation. Flips inside the version field
// legitimately surface as ErrArtifactVersion.
func TestArtifactBitFlipMatrix(t *testing.T) {
	data := encode(t, testArtifact(t))
	for bit := 0; bit < len(data)*8; bit++ {
		mut := bytes.Clone(data)
		mut[bit/8] ^= 1 << uint(bit%8)
		wantDamageSentinel(t, mut, "bit flip")
	}
}

func TestArtifactWrongMagic(t *testing.T) {
	data := encode(t, testArtifact(t))
	copy(data[0:4], "JUNK")
	_, err := dictio.Decode(bytes.NewReader(data))
	if !errors.Is(err, dictio.ErrCorruptArtifact) {
		t.Fatalf("wrong magic: err = %v, want ErrCorruptArtifact", err)
	}
}

func TestArtifactFutureVersion(t *testing.T) {
	data := encode(t, testArtifact(t))
	binary.LittleEndian.PutUint32(data[4:8], dictio.FormatVersion+1)
	_, err := dictio.Decode(bytes.NewReader(data))
	if !errors.Is(err, dictio.ErrArtifactVersion) {
		t.Fatalf("future version: err = %v, want ErrArtifactVersion", err)
	}
	if errors.Is(err, dictio.ErrCorruptArtifact) {
		t.Fatalf("future version misreported as corruption: %v", err)
	}
}

func TestArtifactUnknownSection(t *testing.T) {
	data := encode(t, testArtifact(t))
	// Byte 12 is the first section's id field (id 1, the header).
	data[12] = 9
	wantDamageSentinel(t, data, "unknown section id")
}

func TestArtifactTrailingBytes(t *testing.T) {
	data := encode(t, testArtifact(t))
	data = append(data, 0x00)
	_, err := dictio.Decode(bytes.NewReader(data))
	if !errors.Is(err, dictio.ErrCorruptArtifact) {
		t.Fatalf("trailing bytes: err = %v, want ErrCorruptArtifact", err)
	}
}

// TestArtifactSectionDisagreement damages the header/payload agreement
// rather than any one section: both CRCs pass, the cross-check must
// object.
func TestArtifactSectionDisagreement(t *testing.T) {
	a := testArtifact(t)
	a.Header.Faults = a.Header.Faults[:2] // one name short, bypassing New's check
	data := encode(t, a)
	wantDamageSentinel(t, data, "header/dict disagreement")
}

// TestTornPublishLeavesNoArtifact drives a publish through
// core.AtomicWriteFile with a writer that tears mid-stream: the publish
// must fail and the destination must keep its previous content.
func TestTornPublishLeavesNoArtifact(t *testing.T) {
	a := testArtifact(t)
	path := filepath.Join(t.TempDir(), "toy.sdda")

	// Fresh destination: the torn publish must not create the file.
	err := core.AtomicWriteFile(path, func(w io.Writer) error {
		return a.Encode(faultfs.Torn(w, 20))
	})
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("torn publish err = %v, want ErrInjected", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("torn publish left a file behind: stat err = %v", err)
	}

	// Existing artifact: the torn re-publish must leave it loadable.
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	err = core.AtomicWriteFile(path, func(w io.Writer) error {
		return a.Encode(faultfs.Torn(w, 20))
	})
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("torn re-publish err = %v, want ErrInjected", err)
	}
	if _, err := dictio.Load(path); err != nil {
		t.Fatalf("previous artifact no longer loads after torn re-publish: %v", err)
	}
}

// TestTornTailDetected writes only a prefix of the encoding directly to
// the destination — the torn tail a non-atomic writer would leave — and
// requires the loader to reject it.
func TestTornTailDetected(t *testing.T) {
	data := encode(t, testArtifact(t))
	path := filepath.Join(t.TempDir(), "torn.sdda")
	err := core.AtomicWriteFile(path, func(w io.Writer) error {
		_, werr := w.Write(data[:len(data)/2])
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = dictio.Load(path)
	if !errors.Is(err, dictio.ErrCorruptArtifact) {
		t.Fatalf("torn tail: err = %v, want ErrCorruptArtifact", err)
	}
}

// TestLoadFSInjectedReadFault distinguishes flaky media from
// corruption: a read failing mid-stream surfaces the injected error, not
// a corruption verdict against a file that is actually intact.
func TestLoadFSInjectedReadFault(t *testing.T) {
	a := testArtifact(t)
	path := filepath.Join(t.TempDir(), "toy.sdda")
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	fsys := faultfs.Flaky(faultfs.OS, 1, info.Size())
	_, err = dictio.LoadFS(fsys, path)
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("LoadFS under flaky media: err = %v, want ErrInjected", err)
	}
	if errors.Is(err, dictio.ErrCorruptArtifact) {
		t.Fatalf("intact artifact misreported as corrupt under flaky media: %v", err)
	}
}

func TestParseVector(t *testing.T) {
	v, err := dictio.ParseVector("0101", 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.Get(0) != 0 || v.Get(1) != 1 || v.Get(2) != 0 || v.Get(3) != 1 {
		t.Errorf("parsed bits wrong: %s", v.String(4))
	}
	if _, err := dictio.ParseVector("01", 4); err == nil {
		t.Error("short vector accepted")
	}
	if _, err := dictio.ParseVector("01x1", 4); err == nil {
		t.Error("invalid character accepted")
	}
}

func TestParseResponses(t *testing.T) {
	in := "010\n\n111\n"
	vs, err := dictio.ParseResponses(strings.NewReader(in), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("parsed %d vectors, want 2", len(vs))
	}
	if vs[1].PopCount() != 3 {
		t.Errorf("second vector: %s", vs[1].String(3))
	}
}
