package dictio_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sddict/internal/core"
	"sddict/internal/dictio"
	"sddict/internal/faultfs"
	"sddict/internal/logic"
	"sddict/internal/resp"
)

func vec(t *testing.T, s string) logic.BitVec {
	t.Helper()
	v, err := dictio.ParseVector(s, len(s))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// testArtifact builds a small pass/fail artifact: 3 faults, 2 tests,
// 3 outputs — enough structure that every section is non-trivial.
func testArtifact(t *testing.T) *dictio.Artifact {
	t.Helper()
	ff := []logic.BitVec{vec(t, "000"), vec(t, "111")}
	responses := [][]logic.BitVec{
		{vec(t, "001"), vec(t, "000"), vec(t, "010")},
		{vec(t, "111"), vec(t, "011"), vec(t, "111")},
	}
	m := resp.FromResponses(3, ff, responses)
	compiled, err := core.NewPassFail(m).Compile()
	if err != nil {
		t.Fatal(err)
	}
	a, err := dictio.New(compiled, dictio.Header{
		Circuit: "toy", TestSet: "exhaustive", Seed: 7,
		Faults: []string{"g0 s-a-0", "g1 s-a-1", "g2 s-a-0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func encode(t *testing.T, a *dictio.Artifact) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestArtifactRoundTrip(t *testing.T) {
	a := testArtifact(t)
	data := encode(t, a)

	got, err := dictio.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Header.Circuit != "toy" || got.Header.Seed != 7 || got.Header.TestSet != "exhaustive" {
		t.Errorf("header round trip: %+v", got.Header)
	}
	if len(got.Header.Faults) != 3 || got.Header.Faults[1] != "g1 s-a-1" {
		t.Errorf("fault-class table round trip: %v", got.Header.Faults)
	}
	if got.Header.Kind != a.Dict.Kind.String() || got.Header.Tests != 2 || got.Header.Outputs != 3 {
		t.Errorf("derived header fields: %+v", got.Header)
	}
	if got.Checksum != a.Checksum {
		t.Errorf("decode checksum %#08x != encode checksum %#08x", got.Checksum, a.Checksum)
	}
	if len(got.Dict.Rows) != len(a.Dict.Rows) {
		t.Fatalf("row count: %d != %d", len(got.Dict.Rows), len(a.Dict.Rows))
	}
	for i := range got.Dict.Rows {
		if !got.Dict.Rows[i].Equal(a.Dict.Rows[i]) {
			t.Errorf("row %d differs after round trip", i)
		}
	}
	for j := range got.Dict.Baseline {
		if !got.Dict.Baseline[j].Equal(a.Dict.Baseline[j]) {
			t.Errorf("baseline %d differs after round trip", j)
		}
	}
}

func TestArtifactSaveLoad(t *testing.T) {
	a := testArtifact(t)
	path := filepath.Join(t.TempDir(), "toy.sdda")
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := dictio.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum != a.Checksum {
		t.Errorf("loaded checksum %#08x, published %#08x", got.Checksum, a.Checksum)
	}
	ok, err := dictio.SniffFile(faultfs.OS, path)
	if err != nil || !ok {
		t.Errorf("SniffFile = %v, %v; want true", ok, err)
	}
}

// wantDamageSentinel asserts the decode verdict on damaged bytes: an
// error wrapping one of the two sentinels, never a silent success. A
// decoder panic fails the test run outright, which is the "never
// panics" contract.
func wantDamageSentinel(t *testing.T, data []byte, what string) {
	t.Helper()
	_, err := dictio.Decode(bytes.NewReader(data))
	if err == nil {
		t.Fatalf("%s: decode accepted damaged artifact", what)
	}
	if !errors.Is(err, dictio.ErrCorruptArtifact) && !errors.Is(err, dictio.ErrArtifactVersion) {
		t.Fatalf("%s: err = %v, want ErrCorruptArtifact or ErrArtifactVersion", what, err)
	}
}

// TestArtifactTruncationMatrix truncates the artifact at every possible
// length — which covers every section boundary and every interior
// offset — and requires a wrapped sentinel each time.
func TestArtifactTruncationMatrix(t *testing.T) {
	data := encode(t, testArtifact(t))
	for size := 0; size < len(data); size++ {
		_, err := dictio.Decode(bytes.NewReader(data[:size]))
		if err == nil {
			t.Fatalf("decode accepted artifact truncated to %d of %d bytes", size, len(data))
		}
		if !errors.Is(err, dictio.ErrCorruptArtifact) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCorruptArtifact", size, err)
		}
	}
}

// TestArtifactBitFlipMatrix flips every single bit of the encoded
// artifact, one at a time. Every flip must be detected: payload flips by
// the section CRCs, structural flips (magic, counts, lengths, ids, the
// CRC fields themselves) by validation. Flips inside the version field
// legitimately surface as ErrArtifactVersion.
func TestArtifactBitFlipMatrix(t *testing.T) {
	data := encode(t, testArtifact(t))
	for bit := 0; bit < len(data)*8; bit++ {
		mut := bytes.Clone(data)
		mut[bit/8] ^= 1 << uint(bit%8)
		wantDamageSentinel(t, mut, "bit flip")
	}
}

func TestArtifactWrongMagic(t *testing.T) {
	data := encode(t, testArtifact(t))
	copy(data[0:4], "JUNK")
	_, err := dictio.Decode(bytes.NewReader(data))
	if !errors.Is(err, dictio.ErrCorruptArtifact) {
		t.Fatalf("wrong magic: err = %v, want ErrCorruptArtifact", err)
	}
}

func TestArtifactFutureVersion(t *testing.T) {
	data := encode(t, testArtifact(t))
	binary.LittleEndian.PutUint32(data[4:8], dictio.FormatVersion+1)
	_, err := dictio.Decode(bytes.NewReader(data))
	if !errors.Is(err, dictio.ErrArtifactVersion) {
		t.Fatalf("future version: err = %v, want ErrArtifactVersion", err)
	}
	if errors.Is(err, dictio.ErrCorruptArtifact) {
		t.Fatalf("future version misreported as corruption: %v", err)
	}
}

func TestArtifactUnknownSection(t *testing.T) {
	data := encode(t, testArtifact(t))
	// Byte 12 is the first section's id field (id 1, the header).
	data[12] = 9
	wantDamageSentinel(t, data, "unknown section id")
}

func TestArtifactTrailingBytes(t *testing.T) {
	data := encode(t, testArtifact(t))
	data = append(data, 0x00)
	_, err := dictio.Decode(bytes.NewReader(data))
	if !errors.Is(err, dictio.ErrCorruptArtifact) {
		t.Fatalf("trailing bytes: err = %v, want ErrCorruptArtifact", err)
	}
}

// TestArtifactSectionDisagreement damages the header/payload agreement
// rather than any one section: both CRCs pass, the cross-check must
// object.
func TestArtifactSectionDisagreement(t *testing.T) {
	a := testArtifact(t)
	a.Header.Faults = a.Header.Faults[:2] // one name short, bypassing New's check
	data := encode(t, a)
	wantDamageSentinel(t, data, "header/dict disagreement")
}

// TestTornPublishLeavesNoArtifact drives a publish through
// core.AtomicWriteFile with a writer that tears mid-stream: the publish
// must fail and the destination must keep its previous content.
func TestTornPublishLeavesNoArtifact(t *testing.T) {
	a := testArtifact(t)
	path := filepath.Join(t.TempDir(), "toy.sdda")

	// Fresh destination: the torn publish must not create the file.
	err := core.AtomicWriteFile(path, func(w io.Writer) error {
		return a.Encode(faultfs.Torn(w, 20))
	})
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("torn publish err = %v, want ErrInjected", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("torn publish left a file behind: stat err = %v", err)
	}

	// Existing artifact: the torn re-publish must leave it loadable.
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	err = core.AtomicWriteFile(path, func(w io.Writer) error {
		return a.Encode(faultfs.Torn(w, 20))
	})
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("torn re-publish err = %v, want ErrInjected", err)
	}
	if _, err := dictio.Load(path); err != nil {
		t.Fatalf("previous artifact no longer loads after torn re-publish: %v", err)
	}
}

// TestTornTailDetected writes only a prefix of the encoding directly to
// the destination — the torn tail a non-atomic writer would leave — and
// requires the loader to reject it.
func TestTornTailDetected(t *testing.T) {
	data := encode(t, testArtifact(t))
	path := filepath.Join(t.TempDir(), "torn.sdda")
	err := core.AtomicWriteFile(path, func(w io.Writer) error {
		_, werr := w.Write(data[:len(data)/2])
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = dictio.Load(path)
	if !errors.Is(err, dictio.ErrCorruptArtifact) {
		t.Fatalf("torn tail: err = %v, want ErrCorruptArtifact", err)
	}
}

// TestLoadFSInjectedReadFault distinguishes flaky media from
// corruption: a read failing mid-stream surfaces the injected error, not
// a corruption verdict against a file that is actually intact.
func TestLoadFSInjectedReadFault(t *testing.T) {
	a := testArtifact(t)
	path := filepath.Join(t.TempDir(), "toy.sdda")
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	fsys := faultfs.Flaky(faultfs.OS, 1, info.Size())
	_, err = dictio.LoadFS(fsys, path)
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("LoadFS under flaky media: err = %v, want ErrInjected", err)
	}
	if errors.Is(err, dictio.ErrCorruptArtifact) {
		t.Fatalf("intact artifact misreported as corrupt under flaky media: %v", err)
	}
}

// TestSniffFileSubMagicMatrix: zero-length and 1..len(magic)-1 files
// are too short to be either artifact format — the verdict must be a
// wrapped ErrCorruptArtifact, never a raw io error (which would route
// cmd/diagnose into the bare-compiled loader) and never a panic. A full
// 4-byte prefix carrying the wrong magic is a clean "not an artifact".
func TestSniffFileSubMagicMatrix(t *testing.T) {
	data := encode(t, testArtifact(t))
	dir := t.TempDir()
	for size := 0; size < 4; size++ {
		path := filepath.Join(dir, "short.sdda")
		if err := os.WriteFile(path, data[:size], 0o644); err != nil {
			t.Fatal(err)
		}
		ok, err := dictio.SniffFile(faultfs.OS, path)
		if ok {
			t.Fatalf("size %d: sniffed as artifact", size)
		}
		if !errors.Is(err, dictio.ErrCorruptArtifact) {
			t.Errorf("size %d: err = %v, want wrapped ErrCorruptArtifact", size, err)
		}
		// The decoder must agree on the same bytes.
		if _, err := dictio.Decode(bytes.NewReader(data[:size])); !errors.Is(err, dictio.ErrCorruptArtifact) {
			t.Errorf("size %d: Decode err = %v, want ErrCorruptArtifact", size, err)
		}
	}
	notArtifact := filepath.Join(dir, "elf.bin")
	if err := os.WriteFile(notArtifact, []byte{0x7f, 'E', 'L', 'F'}, 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, err := dictio.SniffFile(faultfs.OS, notArtifact); ok || err != nil {
		t.Errorf("foreign 4-byte magic: SniffFile = %v, %v; want false, nil", ok, err)
	}
}

// TestSniffFileMissing: a missing file keeps its os identity so callers
// can 404 instead of claiming corruption.
func TestSniffFileMissing(t *testing.T) {
	_, err := dictio.SniffFile(faultfs.OS, filepath.Join(t.TempDir(), "nope.sdda"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: err = %v, want os.ErrNotExist", err)
	}
	if errors.Is(err, dictio.ErrCorruptArtifact) {
		t.Errorf("missing file misreported as corrupt: %v", err)
	}
}

// TestTestSetChecksum pins the test-set identity: stable across
// republishes of the same dictionary, different once the baselines
// change, carried through the artifact header, and back-filled when
// decoding a pre-field artifact.
func TestTestSetChecksum(t *testing.T) {
	a := testArtifact(t)
	if a.Header.TestChecksum == "" || a.Header.TestChecksum != dictio.TestSetChecksum(a.Dict) {
		t.Fatalf("header test checksum %q, computed %q", a.Header.TestChecksum, dictio.TestSetChecksum(a.Dict))
	}
	got, err := dictio.Decode(bytes.NewReader(encode(t, a)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.TestChecksum != a.Header.TestChecksum {
		t.Errorf("decoded test checksum %q != published %q", got.Header.TestChecksum, a.Header.TestChecksum)
	}

	// A baseline flip changes the identity.
	b := testArtifact(t)
	b.Dict.Baseline[0] = b.Dict.Baseline[0].Clone()
	b.Dict.Baseline[0].Set(0, 1-b.Dict.Baseline[0].Get(0))
	if dictio.TestSetChecksum(b.Dict) == a.Header.TestChecksum {
		t.Error("baseline flip kept the same test-set checksum")
	}

	// Pre-field artifact (empty test_checksum in the header): Decode
	// adopts the computed identity so recall works on old artifacts.
	old := testArtifact(t)
	old.Header.TestChecksum = ""
	got, err = dictio.Decode(bytes.NewReader(encode(t, old)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.TestChecksum != dictio.TestSetChecksum(old.Dict) {
		t.Errorf("pre-field artifact: decoded test checksum %q, want back-filled %q",
			got.Header.TestChecksum, dictio.TestSetChecksum(old.Dict))
	}

	// A header claiming a different test-set identity than its own
	// baselines hash to is cross-section disagreement: both CRCs pass,
	// the semantic check must object.
	lying := testArtifact(t)
	lying.Header.TestChecksum = "deadbeef"
	wantDamageSentinel(t, encode(t, lying), "test-set checksum mismatch")
}

func TestParseVector(t *testing.T) {
	v, err := dictio.ParseVector("0101", 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.Get(0) != 0 || v.Get(1) != 1 || v.Get(2) != 0 || v.Get(3) != 1 {
		t.Errorf("parsed bits wrong: %s", v.String(4))
	}
	if _, err := dictio.ParseVector("01", 4); err == nil {
		t.Error("short vector accepted")
	}
	if _, err := dictio.ParseVector("01x1", 4); err == nil {
		t.Error("invalid character accepted")
	}
}

func TestParseResponses(t *testing.T) {
	in := "010\n\n111\n"
	vs, err := dictio.ParseResponses(strings.NewReader(in), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("parsed %d vectors, want 2", len(vs))
	}
	if vs[1].PopCount() != 3 {
		t.Errorf("second vector: %s", vs[1].String(3))
	}
}
