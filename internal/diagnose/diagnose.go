// Package diagnose performs cause-effect fault diagnosis with the
// dictionaries built by internal/core: an observed response is reduced to a
// signature against the dictionary's baselines and matched against the
// stored fault signatures, exactly as a tester-side diagnosis flow would
// use a pass/fail or same/different dictionary.
package diagnose

import (
	"errors"
	"fmt"
	"sort"

	"sddict/internal/core"
	"sddict/internal/fault"
	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/sim"
)

// Candidate is one ranked diagnosis candidate.
type Candidate struct {
	Fault    int // index into the dictionary's fault list
	Distance int // Hamming distance between signatures (0 = exact match)
}

// Diagnoser matches observed responses against one dictionary.
type Diagnoser struct {
	D      *core.Dictionary
	Faults []fault.Fault

	rows   []logic.BitVec
	byHash map[uint64][]int32
}

// New precomputes the per-fault signature rows of the dictionary.
func New(d *core.Dictionary, faults []fault.Fault) *Diagnoser {
	if len(faults) != d.M.N {
		panic(fmt.Sprintf("diagnose: %d faults != %d dictionary rows", len(faults), d.M.N))
	}
	dg := &Diagnoser{D: d, Faults: faults}
	dg.rows = make([]logic.BitVec, d.M.N)
	dg.byHash = make(map[uint64][]int32, d.M.N)
	for i := 0; i < d.M.N; i++ {
		row := d.Row(i)
		dg.rows[i] = row
		h := row.Hash()
		dg.byHash[h] = append(dg.byHash[h], int32(i))
	}
	return dg
}

// Signature reduces an observed response (one output vector per test) to
// the dictionary's signature space: bit j is 0 when the observed vector for
// test j equals the baseline vector (fault-free for pass/fail dictionaries,
// the selected z_bl,j for same/different) and 1 otherwise.
func (dg *Diagnoser) Signature(observed []logic.BitVec) logic.BitVec {
	d := dg.D
	k := d.M.K
	if len(observed) != k {
		panic(fmt.Sprintf("diagnose: %d observed responses != %d tests", len(observed), k))
	}
	total := k
	if d.ExtraBaselines != nil {
		total = 2 * k
	}
	sig := logic.NewBitVec(total)
	for j := 0; j < k; j++ {
		if !observed[j].Equal(d.BaselineVector(j)) {
			sig.Set(j, 1)
		}
	}
	if d.ExtraBaselines != nil {
		for j := 0; j < k; j++ {
			if !observed[j].Equal(d.M.Vecs[j][d.ExtraBaselines[j]]) {
				sig.Set(k+j, 1)
			}
		}
	}
	return sig
}

// ExactMatches returns the faults whose dictionary signature equals sig —
// the candidate set a cause-effect procedure reports for a perfect match.
func (dg *Diagnoser) ExactMatches(sig logic.BitVec) []int {
	var out []int
	for _, i := range dg.byHash[sig.Hash()] {
		if dg.rows[i].Equal(sig) {
			out = append(out, int(i))
		}
	}
	sort.Ints(out)
	return out
}

// Rank returns the topK candidates closest to sig by Hamming distance,
// distance ascending, fault index ascending within equal distance. It
// delegates to core.RankRows — the single ranking implementation shared
// with the compiled-dictionary path (cmd/diagnose, /diagnose), so the
// library and service rankings can never drift apart.
func (dg *Diagnoser) Rank(sig logic.BitVec, topK int) []Candidate {
	ranked := core.RankRows(dg.rows, sig, topK)
	out := make([]Candidate, len(ranked))
	for i, r := range ranked {
		out[i] = Candidate{Fault: r.Fault, Distance: r.Distance}
	}
	return out
}

// Diagnose combines exact matching with ranked fallback: if exact matches
// exist they are returned with distance 0; otherwise the topK nearest rows.
func (dg *Diagnoser) Diagnose(observed []logic.BitVec, topK int) []Candidate {
	sig := dg.Signature(observed)
	if exact := dg.ExactMatches(sig); len(exact) > 0 {
		out := make([]Candidate, len(exact))
		for i, f := range exact {
			out[i] = Candidate{Fault: f}
		}
		return out
	}
	return dg.Rank(sig, topK)
}

// FullMatches returns the faults whose complete stored response (the full
// dictionary's content) equals the observed response under every test. Use
// this instead of signature matching when d is a Full dictionary.
func (dg *Diagnoser) FullMatches(observed []logic.BitVec) []int {
	m := dg.D.M
	var out []int
	for i := 0; i < m.N; i++ {
		match := true
		for j := 0; j < m.K; j++ {
			if !m.Vecs[j][m.Class[j][i]].Equal(observed[j]) {
				match = false
				break
			}
		}
		if match {
			out = append(out, i)
		}
	}
	return out
}

// ErrWidthMismatch marks an ObservedResponses failure where injecting
// the defect changed the circuit's scan width, so the test set no longer
// applies. Match it with errors.Is; the wrapping error carries the
// circuit name, defect list and both widths.
var ErrWidthMismatch = errors.New("injected circuit width changed")

// ObservedResponses simulates a defective circuit (the given faults all
// injected simultaneously) under the test set and returns one output vector
// per test: the tester-observed behaviour used as diagnosis input.
// A single fault models a matching stuck-at defect; several faults model a
// non-modeled (e.g. multiple or bridge-like) defect.
func ObservedResponses(c *netlist.Circuit, defect []fault.Fault, tests *pattern.Set) ([]logic.BitVec, error) {
	bad := c
	for _, f := range defect {
		var err error
		bad, err = fault.Inject(bad, f)
		if err != nil {
			return nil, err
		}
	}
	view := netlist.NewScanView(bad)
	if view.NumInputs() != tests.Width {
		names := make([]string, len(defect))
		for i, f := range defect {
			names[i] = f.Name(c)
		}
		return nil, fmt.Errorf("diagnose: %s: injecting defect %v changed the scan width: %d inputs, tests expect %d: %w",
			c.Name, names, view.NumInputs(), tests.Width, ErrWidthMismatch)
	}
	s := sim.New(view)
	out := make([]logic.BitVec, 0, tests.Len())
	words := make([]logic.Word, view.NumOutputs())
	for _, batch := range tests.Pack() {
		b := batch
		s.Apply(&b)
		s.GoodOutputs(words)
		for p := 0; p < b.Count; p++ {
			vec := logic.NewBitVec(view.NumOutputs())
			for o := range words {
				vec.Set(o, (words[o]>>uint(p))&1)
			}
			out = append(out, vec)
		}
	}
	return out, nil
}

// Quality summarizes a dictionary's diagnostic resolution over the modeled
// faults: for every fault taken as the actual defect, the exact-match
// candidate set is its indistinguishability group.
type Quality struct {
	Faults        int
	Perfect       int     // faults diagnosed to a single candidate
	MaxCandidates int     // worst-case candidate-set size
	AvgCandidates float64 // expected candidate-set size
}

// EvaluateResolution computes diagnosis quality directly from the
// dictionary's indistinguishability partition: a fault in a group of
// size s sees a candidate set of size s (each group contributes s²
// candidate sightings), a singleton fault sees exactly itself. The
// root diagnose tests pin this accounting against a brute-force
// per-fault ExactMatches recount.
func EvaluateResolution(d *core.Dictionary) Quality {
	p := d.Partition()
	q := Quality{Faults: p.Len()}
	if q.Faults == 0 {
		return q // no faults: zero candidates, not a phantom worst case of 1
	}
	sizes := p.GroupSizes()
	grouped := 0
	sum := 0
	max := 1
	for _, s := range sizes {
		grouped += s
		sum += s * s // each of the s faults sees a candidate set of size s
		if s > max {
			max = s
		}
	}
	q.Perfect = q.Faults - grouped
	q.MaxCandidates = max
	q.AvgCandidates = float64(q.Perfect+sum) / float64(q.Faults)
	return q
}
