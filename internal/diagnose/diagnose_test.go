package diagnose

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sddict/internal/atpg"
	"sddict/internal/core"
	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/resp"
)

// setup builds a small diagnosis scenario: synthetic circuit, collapsed
// faults, detection test set, response matrix.
func setup(t *testing.T) (*netlist.Circuit, []fault.Fault, *pattern.Set, *resp.Matrix) {
	t.Helper()
	comb := netlist.Combinationalize(gen.Profiles["s298"].MustGenerate(12))
	col := fault.Collapse(comb)
	cfg := atpg.DefaultConfig(3)
	cfg.Seed = 21
	tests, _ := atpg.GenerateDetection(comb, col.Faults, cfg)
	m := resp.Build(netlist.NewScanView(comb), col.Faults, tests)
	return comb, col.Faults, tests, m
}

// TestSelfDiagnosis: injecting each modeled fault and diagnosing must put
// the injected fault in the exact-match candidate set, for every
// dictionary kind; the candidate set must equal the fault's
// indistinguishability group.
func TestSelfDiagnosis(t *testing.T) {
	comb, faults, tests, m := setup(t)
	opts := core.DefaultOptions
	opts.Seed = 1
	opts.Calls1 = 4
	opts.MaxRestarts = 8
	sd, _ := core.BuildSameDiff(m, opts)
	dicts := map[string]*core.Dictionary{
		"pass/fail":      core.NewPassFail(m),
		"same/different": sd,
	}
	r := rand.New(rand.NewSource(2))
	for name, d := range dicts {
		dg := New(d, faults)
		part := d.Partition()
		for trial := 0; trial < 15; trial++ {
			fi := r.Intn(len(faults))
			obs, err := ObservedResponses(comb, []fault.Fault{faults[fi]}, tests)
			if err != nil {
				t.Fatal(err)
			}
			cands := dg.ExactMatches(dg.Signature(obs))
			found := false
			for _, c := range cands {
				if c == fi {
					found = true
				}
				// Every exact-match candidate must share the injected
				// fault's group.
				sameGroup := c == fi ||
					(part.Label(c) != core.Isolated && part.Label(c) == part.Label(fi))
				if !sameGroup {
					t.Fatalf("%s: candidate %d not in group of injected fault %d", name, c, fi)
				}
			}
			if !found {
				t.Fatalf("%s: injected fault %s not among %d candidates",
					name, faults[fi].Name(comb), len(cands))
			}
			// Group size must equal candidate count.
			want := 1
			if l := part.Label(fi); l != core.Isolated {
				want = 0
				for i := range faults {
					if part.Label(i) == l {
						want++
					}
				}
			}
			if len(cands) != want {
				t.Fatalf("%s: %d candidates, group size %d", name, len(cands), want)
			}
		}
	}
}

// TestSameDiffNarrowsCandidates: averaged over faults, the same/different
// dictionary's candidate sets must not be larger than pass/fail's
// (SeedFaultFree guarantees at least parity).
func TestSameDiffNarrowsCandidates(t *testing.T) {
	_, _, _, m := setup(t)
	opts := core.DefaultOptions
	opts.Seed = 3
	opts.Calls1 = 4
	opts.MaxRestarts = 8
	sd, _ := core.BuildSameDiff(m, opts)
	qPF := EvaluateResolution(core.NewPassFail(m))
	qSD := EvaluateResolution(sd)
	qFull := EvaluateResolution(core.NewFull(m))
	if qSD.AvgCandidates > qPF.AvgCandidates {
		t.Fatalf("s/d avg candidates %.3f worse than p/f %.3f", qSD.AvgCandidates, qPF.AvgCandidates)
	}
	if qFull.AvgCandidates > qSD.AvgCandidates {
		t.Fatalf("full avg candidates %.3f worse than s/d %.3f", qFull.AvgCandidates, qSD.AvgCandidates)
	}
	if qPF.Faults != m.N || qSD.Perfect < qPF.Perfect {
		t.Fatalf("quality bookkeeping off: %+v vs %+v", qSD, qPF)
	}
}

// TestRankNearestForNonModeledDefect: a double fault is not in the
// dictionary, but ranking must return its constituents among the top
// candidates more often than chance.
func TestRankNearestForNonModeledDefect(t *testing.T) {
	comb, faults, tests, m := setup(t)
	pf := core.NewPassFail(m)
	dg := New(pf, faults)
	r := rand.New(rand.NewSource(6))
	hits := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		a := r.Intn(len(faults))
		b := r.Intn(len(faults))
		if a == b {
			b = (b + 1) % len(faults)
		}
		obs, err := ObservedResponses(comb, []fault.Fault{faults[a], faults[b]}, tests)
		if err != nil {
			t.Fatal(err)
		}
		cands := dg.Diagnose(obs, 10)
		for _, c := range cands {
			if c.Fault == a || c.Fault == b {
				hits++
				break
			}
		}
	}
	if hits < trials/2 {
		t.Errorf("double-fault diagnosis found a constituent in only %d/%d trials", hits, trials)
	}
}

// TestFullMatches: full-response matching must pinpoint the injected
// fault's full-dictionary group exactly.
func TestFullMatches(t *testing.T) {
	comb, faults, tests, m := setup(t)
	full := core.NewFull(m)
	dg := New(full, faults)
	part := full.Partition()
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		fi := r.Intn(len(faults))
		obs, err := ObservedResponses(comb, []fault.Fault{faults[fi]}, tests)
		if err != nil {
			t.Fatal(err)
		}
		cands := dg.FullMatches(obs)
		found := false
		for _, c := range cands {
			if c == fi {
				found = true
			}
			if c != fi && (part.Label(c) == core.Isolated || part.Label(c) != part.Label(fi)) {
				t.Fatalf("full match %d outside the group of %d", c, fi)
			}
		}
		if !found {
			t.Fatalf("injected fault %d not among full matches", fi)
		}
	}
}

// TestSignatureAgainstDictionaryRows: the signature computed from simulated
// observed responses of fault i must equal row i of the dictionary — the
// deployment-side and construction-side signatures are the same function.
func TestSignatureAgainstDictionaryRows(t *testing.T) {
	comb, faults, tests, m := setup(t)
	opts := core.DefaultOptions
	opts.Seed = 9
	opts.Calls1 = 3
	opts.MaxRestarts = 5
	sd, _ := core.BuildSameDiff(m, opts)
	dg := New(sd, faults)
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		fi := r.Intn(len(faults))
		obs, err := ObservedResponses(comb, []fault.Fault{faults[fi]}, tests)
		if err != nil {
			t.Fatal(err)
		}
		sig := dg.Signature(obs)
		if !sig.Equal(sd.Row(fi)) {
			t.Fatalf("signature of injected fault %d differs from its dictionary row", fi)
		}
	}
}

// TestEvaluateResolutionBruteForce pins EvaluateResolution's closed-form
// accounting against a brute-force recount from the partition: every
// fault's candidate-set size is the size of its indistinguishability
// group (1 when isolated), so Perfect, MaxCandidates and AvgCandidates
// all follow from the per-fault group sizes directly.
func TestEvaluateResolutionBruteForce(t *testing.T) {
	_, _, _, m := setup(t)
	opts := core.DefaultOptions
	opts.Seed = 3
	opts.Calls1 = 3
	opts.MaxRestarts = 5
	sd, _ := core.BuildSameDiff(m, opts)
	for name, d := range map[string]*core.Dictionary{
		"full":           core.NewFull(m),
		"pass/fail":      core.NewPassFail(m),
		"same/different": sd,
	} {
		q := EvaluateResolution(d)
		p := d.Partition()
		if q.Faults != p.Len() {
			t.Fatalf("%s: Faults = %d, want %d", name, q.Faults, p.Len())
		}
		groupSize := map[int32]int{}
		for i := 0; i < p.Len(); i++ {
			if l := p.Label(i); l != core.Isolated {
				groupSize[l]++
			}
		}
		perfect, maxC, sum := 0, 0, 0
		for i := 0; i < p.Len(); i++ {
			size := 1
			if l := p.Label(i); l != core.Isolated {
				size = groupSize[l]
			}
			if size == 1 {
				perfect++
			}
			if size > maxC {
				maxC = size
			}
			sum += size
		}
		if q.Perfect != perfect {
			t.Errorf("%s: Perfect = %d, brute force %d", name, q.Perfect, perfect)
		}
		if q.MaxCandidates != maxC {
			t.Errorf("%s: MaxCandidates = %d, brute force %d", name, q.MaxCandidates, maxC)
		}
		want := float64(sum) / float64(p.Len())
		if diff := q.AvgCandidates - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s: AvgCandidates = %v, brute force %v", name, q.AvgCandidates, want)
		}
	}
}

// TestRankBoundedMatchesFullSort: the heap-based bounded selection must
// return exactly the prefix of the full sort for every topK, including
// the tie-break (distance ascending, fault ascending).
func TestRankBoundedMatchesFullSort(t *testing.T) {
	comb, faults, tests, m := setup(t)
	pf := core.NewPassFail(m)
	dg := New(pf, faults)
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		a, b := r.Intn(len(faults)), r.Intn(len(faults))
		obs, err := ObservedResponses(comb, []fault.Fault{faults[a], faults[b]}, tests)
		if err != nil {
			t.Fatal(err)
		}
		sig := dg.Signature(obs)
		full := dg.Rank(sig, 0) // reference: full sort
		if len(full) != len(faults) {
			t.Fatalf("full rank returned %d of %d faults", len(full), len(faults))
		}
		for i := 1; i < len(full); i++ {
			prev, cur := full[i-1], full[i]
			if cur.Distance < prev.Distance ||
				(cur.Distance == prev.Distance && cur.Fault < prev.Fault) {
				t.Fatalf("reference ranking out of order at %d", i)
			}
		}
		for _, topK := range []int{1, 2, 3, 7, 10, 64, len(faults) - 1, len(faults), len(faults) + 5} {
			got := dg.Rank(sig, topK)
			wantLen := topK
			if topK > len(full) {
				wantLen = len(full)
			}
			if len(got) != wantLen {
				t.Fatalf("topK=%d returned %d candidates, want %d", topK, len(got), wantLen)
			}
			for i, c := range got {
				if c != full[i] {
					t.Fatalf("topK=%d: candidate %d = %+v, full sort has %+v", topK, i, c, full[i])
				}
			}
		}
	}
}

// TestObservedResponsesWidthMismatch: a test set of the wrong width must
// produce the enriched, matchable width error rather than a bare string.
func TestObservedResponsesWidthMismatch(t *testing.T) {
	comb, faults, tests, _ := setup(t)
	bad := pattern.NewSet(tests.Width + 1)
	_, err := ObservedResponses(comb, []fault.Fault{faults[0]}, bad)
	if err == nil {
		t.Fatal("mismatched width accepted")
	}
	if !errors.Is(err, ErrWidthMismatch) {
		t.Fatalf("error %v does not wrap ErrWidthMismatch", err)
	}
	msg := err.Error()
	for _, want := range []string{comb.Name, faults[0].Name(comb),
		fmt.Sprintf("%d", tests.Width), fmt.Sprintf("%d", tests.Width+1)} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}
