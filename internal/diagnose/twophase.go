package diagnose

import (
	"sddict/internal/core"
	"sddict/internal/fault"
	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/sim"
)

// TwoPhase implements the two-stage diagnosis flow the paper cites as the
// main consumer of compact dictionaries (refs [8], [12], [14]): a compact
// dictionary (pass/fail or same/different) first reduces the observed
// response to a small candidate set, then targeted fault simulation of only
// those candidates compares full responses, recovering full-dictionary
// resolution without ever storing the full dictionary.
type TwoPhase struct {
	dg    *Diagnoser
	view  *netlist.ScanView
	tests *pattern.Set
}

// NewTwoPhase builds a two-phase diagnoser over the dictionary d for the
// given circuit (combinational full-scan form) and its test set.
func NewTwoPhase(d *core.Dictionary, faults []fault.Fault, c *netlist.Circuit, tests *pattern.Set) *TwoPhase {
	return &TwoPhase{
		dg:    New(d, faults),
		view:  netlist.NewScanView(c),
		tests: tests,
	}
}

// Result reports a two-phase diagnosis.
type Result struct {
	// Phase1 is the candidate set from the dictionary signature match
	// (exact matches; nearest rows when nothing matches exactly).
	Phase1 []int
	// Phase2 is the subset of Phase1 whose simulated full responses equal
	// the observed responses exactly.
	Phase2 []int
	// Simulated counts the faults actually fault-simulated in phase 2 —
	// the effort the dictionary saved compared to simulating all faults.
	Simulated int
}

// Diagnose runs both phases on the observed responses (one output vector
// per test).
func (tp *TwoPhase) Diagnose(observed []logic.BitVec) Result {
	var res Result
	sig := tp.dg.Signature(observed)
	res.Phase1 = tp.dg.ExactMatches(sig)
	if len(res.Phase1) == 0 {
		// Fall back to the nearest rows; take every fault at the minimum
		// distance.
		ranked := tp.dg.Rank(sig, 0)
		if len(ranked) == 0 {
			return res
		}
		min := ranked[0].Distance
		for _, c := range ranked {
			if c.Distance != min {
				break
			}
			res.Phase1 = append(res.Phase1, c.Fault)
		}
	}

	// Phase 2: simulate only the candidates and keep exact full-response
	// matches.
	res.Simulated = len(res.Phase1)
	for _, fi := range res.Phase1 {
		if tp.fullResponseMatches(tp.dg.Faults[fi], observed) {
			res.Phase2 = append(res.Phase2, fi)
		}
	}
	return res
}

// fullResponseMatches simulates one fault under the full test set,
// comparing against the observed responses test by test with early exit.
func (tp *TwoPhase) fullResponseMatches(f fault.Fault, observed []logic.BitVec) bool {
	s := sim.New(tp.view)
	numOut := tp.view.NumOutputs()
	faultyWords := make([]logic.Word, numOut)
	base := 0
	for _, batch := range tp.tests.Pack() {
		b := batch
		s.Apply(&b)
		s.GoodOutputs(faultyWords)
		eff := s.Propagate(f)
		for _, d := range eff.Diffs {
			faultyWords[d.Slot] ^= d.Bits
		}
		for p := 0; p < b.Count; p++ {
			obs := observed[base+p]
			for o := 0; o < numOut; o++ {
				if obs.Get(o) != (faultyWords[o]>>uint(p))&1 {
					return false
				}
			}
		}
		base += b.Count
	}
	return true
}
