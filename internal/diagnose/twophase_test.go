package diagnose

import (
	"math/rand"
	"testing"

	"sddict/internal/core"
	"sddict/internal/fault"
)

// TestTwoPhaseRecoversFullResolution: phase 2 must narrow the dictionary's
// candidate set down to the injected fault's FULL-dictionary group, i.e.
// the two-phase flow achieves full-dictionary resolution with a compact
// dictionary.
func TestTwoPhaseRecoversFullResolution(t *testing.T) {
	comb, faults, tests, m := setup(t)
	fullPart := core.NewFull(m).Partition()
	opts := core.DefaultOptions
	opts.Seed = 5
	opts.Calls1 = 3
	opts.MaxRestarts = 6
	sd, _ := core.BuildSameDiff(m, opts)

	for name, d := range map[string]*core.Dictionary{
		"pass/fail":      core.NewPassFail(m),
		"same/different": sd,
	} {
		tp := NewTwoPhase(d, faults, comb, tests)
		r := rand.New(rand.NewSource(99))
		for trial := 0; trial < 12; trial++ {
			fi := r.Intn(len(faults))
			obs, err := ObservedResponses(comb, []fault.Fault{faults[fi]}, tests)
			if err != nil {
				t.Fatal(err)
			}
			res := tp.Diagnose(obs)
			// The injected fault must survive both phases.
			if !containsInt(res.Phase2, fi) {
				t.Fatalf("%s: injected fault %d lost (phase1 %d, phase2 %d candidates)",
					name, fi, len(res.Phase1), len(res.Phase2))
			}
			// Phase 2 equals the full-dictionary group exactly.
			wantSize := 1
			if l := fullPart.Label(fi); l != core.Isolated {
				wantSize = 0
				for i := range faults {
					if fullPart.Label(i) == l {
						wantSize++
					}
				}
			}
			if len(res.Phase2) != wantSize {
				t.Fatalf("%s: phase 2 has %d candidates, full-dictionary group has %d",
					name, len(res.Phase2), wantSize)
			}
			// Phase 1 never simulates more than the dictionary group size.
			if res.Simulated != len(res.Phase1) {
				t.Fatalf("%s: simulated %d != phase1 %d", name, res.Simulated, len(res.Phase1))
			}
		}
	}
}

// TestTwoPhaseSavesSimulation: the point of the dictionary is that phase 2
// simulates far fewer faults than an effect-cause flow would; with a
// same/different dictionary the candidate sets are never larger than with
// pass/fail.
func TestTwoPhaseSavesSimulation(t *testing.T) {
	comb, faults, tests, m := setup(t)
	opts := core.DefaultOptions
	opts.Seed = 6
	opts.Calls1 = 3
	opts.MaxRestarts = 6
	sd, _ := core.BuildSameDiff(m, opts)
	tpPF := NewTwoPhase(core.NewPassFail(m), faults, comb, tests)
	tpSD := NewTwoPhase(sd, faults, comb, tests)

	r := rand.New(rand.NewSource(123))
	totalPF, totalSD := 0, 0
	for trial := 0; trial < 10; trial++ {
		fi := r.Intn(len(faults))
		obs, err := ObservedResponses(comb, []fault.Fault{faults[fi]}, tests)
		if err != nil {
			t.Fatal(err)
		}
		totalPF += tpPF.Diagnose(obs).Simulated
		totalSD += tpSD.Diagnose(obs).Simulated
	}
	if totalSD > totalPF {
		t.Fatalf("same/different phase 2 simulated more faults (%d) than pass/fail (%d)",
			totalSD, totalPF)
	}
	if totalPF > 10*len(faults)/4 {
		t.Fatalf("phase 1 is not narrowing: %d simulations over 10 trials of %d faults",
			totalPF, len(faults))
	}
}

// TestTwoPhaseNonModeledDefect: with a defect that matches no row, phase 1
// falls back to nearest rows and phase 2 reports no exact match (an honest
// "not a modeled fault" outcome).
func TestTwoPhaseNonModeledDefect(t *testing.T) {
	comb, faults, tests, m := setup(t)
	tp := NewTwoPhase(core.NewPassFail(m), faults, comb, tests)
	r := rand.New(rand.NewSource(7))
	sawEmptyPhase2 := false
	for trial := 0; trial < 6 && !sawEmptyPhase2; trial++ {
		a, b := r.Intn(len(faults)), r.Intn(len(faults))
		if a == b {
			continue
		}
		obs, err := ObservedResponses(comb, []fault.Fault{faults[a], faults[b]}, tests)
		if err != nil {
			t.Fatal(err)
		}
		res := tp.Diagnose(obs)
		if len(res.Phase1) == 0 {
			t.Fatal("phase 1 returned nothing, not even nearest rows")
		}
		if len(res.Phase2) == 0 {
			sawEmptyPhase2 = true
		}
	}
	if !sawEmptyPhase2 {
		t.Log("every double fault happened to mimic a single fault; unusual but possible")
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
