// Package logic provides the logic-value domains shared by the simulator and
// the test generator: plain binary values, ternary (0/1/X) values for test
// cubes, the five-valued D-calculus used by PODEM, and 64-way bit-parallel
// words used by the pattern-parallel fault simulator.
package logic

import "fmt"

// Value is a ternary logic value used for test cubes and partially specified
// signals. The zero value is X (unassigned), so freshly allocated cubes are
// fully unspecified.
type Value uint8

// Ternary logic values.
const (
	X    Value = iota // unassigned / don't-care
	Zero              // logic 0
	One               // logic 1
)

// Not returns the ternary complement; X maps to X.
func (v Value) Not() Value {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	default:
		return X
	}
}

// Known reports whether v is a definite binary value.
func (v Value) Known() bool { return v == Zero || v == One }

// Bit returns 0 or 1 for a known value and panics on X. Use Known first.
func (v Value) Bit() uint64 {
	switch v {
	case Zero:
		return 0
	case One:
		return 1
	}
	panic("logic: Bit of X")
}

// FromBit converts a binary digit (any nonzero means 1) to a Value.
func FromBit(b uint64) Value {
	if b != 0 {
		return One
	}
	return Zero
}

func (v Value) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case X:
		return "x"
	}
	return fmt.Sprintf("Value(%d)", uint8(v))
}

// V5 is a five-valued D-calculus value for PODEM-style test generation:
// the value pair (good-circuit value, faulty-circuit value).
type V5 uint8

// Five-valued D-calculus. D means good=1/faulty=0; DBar the reverse.
const (
	X5 V5 = iota // unknown in at least one machine
	Z5           // 0 in both machines
	O5           // 1 in both machines
	D5           // 1 in good machine, 0 in faulty machine
	B5           // 0 in good machine, 1 in faulty machine (D-bar)
)

// good and faulty ternary projections of each V5, indexed by V5.
var (
	v5Good   = [5]Value{X, Zero, One, One, Zero}
	v5Faulty = [5]Value{X, Zero, One, Zero, One}
)

// Good returns the good-machine ternary projection.
func (v V5) Good() Value { return v5Good[v] }

// Faulty returns the faulty-machine ternary projection.
func (v V5) Faulty() Value { return v5Faulty[v] }

// IsD reports whether v carries a fault effect (D or D-bar).
func (v V5) IsD() bool { return v == D5 || v == B5 }

// Known reports whether both machines have definite values.
func (v V5) Known() bool { return v != X5 }

// Not5 returns the five-valued complement.
func (v V5) Not5() V5 {
	switch v {
	case Z5:
		return O5
	case O5:
		return Z5
	case D5:
		return B5
	case B5:
		return D5
	}
	return X5
}

// FromPair builds a V5 from separate good and faulty ternary values. If
// either is X the result is X5.
func FromPair(good, faulty Value) V5 {
	if !good.Known() || !faulty.Known() {
		return X5
	}
	switch {
	case good == Zero && faulty == Zero:
		return Z5
	case good == One && faulty == One:
		return O5
	case good == One && faulty == Zero:
		return D5
	default:
		return B5
	}
}

func (v V5) String() string {
	switch v {
	case X5:
		return "x"
	case Z5:
		return "0"
	case O5:
		return "1"
	case D5:
		return "D"
	case B5:
		return "D'"
	}
	return fmt.Sprintf("V5(%d)", uint8(v))
}

// And5 returns the five-valued AND of two values.
func And5(a, b V5) V5 {
	if a == Z5 || b == Z5 {
		return Z5
	}
	if a == X5 || b == X5 {
		return X5
	}
	// Both in {1, D, D'}.
	if a == O5 {
		return b
	}
	if b == O5 {
		return a
	}
	if a == b {
		return a
	}
	return Z5 // D AND D' = 0
}

// Or5 returns the five-valued OR of two values.
func Or5(a, b V5) V5 {
	if a == O5 || b == O5 {
		return O5
	}
	if a == X5 || b == X5 {
		return X5
	}
	if a == Z5 {
		return b
	}
	if b == Z5 {
		return a
	}
	if a == b {
		return a
	}
	return O5 // D OR D' = 1
}

// Xor5 returns the five-valued XOR of two values.
func Xor5(a, b V5) V5 {
	if a == X5 || b == X5 {
		return X5
	}
	g := a.Good().Bit() ^ b.Good().Bit()
	f := a.Faulty().Bit() ^ b.Faulty().Bit()
	return FromPair(FromBit(g), FromBit(f))
}
