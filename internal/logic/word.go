package logic

import "math/bits"

// WordBits is the number of test patterns evaluated in parallel by one
// bit-parallel simulation word.
const WordBits = 64

// Word carries one bit per pattern for up to 64 patterns simulated in
// parallel. Bit p of the word is the signal's value under pattern p.
type Word = uint64

// BitVec is a packed bit vector of arbitrary length, used for output
// response vectors (one bit per circuit output).
type BitVec []uint64

// NewBitVec returns an all-zero vector with capacity for n bits.
func NewBitVec(n int) BitVec { return make(BitVec, (n+63)/64) }

// WordsFor returns the number of 64-bit words needed to hold n bits.
func WordsFor(n int) int { return (n + 63) / 64 }

// Get returns bit i.
func (v BitVec) Get(i int) uint64 { return (v[i/64] >> (uint(i) % 64)) & 1 }

// Set sets bit i to b (any nonzero means 1).
func (v BitVec) Set(i int, b uint64) {
	w, s := i/64, uint(i)%64
	if b != 0 {
		v[w] |= 1 << s
	} else {
		v[w] &^= 1 << s
	}
}

// Equal reports whether two vectors hold identical bits. The vectors must
// have the same word length.
func (v BitVec) Equal(o BitVec) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (v BitVec) Clone() BitVec {
	c := make(BitVec, len(v))
	copy(c, v)
	return c
}

// Hamming returns the number of differing bits between v and o, which must
// have the same word length.
func (v BitVec) Hamming(o BitVec) int {
	d := 0
	for i := range v {
		d += bits.OnesCount64(v[i] ^ o[i])
	}
	return d
}

// PopCount returns the number of set bits.
func (v BitVec) PopCount() int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// Hash returns a 64-bit FNV-1a hash of the vector contents.
func (v BitVec) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range v {
		for s := 0; s < 64; s += 8 {
			h ^= (w >> uint(s)) & 0xff
			h *= prime
		}
	}
	return h
}

// String renders the first n bits as a 0/1 string, LSB-first (bit 0 is the
// first output). n must not exceed the capacity.
func (v BitVec) String(n int) string {
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		b[i] = '0' + byte(v.Get(i))
	}
	return string(b)
}
