package logic

import (
	"testing"
	"testing/quick"
)

func TestValueBasics(t *testing.T) {
	if Zero.Not() != One || One.Not() != Zero || X.Not() != X {
		t.Error("Not misbehaves")
	}
	if !Zero.Known() || !One.Known() || X.Known() {
		t.Error("Known misbehaves")
	}
	if Zero.Bit() != 0 || One.Bit() != 1 {
		t.Error("Bit misbehaves")
	}
	if FromBit(0) != Zero || FromBit(1) != One || FromBit(7) != One {
		t.Error("FromBit misbehaves")
	}
	if Zero.String() != "0" || One.String() != "1" || X.String() != "x" {
		t.Error("String misbehaves")
	}
}

func TestV5Projections(t *testing.T) {
	cases := []struct {
		v            V5
		good, faulty Value
	}{
		{Z5, Zero, Zero},
		{O5, One, One},
		{D5, One, Zero},
		{B5, Zero, One},
		{X5, X, X},
	}
	for _, c := range cases {
		if c.v.Good() != c.good || c.v.Faulty() != c.faulty {
			t.Errorf("%v: projections (%v,%v), want (%v,%v)",
				c.v, c.v.Good(), c.v.Faulty(), c.good, c.faulty)
		}
		if got := FromPair(c.good, c.faulty); got != c.v {
			t.Errorf("FromPair(%v,%v) = %v, want %v", c.good, c.faulty, got, c.v)
		}
	}
	if !D5.IsD() || !B5.IsD() || O5.IsD() || Z5.IsD() || X5.IsD() {
		t.Error("IsD misbehaves")
	}
}

// TestV5AlgebraConsistent property-checks the five-valued operators against
// independent evaluation of the good and faulty machines: for known
// operands, op5(a,b) must equal the pair (op(a.good,b.good),
// op(a.faulty,b.faulty)).
func TestV5AlgebraConsistent(t *testing.T) {
	known := []V5{Z5, O5, D5, B5}
	band := func(a, b Value) Value { return FromBit(a.Bit() & b.Bit()) }
	bor := func(a, b Value) Value { return FromBit(a.Bit() | b.Bit()) }
	bxor := func(a, b Value) Value { return FromBit(a.Bit() ^ b.Bit()) }
	for _, a := range known {
		for _, b := range known {
			if got, want := And5(a, b), FromPair(band(a.Good(), b.Good()), band(a.Faulty(), b.Faulty())); got != want {
				t.Errorf("And5(%v,%v) = %v, want %v", a, b, got, want)
			}
			if got, want := Or5(a, b), FromPair(bor(a.Good(), b.Good()), bor(a.Faulty(), b.Faulty())); got != want {
				t.Errorf("Or5(%v,%v) = %v, want %v", a, b, got, want)
			}
			if got, want := Xor5(a, b), FromPair(bxor(a.Good(), b.Good()), bxor(a.Faulty(), b.Faulty())); got != want {
				t.Errorf("Xor5(%v,%v) = %v, want %v", a, b, got, want)
			}
		}
	}
	// X absorbs except where a controlling value decides.
	if And5(X5, Z5) != Z5 || And5(Z5, X5) != Z5 {
		t.Error("And5 with controlling 0 must be 0")
	}
	if Or5(X5, O5) != O5 || Or5(O5, X5) != O5 {
		t.Error("Or5 with controlling 1 must be 1")
	}
	if And5(X5, O5) != X5 || Or5(X5, Z5) != X5 || Xor5(X5, O5) != X5 {
		t.Error("X must propagate when undecided")
	}
	for _, v := range []V5{Z5, O5, D5, B5, X5} {
		if v.Not5().Not5() != v {
			t.Errorf("double negation of %v", v)
		}
	}
}

func TestBitVec(t *testing.T) {
	v := NewBitVec(130)
	v.Set(0, 1)
	v.Set(64, 1)
	v.Set(129, 1)
	if v.Get(0) != 1 || v.Get(64) != 1 || v.Get(129) != 1 || v.Get(1) != 0 {
		t.Fatal("Set/Get misbehave")
	}
	if v.PopCount() != 3 {
		t.Fatalf("PopCount = %d, want 3", v.PopCount())
	}
	v.Set(64, 0)
	if v.Get(64) != 0 || v.PopCount() != 2 {
		t.Fatal("clearing a bit failed")
	}
	c := v.Clone()
	if !c.Equal(v) {
		t.Fatal("Clone not equal")
	}
	c.Set(5, 1)
	if c.Equal(v) {
		t.Fatal("Clone shares storage")
	}
	if got := v.Hamming(c); got != 1 {
		t.Fatalf("Hamming = %d, want 1", got)
	}
	if v.String(4) != "1000" {
		t.Fatalf("String = %q", v.String(4))
	}
	if v.Equal(NewBitVec(4)) {
		t.Fatal("Equal across different lengths")
	}
}

// TestBitVecHashQuick: equal vectors hash equal; a single-bit flip changes
// the hash (FNV-1a has no 1-bit collisions on short inputs in practice —
// treat as regression guard).
func TestBitVecHashQuick(t *testing.T) {
	f := func(words []uint64, flip uint16) bool {
		if len(words) == 0 {
			return true
		}
		v := BitVec(words)
		c := v.Clone()
		if v.Hash() != c.Hash() {
			return false
		}
		bit := int(flip) % (64 * len(words))
		c.Set(bit, 1-c.Get(bit))
		return v.Hash() != c.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWordsFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 64: 1, 65: 2, 128: 2, 129: 3}
	for n, want := range cases {
		if got := WordsFor(n); got != want {
			t.Errorf("WordsFor(%d) = %d, want %d", n, got, want)
		}
	}
}
