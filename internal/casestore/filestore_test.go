package casestore

// Durability tests for the file backend: journal round-trips, the full
// truncation matrix over every byte offset of the journal (a crash-torn
// tail must never fail the open, only shorten the history), corruption
// verdicts for damage that cannot be a crash artifact, snapshot
// rotation, and the crash window between snapshot and truncate.

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sddict/internal/faultfs"
)

// openFileStore opens dir and fails the test on error.
func openFileStore(t *testing.T, dir string, opt FileOptions) *FileStore {
	t.Helper()
	f, err := OpenDir(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// appendCases journals n exact cases with IDs 1..n.
func appendCases(t *testing.T, f *FileStore, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		c := exactCase("aaaa", []uint64{uint64(i)}, i)
		c.ID = int64(i)
		if err := f.Append(c); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func caseIDs(cases []Case) []int64 {
	ids := make([]int64, len(cases))
	for i, c := range cases {
		ids[i] = c.ID
	}
	return ids
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := openFileStore(t, dir, FileOptions{SnapshotEvery: -1})
	appendCases(t, f, 3)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g := openFileStore(t, dir, FileOptions{SnapshotEvery: -1})
	cases, err := g.Cases()
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 3 {
		t.Fatalf("reloaded %d cases, want 3 (ids %v)", len(cases), caseIDs(cases))
	}
	for i, c := range cases {
		if c.ID != int64(i+1) || len(c.Candidates) != 1 || c.Candidates[0].Fault != i+1 {
			t.Errorf("case %d reloaded as %+v", i+1, c)
		}
	}
}

// TestJournalTruncationMatrix cuts the journal at every byte offset:
// every prefix must open without error — a torn tail is the one damage
// a crash legitimately produces — and yield exactly the cases whose
// lines survived intact (a final line missing only its newline still
// counts: the append's single write made it durable).
func TestJournalTruncationMatrix(t *testing.T) {
	src := t.TempDir()
	f := openFileStore(t, src, FileOptions{SnapshotEvery: -1})
	appendCases(t, f, 3)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	journal, err := os.ReadFile(filepath.Join(src, journalName))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(journal, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) != 3 {
		t.Fatalf("journal has %d lines, want 3", len(lines))
	}

	for cut := 0; cut <= len(journal); cut++ {
		prefix := journal[:cut]
		// Expected survivors: every line fully inside the prefix, plus a
		// final line whose content is complete but whose newline was cut.
		want, off := 0, 0
		for _, line := range lines {
			if off+len(line) <= cut || off+len(line)-1 == cut {
				want++
			}
			off += len(line)
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalName), prefix, 0o644); err != nil {
			t.Fatal(err)
		}
		g, err := OpenDir(dir, FileOptions{SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("cut %d/%d: open failed: %v", cut, len(journal), err)
		}
		cases, _ := g.Cases()
		if len(cases) != want {
			t.Errorf("cut %d/%d: loaded %d cases, want %d (ids %v)",
				cut, len(journal), len(cases), want, caseIDs(cases))
		}
		for i, c := range cases {
			if c.ID != int64(i+1) {
				t.Errorf("cut %d: survivor %d has ID %d, want the uncut prefix", cut, i, c.ID)
			}
		}
		g.Close()
	}
}

// TestJournalCorruptLineRejected: a malformed line that IS
// newline-terminated was fully written and then damaged — that is
// corruption, not a crash, and must fail loudly.
func TestJournalCorruptLineRejected(t *testing.T) {
	dir := t.TempDir()
	f := openFileStore(t, dir, FileOptions{SnapshotEvery: -1})
	appendCases(t, f, 1)
	f.Close()
	j, err := os.OpenFile(filepath.Join(dir, journalName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Write([]byte("{definitely not json}\n")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	if _, err := OpenDir(dir, FileOptions{SnapshotEvery: -1}); !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("open over a newline-terminated bad line: %v, want ErrCorruptStore", err)
	}
}

// TestSnapshotCorruptRejected: the snapshot is written atomically, so
// any damage is bit rot — never tolerated silently.
func TestSnapshotCorruptRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotName), []byte("[{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir, FileOptions{}); !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("open over a damaged snapshot: %v, want ErrCorruptStore", err)
	}
}

// TestSnapshotRotation: every SnapshotEvery appends the journal folds
// into an atomic snapshot and truncates; the full history survives a
// reopen and the journal only holds the unsnapshotted tail.
func TestSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	f := openFileStore(t, dir, FileOptions{SnapshotEvery: 2})
	appendCases(t, f, 5)
	f.Close()

	snap, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		t.Fatalf("snapshot after rotation: %v", err)
	}
	var snapped []Case
	if err := json.Unmarshal(snap, &snapped); err != nil {
		t.Fatal(err)
	}
	if len(snapped) != 4 {
		t.Errorf("snapshot holds %d cases, want 4 (rotations after appends 2 and 4)", len(snapped))
	}
	journal, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(journal, []byte("\n")); n != 1 {
		t.Errorf("journal holds %d lines after rotation, want only the unsnapshotted case 5", n)
	}

	g := openFileStore(t, dir, FileOptions{SnapshotEvery: 2})
	cases, _ := g.Cases()
	if len(cases) != 5 {
		t.Fatalf("reopen after rotation: %d cases, want 5 (ids %v)", len(cases), caseIDs(cases))
	}
}

// TestCrashBetweenSnapshotAndTruncate: the rotation order (snapshot
// first, truncate second) means a crash in between duplicates cases
// across the two files; the dedup-by-ID at open makes that harmless.
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	f := openFileStore(t, dir, FileOptions{SnapshotEvery: -1})
	appendCases(t, f, 3)
	f.Close()
	journal, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: snapshot holds cases 1-2, the journal
	// still holds all three lines.
	var all []Case
	g := openFileStore(t, dir, FileOptions{SnapshotEvery: -1})
	if all, err = g.Cases(); err != nil || len(all) != 3 {
		t.Fatalf("precondition: %d cases (%v)", len(all), err)
	}
	g.Close()
	snap, err := json.Marshal(all[:2])
	if err != nil {
		t.Fatal(err)
	}
	crash := t.TempDir()
	if err := os.WriteFile(filepath.Join(crash, snapshotName), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(crash, journalName), journal, 0o644); err != nil {
		t.Fatal(err)
	}

	h := openFileStore(t, crash, FileOptions{SnapshotEvery: -1})
	cases, _ := h.Cases()
	if len(cases) != 3 {
		t.Fatalf("after crash window: %d cases, want 3 deduped (ids %v)", len(cases), caseIDs(cases))
	}
	for i, c := range cases {
		if c.ID != int64(i+1) {
			t.Errorf("case %d has ID %d after dedup", i, c.ID)
		}
	}
}

// TestTornWriteRecovery drives the faultfs torn-tail injection the
// chaos leg uses: truncating the journal mid-line loses exactly that
// final case and nothing else, even with a snapshot in play.
func TestTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	f := openFileStore(t, dir, FileOptions{SnapshotEvery: 2})
	appendCases(t, f, 5) // snapshot holds 1-4, journal holds 5
	f.Close()
	jpath := filepath.Join(dir, journalName)
	info, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultfs.TruncateFile(jpath, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	g := openFileStore(t, dir, FileOptions{SnapshotEvery: 2})
	cases, _ := g.Cases()
	if len(cases) != 4 {
		t.Fatalf("after torn journal: %d cases, want snapshot's 4 (ids %v)", len(cases), caseIDs(cases))
	}

	// The store must stay writable after recovery: OpenDir repairs the
	// torn tail (truncates the fragment) so the next append starts a
	// fresh line instead of concatenating onto garbage. Case 5 is lost —
	// that is the crash contract — but case 6 must survive.
	c := exactCase("aaaa", []uint64{0b111111}, 6)
	c.ID = 6
	if err := g.Append(c); err != nil {
		t.Fatal(err)
	}
	g.Close()
	h := openFileStore(t, dir, FileOptions{SnapshotEvery: 2})
	cases, _ = h.Cases()
	if len(cases) != 5 || cases[4].ID != 6 {
		t.Fatalf("append after torn-tail repair: %d cases (ids %v), want 1-4 and 6", len(cases), caseIDs(cases))
	}
}
