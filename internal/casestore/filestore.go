package casestore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sddict/internal/core"
	"sddict/internal/faultfs"
)

// ErrCorruptStore marks structural damage in a case-store directory
// that is *not* a crash-torn journal tail: an unparsable snapshot, or a
// malformed journal line that is newline-terminated (i.e. was fully
// written and then damaged). Torn tails — the one failure mode a
// SIGKILL mid-append legitimately produces — are tolerated silently,
// exactly like obs.ReadEvents tolerates a torn trace.
var ErrCorruptStore = errors.New("casestore: corrupt store")

const (
	journalName  = "journal.jsonl"
	snapshotName = "snapshot.json"

	// defaultSnapshotEvery is how many journal appends trigger a
	// snapshot + journal rotation.
	defaultSnapshotEvery = 256
)

// FileStore is the durable backend: a directory holding an append-only
// JSONL journal (one case per line, one Write call per case so a crash
// tears at most the final line) and a periodic snapshot written through
// core.AtomicWriteFile. On open, cases = snapshot ∪ journal, deduped by
// ID — the journal is only rotated *after* its cases are safely inside
// a snapshot, so a crash between the two steps duplicates cases rather
// than losing them, and the dedup makes the duplicate harmless.
//
// FileStore methods are not themselves concurrency-safe; the Store
// front serializes access.
type FileStore struct {
	dir           string
	fs            faultfs.FS
	snapshotEvery int

	journal      *os.File
	sinceRotate  int
	loaded       []Case
	snapshotTail []Case // everything currently durable, for the next snapshot
}

// FileOptions parameterizes OpenDir. The zero value is usable.
type FileOptions struct {
	// SnapshotEvery is the number of appended cases between snapshot
	// rotations. Default 256; negative disables snapshots (journal-only).
	SnapshotEvery int
	// FS is the filesystem reads go through (the fault-injection seam);
	// writes always go to the real filesystem. Default faultfs.OS.
	FS faultfs.FS
}

// OpenDir opens (creating if needed) the durable case store at dir.
func OpenDir(dir string, opt FileOptions) (*FileStore, error) {
	if opt.SnapshotEvery == 0 {
		opt.SnapshotEvery = defaultSnapshotEvery
	}
	if opt.FS == nil {
		opt.FS = faultfs.OS
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("casestore: creating %s: %w", dir, err)
	}
	fst := &FileStore{dir: dir, fs: opt.FS, snapshotEvery: opt.SnapshotEvery}
	cases, validLen, needNL, err := fst.loadAll()
	if err != nil {
		return nil, err
	}
	fst.loaded = cases
	fst.snapshotTail = append([]Case(nil), cases...)
	j, err := os.OpenFile(filepath.Join(dir, journalName), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("casestore: opening journal: %w", err)
	}
	// Repair the crash-torn tail before appending: without this, the
	// next append would concatenate onto the torn fragment and turn a
	// tolerated crash artifact into a newline-terminated corrupt line —
	// a permanent ErrCorruptStore on the open after that. Truncating to
	// the last structurally sound byte (and restoring the final line's
	// missing newline) is the WAL recovery step.
	if info, serr := j.Stat(); serr == nil && info.Size() > validLen {
		if err := j.Truncate(validLen); err != nil {
			j.Close()
			return nil, fmt.Errorf("casestore: repairing torn journal tail: %w", err)
		}
	}
	if needNL {
		if _, err := j.Write([]byte("\n")); err != nil {
			j.Close()
			return nil, fmt.Errorf("casestore: repairing torn journal tail: %w", err)
		}
	}
	fst.journal = j
	return fst, nil
}

// loadAll reads snapshot + journal and returns the deduped, ID-sorted
// case history, plus the journal's sound byte length and whether its
// final line needs a newline restored (see OpenDir's repair step).
func (f *FileStore) loadAll() ([]Case, int64, bool, error) {
	var cases []Case
	snap, err := f.readSnapshot()
	if err != nil {
		return nil, 0, false, err
	}
	cases = append(cases, snap...)
	jcases, validLen, needNL, err := f.readJournal()
	if err != nil {
		return nil, 0, false, err
	}
	seen := make(map[int64]bool, len(cases))
	for _, c := range cases {
		seen[c.ID] = true
	}
	for _, c := range jcases {
		if !seen[c.ID] {
			seen[c.ID] = true
			cases = append(cases, c)
		}
	}
	sort.Slice(cases, func(a, b int) bool { return cases[a].ID < cases[b].ID })
	return cases, validLen, needNL, nil
}

// readSnapshot parses snapshot.json; a missing snapshot is an empty
// history, a damaged one is ErrCorruptStore (it was written atomically,
// so damage is bit rot, not a crash artifact).
func (f *FileStore) readSnapshot() ([]Case, error) {
	file, err := f.fs.Open(filepath.Join(f.dir, snapshotName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("casestore: opening snapshot: %w", err)
	}
	defer file.Close()
	data, err := io.ReadAll(file)
	if err != nil {
		return nil, fmt.Errorf("casestore: reading snapshot: %w", err)
	}
	var cases []Case
	if err := json.Unmarshal(data, &cases); err != nil {
		return nil, fmt.Errorf("casestore: parsing snapshot (atomic write, so this is bit rot): %w: %w", err, ErrCorruptStore)
	}
	return cases, nil
}

// readJournal parses journal.jsonl with obs.ReadEvents semantics: a
// final line without a newline is a crash-torn append and yields the
// parsed prefix; a malformed line that *is* newline-terminated (or is
// followed by more lines) is corruption and fails with ErrCorruptStore.
//
// Alongside the cases it returns the byte length of the structurally
// sound prefix (everything up to and including the last usable line)
// and whether the final line parsed but is missing its newline — the
// inputs to OpenDir's torn-tail repair.
func (f *FileStore) readJournal() ([]Case, int64, bool, error) {
	file, err := f.fs.Open(filepath.Join(f.dir, journalName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, false, nil
		}
		return nil, 0, false, fmt.Errorf("casestore: opening journal: %w", err)
	}
	defer file.Close()
	br := bufio.NewReader(file)
	var cases []Case
	var valid int64
	for {
		line, err := br.ReadString('\n')
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, 0, false, fmt.Errorf("casestore: reading journal: %w", err)
		}
		complete := err == nil
		if trimmed := strings.TrimSpace(line); trimmed != "" {
			var c Case
			if uerr := json.Unmarshal([]byte(trimmed), &c); uerr != nil {
				if !complete {
					// Torn tail: the writer died mid-append. Keep the prefix.
					return cases, valid, false, nil
				}
				return nil, 0, false, fmt.Errorf("casestore: journal case %d: %w: %w", len(cases)+1, uerr, ErrCorruptStore)
			}
			cases = append(cases, c)
			valid += int64(len(line))
			if !complete {
				// The append's single write landed fully, only the trailing
				// newline is conceptually missing (it is part of the same
				// write, so in practice this means a reader raced the crash).
				return cases, valid, true, nil
			}
			continue
		}
		if !complete {
			// Whitespace-only torn tail: drop it.
			return cases, valid, false, nil
		}
		valid += int64(len(line))
	}
}

// Append journals c durably (one write, fsync'd) and rotates journal
// into snapshot every snapshotEvery appends.
func (f *FileStore) Append(c Case) error {
	line, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("casestore: encoding case %d: %w", c.ID, err)
	}
	if _, err := f.journal.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("casestore: appending case %d: %w", c.ID, err)
	}
	if err := f.journal.Sync(); err != nil {
		return fmt.Errorf("casestore: syncing journal: %w", err)
	}
	f.snapshotTail = append(f.snapshotTail, c)
	f.sinceRotate++
	if f.snapshotEvery > 0 && f.sinceRotate >= f.snapshotEvery {
		if err := f.rotate(); err != nil {
			return err
		}
	}
	return nil
}

// rotate folds the journal into a fresh snapshot and truncates the
// journal. Order matters for crash safety: the snapshot (atomic
// temp+rename) lands first, so a crash before the truncate merely
// leaves journal entries that the snapshot already holds — deduped by
// ID on the next open.
func (f *FileStore) rotate() error {
	err := core.AtomicWriteFile(filepath.Join(f.dir, snapshotName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(f.snapshotTail)
	})
	if err != nil {
		return fmt.Errorf("casestore: writing snapshot: %w", err)
	}
	if err := f.journal.Truncate(0); err != nil {
		return fmt.Errorf("casestore: truncating journal after snapshot: %w", err)
	}
	f.sinceRotate = 0
	return nil
}

// Cases returns the history loaded at open. Appends made through this
// handle are tracked by the Store's index, not replayed here.
func (f *FileStore) Cases() ([]Case, error) { return f.loaded, nil }

// Close releases the journal handle.
func (f *FileStore) Close() error {
	if f.journal == nil {
		return nil
	}
	err := f.journal.Close()
	f.journal = nil
	if err != nil {
		return fmt.Errorf("casestore: closing journal: %w", err)
	}
	return nil
}
