// Package casestore is the diagnosis memory behind sddserve: every
// diagnosis session is recorded as a case — (circuit, test-set
// checksum, observed signature, ranked candidates, outcome) — and new
// sessions run a recall step against prior cases before paying for a
// full recompute. Recall matches the observed signature exactly (hash
// index over the packed words) and then approximately within a small
// Hamming-distance budget using word-wise XOR + popcount over the
// packed []uint64 signature, returning the cached ranking with a
// confidence score. An exact recall reproduces the recompute result
// byte for byte (same signature, same artifact, deterministic
// ranking). A near match is only *eligible*: the serve layer must
// still run the false-dedup guard — the cached candidate set has to
// equal the dictionary's top (minimum-distance) candidate set for the
// new signature — and a served near hit is explicitly marked as a
// deduplication, never passed off as a fresh diagnosis (DESIGN.md
// §15).
//
// Two backends implement persistence behind one interface: Mem (a
// bounded slice, for tests and ephemeral servers) and the durable file
// store in filestore.go (append-only JSONL journal + periodic atomic
// snapshot, crash-torn tails tolerated like obs.ReadEvents).
//
// The correlate step (correlate.go) clusters recurring candidate sets
// across sessions — "serial killers": the same defect class showing up
// again across circuits or test-set revisions.
package casestore

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"sddict/internal/logic"
	"sddict/internal/obs"
)

// Candidate is one ranked fault candidate as recorded in a case —
// mirror of the serve layer's candidate (fault row index, class name,
// Hamming distance; distance 0 for members of an exact candidate set).
type Candidate struct {
	Fault    int    `json:"fault"`
	Name     string `json:"name"`
	Distance int    `json:"distance"`
}

// Case is one recorded diagnosis session. Signature is the observed
// response signature packed into []uint64 words (logic.BitVec layout,
// SigBits valid bits); Checksum is the artifact content identity the
// diagnosis ran against and TestChecksum the test-set identity from the
// artifact header, so recall never crosses dictionary revisions and
// correlation can tell "same defect, new test set" apart.
type Case struct {
	ID           int64       `json:"id"`
	TimeMs       int64       `json:"t_ms"`
	Circuit      string      `json:"circuit"`
	TestSet      string      `json:"test_set"`
	Checksum     string      `json:"checksum"`
	TestChecksum string      `json:"test_checksum,omitempty"`
	SigBits      int         `json:"sig_bits"`
	Signature    []uint64    `json:"signature"`
	Exact        bool        `json:"exact"`
	TopK         int         `json:"top_k"`
	Failing      int         `json:"failing"`
	Candidates   []Candidate `json:"candidates"`
}

// sig returns the case signature as a BitVec (no copy).
func (c *Case) sig() logic.BitVec { return logic.BitVec(c.Signature) }

// Backend is the persistence seam: Mem keeps cases in memory, the file
// store journals them. Append must be durable when it returns (the
// store serializes calls); Cases returns everything recorded, ID
// ascending — it is read once at open to build the recall index.
type Backend interface {
	Append(Case) error
	Cases() ([]Case, error)
	Close() error
}

// RecallKind classifies a recall verdict.
type RecallKind int

const (
	// Miss: no prior case within the Hamming budget — run the full
	// recompute and record the outcome.
	Miss RecallKind = iota
	// Near: a prior case within the budget (but not exact). The caller
	// must run the false-dedup guard before serving its ranking.
	Near
	// Exact: a prior case with the identical signature against the
	// identical artifact; its recorded result is the recompute result.
	Exact
)

// String names the verdict for reports and trace events.
func (k RecallKind) String() string {
	switch k {
	case Exact:
		return "exact"
	case Near:
		return "near"
	default:
		return "miss"
	}
}

// Recall is one recall verdict. Case is nil on a miss. Confidence is 1
// for an exact hit and discounted linearly with distance for a near hit
// (distance d in [1, budget] maps to 1 - d/(budget+1)), 0 on a miss.
type Recall struct {
	Kind       RecallKind
	Case       *Case
	Distance   int
	Confidence float64
}

// Options parameterizes a Store. The zero value is usable.
type Options struct {
	// Budget is the maximum Hamming distance for a near match.
	// Default 2; 0 keeps the default, negative disables near matching.
	Budget int
	// Clock supplies case timestamps. Default time.Now.
	Clock func() time.Time
}

// Store is the recall front over a backend: an in-memory index of every
// recorded case, keyed by artifact checksum, with a hash map for exact
// matches and a linear XOR+popcount scan for near matches. All methods
// are safe for concurrent use.
type Store struct {
	backend Backend
	budget  int
	clock   func() time.Time

	mu     sync.RWMutex
	nextID int64
	total  int
	byDict map[string]*dictIndex
}

// dictIndex is the per-artifact recall index.
type dictIndex struct {
	exact map[uint64][]*Case // Signature hash -> cases (hash collisions re-verified)
	cases []*Case            // ID ascending, for near scans and listing
}

// Open builds a Store over backend, loading every previously recorded
// case into the recall index. The Store owns the backend: Close closes
// it.
func Open(backend Backend, opt Options) (*Store, error) {
	if opt.Budget == 0 {
		opt.Budget = 2
	}
	if opt.Clock == nil {
		opt.Clock = time.Now
	}
	s := &Store{
		backend: backend,
		budget:  opt.Budget,
		clock:   opt.Clock,
		byDict:  make(map[string]*dictIndex),
	}
	cases, err := backend.Cases()
	if err != nil {
		return nil, fmt.Errorf("casestore: loading prior cases: %w", err)
	}
	for i := range cases {
		s.indexLocked(&cases[i])
	}
	return s, nil
}

// Close releases the backend.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	return s.backend.Close()
}

// Len returns the number of recorded cases.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.total
}

// indexLocked threads c into the recall index (caller holds mu or is
// single-threaded during Open).
func (s *Store) indexLocked(c *Case) {
	if c.ID > s.nextID {
		s.nextID = c.ID
	}
	di := s.byDict[c.Checksum]
	if di == nil {
		di = &dictIndex{exact: make(map[uint64][]*Case)}
		s.byDict[c.Checksum] = di
	}
	h := c.sig().Hash()
	di.exact[h] = append(di.exact[h], c)
	di.cases = append(di.cases, c)
	s.total++
}

// Recall matches sig against prior cases recorded for the artifact with
// the given checksum: exact first (hash + full equality), then the
// nearest case within the Hamming budget (ties broken by lowest case
// ID, so the verdict is deterministic regardless of recording
// concurrency). An exact verdict additionally requires the recorded
// topK to be compatible with the request's: an exact-outcome case is
// served at any topK (the candidate set is the equivalence class and
// ignores topK), a ranked-outcome case only when topK matches, since
// the recompute path would truncate differently otherwise.
func (s *Store) Recall(checksum string, sig logic.BitVec, topK int) Recall {
	s.mu.RLock()
	defer s.mu.RUnlock()
	di := s.byDict[checksum]
	if di == nil {
		return Recall{Kind: Miss}
	}
	for _, c := range di.exact[sig.Hash()] {
		if len(c.Signature) == len(sig) && c.sig().Equal(sig) && (c.Exact || c.TopK == topK) {
			return Recall{Kind: Exact, Case: c, Confidence: 1}
		}
	}
	if s.budget < 0 {
		return Recall{Kind: Miss}
	}
	var best *Case
	bestDist := s.budget + 1
	for _, c := range di.cases {
		if len(c.Signature) != len(sig) || !c.Exact {
			// Only exact-outcome cases are near-servable: a ranked
			// fallback recorded for a different signature has distances
			// relative to that signature, not this one.
			continue
		}
		if d := c.sig().Hamming(sig); d < bestDist {
			best, bestDist = c, d
		}
	}
	if best == nil || bestDist == 0 || bestDist > s.budget {
		// bestDist == 0 cannot serve as Near: an identical signature
		// already failed the exact test above (topK-incompatible), so
		// falling through to recompute is the only correct verdict.
		return Recall{Kind: Miss}
	}
	return Recall{
		Kind:       Near,
		Case:       best,
		Distance:   bestDist,
		Confidence: 1 - float64(bestDist)/float64(s.budget+1),
	}
}

// Record persists a new case (a recall miss that went through the full
// recompute), assigning its ID and timestamp, and threads it into the
// recall index. The populated case is returned.
func (s *Store) Record(c Case) (Case, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	c.ID = s.nextID
	c.TimeMs = s.clock().UnixMilli()
	if err := s.backend.Append(c); err != nil {
		s.nextID--
		return Case{}, fmt.Errorf("casestore: recording case: %w", err)
	}
	stored := c
	s.indexLocked(&stored)
	return c, nil
}

// RecordCtx is Record under a traced request: if ctx carries a request
// span (DESIGN.md §16), the append runs inside a "record" child stage,
// so span journals attribute case-store persistence time — the only
// disk write on the /diagnose path — separately from the scan.
func (s *Store) RecordCtx(ctx context.Context, c Case) (Case, error) {
	sp := obs.SpanFrom(ctx)
	sp.BeginStage("record")
	defer sp.EndStage()
	return s.Record(c)
}

// Cases returns a copy of every recorded case, ID ascending across all
// artifacts — the /cases listing and the correlate input.
func (s *Store) Cases() []Case {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Case, 0, s.total)
	for _, di := range s.byDict {
		for _, c := range di.cases {
			out = append(out, *c)
		}
	}
	// byDict iteration order is nondeterministic; restore ID order.
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Mem is the in-memory backend: cases live and die with the process.
type Mem struct {
	mu    sync.Mutex
	cases []Case
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem { return &Mem{} }

// Append records c.
func (m *Mem) Append(c Case) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cases = append(m.cases, c)
	return nil
}

// Cases returns the recorded cases in append order.
func (m *Mem) Cases() ([]Case, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Case, len(m.cases))
	copy(out, m.cases)
	return out, nil
}

// Close is a no-op.
func (m *Mem) Close() error { return nil }
