package casestore

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Cluster is one recurring candidate set across the recorded cases: the
// same set of fault-class names diagnosed more than once. Serial marks
// the "serial killer" pattern — the same candidate set recurring across
// more than one circuit or more than one artifact revision (a defect
// class that survives test-set changes), the cross-session correlation
// ROADMAP item 3 asks for.
type Cluster struct {
	// Key is the canonical cluster identity: the sorted candidate names
	// joined with " | ".
	Key        string   `json:"key"`
	Candidates []string `json:"candidates"`
	Count      int      `json:"count"`
	Exact      int      `json:"exact"`
	Circuits   []string `json:"circuits"`
	Checksums  []string `json:"checksums"`
	Serial     bool     `json:"serial"`
	CaseIDs    []int64  `json:"case_ids"`
}

// Report is the correlate output: every candidate set seen at least
// twice, ordered by recurrence (count descending, key ascending — a
// deterministic order for a given case history).
type Report struct {
	TotalCases int       `json:"total_cases"`
	Clusters   []Cluster `json:"clusters"`
}

// clusterKey canonicalizes a case's candidate set. Names are the
// cross-circuit identity (fault row indices are dictionary-local);
// unnamed candidates fall back to their row index.
func clusterKey(c Case) (string, []string) {
	names := make([]string, len(c.Candidates))
	for i, cand := range c.Candidates {
		if cand.Name != "" {
			names[i] = cand.Name
		} else {
			names[i] = fmt.Sprintf("#%d", cand.Fault)
		}
	}
	sort.Strings(names)
	return strings.Join(names, " | "), names
}

// Correlate clusters the given case history by candidate set.
func Correlate(cases []Case) Report {
	type agg struct {
		names     []string
		count     int
		exact     int
		circuits  map[string]bool
		checksums map[string]bool
		ids       []int64
	}
	byKey := make(map[string]*agg)
	for _, c := range cases {
		if len(c.Candidates) == 0 {
			continue
		}
		key, names := clusterKey(c)
		a := byKey[key]
		if a == nil {
			a = &agg{names: names, circuits: make(map[string]bool), checksums: make(map[string]bool)}
			byKey[key] = a
		}
		a.count++
		if c.Exact {
			a.exact++
		}
		a.circuits[c.Circuit] = true
		a.checksums[c.Checksum] = true
		a.ids = append(a.ids, c.ID)
	}
	r := Report{TotalCases: len(cases)}
	for key, a := range byKey {
		if a.count < 2 {
			continue
		}
		cl := Cluster{
			Key:        key,
			Candidates: a.names,
			Count:      a.count,
			Exact:      a.exact,
			Circuits:   sortedSet(a.circuits),
			Checksums:  sortedSet(a.checksums),
			CaseIDs:    a.ids,
		}
		sort.Slice(cl.CaseIDs, func(x, y int) bool { return cl.CaseIDs[x] < cl.CaseIDs[y] })
		cl.Serial = len(cl.Circuits) > 1 || len(cl.Checksums) > 1
		r.Clusters = append(r.Clusters, cl)
	}
	sort.Slice(r.Clusters, func(a, b int) bool {
		if r.Clusters[a].Count != r.Clusters[b].Count {
			return r.Clusters[a].Count > r.Clusters[b].Count
		}
		return r.Clusters[a].Key < r.Clusters[b].Key
	})
	return r
}

// sortedSet flattens a string set deterministically.
func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteText renders the report in the sddstat idiom: one headline, one
// line per cluster, serial clusters flagged.
func (r Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "case correlation: %d cases, %d recurring candidate sets\n",
		r.TotalCases, len(r.Clusters)); err != nil {
		return err
	}
	for _, cl := range r.Clusters {
		tag := ""
		if cl.Serial {
			tag = "  [serial: recurs across " + recurrence(cl) + "]"
		}
		if _, err := fmt.Fprintf(w, "  %dx (%d exact) {%s} in %d circuit(s), %d revision(s)%s\n",
			cl.Count, cl.Exact, cl.Key, len(cl.Circuits), len(cl.Checksums), tag); err != nil {
			return err
		}
	}
	return nil
}

// recurrence names the axes a serial cluster spans.
func recurrence(cl Cluster) string {
	switch {
	case len(cl.Circuits) > 1 && len(cl.Checksums) > 1:
		return "circuits and revisions"
	case len(cl.Circuits) > 1:
		return "circuits"
	default:
		return "revisions"
	}
}
