package casestore

// White-box tests for the recall front: exact/near/miss verdicts,
// topK compatibility, confidence discounting, deterministic tie-breaks,
// and the Store/Backend contract.

import (
	"fmt"
	"testing"
	"time"

	"sddict/internal/logic"
)

// fixedClock keeps recorded timestamps deterministic.
func fixedClock() time.Time { return time.UnixMilli(1_700_000_000_000) }

// exactCase builds an exact-outcome case for the given packed signature.
func exactCase(checksum string, sig []uint64, faults ...int) Case {
	c := Case{
		Circuit: "toy", TestSet: "exhaustive", Checksum: checksum,
		SigBits: 64, Signature: sig, Exact: true, TopK: 5,
	}
	for _, f := range faults {
		c.Candidates = append(c.Candidates, Candidate{Fault: f, Name: fmt.Sprintf("g%d s-a-0", f)})
	}
	return c
}

func openMem(t *testing.T, opt Options) *Store {
	t.Helper()
	if opt.Clock == nil {
		opt.Clock = fixedClock
	}
	s, err := Open(NewMem(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRecallExactHit(t *testing.T) {
	s := openMem(t, Options{})
	rec, err := s.Record(exactCase("aaaa", []uint64{0b10}, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != 1 || rec.TimeMs != fixedClock().UnixMilli() {
		t.Fatalf("recorded case: %+v", rec)
	}

	rc := s.Recall("aaaa", logic.BitVec{0b10}, 5)
	if rc.Kind != Exact || rc.Case == nil || rc.Case.ID != 1 || rc.Confidence != 1 {
		t.Fatalf("exact recall: %+v", rc)
	}
	// Exact-outcome cases serve at any topK: the equivalence class does
	// not depend on the truncation bound.
	if rc := s.Recall("aaaa", logic.BitVec{0b10}, 1); rc.Kind != Exact {
		t.Errorf("exact-outcome case at topK=1: %v, want exact", rc.Kind)
	}
	// A different artifact checksum never recalls across revisions.
	if rc := s.Recall("bbbb", logic.BitVec{0b10}, 5); rc.Kind != Miss {
		t.Errorf("cross-checksum recall: %v, want miss", rc.Kind)
	}
}

func TestRecallNearWithinBudget(t *testing.T) {
	s := openMem(t, Options{}) // default budget 2
	if _, err := s.Record(exactCase("aaaa", []uint64{0b1100}, 1)); err != nil {
		t.Fatal(err)
	}

	rc := s.Recall("aaaa", logic.BitVec{0b1101}, 5) // distance 1
	if rc.Kind != Near || rc.Distance != 1 {
		t.Fatalf("distance-1 recall: %+v", rc)
	}
	if want := 1 - float64(1)/float64(3); rc.Confidence != want {
		t.Errorf("confidence %v, want %v", rc.Confidence, want)
	}
	rc = s.Recall("aaaa", logic.BitVec{0b0110}, 5) // distance 2
	if rc.Kind != Near || rc.Distance != 2 || rc.Confidence != 1-float64(2)/float64(3) {
		t.Fatalf("distance-2 recall: %+v", rc)
	}
	// Distance 3 exceeds the budget.
	if rc := s.Recall("aaaa", logic.BitVec{0b0011}, 5); rc.Kind != Miss {
		t.Errorf("distance-3 recall: %v, want miss", rc.Kind)
	}
}

func TestRecallNearDisabled(t *testing.T) {
	s := openMem(t, Options{Budget: -1})
	if _, err := s.Record(exactCase("aaaa", []uint64{0b1100}, 1)); err != nil {
		t.Fatal(err)
	}
	if rc := s.Recall("aaaa", logic.BitVec{0b1101}, 5); rc.Kind != Miss {
		t.Errorf("near with negative budget: %v, want miss", rc.Kind)
	}
	if rc := s.Recall("aaaa", logic.BitVec{0b1100}, 5); rc.Kind != Exact {
		t.Errorf("exact with negative budget: %v, want exact", rc.Kind)
	}
}

func TestRecallTopKCompatibility(t *testing.T) {
	s := openMem(t, Options{})
	ranked := exactCase("aaaa", []uint64{0b111}, 0, 1)
	ranked.Exact = false
	ranked.TopK = 5
	ranked.Candidates[0].Distance = 1
	ranked.Candidates[1].Distance = 2
	if _, err := s.Record(ranked); err != nil {
		t.Fatal(err)
	}

	if rc := s.Recall("aaaa", logic.BitVec{0b111}, 5); rc.Kind != Exact {
		t.Errorf("ranked case at its own topK: %v, want exact", rc.Kind)
	}
	// A ranked-outcome case truncates differently at another topK, and
	// its identical signature must not resurface as a near hit either.
	if rc := s.Recall("aaaa", logic.BitVec{0b111}, 3); rc.Kind != Miss {
		t.Errorf("ranked case at different topK: %v, want miss", rc.Kind)
	}
	// Ranked-outcome cases are never near-servable: their distances are
	// relative to their own signature, not the query's.
	if rc := s.Recall("aaaa", logic.BitVec{0b110}, 5); rc.Kind != Miss {
		t.Errorf("near against ranked-only history: %v, want miss", rc.Kind)
	}
}

func TestRecallNearTieBreaksLowestID(t *testing.T) {
	s := openMem(t, Options{})
	if _, err := s.Record(exactCase("aaaa", []uint64{0b01}, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Record(exactCase("aaaa", []uint64{0b10}, 0)); err != nil {
		t.Fatal(err)
	}
	// 0b11 is at distance 1 from both recorded signatures; the verdict
	// must deterministically pick the lower case ID.
	rc := s.Recall("aaaa", logic.BitVec{0b11}, 5)
	if rc.Kind != Near || rc.Case.ID != 1 {
		t.Fatalf("tie recall: %+v, want case 1", rc)
	}
}

func TestRecordAssignsSequentialIDs(t *testing.T) {
	s := openMem(t, Options{})
	for i := 0; i < 3; i++ {
		rec, err := s.Record(exactCase("aaaa", []uint64{uint64(1) << i}, i))
		if err != nil {
			t.Fatal(err)
		}
		if rec.ID != int64(i+1) {
			t.Errorf("case %d got ID %d", i, rec.ID)
		}
	}
	cases := s.Cases()
	if len(cases) != 3 || s.Len() != 3 {
		t.Fatalf("Cases() returned %d, Len %d", len(cases), s.Len())
	}
	for i, c := range cases {
		if c.ID != int64(i+1) {
			t.Errorf("Cases()[%d].ID = %d, want ascending", i, c.ID)
		}
	}
}

// TestOpenLoadsPriorCases proves the backend history rebuilds the
// recall index and the ID sequence continues past it.
func TestOpenLoadsPriorCases(t *testing.T) {
	mem := NewMem()
	prior := exactCase("aaaa", []uint64{0b10}, 0)
	prior.ID = 7
	if err := mem.Append(prior); err != nil {
		t.Fatal(err)
	}
	s, err := Open(mem, Options{Clock: fixedClock})
	if err != nil {
		t.Fatal(err)
	}
	if rc := s.Recall("aaaa", logic.BitVec{0b10}, 5); rc.Kind != Exact || rc.Case.ID != 7 {
		t.Fatalf("recall of preloaded case: %+v", rc)
	}
	rec, err := s.Record(exactCase("aaaa", []uint64{0b01}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != 8 {
		t.Errorf("ID after preload: %d, want 8", rec.ID)
	}
}

// failingBackend rejects every append.
type failingBackend struct{ Mem }

func (f *failingBackend) Append(Case) error { return fmt.Errorf("disk on fire") }

// TestRecordRollsBackOnAppendError: a failed append must not leak an
// ID or a phantom index entry.
func TestRecordRollsBackOnAppendError(t *testing.T) {
	s, err := Open(&failingBackend{}, Options{Clock: fixedClock})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Record(exactCase("aaaa", []uint64{0b10}, 0)); err == nil {
		t.Fatal("Record over a failing backend succeeded")
	}
	if s.Len() != 0 {
		t.Errorf("failed record left %d cases indexed", s.Len())
	}
	if rc := s.Recall("aaaa", logic.BitVec{0b10}, 5); rc.Kind != Miss {
		t.Errorf("failed record is recallable: %v", rc.Kind)
	}
}

func TestRecallKindString(t *testing.T) {
	for k, want := range map[RecallKind]string{Miss: "miss", Near: "near", Exact: "exact"} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}
