package casestore

// Tests for the correlate step: clustering by canonical candidate set,
// the serial-killer flag, deterministic ordering, and the sddstat-style
// text rendering.

import (
	"strings"
	"testing"
)

// namedCase builds a case whose candidate set is the given names.
func namedCase(id int64, circuit, checksum string, exact bool, names ...string) Case {
	c := Case{ID: id, Circuit: circuit, Checksum: checksum, Exact: exact}
	for i, n := range names {
		c.Candidates = append(c.Candidates, Candidate{Fault: i, Name: n})
	}
	return c
}

func TestCorrelateClusters(t *testing.T) {
	cases := []Case{
		// {g1} three times in one circuit, one revision: recurring, not serial.
		namedCase(1, "s298", "aaaa", true, "g1 s-a-1"),
		namedCase(2, "s298", "aaaa", true, "g1 s-a-1"),
		namedCase(3, "s298", "aaaa", false, "g1 s-a-1"),
		// {g0,g2} across two circuits: the serial-killer pattern.
		namedCase(4, "s298", "aaaa", true, "g0 s-a-0", "g2 s-a-0"),
		namedCase(5, "s344", "bbbb", true, "g2 s-a-0", "g0 s-a-0"), // unsorted on purpose
		// Singleton set: excluded from the report.
		namedCase(6, "s298", "aaaa", true, "g7 s-a-1"),
		// Candidate-less case: ignored entirely.
		{ID: 7, Circuit: "s298", Checksum: "aaaa"},
	}
	r := Correlate(cases)
	if r.TotalCases != 7 || len(r.Clusters) != 2 {
		t.Fatalf("report: total=%d clusters=%d, want 7 and 2", r.TotalCases, len(r.Clusters))
	}
	// Count descending: {g1} x3 first.
	g1 := r.Clusters[0]
	if g1.Key != "g1 s-a-1" || g1.Count != 3 || g1.Exact != 2 || g1.Serial {
		t.Errorf("g1 cluster: %+v", g1)
	}
	if len(g1.CaseIDs) != 3 || g1.CaseIDs[0] != 1 || g1.CaseIDs[2] != 3 {
		t.Errorf("g1 case IDs: %v", g1.CaseIDs)
	}
	pair := r.Clusters[1]
	if pair.Key != "g0 s-a-0 | g2 s-a-0" {
		t.Fatalf("pair key %q: candidate order must canonicalize", pair.Key)
	}
	if !pair.Serial || pair.Count != 2 || len(pair.Circuits) != 2 || len(pair.Checksums) != 2 {
		t.Errorf("pair cluster: %+v, want serial across 2 circuits and 2 revisions", pair)
	}
}

func TestCorrelateUnnamedCandidates(t *testing.T) {
	c := Case{ID: 1, Candidates: []Candidate{{Fault: 4}, {Fault: 11}}}
	key, names := clusterKey(c)
	if key != "#11 | #4" || len(names) != 2 {
		t.Errorf("unnamed key %q (names %v), want fault-index fallback", key, names)
	}
}

func TestCorrelateWriteText(t *testing.T) {
	cases := []Case{
		namedCase(1, "s298", "aaaa", true, "g1 s-a-1"),
		namedCase(2, "s344", "bbbb", true, "g1 s-a-1"),
	}
	var sb strings.Builder
	if err := Correlate(cases).WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"case correlation: 2 cases, 1 recurring candidate sets",
		"2x (2 exact) {g1 s-a-1} in 2 circuit(s), 2 revision(s)",
		"[serial: recurs across circuits and revisions]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}
