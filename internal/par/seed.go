package par

import "math/rand"

// splitMix64 is the SplitMix64 finalizer (Steele, Lea & Flood,
// "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014). It is
// used as a seed-derivation hash: statistically independent outputs for
// adjacent inputs, so per-task substreams derived from consecutive task
// indices do not correlate.
func splitMix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// golden is the SplitMix64 stream increment (2^64 / φ, odd).
const golden = 0x9E3779B97F4A7C15

// Seed derives the task-th substream seed from one root seed. It is a
// pure function of (root, task): the same pair always yields the same
// seed, on any worker, in any interleaving — the foundation of the
// pool's determinism contract. task must be >= 0.
func Seed(root int64, task int) int64 {
	return int64(splitMix64(uint64(root) + uint64(task+1)*golden))
}

// RNG returns a fresh generator for one task, seeded with Seed(root,
// task). Each task must create its own generator through this (or an
// equivalent locally seeded source) rather than capture one from the
// enclosing scope; a shared *rand.Rand consumed from multiple tasks
// draws in completion order and destroys replayability. The sddlint
// `concurrency` analyzer flags captured generators in task closures.
func RNG(root int64, task int) *rand.Rand {
	return rand.New(rand.NewSource(Seed(root, task)))
}
