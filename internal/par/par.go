// Package par is the repository's single deterministic-concurrency
// primitive: a bounded worker pool whose results are merged in task-index
// order, so every computation built on it is byte-identical regardless of
// GOMAXPROCS, worker count, or goroutine scheduling.
//
// The determinism contract has three legs (DESIGN.md §9):
//
//   - Tasks are pure functions of their index. A task may not read or
//     write state shared with other tasks; anything random it needs is
//     derived from a per-task seed (Seed/RNG, SplitMix64 substreams of
//     one root seed), never from a captured generator.
//   - Results are merged in index order. Map returns a slice indexed by
//     task; Stream delivers results to the consumer strictly in index
//     order, whatever order the workers finish in.
//   - Cancellation is cooperative. Tasks receive the pool context and
//     are expected to return early (possibly with a partial result) when
//     it is cancelled; the pool itself stops dispatching new tasks.
//
// This package is the only place in the module allowed to start
// goroutines or use sync.WaitGroup — the sddlint `concurrency` analyzer
// enforces that boundary.
package par

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool is a reusable degree-of-parallelism setting. The zero value and
// nil are both usable and mean "one worker per available CPU".
type Pool struct {
	workers int
}

// New returns a pool running at most workers tasks concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	return &Pool{workers: workers}
}

// Workers returns the effective worker count (always >= 1).
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.workers
}

// taskPanic carries a panic out of a worker goroutine so it can be
// rethrown on the caller's goroutine, where the caller's deferred
// recovery (e.g. experiment.recoverStage) can see it.
type taskPanic struct {
	value any
	stack []byte
}

// Unwrap exposes the original panic value — callers recovering a
// rethrown worker panic can type-assert against taskPanic via Value.
func (tp taskPanic) Value() any { return tp.value }

// Stack returns the worker goroutine's stack at the point of the panic.
func (tp taskPanic) Stack() []byte { return tp.stack }

func (tp taskPanic) String() string {
	return "par: task panic: " + stringify(tp.value) + "\n" + string(tp.stack)
}

func stringify(v any) string {
	switch v := v.(type) {
	case error:
		return v.Error()
	case string:
		return v
	}
	return "non-string panic value"
}

// Map runs task(ctx, i) for every i in [0, n) on the pool's workers and
// returns the results merged in index order. The first error by task
// index wins (later results are still computed but discarded), matching
// what a sequential loop would report. A task panic is captured on the
// worker and rethrown on the calling goroutine once all workers have
// stopped. Map itself never inspects ctx: tasks own cancellation and
// decide whether a cancelled context is an error (resp.BuildWorkersCtx)
// or a partial result (the restart driver uses Stream instead).
func Map[T any](ctx context.Context, p *Pool, n int, task func(ctx context.Context, i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	errs := make([]error, n)
	panics := make([]*taskPanic, n)
	w := p.Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		// Sequential fast path: no goroutines, same semantics.
		for i := 0; i < n; i++ {
			v, err := protect(ctx, i, task, &panics[i])
			if panics[i] != nil {
				panic(*panics[i])
			}
			if err != nil {
				return nil, err
			}
			results[i] = v
		}
		return results, nil
	}

	var next int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				v, err := protect(ctx, i, task, &panics[i])
				results[i], errs[i] = v, err
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if panics[i] != nil {
			panic(*panics[i])
		}
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return results, nil
}

// protect runs one task, converting a panic into a recorded taskPanic.
func protect[T any](ctx context.Context, i int, task func(ctx context.Context, i int) (T, error), sink **taskPanic) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			*sink = &taskPanic{value: r, stack: debug.Stack()}
		}
	}()
	return task(ctx, i)
}

// Stream runs task(ctx, i) for i = 0, 1, 2, ... up to limit tasks,
// delivering each result to consume strictly in index order. When
// consume returns false no further indices are dispatched; tasks already
// in flight run to completion (they see the cancelled stream through
// ctx only if the caller cancels it) and their results are discarded.
// Workers speculate at most a bounded distance past the oldest
// unconsumed index, so a stop wastes at most ~2×workers tasks.
//
// Stream returns the number of results consumed. It exists for
// sequential-equivalent search loops (Procedure 1 restarts): the
// consumer folds results exactly as the one-worker loop would, so the
// outcome is independent of the worker count; speculation only trades
// wasted work for wall-clock time.
func Stream[T any](ctx context.Context, p *Pool, limit int, task func(ctx context.Context, i int) T, consume func(i int, v T) bool) int {
	if limit <= 0 {
		return 0
	}
	w := p.Workers()
	if w > limit {
		w = limit
	}
	if w == 1 {
		consumed := 0
		for i := 0; i < limit; i++ {
			var tp *taskPanic
			v := protectValue(ctx, i, task, &tp)
			if tp != nil {
				panic(*tp)
			}
			consumed++
			if !consume(i, v) {
				break
			}
		}
		return consumed
	}

	type slot struct {
		v  T
		tp *taskPanic
	}
	// tickets bounds speculation: a worker must hold a ticket to claim an
	// index, and the coordinator issues a new ticket per consumed result.
	capacity := 2 * w
	if capacity > limit {
		capacity = limit
	}
	tickets := make(chan struct{}, capacity)
	for i := 0; i < capacity; i++ {
		tickets <- struct{}{}
	}
	done := make(chan struct{})
	type indexed struct {
		i int
		s slot
	}
	out := make(chan indexed, capacity)

	var next int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case _, ok := <-tickets:
					if !ok {
						return
					}
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= limit {
					return
				}
				var s slot
				s.v = protectValue(ctx, i, task, &s.tp)
				select {
				case out <- indexed{i, s}:
				case <-done:
					return
				}
			}
		}()
	}

	pending := make(map[int]slot)
	consumed, expect := 0, 0
	var rethrow *taskPanic
coordinate:
	for expect < limit {
		in, ok := <-out
		if !ok {
			break
		}
		pending[in.i] = in.s
		for {
			s, ok := pending[expect]
			if !ok {
				continue coordinate
			}
			delete(pending, expect)
			if s.tp != nil {
				rethrow = s.tp
				break coordinate
			}
			consumed++
			more := consume(expect, s.v)
			expect++
			if !more || expect >= limit {
				break coordinate
			}
			select {
			case tickets <- struct{}{}:
			default:
			}
		}
	}
	close(done)
	wg.Wait()
	if rethrow != nil {
		panic(*rethrow)
	}
	return consumed
}

func protectValue[T any](ctx context.Context, i int, task func(ctx context.Context, i int) T, sink **taskPanic) (v T) {
	defer func() {
		if r := recover(); r != nil {
			*sink = &taskPanic{value: r, stack: debug.Stack()}
		}
	}()
	return task(ctx, i)
}
