package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolWorkers(t *testing.T) {
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-3).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(7).Workers(); got != 7 {
		t.Errorf("New(7).Workers() = %d, want 7", got)
	}
	var p *Pool
	if got := p.Workers(); got < 1 {
		t.Errorf("nil pool Workers() = %d, want >= 1", got)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			n := 100
			got, err := Map(context.Background(), New(workers), n, func(_ context.Context, i int) (int, error) {
				return i * i, nil
			})
			if err != nil {
				t.Fatalf("Map: %v", err)
			}
			if len(got) != n {
				t.Fatalf("Map returned %d results, want %d", len(got), n)
			}
			for i, v := range got {
				if v != i*i {
					t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), New(workers), 50, func(_ context.Context, i int) (int, error) {
			switch i {
			case 7:
				return 0, errA
			case 31:
				return 0, errB
			}
			return i, nil
		})
		// The earlier index must win deterministically.
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: Map error = %v, want %v (first by index)", workers, err, errA)
		}
	}
}

func TestMapRethrowsTaskPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic not rethrown", workers)
				}
				tp, ok := r.(taskPanic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want taskPanic", workers, r)
				}
				if tp.Value() != "boom" {
					t.Fatalf("workers=%d: panic value = %v, want boom", workers, tp.Value())
				}
				if len(tp.Stack()) == 0 {
					t.Fatalf("workers=%d: no worker stack captured", workers)
				}
			}()
			Map(context.Background(), New(workers), 10, func(_ context.Context, i int) (int, error) {
				if i == 3 {
					panic("boom")
				}
				return i, nil
			})
		}()
	}
}

func TestStreamConsumesInOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var seen []int
			n := Stream(context.Background(), New(workers), 64, func(_ context.Context, i int) int {
				// Finish out of order on purpose.
				if i%3 == 0 {
					time.Sleep(time.Duration(i%5) * time.Millisecond)
				}
				return i
			}, func(i, v int) bool {
				if v != i {
					t.Errorf("consume(%d) got value %d", i, v)
				}
				seen = append(seen, i)
				return true
			})
			if n != 64 || len(seen) != 64 {
				t.Fatalf("consumed %d (callback %d), want 64", n, len(seen))
			}
			for i, v := range seen {
				if v != i {
					t.Fatalf("out-of-order consumption: position %d saw index %d", i, v)
				}
			}
		})
	}
}

func TestStreamEarlyStop(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var started int64
		n := Stream(context.Background(), New(workers), 10_000, func(_ context.Context, i int) int {
			atomic.AddInt64(&started, 1)
			return i
		}, func(i, v int) bool {
			return i < 9 // stop after consuming index 9
		})
		if n != 10 {
			t.Fatalf("workers=%d: consumed %d results, want 10", workers, n)
		}
		// Speculation is bounded: far fewer than the limit may start.
		if s := atomic.LoadInt64(&started); s > int64(10+4*workers) {
			t.Fatalf("workers=%d: %d tasks started after an early stop at 10", workers, s)
		}
	}
}

// TestStreamDeterministicFold is the contract the restart driver rests
// on: folding a stream of pure per-index values must give the same
// result at every worker count.
func TestStreamDeterministicFold(t *testing.T) {
	fold := func(workers int) (int64, int) {
		var acc int64
		n := Stream(context.Background(), New(workers), 1000, func(_ context.Context, i int) int {
			return int(splitMix64(uint64(i)) % 1000)
		}, func(i, v int) bool {
			acc = acc*31 + int64(v)
			return acc%97 != 13 // data-dependent stop
		})
		return acc, n
	}
	refAcc, refN := fold(1)
	for _, workers := range []int{2, 4, 8} {
		acc, n := fold(workers)
		if acc != refAcc || n != refN {
			t.Fatalf("workers=%d: fold (%d, %d) != workers=1 (%d, %d)", workers, acc, n, refAcc, refN)
		}
	}
}

func TestStreamRethrowsTaskPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("workers=%d: panic not rethrown", workers)
				}
			}()
			Stream(context.Background(), New(workers), 20, func(_ context.Context, i int) int {
				if i == 5 {
					panic("stream boom")
				}
				return i
			}, func(i, v int) bool { return true })
		}()
	}
}

func TestSeedIsPureAndSpread(t *testing.T) {
	if Seed(42, 0) != Seed(42, 0) {
		t.Fatal("Seed not deterministic")
	}
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		s := Seed(42, i)
		if seen[s] {
			t.Fatalf("Seed collision at task %d", i)
		}
		seen[s] = true
	}
	if Seed(1, 5) == Seed(2, 5) {
		t.Fatal("Seed ignores root")
	}
}

func TestRNGIndependentStreams(t *testing.T) {
	a1 := RNG(7, 0).Perm(20)
	a2 := RNG(7, 0).Perm(20)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("RNG(root, task) not reproducible")
		}
	}
	b := RNG(7, 1).Perm(20)
	same := true
	for i := range a1 {
		if a1[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("adjacent task RNG streams identical")
	}
}

func TestMapContextReachesTasks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := Map(ctx, New(4), 8, func(ctx context.Context, i int) (bool, error) {
		return ctx.Err() != nil, nil
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	for i, cancelled := range got {
		if !cancelled {
			t.Fatalf("task %d did not observe the cancelled context", i)
		}
	}
}
