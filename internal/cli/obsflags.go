package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sddict/internal/core"
	"sddict/internal/obs"
)

// ObsFlags bundles the observability flags shared by the commands:
// -progress, -trace-out, -metrics-out, -metrics-addr and -pprof. All
// default to off, and with all of them off the run carries a nil
// Observer — the library layers then skip every observation (and produce
// byte-identical results either way; observability is pure measurement,
// DESIGN.md §10).
type ObsFlags struct {
	Progress    time.Duration
	TraceOut    string
	MetricsOut  string
	MetricsAddr string
	Pprof       string
}

// RegisterObsFlags registers the shared observability flags on fs
// (typically flag.CommandLine) and returns their destination.
func RegisterObsFlags(fs *flag.FlagSet) *ObsFlags {
	f := &ObsFlags{}
	fs.DurationVar(&f.Progress, "progress", 0,
		"print a one-line metrics digest to stderr at this interval (0 = off)")
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"append structured build events (JSONL) to this file; each event is written durably, so an interrupted trace is complete up to the signal")
	fs.StringVar(&f.MetricsOut, "metrics-out", "",
		"write the final metrics snapshot as JSON to this file")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "",
		"serve the live metrics in OpenMetrics text format at /metrics on this address (e.g. localhost:9100)")
	fs.StringVar(&f.Pprof, "pprof", "",
		"serve net/http/pprof on this address (e.g. localhost:6060)")
	return f
}

// Enabled reports whether any observability flag was set.
func (f *ObsFlags) Enabled() bool {
	return f.Progress > 0 || f.TraceOut != "" || f.MetricsOut != "" ||
		f.MetricsAddr != "" || f.Pprof != ""
}

// ObsSession is the live observability state of one command run: the
// Observer handed to the pipeline (nil when observability is off) plus
// the resources to release when the run ends.
type ObsSession struct {
	// Observer is passed to the pipeline config; nil when no flag was set.
	Observer *obs.Observer
	// MetricsAddr is the address the -metrics-addr listener actually
	// bound ("" when the flag was off) — it differs from the flag when
	// the flag asked for port 0.
	MetricsAddr string

	flags       ObsFlags
	tracer      *obs.Tracer
	stopPprof   func() error
	stopMetrics func() error
	finished    bool
}

// Start opens the sinks the flags ask for and assembles the Observer.
// Callers must defer Close; an error here is a runtime failure (bad trace
// path, occupied pprof address), not a usage error.
func (f *ObsFlags) Start() (*ObsSession, error) {
	s := &ObsSession{flags: *f}
	if !f.Enabled() {
		return s, nil
	}
	m := obs.NewMetrics()
	var tr *obs.Tracer
	if f.TraceOut != "" {
		var err error
		tr, err = obs.NewFileTracer(f.TraceOut, time.Now)
		if err != nil {
			return nil, err
		}
		s.tracer = tr
	}
	var pg *obs.Progress
	if f.Progress > 0 {
		pg = obs.NewProgress(os.Stderr, f.Progress, time.Now, m)
	}
	if f.MetricsAddr != "" {
		bound, stop, err := obs.StartMetricsServerAddr(f.MetricsAddr, m)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.MetricsAddr = bound
		s.stopMetrics = stop
	}
	if f.Pprof != "" {
		stop, err := obs.StartPprof(f.Pprof)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.stopPprof = stop
	}
	s.Observer = &obs.Observer{Metrics: m, Trace: tr, Progress: pg}
	return s, nil
}

// Finish writes the end-of-run artifacts: the metrics snapshot JSON when
// -metrics-out was given, and the human-readable metrics section onto w
// (the command's report stream). A no-op when observability is off, so
// commands call it unconditionally after their report — including on the
// interrupted path, where the snapshot covers the work completed so far.
// Idempotent: Close runs it with a nil writer, so a run that errors out
// before reaching its report still leaves the final progress line and
// the -metrics-out snapshot behind for the post-mortem.
func (s *ObsSession) Finish(w io.Writer) error {
	if s == nil || s.Observer == nil || s.finished {
		return nil
	}
	s.finished = true
	// Emit the final progress line first: with a long -progress interval
	// the periodic ticker may never have fired, and a run must not end
	// silently after promising progress output.
	s.Observer.Progress.Final()
	snap := s.Observer.Metrics.Snapshot()
	if s.flags.MetricsOut != "" {
		err := core.AtomicWriteFile(s.flags.MetricsOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(snap)
		})
		if err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
	}
	if w != nil {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		return snap.WriteText(w)
	}
	return nil
}

// Close releases the session's sinks (trace file, pprof listener). Safe
// on nil and after partial Start failures. Trace events are individually
// durable, so a missed Close on a hard kill loses nothing. On paths that
// never reached Finish (a command erroring out mid-run) Close runs it
// first, writer-less, so the end-of-run artifacts survive the failure.
func (s *ObsSession) Close() error {
	if s == nil {
		return nil
	}
	first := s.Finish(nil)
	if s.tracer != nil {
		if err := s.tracer.Close(); err != nil && first == nil {
			first = err
		}
		s.tracer = nil
	}
	if s.stopMetrics != nil {
		if err := s.stopMetrics(); err != nil && first == nil {
			first = err
		}
		s.stopMetrics = nil
	}
	if s.stopPprof != nil {
		if err := s.stopPprof(); err != nil && first == nil {
			first = err
		}
		s.stopPprof = nil
	}
	return first
}
