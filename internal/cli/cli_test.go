package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sddict/internal/obs"
)

// TestExitCode pins the exit-code contract every command shares:
// 0 success, 1 runtime failure, 2 usage error, 130 interruption.
func TestExitCode(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		signalled bool
		want      int
	}{
		{"success", nil, false, ExitOK},
		{"success despite signal", nil, true, ExitOK},
		{"runtime error", errors.New("boom"), false, ExitRuntime},
		{"usage error", Usagef("need -circuit"), false, ExitUsage},
		{"wrapped usage error", fmt.Errorf("parsing: %w", Usagef("bad flag")), false, ExitUsage},
		{"self-reported interruption", ErrInterrupted, false, ExitInterrupted},
		{"wrapped interruption", fmt.Errorf("sweep: %w", ErrInterrupted), true, ExitInterrupted},
		{"signalled cancellation", context.Canceled, true, ExitInterrupted},
		{"unsignalled cancellation", context.Canceled, false, ExitRuntime},
		{"wrapped signalled cancellation", fmt.Errorf("stage: %w", context.Canceled), true, ExitInterrupted},
	}
	for _, c := range cases {
		if got := ExitCode(c.err, c.signalled); got != c.want {
			t.Errorf("%s: ExitCode(%v, %v) = %d, want %d", c.name, c.err, c.signalled, got, c.want)
		}
	}
}

func TestUsageError(t *testing.T) {
	err := Usagef("need -%s", "circuit")
	if err.Error() != "need -circuit" {
		t.Errorf("Usagef message = %q", err.Error())
	}
	var ue *UsageError
	if !errors.As(err, &ue) {
		t.Error("Usagef result does not match *UsageError")
	}
}

// TestObsFlagsOff: with no flag set, Start yields a nil Observer (the
// libraries then skip every observation) and Finish/Close are no-ops.
func TestObsFlagsOff(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterObsFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Enabled() {
		t.Fatal("no flags set but Enabled() = true")
	}
	sess, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Observer != nil {
		t.Error("observability off must carry a nil Observer")
	}
	var buf bytes.Buffer
	if err := sess.Finish(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("Finish on an off session wrote %q, err %v", buf.String(), err)
	}
}

// TestObsFlagsSession: the flags assemble a working session — trace
// events land in the JSONL file, Finish writes the JSON snapshot and the
// report section, Close releases the sinks.
func TestObsFlagsSession(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.json")

	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterObsFlags(fs)
	if err := fs.Parse([]string{
		"-trace-out", tracePath, "-metrics-out", metricsPath, "-progress", "1ms",
	}); err != nil {
		t.Fatal(err)
	}
	sess, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Observer == nil {
		t.Fatal("flags set but Observer is nil")
	}
	sess.Observer.M().Inc(obs.RestartsRun)
	sess.Observer.Emit("build_start", map[string]any{"tests": 3})
	time.Sleep(2 * time.Millisecond)
	sess.Observer.Tick() // progress interval elapsed: prints to stderr

	var report bytes.Buffer
	if err := sess.Finish(&report); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if !strings.Contains(report.String(), "observability metrics:") ||
		!strings.Contains(report.String(), "restarts_run = 1") {
		t.Errorf("report section missing metrics: %q", report.String())
	}

	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	events, err := obs.ReadEvents(tf)
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if len(events) != 1 || events[0].Type != "build_start" {
		t.Fatalf("trace events = %+v, want one build_start", events)
	}

	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if snap.Counters["restarts_run"] != 1 {
		t.Errorf("metrics snapshot restarts_run = %d, want 1", snap.Counters["restarts_run"])
	}
}

// TestObsFlagsMetricsAddr: -metrics-addr serves the live OpenMetrics
// exposition while the run is in flight; port 0 picks a free port and
// the session reports the bound address.
func TestObsFlagsMetricsAddr(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterObsFlags(fs)
	if err := fs.Parse([]string{"-metrics-addr", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if !f.Enabled() {
		t.Fatal("-metrics-addr set but Enabled() = false")
	}
	sess, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.MetricsAddr == "" || strings.HasSuffix(sess.MetricsAddr, ":0") {
		t.Fatalf("bound address not reported: %q", sess.MetricsAddr)
	}

	sess.Observer.M().Inc(obs.RestartsRun)
	resp, err := http.Get("http://" + sess.MetricsAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "sdd_restarts_run_total 1") ||
		!strings.Contains(string(body), "# EOF") {
		t.Errorf("scrape = %q", body)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + sess.MetricsAddr + "/metrics"); err == nil {
		t.Error("listener still serving after Close")
	}
}

// TestObsSessionFinalProgress: Finish emits the final progress summary
// even when the poll interval never fired — a run that promised progress
// output must not end silently.
func TestObsSessionFinalProgress(t *testing.T) {
	// Progress writes to os.Stderr; swap it for a pipe around the session.
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	defer func() { os.Stderr = old }()

	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterObsFlags(fs)
	if err := fs.Parse([]string{"-progress", "1h"}); err != nil {
		t.Fatal(err)
	}
	sess, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	sess.Observer.M().Inc(obs.RestartsRun)
	sess.Observer.Tick() // interval not elapsed: must print nothing
	if err := sess.Finish(nil); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	w.Close()
	os.Stderr = old

	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "progress: done") ||
		!strings.Contains(string(out), "restarts_run=1") {
		t.Errorf("final progress line missing from stderr: %q", out)
	}
	if n := strings.Count(string(out), "progress:"); n != 1 {
		t.Errorf("want exactly the final progress line, got %d lines: %q", n, out)
	}
}

func TestObsSessionCloseFinishesErroredRuns(t *testing.T) {
	// A command that errors out mid-run returns before its Finish call;
	// only the deferred Close runs. The end-of-run artifacts must survive
	// that path: the final progress line and the -metrics-out snapshot
	// are exactly what the post-mortem needs.
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	defer func() { os.Stderr = old }()

	metricsPath := filepath.Join(t.TempDir(), "m.json")
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterObsFlags(fs)
	if err := fs.Parse([]string{"-progress", "1h", "-metrics-out", metricsPath}); err != nil {
		t.Fatal(err)
	}
	sess, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	sess.Observer.M().Inc(obs.SimBatches)
	if err := sess.Close(); err != nil { // no Finish: the error path
		t.Fatal(err)
	}
	w.Close()
	os.Stderr = old

	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "progress: done") {
		t.Errorf("Close without Finish must still print the final progress line: %q", out)
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("Close without Finish must still write -metrics-out: %v", err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["sim_batches"] != 1 {
		t.Errorf("snapshot = %+v, want sim_batches 1", snap.Counters)
	}
}
