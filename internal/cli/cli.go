// Package cli holds the shared command scaffolding: every command runs as
// a run(ctx) error function under a context cancelled by SIGINT/SIGTERM,
// and its error is mapped onto a conventional exit code. This keeps
// os.Exit out of the command logic (so defers run and tests can call run
// directly) and gives all commands the same interruption behaviour.
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
)

// Process exit codes.
const (
	ExitOK          = 0   // success
	ExitRuntime     = 1   // runtime failure
	ExitUsage       = 2   // command-line usage error
	ExitInterrupted = 130 // terminated by SIGINT/SIGTERM (128 + SIGINT)
)

// UsageError marks a command-line usage mistake (missing or inconsistent
// flags). Main prints it followed by the flag defaults hint and exits with
// ExitUsage instead of ExitRuntime.
type UsageError struct{ Msg string }

func (e *UsageError) Error() string { return e.Msg }

// Usagef builds a *UsageError.
func Usagef(format string, args ...interface{}) error {
	return &UsageError{Msg: fmt.Sprintf(format, args...)}
}

// ErrInterrupted is returned by run functions that observed the
// cancellation themselves and already reported whatever partial results
// they had; Main exits ExitInterrupted without printing a second error.
var ErrInterrupted = errors.New("interrupted")

// ExitCode maps a run function's error to a process exit code.
// signalled reports whether the run's context was cancelled by a signal.
func ExitCode(err error, signalled bool) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, ErrInterrupted),
		signalled && errors.Is(err, context.Canceled):
		return ExitInterrupted
	default:
		var ue *UsageError
		if errors.As(err, &ue) {
			return ExitUsage
		}
		return ExitRuntime
	}
}

// Main runs fn under a context cancelled on SIGINT/SIGTERM, prints any
// error to stderr prefixed with the command name, and exits with the
// matching code: 0 on success, 2 for usage errors, 130 when
// interrupted, 1 otherwise.
//
// The first signal cancels fn's context and lets it drain: finish
// in-flight work, write best-so-far reports, shut listeners down. A
// second signal during that drain means the user is done waiting — Main
// force-exits with ExitInterrupted immediately instead of hanging until
// fn returns. (signal.NotifyContext cannot express this: it keeps the
// handler installed until stop(), swallowing every later signal, so the
// watcher goroutine below replaces it. The goroutine is process
// lifecycle, not computation — it produces no result to merge, and the
// sddlint concurrency analyzer documents the exemption.)
func Main(name string, fn func(ctx context.Context) error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	fnDone := make(chan struct{})
	var signalled atomic.Bool
	go func() {
		select {
		case <-sigs:
			signalled.Store(true)
			cancel()
		case <-fnDone:
			return
		}
		select {
		case <-sigs:
			fmt.Fprintf(os.Stderr, "%s: interrupted (second signal; exiting without drain)\n", name)
			os.Exit(ExitInterrupted)
		case <-fnDone:
		}
	}()

	err := fn(ctx)
	close(fnDone)
	signal.Stop(sigs) // restore default handling: a third Ctrl-C kills hard
	code := ExitCode(err, signalled.Load())
	if err != nil && !errors.Is(err, ErrInterrupted) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	}
	if code == ExitInterrupted {
		fmt.Fprintf(os.Stderr, "%s: interrupted\n", name)
	}
	os.Exit(code)
}
