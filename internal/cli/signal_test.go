package cli

// Exec-based contract test for Main's signal handling, the package-level
// companion of the root interrupt test (interrupt_test.go): the first
// SIGTERM cancels the run context and waits for the drain; a second
// SIGTERM during a drain that never finishes forces an immediate exit
// with code 130. Signal delivery and exit statuses cannot be observed
// in-process, so the test re-execs its own binary with -test.run
// pointed at a helper that calls Main with a deliberately hanging run
// function.

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

const helperEnv = "SDD_CLI_SIGNAL_HELPER"

// TestHelperHangingDrain is not a test: re-execed with helperEnv set, it
// runs Main around a run function whose drain never completes, so only
// the second-signal path can end the process (short of the 10-minute
// test timeout, which the parent never waits for).
func TestHelperHangingDrain(t *testing.T) {
	if os.Getenv(helperEnv) != "1" {
		t.Skip("helper process for TestSecondSignalForcesExit")
	}
	Main("helper", func(ctx context.Context) error {
		fmt.Println("helper: ready")
		<-ctx.Done()
		fmt.Println("helper: draining")
		time.Sleep(10 * time.Minute) // a drain that never finishes
		return ErrInterrupted
	})
}

func TestSecondSignalForcesExit(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary; skipped in -short mode")
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperHangingDrain$", "-test.v")
	cmd.Env = append(os.Environ(), helperEnv+"=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	waitFor := func(marker string) {
		t.Helper()
		for sc.Scan() {
			if strings.Contains(sc.Text(), marker) {
				return
			}
		}
		t.Fatalf("helper exited before printing %q; stderr:\n%s", marker, stderr.String())
	}

	waitFor("helper: ready")
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The run function observed the cancellation and entered its
	// (never-ending) drain; only now is the second signal meaningful.
	waitFor("helper: draining")
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	werr := cmd.Wait()
	elapsed := time.Since(start)
	ee, ok := werr.(*exec.ExitError)
	if !ok {
		t.Fatalf("want *exec.ExitError (exit 130), got %v", werr)
	}
	if code := ee.ExitCode(); code != ExitInterrupted {
		t.Errorf("exit code = %d, want %d; stderr:\n%s", code, ExitInterrupted, stderr.String())
	}
	// The hanging drain sleeps 10 minutes; a forced exit must not wait
	// for it. The bound is generous to absorb CI scheduling stalls.
	if elapsed > 30*time.Second {
		t.Errorf("forced exit took %v; the second signal should not wait for the drain", elapsed)
	}
	if !strings.Contains(stderr.String(), "second signal") {
		t.Errorf("stderr missing the forced-exit notice:\n%s", stderr.String())
	}
}
