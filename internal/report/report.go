// Package report renders aligned plain-text tables for the experiment
// drivers, mirroring the layout of the paper's tables.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of string cells and renders them with
// right-alignment for numeric-looking cells and left-alignment otherwise.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; it must match the header width.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.header) {
		panic(fmt.Sprintf("report: row has %d cells, header has %d", len(cells), len(t.header)))
	}
	t.rows = append(t.rows, cells)
}

// Addf appends a row of formatted values: each value is rendered with %v.
func (t *Table) Addf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = fmt.Sprintf("%v", v)
	}
	t.AddRow(cells...)
}

func isNumeric(s string) bool {
	if s == "" || s == "-" {
		return true
	}
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9':
		case c == '.' || c == '-' || c == '+' || c == '%' || c == 'e':
		default:
			return false
		}
	}
	return true
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	numeric := make([]bool, len(t.header))
	for i := range numeric {
		numeric[i] = true
		for _, row := range t.rows {
			if !isNumeric(row[i]) {
				numeric[i] = false
				break
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if numeric[i] {
				parts[i] = fmt.Sprintf("%*s", width[i], c)
			} else {
				parts[i] = fmt.Sprintf("%-*s", width[i], c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", width[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// Comma formats an integer with thousands separators for readability.
func Comma(v int64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	s := fmt.Sprintf("%d", v)
	var b strings.Builder
	for i, c := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(c)
	}
	if neg {
		return "-" + b.String()
	}
	return b.String()
}
