package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("name", "count")
	tab.AddRow("alpha", "5")
	tab.Addf("beta", 1234)
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("rule missing: %q", lines[1])
	}
	// Numeric column is right-aligned: "5" should be padded to width of
	// "count" (5) and "1234".
	if !strings.Contains(lines[2], "    5") {
		t.Errorf("numeric cell not right-aligned: %q", lines[2])
	}
	// Text column left-aligned.
	if !strings.HasPrefix(lines[2], "alpha") {
		t.Errorf("text cell not left-aligned: %q", lines[2])
	}
}

func TestTableRowWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddRow accepted wrong arity")
		}
	}()
	NewTable("a", "b").AddRow("only-one")
}

func TestComma(t *testing.T) {
	cases := map[int64]string{
		0:          "0",
		7:          "7",
		999:        "999",
		1000:       "1,000",
		1234567:    "1,234,567",
		-98765:     "-98,765",
		1000000000: "1,000,000,000",
	}
	for v, want := range cases {
		if got := Comma(v); got != want {
			t.Errorf("Comma(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestIsNumeric(t *testing.T) {
	for _, s := range []string{"5", "-3.2", "12%", "", "-", "1e9"} {
		if !isNumeric(s) {
			t.Errorf("isNumeric(%q) = false", s)
		}
	}
	for _, s := range []string{"abc", "12a", "s208"} {
		if isNumeric(s) {
			t.Errorf("isNumeric(%q) = true", s)
		}
	}
}
