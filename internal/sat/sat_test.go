package sat

import (
	"math/rand"
	"testing"
)

func TestLitBasics(t *testing.T) {
	l := MkLit(5, false)
	if l.Var() != 5 || l.Neg() {
		t.Fatal("positive literal wrong")
	}
	n := l.Not()
	if n.Var() != 5 || !n.Neg() || n.Not() != l {
		t.Fatal("negation wrong")
	}
}

func TestTrivial(t *testing.T) {
	s := NewSolver(2)
	s.AddClause(MkLit(0, false))                 // x0
	s.AddClause(MkLit(0, true), MkLit(1, false)) // ¬x0 ∨ x1
	if got := s.Solve(0); got != Sat {
		t.Fatalf("Solve = %v, want sat", got)
	}
	if !s.Value(0) || !s.Value(1) {
		t.Fatalf("model wrong: %v %v", s.Value(0), s.Value(1))
	}
}

func TestContradiction(t *testing.T) {
	s := NewSolver(1)
	s.AddClause(MkLit(0, false))
	s.AddClause(MkLit(0, true))
	if got := s.Solve(0); got != Unsat {
		t.Fatalf("Solve = %v, want unsat", got)
	}
}

func TestEmptyClauseRejected(t *testing.T) {
	s := NewSolver(1)
	if s.AddClause() {
		t.Fatal("empty clause accepted")
	}
	if got := s.Solve(0); got != Unsat {
		t.Fatalf("Solve = %v, want unsat", got)
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := NewSolver(2)
	s.AddClause(MkLit(0, false), MkLit(0, true)) // tautology: ignored
	s.AddClause(MkLit(1, false), MkLit(1, false), MkLit(0, false))
	if got := s.Solve(0); got != Sat {
		t.Fatalf("Solve = %v, want sat", got)
	}
}

// pigeonhole(n) encodes n+1 pigeons into n holes — classically UNSAT and a
// workout for clause learning.
func pigeonhole(n int) *Solver {
	vars := (n + 1) * n // p*n + h: pigeon p in hole h
	s := NewSolver(vars)
	v := func(p, h int) Lit { return MkLit(p*n+h, false) }
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = v(p, h)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(v(p1, h).Not(), v(p2, h).Not())
			}
		}
	}
	return s
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 5; n++ {
		s := pigeonhole(n)
		if got := s.Solve(0); got != Unsat {
			t.Fatalf("PHP(%d): %v, want unsat", n, got)
		}
	}
}

func TestPigeonExactFitSat(t *testing.T) {
	// n pigeons in n holes is satisfiable: drop pigeon n's clauses by
	// building a permutation instance directly.
	n := 5
	s := NewSolver(n * n)
	v := func(p, h int) Lit { return MkLit(p*n+h, false) }
	for p := 0; p < n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = v(p, h)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < n; p1++ {
			for p2 := p1 + 1; p2 < n; p2++ {
				s.AddClause(v(p1, h).Not(), v(p2, h).Not())
			}
		}
	}
	if got := s.Solve(0); got != Sat {
		t.Fatalf("%v, want sat", got)
	}
	// Verify the model is a valid assignment: every pigeon somewhere, no
	// hole shared.
	used := make([]int, n)
	for p := 0; p < n; p++ {
		cnt := 0
		for h := 0; h < n; h++ {
			if s.Value(p*n + h) {
				cnt++
				used[h]++
			}
		}
		if cnt < 1 {
			t.Fatalf("pigeon %d unplaced", p)
		}
	}
	for h, u := range used {
		if u > 1 {
			t.Fatalf("hole %d shared by %d pigeons", h, u)
		}
	}
}

// TestRandomCNFMatchesBruteForce cross-validates the solver against
// exhaustive enumeration on small random 3-CNF instances, both
// satisfiable and unsatisfiable.
func TestRandomCNFMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 400; trial++ {
		nv := 3 + r.Intn(10)
		nc := 2 + r.Intn(6*nv)
		type cl []Lit
		clauses := make([]cl, nc)
		for i := range clauses {
			width := 1 + r.Intn(3)
			c := make(cl, width)
			for k := range c {
				c[k] = MkLit(r.Intn(nv), r.Intn(2) == 0)
			}
			clauses[i] = c
		}
		// Brute force.
		want := false
		var model uint32
		for m := uint32(0); m < 1<<uint(nv); m++ {
			ok := true
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					bit := m>>uint(l.Var())&1 == 1
					if bit != l.Neg() {
						sat = true
						break
					}
				}
				if !sat {
					ok = false
					break
				}
			}
			if ok {
				want = true
				model = m
				break
			}
		}
		_ = model
		s := NewSolver(nv)
		for _, c := range clauses {
			s.AddClause([]Lit(c)...)
		}
		got := s.Solve(0)
		if want && got != Sat {
			t.Fatalf("trial %d: solver says %v, brute force says sat", trial, got)
		}
		if !want && got != Unsat {
			t.Fatalf("trial %d: solver says %v, brute force says unsat", trial, got)
		}
		if got == Sat {
			// The returned model must satisfy every clause.
			for ci, c := range clauses {
				ok := false
				for _, l := range c {
					if s.Value(l.Var()) != l.Neg() {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("trial %d: model violates clause %d", trial, ci)
				}
			}
		}
	}
}

func TestConflictBudget(t *testing.T) {
	s := pigeonhole(8) // hard enough to exceed a tiny budget
	if got := s.Solve(5); got != Unknown {
		t.Fatalf("Solve with 5-conflict budget = %v, want unknown", got)
	}
}

func TestAddVar(t *testing.T) {
	s := NewSolver(1)
	v := s.AddVar()
	if v != 1 || s.NumVars() != 2 {
		t.Fatalf("AddVar gave %d, NumVars %d", v, s.NumVars())
	}
	s.AddClause(MkLit(v, false))
	if s.Solve(0) != Sat || !s.Value(v) {
		t.Fatal("fresh variable unusable")
	}
}
