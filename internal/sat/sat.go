// Package sat implements a small conflict-driven clause-learning (CDCL)
// satisfiability solver: two-literal watching, first-UIP clause learning,
// VSIDS-style activity branching, phase saving and geometric restarts.
// The test generator uses it, through a Tseitin encoding of the circuit,
// as the complete decision procedure for the hard justification queries
// (pair distinguishing, redundancy proofs) that structural PODEM abandons.
package sat

import "sort"

// Lit is a literal: variable index v (0-based) shifted left once, with the
// low bit set for negation.
type Lit int32

// MkLit builds a literal from a variable index and sign.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Result is a solver outcome.
type Result uint8

// Solver outcomes.
const (
	// Sat: a satisfying assignment was found (read it with Value).
	Sat Result = iota
	// Unsat: the formula is contradictory.
	Unsat
	// Unknown: the conflict budget ran out first.
	Unknown
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

const (
	lTrue  int8 = 1
	lFalse int8 = -1
	lUndef int8 = 0
)

type clause struct {
	lits    []Lit
	learned bool
	deleted bool
}

// Solver is a CDCL SAT solver. Create with NewSolver, add clauses, then
// call Solve. Not safe for concurrent use.
type Solver struct {
	clauses []*clause
	watches [][]*clause // literal -> clauses watching it

	assign []int8  // per variable: lTrue/lFalse/lUndef
	level  []int32 // decision level of the assignment
	reason []*clause
	trail  []Lit
	lim    []int // trail indices at each decision level

	activity  []float64
	varInc    float64
	phase     []int8 // saved phase per variable
	unsatable bool   // an empty clause was added

	propagations int64
	conflicts    int64

	learnedCount int
	maxLearned   int
}

// NewSolver returns a solver over numVars variables (indices 0..numVars-1).
func NewSolver(numVars int) *Solver {
	s := &Solver{
		watches:    make([][]*clause, 2*numVars),
		assign:     make([]int8, numVars),
		level:      make([]int32, numVars),
		reason:     make([]*clause, numVars),
		activity:   make([]float64, numVars),
		phase:      make([]int8, numVars),
		varInc:     1,
		maxLearned: 4000,
	}
	for i := range s.phase {
		s.phase[i] = lFalse
	}
	return s
}

// NumVars returns the variable count.
func (s *Solver) NumVars() int { return len(s.assign) }

// AddVar appends a fresh variable and returns its index.
func (s *Solver) AddVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, lFalse)
	s.watches = append(s.watches, nil, nil)
	return v
}

func (s *Solver) litValue(l Lit) int8 {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		return -v
	}
	return v
}

// AddClause adds a clause (given at decision level 0). Duplicate literals
// are removed; tautologies are ignored. Returns false if the formula is
// already contradictory.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsatable {
		return false
	}
	// Normalize: sort-free dedup, tautology check, drop false lits / keep
	// undecided and true ones (only root-level assignments exist now).
	out := lits[:0:0]
	for _, l := range lits {
		switch s.litValue(l) {
		case lTrue:
			return true // satisfied forever (root level)
		case lFalse:
			continue
		}
		dup, taut := false, false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				taut = true
				break
			}
		}
		if taut {
			return true
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.unsatable = true
		return false
	case 1:
		if !s.enqueue(out[0], nil) {
			s.unsatable = true
			return false
		}
		if s.propagate() != nil {
			s.unsatable = true
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *Solver) watch(c *clause) {
	// Watch the first two literals.
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], c)
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
}

// enqueue assigns a literal true with the given reason clause.
func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.litValue(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(len(s.lim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; it returns the conflicting clause
// or nil.
func (s *Solver) propagate() *clause {
	for qhead := 0; qhead < len(s.trail); qhead++ {
		p := s.trail[qhead]
		s.propagations++
		// Clauses watching ¬p must find a new watch or propagate.
		ws := s.watches[p]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			if c.deleted {
				continue // lazily dropped from the watch list
			}
			// Ensure lits[1] is the false literal (¬p ... p.Not()).
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.litValue(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflicting.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				// Conflict: keep the remaining watchers and report.
				kept = append(kept, ws[wi+1:]...)
				s.watches[p] = kept
				return c
			}
		}
		s.watches[p] = kept
	}
	return nil
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze derives a first-UIP learned clause from the conflict and returns
// it with the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learned := []Lit{0} // slot 0 reserved for the asserting literal
	seen := make(map[int]bool)
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	curLevel := int32(len(s.lim))

	reasonLits := func(c *clause, skip Lit) []Lit {
		if skip < 0 {
			return c.lits
		}
		return c.lits[1:] // lits[0] is the asserting literal of the reason
	}

	c := confl
	for {
		for _, q := range reasonLits(c, p) {
			v := q.Var()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if s.level[v] == curLevel {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Select the next trail literal at the current level.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		seen[p.Var()] = false
		counter--
		if counter <= 0 {
			break
		}
		c = s.reason[p.Var()]
	}
	learned[0] = p.Not()

	// Backtrack level: the highest level among the other literals.
	back := 0
	for i := 1; i < len(learned); i++ {
		if l := int(s.level[learned[i].Var()]); l > back {
			back = l
		}
	}
	// Move a literal of the backtrack level into watch position 1.
	for i := 1; i < len(learned); i++ {
		if int(s.level[learned[i].Var()]) == back {
			learned[1], learned[i] = learned[i], learned[1]
			break
		}
	}
	return learned, back
}

// cancelUntil undoes assignments above the given decision level.
func (s *Solver) cancelUntil(level int) {
	if len(s.lim) <= level {
		return
	}
	bound := s.lim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v]
		s.assign[v] = lUndef
		s.reason[v] = nil
	}
	s.trail = s.trail[:bound]
	s.lim = s.lim[:level]
}

// decide picks the unassigned variable with the highest activity.
func (s *Solver) decide() (Lit, bool) {
	best := -1
	var bestAct float64 = -1
	for v := 0; v < len(s.assign); v++ {
		if s.assign[v] == lUndef && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	if best < 0 {
		return 0, false
	}
	return MkLit(best, s.phase[best] != lTrue), true
}

// Solve runs the CDCL loop with the given conflict budget (0 = default of
// one million conflicts). On Sat, Value reports the model.
func (s *Solver) Solve(conflictBudget int64) Result {
	if s.unsatable {
		return Unsat
	}
	if conflictBudget <= 0 {
		conflictBudget = 1 << 20
	}
	if confl := s.propagate(); confl != nil {
		return Unsat
	}
	restartLimit := int64(100)
	sinceRestart := int64(0)
	for {
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			sinceRestart++
			if len(s.lim) == 0 {
				return Unsat
			}
			if s.conflicts > conflictBudget {
				return Unknown
			}
			learned, back := s.analyze(confl)
			s.cancelUntil(back)
			if len(learned) == 1 {
				if !s.enqueue(learned[0], nil) {
					return Unsat
				}
			} else {
				c := &clause{lits: learned, learned: true}
				s.clauses = append(s.clauses, c)
				s.learnedCount++
				s.watch(c)
				if !s.enqueue(learned[0], c) {
					return Unsat
				}
			}
			s.varInc /= 0.95
			if s.learnedCount > s.maxLearned {
				s.reduceDB()
			}
			if sinceRestart >= restartLimit {
				sinceRestart = 0
				restartLimit += restartLimit / 2
				s.cancelUntil(0)
			}
			continue
		}
		l, ok := s.decide()
		if !ok {
			return Sat
		}
		s.lim = append(s.lim, len(s.trail))
		s.enqueue(l, nil)
	}
}

// reduceDB deletes the longer half of the learned clauses (reasons of
// current assignments excepted), keeping propagation fast on long runs.
// Deleted clauses are dropped lazily from the watch lists.
func (s *Solver) reduceDB() {
	locked := make(map[*clause]bool, len(s.trail))
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r != nil {
			locked[r] = true
		}
	}
	var learned []*clause
	for _, c := range s.clauses {
		if c.learned && !c.deleted && !locked[c] {
			learned = append(learned, c)
		}
	}
	// Longer learned clauses are weaker; delete the worse half.
	sortClausesByLenDesc(learned)
	for _, c := range learned[:len(learned)/2] {
		c.deleted = true
		s.learnedCount--
	}
	kept := s.clauses[:0]
	for _, c := range s.clauses {
		if !c.deleted {
			kept = append(kept, c)
		}
	}
	s.clauses = kept
	s.maxLearned += s.maxLearned / 10
}

func sortClausesByLenDesc(cs []*clause) {
	sort.Slice(cs, func(i, j int) bool { return len(cs[i].lits) > len(cs[j].lits) })
}

// Value returns the model value of variable v after Solve returned Sat.
func (s *Solver) Value(v int) bool { return s.assign[v] == lTrue }

// Stats returns (propagations, conflicts) counters.
func (s *Solver) Stats() (int64, int64) { return s.propagations, s.conflicts }
