package sim

import (
	"fmt"

	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
)

// Sequential is a cycle-accurate three-valued simulator for circuits with
// flip-flops, used when a design is exercised as a state machine rather
// than through scan. State starts unknown (X) and is updated once per
// applied input vector; primary outputs are sampled combinationally after
// each application.
//
// The dictionary pipeline works on the full-scan view; this simulator
// exists for validating netlists as sequential machines (reset behaviour,
// state reachability) and for users who load ISCAS-89 benchmarks and want
// to run them as designed.
type Sequential struct {
	c    *netlist.Circuit
	vals []logic.Value // current combinational values
	next []logic.Value // D-line values captured for the next cycle
	// state[q] is the current flip-flop output value, indexed like c.DFFs.
	state []logic.Value
	cycle int
}

// NewSequential returns a simulator with all flip-flops initialized to X.
func NewSequential(c *netlist.Circuit) *Sequential {
	s := &Sequential{
		c:     c,
		vals:  make([]logic.Value, len(c.Gates)),
		next:  make([]logic.Value, len(c.DFFs)),
		state: make([]logic.Value, len(c.DFFs)),
	}
	s.Reset()
	return s
}

// Reset returns every flip-flop to the unknown state.
func (s *Sequential) Reset() {
	for i := range s.state {
		s.state[i] = logic.X
	}
	s.cycle = 0
}

// SetState forces the flip-flop states (indexed like Circuit.DFFs), e.g.
// to model a reset line or scan-load.
func (s *Sequential) SetState(state []logic.Value) error {
	if len(state) != len(s.state) {
		return fmt.Errorf("sim: %d state values for %d flip-flops", len(state), len(s.state))
	}
	copy(s.state, state)
	return nil
}

// State returns a copy of the current flip-flop values.
func (s *Sequential) State() []logic.Value {
	return append([]logic.Value(nil), s.state...)
}

// Cycle returns how many vectors have been applied since the last Reset.
func (s *Sequential) Cycle() int { return s.cycle }

// Step applies one primary-input vector (width = len(PIs)), evaluates the
// combinational logic against the current state, captures the D lines into
// the flip-flops, and returns the primary-output values sampled before the
// state update (Mealy-style observation).
func (s *Sequential) Step(pi pattern.Vector) ([]logic.Value, error) {
	c := s.c
	if len(pi) != len(c.PIs) {
		return nil, fmt.Errorf("sim: vector width %d, circuit has %d primary inputs", len(pi), len(c.PIs))
	}
	for i, g := range c.PIs {
		s.vals[g] = pi[i]
	}
	for i, ff := range c.DFFs {
		s.vals[ff] = s.state[i]
	}
	for _, g := range c.Order() {
		if c.IsSource(g) {
			switch c.Gates[g].Type {
			case netlist.Const0:
				s.vals[g] = logic.Zero
			case netlist.Const1:
				s.vals[g] = logic.One
			}
			continue
		}
		gate := &c.Gates[g]
		s.vals[g] = EvalGateTernary(gate.Type, gate.Fanin, func(_ int, d int32) logic.Value {
			return s.vals[d]
		})
	}
	outs := make([]logic.Value, len(c.POs))
	for i, po := range c.POs {
		outs[i] = s.vals[po]
	}
	for i, ff := range c.DFFs {
		s.next[i] = s.vals[c.Gates[ff].Fanin[0]]
	}
	copy(s.state, s.next)
	s.cycle++
	return outs, nil
}

// Run applies a sequence of vectors and returns the output trace.
func (s *Sequential) Run(seq []pattern.Vector) ([][]logic.Value, error) {
	trace := make([][]logic.Value, 0, len(seq))
	for _, v := range seq {
		out, err := s.Step(v)
		if err != nil {
			return trace, err
		}
		trace = append(trace, out)
	}
	return trace, nil
}

// Value returns the current combinational value of a gate (valid after a
// Step).
func (s *Sequential) Value(g int32) logic.Value { return s.vals[g] }
