// Package sim implements bit-parallel logic and fault simulation on the
// full-scan view of a circuit: 64 test patterns are evaluated per pass, and
// faults are simulated one at a time with event-driven forward propagation
// from the fault site (parallel-pattern single-fault propagation, PPSFP).
package sim

import (
	"context"
	"fmt"
	"math/bits"

	"sddict/internal/fault"
	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
)

// Simulator evaluates one 64-pattern batch at a time over a fixed circuit.
// It is not safe for concurrent use; Fork creates independent clones of an
// applied batch so a fault sweep can be sharded across workers.
type Simulator struct {
	View *netlist.ScanView

	c    *netlist.Circuit
	good []logic.Word // good value per gate for the current batch
	mask uint64       // valid-pattern mask of the current batch

	// Faulty-machine scratch state, valid while stamp matches.
	faulty  []logic.Word
	stamp   []uint32
	queued  []uint32
	current uint32

	// Level-bucketed event queue for forward propagation.
	buckets [][]int32

	// Scratch for gathering fanin words before gate evaluation.
	inWords []logic.Word
}

// New returns a simulator over the given full-scan view.
func New(view *netlist.ScanView) *Simulator {
	c := view.C
	n := len(c.Gates)
	s := &Simulator{
		View:    view,
		c:       c,
		good:    make([]logic.Word, n),
		faulty:  make([]logic.Word, n),
		stamp:   make([]uint32, n),
		queued:  make([]uint32, n),
		buckets: make([][]int32, c.MaxLevel()+1),
	}
	maxFanin := 0
	for i := range c.Gates {
		if n := len(c.Gates[i].Fanin); n > maxFanin {
			maxFanin = n
		}
	}
	s.inWords = make([]logic.Word, maxFanin)
	return s
}

// Fork returns an independent simulator over the same scan view with the
// receiver's currently applied batch already loaded: the good values and
// valid-pattern mask are copied, the immutable circuit and view are
// shared, and all faulty-machine scratch state is fresh. The fork can
// Propagate concurrently with the receiver and with other forks — fault
// effects are pure functions of (circuit, batch, fault), so sharding a
// fault sweep across forks yields exactly the effects a single simulator
// would produce, in any interleaving.
func (s *Simulator) Fork() *Simulator {
	ns := New(s.View)
	copy(ns.good, s.good)
	ns.mask = s.mask
	return ns
}

// EvalWords computes the output word of a gate of type t from its fanin
// words. It is exported for reuse by reference implementations and tests.
func EvalWords(t netlist.GateType, in []logic.Word) logic.Word {
	switch t {
	case netlist.Const0:
		return 0
	case netlist.Const1:
		return ^logic.Word(0)
	case netlist.Buf:
		return in[0]
	case netlist.Not:
		return ^in[0]
	case netlist.And, netlist.Nand:
		w := ^logic.Word(0)
		for _, f := range in {
			w &= f
		}
		if t == netlist.Nand {
			w = ^w
		}
		return w
	case netlist.Or, netlist.Nor:
		var w logic.Word
		for _, f := range in {
			w |= f
		}
		if t == netlist.Nor {
			w = ^w
		}
		return w
	case netlist.Xor, netlist.Xnor:
		var w logic.Word
		for _, f := range in {
			w ^= f
		}
		if t == netlist.Xnor {
			w = ^w
		}
		return w
	}
	panic(fmt.Sprintf("sim: eval of source gate type %s", t))
}

// eval computes the word value of gate g from the given per-gate value
// reader.
func (s *Simulator) eval(g int32, val func(int32) logic.Word) logic.Word {
	gate := &s.c.Gates[g]
	in := s.inWords[:len(gate.Fanin)]
	for i, f := range gate.Fanin {
		in[i] = val(f)
	}
	return EvalWords(gate.Type, in)
}

// Apply loads a packed batch and performs good simulation of all gates.
func (s *Simulator) Apply(b *pattern.Batch) {
	if len(b.Words) != s.View.NumInputs() {
		panic(fmt.Sprintf("sim: batch width %d != %d inputs", len(b.Words), s.View.NumInputs()))
	}
	s.mask = b.Mask()
	for i, g := range s.View.Inputs {
		s.good[g] = b.Words[i]
	}
	for _, g := range s.c.Order() {
		if s.c.IsSource(g) {
			switch s.c.Gates[g].Type {
			case netlist.Const0:
				s.good[g] = 0
			case netlist.Const1:
				s.good[g] = ^logic.Word(0)
			}
			continue
		}
		s.good[g] = s.eval(g, s.goodVal)
	}
}

func (s *Simulator) goodVal(g int32) logic.Word { return s.good[g] }

// GoodWord returns the good-simulation word of gate g for the current batch.
func (s *Simulator) GoodWord(g int32) logic.Word { return s.good[g] }

// Mask returns the valid-pattern mask of the current batch.
func (s *Simulator) Mask() uint64 { return s.mask }

// GoodOutputs writes the good output word of every scan-view output slot
// into dst, which must have length NumOutputs.
func (s *Simulator) GoodOutputs(dst []logic.Word) {
	for i, g := range s.View.Outputs {
		dst[i] = s.good[g]
	}
}

// OutputDiff records, for one scan-view output slot, the patterns (bit set)
// where the faulty machine differs from the good machine.
type OutputDiff struct {
	Slot int32
	Bits uint64
}

// Effect is the observable consequence of one fault under the current batch.
type Effect struct {
	// Detect has a bit set for every pattern under which at least one
	// output differs from the good machine.
	Detect uint64
	// Diffs lists the differing outputs with their per-pattern difference
	// masks. Slots appear at most once, in ascending order.
	Diffs []OutputDiff
}

// faultyVal reads the faulty-machine value of gate g (falling back to the
// good value when the fault has not reached g).
func (s *Simulator) faultyVal(g int32) logic.Word {
	if s.stamp[g] == s.current {
		return s.faulty[g]
	}
	return s.good[g]
}

func (s *Simulator) setFaulty(g int32, w logic.Word) {
	s.faulty[g] = w
	s.stamp[g] = s.current
}

func (s *Simulator) enqueueFanout(g int32) {
	for _, sink := range s.c.Fanout(g) {
		if s.c.Gates[sink].Type == netlist.DFF {
			continue // fault effects do not cross flip-flops within a test
		}
		if s.queued[sink] == s.current {
			continue
		}
		s.queued[sink] = s.current
		lvl := s.c.Level(sink)
		s.buckets[lvl] = append(s.buckets[lvl], sink)
	}
}

// Propagate simulates fault f against the current batch and returns its
// observable effect. Apply must have been called first.
func (s *Simulator) Propagate(f fault.Fault) Effect {
	s.current++
	forced := logic.Word(0)
	if f.Stuck == 1 {
		forced = ^logic.Word(0)
	}

	// dffForcedSlot handles the special case of a branch fault on a
	// flip-flop's D pin: the forced value is seen only by the flip-flop's
	// pseudo output, not by the driving gate's other fanout.
	dffForcedSlot := int32(-1)
	switch {
	case f.IsStem():
		if s.faultyDiffers(f.Gate, forced) {
			s.setFaulty(f.Gate, forced)
			s.enqueueFanout(f.Gate)
		} else {
			s.setFaulty(f.Gate, forced) // equal; still record for readers
		}
	case s.c.Gates[f.Gate].Type == netlist.DFF:
		// The observed PPO value for this flip-flop is the forced word.
		slots := s.ppoSlots(f.Gate)
		if len(slots) != 1 {
			panic("sim: flip-flop without pseudo output slot")
		}
		dffForcedSlot = slots[0]
	default:
		// Branch fault: re-evaluate the gate with the faulty pin forced.
		w := s.evalWithForcedPin(f.Gate, f.Pin, forced)
		if w != s.good[f.Gate] {
			s.setFaulty(f.Gate, w)
			s.enqueueFanout(f.Gate)
		}
	}

	// Event-driven propagation in level order.
	for lvl := range s.buckets {
		bucket := s.buckets[lvl]
		for i := 0; i < len(bucket); i++ {
			g := bucket[i]
			w := s.eval(g, s.faultyVal)
			if w != s.faultyVal(g) {
				s.setFaulty(g, w)
				s.enqueueFanout(g)
			}
		}
		s.buckets[lvl] = bucket[:0]
	}

	// Collect observable differences.
	var eff Effect
	for slot, g := range s.View.Outputs {
		fw := s.faultyVal(g)
		if dffForcedSlot == int32(slot) {
			fw = forced
		}
		if d := (fw ^ s.good[g]) & s.mask; d != 0 {
			eff.Diffs = append(eff.Diffs, OutputDiff{Slot: int32(slot), Bits: d})
			eff.Detect |= d
		}
	}
	return eff
}

// DetectBitmaps transposes the per-fault Detect words of a batch's effect
// list into per-pattern fault bitmaps: out[p] is a packed bitset over the
// fault indices, with bit i set exactly when effects[i].Detect has pattern
// bit p set. count is the number of valid patterns in the batch (out has
// that length). The transpose costs O(faults + total detections) and lets
// a consumer walk only the detected faults of a pattern word-parallel,
// instead of re-deriving detection per (pattern, fault) pair.
func DetectBitmaps(effects []Effect, count int) [][]uint64 {
	words := (len(effects) + 63) / 64
	out := make([][]uint64, count)
	store := make([]uint64, count*words) // one backing array, contiguous
	for p := range out {
		out[p] = store[p*words : (p+1)*words]
	}
	mask := uint64(1)<<uint(count) - 1
	if count == 64 {
		mask = ^uint64(0)
	}
	for i := range effects {
		det := effects[i].Detect & mask
		w, bit := i/64, uint64(1)<<(uint(i)%64)
		for det != 0 {
			p := bits.TrailingZeros64(det)
			det &= det - 1
			out[p][w] |= bit
		}
	}
	return out
}

// ForEachFault simulates every fault against the current batch, calling fn
// with each fault's index and observable effect. The context is honoured at
// fault granularity: on cancellation the sweep stops and ctx.Err() is
// returned; faults already reported to fn stand. Apply must have been
// called first.
func (s *Simulator) ForEachFault(ctx context.Context, faults []fault.Fault, fn func(i int, eff Effect)) error {
	for i, f := range faults {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		fn(i, s.Propagate(f))
	}
	return nil
}

func (s *Simulator) faultyDiffers(g int32, forced logic.Word) bool {
	return (s.good[g]^forced)&s.mask != 0
}

// ppoSlots returns the output slots observing the D line of flip-flop ff.
func (s *Simulator) ppoSlots(ff int32) []int32 {
	var slots []int32
	for slot, g := range s.View.Outputs {
		if g == s.c.Gates[ff].Fanin[0] && slot >= len(s.c.POs) {
			// Confirm this PPO slot belongs to ff (slot order matches DFF
			// declaration order).
			if s.c.DFFs[slot-len(s.c.POs)] == ff {
				slots = append(slots, int32(slot))
			}
		}
	}
	return slots
}

// evalWithForcedPin evaluates gate g with input pin `pin` overridden to the
// forced word and every other pin reading the good machine. Pins are
// identified by position: the same driver may feed several pins, and only
// the faulty branch is affected.
func (s *Simulator) evalWithForcedPin(g, pin int32, forced logic.Word) logic.Word {
	gate := &s.c.Gates[g]
	in := s.inWords[:len(gate.Fanin)]
	for i, f := range gate.Fanin {
		if int32(i) == pin {
			in[i] = forced
		} else {
			in[i] = s.good[f]
		}
	}
	return EvalWords(gate.Type, in)
}
