package sim

import (
	"testing"
	"testing/quick"

	"sddict/internal/logic"
	"sddict/internal/netlist"
)

// TestEvalWordsMatchesScalar property-checks the bit-parallel gate kernels
// against per-bit scalar ternary evaluation for every gate type: each of
// the 64 lanes of EvalWords must equal the scalar function of that lane.
func TestEvalWordsMatchesScalar(t *testing.T) {
	types := []netlist.GateType{
		netlist.Buf, netlist.Not, netlist.And, netlist.Nand,
		netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor,
	}
	f := func(a, b, c logic.Word, pick uint8) bool {
		typ := types[int(pick)%len(types)]
		in := []logic.Word{a, b, c}
		if typ == netlist.Buf || typ == netlist.Not {
			in = in[:1]
		}
		got := EvalWords(typ, in)
		fanin := make([]int32, len(in))
		for i := range fanin {
			fanin[i] = int32(i)
		}
		for bit := 0; bit < 64; bit++ {
			want := EvalGateTernary(typ, fanin, func(pin int, _ int32) logic.Value {
				return logic.FromBit((in[pin] >> uint(bit)) & 1)
			})
			if logic.FromBit((got>>uint(bit))&1) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestConstEval checks the constant kernels.
func TestConstEval(t *testing.T) {
	if EvalWords(netlist.Const0, nil) != 0 {
		t.Error("Const0 kernel wrong")
	}
	if EvalWords(netlist.Const1, nil) != ^logic.Word(0) {
		t.Error("Const1 kernel wrong")
	}
}
